// Package repro is a reproduction of "Space Complexity of Fault Tolerant
// Register Emulations" (Chockler & Spiegelman, PODC 2017): emulations of
// reliable multi-writer registers from fault-prone base objects
// (read/write registers, max-registers, CAS) hosted on crash-prone servers,
// together with the covering adversary behind the paper's lower bounds and
// a benchmark harness regenerating every table and figure.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the measured
// paper-vs-reproduction results, and README.md for a tour. The root package
// only anchors the module documentation and the repository-level benchmark
// suite (bench_test.go); the implementation lives under internal/ and the
// runnable entry points under cmd/ and examples/.
package repro
