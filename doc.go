// Package repro is a reproduction of "Space Complexity of Fault Tolerant
// Register Emulations" (Chockler & Spiegelman, PODC 2017): emulations of
// reliable multi-writer registers from fault-prone base objects
// (read/write registers, max-registers, CAS) hosted on crash-prone servers,
// together with the covering adversary behind the paper's lower bounds and
// a benchmark harness regenerating every table and figure.
//
// # Architecture
//
// The system is layered along the paper's model, and sharded along its
// fault boundary — servers:
//
//   - internal/baseobj: the base-object types (register, max-register, CAS
//     cell) with their sequential specifications.
//   - internal/cluster: the server set S and the delta: B -> S placement
//     mapping. Every server guards its own object table; cluster-wide
//     lookups are read-mostly and never contend with Apply traffic.
//   - internal/fabric: the asynchronous trigger/respond fabric between
//     clients and base objects, sharded into per-server dispatch lanes.
//     Token allocation is lock-free, object routing is served from a
//     lock-free route cache, each lane owns its held-op, in-flight, and
//     crash-drop state, and TriggerBatch scatters a whole quorum round in
//     one call. The environment plugs in as a Gate (hold/release/crash),
//     which is how the covering adversary of Lemma 1 is realized. Each
//     lane's transport is a pluggable backend (the Lane interface): the
//     in-process lane (default, synchronous, zero-regression hot path),
//     the latency lane, and the network lane below. TriggerScan scatters
//     an all-read round whose per-server groups are each answered from
//     one consistent snapshot of that server's objects (inline under the
//     objects' state locks in-process; inside the event loop or the
//     node's exclusive section on the asynchronous backends).
//   - The latency lane (fabric.LatencyLanes) is a single-goroutine event
//     loop per server: deliveries enqueue into a bounded mailbox
//     (WithMailboxCapacity, REPRO_LANE_MAILBOX), the loop draws seeded
//     delay/jitter/straggler delivery times into a min-heap, and because
//     the loop alone applies ops, it answers same-object reads that fall
//     due in one pass from a single apply (read coalescing,
//     CoalescedReads; widen the pass with WithCoalesceWindow), applies a
//     scan group back-to-back as one snapshot, and hands completions to a
//     separate completer goroutine so a completion that triggers new ops
//     can never deadlock against a full mailbox.
//   - internal/lanenet + cmd/lanenode: the network lane backend — a
//     length-prefixed TCP protocol between a lane and a per-server storage
//     node process holding the authoritative base objects. The connection
//     is fully pipelined: the client queues frames and a flusher goroutine
//     coalesces everything queued into one deadline-bounded write
//     (identical queued reads collapse onto one request; a scan group
//     travels as one msgScan frame answered under the node's exclusive
//     lock), the node decodes each already-buffered burst before flushing
//     its responses (WithReadBatch / lanenode -readbatch), and responses
//     are matched by request id, so many ops share the socket without a
//     round-trip each. A broken connection crashes the lane's server
//     (reconnect-as-crash), so killing a node process is exactly the
//     paper's server crash: in-flight and future ops become pending
//     forever and quorums over surviving nodes keep completing.
//   - internal/emulation/rounds: the shared quorum round engine — scatter
//     a round over the lanes, await a quorum of responses (count-based,
//     or Algorithm 2's complete-per-server scans), adaptive to crashes.
//     All-read collect rounds use the scan variants (ScatterScan,
//     ScatterFoldServersScan), so every construction's collect phase rides
//     the snapshot path.
//   - internal/emulation/...: the five constructions of Table 1 (abdmax,
//     casmax, aacmax, regemu, and the under-provisioned naiveabd
//     baseline), all built on the round engine; a new construction is the
//     store layer plus ~50 lines of wiring. Every construction offers the
//     blocking Writer/Reader handles and completion-based
//     StartWrite/StartRead handles (emulation.AsyncWriter/AsyncReader):
//     high-level operations run as callback chains over the non-blocking
//     rounds.ScatterFold* gathers, so an in-flight op costs no goroutine.
//   - internal/emulation/coded: the sixth construction opens the
//     bytes-per-server axis — a systematic Reed–Solomon GF(2^8) coder
//     stripes each write's payload into n timestamped fragments (any
//     kData = n−2f reconstruct) over per-server fragment stores
//     (baseobj.FragStore), so each server holds ceil(size/kData) bytes
//     where replication holds the full value. Writes put fragments at
//     n−f then commit at n−f; a fragment store retires a pending stripe
//     only on a higher-timestamped commit, so a reader's n−f gather
//     intersects every committed stripe's put quorum in >= kData live
//     fragments and a torn stripe (a crashed or gated writer's partial
//     put) is simply never reconstructible — readers fall back to the
//     newest committed stripe, verified byte-for-byte against the
//     payload's self-describing fill. At f=2, n=5 the safe shard count
//     collapses to 1 and the construction degenerates to replication,
//     exactly where the paper's lower bound says coding cannot help.
//   - internal/emulation/async: the completion-based client engine — a
//     single event-loop goroutine (mailbox, freestore-style) multiplexing
//     thousands of logical clients over one construction, with per-client
//     op serialization (the paper's well-formed histories), queueing, and
//     close/cancellation propagation onto every in-flight op.
//   - internal/shardstore: the horizontal-composition layer — a large
//     register key-space partitioned across S independent fabrics (each a
//     complete vertical slice: cluster, fabric, lane group; shards share
//     no locks and no fault domains) behind a single routing frontend,
//     driven by M detached async engine loops shared across the shards.
//     The key->shard router is a pure splitmix hash — deterministic
//     across restarts, the key-space analogue of the fabric's per-object
//     ServerFor — and a second independent hash pins every key's clients
//     to one engine loop, so per-client op serialization (well-formed
//     histories) survives any number of calling goroutines. Registers
//     materialize lazily on first touch. On the TCP lane, shards multiplex
//     onto a flat pool of lanenode processes via per-connection named
//     tables (msgBind / lanenet.WithTable): one process hosts many shards'
//     object tables over one listener without id collisions, and killing
//     it crashes one server in every shard tabled there.
//   - internal/loadgen + cmd/loadgen: the end-to-end workload driver on
//     top of the sharded store — closed-loop (one op in flight per client)
//     or open-loop populations over the key-space, on any lane backend,
//     recording high-level ops/sec and log-linear latency histograms
//     (internal/stats.Histogram), per shard and merged
//     (stats.Histogram.Merge). The open loop timestamps every operation
//     at its intended send time (coordinated-omission correction), so
//     saturation shows up as unbounded tail latency rather than being
//     silently absorbed; RateSweep traces the latency-vs-offered-rate
//     curve and Knee marks the highest sustained rate. Runs are
//     correctness-gated: read validity always, and sampled linearizability
//     (spec.SampleLinearizable, sound read-source projections) on atomic
//     builds.
//   - internal/spec: the consistency checkers (WS-Safety, WS-Regularity,
//     linearizability) that validate every experiment's history. The
//     write-sequential checkers answer per-read questions from a sorted
//     write index. CheckLinearizable decides unique-value histories (every
//     run in this repository) with a polynomial write-order constraint
//     graph (atomicity.go) — wide-concurrency load histories included —
//     and falls back to the Wing–Gong search (per-op precedence bitmasks,
//     pooled memo) for general histories up to 64 ops.
//   - internal/adversary, internal/scenario, internal/runner: the paper's
//     experiments — covering runs, the stale-release separation attack,
//     exhaustive schedule search, chaos runs — plus data-driven JSON
//     scenarios (internal/scenario/testdata).
//
// # Sweep engine
//
// The bounded model-checking experiments run on a parallel sweep engine
// (internal/runner Sweep): a worker pool fans independent jobs — one per
// adversary schedule, or one per chaos seed — across GOMAXPROCS
// goroutines, each job building its own cluster, fabric, gate, and
// emulation, with no shared state beyond the job counter and a pre-sized
// result slice. RunExhaustive covers the complete f-bounded two-writer
// schedule class (f=1: 208 schedules on 3 servers; f=2: 48256 schedules
// on 5 servers, reduced by release-commutation symmetry), so "0
// violations" is a complete-class result; RunChaosSweep fans seeded chaos
// runs the same way, on the in-process lane (deterministic per seed) or
// the latency lane (the same gate adversary composed with real timing),
// with every per-run generator derived as an independent splitmix
// sub-stream of the seed (internal/seed). cmd/sweep exposes the engine via
// -f, -workers, -lane, and -json; cmd/benchjson records the perf
// trajectory (EXPERIMENTS.md).
//
// The root package anchors the module documentation and the
// repository-level benchmark suite (bench_test.go); runnable entry points
// live under cmd/ and examples/.
package repro
