// Integration tests: end-to-end flows across the whole stack, mirroring
// what cmd/sweep prints but with assertions. These are the repository's
// "does the reproduction hold together" checks; the per-package suites
// cover the parts.
package repro_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/bounds"
	"repro/internal/layout"
	"repro/internal/runner"
)

func integCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestTable1EndToEnd sweeps the Table 1 grid and asserts the full shape
// claim: constant rows for max-register/CAS, k-linear n-decreasing rows for
// registers, everything safe, everything within the formula bounds.
func TestTable1EndToEnd(t *testing.T) {
	ctx := integCtx(t)
	grid := []struct{ k, f, n int }{
		{1, 1, 3}, {2, 1, 3}, {4, 1, 3}, {4, 1, 6},
		{2, 2, 5}, {4, 2, 6}, {8, 2, 6}, {4, 2, 8},
	}
	type key struct{ f int }
	maxRegByF := make(map[key]int)
	for _, p := range grid {
		rows, err := runner.MeasureTable1(ctx, p.k, p.f, p.n)
		if err != nil {
			t.Fatalf("MeasureTable1(%+v): %v", p, err)
		}
		for _, row := range rows {
			if !row.Safe {
				t.Errorf("%+v %s: unsafe", p, row.BaseObject)
			}
			if row.Measured < row.LowerFormula || row.Measured > row.UpperFormula {
				t.Errorf("%+v %s: measured %d outside [%d,%d]", p, row.BaseObject,
					row.Measured, row.LowerFormula, row.UpperFormula)
			}
			switch row.BaseObject {
			case "max-register", "cas":
				// Constant in k and n for fixed f.
				if prev, ok := maxRegByF[key{p.f}]; ok && prev != row.Measured {
					t.Errorf("f=%d: %s row varies with k/n: %d vs %d", p.f, row.BaseObject, prev, row.Measured)
				}
				maxRegByF[key{p.f}] = row.Measured
				if row.Measured != 2*p.f+1 {
					t.Errorf("%+v %s: measured %d, want 2f+1", p, row.BaseObject, row.Measured)
				}
			case "register":
				if row.TotalCovered < p.k*p.f {
					t.Errorf("%+v register: covered %d < k*f", p, row.TotalCovered)
				}
			}
		}
	}
	// k-linearity at fixed (f, n): k=4 vs k=8 at f=2, n=6.
	rows4, err := runner.MeasureTable1(ctx, 4, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	rows8, err := runner.MeasureTable1(ctx, 8, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rows8[2].Measured != 2*rows4[2].Measured {
		t.Errorf("register row not k-linear at n=2f+1+1: k=4 -> %d, k=8 -> %d",
			rows4[2].Measured, rows8[2].Measured)
	}
	// n-monotonicity: k=4, f=2 at n=6 vs n=8.
	rows6, err := runner.MeasureTable1(ctx, 4, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	rowsN8, err := runner.MeasureTable1(ctx, 4, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rowsN8[2].Measured >= rows6[2].Measured {
		t.Errorf("register row did not shrink with n: n=6 -> %d, n=8 -> %d",
			rows6[2].Measured, rowsN8[2].Measured)
	}
}

// TestLayoutMatchesBoundsEverywhere sweeps a large (k, f, n) grid and
// cross-checks the materialized layout against the closed forms.
func TestLayoutMatchesBoundsEverywhere(t *testing.T) {
	for f := 1; f <= 3; f++ {
		for k := 1; k <= 10; k++ {
			for n := 2*f + 1; n <= 2*f+1+k+3; n++ {
				plan, err := layout.NewPlan(k, f, n)
				if err != nil {
					t.Fatalf("NewPlan(%d,%d,%d): %v", k, f, n, err)
				}
				if err := plan.Verify(); err != nil {
					t.Errorf("Verify(%d,%d,%d): %v", k, f, n, err)
				}
				upper, err := bounds.RegisterUpper(k, f, n)
				if err != nil {
					t.Fatal(err)
				}
				lower, err := bounds.RegisterLower(k, f, n)
				if err != nil {
					t.Fatal(err)
				}
				got := plan.TotalRegisters()
				if got != upper {
					t.Errorf("(%d,%d,%d): layout %d != upper %d", k, f, n, got, upper)
				}
				if got < lower {
					t.Errorf("(%d,%d,%d): layout %d below lower bound %d", k, f, n, got, lower)
				}
			}
		}
	}
}

// TestFullExperimentPipeline runs each experiment driver once, as
// cmd/sweep's "all" does, asserting the headline result of each.
func TestFullExperimentPipeline(t *testing.T) {
	ctx := integCtx(t)

	cov, err := runner.RunCovering(ctx, runner.KindRegEmu, 5, 2, 6)
	if err != nil {
		t.Fatalf("covering: %v", err)
	}
	if cov.TotalCovered < 10 || cov.CoveredOnF != 0 || !cov.Checks.OK() {
		t.Errorf("covering shape: %+v", cov)
	}

	sep, err := runner.RunSeparation(ctx, 2)
	if err != nil {
		t.Fatalf("separation: %v", err)
	}
	for _, r := range sep.Reports {
		if (r.Kind == runner.KindNaive) != r.Violated() {
			t.Errorf("separation: %s violated=%v", r.Kind, r.Violated())
		}
	}

	t2, err := runner.RunTheorem2(ctx, 3, 2)
	if err != nil {
		t.Fatalf("theorem2: %v", err)
	}
	if t2.Total != t2.TotalWant || !t2.Safe {
		t.Errorf("theorem2: %+v", t2)
	}

	t5, err := runner.RunTheorem5(ctx, 2)
	if err != nil {
		t.Fatalf("theorem5: %v", err)
	}
	if t5.SafetyViolation == nil {
		t.Error("theorem5: partition did not violate")
	}

	t6, err := runner.RunTheorem6(4, 2)
	if err != nil {
		t.Fatalf("theorem6: %v", err)
	}
	for _, c := range t6.PerServer {
		if c != 4 {
			t.Errorf("theorem6: per-server %v", t6.PerServer)
			break
		}
	}

	t7, err := runner.RunTheorem7(6, 2, 3)
	if err != nil {
		t.Fatalf("theorem7: %v", err)
	}
	if !t7.Feasible || t7.MinFeasibleN < t7.BoundN {
		t.Errorf("theorem7: %+v", t7)
	}

	t8, err := runner.RunTheorem8(ctx, 2, 6, []int{2, 4})
	if err != nil {
		t.Fatalf("theorem8: %v", err)
	}
	if len(t8) != 2 || t8[1].UsedObjects <= t8[0].UsedObjects {
		t.Errorf("theorem8: %+v", t8)
	}

	coin, err := runner.RunCoincidence(5, 2)
	if err != nil {
		t.Fatalf("coincidence: %v", err)
	}
	for _, p := range coin {
		if !p.Coincide {
			t.Errorf("coincidence: %+v", p)
		}
	}
}
