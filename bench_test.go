// Benchmark harness: one benchmark family per table and figure of the
// paper (see EXPERIMENTS.md for the mapping and the recorded results).
//
// Space results are reported as custom metrics (objects, covered,
// objects/writer) next to the usual time/op, because the paper's subject is
// space, not latency. Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/baseobj"
	"repro/internal/bounds"
	"repro/internal/cluster"
	"repro/internal/emulation/casmax"
	"repro/internal/fabric"
	"repro/internal/lanenet"
	"repro/internal/layout"
	"repro/internal/runner"
	"repro/internal/spec"
	"repro/internal/types"
)

// benchParams is the (k, f, n) grid shared by the Table 1 benches.
var benchParams = []struct{ k, f, n int }{
	{2, 1, 3}, {4, 1, 3}, {4, 1, 6},
	{4, 2, 6}, {8, 2, 6}, {4, 2, 8},
	{6, 3, 10},
}

// BenchmarkTable1MaxRegister regenerates Table 1's max-register row
// (experiment E1): 2f+1 objects for every k and n, safe under the covering
// adversary.
func BenchmarkTable1MaxRegister(b *testing.B) {
	benchTable1Row(b, runner.KindABDMax)
}

// BenchmarkTable1CAS regenerates Table 1's CAS row (experiment E2).
func BenchmarkTable1CAS(b *testing.B) {
	benchTable1Row(b, runner.KindCASMax)
}

// BenchmarkTable1Register regenerates Table 1's register row (experiment
// E3): space grows with k, shrinks with n, within [lower, upper].
func BenchmarkTable1Register(b *testing.B) {
	benchTable1Row(b, runner.KindRegEmu)
}

// benchTable1Row runs the covering experiment for one construction across
// the parameter grid.
func benchTable1Row(b *testing.B, kind runner.Kind) {
	for _, p := range benchParams {
		p := p
		b.Run(fmt.Sprintf("k=%d/f=%d/n=%d", p.k, p.f, p.n), func(b *testing.B) {
			ctx := context.Background()
			var rep *runner.CoveringReport
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = runner.RunCovering(ctx, kind, p.k, p.f, p.n)
				if err != nil {
					b.Fatalf("RunCovering: %v", err)
				}
				if !rep.Checks.OK() {
					b.Fatalf("run unsafe: %+v", rep.Checks)
				}
			}
			b.ReportMetric(float64(rep.Resources), "objects")
			b.ReportMetric(float64(rep.TotalCovered), "covered")
			b.ReportMetric(float64(rep.Resources)/float64(p.k), "objects/writer")
		})
	}
}

// BenchmarkFigure1Layout regenerates the Figure 1 register-to-server layout
// at the paper's exact parameters n=6, k=5, f=2 (experiment E4).
func BenchmarkFigure1Layout(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		plan, err := layout.NewPlan(5, 2, 6)
		if err != nil {
			b.Fatalf("NewPlan: %v", err)
		}
		if err := plan.Verify(); err != nil {
			b.Fatalf("Verify: %v", err)
		}
		total = plan.TotalRegisters()
	}
	b.ReportMetric(float64(total), "objects")
}

// BenchmarkFigure2Covering regenerates the Lemma 1 covering run (experiment
// E5): k*f registers end up covered, none on the protected set.
func BenchmarkFigure2Covering(b *testing.B) {
	ctx := context.Background()
	var rep *runner.CoveringReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = runner.RunCovering(ctx, runner.KindRegEmu, 5, 2, 6)
		if err != nil {
			b.Fatalf("RunCovering: %v", err)
		}
		if rep.TotalCovered < rep.CoveringLowerBound || rep.CoveredOnF != 0 {
			b.Fatalf("covering shape broken: %+v", rep)
		}
	}
	b.ReportMetric(float64(rep.TotalCovered), "covered")
}

// BenchmarkSeparationAttack regenerates the Theorem 1 separation
// (experiment E6): the stale-release schedule breaks the naive baseline and
// spares max-register/CAS.
func BenchmarkSeparationAttack(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		sep, err := runner.RunSeparation(ctx, 2)
		if err != nil {
			b.Fatalf("RunSeparation: %v", err)
		}
		for _, rep := range sep.Reports {
			violated := rep.Violated()
			if (rep.Kind == runner.KindNaive) != violated {
				b.Fatalf("%s: violated=%v, unexpected", rep.Kind, violated)
			}
		}
	}
}

// BenchmarkTheorem8Adaptivity regenerates the point-contention experiment
// (E10): consumption grows with k at contention 1.
func BenchmarkTheorem8Adaptivity(b *testing.B) {
	ctx := context.Background()
	for _, k := range []int{2, 4, 8} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var used int
			for i := 0; i < b.N; i++ {
				rep, err := runner.RunCovering(ctx, runner.KindRegEmu, k, 2, 6)
				if err != nil {
					b.Fatalf("RunCovering: %v", err)
				}
				used = rep.UsedObjects
			}
			b.ReportMetric(float64(used), "used_objects")
			b.ReportMetric(1, "point_contention")
		})
	}
}

// BenchmarkCASMaxRetries regenerates the Algorithm 1 time-complexity
// tradeoff (experiment E11): write-max retries per op under rising
// contention, with response latency modeled by the yield gate.
func BenchmarkCASMaxRetries(b *testing.B) {
	for _, writers := range []int{1, 2, 4, 8} {
		writers := writers
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			ctx := context.Background()
			c, err := cluster.New(3)
			if err != nil {
				b.Fatalf("cluster: %v", err)
			}
			fab := fabric.New(c, fabric.WithGate(&fabric.YieldGate{Yields: 2}))
			reg, metrics, err := casmax.New(fab, writers, 1, casmax.Options{})
			if err != nil {
				b.Fatalf("casmax: %v", err)
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			// Split b.N across the writers so total work stays ~b.N and
			// per-op numbers are comparable across the writers axis.
			perWriter := b.N / writers
			if perWriter == 0 {
				perWriter = 1
			}
			for w := 0; w < writers; w++ {
				wr, err := reg.Writer(w)
				if err != nil {
					b.Fatalf("writer: %v", err)
				}
				wg.Add(1)
				go func(w int, wr interface {
					Write(context.Context, types.Value) error
				}) {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						if err := wr.Write(ctx, types.Value(w<<40|i)); err != nil {
							panic(err)
						}
					}
				}(w, wr)
			}
			wg.Wait()
			b.StopTimer()
			calls := metrics.WriteMaxCalls.Load()
			if calls > 0 {
				b.ReportMetric(float64(metrics.Retries())/float64(calls), "retries/writemax")
			}
		})
	}
}

// BenchmarkWriteLatency measures the high-level write cost per construction
// on a benign fabric — the time side of the space/time tradeoffs.
func BenchmarkWriteLatency(b *testing.B) {
	for _, kind := range []runner.Kind{runner.KindRegEmu, runner.KindABDMax, runner.KindCASMax, runner.KindAACMax} {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			ctx := context.Background()
			env, err := runner.NewEnv(6, nil)
			if err != nil {
				b.Fatalf("env: %v", err)
			}
			k, f := 4, 2
			if kind == runner.KindAACMax {
				// aacmax is the n = 2f+1 special case.
				env, err = runner.NewEnv(5, nil)
				if err != nil {
					b.Fatalf("env: %v", err)
				}
			}
			reg, _, err := runner.Build(kind, env.Fabric, k, f)
			if err != nil {
				b.Fatalf("build: %v", err)
			}
			w, err := reg.Writer(0)
			if err != nil {
				b.Fatalf("writer: %v", err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Write(ctx, types.Value(i+1)); err != nil {
					b.Fatalf("write: %v", err)
				}
			}
			b.ReportMetric(float64(reg.ResourceComplexity()), "objects")
		})
	}
}

// BenchmarkReadLatency measures the high-level read cost per construction:
// Algorithm 2's reads scan every register, so its read cost grows with k —
// the latency price of the space-optimal layout (ablation for DESIGN.md).
func BenchmarkReadLatency(b *testing.B) {
	for _, kind := range []runner.Kind{runner.KindRegEmu, runner.KindABDMax, runner.KindCASMax} {
		for _, k := range []int{2, 8} {
			kind, k := kind, k
			b.Run(fmt.Sprintf("%s/k=%d", kind, k), func(b *testing.B) {
				ctx := context.Background()
				env, err := runner.NewEnv(6, nil)
				if err != nil {
					b.Fatalf("env: %v", err)
				}
				reg, _, err := runner.Build(kind, env.Fabric, k, 2)
				if err != nil {
					b.Fatalf("build: %v", err)
				}
				w, err := reg.Writer(0)
				if err != nil {
					b.Fatalf("writer: %v", err)
				}
				if err := w.Write(ctx, 7); err != nil {
					b.Fatalf("write: %v", err)
				}
				rd := reg.NewReader()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := rd.Read(ctx); err != nil {
						b.Fatalf("read: %v", err)
					}
				}
				b.ReportMetric(float64(reg.ResourceComplexity()), "objects")
			})
		}
	}
}

// BenchmarkExhaustiveSearch measures the sequential bounded model-checking
// sweep (experiment E13): all 208 f=1 adversary schedules against
// Algorithm 2 on one worker — the baseline the parallel engine is measured
// against.
func BenchmarkExhaustiveSearch(b *testing.B) {
	ctx := context.Background()
	var schedules int
	for i := 0; i < b.N; i++ {
		rep, err := runner.RunExhaustiveOpts(ctx, runner.KindRegEmu, runner.ExhaustOptions{F: 1, Workers: 1})
		if err != nil {
			b.Fatalf("RunExhaustiveOpts: %v", err)
		}
		if rep.Violations != 0 {
			b.Fatalf("violations: %d", rep.Violations)
		}
		schedules = rep.Schedules
	}
	b.ReportMetric(float64(schedules), "schedules")
}

// BenchmarkExhaustiveParallel measures the sweep engine fanning the f=1
// class across the worker pool (experiment E13). The workers=8 case is the
// PR acceptance number: >= 4x wall-clock over workers=1 on multi-core
// hardware. schedules/sec is the throughput the pool sustains.
func BenchmarkExhaustiveParallel(b *testing.B) {
	ctx := context.Background()
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var schedules int
			for i := 0; i < b.N; i++ {
				rep, err := runner.RunExhaustiveOpts(ctx, runner.KindRegEmu, runner.ExhaustOptions{F: 1, Workers: workers})
				if err != nil {
					b.Fatalf("RunExhaustiveOpts: %v", err)
				}
				if rep.Violations != 0 {
					b.Fatalf("violations: %d", rep.Violations)
				}
				schedules = rep.Schedules
			}
			b.ReportMetric(float64(schedules)*float64(b.N)/b.Elapsed().Seconds(), "schedules/sec")
		})
	}
}

// BenchmarkExhaustiveF2 measures one pooled pass over the full f=2 class
// (48256 schedules, n=5) — the sweep the parallel engine grew the search
// to.
func BenchmarkExhaustiveF2(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		rep, err := runner.RunExhaustiveOpts(ctx, runner.KindRegEmu, runner.ExhaustOptions{F: 2})
		if err != nil {
			b.Fatalf("RunExhaustiveOpts: %v", err)
		}
		if rep.Violations != 0 {
			b.Fatalf("violations: %d", rep.Violations)
		}
		b.ReportMetric(float64(rep.Schedules)/rep.Elapsed.Seconds(), "schedules/sec")
	}
}

// BenchmarkChaosRun measures one seeded chaos run (experiment E15).
func BenchmarkChaosRun(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		rep, err := runner.RunChaos(ctx, runner.ChaosConfig{
			Kind: runner.KindRegEmu, K: 3, F: 2, N: 7, Ops: 25, Seed: int64(i),
		})
		if err != nil {
			b.Fatalf("RunChaos: %v", err)
		}
		if !rep.Checks.OK() {
			b.Fatalf("seed %d unsafe: %+v", i, rep.Checks)
		}
	}
}

// BenchmarkTheorem5Partition measures the n = 2f partition demonstration
// (experiment E14).
func BenchmarkTheorem5Partition(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		rep, err := runner.RunTheorem5(ctx, 2)
		if err != nil {
			b.Fatalf("RunTheorem5: %v", err)
		}
		if rep.SafetyViolation == nil {
			b.Fatal("partition did not violate")
		}
	}
}

// BenchmarkCheckers measures the consistency checkers on a fixed-size
// generated history: they run after every experiment, so their cost caps
// experiment throughput.
func BenchmarkCheckers(b *testing.B) {
	env, err := runner.NewEnv(6, nil)
	if err != nil {
		b.Fatalf("env: %v", err)
	}
	reg, hist, err := runner.Build(runner.KindRegEmu, env.Fabric, 4, 2)
	if err != nil {
		b.Fatalf("build: %v", err)
	}
	ctx := context.Background()
	for round := 0; round < 5; round++ {
		for i := 0; i < 4; i++ {
			w, err := reg.Writer(i)
			if err != nil {
				b.Fatal(err)
			}
			if err := w.Write(ctx, types.Value(round*10+i+1)); err != nil {
				b.Fatal(err)
			}
			if _, err := reg.NewReader().Read(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := runner.Check(hist); !c.OK() {
			b.Fatalf("history unsafe: %+v", c)
		}
	}
	b.ReportMetric(float64(hist.Len()), "history_ops")
}

// BenchmarkCheckLinearizable measures the atomicity checker alone on
// generated histories of growing size: the Wing–Gong search with
// precomputed precedence masks and a pooled memo map. Every sweep schedule
// pays one checker pass, so this is the per-schedule cost floor.
func BenchmarkCheckLinearizable(b *testing.B) {
	for _, rounds := range []int{2, 5, 10} {
		rounds := rounds
		b.Run(fmt.Sprintf("rounds=%d", rounds), func(b *testing.B) {
			env, err := runner.NewEnv(6, nil)
			if err != nil {
				b.Fatalf("env: %v", err)
			}
			reg, hist, err := runner.Build(runner.KindRegEmu, env.Fabric, 2, 2)
			if err != nil {
				b.Fatalf("build: %v", err)
			}
			ctx := context.Background()
			for round := 0; round < rounds; round++ {
				for i := 0; i < 2; i++ {
					w, err := reg.Writer(i)
					if err != nil {
						b.Fatal(err)
					}
					if err := w.Write(ctx, types.Value(round*10+i+1)); err != nil {
						b.Fatal(err)
					}
					if _, err := reg.NewReader().Read(ctx); err != nil {
						b.Fatal(err)
					}
				}
			}
			ops := hist.Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := spec.CheckLinearizable(ops, types.InitialValue); err != nil {
					b.Fatalf("not linearizable: %v", err)
				}
			}
			b.ReportMetric(float64(len(ops)), "history_ops")
		})
	}
}

// BenchmarkFabricParallelTrigger measures raw fabric dispatch throughput —
// triggers/sec through the benign gate with concurrent clients spread
// across per-server objects. This is the hot path the per-server dispatch
// lanes shard; the goroutines=8 case is the PR acceptance number (≥2x over
// the single-global-mutex fabric).
func BenchmarkFabricParallelTrigger(b *testing.B) {
	const servers = 8
	for _, par := range []int{1, 8, 32} {
		par := par
		b.Run(fmt.Sprintf("goroutines=%dxGOMAXPROCS", par), func(b *testing.B) {
			c, err := cluster.New(servers)
			if err != nil {
				b.Fatalf("cluster: %v", err)
			}
			objs := make([]types.ObjectID, servers)
			for s := 0; s < servers; s++ {
				obj, err := c.PlaceRegister(types.ServerID(s))
				if err != nil {
					b.Fatalf("place: %v", err)
				}
				objs[s] = obj
			}
			fab := fabric.New(c)
			var nextClient atomic.Int64
			b.SetParallelism(par)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				client := types.ClientID(nextClient.Add(1))
				obj := objs[int(client)%len(objs)]
				i := 0
				for pb.Next() {
					i++
					call := fab.Trigger(client, obj, baseobj.Invocation{
						Op:  baseobj.OpWrite,
						Arg: types.TSValue{TS: uint64(i), Writer: client},
					})
					if o, ok := call.Outcome(); !ok || o.Err != nil {
						b.Fatalf("trigger outcome = %+v ok=%v", o, ok)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "triggers/sec")
		})
	}
}

// BenchmarkFabricLaneTrigger measures trigger-to-completion throughput on
// the in-process lane vs the latency lane, side by side: the price of real
// asynchrony (timer dispatch, cross-goroutine completion) relative to the
// synchronous hot path. Completions are awaited in batches so the latency
// lane's in-flight population stays bounded.
func BenchmarkFabricLaneTrigger(b *testing.B) {
	const servers = 8
	lanes := []struct {
		name  string
		maker fabric.LaneMaker
	}{
		{"inproc", nil},
		{"latency", fabric.LatencyLanes(1, fabric.LatencyProfile{Jitter: 20 * time.Microsecond})},
	}
	for _, lane := range lanes {
		lane := lane
		b.Run("lane="+lane.name, func(b *testing.B) {
			c, err := cluster.New(servers)
			if err != nil {
				b.Fatalf("cluster: %v", err)
			}
			objs := make([]types.ObjectID, servers)
			for s := 0; s < servers; s++ {
				obj, err := c.PlaceRegister(types.ServerID(s))
				if err != nil {
					b.Fatalf("place: %v", err)
				}
				objs[s] = obj
			}
			var opts []fabric.Option
			if lane.maker != nil {
				opts = append(opts, fabric.WithLanes(lane.maker))
			}
			fab := fabric.New(c, opts...)
			defer fab.Close()
			var nextClient atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				client := types.ClientID(nextClient.Add(1))
				obj := objs[int(client)%len(objs)]
				var wg sync.WaitGroup
				// One completion callback for the whole run: the benchmark
				// measures the fabric's dispatch cost, not a per-op closure
				// allocation in the harness.
				complete := func(fabric.Outcome) { wg.Done() }
				i := 0
				for pb.Next() {
					i++
					wg.Add(1)
					call := fab.Trigger(client, obj, baseobj.Invocation{
						Op:  baseobj.OpWrite,
						Arg: types.TSValue{TS: uint64(i), Writer: client},
					})
					call.OnComplete(complete)
					if i%256 == 0 {
						wg.Wait()
					}
				}
				wg.Wait()
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "triggers/sec")
		})
	}
}

// BenchmarkLanenetPipeline measures round-trips/sec through one pipelined
// TCP lane connection at varying in-flight depth (experiment E21). Depth 1
// is the lock-step shape — every request waits for its response before the
// next is queued — while deeper pipelines keep many request IDs in flight,
// so queued frames coalesce into single writes, the node decodes them as
// one burst, and identical queued reads collapse onto one wire request
// (reported as coalesced/op).
func BenchmarkLanenetPipeline(b *testing.B) {
	for _, depth := range []int{1, 16, 256} {
		depth := depth
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatalf("listen: %v", err)
			}
			defer l.Close()
			node := lanenet.NewNode()
			go node.Serve(l)
			maker, clients, err := lanenet.Lanes([]string{l.Addr().String()}, time.Second)
			if err != nil {
				b.Fatalf("lanes: %v", err)
			}
			c, err := cluster.New(1)
			if err != nil {
				b.Fatalf("cluster: %v", err)
			}
			obj, err := c.PlaceRegister(0)
			if err != nil {
				b.Fatalf("place: %v", err)
			}
			fab := fabric.New(c, fabric.WithLanes(maker))
			defer fab.Close()

			// Warm the route and seed a value for the measured reads.
			warm := make(chan fabric.Outcome, 1)
			fab.TriggerFn(0, obj, baseobj.Invocation{
				Op:  baseobj.OpWrite,
				Arg: types.TSValue{TS: 1, Writer: 0, Val: 7},
			}, func(o fabric.Outcome) { warm <- o })
			if o := <-warm; o.Err != nil {
				b.Fatalf("warm write: %v", o.Err)
			}

			sem := make(chan struct{}, depth)
			var wg sync.WaitGroup
			complete := func(fabric.Outcome) { <-sem; wg.Done() }
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sem <- struct{}{}
				wg.Add(1)
				fab.TriggerFn(0, obj, baseobj.Invocation{Op: baseobj.OpRead}, complete)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "roundtrips/sec")
			b.ReportMetric(float64(clients[0].CoalescedReads())/float64(b.N), "coalesced/op")
		})
	}
}

// BenchmarkBoundsFormulas measures the closed-form calculator (sanity: it
// must be trivially cheap) and doubles as a sweep correctness check.
func BenchmarkBoundsFormulas(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range benchParams {
			lo, err := bounds.RegisterLower(p.k, p.f, p.n)
			if err != nil {
				b.Fatalf("lower: %v", err)
			}
			hi, err := bounds.RegisterUpper(p.k, p.f, p.n)
			if err != nil {
				b.Fatalf("upper: %v", err)
			}
			if lo > hi {
				b.Fatalf("lower %d > upper %d at %+v", lo, hi, p)
			}
		}
	}
}
