// Command emulate runs one emulated register construction under a chosen
// workload — sequential or concurrent — with optional server crashes, and
// reports the consistency verdicts.
//
// Usage:
//
//	emulate -kind regemu -k 4 -f 2 -n 6 -rounds 3 -crashes 2
//	emulate -kind abd-max -k 4 -f 1 -n 3 -concurrent -ops 40
//	emulate -scenario attack.json     # data-driven schedule (see internal/scenario)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "emulate:", err)
		os.Exit(1)
	}
}

func run() error {
	kind := flag.String("kind", string(runner.KindRegEmu), "construction: regemu | abd-max | abd-cas | aac-max | naive")
	k := flag.Int("k", 4, "number of writers")
	f := flag.Int("f", 2, "failure threshold")
	n := flag.Int("n", 6, "number of servers")
	rounds := flag.Int("rounds", 2, "write rounds per writer (sequential mode)")
	crashes := flag.Int("crashes", 0, "servers to crash during the run (<= f)")
	concurrent := flag.Bool("concurrent", false, "run writers and readers concurrently")
	ops := flag.Int("ops", 20, "ops per client (concurrent mode)")
	readers := flag.Int("readers", 2, "reader clients (concurrent mode)")
	atomic := flag.Bool("atomic", false, "enable read write-back (abd-max/abd-cas only)")
	async := flag.Bool("async", false, "drive the workload through the completion-based async engine (one goroutine, all clients in flight)")
	scenarioPath := flag.String("scenario", "", "run a JSON scenario file instead of a generated workload")
	timeout := flag.Duration("timeout", 60*time.Second, "run timeout")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *scenarioPath != "" {
		return runScenario(ctx, *scenarioPath)
	}
	if *async {
		return runAsync(ctx, runner.Kind(*kind), *k, *f, *n, *ops, *readers, *atomic)
	}
	if *concurrent {
		return runConcurrent(ctx, runner.Kind(*kind), *k, *f, *n, *ops, *readers, *atomic)
	}
	return runSequential(ctx, runner.Kind(*kind), *k, *f, *n, *rounds, *crashes)
}

// runAsync drives the same concurrent mix as -concurrent, but through the
// async client engine: k writers + the readers stay in flight together on
// one engine goroutine, and the run is capped at ops per client.
func runAsync(ctx context.Context, kind runner.Kind, k, f, n, ops, readers int, atomic bool) error {
	res, err := loadgen.Run(ctx, loadgen.Config{
		Kind:         kind,
		F:            f,
		N:            n,
		Atomic:       atomic,
		Clients:      k + readers,
		ReadFraction: float64(readers) / float64(k+readers),
		Duration:     time.Hour, // ops-capped, not time-capped
		MaxOps:       int64(ops * (k + readers)),
		Seed:         1,
	})
	if err != nil {
		return err
	}
	fmt.Printf("async run: %s k=%d f=%d n=%d clients=%d (w=%d r=%d)\n",
		res.Kind, res.K, res.F, res.N, res.Clients, res.Writers, res.Readers)
	fmt.Printf("ops=%d (%.0f ops/sec) peak-in-flight=%d p50=%v p99=%v\n",
		res.Ops, res.OpsPerSec, res.MaxInFlight,
		time.Duration(res.Latency.P50), time.Duration(res.Latency.P99))
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Println("VIOLATION:", v)
		}
		return fmt.Errorf("%d consistency violations", len(res.Violations))
	}
	verdictLabel := "read validity"
	if res.Atomic {
		verdictLabel = "read validity + sampled linearizability"
	}
	fmt.Printf("%s: PASS (history=%d ops, sampled=%d)\n", verdictLabel, res.HistoryOps, res.SampledOps)
	return nil
}

// runSequential executes round-robin writes with interleaved reads and a
// crash plan, then prints the write-sequential verdicts.
func runSequential(ctx context.Context, kind runner.Kind, k, f, n, rounds, crashes int) error {
	steps := workload.RoundRobinWrites(k, rounds)
	var reads []workload.Step
	for i := range steps {
		reads = append(reads, steps[i], workload.Step{Client: 0, IsRead: true})
	}
	plan := faults.SpreadCrashes(crashes, len(reads))
	rep, err := runner.RunSequential(ctx, kind, k, f, n, reads, plan)
	if err != nil {
		return err
	}
	fmt.Printf("sequential run: %s k=%d f=%d n=%d\n", rep.Kind, rep.K, rep.F, rep.N)
	fmt.Printf("writes=%d reads=%d crashes=%d\n", rep.Writes, rep.Reads, rep.Crashes)
	fmt.Printf("WS-Safety: %v\nWS-Regularity: %v\n", verdict(rep.Checks.WSSafety), verdict(rep.Checks.WSRegularity))
	return nil
}

// runConcurrent stress-runs all clients in parallel and prints the
// concurrent-run verdicts.
func runConcurrent(ctx context.Context, kind runner.Kind, k, f, n, ops, readers int, atomic bool) error {
	rep, err := runner.RunConcurrent(ctx, runner.ConcurrentConfig{
		Kind:            kind,
		K:               k,
		F:               f,
		N:               n,
		WritesPerWriter: ops,
		Readers:         readers,
		ReadsPerReader:  ops,
		Atomic:          atomic,
	})
	if err != nil {
		return err
	}
	fmt.Printf("concurrent run: %s k=%d f=%d n=%d writes=%d reads=%d\n",
		rep.Kind, rep.K, rep.F, rep.N, rep.Writes, rep.Reads)
	fmt.Printf("read validity: %v\n", verdict(rep.ReadValidity))
	if rep.LinearizabilityChecked {
		fmt.Printf("linearizability: %v\n", verdict(rep.Linearizable))
	}
	return nil
}

// runScenario loads and executes a data-driven schedule.
func runScenario(ctx context.Context, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s, err := scenario.Load(f)
	if err != nil {
		return err
	}
	res, err := s.Run(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("scenario %q: reads=%v released=%d\n", res.Name, res.Reads, res.Released)
	fmt.Printf("WS-Safety: %v\n", verdict(res.WSSafety))
	if res.ExpectationsMet {
		fmt.Println("expectations: MET")
		return nil
	}
	for _, f := range res.Failures {
		fmt.Println("expectation failed:", f)
	}
	return fmt.Errorf("scenario %q: %d expectations failed", res.Name, len(res.Failures))
}

func verdict(err error) string {
	if err == nil {
		return "PASS"
	}
	return "FAIL: " + err.Error()
}
