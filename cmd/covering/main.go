// Command covering runs the Lemma 1 covering experiment (Figure 2): k
// sequential high-level writes against the Ad_i-style adversary, reporting
// the covered-register growth, the protected-set invariant, and the safety
// verdicts.
//
// Usage:
//
//	covering -k 5 -f 2 -n 6                 # Algorithm 2 (register-based)
//	covering -k 5 -f 2 -n 6 -kind abd-max   # max-register construction
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/runner"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "covering:", err)
		os.Exit(1)
	}
}

func run() error {
	k := flag.Int("k", 5, "number of writers")
	f := flag.Int("f", 2, "failure threshold")
	n := flag.Int("n", 6, "number of servers")
	kind := flag.String("kind", string(runner.KindRegEmu), "construction: regemu | abd-max | abd-cas | aac-max | naive")
	showTrace := flag.Bool("trace", false, "render per-register low-level timelines (Figure 2 style)")
	timeout := flag.Duration("timeout", 30*time.Second, "experiment timeout")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var rec *trace.Recorder
	opts := runner.CoveringOptions{}
	if *showTrace {
		rec = trace.NewRecorder(0)
		opts.Tracer = rec
	}
	rep, err := runner.RunCoveringOpts(ctx, runner.Kind(*kind), *k, *f, *n, opts)
	if err != nil {
		return err
	}

	fmt.Printf("covering experiment: %s, k=%d f=%d n=%d\n", rep.Kind, rep.K, rep.F, rep.N)
	fmt.Printf("resources placed: %d base objects; used in run: %d\n\n", rep.Resources, rep.UsedObjects)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "write\twriter\tnewly covered\tcumulative covered")
	for i, wc := range rep.PerWrite {
		fmt.Fprintf(w, "%d\tc%d\t%d\t%d\n", i+1, wc.Writer, wc.NewlyCovered, wc.Cumulative)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	fmt.Printf("\ntotal covered: %d (Lemma 1 lower bound k*f = %d)\n", rep.TotalCovered, rep.CoveringLowerBound)
	fmt.Printf("covered on protected set F: %d (Lemma 1(b) demands 0)\n", rep.CoveredOnF)
	fmt.Printf("point contention: %d\n", rep.PointContention)
	fmt.Printf("final read: %d (last written %d)\n", rep.FinalRead, rep.LastWritten)
	fmt.Printf("WS-Safety: %v\nWS-Regularity: %v\n", verdict(rep.Checks.WSSafety), verdict(rep.Checks.WSRegularity))
	if rec != nil {
		fmt.Println("\nper-register timelines (T=trigger A=apply H=held R=respond L=release):")
		fmt.Print(rec.RenderObjectTimelines())
	}
	return nil
}

func verdict(err error) string {
	if err == nil {
		return "PASS"
	}
	return "FAIL: " + err.Error()
}
