// Command sweep regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md): Table 1 measured across parameter
// sweeps, the Figure 1 layout, the Figure 2 covering runs, the Theorem 1
// separation attack, and the appendix theorems.
//
// Usage:
//
//	sweep                               # run every experiment
//	sweep -exp table1                   # one experiment
//	sweep -exp figure2 -k 6 -f 2 -n 8
//	sweep -exp exhaustive -f 2 -workers 8 -json   # pooled f=2 model check
//	sweep -exp churn -json                        # chaos + live membership churn
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/layout"
	"repro/internal/runner"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all", "experiment: table1 | figure1 | figure2 | separation | theorem2 | theorem6 | theorem7 | theorem8 | coincidence | churn | resize | all")
	k := flag.Int("k", 5, "number of writers (single-experiment runs)")
	f := flag.Int("f", 2, "failure threshold (exhaustive sweeps support 1 or 2)")
	n := flag.Int("n", 6, "number of servers")
	workers := flag.Int("workers", 0, "sweep pool size for exhaustive/chaos (0 = one per CPU)")
	lane := flag.String("lane", "both", "chaos dispatch lane: inproc | latency | both")
	churn := flag.Float64("churn", 0.25, "churn experiment: per-op server-replacement probability")
	resizeProb := flag.Float64("resize", 0.25, "resize experiment: per-op batched-transition probability")
	jsonOut := flag.Bool("json", false, "emit exhaustive/chaos reports as JSON instead of tables")
	timeout := flag.Duration("timeout", 5*time.Minute, "total timeout")
	flag.Parse()

	// The shared -f default (2, chosen for figure2) would silently grow
	// the exhaustive sweep ~230x; exhaustive stays at its historical f=1
	// unless -f was set explicitly.
	exhaustF := 1
	flag.Visit(func(fl *flag.Flag) {
		if fl.Name == "f" {
			exhaustF = *f
		}
	})
	if *exp == "all" && (exhaustF < 1 || exhaustF > 2) {
		// In all-mode, -f values beyond the exhaustive class (e.g. -f 3
		// for the table1/figure2 regimes) fall back to the f=1 sweep
		// instead of aborting the run at the exhaustive step.
		exhaustF = 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	experiments := map[string]func(context.Context) error{
		"table1":      func(ctx context.Context) error { return expTable1(ctx) },
		"figure1":     func(context.Context) error { return expFigure1() },
		"figure2":     func(ctx context.Context) error { return expFigure2(ctx, *k, *f, *n) },
		"separation":  func(ctx context.Context) error { return expSeparation(ctx) },
		"theorem2":    func(ctx context.Context) error { return expTheorem2(ctx) },
		"theorem5":    func(ctx context.Context) error { return expTheorem5(ctx) },
		"theorem6":    func(context.Context) error { return expTheorem6() },
		"theorem7":    func(context.Context) error { return expTheorem7() },
		"theorem8":    func(ctx context.Context) error { return expTheorem8(ctx) },
		"coincidence": func(context.Context) error { return expCoincidence() },
		"exhaustive":  func(ctx context.Context) error { return expExhaustive(ctx, exhaustF, *workers, *jsonOut) },
		"chaos":       func(ctx context.Context) error { return expChaos(ctx, *workers, *lane, *jsonOut) },
		"churn":       func(ctx context.Context) error { return expChurn(ctx, *workers, *churn, *jsonOut) },
		"resize":      func(ctx context.Context) error { return expResize(ctx, *workers, *resizeProb, *jsonOut) },
	}
	if *exp != "all" {
		fn, ok := experiments[*exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q", *exp)
		}
		return fn(ctx)
	}
	for _, name := range []string{
		"table1", "figure1", "figure2", "separation", "theorem2", "theorem5",
		"theorem6", "theorem7", "theorem8", "coincidence", "exhaustive", "chaos",
		"churn", "resize",
	} {
		fmt.Printf("==== %s ====\n", name)
		if err := experiments[name](ctx); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println()
	}
	return nil
}

func verdict(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

// expTable1 measures Table 1 across a parameter sweep (experiments E1-E3).
func expTable1(ctx context.Context) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "k\tf\tn\tbase object\tlower\tmeasured\tupper\tcovered\tsafe")
	for _, p := range []struct{ k, f, n int }{
		{1, 1, 3}, {2, 1, 3}, {4, 1, 3}, {4, 1, 6},
		{2, 2, 5}, {4, 2, 6}, {4, 2, 8}, {8, 2, 6},
		{3, 3, 7}, {6, 3, 10},
	} {
		rows, err := runner.MeasureTable1(ctx, p.k, p.f, p.n)
		if err != nil {
			return err
		}
		for _, row := range rows {
			fmt.Fprintf(w, "%d\t%d\t%d\t%s\t%d\t%d\t%d\t%d\t%s\n",
				row.K, row.F, row.N, row.BaseObject,
				row.LowerFormula, row.Measured, row.UpperFormula,
				row.TotalCovered, verdict(row.Safe))
		}
	}
	return w.Flush()
}

// expFigure1 renders the register-to-server layout at the paper's Figure 1
// parameters (experiment E4).
func expFigure1() error {
	plan, err := layout.NewPlan(5, 2, 6)
	if err != nil {
		return err
	}
	if err := plan.Verify(); err != nil {
		return err
	}
	fmt.Print(plan.Render())
	return nil
}

// expFigure2 runs the covering experiment (experiment E5).
func expFigure2(ctx context.Context, k, f, n int) error {
	rep, err := runner.RunCovering(ctx, runner.KindRegEmu, k, f, n)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "write\twriter\tnewly covered\tcumulative")
	for i, wc := range rep.PerWrite {
		fmt.Fprintf(w, "%d\tc%d\t%d\t%d\n", i+1, wc.Writer, wc.NewlyCovered, wc.Cumulative)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("total covered %d >= k*f = %d: %s; on F: %d; WS-Safe: %s\n",
		rep.TotalCovered, rep.CoveringLowerBound,
		verdict(rep.TotalCovered >= rep.CoveringLowerBound),
		rep.CoveredOnF, verdict(rep.Checks.WSSafety == nil))
	return nil
}

// expSeparation runs the stale-release attack across constructions
// (experiment E6).
func expSeparation(ctx context.Context) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "f\tconstruction\tread\twant\tviolated (expected: naive only)")
	for _, f := range []int{1, 2, 3} {
		sep, err := runner.RunSeparation(ctx, f)
		if err != nil {
			return err
		}
		for _, rep := range sep.Reports {
			fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%v\n", f, rep.Kind, rep.ReadValue, rep.WantValue, rep.Violated())
		}
	}
	return w.Flush()
}

// expTheorem2 measures the aacmax special case (experiment E7).
func expTheorem2(ctx context.Context) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "k\tf\tper-server\twant/server\ttotal\twant total\tsafe")
	for _, p := range []struct{ k, f int }{{2, 1}, {4, 1}, {3, 2}, {5, 2}} {
		rep, err := runner.RunTheorem2(ctx, p.k, p.f)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%d\t%v\t%d\t%d\t%d\t%s\n",
			rep.K, rep.F, rep.PerServer, rep.PerServerWant, rep.Total, rep.TotalWant, verdict(rep.Safe))
	}
	return w.Flush()
}

// expTheorem6 checks the per-server counts at n = 2f+1 (experiment E8).
func expTheorem6() error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "k\tf\tn\tper-server counts\twant (>= k each)")
	for _, p := range []struct{ k, f int }{{2, 1}, {5, 1}, {3, 2}, {6, 3}} {
		rep, err := runner.RunTheorem6(p.k, p.f)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%v\t%d\n", rep.K, rep.F, rep.N, rep.PerServer, rep.Want)
	}
	return w.Flush()
}

// expTheorem7 checks the bounded-storage server bound (experiment E9).
func expTheorem7() error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "k\tf\tcap\tbound n\tmin feasible n\tbound respected")
	for _, p := range []struct{ k, f, cap int }{
		{4, 1, 1}, {4, 1, 2}, {6, 2, 2}, {6, 2, 3}, {8, 2, 4},
	} {
		rep, err := runner.RunTheorem7(p.k, p.f, p.cap)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%s\n",
			rep.K, rep.F, rep.Cap, rep.BoundN, rep.MinFeasibleN,
			verdict(rep.Feasible && rep.MinFeasibleN >= rep.BoundN))
	}
	return w.Flush()
}

// expTheorem8 shows resource consumption growing at point contention 1
// (experiment E10).
func expTheorem8(ctx context.Context) error {
	points, err := runner.RunTheorem8(ctx, 2, 6, []int{1, 2, 4, 6, 8})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "k\tpoint contention\tused objects\tcovered")
	for _, p := range points {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\n", p.K, p.PointContention, p.UsedObjects, p.Covered)
	}
	return w.Flush()
}

// expTheorem5 demonstrates the partition argument behind |S| >= 2f+1
// (experiment E14): with n = 2f servers, a live protocol is driven into a
// safety violation.
func expTheorem5(ctx context.Context) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "f\tn=2f\twrote\tread\tviolated (expected: true)")
	for _, f := range []int{1, 2, 3} {
		rep, err := runner.RunTheorem5(ctx, f)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%v\n", rep.F, rep.N, rep.WroteValue, rep.ReadValue, rep.SafetyViolation != nil)
	}
	return w.Flush()
}

// expExhaustive model-checks the full f-bounded adversary class (f=1 or
// f=2) against every construction (experiment E13), fanned across the
// sweep pool.
func expExhaustive(ctx context.Context, f, workers int, jsonOut bool) error {
	if f < 1 || f > 2 {
		return fmt.Errorf("exhaustive sweep supports -f 1 or -f 2, got %d", f)
	}
	var reports []*runner.ExhaustReport
	for _, kind := range runner.Kinds() {
		rep, err := runner.RunExhaustiveOpts(ctx, kind, runner.ExhaustOptions{F: f, Workers: workers})
		if err != nil {
			return err
		}
		reports = append(reports, rep)
	}
	if jsonOut {
		return emitJSON(reports)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "construction\tf\tschedules\tworkers\twall-clock\tviolations\texample")
	for _, rep := range reports {
		example := "-"
		if rep.FirstViolation != "" {
			example = rep.FirstViolation
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%s\t%d\t%s\n",
			rep.Kind, rep.F, rep.Schedules, rep.Workers, rep.Elapsed.Round(time.Millisecond), rep.Violations, example)
	}
	return w.Flush()
}

// expChaos sweeps randomized environments across constructions on the
// sweep pool, on the selected dispatch lane(s): the in-process lane keeps
// the historical deterministic sweep, the latency lane adds seeded
// delivery delay, reordering, and stragglers on every dispatch.
func expChaos(ctx context.Context, workers int, lane string, jsonOut bool) error {
	var lanes []runner.Lane
	switch lane {
	case "inproc":
		lanes = []runner.Lane{runner.LaneInProc}
	case "latency":
		lanes = []runner.Lane{runner.LaneLatency}
	case "both":
		lanes = []runner.Lane{runner.LaneInProc, runner.LaneLatency}
	default:
		return fmt.Errorf("unknown lane %q (inproc | latency | both)", lane)
	}
	var reports []*runner.ChaosSweepReport
	for _, ln := range lanes {
		for _, kind := range runner.Kinds() {
			rep, err := runner.RunChaosSweep(ctx, runner.ChaosConfig{
				Kind: kind, K: 3, F: 2, N: runner.ChaosServers(kind), Ops: 25, Lane: ln,
			}, 10, workers)
			if err != nil {
				return err
			}
			reports = append(reports, rep)
		}
	}
	if jsonOut {
		return emitJSON(reports)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "construction\tlane\tseeds\tviolating seeds\tholds\treleases\twall-clock")
	for _, rep := range reports {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%d\t%s\n",
			rep.Kind, rep.Lane, rep.Seeds, rep.Violating, rep.Holds, rep.Releases, rep.Elapsed.Round(time.Millisecond))
	}
	return w.Flush()
}

// expChurn sweeps the chaos net with live membership churn (experiment
// E24): between high-level ops, random servers are replaced wholesale —
// freeze, drain, state transfer, view activation — while the gate keeps
// holding and releasing. Seeds are pinned at 0..23 so the run is
// reproducible: sound constructions must report zero violating seeds; the
// naive baseline is expected to be caught.
func expChurn(ctx context.Context, workers int, churnProb float64, jsonOut bool) error {
	var reports []*runner.ChaosSweepReport
	for _, kind := range runner.Kinds() {
		rep, err := runner.RunChaosSweep(ctx, runner.ChaosConfig{
			Kind: kind, K: 3, F: 2, N: runner.ChaosServers(kind),
			Ops: 30, ChurnProb: churnProb,
		}, 24, workers)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
	}
	if jsonOut {
		return emitJSON(reports)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "construction\tseeds\treplacements\tholds\treleases\tviolating seeds (expected: naive only)\twall-clock")
	for _, rep := range reports {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%s\n",
			rep.Kind, rep.Seeds, rep.Replacements, rep.Holds, rep.Releases,
			rep.Violating, rep.Elapsed.Round(time.Millisecond))
	}
	return w.Flush()
}

// expResize sweeps the chaos net with live batched view transitions
// (experiments E27 and E28): between high-level ops, random grows, shrinks,
// and member swaps commit as single epoch bumps with the construction's
// reshape re-deriving the quorum geometry. The first section runs clean
// transitions (E27); the second arms the transition crasher so the
// sealed-but-not-activated window loses a server inside every other
// transition (E28) — crashed transitions must abort back onto the old view.
// Seeds are pinned at 0..23: sound constructions must report zero violating
// seeds; the naive baseline is expected to be caught. regemu is excluded —
// it has no reshape path and rejects resize by type.
func expResize(ctx context.Context, workers int, resizeProb float64, jsonOut bool) error {
	kinds := []runner.Kind{
		runner.KindABDMax, runner.KindCASMax, runner.KindAACMax,
		runner.KindCoded, runner.KindNaive,
	}
	var reports []*runner.ChaosSweepReport
	for _, crashProb := range []float64{0, 0.5} {
		for _, kind := range kinds {
			rep, err := runner.RunChaosSweep(ctx, runner.ChaosConfig{
				Kind: kind, K: 3, F: 2, N: runner.ChaosServers(kind),
				Ops: 30, ResizeProb: resizeProb, TransitionCrashProb: crashProb,
			}, 24, workers)
			if err != nil {
				return err
			}
			reports = append(reports, rep)
		}
	}
	if jsonOut {
		return emitJSON(reports)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "construction\tseeds\tresizes\taborts\ttransition crashes\tholds\tviolating seeds (expected: naive only)\twall-clock")
	for _, rep := range reports {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			rep.Kind, rep.Seeds, rep.Resizes, rep.ResizeAborts, rep.TransitionCrashes,
			rep.Holds, rep.Violating, rep.Elapsed.Round(time.Millisecond))
	}
	return w.Flush()
}

// jsonEnvelope wraps every -json report with the build identity, so a
// saved report is attributable to the toolchain and commit that made it.
type jsonEnvelope struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GitCommit string `json:"git_commit"`
	Reports   any    `json:"reports"`
}

// emitJSON renders sweep reports as indented JSON on stdout for scripted
// consumers, wrapped in the attribution envelope.
func emitJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonEnvelope{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: buildinfo.GoVersion(),
		GitCommit: buildinfo.GitCommit(),
		Reports:   v,
	})
}

// expCoincidence verifies the bound coincidence regimes (experiment E12).
func expCoincidence() error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "k\tf\tn\tlower\tupper\twant\tcoincide")
	for _, p := range []struct{ k, f int }{{1, 1}, {3, 1}, {5, 2}, {4, 3}} {
		points, err := runner.RunCoincidence(p.k, p.f)
		if err != nil {
			return err
		}
		for _, c := range points {
			fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%v\n", c.K, c.F, c.N, c.Lower, c.Upper, c.Want, c.Coincide)
		}
	}
	return w.Flush()
}
