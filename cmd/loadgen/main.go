// Command loadgen drives end-to-end load through a sharded multi-register
// store (internal/shardstore): the key-space partitions across -shards
// independent fabrics driven by -engines shared async engine loops, and
// the command reports high-level ops/sec and latency percentiles, overall
// and per shard. Runs are correctness-gated: read validity always, sampled
// linearizability on atomic builds; any violation makes the command fail.
//
// With -rates, the command runs an open-loop offered-rate sweep instead of
// a single run: one CO-corrected run per rate (latencies measured from
// each operation's intended send time), printing the latency-vs-rate curve
// and the knee — the highest offered rate the store sustained.
//
// Usage:
//
//	loadgen -kind abd-max -atomic -clients 1000 -read-frac 0.5 \
//	        -lane latency -duration 2s -min-inflight 1000
//	loadgen -kind abd-max -clients 256 -registers 32 -shards 4 -engines 4 \
//	        -lane latency -duration 2s
//	loadgen -kind abd-max -clients 64 -mode open -rates 10000,20000,40000,80000
//	loadgen -kind abd-max -shards 2 -lane tcp -nodes 127.0.0.1:7001,127.0.0.1:7002
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/internal/runner"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	kind := flag.String("kind", string(runner.KindABDMax), "construction: regemu | abd-max | abd-cas | aac-max | naive | coded")
	coded := flag.Bool("coded", false, "shorthand for -kind coded (erasure-coded stripes)")
	atomic := flag.Bool("atomic", false, "read write-back build (abd-max/abd-cas/coded): enables the linearizability gate")
	valueSize := flag.Int("valuesize", 0, "payload bytes per write (0 = timestamps only); enables the bytes-per-server report")
	f := flag.Int("f", 1, "failure threshold per shard")
	n := flag.Int("n", 0, "servers per shard (0 = construction default)")
	clients := flag.Int("clients", 100, "logical client population")
	readFrac := flag.Float64("read-frac", 0.5, "fraction of clients that read")
	registers := flag.Int("registers", 1, "keys the population spreads over")
	keyspace := flag.Uint64("keyspace", 0, "addressable key-space size (0 = 2^20)")
	shards := flag.Int("shards", 1, "independent fabrics the key-space partitions across")
	engines := flag.Int("engines", 0, "shared async engine loops (0 = one per shard)")
	mode := flag.String("mode", string(loadgen.ModeClosed), "closed | open")
	rate := flag.Float64("rate", 0, "aggregate ops/sec (open mode)")
	rates := flag.String("rates", "", "comma-separated offered rates: run an open-loop sweep and report the knee")
	duration := flag.Duration("duration", 2*time.Second, "measured duration (per rate, when sweeping)")
	maxOps := flag.Int64("maxops", 0, "stop after this many ops (0 = duration only)")
	lane := flag.String("lane", string(runner.LaneInProc), "dispatch backend: inproc | latency | tcp")
	nodes := flag.String("nodes", "", "comma-separated lanenode addresses (tcp lane)")
	seed := flag.Int64("seed", 1, "seed for lane delays and the open-loop mix")
	noHistory := flag.Bool("nohistory", false, "skip history recording and checks (pure throughput)")
	checks := flag.Int("checks", 4, "linearizability samples per key (atomic builds)")
	minInFlight := flag.Int64("min-inflight", 0, "fail unless peak in-flight concurrency reaches this")
	asJSON := flag.Bool("json", false, "print the result as JSON")
	out := flag.String("out", "", "also write the JSON result to this file")
	timeout := flag.Duration("timeout", 5*time.Minute, "hard run timeout")
	mailbox := flag.Int("mailbox", 0, "latency-lane mailbox capacity (0 = default)")
	coalesce := flag.Duration("coalesce", 0, "latency-lane coalescing window (0 = fire exactly on schedule)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *coded {
		*kind = string(runner.KindCoded)
	}
	cfg := loadgen.Config{
		Kind:         runner.Kind(*kind),
		F:            *f,
		N:            *n,
		Atomic:       *atomic,
		ValueSize:    *valueSize,
		Clients:      *clients,
		ReadFraction: *readFrac,
		Registers:    *registers,
		KeySpace:     *keyspace,
		Shards:       *shards,
		Engines:      *engines,
		Mode:         loadgen.Mode(*mode),
		Rate:         *rate,
		Duration:     *duration,
		MaxOps:       *maxOps,
		Lane:         runner.Lane(*lane),
		Seed:         *seed,
		NoHistory:    *noHistory,
		SampleChecks: *checks,
		Mailbox:      *mailbox,
		Coalesce:     *coalesce,
	}
	if *nodes != "" {
		cfg.NodeAddrs = strings.Split(*nodes, ",")
	}

	if *rates != "" {
		return runSweep(ctx, cfg, *rates, *asJSON, *out)
	}

	res, err := loadgen.Run(ctx, cfg)
	if err != nil {
		return err
	}

	if *out != "" {
		if err := writeJSON(*out, res); err != nil {
			return err
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else {
		printHuman(res)
	}

	if len(res.Violations) > 0 {
		return fmt.Errorf("%d consistency violations", len(res.Violations))
	}
	if res.Failed > 0 {
		return fmt.Errorf("%d operations failed", res.Failed)
	}
	if *minInFlight > 0 && res.MaxInFlight < *minInFlight {
		return fmt.Errorf("peak in-flight %d below required %d", res.MaxInFlight, *minInFlight)
	}
	return nil
}

// Sweep is the JSON layout of a -rates run.
type Sweep struct {
	// Knee indexes Points: the last offered rate achieved within 95%
	// (-1 when none was).
	Knee   int               `json:"knee"`
	Points []*loadgen.Result `json:"points"`
}

func runSweep(ctx context.Context, cfg loadgen.Config, rates string, asJSON bool, out string) error {
	var parsed []float64
	for _, s := range strings.Split(rates, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || r <= 0 {
			return fmt.Errorf("bad rate %q in -rates", s)
		}
		parsed = append(parsed, r)
	}
	results, err := loadgen.RateSweep(ctx, cfg, parsed)
	if err != nil {
		return err
	}
	sweep := Sweep{Knee: loadgen.Knee(results), Points: results}
	if out != "" {
		if err := writeJSON(out, sweep); err != nil {
			return err
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sweep); err != nil {
			return err
		}
	} else {
		fmt.Printf("open-loop sweep: %s lane=%s shards=%d clients=%d\n",
			cfg.Kind, results[0].Lane, results[0].Shards, cfg.Clients)
		fmt.Println("offered ops/s | achieved ops/s | p50 | p99 | max")
		for i, r := range results {
			marker := ""
			if i == sweep.Knee {
				marker = "   <- knee"
			}
			fmt.Printf("%13.0f | %14.0f | %v | %v | %v%s\n",
				r.Rate, r.OpsPerSec,
				time.Duration(r.Latency.P50), time.Duration(r.Latency.P99),
				time.Duration(r.Latency.Max), marker)
		}
	}
	var violations, failed int64
	for _, r := range results {
		violations += int64(len(r.Violations))
		failed += r.Failed
	}
	if violations > 0 {
		return fmt.Errorf("%d consistency violations across the sweep", violations)
	}
	if failed > 0 {
		return fmt.Errorf("%d operations failed across the sweep", failed)
	}
	return nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func printHuman(res *loadgen.Result) {
	fmt.Printf("loadgen: %s lane=%s mode=%s atomic=%v k=%d f=%d n=%d\n",
		res.Kind, res.Lane, res.Mode, res.Atomic, res.K, res.F, res.N)
	fmt.Printf("clients=%d (w=%d r=%d) keys=%d shards=%d engines=%d duration=%.2fs\n",
		res.Clients, res.Writers, res.Readers, res.Registers, res.Shards, res.Engines, res.DurationSec)
	fmt.Printf("ops=%d (%.0f ops/sec) failed=%d peak-in-flight=%d\n",
		res.Ops, res.OpsPerSec, res.Failed, res.MaxInFlight)
	fmt.Printf("latency: p50=%v p90=%v p99=%v max=%v\n",
		time.Duration(res.Latency.P50), time.Duration(res.Latency.P90),
		time.Duration(res.Latency.P99), time.Duration(res.Latency.Max))
	fmt.Printf("write latency: p50=%v p99=%v   read latency: p50=%v p99=%v\n",
		time.Duration(res.WriteLatency.P50), time.Duration(res.WriteLatency.P99),
		time.Duration(res.ReadLatency.P50), time.Duration(res.ReadLatency.P99))
	if len(res.PerShard) > 1 {
		for _, sh := range res.PerShard {
			fmt.Printf("  shard %d: keys=%d ops=%d p50=%v p99=%v\n",
				sh.Shard, sh.Keys, sh.Ops,
				time.Duration(sh.Latency.P50), time.Duration(sh.Latency.P99))
		}
	}
	if res.TotalBytes > 0 {
		fmt.Printf("space: value=%dB total=%dB per-server=%v\n",
			res.ValueSize, res.TotalBytes, res.BytesPerServer)
	}
	if res.Checked {
		fmt.Printf("checks: history=%d ops, sampled=%d, violations=%d\n",
			res.HistoryOps, res.SampledOps, len(res.Violations))
		for _, v := range res.Violations {
			fmt.Println("VIOLATION:", v)
		}
	} else {
		fmt.Println("checks: skipped (no history)")
	}
}
