// Command loadgen drives end-to-end load through an emulated register
// construction via the completion-based async client engine and reports
// high-level ops/sec and latency percentiles. Runs are correctness-gated:
// read validity always, sampled linearizability on atomic builds; any
// violation makes the command fail.
//
// Usage:
//
//	loadgen -kind abd-max -atomic -clients 1000 -read-frac 0.5 \
//	        -lane latency -duration 2s -min-inflight 1000
//	loadgen -kind regemu -clients 200 -registers 8 -mode open -rate 50000 -json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"repro/internal/loadgen"
	"repro/internal/runner"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	kind := flag.String("kind", string(runner.KindABDMax), "construction: regemu | abd-max | abd-cas | aac-max | naive")
	atomic := flag.Bool("atomic", false, "read write-back build (abd-max/abd-cas): enables the linearizability gate")
	f := flag.Int("f", 1, "failure threshold")
	n := flag.Int("n", 0, "servers (0 = construction default)")
	clients := flag.Int("clients", 100, "logical client population")
	readFrac := flag.Float64("read-frac", 0.5, "fraction of clients that read")
	registers := flag.Int("registers", 1, "independent registers (key-space)")
	mode := flag.String("mode", string(loadgen.ModeClosed), "closed | open")
	rate := flag.Float64("rate", 0, "aggregate ops/sec (open mode)")
	duration := flag.Duration("duration", 2*time.Second, "measured duration")
	maxOps := flag.Int64("maxops", 0, "stop after this many ops (0 = duration only)")
	lane := flag.String("lane", string(runner.LaneInProc), "dispatch backend: inproc | latency")
	seed := flag.Int64("seed", 1, "seed for lane delays and the open-loop mix")
	noHistory := flag.Bool("nohistory", false, "skip history recording and checks (pure throughput)")
	checks := flag.Int("checks", 4, "linearizability samples per register (atomic builds)")
	minInFlight := flag.Int64("min-inflight", 0, "fail unless peak in-flight concurrency reaches this")
	asJSON := flag.Bool("json", false, "print the result as JSON")
	out := flag.String("out", "", "also write the JSON result to this file")
	timeout := flag.Duration("timeout", 5*time.Minute, "hard run timeout")
	mailbox := flag.Int("mailbox", 0, "latency-lane mailbox capacity (0 = default)")
	coalesce := flag.Duration("coalesce", 0, "latency-lane coalescing window (0 = fire exactly on schedule)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	res, err := loadgen.Run(ctx, loadgen.Config{
		Kind:         runner.Kind(*kind),
		F:            *f,
		N:            *n,
		Atomic:       *atomic,
		Clients:      *clients,
		ReadFraction: *readFrac,
		Registers:    *registers,
		Mode:         loadgen.Mode(*mode),
		Rate:         *rate,
		Duration:     *duration,
		MaxOps:       *maxOps,
		Lane:         runner.Lane(*lane),
		Seed:         *seed,
		NoHistory:    *noHistory,
		SampleChecks: *checks,
		Mailbox:      *mailbox,
		Coalesce:     *coalesce,
	})
	if err != nil {
		return err
	}

	if *out != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else {
		printHuman(res)
	}

	if len(res.Violations) > 0 {
		return fmt.Errorf("%d consistency violations", len(res.Violations))
	}
	if res.Failed > 0 {
		return fmt.Errorf("%d operations failed", res.Failed)
	}
	if *minInFlight > 0 && res.MaxInFlight < *minInFlight {
		return fmt.Errorf("peak in-flight %d below required %d", res.MaxInFlight, *minInFlight)
	}
	return nil
}

func printHuman(res *loadgen.Result) {
	fmt.Printf("loadgen: %s lane=%s mode=%s atomic=%v k=%d f=%d n=%d\n",
		res.Kind, res.Lane, res.Mode, res.Atomic, res.K, res.F, res.N)
	fmt.Printf("clients=%d (w=%d r=%d) registers=%d duration=%.2fs\n",
		res.Clients, res.Writers, res.Readers, res.Registers, res.DurationSec)
	fmt.Printf("ops=%d (%.0f ops/sec) failed=%d peak-in-flight=%d\n",
		res.Ops, res.OpsPerSec, res.Failed, res.MaxInFlight)
	fmt.Printf("latency: p50=%v p90=%v p99=%v max=%v\n",
		time.Duration(res.Latency.P50), time.Duration(res.Latency.P90),
		time.Duration(res.Latency.P99), time.Duration(res.Latency.Max))
	fmt.Printf("write latency: p50=%v p99=%v   read latency: p50=%v p99=%v\n",
		time.Duration(res.WriteLatency.P50), time.Duration(res.WriteLatency.P99),
		time.Duration(res.ReadLatency.P50), time.Duration(res.ReadLatency.P99))
	if res.Checked {
		fmt.Printf("checks: history=%d ops, sampled=%d, violations=%d\n",
			res.HistoryOps, res.SampledOps, len(res.Violations))
		for _, v := range res.Violations {
			fmt.Println("VIOLATION:", v)
		}
	} else {
		fmt.Println("checks: skipped (no history)")
	}
}
