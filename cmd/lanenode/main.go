// Command lanenode runs a storage-node process: the remote half of a
// network-backed fabric dispatch lane (internal/lanenet). A node hosts any
// number of named object tables over one listener — a connection operates
// on the default table until it binds another (lanenet.WithTable) — so one
// process can serve several shards of a sharded store
// (internal/shardstore), each shard's fabric bound to its own table and
// free of object-id collisions with the others.
//
// The process is one fault domain: killing it (SIGKILL) is the paper's
// server crash for every shard with a table here, and the fabric maps the
// broken connections onto PhaseDropped via its reconnect-as-crash
// semantics. SIGINT/SIGTERM instead trigger a graceful drain — stop
// accepting, finish the frames already decoded, flush responses, close the
// listener and every connection — so a test (or an operator's rolling
// restart) can distinguish a clean *leave* from a crash: a drained node
// prints "draining" then "drained" and exits 0.
//
// Usage:
//
//	lanenode -listen 127.0.0.1:0
//
// The first stdout line reports the bound address ("listening <addr>"),
// which is how test harnesses discover ephemeral ports.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/lanenet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lanenode:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:0", "TCP address to listen on (port 0 picks an ephemeral port)")
	readBatch := flag.Int("readbatch", 0, "max already-buffered frames decoded per batch before responses flush (0 = default)")
	flag.Parse()

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("listening %s\n", l.Addr())
	var opts []lanenet.NodeOption
	if *readBatch > 0 {
		opts = append(opts, lanenet.WithReadBatch(*readBatch))
	}
	node := lanenet.NewNode(opts...)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		fmt.Printf("draining (%v)\n", sig)
		// Closing the listener makes Serve return nil (no new
		// connections); Drain then finishes in-flight decodes, flushes
		// responses, and closes every connection.
		l.Close()
	}()

	if err := node.Serve(l); err != nil {
		return err
	}
	node.Drain()
	fmt.Println("drained")
	return nil
}
