// Command benchjson records the repository's perf trajectory: it runs the
// benchmark families that gate performance work (fabric dispatch
// throughput, exhaustive-sweep wall-clock, checker cost), parses the
// standard `go test -bench` output, and writes the numbers as a dated JSON
// snapshot (BENCH_<yyyy-mm-dd>.json by default) so future PRs have a
// baseline to compare against. See EXPERIMENTS.md for the recorded
// history.
//
// Usage:
//
//	go run ./cmd/benchjson                       # trajectory set, 1x each
//	go run ./cmd/benchjson -bench '.' -benchtime 100ms -out perf.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/fabric"
	"repro/internal/loadgen"
	"repro/internal/runner"
)

// trajectoryBenches is the default benchmark set: the numbers the ROADMAP
// tracks PR over PR. BenchmarkFabricLaneTrigger records in-process vs
// latency-lane trigger-to-completion throughput side by side, so the cost
// of real asynchrony is part of every snapshot.
const trajectoryBenches = "BenchmarkFabricParallelTrigger|BenchmarkFabricLaneTrigger|BenchmarkLanenetPipeline|BenchmarkExhaustiveParallel|BenchmarkExhaustiveSearch|BenchmarkCheckers|BenchmarkCheckLinearizable"

// Result is one parsed benchmark line.
type Result struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit to value: "ns/op", "triggers/sec",
	// "schedules/sec", ...
	Metrics map[string]float64 `json:"metrics"`
}

// Snapshot is the file layout of BENCH_<date>.json.
type Snapshot struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	// GitCommit attributes the snapshot to the exact tree that produced it
	// ("unknown" outside a git checkout).
	GitCommit  string   `json:"git_commit"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Bench      string   `json:"bench"`
	Benchtime  string   `json:"benchtime"`
	Results    []Result `json:"results"`
	// Loadgen records the end-to-end numbers: high-level ops/sec and
	// latency percentiles through the async client engine, one entry per
	// lane backend, correctness-gated (a run with violations fails the
	// snapshot).
	Loadgen []*loadgen.Result `json:"loadgen,omitempty"`
	// ShardSweep records aggregate throughput at shard counts 1, 2, 4, 8:
	// weak scaling on the latency lane — a fixed closed-loop client
	// population per shard, so per-shard load is latency-bound and the
	// aggregate grows with the shard count until the CPU ceiling. (On a
	// single-core runner the sweep measures lane/engine parallelism
	// headroom, not core scaling; GOMAXPROCS above records the context.)
	ShardSweep []*loadgen.Result `json:"shard_sweep,omitempty"`
	// RateCurve is the open-loop latency-vs-offered-rate curve on the
	// latency lane, coordinated-omission-corrected, with the knee index.
	RateCurve *RateCurve `json:"rate_curve,omitempty"`
	// Space is the bytes-per-server axis: replicated (abd-max) vs coded
	// runs at matched n/f/value-size grid points. The snapshot fails
	// unless the coded points store strictly less than their replicated
	// counterparts wherever striping is non-degenerate (kData > 1).
	Space []*SpacePoint `json:"space,omitempty"`
	// Reconfig is the reconfiguration-latency axis: freeze-to-activate
	// wall-clock of a batched view transition, per membership delta size,
	// on a live abd-max register (state transfer and quorum re-derivation
	// included).
	Reconfig []*ReconfigPoint `json:"reconfig,omitempty"`
}

// ReconfigPoint is one delta size: Joins servers join and Leaves servers
// leave in a single epoch bump, repeated Iters times on the same live
// register (each grow is undone by the paired shrink before the next
// iteration, so every measurement starts from the same n).
type ReconfigPoint struct {
	Delta  string `json:"delta"`
	Joins  int    `json:"joins"`
	Leaves int    `json:"leaves"`
	Iters  int    `json:"iters"`
	// MeanNS and MaxNS are over the forward transitions' ResizeResult
	// durations (freeze -> activate, the window clients retry through).
	MeanNS int64 `json:"mean_ns"`
	MaxNS  int64 `json:"max_ns"`
}

// SpacePoint is one cell of the space grid: a short write-heavy run plus
// the shard-store byte counters it left behind.
type SpacePoint struct {
	// Mode is "replicated" (full copies on every server) or "coded"
	// (one fragment per server); DataShards is kData for coded points
	// (n-2f, 1 = degenerate replication) and 0 otherwise.
	Mode       string          `json:"mode"`
	DataShards int             `json:"data_shards,omitempty"`
	Run        *loadgen.Result `json:"run"`
}

// RateCurve is one open-loop sweep: Points[Knee] is the highest offered
// rate achieved within 95% (knee -1 when none was).
type RateCurve struct {
	Knee   int               `json:"knee"`
	Points []*loadgen.Result `json:"points"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	bench := flag.String("bench", trajectoryBenches, "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "benchtime passed to go test")
	withLoadgen := flag.Bool("loadgen", true, "include end-to-end loadgen runs (in-process and latency lanes)")
	loadgenDur := flag.Duration("loadgen-duration", 2*time.Second, "measured duration of each loadgen run")
	out := flag.String("out", "", "output path (default BENCH_<date>.json)")
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "xxx", "-bench", *bench,
		"-benchtime", *benchtime, "-count", "1", ".")
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}
	results, err := parseBenchOutput(string(raw))
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines matched %q", *bench)
	}
	snap := Snapshot{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  buildinfo.GoVersion(),
		GitCommit:  buildinfo.GitCommit(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Bench:      *bench,
		Benchtime:  *benchtime,
		Results:    results,
	}
	if *withLoadgen {
		lg, err := runLoadgen(*loadgenDur)
		if err != nil {
			return err
		}
		snap.Loadgen = lg
		sweep, err := runShardSweep(*loadgenDur)
		if err != nil {
			return err
		}
		snap.ShardSweep = sweep
		curve, err := runRateCurve(*loadgenDur)
		if err != nil {
			return err
		}
		snap.RateCurve = curve
		space, err := runSpaceGrid(*loadgenDur)
		if err != nil {
			return err
		}
		snap.Space = space
		reconfig, err := runReconfig()
		if err != nil {
			return err
		}
		snap.Reconfig = reconfig
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", snap.Date)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(results))
	return nil
}

// parseBenchOutput extracts benchmark result lines from `go test -bench`
// output. A line has the shape
//
//	BenchmarkName/sub-8   100   123456 ns/op   4.2 metric/unit   ...
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parseBenchOutput(out string) ([]Result, error) {
	var results []Result
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // not a result line (e.g. "BenchmarkX ... FAIL")
		}
		res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: bad metric value %q", line, fields[i])
			}
			res.Metrics[fields[i+1]] = val
		}
		results = append(results, res)
	}
	return results, nil
}

// runLoadgen records the end-to-end trajectory: a closed-loop run on each
// lane backend through the async client engine. Both runs are atomic
// builds with the linearizability gate on; a violation fails the snapshot
// rather than recording a tainted number.
func runLoadgen(dur time.Duration) ([]*loadgen.Result, error) {
	ctx := context.Background()
	configs := []loadgen.Config{
		// In-process lane: the engine-loop-bound serial ceiling.
		{Kind: runner.KindABDMax, Atomic: true, Clients: 256, ReadFraction: 0.5,
			Duration: dur, MaxOps: 500_000, Seed: 1},
		// Latency lane: realistic asynchrony, 1000 clients in flight.
		{Kind: runner.KindABDMax, Atomic: true, Clients: 1000, ReadFraction: 0.5,
			Lane: runner.LaneLatency, Duration: dur, MaxOps: 500_000, Seed: 1},
	}
	var out []*loadgen.Result
	for _, cfg := range configs {
		res, err := loadgen.Run(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("loadgen (%s lane): %w", cfg.Lane, err)
		}
		if len(res.Violations) > 0 {
			return nil, fmt.Errorf("loadgen (%s lane): %d consistency violations", res.Lane, len(res.Violations))
		}
		if res.Failed > 0 {
			return nil, fmt.Errorf("loadgen (%s lane): %d operations failed", res.Lane, res.Failed)
		}
		fmt.Printf("loadgen %s lane: %.0f ops/sec, p50=%v p99=%v (in-flight peak %d)\n",
			res.Lane, res.OpsPerSec,
			time.Duration(res.Latency.P50), time.Duration(res.Latency.P99), res.MaxInFlight)
		out = append(out, res)
	}
	return out, nil
}

// gate fails a run that recorded violations or failed operations, so a
// tainted number never lands in the snapshot.
func gate(what string, res *loadgen.Result) error {
	if len(res.Violations) > 0 {
		return fmt.Errorf("%s: %d consistency violations", what, len(res.Violations))
	}
	if res.Failed > 0 {
		return fmt.Errorf("%s: %d operations failed", what, res.Failed)
	}
	return nil
}

// runShardSweep measures aggregate closed-loop throughput at shard counts
// 1, 2, 4, 8 on the latency lane: 8 clients per shard (weak scaling), 4
// keys per shard, engines matching shards, atomic builds with the
// linearizability gate on.
func runShardSweep(dur time.Duration) ([]*loadgen.Result, error) {
	ctx := context.Background()
	var out []*loadgen.Result
	for _, shards := range []int{1, 2, 4, 8} {
		res, err := loadgen.Run(ctx, loadgen.Config{
			Kind: runner.KindABDMax, Atomic: true,
			Clients: 8 * shards, ReadFraction: 0.5,
			Registers: 4 * shards, Shards: shards, Engines: shards,
			Lane: runner.LaneLatency, Duration: dur, Seed: 1,
		})
		if err != nil {
			return nil, fmt.Errorf("shard sweep S=%d: %w", shards, err)
		}
		if err := gate(fmt.Sprintf("shard sweep S=%d", shards), res); err != nil {
			return nil, err
		}
		fmt.Printf("shard sweep S=%d: %.0f ops/sec, p50=%v p99=%v\n",
			shards, res.OpsPerSec,
			time.Duration(res.Latency.P50), time.Duration(res.Latency.P99))
		out = append(out, res)
	}
	if base, quad := out[0].OpsPerSec, out[2].OpsPerSec; base > 0 {
		fmt.Printf("shard sweep: 4-shard/1-shard aggregate = %.2fx\n", quad/base)
	}
	return out, nil
}

// runRateCurve traces the open-loop latency-vs-offered-rate curve on the
// latency lane (CO-corrected timestamps; see internal/loadgen) and marks
// the knee — the highest offered rate achieved within 95%.
func runRateCurve(dur time.Duration) (*RateCurve, error) {
	rates := []float64{10_000, 20_000, 40_000, 60_000, 80_000, 100_000}
	results, err := loadgen.RateSweep(context.Background(), loadgen.Config{
		Kind: runner.KindABDMax, Atomic: true,
		Clients: 64, ReadFraction: 0.5,
		Registers: 8, Shards: 2, Engines: 2,
		Lane: runner.LaneLatency, Duration: dur, Seed: 1,
	}, rates)
	if err != nil {
		return nil, fmt.Errorf("rate curve: %w", err)
	}
	curve := &RateCurve{Knee: loadgen.Knee(results), Points: results}
	for i, res := range results {
		if err := gate(fmt.Sprintf("rate curve at %.0f", res.Rate), res); err != nil {
			return nil, err
		}
		marker := ""
		if i == curve.Knee {
			marker = "  <- knee"
		}
		fmt.Printf("rate curve: offered %.0f -> %.0f ops/sec, p50=%v p99=%v%s\n",
			res.Rate, res.OpsPerSec,
			time.Duration(res.Latency.P50), time.Duration(res.Latency.P99), marker)
	}
	return curve, nil
}

// runReconfig measures the freeze-to-activate wall-clock of batched view
// transitions per membership delta size: a live abd-max register at n=5,
// f=1 is grown or swapped (and restored to n=5 between iterations), and
// the forward transition's ResizeResult.Duration — the window concurrent
// clients retry through — is recorded. No client load runs during the
// measurement; this is the floor cost of the transition itself (freeze,
// drain, reshape seeding, transfer, activation).
func runReconfig() ([]*ReconfigPoint, error) {
	ctx := context.Background()
	deltas := []struct {
		name          string
		joins, leaves int
	}{
		{"join1", 1, 0}, {"join2", 2, 0}, {"swap1", 1, 1}, {"swap2", 2, 2},
	}
	const iters = 8
	var out []*ReconfigPoint
	for _, d := range deltas {
		env, err := runner.NewEnv(5, nil)
		if err != nil {
			return nil, err
		}
		reg, _, err := runner.BuildWith(runner.KindABDMax, env.Fabric, 1, 1, runner.BuildOpts{Atomic: true})
		if err != nil {
			env.Fabric.Close()
			return nil, fmt.Errorf("reconfig %s: %w", d.name, err)
		}
		w, err := reg.Writer(0)
		if err != nil {
			env.Fabric.Close()
			return nil, err
		}
		if err := w.Write(ctx, 7); err != nil {
			env.Fabric.Close()
			return nil, fmt.Errorf("reconfig %s: seeding write: %w", d.name, err)
		}
		var sum, max time.Duration
		for i := 0; i < iters; i++ {
			spec := fabric.ResizeSpec{Join: make([]fabric.LaneMaker, d.joins)}
			view := env.Cluster.View()
			spec.Leave = append(spec.Leave, view.Members[:d.leaves]...)
			res, err := runner.ResizeRegister(ctx, env, reg, spec)
			if err != nil {
				env.Fabric.Close()
				return nil, fmt.Errorf("reconfig %s iter %d: %w", d.name, i, err)
			}
			sum += res.Duration
			if res.Duration > max {
				max = res.Duration
			}
			if d.joins > d.leaves {
				// Restore n before the next iteration (unmeasured).
				if _, err := runner.ResizeRegister(ctx, env, reg, fabric.ResizeSpec{Leave: res.Joined}); err != nil {
					env.Fabric.Close()
					return nil, fmt.Errorf("reconfig %s iter %d restore: %w", d.name, i, err)
				}
			}
		}
		env.Fabric.Close()
		mean := sum / iters
		fmt.Printf("reconfig %s (+%d/-%d): mean=%v max=%v over %d transitions\n",
			d.name, d.joins, d.leaves, mean, max, iters)
		out = append(out, &ReconfigPoint{
			Delta: d.name, Joins: d.joins, Leaves: d.leaves, Iters: iters,
			MeanNS: mean.Nanoseconds(), MaxNS: max.Nanoseconds(),
		})
	}
	return out, nil
}

// runSpaceGrid measures the bytes-per-server axis: replicated (abd-max)
// vs coded runs with 64 KiB values at n=5, f=1 (kData=3, real striping)
// and f=2 (kData=1, where the paper's bound forces the coded construction
// back onto full copies). Each cell is a short write-heavy closed-loop
// run; the counters are read after the drain, so every counted write is
// complete.
func runSpaceGrid(dur time.Duration) ([]*SpacePoint, error) {
	ctx := context.Background()
	const valueSize = 64 << 10
	base := loadgen.Config{
		N: 5, ValueSize: valueSize,
		Clients: 8, ReadFraction: 0.25, Registers: 2,
		Duration: dur, MaxOps: 200, Seed: 1,
	}
	var out []*SpacePoint
	for _, f := range []int{1, 2} {
		for _, kind := range []runner.Kind{runner.KindABDMax, runner.KindCoded} {
			cfg := base
			cfg.Kind, cfg.F = kind, f
			res, err := loadgen.Run(ctx, cfg)
			if err != nil {
				return nil, fmt.Errorf("space grid %s f=%d: %w", kind, f, err)
			}
			if err := gate(fmt.Sprintf("space grid %s f=%d", kind, f), res); err != nil {
				return nil, err
			}
			pt := &SpacePoint{Mode: "replicated", Run: res}
			if kind == runner.KindCoded {
				pt.Mode = "coded"
				pt.DataShards = cfg.N - 2*f
			}
			fmt.Printf("space grid %s f=%d: total=%d bytes, per-server=%v\n",
				kind, f, res.TotalBytes, res.BytesPerServer)
			out = append(out, pt)
		}
	}
	// The acceptance inequality: wherever striping is real, coded beats
	// replicated at the same grid point.
	for i := 0; i+1 < len(out); i += 2 {
		rep, coded := out[i], out[i+1]
		if coded.DataShards > 1 && coded.Run.TotalBytes >= rep.Run.TotalBytes {
			return nil, fmt.Errorf("space grid f=%d: coded stores %d bytes, replicated %d — striping did not win",
				rep.Run.F, coded.Run.TotalBytes, rep.Run.TotalBytes)
		}
	}
	return out, nil
}
