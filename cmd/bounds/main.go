// Command bounds prints the paper's Table 1 for concrete parameters and
// sweeps the register bounds across n, showing the coincidence points the
// paper highlights (n = 2f+1 and n >= kf+f+1).
//
// Usage:
//
//	bounds -k 5 -f 2 -n 6
//	bounds -k 5 -f 2 -sweep        # sweep n from 2f+1 to kf+f+3
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/bounds"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bounds:", err)
		os.Exit(1)
	}
}

func run() error {
	k := flag.Int("k", 5, "number of writers")
	f := flag.Int("f", 2, "failure threshold")
	n := flag.Int("n", 0, "number of servers (default 2f+2)")
	sweep := flag.Bool("sweep", false, "sweep n from 2f+1 to kf+f+3")
	flag.Parse()

	if *n == 0 {
		*n = 2**f + 2
	}
	if *sweep {
		return sweepN(*k, *f)
	}
	return printTable1(*k, *f, *n)
}

// printTable1 prints Table 1 instantiated at (k, f, n).
func printTable1(k, f, n int) error {
	rows, err := bounds.Table1(k, f, n)
	if err != nil {
		return err
	}
	fmt.Printf("Table 1 at k=%d writers, f=%d failures, n=%d servers\n\n", k, f, n)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "base object\tlower (WS-Safe, obstruction-free)\tupper (WS-Regular, wait-free)")
	for _, row := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\n", row.BaseObject, row.Lower, row.Upper)
	}
	return w.Flush()
}

// sweepN prints the register bounds for every n in the interesting range.
func sweepN(k, f int) error {
	lo := 2*f + 1
	hi := k*f + f + 3
	fmt.Printf("register bounds sweep: k=%d f=%d, n=%d..%d\n\n", k, f, lo, hi)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "n\tz\tlower\tupper\tgap\tnote")
	for n := lo; n <= hi; n++ {
		z, err := bounds.Z(f, n)
		if err != nil {
			return err
		}
		lower, err := bounds.RegisterLower(k, f, n)
		if err != nil {
			return err
		}
		upper, err := bounds.RegisterUpper(k, f, n)
		if err != nil {
			return err
		}
		note := ""
		switch {
		case n == 2*f+1:
			note = "coincide: kf+k(f+1)"
		case n >= k*f+f+1 && lower == k*f+f+1:
			note = "coincide: kf+f+1"
		case lower == upper:
			note = "coincide"
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%s\n", n, z, lower, upper, upper-lower, note)
	}
	return w.Flush()
}
