// Package emulation defines the public surface of the reliable-register
// emulations studied by the paper: a fault-tolerant multi-writer register
// for an a-priori known set of k writers (the paper's k-register), exposed
// through per-client handles.
//
// Five constructions implement this interface, one per sub-package:
//
//   - abdmax:   multi-writer ABD over one max-register per server (2f+1
//     base objects — Table 1, row "max-register").
//   - casmax:   the same quorum engine over per-server max-registers each
//     emulated from a single CAS cell via Algorithm 1 (2f+1 base objects —
//     Table 1, row "CAS").
//   - regemu:   Algorithm 2, the paper's main upper-bound construction from
//     plain registers (kf + ceil(k/z)(f+1) base objects — Table 1, row
//     "register").
//   - aacmax:   the n = 2f+1 special case: per-server k-writer max-registers
//     built from k plain registers each ((2f+1)k base objects).
//   - naiveabd: a deliberately under-provisioned baseline (one plain
//     register per server) that the lower-bound adversary breaks.
//
// Handles are not safe for concurrent use; each client runs its own handle,
// mirroring the paper's per-client deterministic state machines.
package emulation

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/fabric"
	"repro/internal/types"
)

// ErrResizeUnsupported marks a construction that cannot re-place its base
// objects across a view resize (regemu's covering-proof placement is pinned
// to the seed view). Callers that drive fabric.Resize with a reshape must
// check for it and fall back to same-shape replacement.
var ErrResizeUnsupported = errors.New("emulation: construction does not support view resizing")

// ViewResizable is implemented by registers that can re-place and re-seed
// their base objects during a fabric view transition. Reshape is invoked by
// the transition coordinator inside the frozen window (every old member
// departed and quiesced), so implementations may read authoritative state
// and seed new placements directly without racing client operations.
type ViewResizable interface {
	Reshape(rs *fabric.Reshaper) error
}

// ReaderIDBase is the first client ID handed to readers, keeping them
// disjoint from writer IDs 0..k-1. Constructions must reject k >=
// ReaderIDBase (ValidateWriters) or the two ID spaces would collide.
const ReaderIDBase types.ClientID = 1 << 20

// ValidateWriters checks that a requested writer count fits the client-ID
// scheme: writers occupy IDs 0..k-1, so k must be positive and stay below
// ReaderIDBase. Every construction calls this before allocating handles.
func ValidateWriters(k int) error {
	if k <= 0 {
		return fmt.Errorf("emulation: k must be positive, got %d", k)
	}
	if types.ClientID(k) >= ReaderIDBase {
		return fmt.Errorf("emulation: k=%d collides with the reader ID space (ReaderIDBase=%d)", k, ReaderIDBase)
	}
	return nil
}

// ReaderIDs allocates fresh reader client IDs above ReaderIDBase. The zero
// value is ready to use; Next is safe for concurrent callers (the async
// engine creates readers from its event loop while tests create them from
// their own goroutines).
type ReaderIDs struct {
	ctr atomic.Int64
}

// Next returns the next unused reader client ID.
func (r *ReaderIDs) Next() types.ClientID {
	return ReaderIDBase + types.ClientID(r.ctr.Add(1))
}

// Writer is the write-side handle of an emulated register for one client.
type Writer interface {
	// Write performs a high-level write of v. It blocks until the write
	// returns or ctx is done; a ctx error means the operation could not
	// complete (e.g. too many servers crashed for the failure threshold).
	Write(ctx context.Context, v types.Value) error
	// Client returns the writer's client ID.
	Client() types.ClientID
}

// Reader is the read-side handle of an emulated register for one client.
type Reader interface {
	// Read performs a high-level read.
	Read(ctx context.Context) (types.Value, error)
	// Client returns the reader's client ID.
	Client() types.ClientID
}

// AsyncWriter is the completion-based write-side handle: StartWrite
// triggers the high-level write and returns immediately; done fires exactly
// once when (and if) the write completes — possibly inline, on the
// in-process lane, or later on a fabric goroutine. If the failure
// assumption is violated (more than f servers crash, or the environment
// holds responses forever) done never fires, exactly like a pending
// high-level op; callers bound the wait with their own clocks. done must
// not block. Like the blocking handles, an AsyncWriter serializes: the
// caller must not start a second operation before the previous done fired
// (the paper's well-formed histories); internal/emulation/async enforces
// this per logical client.
type AsyncWriter interface {
	StartWrite(v types.Value, done func(error))
}

// AsyncReader is the completion-based read-side handle; the same contract
// as AsyncWriter applies.
type AsyncReader interface {
	StartRead(done func(types.Value, error))
}

// Register is an emulated fault-tolerant k-register.
type Register interface {
	// Name identifies the construction (for reports and benches).
	Name() string
	// K returns the number of supported writers.
	K() int
	// F returns the failure threshold.
	F() int
	// Writer returns the handle for writer i in [0, k). Each call
	// returns the same underlying per-client state; the handle must be
	// used from one goroutine at a time.
	Writer(i int) (Writer, error)
	// NewReader returns a fresh reader handle with a fresh client ID.
	NewReader() Reader
	// ResourceComplexity returns the number of base objects the
	// construction placed — the paper's space measure.
	ResourceComplexity() int
}
