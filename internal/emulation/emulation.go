// Package emulation defines the public surface of the reliable-register
// emulations studied by the paper: a fault-tolerant multi-writer register
// for an a-priori known set of k writers (the paper's k-register), exposed
// through per-client handles.
//
// Five constructions implement this interface, one per sub-package:
//
//   - abdmax:   multi-writer ABD over one max-register per server (2f+1
//     base objects — Table 1, row "max-register").
//   - casmax:   the same quorum engine over per-server max-registers each
//     emulated from a single CAS cell via Algorithm 1 (2f+1 base objects —
//     Table 1, row "CAS").
//   - regemu:   Algorithm 2, the paper's main upper-bound construction from
//     plain registers (kf + ceil(k/z)(f+1) base objects — Table 1, row
//     "register").
//   - aacmax:   the n = 2f+1 special case: per-server k-writer max-registers
//     built from k plain registers each ((2f+1)k base objects).
//   - naiveabd: a deliberately under-provisioned baseline (one plain
//     register per server) that the lower-bound adversary breaks.
//
// Handles are not safe for concurrent use; each client runs its own handle,
// mirroring the paper's per-client deterministic state machines.
package emulation

import (
	"context"

	"repro/internal/types"
)

// ReaderIDBase is the first client ID handed to readers, keeping them
// disjoint from writer IDs 0..k-1.
const ReaderIDBase types.ClientID = 1 << 20

// Writer is the write-side handle of an emulated register for one client.
type Writer interface {
	// Write performs a high-level write of v. It blocks until the write
	// returns or ctx is done; a ctx error means the operation could not
	// complete (e.g. too many servers crashed for the failure threshold).
	Write(ctx context.Context, v types.Value) error
	// Client returns the writer's client ID.
	Client() types.ClientID
}

// Reader is the read-side handle of an emulated register for one client.
type Reader interface {
	// Read performs a high-level read.
	Read(ctx context.Context) (types.Value, error)
	// Client returns the reader's client ID.
	Client() types.ClientID
}

// Register is an emulated fault-tolerant k-register.
type Register interface {
	// Name identifies the construction (for reports and benches).
	Name() string
	// K returns the number of supported writers.
	K() int
	// F returns the failure threshold.
	F() int
	// Writer returns the handle for writer i in [0, k). Each call
	// returns the same underlying per-client state; the handle must be
	// used from one goroutine at a time.
	Writer(i int) (Writer, error)
	// NewReader returns a fresh reader handle with a fresh client ID.
	NewReader() Reader
	// ResourceComplexity returns the number of base objects the
	// construction placed — the paper's space measure.
	ResourceComplexity() int
}
