package rounds

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/types"
)

// Report-level gathers: the coded construction folds nothing — it needs the
// raw per-server responses (fragment lists, payload bytes) to reconstruct a
// stripe, so these gathers collect whole Reports instead of a MaxTSValue
// fold. The quorum and crash semantics are identical to Gather/ScatterFold.

// GatherReports blocks until need successful reports arrived on ch,
// returning them in arrival order. It fails fast on report errors and fails
// deterministically when ctx is done.
func GatherReports(ctx context.Context, ch <-chan Report, need int) ([]Report, error) {
	out := make([]Report, 0, need)
	for len(out) < need {
		// A done context fails deterministically even when reports are
		// already buffered (select picks ready cases at random).
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("rounds: report gather (%d/%d): %w", len(out), need, err)
		}
		select {
		case <-ctx.Done():
			return out, fmt.Errorf("rounds: report gather (%d/%d): %w", len(out), need, ctx.Err())
		case rep := <-ch:
			if rep.Err != nil {
				return out, fmt.Errorf("rounds: store error: %w", rep.Err)
			}
			out = append(out, rep)
		}
	}
	return out, nil
}

// AwaitReports blocks until need responses arrived, returning the raw
// reports instead of a folded maximum.
func (r *Round) AwaitReports(ctx context.Context, need int) ([]Report, error) {
	return GatherReports(ctx, r.ch, need)
}

// reportFold accumulates whole reports and fires exactly once: on the
// need'th successful report or the first error. Late completions after the
// fire are absorbed silently, like Fold's.
type reportFold struct {
	mu     sync.Mutex
	need   int
	got    []Report
	done   bool
	report func([]Report, error)
}

func (j *reportFold) complete(rep Report) {
	j.mu.Lock()
	if j.done {
		j.mu.Unlock()
		return
	}
	if rep.Err != nil {
		j.done = true
		r := j.report
		j.mu.Unlock()
		r(nil, rep.Err)
		return
	}
	j.got = append(j.got, rep)
	if len(j.got) < j.need {
		j.mu.Unlock()
		return
	}
	j.done = true
	r := j.report
	got := j.got
	j.mu.Unlock()
	r(got, nil)
}

// viewRetryReports is ViewRetry for report-level folds: a round whose first
// error is a view change re-scatters whole through fresh routes after
// fabric.ViewRetryDelay, up to fabric.MaxViewRetries attempts. Sound for the
// same reason as ViewRetry — the view-change completion guarantees the op
// never applied, and every member of a coded round is an idempotent read or
// (re)write of the same timestamped fragment.
func viewRetryReports(attempt int, report func([]Report, error), rescatter func(attempt int)) func([]Report, error) {
	return func(reps []Report, err error) {
		if err != nil && fabric.IsViewChange(err) && attempt < fabric.MaxViewRetries {
			next := attempt + 1
			time.AfterFunc(fabric.ViewRetryDelay(attempt), func() { rescatter(next) })
			return
		}
		report(reps, err)
	}
}

// ScatterFoldReports triggers every target in one batch and invokes report
// exactly once: with the first need successful reports (in arrival order)
// or the first error. It never blocks — completions run on fabric
// goroutines — and rounds that race a reconfiguration retry transparently,
// exactly like ScatterFold. If fewer than need responses ever arrive (held
// or crashed operations), the report never fires; callers bound the wait at
// a higher level.
func ScatterFoldReports(fab *fabric.Fabric, client types.ClientID, targets []Target, need int, report func([]Report, error)) {
	ScatterFoldReportsDyn(fab, client, func() ([]Target, int) { return targets, need }, report)
}

// ScatterFoldReportsDyn is ScatterFoldReports with per-attempt geometry
// (see Plan): build runs before every scatter, so a coded round retried
// across a resize epoch re-encodes against the new fragment placement and
// folds at the new n−f instead of replaying its first attempt's shape.
func ScatterFoldReportsDyn(fab *fabric.Fabric, client types.ClientID, build Plan, report func([]Report, error)) {
	scatterFoldReportsDynAttempt(fab, client, build, report, 0)
}

func scatterFoldReportsDynAttempt(fab *fabric.Fabric, client types.ClientID, build Plan, report func([]Report, error), attempt int) {
	targets, need := build()
	if need <= 0 || need > len(targets) {
		report(nil, fmt.Errorf("rounds: report fold needs %d of %d targets", need, len(targets)))
		return
	}
	j := &reportFold{need: need, report: viewRetryReports(attempt, report, func(next int) {
		scatterFoldReportsDynAttempt(fab, client, build, report, next)
	})}
	batch := make([]fabric.BatchOp, len(targets))
	for i, t := range targets {
		srv, _ := fab.ServerFor(t.Object)
		i, t, srv := i, t, srv
		batch[i] = fabric.BatchOp{Object: t.Object, Inv: t.Inv, Done: func(o fabric.Outcome) {
			j.complete(Report{Index: i, Object: t.Object, Server: srv, Val: o.Resp.Val, Data: o.Resp.Data, Frags: o.Resp.Frags, Err: o.Err})
		}}
	}
	fab.TriggerBatch(client, batch)
}
