package rounds

import (
	"context"
	"testing"
	"time"

	"repro/internal/baseobj"
	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/types"
)

// testEnv builds an n-server cluster with one max-register per server.
func testEnv(t *testing.T, n int, gate fabric.Gate) (*fabric.Fabric, []types.ObjectID) {
	t.Helper()
	c, err := cluster.New(n)
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]types.ObjectID, n)
	for s := 0; s < n; s++ {
		obj, err := c.PlaceMaxRegister(types.ServerID(s))
		if err != nil {
			t.Fatal(err)
		}
		objs[s] = obj
	}
	var opts []fabric.Option
	if gate != nil {
		opts = append(opts, fabric.WithGate(gate))
	}
	return fabric.New(c, opts...), objs
}

func readTargets(objs []types.ObjectID) []Target {
	ts := make([]Target, len(objs))
	for i, obj := range objs {
		ts[i] = Target{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpReadMax}}
	}
	return ts
}

func writeTargets(objs []types.ObjectID, v types.TSValue) []Target {
	ts := make([]Target, len(objs))
	for i, obj := range objs {
		ts[i] = Target{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpWriteMax, Arg: v}}
	}
	return ts
}

func shortCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	t.Cleanup(cancel)
	return ctx
}

func TestScatterAwaitMax(t *testing.T) {
	fab, objs := testEnv(t, 3, nil)
	v := types.TSValue{TS: 7, Writer: 1, Val: 42}
	if _, err := Scatter(fab, 1, writeTargets(objs, v)).AwaitMax(context.Background(), 3); err != nil {
		t.Fatalf("write round: %v", err)
	}
	got, err := Scatter(fab, 2, readTargets(objs)).AwaitMax(context.Background(), 2)
	if err != nil {
		t.Fatalf("read round: %v", err)
	}
	if got != v {
		t.Fatalf("AwaitMax = %v, want %v", got, v)
	}
}

func TestAwaitMaxAdaptsToCrash(t *testing.T) {
	fab, objs := testEnv(t, 3, nil)
	if err := fab.Crash(0); err != nil {
		t.Fatal(err)
	}
	// n-f = 2 responses still arrive from the two live servers.
	if _, err := Scatter(fab, 1, readTargets(objs)).AwaitMax(context.Background(), 2); err != nil {
		t.Fatalf("quorum round with crash: %v", err)
	}
	// All 3 can never respond: the gather must fail via ctx, not hang.
	if _, err := Scatter(fab, 1, readTargets(objs)).AwaitMax(shortCtx(t), 3); err == nil {
		t.Fatal("full round over a crashed server succeeded")
	}
}

func TestAwaitMaxHeldResponses(t *testing.T) {
	gate := fabric.GateFuncs{Respond: func(ev fabric.TriggerEvent, _ baseobj.Response) fabric.Decision {
		if ev.Server == 2 {
			return fabric.Hold
		}
		return fabric.Pass
	}}
	fab, objs := testEnv(t, 3, gate)
	if _, err := Scatter(fab, 1, readTargets(objs)).AwaitMax(context.Background(), 2); err != nil {
		t.Fatalf("quorum with one held response: %v", err)
	}
	if _, err := Scatter(fab, 1, readTargets(objs)).AwaitMax(shortCtx(t), 3); err == nil {
		t.Fatal("await of a held response succeeded")
	}
}

func TestGatherFailsFastOnStoreError(t *testing.T) {
	ch := make(chan Report, 2)
	ch <- Report{Err: context.DeadlineExceeded}
	if _, err := Gather(context.Background(), ch, 2); err == nil {
		t.Fatal("Gather swallowed a store error")
	}
}

// TestAwaitServers exercises the Algorithm 2 scan condition: a server
// counts only when every one of its operations responded.
func TestAwaitServers(t *testing.T) {
	c, err := cluster.New(2)
	if err != nil {
		t.Fatal(err)
	}
	// Two registers per server.
	var objs []types.ObjectID
	for s := 0; s < 2; s++ {
		for i := 0; i < 2; i++ {
			obj, err := c.PlaceRegister(types.ServerID(s))
			if err != nil {
				t.Fatal(err)
			}
			objs = append(objs, obj)
		}
	}
	// Hold the response of one register of server 1: server 1 never
	// completes a scan, server 0 does.
	heldObj := objs[3]
	gate := fabric.GateFuncs{Respond: func(ev fabric.TriggerEvent, _ baseobj.Response) fabric.Decision {
		if ev.Object == heldObj {
			return fabric.Hold
		}
		return fabric.Pass
	}}
	fab := fabric.New(c, fabric.WithGate(gate))

	targets := make([]Target, len(objs))
	for i, obj := range objs {
		targets[i] = Target{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpRead}}
	}
	if _, err := Scatter(fab, 1, targets).AwaitServers(context.Background(), 1); err != nil {
		t.Fatalf("one full scan: %v", err)
	}
	if _, err := Scatter(fab, 1, targets).AwaitServers(shortCtx(t), 2); err == nil {
		t.Fatal("two full scans succeeded with a held register response")
	}
}

func TestScatterFold(t *testing.T) {
	fab, objs := testEnv(t, 3, nil)
	v := types.TSValue{TS: 3, Writer: 0, Val: 9}
	if _, err := Scatter(fab, 0, writeTargets(objs, v)).AwaitMax(context.Background(), 3); err != nil {
		t.Fatal(err)
	}

	fired := 0
	var got types.TSValue
	ScatterFold(fab, 1, readTargets(objs), len(objs), func(max types.TSValue, err error) {
		if err != nil {
			t.Fatalf("fold: %v", err)
		}
		fired++
		got = max
	})
	if fired != 1 || got != v {
		t.Fatalf("fold fired=%d max=%v, want 1 fire of %v", fired, got, v)
	}

	// Degenerate need reports an error instead of never firing.
	errFired := false
	ScatterFold(fab, 1, readTargets(objs), len(objs)+1, func(_ types.TSValue, err error) {
		if err == nil {
			t.Fatal("fold with need > targets reported no error")
		}
		errFired = true
	})
	if !errFired {
		t.Fatal("degenerate fold never reported")
	}
}

func TestScatterFoldReportsProtocolError(t *testing.T) {
	c, err := cluster.New(1)
	if err != nil {
		t.Fatal(err)
	}
	// A single-writer register: client 5 is not authorized.
	obj, err := c.PlaceRegister(0, baseobj.WithWriters([]types.ClientID{0}))
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(c)
	fired := false
	ScatterFold(fab, 5, []Target{{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpWrite, Arg: types.TSValue{TS: 1, Writer: 5}}}}, 1,
		func(_ types.TSValue, err error) {
			if err == nil {
				t.Fatal("unauthorized write folded without error")
			}
			fired = true
		})
	if !fired {
		t.Fatal("fold never reported")
	}
}
