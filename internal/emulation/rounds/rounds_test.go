package rounds

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/baseobj"
	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/types"
)

// testEnv builds an n-server cluster with one max-register per server.
func testEnv(t *testing.T, n int, gate fabric.Gate) (*fabric.Fabric, []types.ObjectID) {
	t.Helper()
	c, err := cluster.New(n)
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]types.ObjectID, n)
	for s := 0; s < n; s++ {
		obj, err := c.PlaceMaxRegister(types.ServerID(s))
		if err != nil {
			t.Fatal(err)
		}
		objs[s] = obj
	}
	var opts []fabric.Option
	if gate != nil {
		opts = append(opts, fabric.WithGate(gate))
	}
	return fabric.New(c, opts...), objs
}

func readTargets(objs []types.ObjectID) []Target {
	ts := make([]Target, len(objs))
	for i, obj := range objs {
		ts[i] = Target{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpReadMax}}
	}
	return ts
}

func writeTargets(objs []types.ObjectID, v types.TSValue) []Target {
	ts := make([]Target, len(objs))
	for i, obj := range objs {
		ts[i] = Target{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpWriteMax, Arg: v}}
	}
	return ts
}

func shortCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	t.Cleanup(cancel)
	return ctx
}

func TestScatterAwaitMax(t *testing.T) {
	fab, objs := testEnv(t, 3, nil)
	v := types.TSValue{TS: 7, Writer: 1, Val: 42}
	if _, err := Scatter(fab, 1, writeTargets(objs, v)).AwaitMax(context.Background(), 3); err != nil {
		t.Fatalf("write round: %v", err)
	}
	got, err := Scatter(fab, 2, readTargets(objs)).AwaitMax(context.Background(), 2)
	if err != nil {
		t.Fatalf("read round: %v", err)
	}
	if got != v {
		t.Fatalf("AwaitMax = %v, want %v", got, v)
	}
}

func TestAwaitMaxAdaptsToCrash(t *testing.T) {
	fab, objs := testEnv(t, 3, nil)
	if err := fab.Crash(0); err != nil {
		t.Fatal(err)
	}
	// n-f = 2 responses still arrive from the two live servers.
	if _, err := Scatter(fab, 1, readTargets(objs)).AwaitMax(context.Background(), 2); err != nil {
		t.Fatalf("quorum round with crash: %v", err)
	}
	// All 3 can never respond: the gather must fail via ctx, not hang.
	if _, err := Scatter(fab, 1, readTargets(objs)).AwaitMax(shortCtx(t), 3); err == nil {
		t.Fatal("full round over a crashed server succeeded")
	}
}

func TestAwaitMaxHeldResponses(t *testing.T) {
	gate := fabric.GateFuncs{Respond: func(ev fabric.TriggerEvent, _ baseobj.Response) fabric.Decision {
		if ev.Server == 2 {
			return fabric.Hold
		}
		return fabric.Pass
	}}
	fab, objs := testEnv(t, 3, gate)
	if _, err := Scatter(fab, 1, readTargets(objs)).AwaitMax(context.Background(), 2); err != nil {
		t.Fatalf("quorum with one held response: %v", err)
	}
	if _, err := Scatter(fab, 1, readTargets(objs)).AwaitMax(shortCtx(t), 3); err == nil {
		t.Fatal("await of a held response succeeded")
	}
}

func TestGatherFailsFastOnStoreError(t *testing.T) {
	ch := make(chan Report, 2)
	ch <- Report{Err: context.DeadlineExceeded}
	if _, err := Gather(context.Background(), ch, 2); err == nil {
		t.Fatal("Gather swallowed a store error")
	}
}

// TestAwaitServers exercises the Algorithm 2 scan condition: a server
// counts only when every one of its operations responded.
func TestAwaitServers(t *testing.T) {
	c, err := cluster.New(2)
	if err != nil {
		t.Fatal(err)
	}
	// Two registers per server.
	var objs []types.ObjectID
	for s := 0; s < 2; s++ {
		for i := 0; i < 2; i++ {
			obj, err := c.PlaceRegister(types.ServerID(s))
			if err != nil {
				t.Fatal(err)
			}
			objs = append(objs, obj)
		}
	}
	// Hold the response of one register of server 1: server 1 never
	// completes a scan, server 0 does.
	heldObj := objs[3]
	gate := fabric.GateFuncs{Respond: func(ev fabric.TriggerEvent, _ baseobj.Response) fabric.Decision {
		if ev.Object == heldObj {
			return fabric.Hold
		}
		return fabric.Pass
	}}
	fab := fabric.New(c, fabric.WithGate(gate))

	targets := make([]Target, len(objs))
	for i, obj := range objs {
		targets[i] = Target{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpRead}}
	}
	if _, err := Scatter(fab, 1, targets).AwaitServers(context.Background(), 1); err != nil {
		t.Fatalf("one full scan: %v", err)
	}
	if _, err := Scatter(fab, 1, targets).AwaitServers(shortCtx(t), 2); err == nil {
		t.Fatal("two full scans succeeded with a held register response")
	}
}

// TestAwaitServersOverDeliveryIsAProtocolError forges the duplicate-report
// scenario the countdown must survive: a server that produces more reports
// than the round scattered to it. Before the guard, the countdown passed
// through zero (0 -> -1 -> ...) and a server whose count re-reached zero
// was counted as a second complete scan; now any report beyond a server's
// scattered quota fails the gather with ErrOverDelivery.
func TestAwaitServersOverDeliveryIsAProtocolError(t *testing.T) {
	ch := make(chan Report, 4)
	// Server 0 scattered one op but reports twice; server 1 never reports.
	ch <- Report{Server: 0, Val: types.TSValue{TS: 1}}
	ch <- Report{Server: 0, Val: types.TSValue{TS: 2}}
	remaining := map[types.ServerID]int{0: 1, 1: 1}
	_, err := awaitServers(context.Background(), ch, remaining, 2)
	if !errors.Is(err, ErrOverDelivery) {
		t.Fatalf("err = %v, want ErrOverDelivery", err)
	}

	// A report from a server the round never scattered to is equally
	// over-delivered (zero quota).
	ch = make(chan Report, 4)
	ch <- Report{Server: 7, Val: types.TSValue{TS: 1}}
	_, err = awaitServers(context.Background(), ch, map[types.ServerID]int{0: 1}, 1)
	if !errors.Is(err, ErrOverDelivery) {
		t.Fatalf("unknown-server err = %v, want ErrOverDelivery", err)
	}
}

// TestAwaitServersExactDeliveryStillCompletes pins the guard against
// false positives: a server delivering exactly its quota completes.
func TestAwaitServersExactDeliveryStillCompletes(t *testing.T) {
	ch := make(chan Report, 4)
	ch <- Report{Server: 0, Val: types.TSValue{TS: 1}}
	ch <- Report{Server: 0, Val: types.TSValue{TS: 3}}
	ch <- Report{Server: 1, Val: types.TSValue{TS: 2}}
	max, err := awaitServers(context.Background(), ch, map[types.ServerID]int{0: 2, 1: 1}, 2)
	if err != nil {
		t.Fatalf("awaitServers: %v", err)
	}
	if max.TS != 3 {
		t.Fatalf("max = %v, want ts 3", max)
	}
}

// TestDeliverNeverBlocks pins the guaranteed-capacity discipline: a send
// within capacity succeeds, a send beyond it panics loudly instead of
// blocking the (would-be fabric) goroutine forever.
func TestDeliverNeverBlocks(t *testing.T) {
	ch := make(chan Report, 1)
	Deliver(ch, Report{Index: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("over-capacity Deliver did not panic")
		}
	}()
	Deliver(ch, Report{Index: 2})
}

// TestAbandonedRoundReleaseCannotBlock is the cancellation-leak regression
// test: a gather abandoned by ctx cancellation leaves held ops behind;
// when the environment later releases every one of them, the late
// completions land in the abandoned round's buffer on the releasing
// goroutine. The capacity invariant (one slot per scattered call) means
// none of those sends can block — the release loop below would deadlock
// (and -race/timeout would catch it) if they could.
func TestAbandonedRoundReleaseCannotBlock(t *testing.T) {
	gate := fabric.GateFuncs{Respond: func(fabric.TriggerEvent, baseobj.Response) fabric.Decision {
		return fabric.Hold // hold every response
	}}
	fab, objs := testEnv(t, 3, gate)
	for round := 0; round < 4; round++ {
		r := Scatter(fab, 1, readTargets(objs))
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // abandon the gather before any response arrives
		if _, err := r.AwaitMax(ctx, len(objs)); err == nil {
			t.Fatal("cancelled gather succeeded")
		}
		// Release everything: each completion sends into the abandoned
		// round's channel, inline on this goroutine.
		if released := fab.ReleaseWhere(func(fabric.PendingOp) bool { return true }); released != len(objs) {
			t.Fatalf("round %d: released %d, want %d", round, released, len(objs))
		}
		for i, call := range r.Calls() {
			if _, ok := call.Outcome(); !ok {
				t.Fatalf("round %d: call %d did not complete after release", round, i)
			}
		}
	}
}

func TestScatterFold(t *testing.T) {
	fab, objs := testEnv(t, 3, nil)
	v := types.TSValue{TS: 3, Writer: 0, Val: 9}
	if _, err := Scatter(fab, 0, writeTargets(objs, v)).AwaitMax(context.Background(), 3); err != nil {
		t.Fatal(err)
	}

	fired := 0
	var got types.TSValue
	ScatterFold(fab, 1, readTargets(objs), len(objs), func(max types.TSValue, err error) {
		if err != nil {
			t.Fatalf("fold: %v", err)
		}
		fired++
		got = max
	})
	if fired != 1 || got != v {
		t.Fatalf("fold fired=%d max=%v, want 1 fire of %v", fired, got, v)
	}

	// Degenerate need reports an error instead of never firing.
	errFired := false
	ScatterFold(fab, 1, readTargets(objs), len(objs)+1, func(_ types.TSValue, err error) {
		if err == nil {
			t.Fatal("fold with need > targets reported no error")
		}
		errFired = true
	})
	if !errFired {
		t.Fatal("degenerate fold never reported")
	}
}

func TestScatterFoldReportsProtocolError(t *testing.T) {
	c, err := cluster.New(1)
	if err != nil {
		t.Fatal(err)
	}
	// A single-writer register: client 5 is not authorized.
	obj, err := c.PlaceRegister(0, baseobj.WithWriters([]types.ClientID{0}))
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(c)
	fired := false
	ScatterFold(fab, 5, []Target{{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpWrite, Arg: types.TSValue{TS: 1, Writer: 5}}}}, 1,
		func(_ types.TSValue, err error) {
			if err == nil {
				t.Fatal("unauthorized write folded without error")
			}
			fired = true
		})
	if !fired {
		t.Fatal("fold never reported")
	}
}

// multiEnv builds an n-server cluster with regs max-registers per server,
// returning read targets in server-major order (a scan).
func multiEnv(t *testing.T, n, regs int, gate fabric.Gate) (*fabric.Fabric, []Target, [][]types.ObjectID) {
	t.Helper()
	c, err := cluster.New(n)
	if err != nil {
		t.Fatal(err)
	}
	var scan []Target
	byServer := make([][]types.ObjectID, n)
	for s := 0; s < n; s++ {
		for r := 0; r < regs; r++ {
			obj, err := c.PlaceMaxRegister(types.ServerID(s))
			if err != nil {
				t.Fatal(err)
			}
			byServer[s] = append(byServer[s], obj)
			scan = append(scan, Target{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpReadMax}})
		}
	}
	var opts []fabric.Option
	if gate != nil {
		opts = append(opts, fabric.WithGate(gate))
	}
	return fabric.New(c, opts...), scan, byServer
}

func TestScatterFoldServersCompletes(t *testing.T) {
	fab, scan, byServer := multiEnv(t, 3, 2, nil)
	v := types.TSValue{TS: 3, Writer: 0, Val: 9}
	if _, err := Scatter(fab, 0, writeTargets([]types.ObjectID{byServer[1][1]}, v)).AwaitMax(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	got := make(chan types.TSValue, 1)
	ScatterFoldServers(fab, 1, scan, 3, func(max types.TSValue, err error) {
		if err != nil {
			t.Errorf("scan fold: %v", err)
		}
		got <- max
	})
	select {
	case max := <-got:
		if max != v {
			t.Fatalf("scan fold max = %v, want %v", max, v)
		}
	default:
		t.Fatal("scan fold did not fire synchronously on the in-process lane")
	}
}

// TestScatterFoldServersPartialScanDoesNotCount holds one register response
// per gated server: its scan stays partial and must not count toward the
// quorum until released.
func TestScatterFoldServersPartialScanDoesNotCount(t *testing.T) {
	var heldObj types.ObjectID = -1
	gate := fabric.GateFuncs{Respond: func(ev fabric.TriggerEvent, _ baseobj.Response) fabric.Decision {
		if ev.Object == heldObj {
			return fabric.Hold
		}
		return fabric.Pass
	}}
	fab, scan, byServer := multiEnv(t, 3, 2, gate)
	heldObj = byServer[0][0]
	fired := make(chan types.TSValue, 1)
	ScatterFoldServers(fab, 1, scan, 3, func(max types.TSValue, err error) {
		if err != nil {
			t.Errorf("scan fold: %v", err)
		}
		fired <- max
	})
	select {
	case <-fired:
		t.Fatal("scan fold fired with server 0's scan still partial")
	default:
	}
	fab.ReleaseWhere(func(fabric.PendingOp) bool { return true })
	select {
	case <-fired:
	default:
		t.Fatal("scan fold did not fire after releasing the held response")
	}
}

// TestServerFoldOverDelivery feeds the accumulator a duplicate report for an
// exhausted server: the same protocol violation AwaitServers rejects.
func TestServerFoldOverDelivery(t *testing.T) {
	errs := make(chan error, 1)
	j := &serverFold{
		remaining: map[types.ServerID]int{0: 1, 1: 1},
		need:      2,
		report:    func(_ types.TSValue, err error) { errs <- err },
	}
	j.complete(0, types.ZeroTSValue, nil)
	j.complete(0, types.ZeroTSValue, nil)
	select {
	case err := <-errs:
		if !errors.Is(err, ErrOverDelivery) {
			t.Fatalf("duplicate report error = %v, want ErrOverDelivery", err)
		}
	default:
		t.Fatal("duplicate report for an exhausted server did not fire the fold")
	}
}

// TestFoldLateCompletionsAbsorbed fires a fold, then keeps completing: the
// report must fire exactly once.
func TestFoldLateCompletionsAbsorbed(t *testing.T) {
	fired := 0
	j := NewFold(1, func(types.TSValue, error) { fired++ })
	j.Complete(types.TSValue{TS: 1}, nil)
	j.Complete(types.TSValue{TS: 2}, nil)
	j.Complete(types.ZeroTSValue, errors.New("late error"))
	if fired != 1 {
		t.Fatalf("fold fired %d times, want 1", fired)
	}
}
