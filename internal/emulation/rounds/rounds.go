// Package rounds is the shared quorum round engine underneath every
// emulation: scatter a round of low-level operations across the fabric's
// per-server dispatch lanes in one TriggerBatch call, then gather responses
// until a quorum condition holds. The paper's constructions differ in what
// they scatter (max-register ops, CAS chains, per-server register scans)
// and in the quorum condition (n-f responses, n-f complete server scans),
// but the round mechanics — trigger everything, fold the highest
// timestamped value, stay correct when servers crash or the environment
// holds responses forever — are identical, so they live here once.
//
// Three gather modes cover the five constructions:
//
//   - Round.AwaitMax: block until `need` responses arrived (the ABD
//     collect/push phases of abdmax, casmax, aacmax, naiveabd).
//   - Round.AwaitServers: block until every operation of `need` distinct
//     servers responded (Algorithm 2's complete per-server scans in regemu).
//   - ScatterFold / ScatterFoldServers: non-blocking; invoke a report
//     callback when the quorum condition holds (count-based or complete
//     per-server scans). These carry the asynchronous store starts (such
//     as aacmax's read-max) and the whole completion-based client path of
//     internal/emulation/async, where nothing may ever block a fabric
//     goroutine. Fold is the reusable accumulator underneath.
//
// Crash adaptivity is inherited from the fabric's semantics: operations on
// crashed servers never respond, so gathers simply keep waiting for other
// servers; a quorum assumption of at most f faulty servers makes the
// condition eventually reachable, and the caller's context bounds the wait
// otherwise.
//
// Gather (the channel-level primitive) is exported for stores whose
// operations are multi-step callback chains (casmax's Algorithm 1 loop)
// rather than single low-level ops.
package rounds

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/baseobj"
	"repro/internal/fabric"
	"repro/internal/types"
)

// Errors reported by the round engine.
var (
	// ErrOverDelivery is returned by AwaitServers when a server produces
	// more reports than the round scattered to it: a duplicated or retried
	// completion. Without the guard the per-server countdown would pass
	// through zero and silently double-count complete scans, so the engine
	// treats over-delivery as a protocol violation instead.
	ErrOverDelivery = errors.New("rounds: server delivered more reports than its scattered operations")

	// ErrReportOverflow reports a send into a report channel whose buffer
	// is exhausted. Every report channel is sized for the maximum number
	// of sends its producers can make (one per scattered call, one per
	// store), which is what lets completion closures run on fabric
	// goroutines without ever blocking; an overflow means a producer
	// violated its at-most-once contract.
	ErrReportOverflow = errors.New("rounds: report channel overflow")
)

// Deliver sends a report without ever blocking: report channels are sized
// so that every producer's at-most-once send fits the buffer, even when
// the gather abandoned the channel early (ctx cancellation) and nothing
// will ever drain it. A full buffer therefore cannot mean "consumer is
// slow" — it means a producer sent more than it was sized for — and
// Deliver turns that from a fabric goroutine blocked forever (a silent
// leak that eventually deadlocks the whole dispatch path) into a loud
// panic at the violation site.
func Deliver(ch chan<- Report, rep Report) {
	select {
	case ch <- rep:
	default:
		panic(fmt.Errorf("%w (cap %d): dropping %+v", ErrReportOverflow, cap(ch), rep))
	}
}

// Target is one low-level operation of a round: an invocation on a base
// object.
type Target struct {
	// Object is the target base object.
	Object types.ObjectID
	// Inv is the invocation.
	Inv baseobj.Invocation
}

// Report is one completed operation of a round.
type Report struct {
	// Index is the operation's position in the scattered target slice
	// (or the store index for channel-level gathers).
	Index int
	// Object and Server identify where the operation executed.
	Object types.ObjectID
	Server types.ServerID
	// Val is the response value.
	Val types.TSValue
	// Data carries response payload bytes (payload registers).
	Data types.Payload
	// Frags carries the response fragment list (fragment stores — the
	// coded construction's gather rounds).
	Frags []baseobj.Fragment
	// Err is a protocol error (wrong op, unauthorized writer) — crash
	// failures never produce a report at all.
	Err error
}

// DirectReader is implemented by stores whose read-max is a single
// low-level operation; the engine batch-scatters such rounds through the
// fabric instead of starting each store individually.
type DirectReader interface {
	// ReadTarget returns the read-max invocation target.
	ReadTarget() Target
}

// DirectWriter is the write-side analogue of DirectReader.
type DirectWriter interface {
	// WriteTarget returns the write-max(v) invocation target.
	WriteTarget(v types.TSValue) Target
}

// Round is one in-flight scatter: the triggered calls plus their response
// stream.
type Round struct {
	calls []*fabric.Call
	ch    chan Report
}

// Scatter triggers every target in one TriggerBatch and wires completions
// into the round's report stream. It never blocks: completions arrive on
// fabric goroutines (or immediately, for synchronous passes). The report
// channel's capacity equals the number of scattered calls and each call
// completes at most once, so the completion closures can never block —
// not even when the round was abandoned by a cancelled gather and late
// releases complete the remaining calls with nobody left to drain them.
//
// Completions are registered at trigger time (BatchOp.Done), so the server
// of each report is resolved up front via Fabric.ServerFor — an unroutable
// target reports server 0 with its routing error, exactly as its call
// completes.
func Scatter(fab *fabric.Fabric, client types.ClientID, targets []Target) *Round {
	return scatter(fab, client, targets, false)
}

// ScatterScan is Scatter for an all-read round dispatched via TriggerScan:
// each server's members are answered from one consistent snapshot of that
// server's objects (backends without snapshot support fall back to per-op
// delivery — same responses, no cut guarantee). Algorithm 2's collects are
// exactly this shape, and the snapshot both tightens the model and lets
// event-loop/network lanes answer the whole group in one pass.
func ScatterScan(fab *fabric.Fabric, client types.ClientID, targets []Target) *Round {
	return scatter(fab, client, targets, true)
}

func scatter(fab *fabric.Fabric, client types.ClientID, targets []Target, scan bool) *Round {
	r := &Round{ch: make(chan Report, len(targets))}
	batch := make([]fabric.BatchOp, len(targets))
	for i, t := range targets {
		srv, _ := fab.ServerFor(t.Object)
		i, t, srv := i, t, srv
		batch[i] = fabric.BatchOp{Object: t.Object, Inv: t.Inv, Done: func(o fabric.Outcome) {
			Deliver(r.ch, Report{Index: i, Object: t.Object, Server: srv, Val: o.Resp.Val, Data: o.Resp.Data, Frags: o.Resp.Frags, Err: o.Err})
		}}
	}
	if scan {
		r.calls = fab.TriggerScan(client, batch)
	} else {
		r.calls = fab.TriggerBatch(client, batch)
	}
	return r
}

// Calls returns the round's call handles in target order.
func (r *Round) Calls() []*fabric.Call { return r.calls }

// Size returns the number of scattered operations.
func (r *Round) Size() int { return len(r.calls) }

// AwaitMax blocks until need responses arrived (folding the maximum
// timestamped value) or ctx is done.
func (r *Round) AwaitMax(ctx context.Context, need int) (types.TSValue, error) {
	return Gather(ctx, r.ch, need)
}

// AwaitServers blocks until, for need distinct servers, every operation of
// the round targeting that server has responded — Algorithm 2's "n-f
// complete scans" condition — folding the maximum timestamped value.
func (r *Round) AwaitServers(ctx context.Context, need int) (types.TSValue, error) {
	remaining := make(map[types.ServerID]int, need)
	for _, call := range r.calls {
		remaining[call.Event().Server]++
	}
	return awaitServers(ctx, r.ch, remaining, need)
}

// awaitServers is AwaitServers on an explicit report stream and per-server
// countdown (split out so the duplicate-report accounting is testable in
// isolation). A server's scan counts exactly when its countdown reaches
// zero; a report arriving for a server whose countdown is already exhausted
// — a duplicated or retried completion — is a protocol violation: letting
// the countdown go negative would both miscount and, on a later pass
// through zero, double-count the server's scan.
func awaitServers(ctx context.Context, ch <-chan Report, remaining map[types.ServerID]int, need int) (types.TSValue, error) {
	max := types.ZeroTSValue
	for scans := 0; scans < need; {
		// A done context fails deterministically even when reports are
		// already buffered (select picks ready cases at random).
		if err := ctx.Err(); err != nil {
			return max, fmt.Errorf("rounds: scan gather (%d/%d servers): %w", scans, need, err)
		}
		select {
		case <-ctx.Done():
			return max, fmt.Errorf("rounds: scan gather (%d/%d servers): %w", scans, need, ctx.Err())
		case rep := <-ch:
			if rep.Err != nil {
				return max, fmt.Errorf("rounds: scan gather: %w", rep.Err)
			}
			left := remaining[rep.Server]
			if left <= 0 {
				return max, fmt.Errorf("%w: server %d at %d/%d scans", ErrOverDelivery, rep.Server, scans, need)
			}
			max = types.MaxTSValue(max, rep.Val)
			remaining[rep.Server] = left - 1
			if left == 1 {
				scans++
			}
		}
	}
	return max, nil
}

// Gather folds need reports from ch with MaxTSValue, failing fast on
// report errors (protocol violations, not crash failures) and failing
// deterministically when ctx is done.
func Gather(ctx context.Context, ch <-chan Report, need int) (types.TSValue, error) {
	max := types.ZeroTSValue
	for got := 0; got < need; got++ {
		// A done context fails deterministically even when reports are
		// already buffered (select picks ready cases at random).
		if err := ctx.Err(); err != nil {
			return max, fmt.Errorf("rounds: quorum gather (%d/%d): %w", got, need, err)
		}
		select {
		case <-ctx.Done():
			return max, fmt.Errorf("rounds: quorum gather (%d/%d): %w", got, need, ctx.Err())
		case rep := <-ch:
			if rep.Err != nil {
				return max, fmt.Errorf("rounds: store error: %w", rep.Err)
			}
			max = types.MaxTSValue(max, rep.Val)
		}
	}
	return max, nil
}

// Fold is the non-blocking counterpart of Gather: it accumulates responses
// (folding the maximum timestamped value) and fires its report exactly once
// — on the need'th response or the first error. Complete never blocks, so
// folds are safe to feed from fabric goroutines; late completions after the
// report fired are absorbed silently, matching the buffered-channel
// discipline of the blocking gathers. If fewer than need responses ever
// arrive (held or crashed operations), the report simply never fires,
// exactly like any pending op — callers bound the wait at a higher level.
type Fold struct {
	mu        sync.Mutex
	remaining int
	max       types.TSValue
	done      bool
	report    func(types.TSValue, error)
}

// NewFold creates a fold firing report after need successful responses.
func NewFold(need int, report func(types.TSValue, error)) *Fold {
	return &Fold{remaining: need, report: report}
}

// Complete accumulates one response, firing the report on the need'th
// response or the first error.
func (j *Fold) Complete(v types.TSValue, err error) {
	j.mu.Lock()
	if j.done {
		j.mu.Unlock()
		return
	}
	if err != nil {
		j.done = true
		r := j.report
		j.mu.Unlock()
		r(types.ZeroTSValue, err)
		return
	}
	j.max = types.MaxTSValue(j.max, v)
	j.remaining--
	if j.remaining > 0 {
		j.mu.Unlock()
		return
	}
	j.done = true
	r := j.report
	max := j.max
	j.mu.Unlock()
	r(max, nil)
}

// viewRetry wraps a fold's report with the engine's built-in view-change
// recovery: a round that fails because some member reached a departing
// server re-scatters whole (through fresh routes — the re-resolution is the
// point) after fabric.ViewRetryDelay, up to fabric.MaxViewRetries attempts.
// The re-scatter is sound because a view-change completion guarantees the
// failed op never applied, and every other member of a quorum round is an
// idempotent read / (re)write of the same timestamped value. rescatter runs
// from a timer goroutine, never from the completing fabric goroutine, so
// retries cannot recurse into the dispatch path mid-completion.
func ViewRetry(attempt int, report func(types.TSValue, error), rescatter func(attempt int)) func(types.TSValue, error) {
	return func(v types.TSValue, err error) {
		if err != nil && fabric.IsViewChange(err) && attempt < fabric.MaxViewRetries {
			next := attempt + 1
			time.AfterFunc(fabric.ViewRetryDelay(attempt), func() { rescatter(next) })
			return
		}
		report(v, err)
	}
}

// ScatterFold triggers every target and invokes report exactly once: when
// need responses arrived (with their folded maximum) or on the first
// error. It never blocks — completions run on fabric goroutines — which
// makes it the right shape inside asynchronous store starts: if any
// operation never responds (held or crashed), the report simply never
// fires, exactly like any pending op. Rounds that race a reconfiguration
// retry transparently (see viewRetry).
func ScatterFold(fab *fabric.Fabric, client types.ClientID, targets []Target, need int, report func(types.TSValue, error)) {
	ScatterFoldDyn(fab, client, func() ([]Target, int) { return targets, need }, report)
}

// Plan supplies one attempt's round geometry: the targets to scatter and
// the quorum threshold to fold at. Dynamic rounds call it afresh on every
// attempt, so a retry that crosses a resize epoch re-scatters against the
// NEW placement and the NEW n−f — a plan captured at first call would pin
// a gather spanning the epoch to the old, possibly retired, object set and
// the old threshold.
type Plan func() (targets []Target, need int)

// ScatterFoldDyn is ScatterFold with per-attempt geometry: build runs
// before every scatter (including view-change retries), so rounds follow
// live resizes instead of replaying the shape of their first attempt.
func ScatterFoldDyn(fab *fabric.Fabric, client types.ClientID, build Plan, report func(types.TSValue, error)) {
	scatterFoldDynAttempt(fab, client, build, report, 0)
}

func scatterFoldDynAttempt(fab *fabric.Fabric, client types.ClientID, build Plan, report func(types.TSValue, error), attempt int) {
	targets, need := build()
	if need <= 0 || need > len(targets) {
		report(types.ZeroTSValue, fmt.Errorf("rounds: fold needs %d of %d targets", need, len(targets)))
		return
	}
	j := NewFold(need, ViewRetry(attempt, report, func(next int) {
		scatterFoldDynAttempt(fab, client, build, report, next)
	}))
	done := func(o fabric.Outcome) { j.Complete(o.Resp.Val, o.Err) }
	batch := make([]fabric.BatchOp, len(targets))
	for i, t := range targets {
		batch[i] = fabric.BatchOp{Object: t.Object, Inv: t.Inv, Done: done}
	}
	fab.TriggerBatch(client, batch)
}

// serverFold accumulates per-server scan completions for ScatterFoldServers:
// the callback analogue of AwaitServers, with the same duplicate-report
// accounting.
type serverFold struct {
	mu        sync.Mutex
	remaining map[types.ServerID]int
	need      int
	scans     int
	max       types.TSValue
	done      bool
	report    func(types.TSValue, error)
}

// complete accumulates one operation completion for its server, firing the
// report when need servers delivered complete scans or on the first error
// (including over-delivery, mirroring AwaitServers).
func (j *serverFold) complete(server types.ServerID, v types.TSValue, err error) {
	j.mu.Lock()
	if j.done {
		j.mu.Unlock()
		return
	}
	fire := func(v types.TSValue, err error) {
		j.done = true
		r := j.report
		j.mu.Unlock()
		r(v, err)
	}
	if err != nil {
		fire(types.ZeroTSValue, fmt.Errorf("rounds: scan fold: %w", err))
		return
	}
	left := j.remaining[server]
	if left <= 0 {
		fire(types.ZeroTSValue, fmt.Errorf("%w: server %d at %d/%d scans", ErrOverDelivery, server, j.scans, j.need))
		return
	}
	j.max = types.MaxTSValue(j.max, v)
	j.remaining[server] = left - 1
	if left == 1 {
		j.scans++
		if j.scans >= j.need {
			fire(j.max, nil)
			return
		}
	}
	j.mu.Unlock()
}

// ScatterFoldServers is the non-blocking counterpart of
// Scatter+AwaitServers: it triggers every target in one batch and invokes
// report exactly once — when, for need distinct servers, every operation
// targeting that server responded (Algorithm 2's "n-f complete scans"), or
// on the first error. Completions run on fabric goroutines and never
// block; a partially-scanned crashed server never counts, because its
// remaining operations never respond.
func ScatterFoldServers(fab *fabric.Fabric, client types.ClientID, targets []Target, need int, report func(types.TSValue, error)) {
	scatterFoldServers(fab, client, targets, need, report, false)
}

// ScatterFoldServersScan is ScatterFoldServers dispatched via TriggerScan:
// the non-blocking snapshot collect (see ScatterScan).
func ScatterFoldServersScan(fab *fabric.Fabric, client types.ClientID, targets []Target, need int, report func(types.TSValue, error)) {
	scatterFoldServers(fab, client, targets, need, report, true)
}

func scatterFoldServers(fab *fabric.Fabric, client types.ClientID, targets []Target, need int, report func(types.TSValue, error), scan bool) {
	scatterFoldServersAttempt(fab, client, targets, need, report, scan, 0)
}

func scatterFoldServersAttempt(fab *fabric.Fabric, client types.ClientID, targets []Target, need int, report func(types.TSValue, error), scan bool, attempt int) {
	// The per-server countdown must exist before the batch fires: with
	// trigger-time callbacks, the in-process lane completes ops inside the
	// TriggerBatch call itself. Unroutable targets count under server 0 and
	// report their routing error through their call's completion, as before.
	// A retry rebuilds the countdown from scratch: ServerFor re-resolves
	// under the new epoch, so migrated objects count under their new server.
	remaining := make(map[types.ServerID]int, need)
	servers := make([]types.ServerID, len(targets))
	for i, t := range targets {
		srv, _ := fab.ServerFor(t.Object)
		servers[i] = srv
		remaining[srv]++
	}
	if need <= 0 || need > len(remaining) {
		report(types.ZeroTSValue, fmt.Errorf("rounds: scan fold needs %d of %d servers", need, len(remaining)))
		return
	}
	j := &serverFold{remaining: remaining, need: need, report: ViewRetry(attempt, report, func(next int) {
		scatterFoldServersAttempt(fab, client, targets, need, report, scan, next)
	})}
	batch := make([]fabric.BatchOp, len(targets))
	for i, t := range targets {
		server := servers[i]
		batch[i] = fabric.BatchOp{Object: t.Object, Inv: t.Inv, Done: func(o fabric.Outcome) {
			j.complete(server, o.Resp.Val, o.Err)
		}}
	}
	if scan {
		fab.TriggerScan(client, batch)
	} else {
		fab.TriggerBatch(client, batch)
	}
}
