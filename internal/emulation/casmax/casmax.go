// Package casmax implements the Table 1 "CAS" upper bound: an f-tolerant,
// wait-free, WS-Regular k-register from 2f+1 CAS base objects, one per
// server.
//
// Each per-server max-register is emulated from a single CAS cell with
// Algorithm 1 (Appendix B):
//
//	write-max(v):  loop { tmp <- CAS(v0, v0)      // read via no-op CAS
//	                      if tmp >= v: return ok
//	                      CAS(tmp, v) }
//	read-max():    return CAS(v0, v0)
//
// The loop makes the construction's space cost match the max-register row
// (2f+1) while its time cost grows with contention — the tradeoff the
// paper's discussion section calls out. Metrics counts the retries so the
// benches can exhibit it (experiment E11).
package casmax

import (
	"fmt"
	"sync/atomic"

	"repro/internal/baseobj"
	"repro/internal/emulation/abdcore"
	"repro/internal/emulation/quorumreg"
	"repro/internal/emulation/rounds"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
)

// Metrics aggregates the cost of the CAS emulation across all stores.
type Metrics struct {
	// WriteMaxCalls counts write-max invocations.
	WriteMaxCalls atomic.Int64
	// CASAttempts counts conditional CAS(tmp, v) attempts; attempts
	// beyond the first per write-max are retries caused by contention.
	CASAttempts atomic.Int64
}

// Retries returns the number of extra loop iterations beyond one per
// write-max call.
func (m *Metrics) Retries() int64 {
	r := m.CASAttempts.Load() - m.WriteMaxCalls.Load()
	if r < 0 {
		return 0
	}
	return r
}

// store emulates one max-register from a single CAS cell. Operations run as
// callback chains on the fabric: if any low-level CAS never responds (held
// or crashed), the chain silently stalls — precisely a pending op.
//
// read-max is a single no-op CAS, so the store is a direct reader and read
// rounds batch-scatter; write-max is Algorithm 1's retry loop and keeps the
// per-store start/report path.
type store struct {
	fab     *fabric.Fabric
	obj     types.ObjectID
	server  types.ServerID
	metrics *Metrics
}

// Compile-time interface compliance checks.
var (
	_ abdcore.MaxStore    = (*store)(nil)
	_ rounds.DirectReader = (*store)(nil)
)

// Server implements abdcore.MaxStore.
func (s *store) Server() types.ServerID { return s.server }

// readInv is the no-op CAS(v0, v0) used as a read (Algorithm 1, lines 3/8).
func readInv() baseobj.Invocation {
	return baseobj.Invocation{Op: baseobj.OpCAS, Exp: types.ZeroTSValue, New: types.ZeroTSValue}
}

// ReadTarget implements rounds.DirectReader.
func (s *store) ReadTarget() rounds.Target {
	return rounds.Target{Object: s.obj, Inv: readInv()}
}

// StartReadMax implements abdcore.MaxStore: read-max is one no-op CAS whose
// returned previous value is the register content.
func (s *store) StartReadMax(client types.ClientID, report func(types.TSValue, error)) {
	call := s.fab.Trigger(client, s.obj, readInv())
	call.OnComplete(func(o fabric.Outcome) { report(o.Resp.Val, o.Err) })
}

// StartWriteMax implements abdcore.MaxStore with the Algorithm 1 loop as a
// callback chain.
func (s *store) StartWriteMax(client types.ClientID, v types.TSValue, report func(types.TSValue, error)) {
	s.metrics.WriteMaxCalls.Add(1)
	var attempt func()
	attempt = func() {
		read := s.fab.Trigger(client, s.obj, readInv())
		read.OnComplete(func(o fabric.Outcome) {
			if o.Err != nil {
				report(types.ZeroTSValue, o.Err)
				return
			}
			tmp := o.Resp.Val
			if !tmp.Less(v) {
				// tmp >= v: the register already holds a value at
				// least as large; write-max is done (line 4-5).
				report(tmp, nil)
				return
			}
			s.metrics.CASAttempts.Add(1)
			cas := s.fab.Trigger(client, s.obj, baseobj.Invocation{Op: baseobj.OpCAS, Exp: tmp, New: v})
			cas.OnComplete(func(o2 fabric.Outcome) {
				if o2.Err != nil {
					report(types.ZeroTSValue, o2.Err)
					return
				}
				// Whether or not the CAS succeeded, re-read and
				// re-check (line 2): termination follows from the
				// monotonically increasing values (Observation 2).
				attempt()
			})
		})
	}
	attempt()
}

// storeReshaper re-places CAS-cell stores across a view resize. Seeding is
// one frozen-window compare-and-swap from the cell's current content to the
// folded maximum — sound because nothing else can touch the cell between
// the read and the swap.
type storeReshaper struct {
	fab     *fabric.Fabric
	metrics *Metrics
}

var _ quorumreg.StoreReshaper = (*storeReshaper)(nil)

func (sr *storeReshaper) StoreObjects(s abdcore.MaxStore) []types.ObjectID {
	return []types.ObjectID{s.(*store).obj}
}

func (sr *storeReshaper) NewStore(rs *fabric.Reshaper, server types.ServerID, m types.TSValue) (abdcore.MaxStore, int, error) {
	obj, err := sr.fab.Cluster().PlaceCASCell(server)
	if err != nil {
		return nil, 0, err
	}
	st := &store{fab: sr.fab, obj: obj, server: server, metrics: sr.metrics}
	if err := sr.ReseedStore(rs, st, m); err != nil {
		return nil, 0, err
	}
	return st, 1, nil
}

func (sr *storeReshaper) ReseedStore(rs *fabric.Reshaper, s abdcore.MaxStore, m types.TSValue) error {
	if !types.ZeroTSValue.Less(m) {
		return nil
	}
	st := s.(*store)
	state, err := rs.State(st.obj)
	if err != nil {
		return err
	}
	if !state.Val.Less(m) {
		return nil
	}
	_, err = rs.Apply(st.obj, baseobj.Invocation{Op: baseobj.OpCAS, Exp: state.Val, New: m})
	return err
}

// Options configure the construction.
type Options struct {
	// History receives the high-level operations (optional).
	History *spec.History
	// ReadWriteBack upgrades reads to the atomic protocol.
	ReadWriteBack bool
	// Servers optionally pins the 2f+1 hosting servers.
	Servers []types.ServerID
}

// New places one CAS cell on each of 2f+1 servers and returns the emulated
// k-register together with its retry metrics.
func New(fab *fabric.Fabric, k, f int, opts Options) (*quorumreg.Register, *Metrics, error) {
	if f <= 0 {
		return nil, nil, fmt.Errorf("casmax: f must be positive, got %d", f)
	}
	servers := opts.Servers
	if servers == nil {
		for s := 0; s < 2*f+1; s++ {
			servers = append(servers, types.ServerID(s))
		}
	}
	if len(servers) != 2*f+1 {
		return nil, nil, fmt.Errorf("casmax: need exactly 2f+1=%d servers, got %d", 2*f+1, len(servers))
	}
	metrics := &Metrics{}
	c := fab.Cluster()
	stores := make([]abdcore.MaxStore, 0, len(servers))
	for _, server := range servers {
		obj, err := c.PlaceCASCell(server)
		if err != nil {
			return nil, nil, fmt.Errorf("casmax: placing cas cell: %w", err)
		}
		stores = append(stores, &store{fab: fab, obj: obj, server: server, metrics: metrics})
	}
	var engineOpts []abdcore.Option
	if opts.ReadWriteBack {
		engineOpts = append(engineOpts, abdcore.WithReadWriteBack())
	}
	reg, err := quorumreg.New(quorumreg.Config{
		Name:       "abd-cas",
		K:          k,
		F:          f,
		Stores:     stores,
		Fabric:     fab,
		Resources:  len(stores),
		History:    opts.History,
		EngineOpts: engineOpts,
		Reshaper:   &storeReshaper{fab: fab, metrics: metrics},
	})
	if err != nil {
		return nil, nil, err
	}
	return reg, metrics, nil
}
