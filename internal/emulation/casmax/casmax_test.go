package casmax

import (
	"context"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/baseobj"
	"repro/internal/cluster"
	"repro/internal/emulation/quorumreg"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
)

func newReg(t *testing.T, k, f, n int, gate fabric.Gate, opts Options) (*quorumreg.Register, *Metrics, *fabric.Fabric) {
	t.Helper()
	c, err := cluster.New(n)
	if err != nil {
		t.Fatal(err)
	}
	var fopts []fabric.Option
	if gate != nil {
		fopts = append(fopts, fabric.WithGate(gate))
	}
	fab := fabric.New(c, fopts...)
	reg, metrics, err := New(fab, k, f, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return reg, metrics, fab
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestBasicsAndResources(t *testing.T) {
	reg, metrics, _ := newReg(t, 3, 1, 3, nil, Options{})
	if reg.ResourceComplexity() != 3 {
		t.Fatalf("resources = %d, want 2f+1 = 3", reg.ResourceComplexity())
	}
	ctx := testCtx(t)
	for i := 0; i < 3; i++ {
		w, err := reg.Writer(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(ctx, types.Value(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := reg.NewReader().Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != 12 {
		t.Fatalf("Read = %d, want 12", got)
	}
	// Sequential writes never retry.
	if metrics.Retries() != 0 {
		t.Errorf("sequential retries = %d, want 0", metrics.Retries())
	}
	if metrics.WriteMaxCalls.Load() == 0 {
		t.Error("no write-max calls recorded")
	}
}

func TestValidation(t *testing.T) {
	c, err := cluster.New(3)
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(c)
	if _, _, err := New(fab, 1, 0, Options{}); err == nil {
		t.Error("f=0 accepted")
	}
	if _, _, err := New(fab, 1, 1, Options{Servers: []types.ServerID{0}}); err == nil {
		t.Error("1 server for f=1 accepted")
	}
}

func TestForcedRetryDeterministic(t *testing.T) {
	// Force the Algorithm 1 retry path deterministically: hold writer 0's
	// conditional CAS on server 0 before it applies; writer 1 updates the
	// cell meanwhile with a value that is LARGER; releasing writer 0's CAS
	// then fails (exp mismatch), the loop re-reads, sees ts2 >= ts1, and
	// returns.
	script := adversary.NewScript()
	reg, metrics, fab := newReg(t, 2, 1, 3, script, Options{})
	ctx := testCtx(t)

	script.SetApplyRule(func(ev fabric.TriggerEvent) bool {
		return ev.Client == 0 && ev.Server == 0 && adversary.IsMutating(ev.Inv)
	})
	w0, err := reg.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w0.Write(ctx, 100); err != nil {
		t.Fatalf("write with one held CAS: %v", err)
	}
	script.SetApplyRule(nil)

	w1, err := reg.Writer(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w1.Write(ctx, 200); err != nil {
		t.Fatal(err)
	}

	attemptsBefore := metrics.CASAttempts.Load()
	released := fab.ReleaseWhere(func(op fabric.PendingOp) bool { return op.Event.Client == 0 })
	if released != 1 {
		t.Fatalf("released %d ops, want 1", released)
	}
	// Writer 0's chain resumed: its failed CAS re-read the cell. The
	// value must still be writer 1's (the stale CAS failed).
	got, err := reg.NewReader().Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != 200 {
		t.Fatalf("Read = %d, want 200 (stale CAS must not clobber)", got)
	}
	if metrics.CASAttempts.Load() != attemptsBefore {
		t.Errorf("release should not need further conditional CAS: %d -> %d",
			attemptsBefore, metrics.CASAttempts.Load())
	}
}

func TestSurvivesFCrashes(t *testing.T) {
	reg, _, fab := newReg(t, 2, 1, 3, nil, Options{})
	ctx := testCtx(t)
	w0, err := reg.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w0.Write(ctx, 10); err != nil {
		t.Fatal(err)
	}
	if err := fab.Crash(2); err != nil {
		t.Fatal(err)
	}
	w1, err := reg.Writer(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w1.Write(ctx, 20); err != nil {
		t.Fatalf("write after crash: %v", err)
	}
	got, err := reg.NewReader().Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Fatalf("Read = %d, want 20", got)
	}
}

func TestSequentialHistoryIsRegular(t *testing.T) {
	hist := &spec.History{}
	reg, _, _ := newReg(t, 2, 1, 3, nil, Options{History: hist})
	ctx := testCtx(t)
	for round := 0; round < 4; round++ {
		for i := 0; i < 2; i++ {
			w, err := reg.Writer(i)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Write(ctx, types.Value(round*10+i+1)); err != nil {
				t.Fatal(err)
			}
			if _, err := reg.NewReader().Read(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	ops := hist.Snapshot()
	if err := spec.CheckWSSafety(ops, types.InitialValue); err != nil {
		t.Errorf("WS-Safety: %v", err)
	}
	if err := spec.CheckWSRegularity(ops, types.InitialValue); err != nil {
		t.Errorf("WS-Regularity: %v", err)
	}
}

func TestMetricsRetriesNeverNegative(t *testing.T) {
	m := &Metrics{}
	m.WriteMaxCalls.Add(5)
	if m.Retries() != 0 {
		t.Fatalf("Retries = %d, want 0", m.Retries())
	}
	m.CASAttempts.Add(7)
	if m.Retries() != 2 {
		t.Fatalf("Retries = %d, want 2", m.Retries())
	}
}

// TestWriteCancelledMidChainThenReleaseRecovers is the completion-leak
// regression test for the Algorithm 1 callback chains: every store's
// write-max is a multi-step read/CAS chain reporting into one shared
// quorum-gather channel, and a Write abandoned by ctx cancellation leaves
// those chains running on fabric goroutines. Releasing every held op must
// let each chain finish and report late — into a channel nobody drains —
// without blocking the releasing goroutine, and the register must keep
// working afterwards. Run under -race in CI.
func TestWriteCancelledMidChainThenReleaseRecovers(t *testing.T) {
	// Hold every CAS response: chains stall mid-step.
	gate := fabric.GateFuncs{Respond: func(ev fabric.TriggerEvent, _ baseobj.Response) fabric.Decision {
		return fabric.Hold
	}}
	reg, _, fab := newReg(t, 2, 1, 3, gate, Options{})
	w, err := reg.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		if err := w.Write(ctx, types.Value(10+round)); err == nil {
			t.Fatalf("round %d: fully-held write succeeded", round)
		}
		cancel()
		// Release everything repeatedly: each release advances the
		// abandoned chains one step (read -> CAS -> re-read ...), and
		// every chain's final report lands in an abandoned buffer.
		for i := 0; i < 20; i++ {
			if fab.ReleaseWhere(func(fabric.PendingOp) bool { return true }) == 0 {
				break
			}
		}
	}
	// Recovery: drive a write to completion by releasing from this
	// goroutine until it lands, then read it back.
	done := make(chan error, 1)
	go func() { done <- w.Write(testCtx(t), 99) }()
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("recovery write: %v", err)
			}
			rdDone := make(chan error, 1)
			var got types.Value
			go func() {
				v, err := reg.NewReader().Read(testCtx(t))
				got = v
				rdDone <- err
			}()
			for {
				select {
				case err := <-rdDone:
					if err != nil || got != 99 {
						t.Fatalf("read = %d, %v; want 99", got, err)
					}
					return
				case <-time.After(time.Millisecond):
					fab.ReleaseWhere(func(fabric.PendingOp) bool { return true })
				}
			}
		case <-time.After(time.Millisecond):
			fab.ReleaseWhere(func(fabric.PendingOp) bool { return true })
		}
	}
}
