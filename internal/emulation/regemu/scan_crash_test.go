package regemu

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/baseobj"
	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/types"
)

// shortCtx returns a context that expires fast: for asserting that an
// operation does NOT complete.
func shortCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	t.Cleanup(cancel)
	return ctx
}

// newGatedEmulation builds an emulation over a gated fabric.
func newGatedEmulation(t *testing.T, k, f, n int, gate fabric.Gate) (*Emulation, *fabric.Fabric) {
	t.Helper()
	c, err := cluster.New(n)
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(c, fabric.WithGate(gate))
	em, err := New(fab, k, f, Options{})
	if err != nil {
		t.Fatalf("New(k=%d f=%d n=%d): %v", k, f, n, err)
	}
	return em, fab
}

// gateHoldObjects builds a gate holding the responses of the given objects.
func gateHoldObjects(objs ...types.ObjectID) fabric.Gate {
	held := make(map[types.ObjectID]bool, len(objs))
	for _, o := range objs {
		held[o] = true
	}
	return fabric.GateFuncs{Respond: func(ev fabric.TriggerEvent, _ baseobj.Response) fabric.Decision {
		if held[ev.Object] {
			return fabric.Hold
		}
		return fabric.Pass
	}}
}

// TestCrashDuringScanNeverCompletesServer is the AwaitServers crash
// semantics test: a server that crashes after SOME but not ALL of its scan
// operations responded must never be counted as a complete scan. With one
// partially-scanned crashed server the n-f=3 quorum still completes from
// the other three servers; with a second partial scan (held, not crashed)
// only two complete scans remain and the collect must hang until its
// context expires.
func TestCrashDuringScanNeverCompletesServer(t *testing.T) {
	// Build the layout once (ungated) to learn which registers land on
	// which server; object allocation is deterministic for fixed (k,f,n),
	// so a rebuild on a gated fabric places identically.
	probe, _ := newEmulation(t, 4, 1, 4)
	byServer := probe.Placement().ObjectsByServer()
	if len(byServer[0]) < 2 || len(byServer[1]) < 2 {
		t.Fatalf("unexpected layout: %v", byServer)
	}

	// Hold one register response on server 0 and one on server 1: their
	// scans stay partial (all their other registers respond).
	em, fab := newGatedEmulation(t, 4, 1, 4, gateHoldObjects(byServer[0][0], byServer[1][0]))
	if got := em.Placement().ObjectsByServer(); len(got[0]) != len(byServer[0]) {
		t.Fatalf("layout diverged between probe and gated build: %v vs %v", got, byServer)
	}

	// Seed a value from a helper goroutine, releasing held responses until
	// the write lands (its collect also faces the two partial scans).
	seeded := make(chan error, 1)
	w, err := em.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	go func() { seeded <- w.Write(testCtx(t), 7) }()
	for landed := false; !landed; {
		select {
		case err := <-seeded:
			if err != nil {
				t.Fatalf("seed write: %v", err)
			}
			landed = true
		case <-time.After(time.Millisecond):
			fab.ReleaseWhere(func(fabric.PendingOp) bool { return true })
		}
	}

	// Crash server 0 while a fresh read's scan of it is partially
	// responded: its held register response is dropped, every other
	// register of server 0 answers instantly. Server 1's scan is partial
	// too (held). Only servers 2 and 3 complete scans — 2 of the required
	// 3 — so the read must NOT complete: a partially-scanned crashed
	// server may never count.
	if err := fab.Crash(0); err != nil {
		t.Fatal(err)
	}
	if _, err := em.NewReader().Read(shortCtx(t)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("read with 2/3 complete scans returned %v, want deadline exceeded", err)
	}

	// Releasing server 1's held response completes its scan: 3 complete
	// scans exist (servers 1, 2, 3) and reads complete again — still
	// without ever counting the crashed server 0.
	readDone := make(chan struct{})
	var got types.Value
	var readErr error
	go func() {
		got, readErr = em.NewReader().Read(testCtx(t))
		close(readDone)
	}()
	for {
		select {
		case <-readDone:
			if readErr != nil {
				t.Fatalf("read after release: %v", readErr)
			}
			if got != 7 {
				t.Fatalf("read = %d, want 7", got)
			}
			return
		case <-time.After(time.Millisecond):
			fab.ReleaseWhere(func(op fabric.PendingOp) bool { return op.Event.Server == 1 })
		}
	}
}

// TestWriteCancelledMidGatherThenReleaseRecovers is the abandoned-write
// regression test for the completion-leak fix: cancel a Write while its
// acknowledgements are held, release every held op (late completions land
// in the writer's event buffer with nobody draining), and demand that a
// subsequent Write on the same handle succeeds and reads see it. Run under
// -race in CI: a blocking completion send would deadlock the release loop.
func TestWriteCancelledMidGatherThenReleaseRecovers(t *testing.T) {
	gate := fabric.GateFuncs{Apply: func(ev fabric.TriggerEvent) fabric.Decision {
		if ev.Inv.Op.IsWrite() {
			return fabric.Hold
		}
		return fabric.Pass
	}}
	em, fab := newGatedEmulation(t, 2, 1, 4, gate)
	w, err := em.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		// Every low-level write is held: the Write cancels mid-gather.
		if err := w.Write(shortCtx(t), types.Value(10+round)); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("round %d: held write returned %v, want deadline exceeded", round, err)
		}
		// Release everything: the stale completions must be absorbed by
		// the writer's buffered event channel without blocking this
		// goroutine (which is also the releasing goroutine).
		fab.ReleaseWhere(func(fabric.PendingOp) bool { return true })
	}
	// The writer recovers: drive one more write, releasing its (still
	// gate-held) low-level writes from this goroutine until it completes.
	done := make(chan error, 1)
	go func() { done <- w.Write(testCtx(t), 99) }()
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("recovery write: %v", err)
			}
			if v, err := em.NewReader().Read(testCtx(t)); err != nil || v != 99 {
				t.Fatalf("read = %d, %v; want 99", v, err)
			}
			return
		case <-time.After(time.Millisecond):
			fab.ReleaseWhere(func(fabric.PendingOp) bool { return true })
		}
	}
}
