// Package regemu implements Algorithm 2, the paper's main upper-bound
// construction (Section 3.3, Appendix D): an f-tolerant, wait-free,
// WS-Regular k-register built from kf + ceil(k/z)·(f+1) plain read/write
// registers spread over n > 2f servers, z = floor((n-(f+1))/f).
//
// The construction is crafted against the covering adversary of Lemma 1:
//
//   - Registers are grouped into disjoint sets R_0..R_{m-1} (package
//     layout); writer w uses only set floor(w/z).
//   - A write first collects: it reads every register and waits for all
//     registers of n-f servers to respond, picking a fresh higher
//     timestamp (lines 20–26 of Algorithm 2).
//   - It then triggers writes on every register of its set except those
//     still covered by its own previous writes (lines 6–10): a register
//     with a pending write cannot be reliably reused, so the writer leaves
//     it alone until the old write responds, at which point it immediately
//     re-triggers with the current value (lines 29–32).
//   - The write returns after |R_j| - f acknowledgements (line 11), so at
//     most f of its low-level writes are left pending (Observation 3).
//
// Reads collect and return the value with the highest timestamp; readers
// never write, so the space cost is independent of the number of readers.
package regemu

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/baseobj"
	"repro/internal/emulation"
	"repro/internal/emulation/rounds"
	"repro/internal/fabric"
	"repro/internal/layout"
	"repro/internal/spec"
	"repro/internal/types"
)

// Emulation is the Algorithm 2 register.
type Emulation struct {
	fab       *fabric.Fabric
	placement *layout.Placement
	hist      *spec.History
	k, f, n   int
	scan      []rounds.Target // reads on every register, server-major order
	writers   []*Writer
	readers   emulation.ReaderIDs
}

// Compile-time interface compliance check.
var _ emulation.Register = (*Emulation)(nil)

// Options configure the construction.
type Options struct {
	// History receives the high-level operations (optional).
	History *spec.History
}

// New builds the register-set layout on the fabric's cluster (all n of its
// servers) and returns the emulated k-register.
func New(fab *fabric.Fabric, k, f int, opts Options) (*Emulation, error) {
	c := fab.Cluster()
	plan, err := layout.NewPlan(k, f, c.N())
	if err != nil {
		return nil, fmt.Errorf("regemu: planning layout: %w", err)
	}
	if err := plan.Verify(); err != nil {
		return nil, fmt.Errorf("regemu: verifying layout: %w", err)
	}
	placement, err := layout.Materialize(c, plan)
	if err != nil {
		return nil, fmt.Errorf("regemu: materializing layout: %w", err)
	}
	if err := emulation.ValidateWriters(k); err != nil {
		return nil, fmt.Errorf("regemu: %w", err)
	}
	// Record the failure budget on the view (see cluster.SetF); regemu has
	// no resize path, but the budget still drives crash accounting guards.
	c.SetF(f)
	hist := opts.History
	if hist == nil {
		hist = &spec.History{}
	}
	e := &Emulation{
		fab:       fab,
		placement: placement,
		hist:      hist,
		k:         k,
		f:         f,
		n:         c.N(),
	}
	// Precompute the collect scan — a read on every register, in
	// deterministic server-major order — once; every collect scatters it
	// as a single batch.
	byServer := placement.ObjectsByServer()
	servers := make([]types.ServerID, 0, len(byServer))
	for server := range byServer {
		servers = append(servers, server)
	}
	sort.Slice(servers, func(i, j int) bool { return servers[i] < servers[j] })
	for _, server := range servers {
		for _, obj := range byServer[server] {
			e.scan = append(e.scan, rounds.Target{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpRead}})
		}
	}
	e.writers = make([]*Writer, k)
	for w := 0; w < k; w++ {
		set, err := placement.SetOf(w)
		if err != nil {
			return nil, err
		}
		j, err := plan.SetForWriter(w)
		if err != nil {
			return nil, err
		}
		quorum, err := plan.WriteQuorumSize(j)
		if err != nil {
			return nil, err
		}
		e.writers[w] = &Writer{
			em:      e,
			client:  types.ClientID(w),
			set:     set,
			quorum:  quorum,
			pending: make(map[types.ObjectID]bool, len(set)),
		}
	}
	return e, nil
}

// Name implements emulation.Register.
func (e *Emulation) Name() string { return "regemu" }

// K implements emulation.Register.
func (e *Emulation) K() int { return e.k }

// F implements emulation.Register.
func (e *Emulation) F() int { return e.f }

// ResourceComplexity implements emulation.Register; it equals
// bounds.RegisterUpper(k, f, n) by layout.Plan.Verify.
func (e *Emulation) ResourceComplexity() int { return e.placement.Plan.TotalRegisters() }

// History returns the recorded high-level history.
func (e *Emulation) History() *spec.History { return e.hist }

// Placement exposes the register layout for experiments.
func (e *Emulation) Placement() *layout.Placement { return e.placement }

// Writer implements emulation.Register. The returned handle carries the
// writer's persistent cover-set state; it must be used by one goroutine at
// a time.
func (e *Emulation) Writer(i int) (emulation.Writer, error) {
	if i < 0 || i >= e.k {
		return nil, fmt.Errorf("regemu: writer %d out of range (k=%d)", i, e.k)
	}
	return e.writers[i], nil
}

// NewReader implements emulation.Register. It is safe for concurrent
// callers: reader IDs come from a shared atomic allocator.
func (e *Emulation) NewReader() emulation.Reader {
	return &Reader{em: e, client: e.readers.Next()}
}

// collect implements lines 13–26 of Algorithm 2: scatter a read on every
// register of every server as one batch and wait until, for n-f servers,
// every register of the server has responded (n-f complete scans). It
// returns the highest timestamped value observed.
func (e *Emulation) collect(ctx context.Context, client types.ClientID) (types.TSValue, error) {
	max, err := fabric.RetryView(ctx, func() (types.TSValue, error) {
		return rounds.ScatterScan(e.fab, client, e.scan).AwaitServers(ctx, e.n-e.f)
	})
	if err != nil {
		return max, fmt.Errorf("regemu: collect: %w", err)
	}
	return max, nil
}

// writeOp is one in-flight high-level write driven by the writer's state
// machine: the Statei of the pseudo-code for one invocation. It is guarded
// by the writer's mutex.
type writeOp struct {
	// ts is the write's timestamp, assigned when the collect phase
	// completed; scattered reports that the push phase has started (only
	// then do freed registers re-trigger with ts — during the collect the
	// timestamp does not exist yet, so freed registers simply stay free
	// and join the push batch).
	ts        types.TSValue
	scattered bool
	// acked counts responses carrying ts (line 11).
	acked int
	// viewRetries counts per-op low-level re-triggers after view-change
	// completions, bounding transparent reconfiguration retries.
	viewRetries int
	// finished latches completion (or detachment): the op no longer owns
	// the machine and its done must not fire (again).
	finished bool
	pw       *spec.PendingWrite
	done     func(error)
}

// Writer is the Algorithm 2 per-writer state machine. pending[b] plays the
// role of coverSet: it is true while b has a low-level write of ours
// without a response. The machine is event-driven — low-level completions
// call onEvent on whatever goroutine completes them (fabric, timer, or the
// caller's own for synchronous lanes) — so one high-level write costs no
// goroutine: the blocking Write is a thin wrapper over StartWrite, and the
// completion-based path (internal/emulation/async) drives thousands of
// writers from one event loop. Per the emulation contract a writer carries
// at most one in-flight high-level write; starting a second before the
// previous done fired is rejected loudly.
type Writer struct {
	em     *Emulation
	client types.ClientID
	set    []types.ObjectID
	quorum int

	mu      sync.Mutex
	pending map[types.ObjectID]bool
	cur     *writeOp // the in-flight high-level write, nil when idle
}

// Compile-time interface compliance checks.
var (
	_ emulation.Writer      = (*Writer)(nil)
	_ emulation.AsyncWriter = (*Writer)(nil)
)

// Client implements emulation.Writer.
func (w *Writer) Client() types.ClientID { return w.client }

// triggerLocked issues a low-level write of ts on register b and marks it
// pending. The trigger itself runs after the caller released the mutex
// (returned as a thunk), because on a synchronous lane the completion runs
// inline and re-enters onEvent.
func (w *Writer) triggerLocked(b types.ObjectID, ts types.TSValue) func() {
	w.pending[b] = true
	return func() {
		call := w.em.fab.Trigger(w.client, b, baseobj.Invocation{Op: baseobj.OpWrite, Arg: ts})
		call.OnComplete(func(o fabric.Outcome) { w.onEvent(b, ts, o.Err) })
	}
}

// scatter batch-triggers a write of ts on every given register; the
// registers must already be marked pending. Completions re-enter onEvent.
func (w *Writer) scatter(objs []types.ObjectID, ts types.TSValue) {
	batch := make([]fabric.BatchOp, len(objs))
	for i, b := range objs {
		batch[i] = fabric.BatchOp{Object: b, Inv: baseobj.Invocation{Op: baseobj.OpWrite, Arg: ts}}
	}
	for i, call := range w.em.fab.TriggerBatch(w.client, batch) {
		b := objs[i]
		call.OnComplete(func(o fabric.Outcome) { w.onEvent(b, ts, o.Err) })
	}
}

// onEvent lands one low-level write completion in the state machine: the
// register is freed, and — when a push is in flight — a response for the
// current timestamp counts toward the quorum (line 11) while a response
// for an older one immediately re-covers the register with the current
// value (lines 29–34). Events arriving while the writer is idle (the op
// was cancelled and detached, or the machine is between writes) just free
// the register: the next write's push batch picks it up. onEvent never
// blocks beyond the writer mutex, so it is safe on fabric goroutines.
func (w *Writer) onEvent(b types.ObjectID, ts types.TSValue, err error) {
	w.mu.Lock()
	w.pending[b] = false
	op := w.cur
	if op == nil || op.finished {
		w.mu.Unlock()
		return
	}
	if err != nil {
		if fabric.IsViewChange(err) {
			// The low-level write raced a reconfiguration and never applied
			// (the view-change contract), so it retries instead of failing
			// the high-level write. Before the push phase there is nothing
			// to retry — the freed register simply joins the push batch once
			// the timestamp exists.
			if !op.scattered {
				w.mu.Unlock()
				return
			}
			if op.viewRetries < fabric.MaxViewRetries {
				attempt := op.viewRetries
				op.viewRetries++
				w.mu.Unlock()
				// The re-trigger runs from a timer goroutine so the backoff
				// never blocks a fabric completion, re-checking ownership:
				// if the op finished meanwhile, the register stays free.
				time.AfterFunc(fabric.ViewRetryDelay(attempt), func() {
					w.mu.Lock()
					if w.cur != op || op.finished {
						w.mu.Unlock()
						return
					}
					retrigger := w.triggerLocked(b, op.ts)
					w.mu.Unlock()
					retrigger()
				})
				return
			}
		}
		op.finished = true
		w.cur = nil
		done := op.done
		w.mu.Unlock()
		done(fmt.Errorf("regemu: write: %w", err))
		return
	}
	if !op.scattered {
		// Collect still running: the freed register joins the push batch
		// once the timestamp exists.
		w.mu.Unlock()
		return
	}
	if ts == op.ts {
		op.acked++
		if op.acked >= w.quorum {
			op.finished = true
			w.cur = nil
			pw, done := op.pw, op.done
			w.mu.Unlock()
			pw.End()
			done(nil)
			return
		}
		w.mu.Unlock()
		return
	}
	retrigger := w.triggerLocked(b, op.ts)
	w.mu.Unlock()
	retrigger()
}

// StartWrite implements emulation.AsyncWriter: collect, pick a higher
// timestamp, push to the writer's register set avoiding self-covered
// registers, and fire done after |R_j| - f acknowledgements. The whole
// operation is a callback chain — nothing blocks, and done may fire inline
// on a synchronous lane. If the failure assumption is violated, done never
// fires (a pending high-level op); the blocking wrapper bounds that wait
// with its context, and detaches on cancellation.
func (w *Writer) StartWrite(v types.Value, done func(error)) {
	w.startWrite(v, done)
}

// startWrite is StartWrite returning the op handle for detach.
func (w *Writer) startWrite(v types.Value, done func(error)) *writeOp {
	op := &writeOp{done: done}
	w.mu.Lock()
	if w.cur != nil {
		w.mu.Unlock()
		done(fmt.Errorf("regemu: writer %d already has a write in flight", w.client))
		return nil
	}
	w.cur = op
	w.mu.Unlock()
	op.pw = w.em.hist.BeginWrite(w.client, v)

	// Lines 20–26: collect until n-f complete server scans responded, then
	// (lines 6–10) scatter one batch over every register of R_j not
	// currently covered by our own previous writes.
	rounds.ScatterFoldServersScan(w.em.fab, w.client, w.em.scan, w.em.n-w.em.f, func(cur types.TSValue, err error) {
		if err != nil {
			w.fail(op, fmt.Errorf("regemu: collect: %w", err))
			return
		}
		w.mu.Lock()
		if w.cur != op || op.finished {
			w.mu.Unlock() // detached by a cancelled blocking wrapper
			return
		}
		op.ts = types.TSValue{TS: cur.TS + 1, Writer: w.client, Val: v}
		op.scattered = true
		fresh := make([]types.ObjectID, 0, len(w.set))
		for _, b := range w.set {
			if !w.pending[b] {
				fresh = append(fresh, b)
				w.pending[b] = true
			}
		}
		ts := op.ts
		w.mu.Unlock()
		w.scatter(fresh, ts)
	})
	return op
}

// fail completes op with err, unless it already finished or detached.
func (w *Writer) fail(op *writeOp, err error) {
	w.mu.Lock()
	if w.cur != op || op.finished {
		w.mu.Unlock()
		return
	}
	op.finished = true
	w.cur = nil
	done := op.done
	w.mu.Unlock()
	done(err)
}

// detach abandons op: its done will never fire, late completions for its
// low-level writes just free their registers, and the writer may start a
// new write — the cancelled op stays pending in the history, exactly like
// the paper's incomplete high-level ops.
func (w *Writer) detach(op *writeOp) {
	if op == nil {
		return
	}
	w.mu.Lock()
	if w.cur == op {
		op.finished = true
		w.cur = nil
	}
	w.mu.Unlock()
}

// Write implements emulation.Writer: the blocking wrapper over StartWrite.
// On ctx expiry the in-flight op is detached; its already-triggered
// low-level writes keep covering their registers until they respond, as in
// any abandoned write.
func (w *Writer) Write(ctx context.Context, v types.Value) error {
	done := make(chan error, 1)
	op := w.startWrite(v, func(err error) { done <- err })
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		w.detach(op)
		// The op may have completed between the ctx firing and the
		// detach; prefer its verdict, matching the blocking loop's
		// drain-before-ctx discipline.
		select {
		case err := <-done:
			return err
		default:
			return fmt.Errorf("regemu: write: %w", ctx.Err())
		}
	}
}

// CoveredByMe returns the registers of the writer's set that currently
// have one of its low-level writes pending — at most f after a completed
// write (Observation 3). Exposed for the covering experiments.
func (w *Writer) CoveredByMe() []types.ObjectID {
	w.mu.Lock()
	defer w.mu.Unlock()
	var covered []types.ObjectID
	for _, b := range w.set {
		if w.pending[b] {
			covered = append(covered, b)
		}
	}
	return covered
}

// Reader is the Algorithm 2 read-side handle.
type Reader struct {
	em     *Emulation
	client types.ClientID
}

// Compile-time interface compliance checks.
var (
	_ emulation.Reader      = (*Reader)(nil)
	_ emulation.AsyncReader = (*Reader)(nil)
)

// Client implements emulation.Reader.
func (r *Reader) Client() types.ClientID { return r.client }

// StartRead implements emulation.AsyncReader: the collect as a callback
// chain, firing done with the freshest value once n-f complete server
// scans responded.
func (r *Reader) StartRead(done func(types.Value, error)) {
	pr := r.em.hist.BeginRead(r.client)
	rounds.ScatterFoldServersScan(r.em.fab, r.client, r.em.scan, r.em.n-r.em.f, func(cur types.TSValue, err error) {
		if err != nil {
			done(types.InitialValue, fmt.Errorf("regemu: collect: %w", err))
			return
		}
		pr.End(cur.Val)
		done(cur.Val, nil)
	})
}

// Read implements emulation.Reader: collect and return the freshest value
// (lines 17–19).
func (r *Reader) Read(ctx context.Context) (types.Value, error) {
	pr := r.em.hist.BeginRead(r.client)
	cur, err := r.em.collect(ctx, r.client)
	if err != nil {
		return types.InitialValue, err
	}
	pr.End(cur.Val)
	return cur.Val, nil
}
