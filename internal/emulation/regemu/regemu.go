// Package regemu implements Algorithm 2, the paper's main upper-bound
// construction (Section 3.3, Appendix D): an f-tolerant, wait-free,
// WS-Regular k-register built from kf + ceil(k/z)·(f+1) plain read/write
// registers spread over n > 2f servers, z = floor((n-(f+1))/f).
//
// The construction is crafted against the covering adversary of Lemma 1:
//
//   - Registers are grouped into disjoint sets R_0..R_{m-1} (package
//     layout); writer w uses only set floor(w/z).
//   - A write first collects: it reads every register and waits for all
//     registers of n-f servers to respond, picking a fresh higher
//     timestamp (lines 20–26 of Algorithm 2).
//   - It then triggers writes on every register of its set except those
//     still covered by its own previous writes (lines 6–10): a register
//     with a pending write cannot be reliably reused, so the writer leaves
//     it alone until the old write responds, at which point it immediately
//     re-triggers with the current value (lines 29–32).
//   - The write returns after |R_j| - f acknowledgements (line 11), so at
//     most f of its low-level writes are left pending (Observation 3).
//
// Reads collect and return the value with the highest timestamp; readers
// never write, so the space cost is independent of the number of readers.
package regemu

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/baseobj"
	"repro/internal/emulation"
	"repro/internal/emulation/rounds"
	"repro/internal/fabric"
	"repro/internal/layout"
	"repro/internal/spec"
	"repro/internal/types"
)

// Emulation is the Algorithm 2 register.
type Emulation struct {
	fab       *fabric.Fabric
	placement *layout.Placement
	hist      *spec.History
	k, f, n   int
	scan      []rounds.Target // reads on every register, server-major order
	writers   []*Writer
	readers   atomic.Int64
}

// Compile-time interface compliance check.
var _ emulation.Register = (*Emulation)(nil)

// Options configure the construction.
type Options struct {
	// History receives the high-level operations (optional).
	History *spec.History
}

// New builds the register-set layout on the fabric's cluster (all n of its
// servers) and returns the emulated k-register.
func New(fab *fabric.Fabric, k, f int, opts Options) (*Emulation, error) {
	c := fab.Cluster()
	plan, err := layout.NewPlan(k, f, c.N())
	if err != nil {
		return nil, fmt.Errorf("regemu: planning layout: %w", err)
	}
	if err := plan.Verify(); err != nil {
		return nil, fmt.Errorf("regemu: verifying layout: %w", err)
	}
	placement, err := layout.Materialize(c, plan)
	if err != nil {
		return nil, fmt.Errorf("regemu: materializing layout: %w", err)
	}
	hist := opts.History
	if hist == nil {
		hist = &spec.History{}
	}
	e := &Emulation{
		fab:       fab,
		placement: placement,
		hist:      hist,
		k:         k,
		f:         f,
		n:         c.N(),
	}
	// Precompute the collect scan — a read on every register, in
	// deterministic server-major order — once; every collect scatters it
	// as a single batch.
	byServer := placement.ObjectsByServer()
	servers := make([]types.ServerID, 0, len(byServer))
	for server := range byServer {
		servers = append(servers, server)
	}
	sort.Slice(servers, func(i, j int) bool { return servers[i] < servers[j] })
	for _, server := range servers {
		for _, obj := range byServer[server] {
			e.scan = append(e.scan, rounds.Target{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpRead}})
		}
	}
	e.writers = make([]*Writer, k)
	for w := 0; w < k; w++ {
		set, err := placement.SetOf(w)
		if err != nil {
			return nil, err
		}
		j, err := plan.SetForWriter(w)
		if err != nil {
			return nil, err
		}
		quorum, err := plan.WriteQuorumSize(j)
		if err != nil {
			return nil, err
		}
		e.writers[w] = &Writer{
			em:      e,
			client:  types.ClientID(w),
			set:     set,
			quorum:  quorum,
			pending: make(map[types.ObjectID]bool, len(set)),
			events:  make(chan writeEvent, 2*len(set)),
		}
	}
	return e, nil
}

// Name implements emulation.Register.
func (e *Emulation) Name() string { return "regemu" }

// K implements emulation.Register.
func (e *Emulation) K() int { return e.k }

// F implements emulation.Register.
func (e *Emulation) F() int { return e.f }

// ResourceComplexity implements emulation.Register; it equals
// bounds.RegisterUpper(k, f, n) by layout.Plan.Verify.
func (e *Emulation) ResourceComplexity() int { return e.placement.Plan.TotalRegisters() }

// History returns the recorded high-level history.
func (e *Emulation) History() *spec.History { return e.hist }

// Placement exposes the register layout for experiments.
func (e *Emulation) Placement() *layout.Placement { return e.placement }

// Writer implements emulation.Register. The returned handle carries the
// writer's persistent cover-set state; it must be used by one goroutine at
// a time.
func (e *Emulation) Writer(i int) (emulation.Writer, error) {
	if i < 0 || i >= e.k {
		return nil, fmt.Errorf("regemu: writer %d out of range (k=%d)", i, e.k)
	}
	return e.writers[i], nil
}

// NewReader implements emulation.Register.
func (e *Emulation) NewReader() emulation.Reader {
	id := emulation.ReaderIDBase + types.ClientID(e.readers.Add(1))
	return &Reader{em: e, client: id}
}

// collect implements lines 13–26 of Algorithm 2: scatter a read on every
// register of every server as one batch and wait until, for n-f servers,
// every register of the server has responded (n-f complete scans). It
// returns the highest timestamped value observed.
func (e *Emulation) collect(ctx context.Context, client types.ClientID) (types.TSValue, error) {
	max, err := rounds.Scatter(e.fab, client, e.scan).AwaitServers(ctx, e.n-e.f)
	if err != nil {
		return max, fmt.Errorf("regemu: collect: %w", err)
	}
	return max, nil
}

// writeEvent is one base-register write completion for a writer. ts is the
// timestamp that was written, which identifies the high-level write it
// belongs to.
type writeEvent struct {
	obj types.ObjectID
	ts  types.TSValue
	err error
}

// Writer is the Algorithm 2 per-writer state machine (the Statei of the
// pseudo-code). pending[b] plays the role of coverSet: it is true while b
// has a low-level write of ours without a response.
type Writer struct {
	em     *Emulation
	client types.ClientID
	set    []types.ObjectID
	quorum int

	pending map[types.ObjectID]bool
	events  chan writeEvent
}

// Compile-time interface compliance check.
var _ emulation.Writer = (*Writer)(nil)

// Client implements emulation.Writer.
func (w *Writer) Client() types.ClientID { return w.client }

// deliver lands a completion in the writer's event channel without ever
// blocking the completing (possibly fabric) goroutine. The buffer holds
// 2·|R_j| events while the cover-set discipline admits at most one
// outstanding write per register (pending[b] gates re-triggering until b's
// previous event was consumed), so even a Write abandoned mid-drain by ctx
// cancellation leaves room for every late completion; an overflow means
// that invariant broke and is surfaced loudly instead of leaking a blocked
// goroutine.
func (w *Writer) deliver(ev writeEvent) {
	select {
	case w.events <- ev:
	default:
		panic(fmt.Sprintf("regemu: writer %d event overflow (cap %d): register %d", w.client, cap(w.events), ev.obj))
	}
}

// trigger issues a low-level write of ts on register b and marks it
// pending; the completion lands in the writer's event channel.
func (w *Writer) trigger(b types.ObjectID, ts types.TSValue) {
	w.pending[b] = true
	call := w.em.fab.Trigger(w.client, b, baseobj.Invocation{Op: baseobj.OpWrite, Arg: ts})
	call.OnComplete(func(o fabric.Outcome) {
		w.deliver(writeEvent{obj: b, ts: ts, err: o.Err})
	})
}

// scatter batch-triggers a write of ts on every given register, marking
// them pending; completions land in the writer's event channel.
func (w *Writer) scatter(objs []types.ObjectID, ts types.TSValue) {
	batch := make([]fabric.BatchOp, len(objs))
	for i, b := range objs {
		w.pending[b] = true
		batch[i] = fabric.BatchOp{Object: b, Inv: baseobj.Invocation{Op: baseobj.OpWrite, Arg: ts}}
	}
	for i, call := range w.em.fab.TriggerBatch(w.client, batch) {
		b := objs[i]
		call.OnComplete(func(o fabric.Outcome) {
			w.deliver(writeEvent{obj: b, ts: ts, err: o.Err})
		})
	}
}

// Write implements emulation.Writer: collect, pick a higher timestamp,
// push to the writer's register set avoiding self-covered registers, and
// return after |R_j| - f acknowledgements.
func (w *Writer) Write(ctx context.Context, v types.Value) error {
	pw := w.em.hist.BeginWrite(w.client, v)
	cur, err := w.em.collect(ctx, w.client)
	if err != nil {
		return err
	}
	ts := types.TSValue{TS: cur.TS + 1, Writer: w.client, Val: v}

	// Lines 6–10: scatter one batch over every register of R_j that we do
	// not currently cover. (Self-covered registers are re-armed as their
	// old writes respond, below.)
	fresh := make([]types.ObjectID, 0, len(w.set))
	for _, b := range w.set {
		if !w.pending[b] {
			fresh = append(fresh, b)
		}
	}
	w.scatter(fresh, ts)

	// Line 11 + lines 29–34: drain completions until |R_j|-f registers
	// acknowledged the *current* timestamp. A response for an older
	// timestamp frees a previously covered register: immediately
	// re-trigger it with the current value.
	acked := 0
	for acked < w.quorum {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("regemu: write (%d/%d acks): %w", acked, w.quorum, err)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("regemu: write (%d/%d acks): %w", acked, w.quorum, ctx.Err())
		case ev := <-w.events:
			if ev.err != nil {
				return fmt.Errorf("regemu: write: %w", ev.err)
			}
			w.pending[ev.obj] = false
			if ev.ts == ts {
				acked++
			} else {
				w.trigger(ev.obj, ts)
			}
		}
	}
	pw.End()
	return nil
}

// CoveredByMe returns the registers of the writer's set that currently
// have one of its low-level writes pending — at most f after a completed
// write (Observation 3). Exposed for the covering experiments.
func (w *Writer) CoveredByMe() []types.ObjectID {
	var covered []types.ObjectID
	for _, b := range w.set {
		if w.pending[b] {
			covered = append(covered, b)
		}
	}
	return covered
}

// Reader is the Algorithm 2 read-side handle.
type Reader struct {
	em     *Emulation
	client types.ClientID
}

// Compile-time interface compliance check.
var _ emulation.Reader = (*Reader)(nil)

// Client implements emulation.Reader.
func (r *Reader) Client() types.ClientID { return r.client }

// Read implements emulation.Reader: collect and return the freshest value
// (lines 17–19).
func (r *Reader) Read(ctx context.Context) (types.Value, error) {
	pr := r.em.hist.BeginRead(r.client)
	cur, err := r.em.collect(ctx, r.client)
	if err != nil {
		return types.InitialValue, err
	}
	pr.End(cur.Val)
	return cur.Val, nil
}
