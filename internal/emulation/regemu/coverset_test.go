package regemu

import (
	"sync"
	"testing"

	"repro/internal/adversary"
	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
)

// newAdversarial builds an emulation behind a Script gate.
func newAdversarial(t *testing.T, k, f, n int) (*Emulation, *fabric.Fabric, *adversary.Script) {
	t.Helper()
	c, err := cluster.New(n)
	if err != nil {
		t.Fatal(err)
	}
	script := adversary.NewScript()
	fab := fabric.New(c, fabric.WithGate(script))
	em, err := New(fab, k, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return em, fab, script
}

func TestWriteCompletesDespiteFHeldWrites(t *testing.T) {
	const k, f, n = 1, 2, 5
	em, fab, script := newAdversarial(t, k, f, n)
	ctx := testCtx(t)

	// Hold the writer's writes on the first f registers it touches.
	var mu sync.Mutex
	held := 0
	script.SetApplyRule(func(ev fabric.TriggerEvent) bool {
		if !adversary.IsMutating(ev.Inv) {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		if held < f {
			held++
			return true
		}
		return false
	})
	w, err := em.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(ctx, 42); err != nil {
		t.Fatalf("write with f held low-level writes: %v", err)
	}
	script.SetApplyRule(nil)

	// Observation 3: at most f of the writer's registers stay covered.
	wr := w.(*Writer)
	if got := len(wr.CoveredByMe()); got != f {
		t.Fatalf("CoveredByMe = %d, want f = %d", got, f)
	}
	if got := len(fab.CoveredObjects()); got != f {
		t.Fatalf("fabric covered = %d, want %d", got, f)
	}
	// The value is still readable.
	got, err := em.NewReader().Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("Read = %d, want 42", got)
	}
}

func TestCoveredRegisterNotReusedUntilResponse(t *testing.T) {
	const k, f, n = 1, 1, 3
	em, fab, script := newAdversarial(t, k, f, n)
	ctx := testCtx(t)
	w, err := em.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	wr := w.(*Writer)

	// Write 1: hold exactly one low-level write.
	var mu sync.Mutex
	heldOne := false
	script.SetApplyRule(func(ev fabric.TriggerEvent) bool {
		if !adversary.IsMutating(ev.Inv) {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		if !heldOne {
			heldOne = true
			return true
		}
		return false
	})
	if err := w.Write(ctx, 10); err != nil {
		t.Fatal(err)
	}
	script.SetApplyRule(nil)
	covered := wr.CoveredByMe()
	if len(covered) != 1 {
		t.Fatalf("covered = %v, want exactly 1", covered)
	}
	target := covered[0]

	// Write 2 while the old write is still pending: the writer must NOT
	// issue a second write on the covered register (lines 6-10).
	if err := w.Write(ctx, 20); err != nil {
		t.Fatal(err)
	}
	pendingOnTarget := 0
	for _, op := range fab.Pending() {
		if op.Event.Object == target && op.Event.Inv.Op.IsWrite() {
			pendingOnTarget++
		}
	}
	if pendingOnTarget != 1 {
		t.Fatalf("pending writes on covered register = %d, want 1 (no double trigger)", pendingOnTarget)
	}

	// Release the old covering write: it applies its OLD value now.
	if n := fab.ReleaseWhere(func(op fabric.PendingOp) bool { return op.Event.Object == target }); n != 1 {
		t.Fatalf("released %d, want 1", n)
	}

	// Write 3 drains the stale response and re-triggers the register
	// with the current value (lines 29-32): afterwards the register must
	// hold the newest timestamp, not the stale one.
	if err := w.Write(ctx, 30); err != nil {
		t.Fatal(err)
	}
	obj, err := fab.Cluster().Object(target)
	if err != nil {
		t.Fatal(err)
	}
	if got := obj.Peek(); got.Val != 30 {
		t.Fatalf("covered register holds %v after re-trigger, want val 30", got)
	}
	// No low-level write is actually pending anymore (the re-triggered
	// write responded); the writer's local view may lag by the undrained
	// response but never exceeds f (Observation 3).
	if got := fab.CoveredObjects(); len(got) != 0 {
		t.Fatalf("fabric covered = %v, want none", got)
	}
	if got := wr.CoveredByMe(); len(got) > f {
		t.Fatalf("CoveredByMe = %v, want at most f = %d", got, f)
	}

	// The read sees the latest value throughout.
	got, err := em.NewReader().Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Fatalf("Read = %d, want 30", got)
	}
}

func TestStaleReleaseIsHarmlessAtFullProvisioning(t *testing.T) {
	// The attack that kills the naive baseline: a covering write released
	// after newer writes. With Algorithm 2's register budget it must be
	// harmless.
	const k, f, n = 2, 1, 3
	em, fab, script := newAdversarial(t, k, f, n)
	ctx := testCtx(t)
	hist := em.History()

	w0, err := em.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := em.Writer(1)
	if err != nil {
		t.Fatal(err)
	}

	// Writer 0's first low-level write is held.
	var mu sync.Mutex
	heldOne := false
	script.SetApplyRule(func(ev fabric.TriggerEvent) bool {
		if ev.Client != 0 || !adversary.IsMutating(ev.Inv) {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		if !heldOne {
			heldOne = true
			return true
		}
		return false
	})
	if err := w0.Write(ctx, 10); err != nil {
		t.Fatal(err)
	}
	script.SetApplyRule(nil)
	if err := w1.Write(ctx, 20); err != nil {
		t.Fatal(err)
	}

	// Release writer 0's covering write: its stale value lands now.
	fab.ReleaseWhere(func(op fabric.PendingOp) bool { return op.Event.Client == 0 })

	got, err := em.NewReader().Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Fatalf("Read = %d, want 20 (stale release must be harmless)", got)
	}
	if err := spec.CheckWSSafety(hist.Snapshot(), types.InitialValue); err != nil {
		t.Fatalf("WS-Safety: %v", err)
	}
}

func TestNoDoubleInFlightWritesPerRegister(t *testing.T) {
	// Invariant behind Observation 3: a writer never has two in-flight
	// low-level writes on the same register. With every write held, the
	// pending set must match the distinct registers triggered.
	const k, f, n = 2, 2, 6
	em, fab, script := newAdversarial(t, k, f, n)

	var mu sync.Mutex
	heldCount := 0
	script.SetApplyRule(func(ev fabric.TriggerEvent) bool {
		if !adversary.IsMutating(ev.Inv) {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		if heldCount < f {
			heldCount++
			return true
		}
		return false
	})
	ctx := testCtx(t)
	w, err := em.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		if err := w.Write(ctx, types.Value(100+round)); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		perObject := make(map[types.ObjectID]int)
		for _, op := range fab.Pending() {
			if op.Event.Inv.Op.IsWrite() {
				perObject[op.Event.Object]++
			}
		}
		for obj, count := range perObject {
			if count > 1 {
				t.Fatalf("round %d: register %d has %d in-flight writes", round, obj, count)
			}
		}
	}
}

func TestConcurrentWritersAndReaders(t *testing.T) {
	// Write-concurrent runs have no WS guarantee, but reads must remain
	// valid and nothing may deadlock (run with -race).
	const k, f, n = 4, 2, 7
	em, _ := newEmulation(t, k, f, n)
	ctx := testCtx(t)

	var wg sync.WaitGroup
	errs := make(chan error, k+2)
	for i := 0; i < k; i++ {
		w, err := em.Writer(i)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, w *Writer) {
			defer wg.Done()
			for op := 0; op < 15; op++ {
				if err := w.Write(ctx, types.Value(int64(i+1)<<32|int64(op))); err != nil {
					errs <- err
					return
				}
			}
		}(i, w.(*Writer))
	}
	for r := 0; r < 2; r++ {
		rd := em.NewReader()
		wg.Add(1)
		go func(rd *Reader) {
			defer wg.Done()
			for op := 0; op < 15; op++ {
				if _, err := rd.Read(ctx); err != nil {
					errs <- err
					return
				}
			}
		}(rd.(*Reader))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent op: %v", err)
	}
	if err := spec.CheckReadValidity(em.History().Snapshot(), types.InitialValue); err != nil {
		t.Fatalf("read validity: %v", err)
	}
}
