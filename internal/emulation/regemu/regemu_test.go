package regemu

import (
	"context"
	"testing"
	"time"

	"repro/internal/bounds"
	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
)

// newEmulation builds a fabric over n fresh servers and an Algorithm 2
// register on it.
func newEmulation(t *testing.T, k, f, n int) (*Emulation, *fabric.Fabric) {
	t.Helper()
	c, err := cluster.New(n)
	if err != nil {
		t.Fatalf("cluster.New(%d): %v", n, err)
	}
	fab := fabric.New(c)
	em, err := New(fab, k, f, Options{})
	if err != nil {
		t.Fatalf("New(k=%d f=%d n=%d): %v", k, f, n, err)
	}
	return em, fab
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestWriteThenRead(t *testing.T) {
	em, _ := newEmulation(t, 3, 1, 4)
	ctx := testCtx(t)

	w0, err := em.Writer(0)
	if err != nil {
		t.Fatalf("Writer(0): %v", err)
	}
	if err := w0.Write(ctx, 42); err != nil {
		t.Fatalf("Write(42): %v", err)
	}
	got, err := em.NewReader().Read(ctx)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got != 42 {
		t.Fatalf("Read = %d, want 42", got)
	}
}

func TestSequentialWritersAllVisible(t *testing.T) {
	const k, f, n = 5, 2, 7
	em, _ := newEmulation(t, k, f, n)
	ctx := testCtx(t)

	for i := 0; i < k; i++ {
		w, err := em.Writer(i)
		if err != nil {
			t.Fatalf("Writer(%d): %v", i, err)
		}
		v := types.Value(100 + i)
		if err := w.Write(ctx, v); err != nil {
			t.Fatalf("writer %d Write(%d): %v", i, v, err)
		}
		got, err := em.NewReader().Read(ctx)
		if err != nil {
			t.Fatalf("Read after writer %d: %v", i, err)
		}
		if got != v {
			t.Fatalf("Read after writer %d = %d, want %d", i, got, v)
		}
	}

	ops := em.History().Snapshot()
	if err := spec.CheckWSSafety(ops, types.InitialValue); err != nil {
		t.Fatalf("WS-Safety: %v", err)
	}
	if err := spec.CheckWSRegularity(ops, types.InitialValue); err != nil {
		t.Fatalf("WS-Regularity: %v", err)
	}
}

func TestResourceComplexityMatchesUpperBound(t *testing.T) {
	for _, tc := range []struct{ k, f, n int }{
		{1, 1, 3}, {2, 1, 3}, {5, 1, 4}, {5, 2, 6}, {3, 2, 5}, {8, 3, 12},
	} {
		em, fab := newEmulation(t, tc.k, tc.f, tc.n)
		want, err := bounds.RegisterUpper(tc.k, tc.f, tc.n)
		if err != nil {
			t.Fatalf("RegisterUpper(%v): %v", tc, err)
		}
		if got := em.ResourceComplexity(); got != want {
			t.Errorf("k=%d f=%d n=%d: ResourceComplexity = %d, want %d", tc.k, tc.f, tc.n, got, want)
		}
		if got := fab.Cluster().ResourceComplexity(); got != want {
			t.Errorf("k=%d f=%d n=%d: cluster objects = %d, want %d", tc.k, tc.f, tc.n, got, want)
		}
	}
}

func TestSurvivesFServerCrashes(t *testing.T) {
	const k, f, n = 2, 2, 6
	em, fab := newEmulation(t, k, f, n)
	ctx := testCtx(t)

	w0, _ := em.Writer(0)
	if err := w0.Write(ctx, 7); err != nil {
		t.Fatalf("Write before crashes: %v", err)
	}
	// Crash f servers; the emulation must stay live and safe.
	for s := 0; s < f; s++ {
		if err := fab.Crash(types.ServerID(s)); err != nil {
			t.Fatalf("Crash(%d): %v", s, err)
		}
	}
	w1, _ := em.Writer(1)
	if err := w1.Write(ctx, 8); err != nil {
		t.Fatalf("Write after %d crashes: %v", f, err)
	}
	got, err := em.NewReader().Read(ctx)
	if err != nil {
		t.Fatalf("Read after crashes: %v", err)
	}
	if got != 8 {
		t.Fatalf("Read = %d, want 8", got)
	}
}
