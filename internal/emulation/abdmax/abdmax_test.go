package abdmax

import (
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/emulation/quorumreg"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
)

func newReg(t *testing.T, k, f, n int, opts Options) (*quorumreg.Register, *fabric.Fabric) {
	t.Helper()
	c, err := cluster.New(n)
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(c)
	reg, err := New(fab, k, f, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return reg, fab
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestBasicsAndResources(t *testing.T) {
	reg, fab := newReg(t, 4, 2, 6, Options{})
	if reg.ResourceComplexity() != 5 {
		t.Fatalf("resources = %d, want 2f+1 = 5", reg.ResourceComplexity())
	}
	// 2f+1 base objects regardless of k; only 2f+1 servers host objects.
	counts := fab.Cluster().PerServerCounts()
	hosting := 0
	for _, c := range counts {
		if c > 1 {
			t.Fatalf("a server hosts %d max-registers, want at most 1", c)
		}
		hosting += c
	}
	if hosting != 5 {
		t.Fatalf("hosting servers = %d, want 5", hosting)
	}

	ctx := testCtx(t)
	for i := 0; i < 4; i++ {
		w, err := reg.Writer(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(ctx, types.Value(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := reg.NewReader().Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("Read = %d, want 4", got)
	}
}

func TestValidation(t *testing.T) {
	c, err := cluster.New(5)
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(c)
	if _, err := New(fab, 1, 0, Options{}); err == nil {
		t.Error("f=0 accepted")
	}
	if _, err := New(fab, 1, 1, Options{Servers: []types.ServerID{0, 1}}); err == nil {
		t.Error("2 servers for f=1 accepted")
	}
	if _, err := New(fab, 1, 3, Options{}); err == nil {
		t.Error("f=3 on a 5-server cluster accepted (needs 7 default servers)")
	}
}

func TestSurvivesFCrashes(t *testing.T) {
	reg, fab := newReg(t, 2, 2, 5, Options{})
	ctx := testCtx(t)
	w0, err := reg.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w0.Write(ctx, 10); err != nil {
		t.Fatal(err)
	}
	for _, s := range []types.ServerID{1, 3} {
		if err := fab.Crash(s); err != nil {
			t.Fatal(err)
		}
	}
	w1, err := reg.Writer(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w1.Write(ctx, 20); err != nil {
		t.Fatalf("write after f crashes: %v", err)
	}
	got, err := reg.NewReader().Read(ctx)
	if err != nil {
		t.Fatalf("read after f crashes: %v", err)
	}
	if got != 20 {
		t.Fatalf("Read = %d, want 20", got)
	}
}

func TestBlocksBeyondFCrashes(t *testing.T) {
	reg, fab := newReg(t, 1, 1, 3, Options{})
	for _, s := range []types.ServerID{0, 1} { // f+1 crashes
		if err := fab.Crash(s); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	w, err := reg.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(ctx, 1); err == nil {
		t.Fatal("write with f+1 crashes succeeded")
	}
}

func TestSequentialHistoryIsRegular(t *testing.T) {
	hist := &spec.History{}
	reg, _ := newReg(t, 3, 1, 3, Options{History: hist})
	ctx := testCtx(t)
	for round := 0; round < 3; round++ {
		for i := 0; i < 3; i++ {
			w, err := reg.Writer(i)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Write(ctx, types.Value(round*10+i+1)); err != nil {
				t.Fatal(err)
			}
			if _, err := reg.NewReader().Read(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	ops := hist.Snapshot()
	if err := spec.CheckWSSafety(ops, types.InitialValue); err != nil {
		t.Errorf("WS-Safety: %v", err)
	}
	if err := spec.CheckWSRegularity(ops, types.InitialValue); err != nil {
		t.Errorf("WS-Regularity: %v", err)
	}
}

func TestAtomicModeLinearizable(t *testing.T) {
	// With read write-back, even write-concurrent histories linearize.
	hist := &spec.History{}
	reg, _ := newReg(t, 2, 1, 3, Options{History: hist, ReadWriteBack: true})
	ctx := testCtx(t)

	done := make(chan error, 3)
	for i := 0; i < 2; i++ {
		w, err := reg.Writer(i)
		if err != nil {
			t.Fatal(err)
		}
		go func(i int, w interface {
			Write(context.Context, types.Value) error
		}) {
			var err error
			for op := 0; op < 8 && err == nil; op++ {
				err = w.Write(ctx, types.Value((i+1)*100+op))
			}
			done <- err
		}(i, w)
	}
	rd := reg.NewReader()
	go func() {
		var err error
		for op := 0; op < 8 && err == nil; op++ {
			_, err = rd.Read(ctx)
		}
		done <- err
	}()
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent op: %v", err)
		}
	}
	if err := spec.CheckLinearizable(hist.Snapshot(), types.InitialValue); err != nil {
		t.Fatalf("atomic mode not linearizable: %v", err)
	}
}

func TestTimestampsGrowLinearly(t *testing.T) {
	// The TSVal domain is N x V: timestamps are unbounded counters that
	// advance once per write (the model's register size aside — the paper
	// studies register COUNT, not size).
	reg, fab := newReg(t, 2, 1, 3, Options{})
	ctx := testCtx(t)
	const writes = 7
	for i := 0; i < writes; i++ {
		w, err := reg.Writer(i % 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(ctx, types.Value(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	c := fab.Cluster()
	for _, obj := range c.AllObjects() {
		o, err := c.Object(obj)
		if err != nil {
			t.Fatal(err)
		}
		if got := o.Peek().TS; got != writes {
			t.Errorf("object %d ts = %d, want %d (one bump per write)", obj, got, writes)
		}
	}
}
