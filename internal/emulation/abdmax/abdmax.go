// Package abdmax implements the Table 1 "max-register" upper bound: an
// f-tolerant, wait-free, WS-Regular k-register from 2f+1 max-register base
// objects, one per server.
//
// This is multi-writer ABD [5, 22, 34, 29] with the per-server code
// factored into the write-max / read-max primitives, exactly as the paper
// observes in Section 1: the space cost is 2f+1 regardless of the number of
// writers k and the number of available servers n. The max-register's
// monotonicity is what defeats the covering adversary — a delayed old
// write-max can never erase a newer value.
package abdmax

import (
	"fmt"

	"repro/internal/baseobj"
	"repro/internal/emulation/abdcore"
	"repro/internal/emulation/quorumreg"
	"repro/internal/emulation/rounds"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
)

// store is a single max-register base object on one server. Both of its
// operations are single low-level ops, so it is a direct store: the quorum
// engine scatters whole rounds over all stores in one TriggerBatch.
type store struct {
	fab    *fabric.Fabric
	obj    types.ObjectID
	server types.ServerID
	// valueSize, when positive, attaches a payload of that many bytes to
	// every write-max — the replicated baseline of the bytes-per-server
	// axis: each of the 2f+1 servers stores the full payload, where the
	// coded construction stores a 1/kData fragment.
	valueSize int
}

// payload derives the write's payload rider when the store is sized.
func (s *store) payload(v types.TSValue) types.Payload {
	if s.valueSize <= 0 {
		return nil
	}
	return types.PayloadFor(v.Val, s.valueSize)
}

// Compile-time interface compliance checks.
var (
	_ abdcore.MaxStore    = (*store)(nil)
	_ rounds.DirectReader = (*store)(nil)
	_ rounds.DirectWriter = (*store)(nil)
)

// Server implements abdcore.MaxStore.
func (s *store) Server() types.ServerID { return s.server }

// ReadTarget implements rounds.DirectReader.
func (s *store) ReadTarget() rounds.Target {
	return rounds.Target{Object: s.obj, Inv: baseobj.Invocation{Op: baseobj.OpReadMax}}
}

// WriteTarget implements rounds.DirectWriter.
func (s *store) WriteTarget(v types.TSValue) rounds.Target {
	return rounds.Target{Object: s.obj, Inv: baseobj.Invocation{Op: baseobj.OpWriteMax, Arg: v, Data: s.payload(v)}}
}

// StartWriteMax implements abdcore.MaxStore with a single write-max trigger.
func (s *store) StartWriteMax(client types.ClientID, v types.TSValue, report func(types.TSValue, error)) {
	call := s.fab.Trigger(client, s.obj, baseobj.Invocation{Op: baseobj.OpWriteMax, Arg: v, Data: s.payload(v)})
	call.OnComplete(func(o fabric.Outcome) { report(o.Resp.Val, o.Err) })
}

// StartReadMax implements abdcore.MaxStore with a single read-max trigger.
func (s *store) StartReadMax(client types.ClientID, report func(types.TSValue, error)) {
	call := s.fab.Trigger(client, s.obj, baseobj.Invocation{Op: baseobj.OpReadMax})
	call.OnComplete(func(o fabric.Outcome) { report(o.Resp.Val, o.Err) })
}

// storeReshaper re-places max-register stores across a view resize: a fresh
// store is one max-register seeded with a write-max of the folded maximum —
// the monotone write-max also makes re-seeding survivors idempotent.
type storeReshaper struct {
	fab       *fabric.Fabric
	valueSize int
}

var _ quorumreg.StoreReshaper = (*storeReshaper)(nil)

func (sr *storeReshaper) StoreObjects(s abdcore.MaxStore) []types.ObjectID {
	return []types.ObjectID{s.(*store).obj}
}

func (sr *storeReshaper) NewStore(rs *fabric.Reshaper, server types.ServerID, m types.TSValue) (abdcore.MaxStore, int, error) {
	obj, err := sr.fab.Cluster().PlaceMaxRegister(server)
	if err != nil {
		return nil, 0, err
	}
	st := &store{fab: sr.fab, obj: obj, server: server, valueSize: sr.valueSize}
	if err := sr.ReseedStore(rs, st, m); err != nil {
		return nil, 0, err
	}
	return st, 1, nil
}

func (sr *storeReshaper) ReseedStore(rs *fabric.Reshaper, s abdcore.MaxStore, m types.TSValue) error {
	if !types.ZeroTSValue.Less(m) {
		return nil
	}
	st := s.(*store)
	_, err := rs.Apply(st.obj, baseobj.Invocation{Op: baseobj.OpWriteMax, Arg: m, Data: st.payload(m)})
	return err
}

// Options configure the construction.
type Options struct {
	// History receives the high-level operations (optional).
	History *spec.History
	// ReadWriteBack upgrades reads to the atomic (linearizable) protocol
	// at the cost of readers writing.
	ReadWriteBack bool
	// Servers optionally pins the 2f+1 hosting servers; defaults to
	// servers 0..2f.
	Servers []types.ServerID
	// ValueSize, when positive, makes every write carry a payload of that
	// many bytes into each replica — the replicated bytes-per-server
	// baseline the coded construction is measured against.
	ValueSize int
}

// New places one max-register on each of 2f+1 servers of the fabric's
// cluster and returns the emulated k-register.
func New(fab *fabric.Fabric, k, f int, opts Options) (*quorumreg.Register, error) {
	if f <= 0 {
		return nil, fmt.Errorf("abdmax: f must be positive, got %d", f)
	}
	servers := opts.Servers
	if servers == nil {
		for s := 0; s < 2*f+1; s++ {
			servers = append(servers, types.ServerID(s))
		}
	}
	if len(servers) != 2*f+1 {
		return nil, fmt.Errorf("abdmax: need exactly 2f+1=%d servers, got %d", 2*f+1, len(servers))
	}
	c := fab.Cluster()
	stores := make([]abdcore.MaxStore, 0, len(servers))
	for _, server := range servers {
		obj, err := c.PlaceMaxRegister(server)
		if err != nil {
			return nil, fmt.Errorf("abdmax: placing max-register: %w", err)
		}
		stores = append(stores, &store{fab: fab, obj: obj, server: server, valueSize: opts.ValueSize})
	}
	var engineOpts []abdcore.Option
	if opts.ReadWriteBack {
		engineOpts = append(engineOpts, abdcore.WithReadWriteBack())
	}
	return quorumreg.New(quorumreg.Config{
		Name:       "abd-max",
		K:          k,
		F:          f,
		Stores:     stores,
		Fabric:     fab,
		Resources:  len(stores),
		History:    opts.History,
		EngineOpts: engineOpts,
		Reshaper:   &storeReshaper{fab: fab, valueSize: opts.ValueSize},
	})
}
