// Package abdcore implements the quorum protocol shared by the
// max-register, CAS, and baseline emulations: the multi-writer ABD pattern
// [Attiya, Bar-Noy, Dolev 1995; Gilbert, Lynch, Shvartsman 2010] in which a
// write first collects the highest timestamp from a quorum, picks a larger
// one, and then pushes the timestamped value to a quorum; a read collects
// from a quorum and returns the value with the highest timestamp.
//
// The paper observes (Section 1, "Results") that the per-server code of
// multi-writer ABD is exactly the write-max / read-max interface of a
// max-register, so the engine is parameterized by a MaxStore abstraction:
// one store per server, with asynchronous start/report semantics matching
// the fabric's trigger/respond model. Plugging in different stores yields
// the different rows of Table 1.
//
// The round mechanics (scatter, quorum gather, crash adaptivity) live in
// the shared internal/emulation/rounds engine. Stores whose operations are
// single low-level ops additionally implement rounds.DirectReader /
// rounds.DirectWriter, and the engine then scatters whole quorum rounds
// through fabric.TriggerBatch in one call instead of starting each store
// individually.
package abdcore

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/emulation/rounds"
	"repro/internal/fabric"
	"repro/internal/types"
)

// MaxStore is the per-server storage abstraction: an asynchronous
// max-register. Start calls must not block; report must be invoked at most
// once, when (and if) the operation completes. A store whose server crashed
// simply never reports, like any faulty base object.
type MaxStore interface {
	// Server returns the hosting server.
	Server() types.ServerID
	// StartWriteMax asynchronously applies write-max(v) for client.
	StartWriteMax(client types.ClientID, v types.TSValue, report func(types.TSValue, error))
	// StartReadMax asynchronously applies read-max() for client.
	StartReadMax(client types.ClientID, report func(types.TSValue, error))
}

// Errors reported by the engine.
var (
	// ErrTooFewStores is returned when fewer than 2f+1 stores back the
	// engine.
	ErrTooFewStores = errors.New("abdcore: need at least 2f+1 stores")
)

// placement is one epoch's worth of quorum geometry: the store set, the
// failure budget, and the precomputed direct-dispatch artifacts. It is
// immutable once published — a resize installs a whole new placement — so
// every round derives its targets and its n−f threshold from ONE snapshot
// and can never pair the new store set with the old budget or vice versa.
type placement struct {
	stores []MaxStore
	f      int

	// readTargets is non-nil when every store is a rounds.DirectReader
	// (the per-store read-max invocations, precomputed — they are constant
	// for a placement), and directWriters is non-nil when every store is a
	// rounds.DirectWriter.
	readTargets   []rounds.Target
	directWriters []rounds.DirectWriter
}

func (p *placement) quorum() int { return len(p.stores) - p.f }

// Engine is the quorum read/write core. It is stateless across operations
// and safe for concurrent use by multiple clients; Resize swaps the
// placement atomically while operations are in flight.
type Engine struct {
	p             atomic.Pointer[placement]
	readWriteBack bool

	// fab enables the batch-scatter fast path for direct stores.
	fab *fabric.Fabric
}

// Option configures an Engine.
type Option func(*Engine)

// WithReadWriteBack makes reads write the collected maximum back to a
// quorum before returning. This is the classic atomicity (linearizability)
// fix: it costs readers a write round, which is exactly why the paper's
// space bounds target regularity ("since atomicity usually requires readers
// to write", Section 1).
func WithReadWriteBack() Option {
	return func(e *Engine) { e.readWriteBack = true }
}

// WithFabric tells the engine which fabric its stores trigger on, enabling
// whole-round TriggerBatch scatters for direct stores. Without it the
// engine falls back to starting each store individually.
func WithFabric(fab *fabric.Fabric) Option {
	return func(e *Engine) { e.fab = fab }
}

// New creates an engine over the given stores with failure threshold f.
func New(stores []MaxStore, f int, opts ...Option) (*Engine, error) {
	e := &Engine{}
	for _, opt := range opts {
		opt(e)
	}
	p, err := e.buildPlacement(stores, f)
	if err != nil {
		return nil, err
	}
	e.p.Store(p)
	return e, nil
}

// buildPlacement validates a store set + budget pair and precomputes its
// direct-dispatch artifacts.
func (e *Engine) buildPlacement(stores []MaxStore, f int) (*placement, error) {
	if f <= 0 {
		return nil, fmt.Errorf("abdcore: f must be positive, got %d", f)
	}
	if len(stores) < 2*f+1 {
		return nil, fmt.Errorf("%w: have %d, f=%d", ErrTooFewStores, len(stores), f)
	}
	p := &placement{stores: stores, f: f}
	if e.fab != nil {
		readTargets := make([]rounds.Target, 0, len(stores))
		writers := make([]rounds.DirectWriter, 0, len(stores))
		for _, s := range stores {
			if dr, ok := s.(rounds.DirectReader); ok {
				readTargets = append(readTargets, dr.ReadTarget())
			}
			if dw, ok := s.(rounds.DirectWriter); ok {
				writers = append(writers, dw)
			}
		}
		if len(readTargets) == len(stores) {
			p.readTargets = readTargets
		}
		if len(writers) == len(stores) {
			p.directWriters = writers
		}
	}
	return p, nil
}

// Resize atomically installs a new store set and failure budget. In-flight
// rounds keep their current snapshot — completing against the old stores
// is sound while they exist — and every round started (or retried) after
// the swap derives both its targets and its threshold from the new
// placement. Callers resize inside a frozen fabric transition, where old
// rounds can only bounce with retryable view-change errors.
func (e *Engine) Resize(stores []MaxStore, f int) error {
	p, err := e.buildPlacement(stores, f)
	if err != nil {
		return err
	}
	e.p.Store(p)
	return nil
}

// Stores returns the current placement's store set (do not mutate).
func (e *Engine) Stores() []MaxStore { return e.p.Load().stores }

// F returns the current placement's failure budget.
func (e *Engine) F() int { return e.p.Load().f }

// Quorum returns the number of store responses each phase waits for:
// len(stores) - f, a majority when len(stores) = 2f+1 — derived from one
// placement snapshot, never from a caller's remembered f.
func (e *Engine) Quorum() int { return e.p.Load().quorum() }

// Collect reads the highest timestamped value from a quorum of stores. A
// round that races a reconfiguration (some member completed with a
// view-change error, so it never applied) retries whole under the new view:
// routes re-resolve, the quorum re-forms, and the blocking shape makes
// fabric.RetryView the natural retry loop.
func (e *Engine) Collect(ctx context.Context, client types.ClientID) (types.TSValue, error) {
	return fabric.RetryView(ctx, func() (types.TSValue, error) {
		return e.collectOnce(ctx, client)
	})
}

func (e *Engine) collectOnce(ctx context.Context, client types.ClientID) (types.TSValue, error) {
	// One snapshot per attempt: a retry after a resize re-enters here and
	// loads the new placement — targets and threshold together.
	p := e.p.Load()
	if p.readTargets != nil {
		v, err := rounds.Scatter(e.fab, client, p.readTargets).AwaitMax(ctx, p.quorum())
		if err != nil {
			return v, fmt.Errorf("abdcore: %w", err)
		}
		return v, nil
	}
	// The channel is sized for one report per store; Deliver keeps a
	// misbehaving store (or a late report after this gather was abandoned
	// on ctx cancellation) from ever blocking a fabric goroutine.
	ch := make(chan rounds.Report, len(p.stores))
	for i, s := range p.stores {
		i := i
		s.StartReadMax(client, func(v types.TSValue, err error) {
			rounds.Deliver(ch, rounds.Report{Index: i, Val: v, Err: err})
		})
	}
	v, err := rounds.Gather(ctx, ch, p.quorum())
	if err != nil {
		return v, fmt.Errorf("abdcore: %w", err)
	}
	return v, nil
}

// WriteMax pushes v to a quorum of stores, retrying the round under a new
// view if it raced a reconfiguration (write-max is idempotent, so the
// already-acknowledged members absorb the replay).
func (e *Engine) WriteMax(ctx context.Context, client types.ClientID, v types.TSValue) error {
	_, err := fabric.RetryView(ctx, func() (types.TSValue, error) {
		return types.ZeroTSValue, e.writeMaxOnce(ctx, client, v)
	})
	return err
}

func (e *Engine) writeMaxOnce(ctx context.Context, client types.ClientID, v types.TSValue) error {
	p := e.p.Load()
	if p.directWriters != nil {
		targets := make([]rounds.Target, len(p.directWriters))
		for i, dw := range p.directWriters {
			targets[i] = dw.WriteTarget(v)
		}
		if _, err := rounds.Scatter(e.fab, client, targets).AwaitMax(ctx, p.quorum()); err != nil {
			return fmt.Errorf("abdcore: %w", err)
		}
		return nil
	}
	// One report per store fits the buffer even if this gather is
	// abandoned: casmax's multi-step Algorithm 1 chains keep running on
	// fabric goroutines after a ctx cancellation and report here late.
	ch := make(chan rounds.Report, len(p.stores))
	for i, s := range p.stores {
		i := i
		s.StartWriteMax(client, v, func(got types.TSValue, err error) {
			rounds.Deliver(ch, rounds.Report{Index: i, Val: got, Err: err})
		})
	}
	if _, err := rounds.Gather(ctx, ch, p.quorum()); err != nil {
		return fmt.Errorf("abdcore: %w", err)
	}
	return nil
}

// startCollect is the non-blocking Collect: report fires exactly once, on
// the quorum'th response or the first error, possibly inline. If fewer
// than a quorum of stores ever respond, report never fires — a pending op.
// View-change completions retry transparently: the direct path inherits
// ScatterFold's built-in re-scatter; the store-start path (casmax chains)
// re-starts every store under the new view via rounds.ViewRetry.
func (e *Engine) startCollect(client types.ClientID, report func(types.TSValue, error)) {
	e.startCollectAttempt(client, report, 0)
}

func (e *Engine) startCollectAttempt(client types.ClientID, report func(types.TSValue, error), attempt int) {
	// Each attempt — including view-change rescatters — snapshots the
	// placement afresh, so a retry that crosses a resize gathers against
	// the new targets at the new n−f, never a mixed view.
	p := e.p.Load()
	if p.readTargets != nil {
		rounds.ScatterFoldDyn(e.fab, client, func() ([]rounds.Target, int) {
			p := e.p.Load()
			return p.readTargets, p.quorum()
		}, report)
		return
	}
	j := rounds.NewFold(p.quorum(), rounds.ViewRetry(attempt, report, func(next int) {
		e.startCollectAttempt(client, report, next)
	}))
	for _, s := range p.stores {
		s.StartReadMax(client, j.Complete)
	}
}

// startPush is the non-blocking WriteMax, with the same view-change retry
// split as startCollect.
func (e *Engine) startPush(client types.ClientID, v types.TSValue, report func(types.TSValue, error)) {
	e.startPushAttempt(client, v, report, 0)
}

func (e *Engine) startPushAttempt(client types.ClientID, v types.TSValue, report func(types.TSValue, error), attempt int) {
	p := e.p.Load()
	if p.directWriters != nil {
		rounds.ScatterFoldDyn(e.fab, client, func() ([]rounds.Target, int) {
			p := e.p.Load()
			targets := make([]rounds.Target, len(p.directWriters))
			for i, dw := range p.directWriters {
				targets[i] = dw.WriteTarget(v)
			}
			return targets, p.quorum()
		}, report)
		return
	}
	j := rounds.NewFold(p.quorum(), rounds.ViewRetry(attempt, report, func(next int) {
		e.startPushAttempt(client, v, report, next)
	}))
	for _, s := range p.stores {
		s.StartWriteMax(client, v, j.Complete)
	}
}

// StartWrite is the completion-based high-level write: the collect and push
// phases run as a callback chain on whatever goroutines complete the
// low-level operations, so nothing ever blocks — one caller goroutine can
// keep thousands of writes in flight. done fires exactly once, when the
// push quorum acknowledged (or on the first protocol error); it never
// fires if the failure assumption is violated, like any pending op.
func (e *Engine) StartWrite(client types.ClientID, v types.Value, done func(error)) {
	e.startCollect(client, func(cur types.TSValue, err error) {
		if err != nil {
			done(fmt.Errorf("abdcore: write collect: %w", err))
			return
		}
		next := types.TSValue{TS: cur.TS + 1, Writer: client, Val: v}
		e.startPush(client, next, func(_ types.TSValue, err error) {
			if err != nil {
				done(fmt.Errorf("abdcore: write push: %w", err))
				return
			}
			done(nil)
		})
	})
}

// StartRead is the completion-based high-level read; with WithReadWriteBack
// the write-back phase chains in before done fires.
func (e *Engine) StartRead(client types.ClientID, done func(types.Value, error)) {
	e.startCollect(client, func(cur types.TSValue, err error) {
		if err != nil {
			done(types.InitialValue, fmt.Errorf("abdcore: read collect: %w", err))
			return
		}
		if !e.readWriteBack {
			done(cur.Val, nil)
			return
		}
		e.startPush(client, cur, func(_ types.TSValue, err error) {
			if err != nil {
				done(types.InitialValue, fmt.Errorf("abdcore: read write-back: %w", err))
				return
			}
			done(cur.Val, nil)
		})
	})
}

// Write performs the high-level write: collect, bump the timestamp, push.
func (e *Engine) Write(ctx context.Context, client types.ClientID, v types.Value) error {
	cur, err := e.Collect(ctx, client)
	if err != nil {
		return fmt.Errorf("abdcore: write collect: %w", err)
	}
	next := types.TSValue{TS: cur.TS + 1, Writer: client, Val: v}
	if err := e.WriteMax(ctx, client, next); err != nil {
		return fmt.Errorf("abdcore: write push: %w", err)
	}
	return nil
}

// Read performs the high-level read: collect, optionally write back, return
// the freshest value.
func (e *Engine) Read(ctx context.Context, client types.ClientID) (types.Value, error) {
	cur, err := e.Collect(ctx, client)
	if err != nil {
		return types.InitialValue, fmt.Errorf("abdcore: read collect: %w", err)
	}
	if e.readWriteBack {
		if err := e.WriteMax(ctx, client, cur); err != nil {
			return types.InitialValue, fmt.Errorf("abdcore: read write-back: %w", err)
		}
	}
	return cur.Val, nil
}
