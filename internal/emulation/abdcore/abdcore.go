// Package abdcore implements the quorum engine shared by the max-register,
// CAS, and baseline emulations: the multi-writer ABD pattern [Attiya,
// Bar-Noy, Dolev 1995; Gilbert, Lynch, Shvartsman 2010] in which a write
// first collects the highest timestamp from a quorum, picks a larger one,
// and then pushes the timestamped value to a quorum; a read collects from a
// quorum and returns the value with the highest timestamp.
//
// The paper observes (Section 1, "Results") that the per-server code of
// multi-writer ABD is exactly the write-max / read-max interface of a
// max-register, so the engine is parameterized by a MaxStore abstraction:
// one store per server, with asynchronous start/report semantics matching
// the fabric's trigger/respond model. Plugging in different stores yields
// the different rows of Table 1.
package abdcore

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/types"
)

// MaxStore is the per-server storage abstraction: an asynchronous
// max-register. Start calls must not block; report must be invoked at most
// once, when (and if) the operation completes. A store whose server crashed
// simply never reports, like any faulty base object.
type MaxStore interface {
	// Server returns the hosting server.
	Server() types.ServerID
	// StartWriteMax asynchronously applies write-max(v) for client.
	StartWriteMax(client types.ClientID, v types.TSValue, report func(types.TSValue, error))
	// StartReadMax asynchronously applies read-max() for client.
	StartReadMax(client types.ClientID, report func(types.TSValue, error))
}

// Errors reported by the engine.
var (
	// ErrTooFewStores is returned when fewer than 2f+1 stores back the
	// engine.
	ErrTooFewStores = errors.New("abdcore: need at least 2f+1 stores")
)

// Engine is the quorum read/write core. It is stateless across operations
// and safe for concurrent use by multiple clients.
type Engine struct {
	stores        []MaxStore
	f             int
	readWriteBack bool
}

// Option configures an Engine.
type Option func(*Engine)

// WithReadWriteBack makes reads write the collected maximum back to a
// quorum before returning. This is the classic atomicity (linearizability)
// fix: it costs readers a write round, which is exactly why the paper's
// space bounds target regularity ("since atomicity usually requires readers
// to write", Section 1).
func WithReadWriteBack() Option {
	return func(e *Engine) { e.readWriteBack = true }
}

// New creates an engine over the given stores with failure threshold f.
func New(stores []MaxStore, f int, opts ...Option) (*Engine, error) {
	if f <= 0 {
		return nil, fmt.Errorf("abdcore: f must be positive, got %d", f)
	}
	if len(stores) < 2*f+1 {
		return nil, fmt.Errorf("%w: have %d, f=%d", ErrTooFewStores, len(stores), f)
	}
	e := &Engine{stores: stores, f: f}
	for _, opt := range opts {
		opt(e)
	}
	return e, nil
}

// Quorum returns the number of store responses each phase waits for:
// len(stores) - f, a majority when len(stores) = 2f+1.
func (e *Engine) Quorum() int { return len(e.stores) - e.f }

// report is a store completion.
type report struct {
	val types.TSValue
	err error
}

// Collect reads the highest timestamped value from a quorum of stores.
func (e *Engine) Collect(ctx context.Context, client types.ClientID) (types.TSValue, error) {
	ch := make(chan report, len(e.stores))
	for _, s := range e.stores {
		s.StartReadMax(client, func(v types.TSValue, err error) {
			ch <- report{val: v, err: err}
		})
	}
	return e.await(ctx, ch)
}

// WriteMax pushes v to a quorum of stores.
func (e *Engine) WriteMax(ctx context.Context, client types.ClientID, v types.TSValue) error {
	ch := make(chan report, len(e.stores))
	for _, s := range e.stores {
		s.StartWriteMax(client, v, func(got types.TSValue, err error) {
			ch <- report{val: got, err: err}
		})
	}
	_, err := e.await(ctx, ch)
	return err
}

// await gathers quorum-many reports, folding values with max.
func (e *Engine) await(ctx context.Context, ch <-chan report) (types.TSValue, error) {
	max := types.ZeroTSValue
	for got := 0; got < e.Quorum(); got++ {
		// A done context fails deterministically even when reports are
		// already buffered (select picks ready cases at random).
		if err := ctx.Err(); err != nil {
			return max, fmt.Errorf("abdcore: quorum wait (%d/%d): %w", got, e.Quorum(), err)
		}
		select {
		case <-ctx.Done():
			return max, fmt.Errorf("abdcore: quorum wait (%d/%d): %w", got, e.Quorum(), ctx.Err())
		case r := <-ch:
			if r.err != nil {
				// Store errors are protocol violations (wrong op,
				// unauthorized writer), not crash failures; fail fast.
				return max, fmt.Errorf("abdcore: store error: %w", r.err)
			}
			max = types.MaxTSValue(max, r.val)
		}
	}
	return max, nil
}

// Write performs the high-level write: collect, bump the timestamp, push.
func (e *Engine) Write(ctx context.Context, client types.ClientID, v types.Value) error {
	cur, err := e.Collect(ctx, client)
	if err != nil {
		return fmt.Errorf("abdcore: write collect: %w", err)
	}
	next := types.TSValue{TS: cur.TS + 1, Writer: client, Val: v}
	if err := e.WriteMax(ctx, client, next); err != nil {
		return fmt.Errorf("abdcore: write push: %w", err)
	}
	return nil
}

// Read performs the high-level read: collect, optionally write back, return
// the freshest value.
func (e *Engine) Read(ctx context.Context, client types.ClientID) (types.Value, error) {
	cur, err := e.Collect(ctx, client)
	if err != nil {
		return types.InitialValue, fmt.Errorf("abdcore: read collect: %w", err)
	}
	if e.readWriteBack {
		if err := e.WriteMax(ctx, client, cur); err != nil {
			return types.InitialValue, fmt.Errorf("abdcore: read write-back: %w", err)
		}
	}
	return cur.Val, nil
}
