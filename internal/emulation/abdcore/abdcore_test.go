package abdcore

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/types"
)

// fakeStore is an in-memory max-store with controllable delivery: silent
// stores never report (like crashed or held base objects), failing stores
// report an error.
type fakeStore struct {
	server types.ServerID

	mu      sync.Mutex
	val     types.TSValue
	silent  bool
	failErr error

	writeMaxCalls int
	readMaxCalls  int
}

var _ MaxStore = (*fakeStore)(nil)

func (s *fakeStore) Server() types.ServerID { return s.server }

func (s *fakeStore) StartWriteMax(_ types.ClientID, v types.TSValue, report func(types.TSValue, error)) {
	s.mu.Lock()
	s.writeMaxCalls++
	if s.silent {
		s.mu.Unlock()
		return
	}
	if s.failErr != nil {
		err := s.failErr
		s.mu.Unlock()
		report(types.ZeroTSValue, err)
		return
	}
	s.val = types.MaxTSValue(s.val, v)
	got := s.val
	s.mu.Unlock()
	report(got, nil)
}

func (s *fakeStore) StartReadMax(_ types.ClientID, report func(types.TSValue, error)) {
	s.mu.Lock()
	s.readMaxCalls++
	if s.silent {
		s.mu.Unlock()
		return
	}
	if s.failErr != nil {
		err := s.failErr
		s.mu.Unlock()
		report(types.ZeroTSValue, err)
		return
	}
	got := s.val
	s.mu.Unlock()
	report(got, nil)
}

// newFakes builds n fake stores.
func newFakes(n int) ([]*fakeStore, []MaxStore) {
	fakes := make([]*fakeStore, n)
	stores := make([]MaxStore, n)
	for i := range fakes {
		fakes[i] = &fakeStore{server: types.ServerID(i)}
		stores[i] = fakes[i]
	}
	return fakes, stores
}

func TestEngineValidation(t *testing.T) {
	_, stores := newFakes(3)
	if _, err := New(stores, 0); err == nil {
		t.Error("f=0 accepted")
	}
	if _, err := New(stores[:2], 1); !errors.Is(err, ErrTooFewStores) {
		t.Errorf("2 stores for f=1 err = %v, want ErrTooFewStores", err)
	}
	e, err := New(stores, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if e.Quorum() != 2 {
		t.Errorf("Quorum = %d, want 2", e.Quorum())
	}
}

func TestWriteThenRead(t *testing.T) {
	_, stores := newFakes(3)
	e, err := New(stores, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := e.Write(ctx, 0, 42); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := e.Read(ctx, 100)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got != 42 {
		t.Fatalf("Read = %d, want 42", got)
	}
}

func TestTimestampsIncrease(t *testing.T) {
	fakes, stores := newFakes(3)
	e, err := New(stores, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 1; i <= 5; i++ {
		if err := e.Write(ctx, types.ClientID(i%2), types.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range fakes {
		if s.val.TS != 5 {
			t.Errorf("store %d ts = %d, want 5", i, s.val.TS)
		}
		if s.val.Val != 5 {
			t.Errorf("store %d val = %d, want 5", i, s.val.Val)
		}
	}
}

func TestToleratesFSilentStores(t *testing.T) {
	fakes, stores := newFakes(5)
	fakes[0].silent = true
	fakes[3].silent = true // f = 2 silent stores
	e, err := New(stores, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Write(ctx, 0, 7); err != nil {
		t.Fatalf("Write with f silent stores: %v", err)
	}
	got, err := e.Read(ctx, 100)
	if err != nil {
		t.Fatalf("Read with f silent stores: %v", err)
	}
	if got != 7 {
		t.Fatalf("Read = %d, want 7", got)
	}
}

func TestBlocksBeyondFSilentStores(t *testing.T) {
	fakes, stores := newFakes(3)
	fakes[0].silent = true
	fakes[1].silent = true // more than f = 1
	e, err := New(stores, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := e.Write(ctx, 0, 7); err == nil {
		t.Fatal("Write with f+1 silent stores succeeded")
	} else if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
}

func TestStoreErrorFailsFast(t *testing.T) {
	fakes, stores := newFakes(3)
	boom := errors.New("boom")
	fakes[1].failErr = boom
	e, err := New(stores, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// The error may or may not be in the first quorum-many reports;
	// retry until it is observed (delivery order is deterministic here:
	// stores report inline in order, so store 1's error is always seen).
	if err := e.Write(ctx, 0, 7); !errors.Is(err, boom) {
		t.Fatalf("Write err = %v, want boom", err)
	}
}

func TestReadWriteBack(t *testing.T) {
	fakes, stores := newFakes(3)
	e, err := New(stores, 1, WithReadWriteBack())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := e.Write(ctx, 0, 9); err != nil {
		t.Fatal(err)
	}
	before := fakes[0].writeMaxCalls
	if _, err := e.Read(ctx, 100); err != nil {
		t.Fatal(err)
	}
	if fakes[0].writeMaxCalls <= before {
		t.Error("read with write-back did not write")
	}

	// Without write-back, reads never write.
	_, stores2 := newFakes(3)
	e2, err := New(stores2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Read(ctx, 100); err != nil {
		t.Fatal(err)
	}
	for i, s := range stores2 {
		if s.(*fakeStore).writeMaxCalls != 0 {
			t.Errorf("store %d: reader wrote without write-back", i)
		}
	}
}

func TestCollectReturnsMaximum(t *testing.T) {
	fakes, stores := newFakes(3)
	fakes[0].val = types.TSValue{TS: 3, Writer: 0, Val: 30}
	fakes[1].val = types.TSValue{TS: 7, Writer: 1, Val: 70}
	fakes[2].val = types.TSValue{TS: 5, Writer: 2, Val: 50}
	e, err := New(stores, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Collect waits for quorum (2) reports; stores report inline in
	// order, so it sees stores 0 and 1.
	got, err := e.Collect(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.TS != 7 {
		t.Fatalf("Collect ts = %d, want 7", got.TS)
	}
}

// TestStartWriteStartRead drives the completion-based chain over fake
// stores: on synchronous stores the whole collect/push chain completes
// inline, so done must have fired by the time StartWrite returns.
func TestStartWriteStartRead(t *testing.T) {
	_, stores := newFakes(3)
	e, err := New(stores, 1)
	if err != nil {
		t.Fatal(err)
	}
	wrote := make(chan error, 1)
	e.StartWrite(1, 42, func(err error) { wrote <- err })
	select {
	case err := <-wrote:
		if err != nil {
			t.Fatalf("StartWrite: %v", err)
		}
	default:
		t.Fatal("StartWrite chain did not complete inline on synchronous stores")
	}
	read := make(chan types.Value, 1)
	e.StartRead(2, func(v types.Value, err error) {
		if err != nil {
			t.Errorf("StartRead: %v", err)
		}
		read <- v
	})
	select {
	case v := <-read:
		if v != 42 {
			t.Fatalf("StartRead = %d, want 42", v)
		}
	default:
		t.Fatal("StartRead chain did not complete inline")
	}
}

// TestStartWritePendingBeyondF checks the pending-op semantics of the async
// chain: with f+1 silent stores the done callback must never fire.
func TestStartWritePendingBeyondF(t *testing.T) {
	fakes, stores := newFakes(3)
	fakes[0].silent = true
	fakes[1].silent = true
	e, err := New(stores, 1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	e.StartWrite(1, 7, func(err error) { done <- err })
	select {
	case err := <-done:
		t.Fatalf("write with f+1 silent stores completed (%v), want pending forever", err)
	case <-time.After(20 * time.Millisecond):
	}
}

// TestStartReadStoreErrorFailsFast mirrors TestStoreErrorFailsFast on the
// async chain.
func TestStartReadStoreErrorFailsFast(t *testing.T) {
	fakes, stores := newFakes(3)
	boom := errors.New("boom")
	fakes[0].failErr = boom
	e, err := New(stores, 1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	e.StartRead(1, func(_ types.Value, err error) { done <- err })
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("StartRead error = %v, want %v", err, boom)
		}
	case <-time.After(time.Second):
		t.Fatal("StartRead did not report the store error")
	}
}
