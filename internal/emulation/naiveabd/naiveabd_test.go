package naiveabd

import (
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/emulation/quorumreg"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
)

func newReg(t *testing.T, k, f int, hist *spec.History) (*quorumreg.Register, *fabric.Fabric) {
	t.Helper()
	c, err := cluster.New(2*f + 1)
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(c)
	reg, err := New(fab, k, f, Options{History: hist})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return reg, fab
}

func TestBenignRunsLookCorrect(t *testing.T) {
	// The whole point of the baseline: under benign schedules it behaves
	// like a correct emulation — the flaw only shows under the
	// stale-release adversary (tested in internal/runner).
	hist := &spec.History{}
	reg, _ := newReg(t, 3, 1, hist)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for round := 0; round < 3; round++ {
		for i := 0; i < 3; i++ {
			w, err := reg.Writer(i)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Write(ctx, types.Value(round*10+i+1)); err != nil {
				t.Fatal(err)
			}
			if _, err := reg.NewReader().Read(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	ops := hist.Snapshot()
	if err := spec.CheckWSSafety(ops, types.InitialValue); err != nil {
		t.Errorf("benign WS-Safety: %v", err)
	}
	if err := spec.CheckWSRegularity(ops, types.InitialValue); err != nil {
		t.Errorf("benign WS-Regularity: %v", err)
	}
}

func TestResourcesBelowTheBound(t *testing.T) {
	// The baseline's space is 2f+1 — below Theorem 1's kf + f + 1 for
	// k > 1, which is why it must be breakable.
	reg, _ := newReg(t, 4, 1, nil)
	if reg.ResourceComplexity() != 3 {
		t.Fatalf("resources = %d, want 3", reg.ResourceComplexity())
	}
	minimum := 4*1 + 1 + 1 // kf + f + 1
	if reg.ResourceComplexity() >= minimum {
		t.Fatalf("baseline not under-provisioned: %d >= %d", reg.ResourceComplexity(), minimum)
	}
}

func TestValidation(t *testing.T) {
	c, err := cluster.New(3)
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(c)
	if _, err := New(fab, 1, 0, Options{}); err == nil {
		t.Error("f=0 accepted")
	}
	if _, err := New(fab, 1, 1, Options{Servers: []types.ServerID{0, 1}}); err == nil {
		t.Error("2 pinned servers for f=1 accepted")
	}
}

func TestSurvivesFCrashes(t *testing.T) {
	reg, fab := newReg(t, 2, 1, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	w0, err := reg.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w0.Write(ctx, 10); err != nil {
		t.Fatal(err)
	}
	if err := fab.Crash(0); err != nil {
		t.Fatal(err)
	}
	got, err := reg.NewReader().Read(ctx)
	if err != nil {
		t.Fatalf("read after crash: %v", err)
	}
	if got != 10 {
		t.Fatalf("Read = %d, want 10", got)
	}
}
