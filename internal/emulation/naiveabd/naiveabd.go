// Package naiveabd is the deliberately under-provisioned baseline of the
// lower-bound experiments: the ABD pattern run directly over one plain
// read/write register per server (2f+1 base registers in total — far below
// Theorem 1's kf + f + 1 minimum for k > 1).
//
// With plain registers, the per-server "write-max" degenerates into an
// unconditional overwrite. Under benign schedules the protocol looks
// correct; under the paper's covering adversary a delayed old write,
// released after a newer write completed, erases the newer value, and a
// subsequent read violates WS-Safety (the separation between plain
// registers and max-registers/CAS in Table 1). Experiment E6 drives exactly
// that schedule against this package and against abdmax, and only this
// package fails.
package naiveabd

import (
	"fmt"

	"repro/internal/baseobj"
	"repro/internal/emulation/abdcore"
	"repro/internal/emulation/quorumreg"
	"repro/internal/emulation/rounds"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
)

// store exposes a plain register through the max-store interface: write-max
// becomes a lossy overwrite — the flaw under adversarial asynchrony. Both
// operations are single low-level ops, so the store is direct and the
// engine batch-scatters its rounds.
type store struct {
	fab    *fabric.Fabric
	obj    types.ObjectID
	server types.ServerID
}

// Compile-time interface compliance checks.
var (
	_ abdcore.MaxStore    = (*store)(nil)
	_ rounds.DirectReader = (*store)(nil)
	_ rounds.DirectWriter = (*store)(nil)
)

// Server implements abdcore.MaxStore.
func (s *store) Server() types.ServerID { return s.server }

// ReadTarget implements rounds.DirectReader.
func (s *store) ReadTarget() rounds.Target {
	return rounds.Target{Object: s.obj, Inv: baseobj.Invocation{Op: baseobj.OpRead}}
}

// WriteTarget implements rounds.DirectWriter: the unconditional overwrite.
func (s *store) WriteTarget(v types.TSValue) rounds.Target {
	return rounds.Target{Object: s.obj, Inv: baseobj.Invocation{Op: baseobj.OpWrite, Arg: v}}
}

// StartWriteMax implements abdcore.MaxStore with an unconditional write.
func (s *store) StartWriteMax(client types.ClientID, v types.TSValue, report func(types.TSValue, error)) {
	call := s.fab.Trigger(client, s.obj, baseobj.Invocation{Op: baseobj.OpWrite, Arg: v})
	call.OnComplete(func(o fabric.Outcome) { report(o.Resp.Val, o.Err) })
}

// StartReadMax implements abdcore.MaxStore with a plain read.
func (s *store) StartReadMax(client types.ClientID, report func(types.TSValue, error)) {
	call := s.fab.Trigger(client, s.obj, baseobj.Invocation{Op: baseobj.OpRead})
	call.OnComplete(func(o fabric.Outcome) { report(o.Resp.Val, o.Err) })
}

// storeReshaper re-places plain-register stores across a view resize. The
// seed is an unconditional overwrite of the folded maximum — faithful to
// the baseline's (flawed) write-max, and sound here because the window is
// frozen: the resize itself never loses a value, only the construction's
// normal operation can.
type storeReshaper struct {
	fab *fabric.Fabric
}

var _ quorumreg.StoreReshaper = (*storeReshaper)(nil)

func (sr *storeReshaper) StoreObjects(s abdcore.MaxStore) []types.ObjectID {
	return []types.ObjectID{s.(*store).obj}
}

func (sr *storeReshaper) NewStore(rs *fabric.Reshaper, server types.ServerID, m types.TSValue) (abdcore.MaxStore, int, error) {
	obj, err := sr.fab.Cluster().PlaceRegister(server)
	if err != nil {
		return nil, 0, err
	}
	st := &store{fab: sr.fab, obj: obj, server: server}
	if err := sr.ReseedStore(rs, st, m); err != nil {
		return nil, 0, err
	}
	return st, 1, nil
}

func (sr *storeReshaper) ReseedStore(rs *fabric.Reshaper, s abdcore.MaxStore, m types.TSValue) error {
	if !types.ZeroTSValue.Less(m) {
		return nil
	}
	_, err := rs.Apply(s.(*store).obj, baseobj.Invocation{Op: baseobj.OpWrite, Arg: m})
	return err
}

// Options configure the baseline.
type Options struct {
	// History receives the high-level operations (optional).
	History *spec.History
	// Servers optionally pins the 2f+1 hosting servers.
	Servers []types.ServerID
}

// New places one plain register on each of 2f+1 servers and returns the
// (unsound) emulated k-register.
func New(fab *fabric.Fabric, k, f int, opts Options) (*quorumreg.Register, error) {
	if f <= 0 {
		return nil, fmt.Errorf("naiveabd: f must be positive, got %d", f)
	}
	servers := opts.Servers
	if servers == nil {
		for s := 0; s < 2*f+1; s++ {
			servers = append(servers, types.ServerID(s))
		}
	}
	if len(servers) != 2*f+1 {
		return nil, fmt.Errorf("naiveabd: need exactly 2f+1=%d servers, got %d", 2*f+1, len(servers))
	}
	c := fab.Cluster()
	stores := make([]abdcore.MaxStore, 0, len(servers))
	for _, server := range servers {
		obj, err := c.PlaceRegister(server)
		if err != nil {
			return nil, fmt.Errorf("naiveabd: placing register: %w", err)
		}
		stores = append(stores, &store{fab: fab, obj: obj, server: server})
	}
	return quorumreg.New(quorumreg.Config{
		Name:      "naive-abd",
		K:         k,
		F:         f,
		Stores:    stores,
		Fabric:    fab,
		Resources: len(stores),
		History:   opts.History,
		Reshaper:  &storeReshaper{fab: fab},
	})
}
