// Coded register construction: a fault-tolerant k-writer register whose
// per-server space is a *fragment* of the value, not a copy.
//
// Each write erasure-codes its payload into n fragments (systematic
// Reed–Solomon, any kData reconstruct — see rs.go) and stripes them across
// n fragment stores, one per server. The write is three quorum rounds:
//
//  1. collect:  OpFragTS on all n, gather n−f, bump the max timestamp;
//  2. put:      OpPutFrag of fragment i to server i, gather n−f acks;
//  3. commit:   OpCommitFrag(ts) on all n, gather n−f acks.
//
// A read gathers OpGetFrags from n−f stores, reconstructs the highest
// timestamp holding ≥ kData distinct fragments, and verifies the decoded
// payload (types.Payload embeds its own value derivation, so a stripe mixed
// from two writes can never decode silently). In atomic mode the reader
// writes the stripe back (re-encoded put + commit) before returning, unless
// every gathered store already committed it.
//
// Safety needs kData ≤ n−2f: a reader's n−f stores intersect the put
// quorum of the newest committed stripe in ≥ n−2f stores, and the
// fragment-store retention rule (baseobj.FragStore) guarantees each of
// those still holds its fragment. That is exactly the register-emulation
// space tension the paper quantifies: tolerating more failures at fixed n
// forces kData down, and at n = 2f+1 the construction degenerates to
// kData = 1 — full replication, the Ω(f·D) per-value regime of the SCC
// lower bound. The win exists only in the n > 2f+1 slack.
package coded

import (
	"context"
	"fmt"

	"repro/internal/baseobj"
	"repro/internal/emulation"
	"repro/internal/emulation/rounds"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
)

// DefaultValueSize is the payload size used when Options.ValueSize is zero.
const DefaultValueSize = 64

// Options configure the construction.
type Options struct {
	// History receives the high-level operations (optional).
	History *spec.History
	// ValueSize is the payload size in bytes each write stores (default
	// DefaultValueSize, minimum types.MinPayloadSize).
	ValueSize int
	// DataShards is the coder's k — the number of fragments that suffice
	// to reconstruct. Defaults to n−2f, the largest safe value; anything
	// above it is rejected.
	DataShards int
	// Atomic upgrades reads to the linearizable protocol at the cost of
	// readers writing the stripe back.
	Atomic bool
	// Servers optionally pins the n hosting servers; defaults to every
	// server of the fabric's cluster.
	Servers []types.ServerID
}

// Register implements emulation.Register over striped fragment stores.
type Register struct {
	k, f      int
	n         int
	valueSize int
	atomic    bool
	coder     *Coder
	fab       *fabric.Fabric
	objs      []types.ObjectID
	hist      *spec.History
	readers   emulation.ReaderIDs
}

// Compile-time interface compliance check.
var _ emulation.Register = (*Register)(nil)

// New places one fragment store on each hosting server and returns the
// emulated k-writer register.
func New(fab *fabric.Fabric, k, f int, opts Options) (*Register, error) {
	if err := emulation.ValidateWriters(k); err != nil {
		return nil, fmt.Errorf("coded: %w", err)
	}
	if f <= 0 {
		return nil, fmt.Errorf("coded: f must be positive, got %d", f)
	}
	c := fab.Cluster()
	servers := opts.Servers
	if servers == nil {
		servers = c.Members()
	}
	n := len(servers)
	if n < 2*f+1 {
		return nil, fmt.Errorf("coded: need n ≥ 2f+1 = %d servers, got %d", 2*f+1, n)
	}
	kData := opts.DataShards
	if kData == 0 {
		kData = n - 2*f
	}
	if kData < 1 || kData > n-2*f {
		return nil, fmt.Errorf("coded: data shards must be in [1, n−2f] = [1, %d], got %d (a reader's n−f stores only provably intersect a put quorum in n−2f)", n-2*f, kData)
	}
	coder, err := NewCoder(kData, n)
	if err != nil {
		return nil, fmt.Errorf("coded: %w", err)
	}
	valueSize := opts.ValueSize
	if valueSize <= 0 {
		valueSize = DefaultValueSize
	}
	if valueSize < types.MinPayloadSize {
		valueSize = types.MinPayloadSize
	}
	objs := make([]types.ObjectID, 0, n)
	for _, server := range servers {
		obj, err := c.PlaceFragStore(server)
		if err != nil {
			return nil, fmt.Errorf("coded: placing fragment store: %w", err)
		}
		objs = append(objs, obj)
	}
	hist := opts.History
	if hist == nil {
		hist = &spec.History{}
	}
	return &Register{
		k: k, f: f, n: n,
		valueSize: valueSize,
		atomic:    opts.Atomic,
		coder:     coder,
		fab:       fab,
		objs:      objs,
		hist:      hist,
	}, nil
}

// Name implements emulation.Register.
func (r *Register) Name() string { return "coded" }

// K implements emulation.Register.
func (r *Register) K() int { return r.k }

// F implements emulation.Register.
func (r *Register) F() int { return r.f }

// DataShards returns the coder's k: fragments sufficient to reconstruct.
func (r *Register) DataShards() int { return r.coder.K() }

// ValueSize returns the payload size each write stores.
func (r *Register) ValueSize() int { return r.valueSize }

// ResourceComplexity implements emulation.Register: one fragment store per
// server. The paper's object-count measure is blind to the win here — the
// bytes-per-server axis (cluster.PerServerBytes) is what separates coded
// from replicated.
func (r *Register) ResourceComplexity() int { return r.n }

// History returns the recorded high-level history.
func (r *Register) History() *spec.History { return r.hist }

// need is the quorum size of every round.
func (r *Register) need() int { return r.n - r.f }

// Writer implements emulation.Register.
func (r *Register) Writer(i int) (emulation.Writer, error) {
	if i < 0 || i >= r.k {
		return nil, fmt.Errorf("coded: writer %d out of range (k=%d)", i, r.k)
	}
	return &writerHandle{reg: r, client: types.ClientID(i)}, nil
}

// NewReader implements emulation.Register.
func (r *Register) NewReader() emulation.Reader {
	return &readerHandle{reg: r, client: r.readers.Next()}
}

// tsTargets builds the collect round: the max stripe timestamp of each store.
func (r *Register) tsTargets() []rounds.Target {
	ts := make([]rounds.Target, len(r.objs))
	for i, obj := range r.objs {
		ts[i] = rounds.Target{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpFragTS}}
	}
	return ts
}

// getTargets builds the gather round: every store's fragment snapshot.
func (r *Register) getTargets() []rounds.Target {
	ts := make([]rounds.Target, len(r.objs))
	for i, obj := range r.objs {
		ts[i] = rounds.Target{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpGetFrags}}
	}
	return ts
}

// putTargets builds the striped put round: fragment i goes to store i.
func (r *Register) putTargets(ts types.TSValue, length int, shards [][]byte) []rounds.Target {
	targets := make([]rounds.Target, len(r.objs))
	for i, obj := range r.objs {
		frag := &baseobj.Fragment{
			TS:     ts,
			Index:  i,
			K:      r.coder.K(),
			Length: length,
			Data:   shards[i],
		}
		targets[i] = rounds.Target{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpPutFrag, Frag: frag}}
	}
	return targets
}

// commitTargets builds the commit round.
func (r *Register) commitTargets(ts types.TSValue) []rounds.Target {
	targets := make([]rounds.Target, len(r.objs))
	for i, obj := range r.objs {
		targets[i] = rounds.Target{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpCommitFrag, Arg: ts}}
	}
	return targets
}

// startWrite runs the three-round write as a completion chain: collect the
// max timestamp, stripe the payload across the put quorum, commit. done
// fires exactly once; it never fires if the failure assumption is violated,
// like any pending op.
func (r *Register) startWrite(client types.ClientID, v types.Value, done func(error)) {
	rounds.ScatterFold(r.fab, client, r.tsTargets(), r.need(), func(cur types.TSValue, err error) {
		if err != nil {
			done(fmt.Errorf("coded: write collect: %w", err))
			return
		}
		ts := types.TSValue{TS: cur.TS + 1, Writer: client, Val: v}
		payload := types.PayloadFor(v, r.valueSize)
		r.startPut(client, ts, payload, func(err error) {
			if err != nil {
				done(fmt.Errorf("coded: write: %w", err))
				return
			}
			done(nil)
		})
	})
}

// startPut stripes payload at timestamp ts across the stores and commits:
// rounds 2 and 3 of a write, also the write-back of an atomic read.
func (r *Register) startPut(client types.ClientID, ts types.TSValue, payload types.Payload, done func(error)) {
	shards := r.coder.Encode(payload)
	rounds.ScatterFoldReports(r.fab, client, r.putTargets(ts, len(payload), shards), r.need(), func(_ []rounds.Report, err error) {
		if err != nil {
			done(fmt.Errorf("stripe put: %w", err))
			return
		}
		rounds.ScatterFold(r.fab, client, r.commitTargets(ts), r.need(), func(_ types.TSValue, err error) {
			if err != nil {
				done(fmt.Errorf("stripe commit: %w", err))
				return
			}
			done(nil)
		})
	})
}

// startRead gathers n−f fragment snapshots, reconstructs the newest
// reconstructible stripe, and (atomic mode) writes it back before
// returning.
func (r *Register) startRead(client types.ClientID, done func(types.Value, error)) {
	rounds.ScatterFoldReports(r.fab, client, r.getTargets(), r.need(), func(reps []rounds.Report, err error) {
		if err != nil {
			done(types.InitialValue, fmt.Errorf("coded: read gather: %w", err))
			return
		}
		ts, payload, committed, err := r.reconstruct(reps)
		if err != nil {
			done(types.InitialValue, fmt.Errorf("coded: read: %w", err))
			return
		}
		if ts == types.ZeroTSValue {
			done(types.InitialValue, nil)
			return
		}
		v, err := payload.Value()
		if err != nil {
			done(types.InitialValue, fmt.Errorf("coded: read: %w", err))
			return
		}
		if v != ts.Val {
			done(types.InitialValue, fmt.Errorf("coded: read: stripe %v decodes to value %d", ts, v))
			return
		}
		if !r.atomic || committed {
			done(v, nil)
			return
		}
		// Write-back: make the stripe as stable as a completed write, so a
		// later reader cannot observe an older value (the ABD new/old
		// inversion). Re-encoding regenerates the fragments the gather
		// didn't see.
		r.startPut(client, ts, payload, func(err error) {
			if err != nil {
				done(types.InitialValue, fmt.Errorf("coded: read write-back: %w", err))
				return
			}
			done(v, nil)
		})
	})
}

// reconstruct decodes the newest stripe with ≥ kData distinct fragments
// among the gathered reports. committed reports whether every gathered
// store's commit watermark already covers that stripe — the atomic-mode
// fast path that skips the write-back. A zero timestamp means the register
// is in its initial state.
//
// The newest *committed* stripe is always reconstructible here (retention
// rule + quorum intersection, see the package comment), so the chosen
// stripe is never older than a completed write. A newer pending stripe
// that happens to be reconstructible may win instead; its write is
// concurrent, so returning it is regular — and the write-back makes it
// stable before an atomic read returns.
func (r *Register) reconstruct(reps []rounds.Report) (types.TSValue, types.Payload, bool, error) {
	type stripe struct {
		length int
		frags  map[int][]byte
	}
	stripes := make(map[types.TSValue]*stripe)
	for _, rep := range reps {
		for _, f := range rep.Frags {
			if f.K != r.coder.K() {
				return types.ZeroTSValue, nil, false, fmt.Errorf("fragment of stripe %v has k=%d, coder has k=%d", f.TS, f.K, r.coder.K())
			}
			s := stripes[f.TS]
			if s == nil {
				s = &stripe{length: f.Length, frags: make(map[int][]byte)}
				stripes[f.TS] = s
			}
			s.frags[f.Index] = f.Data
		}
	}
	best := types.ZeroTSValue
	for ts, s := range stripes {
		if len(s.frags) >= r.coder.K() && best.Less(ts) {
			best = ts
		}
	}
	if best == types.ZeroTSValue {
		return types.ZeroTSValue, nil, true, nil
	}
	data, err := r.coder.Decode(stripes[best].length, stripes[best].frags)
	if err != nil {
		return types.ZeroTSValue, nil, false, fmt.Errorf("decoding stripe %v: %w", best, err)
	}
	committed := true
	for _, rep := range reps {
		if rep.Val.Less(best) { // watermark below the stripe: not yet committed there
			committed = false
			break
		}
	}
	return best, types.Payload(data), committed, nil
}

// writerHandle is the per-writer handle.
type writerHandle struct {
	reg    *Register
	client types.ClientID
}

// Compile-time interface compliance checks: the handles serve both the
// blocking and the completion-based client paths.
var (
	_ emulation.Writer      = (*writerHandle)(nil)
	_ emulation.AsyncWriter = (*writerHandle)(nil)
	_ emulation.Reader      = (*readerHandle)(nil)
	_ emulation.AsyncReader = (*readerHandle)(nil)
)

// Client implements emulation.Writer.
func (w *writerHandle) Client() types.ClientID { return w.client }

// StartWrite implements emulation.AsyncWriter.
func (w *writerHandle) StartWrite(v types.Value, done func(error)) {
	pw := w.reg.hist.BeginWrite(w.client, v)
	w.reg.startWrite(w.client, v, func(err error) {
		if err == nil {
			pw.End()
		}
		done(err)
	})
}

// Write implements emulation.Writer.
func (w *writerHandle) Write(ctx context.Context, v types.Value) error {
	pw := w.reg.hist.BeginWrite(w.client, v)
	errc := make(chan error, 1)
	w.reg.startWrite(w.client, v, func(err error) { errc <- err })
	select {
	case <-ctx.Done():
		return fmt.Errorf("coded: write: %w", ctx.Err())
	case err := <-errc:
		if err != nil {
			return err
		}
		pw.End()
		return nil
	}
}

// readerHandle is the per-reader handle.
type readerHandle struct {
	reg    *Register
	client types.ClientID
}

// Client implements emulation.Reader.
func (r *readerHandle) Client() types.ClientID { return r.client }

// StartRead implements emulation.AsyncReader.
func (r *readerHandle) StartRead(done func(types.Value, error)) {
	pr := r.reg.hist.BeginRead(r.client)
	r.reg.startRead(r.client, func(v types.Value, err error) {
		if err != nil {
			done(types.InitialValue, err)
			return
		}
		pr.End(v)
		done(v, nil)
	})
}

// Read implements emulation.Reader.
func (r *readerHandle) Read(ctx context.Context) (types.Value, error) {
	pr := r.reg.hist.BeginRead(r.client)
	type result struct {
		v   types.Value
		err error
	}
	resc := make(chan result, 1)
	r.reg.startRead(r.client, func(v types.Value, err error) { resc <- result{v, err} })
	select {
	case <-ctx.Done():
		return types.InitialValue, fmt.Errorf("coded: read: %w", ctx.Err())
	case res := <-resc:
		if res.err != nil {
			return types.InitialValue, res.err
		}
		pr.End(res.v)
		return res.v, nil
	}
}
