// Coded register construction: a fault-tolerant k-writer register whose
// per-server space is a *fragment* of the value, not a copy.
//
// Each write erasure-codes its payload into n fragments (systematic
// Reed–Solomon, any kData reconstruct — see rs.go) and stripes them across
// n fragment stores, one per server. The write is three quorum rounds:
//
//  1. collect:  OpFragTS on all n, gather n−f, bump the max timestamp;
//  2. put:      OpPutFrag of fragment i to server i, gather n−f acks;
//  3. commit:   OpCommitFrag(ts) on all n, gather n−f acks.
//
// A read gathers OpGetFrags from n−f stores, reconstructs the highest
// timestamp holding ≥ kData distinct fragments, and verifies the decoded
// payload (types.Payload embeds its own value derivation, so a stripe mixed
// from two writes can never decode silently). In atomic mode the reader
// writes the stripe back (re-encoded put + commit) before returning, unless
// every gathered store already committed it.
//
// Safety needs kData ≤ n−2f: a reader's n−f stores intersect the put
// quorum of the newest committed stripe in ≥ n−2f stores, and the
// fragment-store retention rule (baseobj.FragStore) guarantees each of
// those still holds its fragment. That is exactly the register-emulation
// space tension the paper quantifies: tolerating more failures at fixed n
// forces kData down, and at n = 2f+1 the construction degenerates to
// kData = 1 — full replication, the Ω(f·D) per-value regime of the SCC
// lower bound. The win exists only in the n > 2f+1 slack.
package coded

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/baseobj"
	"repro/internal/emulation"
	"repro/internal/emulation/rounds"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
)

// ErrKDataChanged marks a resize rejected because the construction was
// built with a pinned DataShards count that the new geometry cannot host:
// kData must stay ≤ n−2f, and a pinned coder cannot restripe. Constructions
// with a defaulted (n−2f) shard count restripe instead.
var ErrKDataChanged = errors.New("coded: pinned data shards incompatible with resized view")

// DefaultValueSize is the payload size used when Options.ValueSize is zero.
const DefaultValueSize = 64

// Options configure the construction.
type Options struct {
	// History receives the high-level operations (optional).
	History *spec.History
	// ValueSize is the payload size in bytes each write stores (default
	// DefaultValueSize, minimum types.MinPayloadSize).
	ValueSize int
	// DataShards is the coder's k — the number of fragments that suffice
	// to reconstruct. Defaults to n−2f, the largest safe value; anything
	// above it is rejected.
	DataShards int
	// Atomic upgrades reads to the linearizable protocol at the cost of
	// readers writing the stripe back.
	Atomic bool
	// Servers optionally pins the n hosting servers; defaults to every
	// server of the fabric's cluster.
	Servers []types.ServerID
}

// placement is one immutable striping geometry: the fragment stores, the
// failure budget, and the coder whose kData matches them. Rounds derive
// their targets and their n−f threshold from a single placement snapshot,
// so an operation retried across a resize epoch re-encodes and re-gathers
// against the new geometry — never a mix of old stores and new thresholds.
type placement struct {
	objs  []types.ObjectID
	n, f  int
	coder *Coder
}

// need is the quorum size of every round under this placement.
func (p *placement) need() int { return p.n - p.f }

// Register implements emulation.Register over striped fragment stores.
type Register struct {
	k         int
	valueSize int
	atomic    bool
	// pinned records an explicit Options.DataShards: a pinned coder cannot
	// restripe, so a resize that would change kData is rejected
	// (ErrKDataChanged) instead.
	pinned  bool
	p       atomic.Pointer[placement]
	fab     *fabric.Fabric
	hist    *spec.History
	readers emulation.ReaderIDs
}

// Compile-time interface compliance checks.
var (
	_ emulation.Register      = (*Register)(nil)
	_ emulation.ViewResizable = (*Register)(nil)
)

// New places one fragment store on each hosting server and returns the
// emulated k-writer register.
func New(fab *fabric.Fabric, k, f int, opts Options) (*Register, error) {
	if err := emulation.ValidateWriters(k); err != nil {
		return nil, fmt.Errorf("coded: %w", err)
	}
	if f <= 0 {
		return nil, fmt.Errorf("coded: f must be positive, got %d", f)
	}
	c := fab.Cluster()
	servers := opts.Servers
	if servers == nil {
		servers = c.Members()
	}
	n := len(servers)
	if n < 2*f+1 {
		return nil, fmt.Errorf("coded: need n ≥ 2f+1 = %d servers, got %d", 2*f+1, n)
	}
	kData := opts.DataShards
	if kData == 0 {
		kData = n - 2*f
	}
	if kData < 1 || kData > n-2*f {
		return nil, fmt.Errorf("coded: data shards must be in [1, n−2f] = [1, %d], got %d (a reader's n−f stores only provably intersect a put quorum in n−2f)", n-2*f, kData)
	}
	coder, err := NewCoder(kData, n)
	if err != nil {
		return nil, fmt.Errorf("coded: %w", err)
	}
	valueSize := opts.ValueSize
	if valueSize <= 0 {
		valueSize = DefaultValueSize
	}
	if valueSize < types.MinPayloadSize {
		valueSize = types.MinPayloadSize
	}
	objs := make([]types.ObjectID, 0, n)
	for _, server := range servers {
		obj, err := c.PlaceFragStore(server)
		if err != nil {
			return nil, fmt.Errorf("coded: placing fragment store: %w", err)
		}
		objs = append(objs, obj)
	}
	hist := opts.History
	if hist == nil {
		hist = &spec.History{}
	}
	r := &Register{
		k:         k,
		valueSize: valueSize,
		atomic:    opts.Atomic,
		pinned:    opts.DataShards != 0,
		fab:       fab,
		hist:      hist,
	}
	r.p.Store(&placement{objs: objs, n: n, f: f, coder: coder})
	// Record the failure budget on the view: resize coordinators default
	// their new threshold to it, and churn drivers guard shrinks with it.
	c.SetF(f)
	return r, nil
}

// Name implements emulation.Register.
func (r *Register) Name() string { return "coded" }

// K implements emulation.Register.
func (r *Register) K() int { return r.k }

// F implements emulation.Register.
func (r *Register) F() int { return r.p.Load().f }

// DataShards returns the coder's k: fragments sufficient to reconstruct.
func (r *Register) DataShards() int { return r.p.Load().coder.K() }

// ValueSize returns the payload size each write stores.
func (r *Register) ValueSize() int { return r.valueSize }

// ResourceComplexity implements emulation.Register: one fragment store per
// server. The paper's object-count measure is blind to the win here — the
// bytes-per-server axis (cluster.PerServerBytes) is what separates coded
// from replicated.
func (r *Register) ResourceComplexity() int { return r.p.Load().n }

// History returns the recorded high-level history.
func (r *Register) History() *spec.History { return r.hist }

// Writer implements emulation.Register.
func (r *Register) Writer(i int) (emulation.Writer, error) {
	if i < 0 || i >= r.k {
		return nil, fmt.Errorf("coded: writer %d out of range (k=%d)", i, r.k)
	}
	return &writerHandle{reg: r, client: types.ClientID(i)}, nil
}

// NewReader implements emulation.Register.
func (r *Register) NewReader() emulation.Reader {
	return &readerHandle{reg: r, client: r.readers.Next()}
}

// tsTargets builds the collect round: the max stripe timestamp of each store.
func (p *placement) tsTargets() []rounds.Target {
	ts := make([]rounds.Target, len(p.objs))
	for i, obj := range p.objs {
		ts[i] = rounds.Target{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpFragTS}}
	}
	return ts
}

// getTargets builds the gather round: every store's fragment snapshot.
func (p *placement) getTargets() []rounds.Target {
	ts := make([]rounds.Target, len(p.objs))
	for i, obj := range p.objs {
		ts[i] = rounds.Target{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpGetFrags}}
	}
	return ts
}

// putTargets builds the striped put round: fragment i goes to store i.
func (p *placement) putTargets(ts types.TSValue, length int, shards [][]byte) []rounds.Target {
	targets := make([]rounds.Target, len(p.objs))
	for i, obj := range p.objs {
		frag := &baseobj.Fragment{
			TS:     ts,
			Index:  i,
			K:      p.coder.K(),
			Length: length,
			Data:   shards[i],
		}
		targets[i] = rounds.Target{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpPutFrag, Frag: frag}}
	}
	return targets
}

// commitTargets builds the commit round.
func (p *placement) commitTargets(ts types.TSValue) []rounds.Target {
	targets := make([]rounds.Target, len(p.objs))
	for i, obj := range p.objs {
		targets[i] = rounds.Target{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpCommitFrag, Arg: ts}}
	}
	return targets
}

// startWrite runs the three-round write as a completion chain: collect the
// max timestamp, stripe the payload across the put quorum, commit. done
// fires exactly once; it never fires if the failure assumption is violated,
// like any pending op.
func (r *Register) startWrite(client types.ClientID, v types.Value, done func(error)) {
	rounds.ScatterFoldDyn(r.fab, client, func() ([]rounds.Target, int) {
		p := r.p.Load()
		return p.tsTargets(), p.need()
	}, func(cur types.TSValue, err error) {
		if err != nil {
			done(fmt.Errorf("coded: write collect: %w", err))
			return
		}
		ts := types.TSValue{TS: cur.TS + 1, Writer: client, Val: v}
		payload := types.PayloadFor(v, r.valueSize)
		r.startPut(client, ts, payload, func(err error) {
			if err != nil {
				done(fmt.Errorf("coded: write: %w", err))
				return
			}
			done(nil)
		})
	})
}

// startPut stripes payload at timestamp ts across the stores and commits:
// rounds 2 and 3 of a write, also the write-back of an atomic read. Each
// attempt re-encodes against the placement it scatters over, so a put
// retried across a resize epoch stripes with the new coder's kData.
func (r *Register) startPut(client types.ClientID, ts types.TSValue, payload types.Payload, done func(error)) {
	rounds.ScatterFoldReportsDyn(r.fab, client, func() ([]rounds.Target, int) {
		p := r.p.Load()
		return p.putTargets(ts, len(payload), p.coder.Encode(payload)), p.need()
	}, func(_ []rounds.Report, err error) {
		if err != nil {
			done(fmt.Errorf("stripe put: %w", err))
			return
		}
		rounds.ScatterFoldDyn(r.fab, client, func() ([]rounds.Target, int) {
			p := r.p.Load()
			return p.commitTargets(ts), p.need()
		}, func(_ types.TSValue, err error) {
			if err != nil {
				done(fmt.Errorf("stripe commit: %w", err))
				return
			}
			done(nil)
		})
	})
}

// startRead gathers n−f fragment snapshots, reconstructs the newest
// reconstructible stripe, and (atomic mode) writes it back before
// returning.
func (r *Register) startRead(client types.ClientID, done func(types.Value, error)) {
	// gathered pins the placement the final gather attempt scattered over:
	// reconstruct must use that attempt's coder, not whatever r.p holds by
	// the time the fold callback runs (a resize may swap it in between).
	var gathered atomic.Pointer[placement]
	rounds.ScatterFoldReportsDyn(r.fab, client, func() ([]rounds.Target, int) {
		p := r.p.Load()
		gathered.Store(p)
		return p.getTargets(), p.need()
	}, func(reps []rounds.Report, err error) {
		if err != nil {
			done(types.InitialValue, fmt.Errorf("coded: read gather: %w", err))
			return
		}
		ts, payload, committed, err := gathered.Load().reconstruct(reps)
		if err != nil {
			done(types.InitialValue, fmt.Errorf("coded: read: %w", err))
			return
		}
		if ts == types.ZeroTSValue {
			done(types.InitialValue, nil)
			return
		}
		v, err := payload.Value()
		if err != nil {
			done(types.InitialValue, fmt.Errorf("coded: read: %w", err))
			return
		}
		if v != ts.Val {
			done(types.InitialValue, fmt.Errorf("coded: read: stripe %v decodes to value %d", ts, v))
			return
		}
		if !r.atomic || committed {
			done(v, nil)
			return
		}
		// Write-back: make the stripe as stable as a completed write, so a
		// later reader cannot observe an older value (the ABD new/old
		// inversion). Re-encoding regenerates the fragments the gather
		// didn't see.
		r.startPut(client, ts, payload, func(err error) {
			if err != nil {
				done(types.InitialValue, fmt.Errorf("coded: read write-back: %w", err))
				return
			}
			done(v, nil)
		})
	})
}

// reconstruct decodes the newest stripe with ≥ kData distinct fragments
// among the gathered reports. committed reports whether every gathered
// store's commit watermark already covers that stripe — the atomic-mode
// fast path that skips the write-back. A zero timestamp means the register
// is in its initial state.
//
// The newest *committed* stripe is always reconstructible here (retention
// rule + quorum intersection, see the package comment), so the chosen
// stripe is never older than a completed write. A newer pending stripe
// that happens to be reconstructible may win instead; its write is
// concurrent, so returning it is regular — and the write-back makes it
// stable before an atomic read returns.
func (p *placement) reconstruct(reps []rounds.Report) (types.TSValue, types.Payload, bool, error) {
	type stripe struct {
		length int
		frags  map[int][]byte
	}
	stripes := make(map[types.TSValue]*stripe)
	for _, rep := range reps {
		for _, f := range rep.Frags {
			if f.K != p.coder.K() {
				return types.ZeroTSValue, nil, false, fmt.Errorf("fragment of stripe %v has k=%d, coder has k=%d", f.TS, f.K, p.coder.K())
			}
			s := stripes[f.TS]
			if s == nil {
				s = &stripe{length: f.Length, frags: make(map[int][]byte)}
				stripes[f.TS] = s
			}
			s.frags[f.Index] = f.Data
		}
	}
	best := types.ZeroTSValue
	for ts, s := range stripes {
		if len(s.frags) >= p.coder.K() && best.Less(ts) {
			best = ts
		}
	}
	if best == types.ZeroTSValue {
		return types.ZeroTSValue, nil, true, nil
	}
	data, err := p.coder.Decode(stripes[best].length, stripes[best].frags)
	if err != nil {
		return types.ZeroTSValue, nil, false, fmt.Errorf("decoding stripe %v: %w", best, err)
	}
	committed := true
	for _, rep := range reps {
		if rep.Val.Less(best) { // watermark below the stripe: not yet committed there
			committed = false
			break
		}
	}
	return best, types.Payload(data), committed, nil
}

// Reshape implements emulation.ViewResizable by restriping: inside the
// frozen window it reads every old store's full fragment state (the
// authoritative whole — no quorum sampling needed), reconstructs the newest
// reconstructible stripe, re-encodes it with the new geometry's coder, and
// seeds fresh fragment stores on every new member — survivors included,
// because their old stores hold fragments striped at the old kData, which
// the new coder must never see. The placement swap happens before the old
// stores retire, so an in-window retry can never route to a missing object.
//
// A register built with a pinned DataShards count cannot restripe to a
// different kData: if the new geometry's ceiling n−2f falls below the pin,
// the resize is rejected with ErrKDataChanged and the old view stays.
func (r *Register) Reshape(rs *fabric.Reshaper) error {
	old := r.p.Load()
	members := rs.Members()
	newN := len(members)
	newF := rs.F()
	if newF <= 0 {
		return fmt.Errorf("coded: f must be positive, got %d", newF)
	}
	if newN < 2*newF+1 {
		return fmt.Errorf("coded: need n ≥ 2f+1 = %d servers, got %d", 2*newF+1, newN)
	}
	newK := newN - 2*newF
	if r.pinned {
		if old.coder.K() > newN-2*newF {
			return fmt.Errorf("coded: %w: pinned kData=%d, resized ceiling n−2f=%d", ErrKDataChanged, old.coder.K(), newN-2*newF)
		}
		newK = old.coder.K()
	}
	reps := make([]rounds.Report, 0, len(old.objs))
	for i, obj := range old.objs {
		st, err := rs.State(obj)
		if err != nil {
			return fmt.Errorf("coded: reading fragment store %d: %w", obj, err)
		}
		reps = append(reps, rounds.Report{Index: i, Object: obj, Val: st.Val, Frags: st.Frags})
	}
	ts, payload, _, err := old.reconstruct(reps)
	if err != nil {
		return fmt.Errorf("coded: restripe: %w", err)
	}
	coder, err := NewCoder(newK, newN)
	if err != nil {
		return fmt.Errorf("coded: restripe: %w", err)
	}
	c := r.fab.Cluster()
	objs := make([]types.ObjectID, 0, newN)
	for _, sid := range members {
		obj, err := c.PlaceFragStore(sid)
		if err != nil {
			return fmt.Errorf("coded: placing fragment store on server %d: %w", sid, err)
		}
		objs = append(objs, obj)
	}
	if ts != types.ZeroTSValue {
		shards := coder.Encode(payload)
		for i, obj := range objs {
			frag := &baseobj.Fragment{TS: ts, Index: i, K: newK, Length: len(payload), Data: shards[i]}
			if _, err := rs.Apply(obj, baseobj.Invocation{Op: baseobj.OpPutFrag, Frag: frag}); err != nil {
				return fmt.Errorf("coded: seeding fragment %d: %w", i, err)
			}
			if _, err := rs.Apply(obj, baseobj.Invocation{Op: baseobj.OpCommitFrag, Arg: ts}); err != nil {
				return fmt.Errorf("coded: committing seeded stripe on store %d: %w", obj, err)
			}
		}
	}
	r.p.Store(&placement{objs: objs, n: newN, f: newF, coder: coder})
	for _, obj := range old.objs {
		if err := rs.Retire(obj); err != nil {
			return fmt.Errorf("coded: retiring fragment store %d: %w", obj, err)
		}
	}
	return nil
}

// writerHandle is the per-writer handle.
type writerHandle struct {
	reg    *Register
	client types.ClientID
}

// Compile-time interface compliance checks: the handles serve both the
// blocking and the completion-based client paths.
var (
	_ emulation.Writer      = (*writerHandle)(nil)
	_ emulation.AsyncWriter = (*writerHandle)(nil)
	_ emulation.Reader      = (*readerHandle)(nil)
	_ emulation.AsyncReader = (*readerHandle)(nil)
)

// Client implements emulation.Writer.
func (w *writerHandle) Client() types.ClientID { return w.client }

// StartWrite implements emulation.AsyncWriter.
func (w *writerHandle) StartWrite(v types.Value, done func(error)) {
	pw := w.reg.hist.BeginWrite(w.client, v)
	w.reg.startWrite(w.client, v, func(err error) {
		if err == nil {
			pw.End()
		}
		done(err)
	})
}

// Write implements emulation.Writer.
func (w *writerHandle) Write(ctx context.Context, v types.Value) error {
	pw := w.reg.hist.BeginWrite(w.client, v)
	errc := make(chan error, 1)
	w.reg.startWrite(w.client, v, func(err error) { errc <- err })
	select {
	case <-ctx.Done():
		return fmt.Errorf("coded: write: %w", ctx.Err())
	case err := <-errc:
		if err != nil {
			return err
		}
		pw.End()
		return nil
	}
}

// readerHandle is the per-reader handle.
type readerHandle struct {
	reg    *Register
	client types.ClientID
}

// Client implements emulation.Reader.
func (r *readerHandle) Client() types.ClientID { return r.client }

// StartRead implements emulation.AsyncReader.
func (r *readerHandle) StartRead(done func(types.Value, error)) {
	pr := r.reg.hist.BeginRead(r.client)
	r.reg.startRead(r.client, func(v types.Value, err error) {
		if err != nil {
			done(types.InitialValue, err)
			return
		}
		pr.End(v)
		done(v, nil)
	})
}

// Read implements emulation.Reader.
func (r *readerHandle) Read(ctx context.Context) (types.Value, error) {
	pr := r.reg.hist.BeginRead(r.client)
	type result struct {
		v   types.Value
		err error
	}
	resc := make(chan result, 1)
	r.reg.startRead(r.client, func(v types.Value, err error) { resc <- result{v, err} })
	select {
	case <-ctx.Done():
		return types.InitialValue, fmt.Errorf("coded: read: %w", ctx.Err())
	case res := <-resc:
		if res.err != nil {
			return types.InitialValue, res.err
		}
		pr.End(res.v)
		return res.v, nil
	}
}
