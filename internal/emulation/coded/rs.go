package coded

import (
	"errors"
	"fmt"
)

// Coder is a systematic k-of-n Reed–Solomon erasure coder over GF(2^8).
// Encode splits a payload into k data fragments and derives n−k parity
// fragments; Decode reconstructs the payload from any k fragments
// (identified by index). A Coder is immutable and safe for concurrent
// use.
type Coder struct {
	k, n int
	// matrix is the n×k encode matrix: row i dotted with the k data
	// fragments yields fragment i. The top k rows are the identity
	// (systematic), obtained by normalizing a Vandermonde matrix —
	// every k-row submatrix of a Vandermonde matrix over distinct
	// points is invertible, and column operations preserve that.
	matrix [][]byte
}

// ErrShort reports that fewer than k fragments were supplied to Decode.
var ErrShort = errors.New("coded: not enough fragments to reconstruct")

// NewCoder builds a k-of-n coder. Requires 1 ≤ k ≤ n ≤ 255.
func NewCoder(k, n int) (*Coder, error) {
	if k < 1 || n < k || n > 255 {
		return nil, fmt.Errorf("coded: invalid parameters k=%d n=%d (need 1 <= k <= n <= 255)", k, n)
	}
	// Vandermonde rows over the distinct points 0..n-1: row i =
	// [i^0, i^1, ..., i^(k-1)] (with 0^0 = 1).
	vm := make([][]byte, n)
	for i := 0; i < n; i++ {
		vm[i] = make([]byte, k)
		for j := 0; j < k; j++ {
			vm[i][j] = gfPow(byte(i), j)
		}
	}
	// Normalize to systematic form: apply column operations until the
	// top k×k block is the identity. Column ops multiply every row by
	// the same invertible k×k matrix on the right, so the any-k-rows-
	// invertible property survives.
	for c := 0; c < k; c++ {
		if vm[c][c] == 0 {
			swap := -1
			for c2 := c + 1; c2 < k; c2++ {
				if vm[c][c2] != 0 {
					swap = c2
					break
				}
			}
			if swap < 0 {
				return nil, fmt.Errorf("coded: degenerate Vandermonde matrix at k=%d n=%d", k, n)
			}
			for r := 0; r < n; r++ {
				vm[r][c], vm[r][swap] = vm[r][swap], vm[r][c]
			}
		}
		inv := gfInv(vm[c][c])
		for r := 0; r < n; r++ {
			vm[r][c] = gfMul(vm[r][c], inv)
		}
		for c2 := 0; c2 < k; c2++ {
			if c2 == c || vm[c][c2] == 0 {
				continue
			}
			f := vm[c][c2]
			for r := 0; r < n; r++ {
				vm[r][c2] ^= gfMul(vm[r][c], f)
			}
		}
	}
	return &Coder{k: k, n: n, matrix: vm}, nil
}

// K returns the reconstruction threshold.
func (c *Coder) K() int { return c.k }

// N returns the total fragment count.
func (c *Coder) N() int { return c.n }

// FragmentSize returns the per-fragment byte size for a payload of the
// given length: ceil(length/k), never zero so fragments of an empty
// payload still carry their timestamp.
func (c *Coder) FragmentSize(length int) int {
	if length <= 0 {
		return 1
	}
	return (length + c.k - 1) / c.k
}

// Encode stripes data into n fragments of FragmentSize(len(data)) bytes
// each. The first k fragments are the zero-padded data shards
// (systematic); the rest are parity. data is not retained.
func (c *Coder) Encode(data []byte) [][]byte {
	fs := c.FragmentSize(len(data))
	shards := make([][]byte, c.k)
	for j := 0; j < c.k; j++ {
		shard := make([]byte, fs)
		copy(shard, data[min(j*fs, len(data)):min((j+1)*fs, len(data))])
		shards[j] = shard
	}
	frags := make([][]byte, c.n)
	for j := 0; j < c.k; j++ {
		frags[j] = shards[j]
	}
	for i := c.k; i < c.n; i++ {
		row := make([]byte, fs)
		for j := 0; j < c.k; j++ {
			mulRowAdd(row, shards[j], c.matrix[i][j])
		}
		frags[i] = row
	}
	return frags
}

// Decode reconstructs a payload of the given length from any k
// fragments, supplied as a fragment-index → bytes map. Every supplied
// fragment must have FragmentSize(length) bytes; extras beyond k are
// ignored deterministically (lowest indexes win).
func (c *Coder) Decode(length int, frags map[int][]byte) ([]byte, error) {
	fs := c.FragmentSize(length)
	rows := make([]int, 0, c.k)
	for i := 0; i < c.n && len(rows) < c.k; i++ {
		if f, ok := frags[i]; ok {
			if len(f) != fs {
				return nil, fmt.Errorf("coded: fragment %d has %d bytes, want %d", i, len(f), fs)
			}
			rows = append(rows, i)
		}
	}
	if len(rows) < c.k {
		return nil, fmt.Errorf("%w: have %d of %d", ErrShort, len(rows), c.k)
	}
	// Invert the k×k submatrix of the chosen rows by Gauss–Jordan on
	// [sub | I].
	aug := make([][]byte, c.k)
	for r, ri := range rows {
		aug[r] = make([]byte, 2*c.k)
		copy(aug[r], c.matrix[ri])
		aug[r][c.k+r] = 1
	}
	for col := 0; col < c.k; col++ {
		piv := -1
		for r := col; r < c.k; r++ {
			if aug[r][col] != 0 {
				piv = r
				break
			}
		}
		if piv < 0 {
			return nil, fmt.Errorf("coded: singular submatrix for rows %v", rows)
		}
		aug[col], aug[piv] = aug[piv], aug[col]
		inv := gfInv(aug[col][col])
		for j := 0; j < 2*c.k; j++ {
			aug[col][j] = gfMul(aug[col][j], inv)
		}
		for r := 0; r < c.k; r++ {
			if r == col || aug[r][col] == 0 {
				continue
			}
			f := aug[r][col]
			for j := 0; j < 2*c.k; j++ {
				aug[r][j] ^= gfMul(aug[col][j], f)
			}
		}
	}
	// shard j = inverse row j dotted with the supplied fragments.
	out := make([]byte, c.k*fs)
	for j := 0; j < c.k; j++ {
		shard := out[j*fs : (j+1)*fs]
		for r, ri := range rows {
			mulRowAdd(shard, frags[ri], aug[j][c.k+r])
		}
	}
	return out[:length], nil
}
