package coded

import "testing"

func TestGFTables(t *testing.T) {
	// exp/log are inverse bijections on the non-zero elements.
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		if seen[gfExp[i]] {
			t.Fatalf("gfExp not injective at %d", i)
		}
		seen[gfExp[i]] = true
		if gfLog[gfExp[i]] != byte(i) {
			t.Fatalf("gfLog(gfExp(%d)) = %d", i, gfLog[gfExp[i]])
		}
	}
	if seen[0] {
		t.Fatal("gfExp produced 0")
	}
}

func TestGFFieldAxioms(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			ab, ba := gfMul(byte(a), byte(b)), gfMul(byte(b), byte(a))
			if ab != ba {
				t.Fatalf("mul not commutative at %d,%d", a, b)
			}
			if b != 0 {
				if gfMul(gfDiv(byte(a), byte(b)), byte(b)) != byte(a) {
					t.Fatalf("div/mul mismatch at %d,%d", a, b)
				}
			}
		}
		if gfMul(byte(a), 1) != byte(a) || gfMul(byte(a), 0) != 0 {
			t.Fatalf("identity/zero law broken at %d", a)
		}
		if a != 0 && gfMul(byte(a), gfInv(byte(a))) != 1 {
			t.Fatalf("inverse broken at %d", a)
		}
	}
	// Spot-check associativity and distributivity on a generator-spanning
	// sample (full triple loop is 16M iterations; the sample covers every
	// residue class of the log table).
	for a := 1; a < 256; a += 7 {
		for b := 1; b < 256; b += 11 {
			for c := 0; c < 256; c += 13 {
				x, y, z := byte(a), byte(b), byte(c)
				if gfMul(gfMul(x, y), z) != gfMul(x, gfMul(y, z)) {
					t.Fatalf("mul not associative at %d,%d,%d", a, b, c)
				}
				if gfMul(x, y^z) != gfMul(x, y)^gfMul(x, z) {
					t.Fatalf("mul not distributive at %d,%d,%d", a, b, c)
				}
			}
		}
	}
}

func TestGFPow(t *testing.T) {
	for base := 0; base < 256; base++ {
		want := byte(1)
		for e := 0; e < 10; e++ {
			if got := gfPow(byte(base), e); got != want {
				t.Fatalf("gfPow(%d,%d) = %d, want %d", base, e, got, want)
			}
			want = gfMul(want, byte(base))
		}
	}
}

func TestMulRowAdd(t *testing.T) {
	src := []byte{0, 1, 2, 0x53, 0xca, 0xff}
	for c := 0; c < 256; c++ {
		dst := []byte{9, 9, 9, 9, 9, 9}
		mulRowAdd(dst, src, byte(c))
		for i := range src {
			want := byte(9) ^ gfMul(src[i], byte(c))
			if dst[i] != want {
				t.Fatalf("mulRowAdd c=%d idx=%d: got %d want %d", c, i, dst[i], want)
			}
		}
	}
}
