package coded

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/emulation"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
)

// codedEnv builds an n-server benign environment.
func codedEnv(t *testing.T, n int) *fabric.Fabric {
	t.Helper()
	c, err := cluster.New(n)
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(c)
	t.Cleanup(func() { fab.Close() })
	return fab
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestCodedValidation(t *testing.T) {
	fab := codedEnv(t, 5)
	if _, err := New(fab, 2, 0, Options{}); err == nil {
		t.Error("f=0 accepted")
	}
	if _, err := New(fab, 0, 1, Options{}); err == nil {
		t.Error("k=0 writers accepted")
	}
	if _, err := New(fab, 2, 1, Options{DataShards: 4}); err == nil {
		t.Error("data shards above n−2f accepted (a reader could miss the stripe)")
	}
	small := codedEnv(t, 3)
	if _, err := New(small, 2, 2, Options{}); err == nil {
		t.Error("n < 2f+1 accepted")
	}
}

func TestCodedDefaultsToMaxSafeShards(t *testing.T) {
	reg, err := New(codedEnv(t, 5), 2, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.DataShards(); got != 3 {
		t.Fatalf("DataShards = %d, want n−2f = 3", got)
	}
	reg2, err := New(codedEnv(t, 5), 2, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg2.DataShards(); got != 1 {
		t.Fatalf("DataShards at f=2 = %d, want 1 (degenerate replication)", got)
	}
}

func TestCodedSequentialReadYourWrites(t *testing.T) {
	ctx := testCtx(t)
	fab := codedEnv(t, 5)
	reg, err := New(fab, 2, 1, Options{ValueSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	rd := reg.NewReader()
	if v, err := rd.Read(ctx); err != nil || v != types.InitialValue {
		t.Fatalf("initial read = %d, %v; want v0", v, err)
	}
	for i := 1; i <= 8; i++ {
		w, err := reg.Writer(i % 2)
		if err != nil {
			t.Fatal(err)
		}
		val := types.Value(i * 100)
		if err := w.Write(ctx, val); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if v, err := rd.Read(ctx); err != nil || v != val {
			t.Fatalf("read after write %d = %d, %v; want %d", i, v, err, val)
		}
	}
	ops := reg.History().Snapshot()
	if err := spec.CheckWSSafety(ops, 0); err != nil {
		t.Errorf("WS-Safety: %v", err)
	}
	if err := spec.CheckWSRegularity(ops, 0); err != nil {
		t.Errorf("WS-Regularity: %v", err)
	}
}

// TestCodedCrashTolerance crashes f servers mid-history; writes and reads
// must keep completing on the surviving n−f quorum.
func TestCodedCrashTolerance(t *testing.T) {
	ctx := testCtx(t)
	fab := codedEnv(t, 5)
	reg, err := New(fab, 1, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := reg.Writer(0)
	rd := reg.NewReader()
	if err := w.Write(ctx, 7); err != nil {
		t.Fatal(err)
	}
	if err := fab.Cluster().Crash(4); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(ctx, 8); err != nil {
		t.Fatalf("write with one crashed server: %v", err)
	}
	if v, err := rd.Read(ctx); err != nil || v != 8 {
		t.Fatalf("read with one crashed server = %d, %v; want 8", v, err)
	}
}

// TestCodedConcurrent exercises concurrent writers and readers (run under
// -race via the coded CI target); every read must return v0 or a written
// value — the payload verification would catch any mixed-stripe decode.
func TestCodedConcurrent(t *testing.T) {
	for _, atomic := range []bool{false, true} {
		name := "regular"
		if atomic {
			name = "atomic"
		}
		t.Run(name, func(t *testing.T) {
			ctx := testCtx(t)
			fab := codedEnv(t, 5)
			reg, err := New(fab, 3, 1, Options{Atomic: atomic, ValueSize: 128})
			if err != nil {
				t.Fatal(err)
			}
			const perWriter, readers, perReader = 6, 3, 6
			var wg sync.WaitGroup
			errs := make(chan error, 3+readers)
			for i := 0; i < 3; i++ {
				w, err := reg.Writer(i)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(i int, w emulation.Writer) {
					defer wg.Done()
					for op := 0; op < perWriter; op++ {
						if err := w.Write(ctx, types.Value(1+i*perWriter+op)); err != nil {
							errs <- fmt.Errorf("writer %d: %w", i, err)
							return
						}
					}
				}(i, w)
			}
			for r := 0; r < readers; r++ {
				rd := reg.NewReader()
				wg.Add(1)
				go func(rd emulation.Reader) {
					defer wg.Done()
					for op := 0; op < perReader; op++ {
						if _, err := rd.Read(ctx); err != nil {
							errs <- fmt.Errorf("reader: %w", err)
							return
						}
					}
				}(rd)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			ops := reg.History().Snapshot()
			if err := spec.CheckReadValidity(ops, types.InitialValue); err != nil {
				t.Errorf("read validity: %v", err)
			}
			if atomic && len(ops) <= 64 {
				if err := spec.CheckLinearizable(ops, types.InitialValue); err != nil {
					t.Errorf("linearizability: %v", err)
				}
			}
		})
	}
}

// TestCodedBytesPerServer pins the space win the construction exists for:
// at n=5, f=1 each server stores a ceil(size/3) fragment, strictly less
// than the full-copy replicated baseline.
func TestCodedBytesPerServer(t *testing.T) {
	ctx := testCtx(t)
	const size = 4096
	fab := codedEnv(t, 5)
	reg, err := New(fab, 1, 1, Options{ValueSize: size})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := reg.Writer(0)
	if err := w.Write(ctx, 42); err != nil {
		t.Fatal(err)
	}
	frag := reg.p.Load().coder.FragmentSize(size)
	for s, b := range fab.Cluster().PerServerBytes() {
		if b == 0 {
			continue // a server the put quorum skipped may hold nothing yet
		}
		if b != int64(frag) {
			t.Errorf("server %d stores %d bytes, want fragment size %d", s, b, frag)
		}
		if b >= size {
			t.Errorf("server %d stores %d bytes, not less than the %d-byte value", s, b, size)
		}
	}
	if total := fab.Cluster().TotalBytes(); total > int64(5*frag) {
		t.Errorf("total %d bytes exceeds n fragments = %d", total, 5*frag)
	}
}

// TestCodedDegenerateReplication pins the f=2 end of the space axis: with
// n=5, f=2 the only safe shard count is 1, and every server stores the full
// value — the coded construction collapses onto replication exactly where
// the paper's lower bound says it must.
func TestCodedDegenerateReplication(t *testing.T) {
	ctx := testCtx(t)
	const size = 1024
	fab := codedEnv(t, 5)
	reg, err := New(fab, 1, 2, Options{ValueSize: size})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := reg.Writer(0)
	if err := w.Write(ctx, 9); err != nil {
		t.Fatal(err)
	}
	for s, b := range fab.Cluster().PerServerBytes() {
		if b != 0 && b != size {
			t.Errorf("server %d stores %d bytes, want the full %d-byte copy", s, b, size)
		}
	}
	rd := reg.NewReader()
	if v, err := rd.Read(ctx); err != nil || v != 9 {
		t.Fatalf("read = %d, %v; want 9", v, err)
	}
}

// TestCodedResizeRestripe grows a defaulted-shard register n=5→7 at f=1:
// the reshape reconstructs the newest stripe from the quiesced old stores,
// re-encodes it at the new ceiling kData = n−2f = 5, and seeds fresh
// fragment stores on every member. The value must survive, the shard count
// must widen, and new writes must stripe at the new geometry.
func TestCodedResizeRestripe(t *testing.T) {
	ctx := testCtx(t)
	fab := codedEnv(t, 5)
	reg, err := New(fab, 1, 1, Options{ValueSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := reg.Writer(0)
	rd := reg.NewReader()
	if err := w.Write(ctx, 51); err != nil {
		t.Fatal(err)
	}
	if got := reg.DataShards(); got != 3 {
		t.Fatalf("DataShards before resize = %d, want 3", got)
	}
	res, err := fab.Resize(ctx, fabric.ResizeSpec{Join: []fabric.LaneMaker{nil, nil}},
		func(rs *fabric.Reshaper) error { return reg.Reshape(rs) })
	if err != nil {
		t.Fatalf("resize: %v", err)
	}
	if len(res.Joined) != 2 {
		t.Fatalf("joined %v, want 2 servers", res.Joined)
	}
	if got := reg.DataShards(); got != 5 {
		t.Fatalf("DataShards after grow = %d, want n−2f = 5", got)
	}
	if v, err := rd.Read(ctx); err != nil || v != 51 {
		t.Fatalf("read after restripe = %d, %v; want 51", v, err)
	}
	if err := w.Write(ctx, 52); err != nil {
		t.Fatalf("write at the new geometry: %v", err)
	}
	if v, err := rd.Read(ctx); err != nil || v != 52 {
		t.Fatalf("read after post-resize write = %d, %v; want 52", v, err)
	}
	if err := spec.CheckWSRegularity(reg.History().Snapshot(), 0); err != nil {
		t.Errorf("WS-Regularity after restripe: %v", err)
	}
}

// TestCodedResizeRejected pins the typed rejection: a register built with
// an explicit DataShards count cannot restripe, so a resize whose new
// ceiling n−2f falls below the pin aborts with ErrKDataChanged reachable
// through the abort wrapper — and the old view keeps serving.
func TestCodedResizeRejected(t *testing.T) {
	ctx := testCtx(t)
	fab := codedEnv(t, 5)
	reg, err := New(fab, 1, 1, Options{DataShards: 3, ValueSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := reg.Writer(0)
	if err := w.Write(ctx, 61); err != nil {
		t.Fatal(err)
	}
	epoch := fab.Cluster().Epoch()
	// f 1→2 keeps n=5 but drops the ceiling to n−2f = 1 < pinned 3.
	_, err = fab.Resize(ctx, fabric.ResizeSpec{F: 2},
		func(rs *fabric.Reshaper) error { return reg.Reshape(rs) })
	if !fabric.IsResizeAborted(err) {
		t.Fatalf("pinned-shards resize returned %v, want ErrResizeAborted", err)
	}
	if !errors.Is(err, ErrKDataChanged) {
		t.Fatalf("abort cause = %v, want ErrKDataChanged reachable", err)
	}
	view := fab.Cluster().View()
	if view.F != 1 || view.N() != 5 {
		t.Fatalf("view after rejected resize: n=%d f=%d, want n=5 f=1", view.N(), view.F)
	}
	if got := reg.DataShards(); got != 3 {
		t.Fatalf("DataShards after rejected resize = %d, want the pinned 3", got)
	}
	if fab.Cluster().Epoch() == epoch {
		t.Log("epoch unchanged after abort (no joiners to admit)")
	}
	if v, err := reg.NewReader().Read(ctx); err != nil || v != 61 {
		t.Fatalf("read after rejected resize = %d, %v; want 61", v, err)
	}
	if err := w.Write(ctx, 62); err != nil {
		t.Fatalf("write after rejected resize: %v", err)
	}
}

// TestCodedReplaceTransfersFragments reconfigures a coded register live:
// fabric.Replace moves a fragment store (with its fragments) onto a
// joiner, and reads keep returning the last written value.
func TestCodedReplaceTransfersFragments(t *testing.T) {
	ctx := testCtx(t)
	fab := codedEnv(t, 5)
	reg, err := New(fab, 1, 1, Options{ValueSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := reg.Writer(0)
	rd := reg.NewReader()
	if err := w.Write(ctx, 31); err != nil {
		t.Fatal(err)
	}
	for victim := types.ServerID(0); victim < 2; victim++ {
		if _, err := fab.Replace(ctx, victim, nil); err != nil {
			t.Fatalf("replace %d: %v", victim, err)
		}
		if v, err := rd.Read(ctx); err != nil || v != 31 {
			t.Fatalf("read after replacing %d = %d, %v; want 31", victim, v, err)
		}
	}
	if err := w.Write(ctx, 32); err != nil {
		t.Fatalf("write after churn: %v", err)
	}
	if v, err := rd.Read(ctx); err != nil || v != 32 {
		t.Fatalf("read after churn = %d, %v; want 32", v, err)
	}
	ops := reg.History().Snapshot()
	if err := spec.CheckWSRegularity(ops, 0); err != nil {
		t.Errorf("WS-Regularity after churn: %v", err)
	}
}
