package coded

import (
	"bytes"
	"math/rand"
	"testing"
)

// payloadFor builds a deterministic pseudo-random payload.
func payloadFor(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestCoderValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 3}, {-1, 2}, {4, 3}, {1, 0}, {2, 256}} {
		if _, err := NewCoder(bad[0], bad[1]); err == nil {
			t.Fatalf("NewCoder(%d,%d) accepted", bad[0], bad[1])
		}
	}
}

func TestCoderSystematic(t *testing.T) {
	c, err := NewCoder(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	data := payloadFor(1, 300)
	frags := c.Encode(data)
	fs := c.FragmentSize(len(data))
	for j := 0; j < 3; j++ {
		want := make([]byte, fs)
		copy(want, data[j*fs:min(len(data), (j+1)*fs)])
		if !bytes.Equal(frags[j], want) {
			t.Fatalf("fragment %d is not the systematic data shard", j)
		}
	}
}

// TestCoderAllSubsets exercises every (n choose k) recovery subset for a
// grid of small (k, n) pairs and several payload lengths, including the
// padding-heavy cases where len(data) is not a multiple of k.
func TestCoderAllSubsets(t *testing.T) {
	grid := [][2]int{{1, 1}, {1, 3}, {2, 2}, {2, 3}, {2, 4}, {3, 4}, {3, 5}, {1, 5}, {4, 6}, {2, 6}}
	lengths := []int{0, 1, 7, 64, 65, 255}
	for _, kn := range grid {
		k, n := kn[0], kn[1]
		c, err := NewCoder(k, n)
		if err != nil {
			t.Fatalf("NewCoder(%d,%d): %v", k, n, err)
		}
		for _, ln := range lengths {
			data := payloadFor(int64(k*1000+n*10+ln), ln)
			frags := c.Encode(data)
			if len(frags) != n {
				t.Fatalf("k=%d n=%d: %d fragments", k, n, len(frags))
			}
			forEachSubset(n, k, func(subset []int) {
				pick := make(map[int][]byte, k)
				for _, i := range subset {
					pick[i] = frags[i]
				}
				got, err := c.Decode(ln, pick)
				if err != nil {
					t.Fatalf("k=%d n=%d len=%d subset=%v: %v", k, n, ln, subset, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("k=%d n=%d len=%d subset=%v: reconstruction mismatch", k, n, ln, subset)
				}
			})
		}
	}
}

// forEachSubset enumerates every k-element subset of {0..n-1}.
func forEachSubset(n, k int, fn func([]int)) {
	idx := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			fn(idx)
			return
		}
		for i := start; i <= n-(k-depth); i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

func TestCoderShortAndMalformed(t *testing.T) {
	c, _ := NewCoder(3, 5)
	data := payloadFor(2, 100)
	frags := c.Encode(data)
	if _, err := c.Decode(len(data), map[int][]byte{0: frags[0], 4: frags[4]}); err == nil {
		t.Fatal("decode with k-1 fragments succeeded")
	}
	bad := map[int][]byte{0: frags[0], 1: frags[1], 2: frags[2][:10]}
	if _, err := c.Decode(len(data), bad); err == nil {
		t.Fatal("decode with short fragment succeeded")
	}
}

// TestCoderCrossCheck is a deterministic fuzz: random (k, n, length,
// subset) tuples, decode-of-encode must be the identity.
func TestCoderCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(9)
		k := 1 + rng.Intn(n)
		ln := rng.Intn(2048)
		c, err := NewCoder(k, n)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, ln)
		rng.Read(data)
		frags := c.Encode(data)
		perm := rng.Perm(n)
		pick := make(map[int][]byte, k)
		for _, i := range perm[:k] {
			pick[i] = frags[i]
		}
		got, err := c.Decode(ln, pick)
		if err != nil {
			t.Fatalf("trial %d (k=%d n=%d len=%d): %v", trial, k, n, ln, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d (k=%d n=%d len=%d): mismatch", trial, k, n, ln)
		}
	}
}

// FuzzDecodeEncode cross-checks decode(encode(data)) == data under the
// native fuzzer, varying the recovery subset with the seed byte.
func FuzzDecodeEncode(f *testing.F) {
	f.Add([]byte("hello coded register"), uint8(0))
	f.Add([]byte{}, uint8(7))
	f.Add(payloadFor(9, 300), uint8(255))
	f.Fuzz(func(t *testing.T, data []byte, pickSeed uint8) {
		const k, n = 3, 5
		c, err := NewCoder(k, n)
		if err != nil {
			t.Fatal(err)
		}
		frags := c.Encode(data)
		rng := rand.New(rand.NewSource(int64(pickSeed)))
		pick := make(map[int][]byte, k)
		for _, i := range rng.Perm(n)[:k] {
			pick[i] = frags[i]
		}
		got, err := c.Decode(len(data), pick)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("decode(encode(data)) != data")
		}
	})
}

func BenchmarkEncode64K(b *testing.B) {
	c, _ := NewCoder(3, 5)
	data := payloadFor(3, 64<<10)
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encode(data)
	}
}

func BenchmarkDecode64K(b *testing.B) {
	c, _ := NewCoder(3, 5)
	data := payloadFor(4, 64<<10)
	frags := c.Encode(data)
	pick := map[int][]byte{1: frags[1], 3: frags[3], 4: frags[4]}
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(len(data), pick); err != nil {
			b.Fatal(err)
		}
	}
}
