// Package coded implements k-of-n erasure-coded register storage: a
// systematic Reed–Solomon coder over GF(2^8) and a register construction
// that stripes each written value into n timestamped fragments (one per
// server), any k of which reconstruct the payload. The coded register
// reuses the rounds engine for fragment scatter/gather and the fragment
// store base object (baseobj.FragStore) for per-server storage, so it
// rides every lane backend, the chaos gate, and view-based
// reconfiguration unchanged.
//
// The space story follows Spiegelman–Cassuto–Chockler: a read quorum of
// n−f servers intersects a completed write's n−f acked set in at least
// n−2f servers, so reconstruction from any read quorum requires
// k ≤ n−2f. At n=5, f=1 coding stores |v|/3 bytes per server (beating
// 2f+1 whole replicas); at f=2 the bound forces k=1 — whole-value
// replication — which is exactly the coded lower bound's message.
package coded

// GF(2^8) arithmetic with the AES-independent primitive polynomial
// x^8+x^4+x^3+x^2+1 (0x11d), the conventional choice for storage codes.
// Multiplication and inversion go through log/exp tables built once at
// package init; the generator is 2.

const gfPoly = 0x11d

var (
	gfExp [510]byte // gfExp[i] = 2^i, doubled so mul can skip a mod 255
	gfLog [256]byte // gfLog[x] for x != 0
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 510; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b; b must be non-zero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("coded: GF(2^8) division by zero")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse of a non-zero element.
func gfInv(a byte) byte { return gfDiv(1, a) }

// gfPow returns base^exp.
func gfPow(base byte, exp int) byte {
	if exp == 0 {
		return 1
	}
	if base == 0 {
		return 0
	}
	return gfExp[(int(gfLog[base])*exp)%255]
}

// mulRowAdd accumulates dst ^= c * src over a whole row. This is the
// encode/decode hot loop; fragments are a few tens of KiB so the simple
// table walk is fine without SIMD.
func mulRowAdd(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i := range src {
			dst[i] ^= src[i]
		}
		return
	}
	lc := int(gfLog[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[lc+int(gfLog[s])]
		}
	}
}
