package aacmax

import (
	"context"
	"testing"
	"time"

	"repro/internal/bounds"
	"repro/internal/cluster"
	"repro/internal/emulation/quorumreg"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
)

func newReg(t *testing.T, k, f int, hist *spec.History) (*quorumreg.Register, *fabric.Fabric) {
	t.Helper()
	c, err := cluster.New(2*f + 1)
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(c)
	reg, err := New(fab, k, f, Options{History: hist})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return reg, fab
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestResourcesMatchSpecialCase(t *testing.T) {
	for _, tc := range []struct{ k, f int }{{1, 1}, {3, 1}, {2, 2}, {4, 2}} {
		reg, fab := newReg(t, tc.k, tc.f, nil)
		want, err := bounds.SpecialCaseRegisters(tc.k, tc.f)
		if err != nil {
			t.Fatal(err)
		}
		if reg.ResourceComplexity() != want {
			t.Errorf("k=%d f=%d: resources = %d, want (2f+1)k = %d", tc.k, tc.f, reg.ResourceComplexity(), want)
		}
		// Theorem 2 / Theorem 6 shape: k registers per server.
		for s, c := range fab.Cluster().PerServerCounts() {
			if c != tc.k {
				t.Errorf("k=%d f=%d: server %d hosts %d, want k", tc.k, tc.f, s, c)
			}
		}
	}
}

func TestWriteReadAcrossWriters(t *testing.T) {
	reg, _ := newReg(t, 3, 1, nil)
	ctx := testCtx(t)
	for i := 0; i < 3; i++ {
		w, err := reg.Writer(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(ctx, types.Value(100+i)); err != nil {
			t.Fatal(err)
		}
		got, err := reg.NewReader().Read(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got != types.Value(100+i) {
			t.Fatalf("Read = %d, want %d", got, 100+i)
		}
	}
}

func TestPerWriterRegistersAreSingleWriter(t *testing.T) {
	_, fab := newReg(t, 2, 1, nil)
	c := fab.Cluster()
	// Every placed register must be restricted to exactly one writer:
	// writing it as another client is rejected by the base layer.
	for _, obj := range c.AllObjects() {
		o, err := c.Object(obj)
		if err != nil {
			t.Fatal(err)
		}
		reg, ok := o.(interface{ WriterBound() int })
		if !ok {
			t.Fatalf("object %d is not a register", obj)
		}
		if reg.WriterBound() != 1 {
			t.Errorf("object %d writer bound = %d, want 1", obj, reg.WriterBound())
		}
	}
}

func TestForeignWriterRejected(t *testing.T) {
	reg, _ := newReg(t, 2, 1, nil)
	if _, err := reg.Writer(2); err == nil {
		t.Fatal("writer index k accepted")
	}
}

func TestSurvivesFCrashes(t *testing.T) {
	reg, fab := newReg(t, 2, 2, nil)
	ctx := testCtx(t)
	w0, err := reg.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w0.Write(ctx, 10); err != nil {
		t.Fatal(err)
	}
	for _, s := range []types.ServerID{0, 2} {
		if err := fab.Crash(s); err != nil {
			t.Fatal(err)
		}
	}
	w1, err := reg.Writer(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w1.Write(ctx, 20); err != nil {
		t.Fatalf("write after f crashes: %v", err)
	}
	got, err := reg.NewReader().Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Fatalf("Read = %d, want 20", got)
	}
}

func TestSequentialHistoryIsRegular(t *testing.T) {
	hist := &spec.History{}
	reg, _ := newReg(t, 3, 1, hist)
	ctx := testCtx(t)
	for round := 0; round < 3; round++ {
		for i := 0; i < 3; i++ {
			w, err := reg.Writer(i)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Write(ctx, types.Value(round*100+i+1)); err != nil {
				t.Fatal(err)
			}
			if _, err := reg.NewReader().Read(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	ops := hist.Snapshot()
	if err := spec.CheckWSSafety(ops, types.InitialValue); err != nil {
		t.Errorf("WS-Safety: %v", err)
	}
	if err := spec.CheckWSRegularity(ops, types.InitialValue); err != nil {
		t.Errorf("WS-Regularity: %v", err)
	}
}

func TestValidation(t *testing.T) {
	c, err := cluster.New(3)
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(c)
	if _, err := New(fab, 0, 1, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(fab, 1, 0, Options{}); err == nil {
		t.Error("f=0 accepted")
	}
	if _, err := New(fab, 1, 1, Options{Servers: []types.ServerID{0}}); err == nil {
		t.Error("too few pinned servers accepted")
	}
}
