// Package aacmax implements the paper's n = 2f+1 special-case construction
// (Section 3.3 remark, Theorem 2 tightness): every server hosts a k-writer
// max-register built from k single-writer base registers in the style of
// Aspnes, Attiya, and Censor [4], and the ABD quorum engine runs on top.
//
// The space cost is (2f+1)·k base registers, which matches the register
// lower bound kf + k(f+1) = (2f+1)k exactly at n = 2f+1, while supporting
// stronger (fully regular, not just write-sequential) semantics: register i
// of a server is written only by writer i, whose timestamps are monotone,
// so no covering write can ever erase another writer's value.
//
// read-max collects all k registers of the server; because they live on the
// same server they crash together, so the collect either completes in full
// or stalls like any faulty base object.
package aacmax

import (
	"fmt"
	"sync"

	"repro/internal/baseobj"
	"repro/internal/emulation/abdcore"
	"repro/internal/emulation/quorumreg"
	"repro/internal/emulation/rounds"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
)

// store is one per-server k-writer max-register made of k base registers.
type store struct {
	fab    *fabric.Fabric
	server types.ServerID
	regs   []types.ObjectID // regs[i] is writable only by writer i
	scan   []rounds.Target  // read targets for all k registers, precomputed

	mu   sync.Mutex
	last map[types.ClientID]types.TSValue // client-side write-max floor
}

// Compile-time interface compliance check.
var _ abdcore.MaxStore = (*store)(nil)

// Server implements abdcore.MaxStore.
func (s *store) Server() types.ServerID { return s.server }

// StartWriteMax implements abdcore.MaxStore: writer i writes its own base
// register, skipping values no larger than what it already wrote there
// (which makes the cell monotone, i.e. a genuine single-writer max).
func (s *store) StartWriteMax(client types.ClientID, v types.TSValue, report func(types.TSValue, error)) {
	if int(client) < 0 || int(client) >= len(s.regs) {
		report(types.ZeroTSValue, fmt.Errorf("aacmax: client %d is not a writer (k=%d)", client, len(s.regs)))
		return
	}
	s.mu.Lock()
	prev := s.last[client]
	s.mu.Unlock()
	if !prev.Less(v) {
		report(prev, nil)
		return
	}
	call := s.fab.Trigger(client, s.regs[client], baseobj.Invocation{Op: baseobj.OpWrite, Arg: v})
	call.OnComplete(func(o fabric.Outcome) {
		if o.Err == nil {
			// The floor advances only once the write took effect: advancing
			// it at trigger time would make a retried round (after a
			// view-change completion, which guarantees the write never
			// applied) skip the register and report success for a lost write.
			s.mu.Lock()
			if s.last[client].Less(v) {
				s.last[client] = v
			}
			s.mu.Unlock()
		}
		report(o.Resp.Val, o.Err)
	})
}

// StartReadMax implements abdcore.MaxStore: scatter a read over all k
// registers of the server in one batch and report their maximum once all
// have responded. The registers live on the same server, so they crash
// together: the fold either completes in full or stalls like any faulty
// base object.
func (s *store) StartReadMax(client types.ClientID, report func(types.TSValue, error)) {
	rounds.ScatterFold(s.fab, client, s.scan, len(s.scan), report)
}

// storeReshaper re-places per-server k-register stores across a view
// resize. The folded maximum is seeded into its own writer's register —
// carrying the writer's identity, since the base registers are
// single-writer — and the store's client-side floor advances with it so a
// later write-max by that writer still skips stale values.
type storeReshaper struct {
	fab *fabric.Fabric
	k   int
}

var _ quorumreg.StoreReshaper = (*storeReshaper)(nil)

func (sr *storeReshaper) StoreObjects(s abdcore.MaxStore) []types.ObjectID {
	return s.(*store).regs
}

func (sr *storeReshaper) NewStore(rs *fabric.Reshaper, server types.ServerID, m types.TSValue) (abdcore.MaxStore, int, error) {
	c := sr.fab.Cluster()
	st := &store{
		fab:    sr.fab,
		server: server,
		regs:   make([]types.ObjectID, 0, sr.k),
		last:   make(map[types.ClientID]types.TSValue, sr.k),
	}
	for w := 0; w < sr.k; w++ {
		obj, err := c.PlaceRegister(server, baseobj.WithWriters([]types.ClientID{types.ClientID(w)}))
		if err != nil {
			return nil, 0, err
		}
		st.regs = append(st.regs, obj)
		st.scan = append(st.scan, rounds.Target{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpRead}})
	}
	if err := sr.ReseedStore(rs, st, m); err != nil {
		return nil, 0, err
	}
	return st, sr.k, nil
}

func (sr *storeReshaper) ReseedStore(rs *fabric.Reshaper, s abdcore.MaxStore, m types.TSValue) error {
	if !types.ZeroTSValue.Less(m) {
		return nil
	}
	st := s.(*store)
	if int(m.Writer) < 0 || int(m.Writer) >= len(st.regs) {
		return fmt.Errorf("aacmax: folded maximum written by client %d, not a writer (k=%d)", m.Writer, len(st.regs))
	}
	if _, err := rs.ApplyAs(m.Writer, st.regs[m.Writer], baseobj.Invocation{Op: baseobj.OpWrite, Arg: m}); err != nil {
		return err
	}
	st.mu.Lock()
	if st.last[m.Writer].Less(m) {
		st.last[m.Writer] = m
	}
	st.mu.Unlock()
	return nil
}

// Options configure the construction.
type Options struct {
	// History receives the high-level operations (optional).
	History *spec.History
	// Servers optionally pins the 2f+1 hosting servers.
	Servers []types.ServerID
}

// New places k single-writer registers on each of 2f+1 servers ((2f+1)k
// base registers in total) and returns the emulated k-register. Reads never
// write, so only the regular (non-write-back) protocol is offered: the
// k-register per-server max has no cell a reader could write.
func New(fab *fabric.Fabric, k, f int, opts Options) (*quorumreg.Register, error) {
	if f <= 0 {
		return nil, fmt.Errorf("aacmax: f must be positive, got %d", f)
	}
	if k <= 0 {
		return nil, fmt.Errorf("aacmax: k must be positive, got %d", k)
	}
	servers := opts.Servers
	if servers == nil {
		for s := 0; s < 2*f+1; s++ {
			servers = append(servers, types.ServerID(s))
		}
	}
	if len(servers) != 2*f+1 {
		return nil, fmt.Errorf("aacmax: need exactly 2f+1=%d servers, got %d", 2*f+1, len(servers))
	}
	c := fab.Cluster()
	stores := make([]abdcore.MaxStore, 0, len(servers))
	total := 0
	for _, server := range servers {
		st := &store{
			fab:    fab,
			server: server,
			regs:   make([]types.ObjectID, 0, k),
			last:   make(map[types.ClientID]types.TSValue, k),
		}
		for w := 0; w < k; w++ {
			obj, err := c.PlaceRegister(server, baseobj.WithWriters([]types.ClientID{types.ClientID(w)}))
			if err != nil {
				return nil, fmt.Errorf("aacmax: placing register: %w", err)
			}
			st.regs = append(st.regs, obj)
			st.scan = append(st.scan, rounds.Target{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpRead}})
			total++
		}
		stores = append(stores, st)
	}
	return quorumreg.New(quorumreg.Config{
		Name:      "aac-max",
		K:         k,
		F:         f,
		Stores:    stores,
		Fabric:    fab,
		Resources: total,
		History:   opts.History,
		Reshaper:  &storeReshaper{fab: fab, k: k},
	})
}
