package emulation

import (
	"sync"
	"testing"

	"repro/internal/types"
)

func TestValidateWriters(t *testing.T) {
	for _, k := range []int{1, 2, int(ReaderIDBase) - 1} {
		if err := ValidateWriters(k); err != nil {
			t.Errorf("ValidateWriters(%d) = %v, want nil", k, err)
		}
	}
	for _, k := range []int{0, -3, int(ReaderIDBase), int(ReaderIDBase) + 5} {
		if err := ValidateWriters(k); err == nil {
			t.Errorf("ValidateWriters(%d) = nil, want error", k)
		}
	}
}

// TestReaderIDsConcurrent allocates reader IDs from many goroutines and
// demands uniqueness above ReaderIDBase — the async engine creates readers
// from its event loop while other goroutines hold handles too.
func TestReaderIDsConcurrent(t *testing.T) {
	var alloc ReaderIDs
	const goroutines, per = 8, 200
	ids := make(chan types.ClientID, goroutines*per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ids <- alloc.Next()
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[types.ClientID]bool)
	for id := range ids {
		if id < ReaderIDBase {
			t.Fatalf("reader ID %d below ReaderIDBase", id)
		}
		if seen[id] {
			t.Fatalf("duplicate reader ID %d", id)
		}
		seen[id] = true
	}
}
