package quorumreg

import (
	"context"
	"sync"
	"testing"

	"repro/internal/emulation"
	"repro/internal/emulation/abdcore"
	"repro/internal/spec"
	"repro/internal/types"
)

// memStore is a minimal in-memory max-store.
type memStore struct {
	server types.ServerID

	mu  sync.Mutex
	val types.TSValue
}

var _ abdcore.MaxStore = (*memStore)(nil)

func (s *memStore) Server() types.ServerID { return s.server }

func (s *memStore) StartWriteMax(_ types.ClientID, v types.TSValue, report func(types.TSValue, error)) {
	s.mu.Lock()
	s.val = types.MaxTSValue(s.val, v)
	got := s.val
	s.mu.Unlock()
	report(got, nil)
}

func (s *memStore) StartReadMax(_ types.ClientID, report func(types.TSValue, error)) {
	s.mu.Lock()
	got := s.val
	s.mu.Unlock()
	report(got, nil)
}

func newTestRegister(t *testing.T, k, f int, hist *spec.History) *Register {
	t.Helper()
	stores := make([]abdcore.MaxStore, 2*f+1)
	for i := range stores {
		stores[i] = &memStore{server: types.ServerID(i)}
	}
	r, err := New(Config{
		Name:      "test-reg",
		K:         k,
		F:         f,
		Stores:    stores,
		Resources: len(stores),
		History:   hist,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestMetadata(t *testing.T) {
	r := newTestRegister(t, 3, 1, nil)
	if r.Name() != "test-reg" || r.K() != 3 || r.F() != 1 || r.ResourceComplexity() != 3 {
		t.Fatalf("metadata = %s/%d/%d/%d", r.Name(), r.K(), r.F(), r.ResourceComplexity())
	}
	if r.History() == nil {
		t.Fatal("nil history not replaced")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{K: 0, F: 1}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(Config{K: 1, F: 1, Stores: nil}); err == nil {
		t.Error("no stores accepted")
	}
}

func TestWriterRange(t *testing.T) {
	r := newTestRegister(t, 2, 1, nil)
	for _, i := range []int{-1, 2, 99} {
		if _, err := r.Writer(i); err == nil {
			t.Errorf("Writer(%d) accepted", i)
		}
	}
	w, err := r.Writer(1)
	if err != nil {
		t.Fatalf("Writer(1): %v", err)
	}
	if w.Client() != 1 {
		t.Errorf("Client = %d, want 1", w.Client())
	}
}

func TestReaderIDsFreshAndDisjoint(t *testing.T) {
	r := newTestRegister(t, 2, 1, nil)
	r1, r2 := r.NewReader(), r.NewReader()
	if r1.Client() == r2.Client() {
		t.Error("two readers share a client ID")
	}
	if r1.Client() < emulation.ReaderIDBase || r2.Client() < emulation.ReaderIDBase {
		t.Error("reader IDs collide with writer space")
	}
}

func TestHistoryRecording(t *testing.T) {
	hist := &spec.History{}
	r := newTestRegister(t, 2, 1, hist)
	ctx := context.Background()
	w, err := r.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(ctx, 11); err != nil {
		t.Fatal(err)
	}
	v, err := r.NewReader().Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v != 11 {
		t.Fatalf("Read = %d, want 11", v)
	}
	ops := hist.Snapshot()
	if len(ops) != 2 {
		t.Fatalf("recorded %d ops, want 2", len(ops))
	}
	if ops[0].Kind != spec.KindWrite || !ops[0].Complete || ops[0].Arg != 11 {
		t.Errorf("write op = %+v", ops[0])
	}
	if ops[1].Kind != spec.KindRead || !ops[1].Complete || ops[1].Out != 11 {
		t.Errorf("read op = %+v", ops[1])
	}
	if err := spec.CheckWSSafety(ops, types.InitialValue); err != nil {
		t.Errorf("WS-Safety: %v", err)
	}
}

func TestFailedOpsStayPendingInHistory(t *testing.T) {
	hist := &spec.History{}
	r := newTestRegister(t, 1, 1, hist)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // everything fails immediately
	w, err := r.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(ctx, 5); err == nil {
		t.Fatal("write with cancelled ctx succeeded")
	}
	if _, err := r.NewReader().Read(ctx); err == nil {
		t.Fatal("read with cancelled ctx succeeded")
	}
	ops := hist.Snapshot()
	if len(ops) != 2 {
		t.Fatalf("recorded %d ops, want 2", len(ops))
	}
	for _, op := range ops {
		if op.Complete {
			t.Errorf("failed op recorded as complete: %+v", op)
		}
	}
}
