// Package quorumreg adapts an abdcore.Engine into the emulation.Register
// interface: it owns the per-client handles, records every high-level
// operation into a spec.History, and reports the construction's resource
// complexity. The abdmax, casmax, aacmax, and naiveabd constructions are
// thin store layers underneath this adapter.
package quorumreg

import (
	"context"
	"fmt"

	"repro/internal/emulation"
	"repro/internal/emulation/abdcore"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
)

// Config assembles a quorum-backed register.
type Config struct {
	// Name identifies the construction.
	Name string
	// K is the number of writers; F the failure threshold.
	K, F int
	// Stores are the per-server max-stores, at least 2f+1 of them.
	Stores []abdcore.MaxStore
	// Fabric is the fabric the stores trigger on; when set, the engine
	// batch-scatters whole quorum rounds for direct (single-op) stores.
	Fabric *fabric.Fabric
	// Resources is the number of base objects the construction placed.
	Resources int
	// History receives the high-level operations; a fresh history is
	// created when nil.
	History *spec.History
	// EngineOpts configure the underlying quorum engine.
	EngineOpts []abdcore.Option
}

// Register implements emulation.Register over an abdcore.Engine.
type Register struct {
	name      string
	k, f      int
	resources int
	engine    *abdcore.Engine
	hist      *spec.History
	readers   emulation.ReaderIDs
}

// Compile-time interface compliance check.
var _ emulation.Register = (*Register)(nil)

// New builds the adapter.
func New(cfg Config) (*Register, error) {
	if err := emulation.ValidateWriters(cfg.K); err != nil {
		return nil, fmt.Errorf("quorumreg: %w", err)
	}
	opts := cfg.EngineOpts
	if cfg.Fabric != nil {
		opts = append(opts[:len(opts):len(opts)], abdcore.WithFabric(cfg.Fabric))
	}
	engine, err := abdcore.New(cfg.Stores, cfg.F, opts...)
	if err != nil {
		return nil, err
	}
	hist := cfg.History
	if hist == nil {
		hist = &spec.History{}
	}
	return &Register{
		name:      cfg.Name,
		k:         cfg.K,
		f:         cfg.F,
		resources: cfg.Resources,
		engine:    engine,
		hist:      hist,
	}, nil
}

// Name implements emulation.Register.
func (r *Register) Name() string { return r.name }

// K implements emulation.Register.
func (r *Register) K() int { return r.k }

// F implements emulation.Register.
func (r *Register) F() int { return r.f }

// ResourceComplexity implements emulation.Register.
func (r *Register) ResourceComplexity() int { return r.resources }

// History returns the recorded high-level history.
func (r *Register) History() *spec.History { return r.hist }

// Writer implements emulation.Register.
func (r *Register) Writer(i int) (emulation.Writer, error) {
	if i < 0 || i >= r.k {
		return nil, fmt.Errorf("quorumreg: writer %d out of range (k=%d)", i, r.k)
	}
	return &writerHandle{reg: r, client: types.ClientID(i)}, nil
}

// NewReader implements emulation.Register. It is safe for concurrent
// callers: reader IDs come from a shared atomic allocator.
func (r *Register) NewReader() emulation.Reader {
	return &readerHandle{reg: r, client: r.readers.Next()}
}

// writerHandle is the per-writer handle.
type writerHandle struct {
	reg    *Register
	client types.ClientID
}

// Compile-time interface compliance checks: the handles serve both the
// blocking and the completion-based client paths.
var (
	_ emulation.Writer      = (*writerHandle)(nil)
	_ emulation.AsyncWriter = (*writerHandle)(nil)
	_ emulation.Reader      = (*readerHandle)(nil)
	_ emulation.AsyncReader = (*readerHandle)(nil)
)

// Client implements emulation.Writer.
func (w *writerHandle) Client() types.ClientID { return w.client }

// Write implements emulation.Writer. Incomplete operations (ctx expiry)
// stay pending in the history, like the paper's pending high-level ops.
func (w *writerHandle) Write(ctx context.Context, v types.Value) error {
	pw := w.reg.hist.BeginWrite(w.client, v)
	if err := w.reg.engine.Write(ctx, w.client, v); err != nil {
		return err
	}
	pw.End()
	return nil
}

// StartWrite implements emulation.AsyncWriter: the engine's collect/push
// callback chain, with the history op opened now and closed when (and if)
// the chain completes.
func (w *writerHandle) StartWrite(v types.Value, done func(error)) {
	pw := w.reg.hist.BeginWrite(w.client, v)
	w.reg.engine.StartWrite(w.client, v, func(err error) {
		if err == nil {
			pw.End()
		}
		done(err)
	})
}

// readerHandle is the per-reader handle.
type readerHandle struct {
	reg    *Register
	client types.ClientID
}

// Client implements emulation.Reader.
func (r *readerHandle) Client() types.ClientID { return r.client }

// StartRead implements emulation.AsyncReader.
func (r *readerHandle) StartRead(done func(types.Value, error)) {
	pr := r.reg.hist.BeginRead(r.client)
	r.reg.engine.StartRead(r.client, func(v types.Value, err error) {
		if err != nil {
			done(types.InitialValue, err)
			return
		}
		pr.End(v)
		done(v, nil)
	})
}

// Read implements emulation.Reader.
func (r *readerHandle) Read(ctx context.Context) (types.Value, error) {
	pr := r.reg.hist.BeginRead(r.client)
	v, err := r.reg.engine.Read(ctx, r.client)
	if err != nil {
		return types.InitialValue, err
	}
	pr.End(v)
	return v, nil
}
