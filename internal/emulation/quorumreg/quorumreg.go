// Package quorumreg adapts an abdcore.Engine into the emulation.Register
// interface: it owns the per-client handles, records every high-level
// operation into a spec.History, and reports the construction's resource
// complexity. The abdmax, casmax, aacmax, and naiveabd constructions are
// thin store layers underneath this adapter.
package quorumreg

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/emulation"
	"repro/internal/emulation/abdcore"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
)

// StoreReshaper is the per-construction hook the generic Reshape flow uses
// to re-place a register's quorum sets across a view resize. The three
// methods run only inside a fabric transition's frozen window, so direct
// seeding through the fabric.Reshaper cannot race client operations.
//
// The folded maximum m passed to NewStore and ReseedStore may be the zero
// TSValue when no write ever committed; implementations must skip seeding
// in that case.
type StoreReshaper interface {
	// StoreObjects returns the base objects backing s, for state folding
	// and for retirement when the store is dropped by the new placement.
	StoreObjects(s abdcore.MaxStore) []types.ObjectID
	// NewStore places a fresh store on server and seeds it with m. It
	// returns the store and the number of base objects placed.
	NewStore(rs *fabric.Reshaper, server types.ServerID, m types.TSValue) (abdcore.MaxStore, int, error)
	// ReseedStore folds m into a surviving store so every member of the
	// new placement holds at least the last committed value.
	ReseedStore(rs *fabric.Reshaper, s abdcore.MaxStore, m types.TSValue) error
}

// Config assembles a quorum-backed register.
type Config struct {
	// Name identifies the construction.
	Name string
	// K is the number of writers; F the failure threshold.
	K, F int
	// Stores are the per-server max-stores, at least 2f+1 of them.
	Stores []abdcore.MaxStore
	// Fabric is the fabric the stores trigger on; when set, the engine
	// batch-scatters whole quorum rounds for direct (single-op) stores.
	Fabric *fabric.Fabric
	// Resources is the number of base objects the construction placed.
	Resources int
	// History receives the high-level operations; a fresh history is
	// created when nil.
	History *spec.History
	// EngineOpts configure the underlying quorum engine.
	EngineOpts []abdcore.Option
	// Reshaper enables live view resizing; nil registers reject Reshape
	// with emulation.ErrResizeUnsupported.
	Reshaper StoreReshaper
}

// Register implements emulation.Register over an abdcore.Engine.
type Register struct {
	name     string
	k        int
	engine   *abdcore.Engine
	hist     *spec.History
	readers  emulation.ReaderIDs
	reshaper StoreReshaper

	// mu guards the view-dependent fields; the engine swaps its own
	// placement atomically, these track the adapter-level bookkeeping.
	mu        sync.Mutex
	f         int
	resources int
}

// Compile-time interface compliance checks.
var (
	_ emulation.Register      = (*Register)(nil)
	_ emulation.ViewResizable = (*Register)(nil)
)

// New builds the adapter.
func New(cfg Config) (*Register, error) {
	if err := emulation.ValidateWriters(cfg.K); err != nil {
		return nil, fmt.Errorf("quorumreg: %w", err)
	}
	opts := cfg.EngineOpts
	if cfg.Fabric != nil {
		opts = append(opts[:len(opts):len(opts)], abdcore.WithFabric(cfg.Fabric))
	}
	engine, err := abdcore.New(cfg.Stores, cfg.F, opts...)
	if err != nil {
		return nil, err
	}
	hist := cfg.History
	if hist == nil {
		hist = &spec.History{}
	}
	if cfg.Fabric != nil {
		// Record the failure budget on the view: resize coordinators default
		// their new threshold to it, and churn drivers guard shrinks with it.
		cfg.Fabric.Cluster().SetF(cfg.F)
	}
	return &Register{
		name:      cfg.Name,
		k:         cfg.K,
		f:         cfg.F,
		resources: cfg.Resources,
		engine:    engine,
		hist:      hist,
		reshaper:  cfg.Reshaper,
	}, nil
}

// Name implements emulation.Register.
func (r *Register) Name() string { return r.name }

// K implements emulation.Register.
func (r *Register) K() int { return r.k }

// F implements emulation.Register.
func (r *Register) F() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.f
}

// ResourceComplexity implements emulation.Register.
func (r *Register) ResourceComplexity() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.resources
}

// History returns the recorded high-level history.
func (r *Register) History() *spec.History { return r.hist }

// Writer implements emulation.Register.
func (r *Register) Writer(i int) (emulation.Writer, error) {
	if i < 0 || i >= r.k {
		return nil, fmt.Errorf("quorumreg: writer %d out of range (k=%d)", i, r.k)
	}
	return &writerHandle{reg: r, client: types.ClientID(i)}, nil
}

// NewReader implements emulation.Register. It is safe for concurrent
// callers: reader IDs come from a shared atomic allocator.
func (r *Register) NewReader() emulation.Reader {
	return &readerHandle{reg: r, client: r.readers.Next()}
}

// writerHandle is the per-writer handle.
type writerHandle struct {
	reg    *Register
	client types.ClientID
}

// Compile-time interface compliance checks: the handles serve both the
// blocking and the completion-based client paths.
var (
	_ emulation.Writer      = (*writerHandle)(nil)
	_ emulation.AsyncWriter = (*writerHandle)(nil)
	_ emulation.Reader      = (*readerHandle)(nil)
	_ emulation.AsyncReader = (*readerHandle)(nil)
)

// Client implements emulation.Writer.
func (w *writerHandle) Client() types.ClientID { return w.client }

// Write implements emulation.Writer. Incomplete operations (ctx expiry)
// stay pending in the history, like the paper's pending high-level ops.
func (w *writerHandle) Write(ctx context.Context, v types.Value) error {
	pw := w.reg.hist.BeginWrite(w.client, v)
	if err := w.reg.engine.Write(ctx, w.client, v); err != nil {
		return err
	}
	pw.End()
	return nil
}

// StartWrite implements emulation.AsyncWriter: the engine's collect/push
// callback chain, with the history op opened now and closed when (and if)
// the chain completes.
func (w *writerHandle) StartWrite(v types.Value, done func(error)) {
	pw := w.reg.hist.BeginWrite(w.client, v)
	w.reg.engine.StartWrite(w.client, v, func(err error) {
		if err == nil {
			pw.End()
		}
		done(err)
	})
}

// readerHandle is the per-reader handle.
type readerHandle struct {
	reg    *Register
	client types.ClientID
}

// Client implements emulation.Reader.
func (r *readerHandle) Client() types.ClientID { return r.client }

// StartRead implements emulation.AsyncReader.
func (r *readerHandle) StartRead(done func(types.Value, error)) {
	pr := r.reg.hist.BeginRead(r.client)
	r.reg.engine.StartRead(r.client, func(v types.Value, err error) {
		if err != nil {
			done(types.InitialValue, err)
			return
		}
		pr.End(v)
		done(v, nil)
	})
}

// Reshape implements emulation.ViewResizable: it re-places the register's
// 2f+1 quorum stores on the post-resize member set and swaps the engine's
// placement atomically. It runs inside the transition's frozen window, in a
// fixed order whose every step keeps the register recoverable:
//
//  1. Fold the maximum timestamped value over every old store's
//     authoritative state — the last committed write is ≤ m, and m is a
//     committed or in-flight write, so seeding m is always linearizable.
//  2. Create stores on new servers, seeded with m at creation, so a
//     quorum gathered purely from joiners already holds the last write.
//  3. Re-seed surviving stores (a shrink can drop the very servers that
//     held m).
//  4. Swap the engine placement — from here every round uses the new
//     targets and the new n−f threshold together.
//  5. Retire dropped stores' objects LAST: retiring before the swap would
//     expose in-window retries to a non-retryable missing-object error.
func (r *Register) Reshape(rs *fabric.Reshaper) error {
	if r.reshaper == nil {
		return fmt.Errorf("quorumreg: %s: %w", r.name, emulation.ErrResizeUnsupported)
	}
	members := rs.Members()
	newF := rs.F()
	need := 2*newF + 1
	if newF <= 0 {
		return fmt.Errorf("quorumreg: %s: f must be positive, got %d", r.name, newF)
	}
	if len(members) < need {
		return fmt.Errorf("quorumreg: %s: %d members cannot host 2f+1=%d stores", r.name, len(members), need)
	}
	old := r.engine.Stores()

	var m types.TSValue
	for _, s := range old {
		for _, obj := range r.reshaper.StoreObjects(s) {
			st, err := rs.State(obj)
			if err != nil {
				return fmt.Errorf("quorumreg: %s: reading state on server %d: %w", r.name, s.Server(), err)
			}
			if m.Less(st.Val) {
				m = st.Val
			}
		}
	}

	// Placement: keep surviving stores (ascending engine order) up to
	// 2f+1, fill with fresh stores on members not already hosting one.
	memberSet := make(map[types.ServerID]bool, len(members))
	for _, sid := range members {
		memberSet[sid] = true
	}
	hosting := make(map[types.ServerID]bool, len(old))
	for _, s := range old {
		hosting[s.Server()] = true
	}
	newStores := make([]abdcore.MaxStore, 0, need)
	var dropped []abdcore.MaxStore
	for _, s := range old {
		if memberSet[s.Server()] && len(newStores) < need {
			newStores = append(newStores, s)
		} else {
			dropped = append(dropped, s)
		}
	}
	kept := len(newStores)
	placed := 0
	for _, sid := range members {
		if len(newStores) >= need {
			break
		}
		if hosting[sid] {
			continue
		}
		st, n, err := r.reshaper.NewStore(rs, sid, m)
		if err != nil {
			return fmt.Errorf("quorumreg: %s: placing store on server %d: %w", r.name, sid, err)
		}
		newStores = append(newStores, st)
		placed += n
	}
	if len(newStores) < need {
		return fmt.Errorf("quorumreg: %s: only %d of %d stores placeable on members %v", r.name, len(newStores), need, members)
	}
	for _, s := range newStores[:kept] {
		if err := r.reshaper.ReseedStore(rs, s, m); err != nil {
			return fmt.Errorf("quorumreg: %s: reseeding server %d: %w", r.name, s.Server(), err)
		}
	}
	if err := r.engine.Resize(newStores, newF); err != nil {
		return fmt.Errorf("quorumreg: %s: %w", r.name, err)
	}
	retired := 0
	for _, s := range dropped {
		for _, obj := range r.reshaper.StoreObjects(s) {
			if err := rs.Retire(obj); err != nil {
				return fmt.Errorf("quorumreg: %s: retiring object %d: %w", r.name, obj, err)
			}
			retired++
		}
	}
	r.mu.Lock()
	r.f = newF
	r.resources += placed - retired
	r.mu.Unlock()
	return nil
}

// Read implements emulation.Reader.
func (r *readerHandle) Read(ctx context.Context) (types.Value, error) {
	pr := r.reg.hist.BeginRead(r.client)
	v, err := r.reg.engine.Read(ctx, r.client)
	if err != nil {
		return types.InitialValue, err
	}
	pr.End(v)
	return v, nil
}
