package async_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/emulation"
	"repro/internal/emulation/async"
	"repro/internal/fabric"
	"repro/internal/runner"
	"repro/internal/spec"
	"repro/internal/types"
)

// testProfile is a small latency profile: enough to overlap thousands of
// ops, small enough to keep tests fast.
var testProfile = fabric.LatencyProfile{
	Base:   200 * time.Microsecond,
	Jitter: 300 * time.Microsecond,
}

// buildEnv builds a construction on the chosen lane.
func buildEnv(t *testing.T, kind runner.Kind, k, f, n int, opts ...fabric.Option) (emulation.Register, *spec.History) {
	t.Helper()
	env, err := runner.NewEnv(n, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	reg, hist, err := runner.Build(kind, env.Fabric, k, f)
	if err != nil {
		t.Fatal(err)
	}
	return reg, hist
}

func drain(t *testing.T, eng *async.Engine) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := eng.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestAsyncAllConstructions pushes a closed-loop read/write mix through
// every construction on the latency lane: completions arrive on timer
// goroutines, thousands of ops stay in flight, and the sampled history must
// linearize. Run under -race in CI.
func TestAsyncAllConstructions(t *testing.T) {
	for _, kind := range runner.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			const (
				k, f      = 4, 1
				writers   = 4
				readers   = 8
				opsPerCli = 40
			)
			n := runner.ChaosServers(kind)
			reg, hist := buildEnv(t, kind, k, f, n, fabric.WithLanes(fabric.LatencyLanes(42, testProfile)))
			eng := async.New(reg)
			defer eng.Close()

			var wrote atomic.Int64
			var failed atomic.Int64
			var issueW func(c *async.Client, left int)
			issueW = func(c *async.Client, left int) {
				if left == 0 {
					return
				}
				c.StartWrite(types.Value(wrote.Add(1)), func(err error) {
					if err != nil {
						failed.Add(1)
						t.Errorf("%s: write: %v", kind, err)
						return
					}
					issueW(c, left-1)
				})
			}
			var issueR func(c *async.Client, left int)
			issueR = func(c *async.Client, left int) {
				if left == 0 {
					return
				}
				c.StartRead(func(_ types.Value, err error) {
					if err != nil {
						failed.Add(1)
						t.Errorf("%s: read: %v", kind, err)
						return
					}
					issueR(c, left-1)
				})
			}
			for i := 0; i < writers; i++ {
				c, err := eng.Writer(i)
				if err != nil {
					t.Fatal(err)
				}
				issueW(c, opsPerCli)
			}
			for i := 0; i < readers; i++ {
				issueR(eng.NewReader(), opsPerCli)
			}
			drain(t, eng)
			st := eng.Stats()
			wantOps := int64((writers + readers) * opsPerCli)
			if st.Completed != wantOps || st.Failed != 0 {
				t.Fatalf("stats = %+v, want %d completed", st, wantOps)
			}
			ops := hist.Snapshot()
			if err := spec.CheckReadValidity(ops, types.InitialValue); err != nil {
				t.Fatalf("%s: read validity: %v", kind, err)
			}
		})
	}
}

// TestAsyncAtomicLinearizable drives the atomic (read write-back) builds
// concurrently through the engine and checks sampled linearizability: the
// regular builds may exhibit new-old read inversions under concurrency
// (regularity allows them), but the atomic protocol must linearize.
func TestAsyncAtomicLinearizable(t *testing.T) {
	for _, kind := range []runner.Kind{runner.KindABDMax, runner.KindCASMax} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			env, err := runner.NewEnv(3, nil, fabric.WithLanes(fabric.LatencyLanes(21, testProfile)))
			if err != nil {
				t.Fatal(err)
			}
			reg, hist, err := runner.BuildAtomic(kind, env.Fabric, 4, 1)
			if err != nil {
				t.Fatal(err)
			}
			eng := async.New(reg)
			defer eng.Close()
			var val atomic.Int64
			var issue func(c *async.Client, write bool, left int)
			issue = func(c *async.Client, write bool, left int) {
				if left == 0 {
					return
				}
				next := func(err error) {
					if err != nil {
						t.Errorf("%s: %v", kind, err)
						return
					}
					issue(c, write, left-1)
				}
				if write {
					c.StartWrite(types.Value(val.Add(1)), next)
				} else {
					c.StartRead(func(_ types.Value, err error) { next(err) })
				}
			}
			for i := 0; i < 4; i++ {
				c, err := eng.Writer(i)
				if err != nil {
					t.Fatal(err)
				}
				issue(c, true, 30)
			}
			for i := 0; i < 6; i++ {
				issue(eng.NewReader(), false, 30)
			}
			drain(t, eng)
			ops := hist.Snapshot()
			if err := spec.CheckReadValidity(ops, types.InitialValue); err != nil {
				t.Fatalf("%s: read validity: %v", kind, err)
			}
			for seed := int64(0); seed < 8; seed++ {
				sample := spec.SampleLinearizable(ops, 48, seed)
				if err := spec.CheckLinearizable(sample, types.InitialValue); err != nil {
					t.Fatalf("%s: sampled linearizability (seed %d, %d ops): %v", kind, seed, len(sample), err)
				}
			}
		})
	}
}

// TestAsyncThousandInFlight is the subsystem's concurrency claim: one
// engine goroutine holds >= 1000 high-level ops in flight across >= 1000
// logical clients, closed-loop, with every op completing.
func TestAsyncThousandInFlight(t *testing.T) {
	const (
		writers = 500
		readers = 500
		rounds  = 3
	)
	reg, hist := buildEnv(t, runner.KindABDMax, writers, 1, 3,
		fabric.WithLanes(fabric.LatencyLanes(7, fabric.LatencyProfile{Base: 2 * time.Millisecond, Jitter: time.Millisecond})))
	eng := async.New(reg)
	defer eng.Close()

	var val atomic.Int64
	var spin func(c *async.Client, write bool, left int)
	spin = func(c *async.Client, write bool, left int) {
		if left == 0 {
			return
		}
		if write {
			c.StartWrite(types.Value(val.Add(1)), func(err error) {
				if err != nil {
					t.Errorf("write: %v", err)
					return
				}
				spin(c, write, left-1)
			})
		} else {
			c.StartRead(func(_ types.Value, err error) {
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				spin(c, write, left-1)
			})
		}
	}
	for i := 0; i < writers; i++ {
		c, err := eng.Writer(i)
		if err != nil {
			t.Fatal(err)
		}
		spin(c, true, rounds)
	}
	for i := 0; i < readers; i++ {
		spin(eng.NewReader(), false, rounds)
	}
	drain(t, eng)
	st := eng.Stats()
	if want := int64((writers + readers) * rounds); st.Completed != want {
		t.Fatalf("completed %d ops, want %d (stats %+v)", st.Completed, want, st)
	}
	if st.MaxInFlight < writers+readers {
		t.Fatalf("peak in-flight = %d, want >= %d", st.MaxInFlight, writers+readers)
	}
	if got := hist.Len(); got != (writers+readers)*rounds {
		t.Fatalf("history recorded %d ops, want %d", got, (writers+readers)*rounds)
	}
}

// TestAsyncPerClientSerialization back-pressures one client with a burst of
// queued writes: completions must fire in issue order and the recorded ops
// of the client must never overlap (the paper's well-formed histories).
func TestAsyncPerClientSerialization(t *testing.T) {
	const burst = 50
	reg, hist := buildEnv(t, runner.KindRegEmu, 2, 1, 4,
		fabric.WithLanes(fabric.LatencyLanes(3, testProfile)))
	eng := async.New(reg)
	defer eng.Close()
	c, err := eng.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan int, burst)
	for i := 0; i < burst; i++ {
		i := i
		c.StartWrite(types.Value(i+1), func(err error) {
			if err != nil {
				t.Errorf("write %d: %v", i, err)
			}
			order <- i
		})
	}
	drain(t, eng)
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("completion order: got op %d, want %d", got, want)
		}
		want++
	}
	ops := hist.Snapshot()
	if len(ops) != burst {
		t.Fatalf("history has %d ops, want %d", len(ops), burst)
	}
	for i := 1; i < len(ops); i++ {
		if !ops[i-1].Precedes(ops[i]) {
			t.Fatalf("client ops overlap: %v then %v", ops[i-1], ops[i])
		}
	}
}

// TestAsyncCloseFailsInFlight holds every low-level op at the gate, issues
// work, closes the engine, and demands every callback fires exactly once
// with ErrClosed — then releases the held ops and checks the late
// completions are dropped without panics or double fires.
func TestAsyncCloseFailsInFlight(t *testing.T) {
	gate := fabric.GateFuncs{Apply: func(fabric.TriggerEvent) fabric.Decision { return fabric.Hold }}
	env, err := runner.NewEnv(3, gate)
	if err != nil {
		t.Fatal(err)
	}
	reg, _, err := runner.Build(runner.KindABDMax, env.Fabric, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := async.New(reg)
	var fired atomic.Int64
	const ops = 20
	c, err := eng.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ops; i++ {
		c.StartWrite(types.Value(i+1), func(err error) {
			if !errors.Is(err, async.ErrClosed) {
				t.Errorf("held write completed with %v, want ErrClosed", err)
			}
			fired.Add(1)
		})
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if got := fired.Load(); got != ops {
		t.Fatalf("%d callbacks fired on close, want %d", got, ops)
	}
	// Late releases complete the construction chains into the closed
	// engine's mailbox: they must be dropped silently.
	env.Fabric.ReleaseWhere(func(fabric.PendingOp) bool { return true })
	if got := fired.Load(); got != ops {
		t.Fatalf("late releases re-fired callbacks: %d, want %d", got, ops)
	}
	// New work after close fails immediately.
	c.StartWrite(99, func(err error) {
		if !errors.Is(err, async.ErrClosed) {
			t.Errorf("post-close write: %v, want ErrClosed", err)
		}
		fired.Add(1)
	})
	if got := fired.Load(); got != ops+1 {
		t.Fatalf("post-close write did not fail inline (fired=%d)", got)
	}
}

// TestAsyncCrashDuringInFlight crashes f servers while a thousand ops are
// in flight: quorums over the survivors must still complete every op.
func TestAsyncCrashDuringInFlight(t *testing.T) {
	const clients = 200
	env, err := runner.NewEnv(5, nil, fabric.WithLanes(fabric.LatencyLanes(11, fabric.LatencyProfile{Base: time.Millisecond, Jitter: time.Millisecond})))
	if err != nil {
		t.Fatal(err)
	}
	reg, hist, err := runner.Build(runner.KindABDMax, env.Fabric, clients, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng := async.New(reg)
	defer eng.Close()
	for i := 0; i < clients; i++ {
		c, err := eng.Writer(i)
		if err != nil {
			t.Fatal(err)
		}
		v := types.Value(i + 1)
		c.StartWrite(v, func(err error) {
			if err != nil {
				t.Errorf("write during crash: %v", err)
			}
		})
	}
	// Crash f=2 of the 5 servers while the ops are on the wire.
	if err := env.Fabric.Crash(0); err != nil {
		t.Fatal(err)
	}
	if err := env.Fabric.Crash(3); err != nil {
		t.Fatal(err)
	}
	drain(t, eng)
	st := eng.Stats()
	if st.Completed != clients || st.Failed != 0 {
		t.Fatalf("stats after crash = %+v, want %d completed", st, clients)
	}
	if got := hist.Len(); got != clients {
		t.Fatalf("history recorded %d ops, want %d", got, clients)
	}
}

// blockingReg wraps a Register hiding its async interfaces, to exercise the
// goroutine-per-op compatibility path.
type blockingReg struct{ emulation.Register }

type blockingWriter struct{ emulation.Writer }
type blockingReader struct{ emulation.Reader }

func (b blockingReg) Writer(i int) (emulation.Writer, error) {
	w, err := b.Register.Writer(i)
	if err != nil {
		return nil, err
	}
	return blockingWriter{w}, nil
}

func (b blockingReg) NewReader() emulation.Reader { return blockingReader{b.Register.NewReader()} }

// TestAsyncBlockingFallback drives a construction that only offers the
// blocking handles: the engine falls back to one goroutine per op and the
// results still serialize per client.
func TestAsyncBlockingFallback(t *testing.T) {
	reg, _ := buildEnv(t, runner.KindABDMax, 2, 1, 3)
	eng := async.New(blockingReg{reg})
	defer eng.Close()
	w, err := eng.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	w.StartWrite(5, func(err error) { done <- err })
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("fallback write: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fallback write never completed")
	}
	r := eng.NewReader()
	got := make(chan types.Value, 1)
	r.StartRead(func(v types.Value, err error) {
		if err != nil {
			t.Errorf("fallback read: %v", err)
		}
		got <- v
	})
	select {
	case v := <-got:
		if v != 5 {
			t.Fatalf("fallback read = %d, want 5", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fallback read never completed")
	}
}

// TestAsyncContextCancellation closes the engine through its context.
func TestAsyncContextCancellation(t *testing.T) {
	gate := fabric.GateFuncs{Apply: func(fabric.TriggerEvent) fabric.Decision { return fabric.Hold }}
	env, err := runner.NewEnv(3, gate)
	if err != nil {
		t.Fatal(err)
	}
	reg, _, err := runner.Build(runner.KindCASMax, env.Fabric, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	eng := async.New(reg, async.WithContext(ctx))
	c, err := eng.Writer(1)
	if err != nil {
		t.Fatal(err)
	}
	failed := make(chan error, 1)
	c.StartWrite(7, func(err error) { failed <- err })
	cancel()
	select {
	case err := <-failed:
		if !errors.Is(err, async.ErrClosed) {
			t.Fatalf("cancelled write error = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("context cancellation did not fail the in-flight write")
	}
	if err := eng.Drain(context.Background()); !errors.Is(err, async.ErrClosed) {
		t.Fatalf("drain after cancel = %v, want ErrClosed", err)
	}
}

// TestAsyncWriterReaderMisuse checks the loud failures for role mix-ups.
func TestAsyncWriterReaderMisuse(t *testing.T) {
	reg, _ := buildEnv(t, runner.KindNaive, 2, 1, 3)
	eng := async.New(reg)
	defer eng.Close()
	w, err := eng.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := startReadErr(w); err == nil {
		t.Fatal("StartRead on a writer client succeeded")
	}
	r := eng.NewReader()
	if err := startWriteErr(r); err == nil {
		t.Fatal("StartWrite on a reader client succeeded")
	}
	// Writer(i) is stable: the same client comes back.
	w2, err := eng.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	if w != w2 {
		t.Fatal("Writer(0) returned distinct clients for one underlying writer")
	}
}

func startReadErr(c *async.Client) error {
	ch := make(chan error, 1)
	c.StartRead(func(_ types.Value, err error) { ch <- err })
	select {
	case err := <-ch:
		return err
	case <-time.After(time.Second):
		return nil
	}
}

func startWriteErr(c *async.Client) error {
	ch := make(chan error, 1)
	c.StartWrite(1, func(err error) { ch <- err })
	select {
	case err := <-ch:
		return err
	case <-time.After(time.Second):
		return nil
	}
}

// TestAsyncCloseDuringSelfSustainingLoop is the shutdown-livelock
// regression test: on the synchronous in-process lane a client that
// unconditionally reissues from its completion callback keeps the mailbox
// non-empty forever, so the engine loop must re-check its context inside
// the drain or Close would never return.
func TestAsyncCloseDuringSelfSustainingLoop(t *testing.T) {
	reg, _ := buildEnv(t, runner.KindABDMax, 1, 1, 3)
	eng := async.New(reg)
	w, err := eng.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	var v atomic.Int64
	var issue func(err error)
	issue = func(err error) {
		// Reissue unconditionally — even after the engine reports
		// ErrClosed, which fails inline without re-entering the loop.
		if err == nil {
			w.StartWrite(types.Value(v.Add(1)), issue)
		}
	}
	issue(nil)
	closed := make(chan struct{})
	go func() {
		eng.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung against a self-sustaining closed loop")
	}
}
