// Package async is the completion-based client engine: it drives any
// emulation.Register construction through StartWrite/StartRead handles so
// that a single goroutine can keep thousands of high-level operations in
// flight at once.
//
// The paper's clients are deterministic state machines — an operation is an
// invocation, a stretch of low-level triggers and responses, and a return —
// and nothing in the model ties one client to one OS thread. The blocking
// Writer/Reader handles do exactly that, though: every in-flight high-level
// op parks a goroutine in a quorum gather. This engine removes the
// goroutine: constructions expose their operations as callback chains
// (emulation.AsyncWriter / emulation.AsyncReader, built on the non-blocking
// rounds.ScatterFold* gathers), and the engine multiplexes any number of
// logical clients over one event loop, freestore-style.
//
// # Event loop and mailbox
//
// All engine state is owned by a single loop goroutine. Client calls
// (Client.StartWrite / Client.StartRead) and construction completions post
// events into an unbounded mutex-guarded mailbox and never block — the same
// discipline as rounds.Deliver, extended to producers whose event volume is
// not statically bounded. The loop drains the mailbox, starts operations on
// the underlying construction, and fires user completion callbacks.
// Callbacks run on the loop goroutine and may immediately start the
// client's next operation (the closed-loop pattern), which enqueues rather
// than recurses.
//
// # Per-client serialization
//
// The paper's histories are well-formed: a client invokes its next
// operation only after the previous one returned. The engine enforces this
// per logical client — a second StartWrite/StartRead on a busy client is
// queued and started only after the previous operation's completion fired —
// so histories produced through the engine stay checkable by internal/spec
// no matter how the caller issues work.
//
// # Cancellation and crashes
//
// An operation whose quorum can never complete (more than f servers
// crashed, or responses held forever) simply never completes, exactly like
// the paper's pending ops. The engine's context bounds that wait: Close —
// or the context's own cancellation — fails every queued and in-flight
// operation with ErrClosed, fires their callbacks, and stops the loop.
// Construction chains cannot be recalled (their low-level ops stay pending
// in the fabric), but their late completions are dropped at the mailbox, so
// nothing ever blocks or fires twice.
package async

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/emulation"
	"repro/internal/types"
)

// ErrClosed is reported by every operation that the engine abandoned
// because it was closed (explicitly or by its context).
var ErrClosed = errors.New("async: engine closed")

// Engine multiplexes completion-based clients of emulated registers over a
// single event-loop goroutine. An engine built with New serves one bound
// register (Writer/NewReader); a detached engine (NewDetached) serves
// clients on any register via WriterOn/ReaderOn — the sharded store runs a
// pool of detached loops over the registers of all its shards.
type Engine struct {
	reg    emulation.Register
	ctx    context.Context
	cancel context.CancelFunc

	mu          sync.Mutex
	inbox       []event
	closed      bool
	outstanding int64
	waiters     []chan struct{}
	clients     []*Client
	writers     map[writerKey]*Client

	notify   chan struct{}
	loopDone chan struct{}

	// Stats counters; written by the loop, read from anywhere.
	started     atomic.Int64
	completed   atomic.Int64
	failed      atomic.Int64
	inFlight    atomic.Int64
	maxInFlight atomic.Int64
}

// Option configures an Engine.
type Option func(*Engine)

// WithContext bounds the engine's lifetime: when ctx is cancelled the
// engine closes, failing all queued and in-flight operations.
func WithContext(ctx context.Context) Option {
	return func(e *Engine) { e.ctx = ctx }
}

// New creates an engine over the construction and starts its event loop.
func New(reg emulation.Register, opts ...Option) *Engine {
	e := &Engine{
		reg:      reg,
		ctx:      context.Background(),
		writers:  make(map[writerKey]*Client),
		notify:   make(chan struct{}, 1),
		loopDone: make(chan struct{}),
	}
	for _, opt := range opts {
		opt(e)
	}
	e.ctx, e.cancel = context.WithCancel(e.ctx)
	go e.loop()
	return e
}

// NewDetached creates an engine bound to no particular construction: every
// client is created through WriterOn/ReaderOn, naming its register
// explicitly. This is the engine-pool form the sharded store uses — M
// detached loops share the registers of S shards, each key's clients pinned
// to one loop by the store's key-affinity routing.
func NewDetached(opts ...Option) *Engine { return New(nil, opts...) }

// Register returns the wrapped construction (nil for a detached engine).
func (e *Engine) Register() emulation.Register { return e.reg }

// writerKey identifies one writer slot of one register: detached engines
// drive writers of many registers, so the slot index alone is not unique.
type writerKey struct {
	reg emulation.Register
	i   int
}

// Stats is a snapshot of the engine's operation counters.
type Stats struct {
	// Started counts operations handed to the construction; Completed and
	// Failed partition the ones whose completion fired.
	Started, Completed, Failed int64
	// InFlight is the number of started-but-uncompleted operations now;
	// MaxInFlight is the highest concurrency the engine reached.
	InFlight, MaxInFlight int64
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Started:     e.started.Load(),
		Completed:   e.completed.Load(),
		Failed:      e.failed.Load(),
		InFlight:    e.inFlight.Load(),
		MaxInFlight: e.maxInFlight.Load(),
	}
}

// op is one queued or in-flight high-level operation.
type op struct {
	c       *Client
	write   bool
	v       types.Value
	onWrite func(error)
	onRead  func(types.Value, error)
}

// fail fires the op's callback with err.
func (o *op) fail(err error) {
	if o.write {
		o.onWrite(err)
	} else {
		o.onRead(types.InitialValue, err)
	}
}

// event is one mailbox entry.
type event struct {
	op  *op
	val types.Value
	err error
	// done distinguishes a completion from a start request.
	done bool
}

// Client is one logical client: a writer or reader of the underlying
// register, driven through the engine. Operations on one client are
// serialized (queued) in invocation order; operations on different clients
// interleave freely. Start methods are safe from any goroutine, including
// from completion callbacks.
type Client struct {
	eng *Engine
	id  types.ClientID
	aw  emulation.AsyncWriter
	ar  emulation.AsyncReader

	// queue and active are owned by the engine loop.
	queue  []*op
	active *op
}

// Client returns the logical client's ID.
func (c *Client) Client() types.ClientID { return c.id }

// goWriter adapts a blocking-only writer handle: the compatibility path
// for constructions outside this repository, at the classic cost of one
// goroutine per in-flight op.
type goWriter struct {
	w   emulation.Writer
	ctx context.Context
}

func (g goWriter) StartWrite(v types.Value, done func(error)) {
	go func() { done(g.w.Write(g.ctx, v)) }()
}

// goReader is the read-side analogue of goWriter.
type goReader struct {
	r   emulation.Reader
	ctx context.Context
}

func (g goReader) StartRead(done func(types.Value, error)) {
	go func() { done(g.r.Read(g.ctx)) }()
}

// Writer returns the engine client for writer i of the engine's own
// register. Repeated calls return the same client: the underlying
// per-writer state admits one driver.
func (e *Engine) Writer(i int) (*Client, error) {
	if e.reg == nil {
		return nil, fmt.Errorf("async: detached engine has no bound register; use WriterOn")
	}
	return e.WriterOn(e.reg, i)
}

// WriterOn returns the engine client for writer i of reg, which need not be
// the engine's own register: a detached engine drives clients of many
// registers through one loop. Repeated calls with the same (reg, i) return
// the same client.
func (e *Engine) WriterOn(reg emulation.Register, i int) (*Client, error) {
	key := writerKey{reg: reg, i: i}
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.writers[key]; ok {
		return c, nil
	}
	w, err := reg.Writer(i)
	if err != nil {
		return nil, err
	}
	aw, ok := w.(emulation.AsyncWriter)
	if !ok {
		aw = goWriter{w: w, ctx: e.ctx}
	}
	c := &Client{eng: e, id: w.Client(), aw: aw}
	e.writers[key] = c
	e.clients = append(e.clients, c)
	return c, nil
}

// NewReader returns a fresh reader client on the engine's own register.
// Safe from any goroutine, including engine callbacks.
func (e *Engine) NewReader() *Client {
	if e.reg == nil {
		panic("async: detached engine has no bound register; use ReaderOn")
	}
	return e.ReaderOn(e.reg)
}

// ReaderOn returns a fresh reader client on reg; like WriterOn, reg need
// not be the engine's own register.
func (e *Engine) ReaderOn(reg emulation.Register) *Client {
	r := reg.NewReader()
	ar, ok := r.(emulation.AsyncReader)
	if !ok {
		ar = goReader{r: r, ctx: e.ctx}
	}
	c := &Client{eng: e, id: r.Client(), ar: ar}
	e.mu.Lock()
	e.clients = append(e.clients, c)
	e.mu.Unlock()
	return c
}

// StartWrite enqueues a high-level write for this client; done fires
// exactly once, on the engine loop, when the write completes or the engine
// closes. done must not block; it may start the client's next operation.
func (c *Client) StartWrite(v types.Value, done func(error)) {
	if c.aw == nil {
		done(fmt.Errorf("async: client %d is a reader", c.id))
		return
	}
	c.eng.post(&op{c: c, write: true, v: v, onWrite: done})
}

// StartRead enqueues a high-level read; the same contract as StartWrite.
func (c *Client) StartRead(done func(types.Value, error)) {
	if c.ar == nil {
		done(types.InitialValue, fmt.Errorf("async: client %d is a writer", c.id))
		return
	}
	c.eng.post(&op{c: c, onRead: done})
}

// post enqueues a start request, failing it immediately when the engine is
// closed. It never blocks.
func (e *Engine) post(o *op) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		o.fail(ErrClosed)
		return
	}
	e.outstanding++
	e.inbox = append(e.inbox, event{op: o})
	e.mu.Unlock()
	e.wake()
}

// postDone enqueues a completion; late completions after close are
// dropped (their op was already failed by the shutdown sweep).
func (e *Engine) postDone(o *op, v types.Value, err error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.inbox = append(e.inbox, event{op: o, val: v, err: err, done: true})
	e.mu.Unlock()
	e.wake()
}

// wake nudges the loop; the 1-buffered notify coalesces bursts.
func (e *Engine) wake() {
	select {
	case e.notify <- struct{}{}:
	default:
	}
}

// takeInbox claims the mailbox contents.
func (e *Engine) takeInbox() []event {
	e.mu.Lock()
	evs := e.inbox
	e.inbox = nil
	e.mu.Unlock()
	return evs
}

// loop is the engine: it drains the mailbox until the context closes it.
func (e *Engine) loop() {
	defer close(e.loopDone)
	for {
		select {
		case <-e.ctx.Done():
			e.shutdown()
			return
		case <-e.notify:
			// The drain re-checks the context each round: on a synchronous
			// lane a closed-loop caller refills the mailbox from inside
			// handle(), so without the check a cancelled engine would spin
			// here forever and Close() would never return.
			for e.ctx.Err() == nil {
				evs := e.takeInbox()
				if len(evs) == 0 {
					break
				}
				for i := range evs {
					e.handle(&evs[i])
				}
			}
			e.checkIdle()
		}
	}
}

// handle processes one mailbox event on the loop goroutine.
func (e *Engine) handle(ev *event) {
	c := ev.op.c
	if !ev.done {
		if c.active == nil {
			e.begin(ev.op)
		} else {
			c.queue = append(c.queue, ev.op)
		}
		return
	}
	if c.active != ev.op {
		return // stale completion for an op the shutdown sweep failed
	}
	c.active = nil
	e.inFlight.Add(-1)
	if ev.err != nil {
		e.failed.Add(1)
	} else {
		e.completed.Add(1)
	}
	// The callback runs before the client's next queued op starts, so a
	// closed-loop caller that issues from the callback stays ahead of its
	// own queue — invocation order is preserved either way.
	if ev.op.write {
		ev.op.onWrite(ev.err)
	} else {
		ev.op.onRead(ev.val, ev.err)
	}
	e.settle(1)
	if c.active == nil && len(c.queue) > 0 {
		next := c.queue[0]
		c.queue = c.queue[1:]
		e.begin(next)
	}
}

// begin hands an operation to the construction. The construction's Start
// call must not block; its completion posts back into the mailbox from
// whatever goroutine completes the chain.
func (e *Engine) begin(o *op) {
	o.c.active = o
	e.started.Add(1)
	cur := e.inFlight.Add(1)
	if cur > e.maxInFlight.Load() {
		e.maxInFlight.Store(cur)
	}
	if o.write {
		o.c.aw.StartWrite(o.v, func(err error) { e.postDone(o, types.InitialValue, err) })
	} else {
		o.c.ar.StartRead(func(v types.Value, err error) { e.postDone(o, v, err) })
	}
}

// settle retires n outstanding ops and wakes Drain waiters at zero.
func (e *Engine) settle(n int64) {
	e.mu.Lock()
	e.outstanding -= n
	if e.outstanding == 0 {
		for _, w := range e.waiters {
			close(w)
		}
		e.waiters = nil
	}
	e.mu.Unlock()
}

// checkIdle wakes Drain waiters if everything settled between mailbox
// drains (settle covers the common case; this covers waiters registered
// while the loop was busy).
func (e *Engine) checkIdle() {
	e.settle(0)
}

// shutdown fails every queued and in-flight op. It runs on the loop
// goroutine, which owns all client state.
func (e *Engine) shutdown() {
	e.mu.Lock()
	e.closed = true
	inbox := e.inbox
	e.inbox = nil
	e.outstanding = 0
	waiters := e.waiters
	e.waiters = nil
	clients := e.clients
	e.mu.Unlock()

	err := ErrClosed
	if cause := context.Cause(e.ctx); cause != nil && !errors.Is(cause, context.Canceled) {
		err = fmt.Errorf("%w: %v", ErrClosed, cause)
	}
	for i := range inbox {
		if !inbox[i].done {
			inbox[i].op.fail(err)
		}
	}
	for _, c := range clients {
		if c.active != nil {
			e.inFlight.Add(-1)
			e.failed.Add(1)
			c.active.fail(err)
			c.active = nil
		}
		for _, o := range c.queue {
			o.fail(err)
		}
		c.queue = nil
	}
	for _, w := range waiters {
		close(w)
	}
}

// Close stops the engine: every queued and in-flight operation fails with
// ErrClosed, and the loop exits. Close is idempotent and safe from any
// goroutine except the engine loop itself (i.e. not from a completion
// callback — cancel the engine's context instead).
func (e *Engine) Close() error {
	e.cancel()
	<-e.loopDone
	return nil
}

// Drain blocks until every operation issued so far has completed (or the
// engine closed), or ctx expires. New operations issued while draining —
// e.g. closed-loop callbacks — extend the wait.
func (e *Engine) Drain(ctx context.Context) error {
	e.mu.Lock()
	if e.outstanding == 0 || e.closed {
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return ErrClosed
		}
		return nil
	}
	w := make(chan struct{})
	e.waiters = append(e.waiters, w)
	e.mu.Unlock()
	e.wake()
	select {
	case <-w:
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return ErrClosed
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("async: drain: %w", ctx.Err())
	}
}
