package lanenet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baseobj"
	"repro/internal/fabric"
	"repro/internal/types"
)

// Client is the fabric side of a network lane: one TCP connection to one
// server's storage node. It implements fabric.Lane (asynchronous delivery),
// fabric.ObjectMirror (placement replication), and fabric.CrashReporter
// (reconnect-as-crash: a broken connection crashes the lane's server and
// the lane never delivers again).
type Client struct {
	conn net.Conn

	// wmu serializes frame writes; responses are matched by request id, so
	// write order only matters for the place-before-apply guarantee.
	wmu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]fabric.CompleteFunc
	hook    func() // crash hook installed by the fabric

	nextReq atomic.Uint64
	crashed atomic.Bool
	closing atomic.Bool
}

// Compile-time interface compliance checks.
var (
	_ fabric.Lane          = (*Client)(nil)
	_ fabric.CrashReporter = (*Client)(nil)
	_ fabric.ObjectMirror  = (*Client)(nil)
)

// Dial connects to one storage node.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("lanenet: dialing %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true) // quorum rounds are latency-bound, tiny frames
	}
	c := &Client{conn: conn, pending: make(map[uint64]fabric.CompleteFunc)}
	go c.readLoop()
	return c, nil
}

// Lanes dials one node per server and returns the fabric lane maker plus
// the dialed clients (for tests that sever individual connections). addrs
// is indexed by server id.
func Lanes(addrs []string, timeout time.Duration) (fabric.LaneMaker, []*Client, error) {
	clients := make([]*Client, len(addrs))
	for i, addr := range addrs {
		c, err := Dial(addr, timeout)
		if err != nil {
			for _, prev := range clients[:i] {
				_ = prev.Close()
			}
			return nil, nil, err
		}
		clients[i] = c
	}
	maker := func(server types.ServerID) fabric.Lane {
		if int(server) >= len(clients) {
			// More servers than nodes is a wiring error; a nil-conn
			// client would panic, so fail loudly at construction.
			panic(fmt.Sprintf("lanenet: no node address for server %d (have %d)", server, len(clients)))
		}
		return clients[server]
	}
	return maker, clients, nil
}

// SetCrashHook implements fabric.CrashReporter. If the transport already
// failed — the node died between Dial and the fabric wiring its lanes —
// the hook fires immediately: the crash must reach the fabric no matter
// which side of the installation the failure landed on.
func (c *Client) SetCrashHook(fn func()) {
	c.mu.Lock()
	c.hook = fn
	crashed := c.crashed.Load()
	c.mu.Unlock()
	if crashed && !c.closing.Load() && fn != nil {
		fn()
	}
}

// MirrorObject implements fabric.ObjectMirror: it replicates the object's
// kind (and, for registers, the declared writer set) to the node before
// any operation on the object is delivered.
func (c *Client) MirrorObject(obj baseobj.Object) {
	p := placeReq{obj: obj.ID(), kind: obj.Kind()}
	if reg, ok := obj.(*baseobj.Register); ok {
		p.writers = reg.Writers()
	}
	c.send(encodePlace(p))
}

// Deliver implements fabric.Lane. A crashed lane never delivers and never
// completes: the op stays pending forever, exactly like an op triggered on
// a crashed server. The local apply closure is unused — the authoritative
// object state lives in the node.
func (c *Client) Deliver(ev fabric.TriggerEvent, _ fabric.ApplyFunc, complete fabric.CompleteFunc) {
	if c.crashed.Load() {
		return
	}
	req := c.nextReq.Add(1)
	c.mu.Lock()
	c.pending[req] = complete
	c.mu.Unlock()
	c.send(encodeApply(applyReq{req: req, obj: ev.Object, client: ev.Client, inv: ev.Inv}))
}

// send writes one frame, mapping a transport failure onto crash.
func (c *Client) send(payload []byte) {
	c.wmu.Lock()
	err := writeFrame(c.conn, payload)
	c.wmu.Unlock()
	if err != nil {
		c.fail()
	}
}

// readLoop matches responses to pending deliveries until the connection
// breaks.
func (c *Client) readLoop() {
	for {
		payload, err := readFrame(c.conn)
		if err != nil {
			c.fail()
			return
		}
		if len(payload) == 0 || payload[0] != msgResp {
			c.fail()
			return
		}
		r, err := decodeResp(payload[1:])
		if err != nil {
			c.fail()
			return
		}
		c.mu.Lock()
		complete, ok := c.pending[r.req]
		delete(c.pending, r.req)
		c.mu.Unlock()
		if !ok {
			continue // response to an op a crash already discarded
		}
		complete(r.resp, respError(r))
	}
}

// respError rehydrates the canonical sentinel errors so errors.Is works
// across the wire.
func respError(r applyResp) error {
	switch r.status {
	case statusOK:
		return nil
	case statusWrongOp:
		return fmt.Errorf("%w: %s", baseobj.ErrWrongOp, r.msg)
	case statusUnauthorizedWriter:
		return fmt.Errorf("%w: %s", baseobj.ErrUnauthorizedWriter, r.msg)
	case statusUnknownObject:
		return fmt.Errorf("lanenet: %s", r.msg)
	default:
		return fmt.Errorf("lanenet: node error: %s", r.msg)
	}
}

// fail maps transport failure onto the fail-stop model: the lane stops
// delivering, discards every pending completion (those ops stay pending
// forever), and fires the crash hook so the fabric crashes the server. A
// deliberate Close skips the hook — tearing an environment down is not a
// crash.
func (c *Client) fail() {
	if !c.crashed.CompareAndSwap(false, true) {
		return
	}
	_ = c.conn.Close()
	c.mu.Lock()
	c.pending = make(map[uint64]fabric.CompleteFunc)
	hook := c.hook
	c.mu.Unlock()
	if hook != nil && !c.closing.Load() {
		hook()
	}
}

// Crashed reports whether the lane's transport has failed.
func (c *Client) Crashed() bool { return c.crashed.Load() }

// Close implements fabric.Lane.
func (c *Client) Close() error {
	c.closing.Store(true)
	return c.conn.Close()
}
