package lanenet

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baseobj"
	"repro/internal/fabric"
	"repro/internal/types"
)

// defaultWriteTimeout bounds one flush against a stalled peer: a node that
// stops draining its socket long enough to back pressure all the way into a
// blocked Write is indistinguishable from a dead node, and reconnect-as-
// crash handles it the same way.
const defaultWriteTimeout = 10 * time.Second

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithWriteTimeout bounds each flusher write; a write that exceeds it fails
// the connection (reconnect-as-crash).
func WithWriteTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.writeTimeout = d
		}
	}
}

// WithFlushWindow makes the flusher linger up to w after the first queued
// frame before flushing, trading per-op latency for bigger coalesced
// batches. Zero (the default) flushes as soon as the queue is non-empty.
func WithFlushWindow(w time.Duration) ClientOption {
	return func(c *Client) {
		if w > 0 {
			c.flushWindow = w
		}
	}
}

// WithTable binds the connection onto the node's named object table: the
// bind frame is queued before anything else, so every placement and
// invocation of this lane lands in that table. Sharded stores use one table
// per shard, letting several shards' fabrics — whose object ids all start
// at zero — share one node process without colliding.
func WithTable(name string) ClientOption {
	return func(c *Client) { c.table = name }
}

// outKind discriminates queued frames.
type outKind uint8

const (
	outPlace outKind = iota // pre-encoded no-reply frame (placement, table bind)
	outApply                // one invocation
	outScan                 // an all-read snapshot group
)

// outItem is one queued frame awaiting the flusher.
type outItem struct {
	kind     outKind
	payload  []byte // outPlace
	ev       fabric.TriggerEvent
	complete fabric.CompleteFunc // outApply
	ops      []fabric.LaneOp     // outScan
}

// pendingEntry matches a response to its waiting completions: one for a
// plain apply, several when identical reads were coalesced into one wire
// request, per-member (request-order) for scans.
type pendingEntry struct {
	completes []fabric.CompleteFunc
	scan      bool
}

// Client is the fabric side of a network lane: one pooled, multiplexed TCP
// connection to one server's storage node. It implements fabric.Lane,
// fabric.GroupLane, and fabric.ScanLane (pipelined asynchronous delivery),
// fabric.ObjectMirror (placement replication), and fabric.CrashReporter
// (reconnect-as-crash: a broken connection crashes the lane's server and
// the lane never delivers again).
//
// Deliveries do not write the socket: they enqueue, and a single flusher
// goroutine drains the queue, coalesces identical queued reads into one
// wire request, concatenates every queued frame, and writes them in one
// deadline-bounded Write. Responses are matched by request id in the read
// loop, so many operations are in flight per connection at once (the
// pipeline) and no sender ever blocks on a slow peer.
type Client struct {
	conn net.Conn

	writeTimeout time.Duration
	flushWindow  time.Duration
	table        string

	// Outbound queue, drained by the flusher.
	qmu   sync.Mutex
	queue []outItem
	qsig  chan struct{}

	mu      sync.Mutex
	pending map[uint64]pendingEntry
	hook    func() // crash hook installed by the fabric

	nextReq  atomic.Uint64
	crashed  atomic.Bool
	closing  atomic.Bool
	stop     chan struct{}
	stopOnce sync.Once

	coalesced atomic.Uint64
	bytesOut  atomic.Uint64
	bytesIn   atomic.Uint64
	framesOut atomic.Uint64
	framesIn  atomic.Uint64

	// testHook, when set before the first delivery, runs on the flusher
	// goroutine after each queue drain and before the batch is encoded and
	// written. Tests use it to sever the connection in the dequeue-to-write
	// window.
	testHook func()
}

// Compile-time interface compliance checks.
var (
	_ fabric.Lane          = (*Client)(nil)
	_ fabric.GroupLane     = (*Client)(nil)
	_ fabric.ScanLane      = (*Client)(nil)
	_ fabric.CrashReporter = (*Client)(nil)
	_ fabric.ObjectMirror  = (*Client)(nil)
)

// Dial connects to one storage node.
func Dial(addr string, timeout time.Duration, opts ...ClientOption) (*Client, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("lanenet: dialing %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true) // the flusher already batches; don't add Nagle on top
	}
	c := &Client{
		conn:         conn,
		writeTimeout: defaultWriteTimeout,
		pending:      make(map[uint64]pendingEntry),
		qsig:         make(chan struct{}, 1),
		stop:         make(chan struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	if c.table != "" {
		// Queued before the goroutines start, so the bind is the first
		// frame on the wire: every later placement and invocation of this
		// lane operates on the bound table.
		c.enqueue(outItem{kind: outPlace, payload: encodeBind(c.table)})
	}
	go c.readLoop()
	go c.flusher()
	return c, nil
}

// Lanes dials one node per server and returns the fabric lane maker plus
// the dialed clients (for tests that sever individual connections). addrs
// is indexed by server id.
func Lanes(addrs []string, timeout time.Duration, opts ...ClientOption) (fabric.LaneMaker, []*Client, error) {
	clients := make([]*Client, len(addrs))
	for i, addr := range addrs {
		c, err := Dial(addr, timeout, opts...)
		if err != nil {
			for _, prev := range clients[:i] {
				_ = prev.Close()
			}
			return nil, nil, err
		}
		clients[i] = c
	}
	maker := func(server types.ServerID) fabric.Lane {
		if int(server) >= len(clients) {
			// More servers than nodes is a wiring error; a nil-conn
			// client would panic, so fail loudly at construction.
			panic(fmt.Sprintf("lanenet: no node address for server %d (have %d)", server, len(clients)))
		}
		return clients[server]
	}
	return maker, clients, nil
}

// SetCrashHook implements fabric.CrashReporter. If the transport already
// failed — the node died between Dial and the fabric wiring its lanes —
// the hook fires immediately: the crash must reach the fabric no matter
// which side of the installation the failure landed on.
func (c *Client) SetCrashHook(fn func()) {
	c.mu.Lock()
	c.hook = fn
	crashed := c.crashed.Load()
	c.mu.Unlock()
	if crashed && !c.closing.Load() && fn != nil {
		fn()
	}
}

// CoalescedReads reports how many read requests were merged into another
// identical queued read instead of going on the wire themselves.
func (c *Client) CoalescedReads() uint64 { return c.coalesced.Load() }

// ConnStats is a point-in-time snapshot of one connection's traffic.
// Byte counts include the 4-byte frame headers — they are what actually
// crossed the wire, which is the quantity the space/bandwidth experiments
// compare against the coded fragment sizes.
type ConnStats struct {
	FramesOut uint64 // frames written (after coalescing)
	FramesIn  uint64 // response frames received
	BytesOut  uint64 // bytes written, headers included
	BytesIn   uint64 // bytes received, headers included
}

// Stats returns this connection's traffic counters.
func (c *Client) Stats() ConnStats {
	return ConnStats{
		FramesOut: c.framesOut.Load(),
		FramesIn:  c.framesIn.Load(),
		BytesOut:  c.bytesOut.Load(),
		BytesIn:   c.bytesIn.Load(),
	}
}

// enqueue appends one frame to the outbound queue and nudges the flusher.
func (c *Client) enqueue(it outItem) {
	c.qmu.Lock()
	c.queue = append(c.queue, it)
	c.qmu.Unlock()
	select {
	case c.qsig <- struct{}{}:
	default:
	}
}

// MirrorObject implements fabric.ObjectMirror: it replicates the object's
// kind (and, for registers, the declared writer set) to the node before
// any operation on the object is delivered. The placement rides the same
// FIFO queue as invocations, preserving place-before-apply.
func (c *Client) MirrorObject(obj baseobj.Object) {
	p := placeReq{obj: obj.ID(), kind: obj.Kind()}
	// Ship the full state when the object exposes it (payload registers,
	// fragment stores); the timestamp alone loses payload bytes and
	// fragments on reconfiguration.
	if sp, ok := obj.(baseobj.StatePeeker); ok {
		p.state = sp.PeekState()
	} else {
		p.state = baseobj.State{Val: obj.Peek()}
	}
	if reg, ok := obj.(*baseobj.Register); ok {
		p.writers = reg.Writers()
	}
	c.enqueue(outItem{kind: outPlace, payload: encodePlace(p)})
}

// Deliver implements fabric.Lane. A crashed lane never delivers and never
// completes: the op stays pending forever, exactly like an op triggered on
// a crashed server. The local apply closure is unused — the authoritative
// object state lives in the node.
func (c *Client) Deliver(ev fabric.TriggerEvent, _ fabric.ApplyFunc, complete fabric.CompleteFunc) {
	if c.crashed.Load() {
		return
	}
	c.enqueue(outItem{kind: outApply, ev: ev, complete: complete})
}

// DeliverGroup implements fabric.GroupLane: the whole scattered group
// enters the queue together, so one flush carries it in one Write.
func (c *Client) DeliverGroup(ops []fabric.LaneOp) {
	if c.crashed.Load() {
		return
	}
	c.qmu.Lock()
	for _, op := range ops {
		c.queue = append(c.queue, outItem{kind: outApply, ev: op.Ev, complete: op.Complete})
	}
	c.qmu.Unlock()
	select {
	case c.qsig <- struct{}{}:
	default:
	}
}

// DeliverScan implements fabric.ScanLane: the group travels as one msgScan
// frame and the node answers every member from one consistent snapshot.
func (c *Client) DeliverScan(ops []fabric.LaneOp) {
	if c.crashed.Load() || len(ops) == 0 {
		return
	}
	c.enqueue(outItem{kind: outScan, ops: ops})
}

// flusher drains the outbound queue: it registers each request's pending
// completion, coalesces identical queued reads into one wire request,
// encodes every frame into one buffer, and writes the buffer with a single
// deadline-bounded Write. Holding no lock across the Write, a slow peer
// blocks only this goroutine — deliveries keep queueing — until the
// deadline converts the stall into a crash.
func (c *Client) flusher() {
	var buf []byte
	var batch []outItem
	for {
		select {
		case <-c.stop:
			return
		case <-c.qsig:
		}
		if c.flushWindow > 0 {
			// Linger: give the round's remaining frames time to queue, then
			// swallow the signals they raised (their items drain below).
			select {
			case <-c.stop:
				return
			case <-time.After(c.flushWindow):
			}
			select {
			case <-c.qsig:
			default:
			}
		}

		c.qmu.Lock()
		batch, c.queue = c.queue, batch[:0]
		c.qmu.Unlock()
		if len(batch) == 0 || c.crashed.Load() {
			continue
		}
		if c.testHook != nil {
			c.testHook()
		}
		buf = c.encodeBatch(buf[:0], batch)
		if len(buf) == 0 {
			continue
		}
		_ = c.conn.SetWriteDeadline(time.Now().Add(c.writeTimeout))
		if _, err := c.conn.Write(buf); err != nil {
			c.fail()
			return
		}
		c.bytesOut.Add(uint64(len(buf)))
	}
}

// encodeBatch encodes one drained queue into a single write buffer,
// registering pending completions as it goes. Identical reads (same object,
// same read op) queued in the same batch collapse onto one wire request:
// none of them has been sent yet, so all their invocations precede the
// shared apply and one response answers every caller.
func (c *Client) encodeBatch(buf []byte, batch []outItem) []byte {
	type readKey struct {
		obj types.ObjectID
		op  baseobj.OpCode
	}
	var readReq map[readKey]uint64

	for i := range batch {
		it := &batch[i]
		switch it.kind {
		case outPlace:
			buf = c.countFrame(buf, it.payload)
		case outApply:
			if it.ev.Inv.Op.IsRead() {
				k := readKey{obj: it.ev.Object, op: it.ev.Inv.Op}
				if req, ok := readReq[k]; ok {
					c.coalesced.Add(1)
					c.mu.Lock()
					e := c.pending[req]
					e.completes = append(e.completes, it.complete)
					c.pending[req] = e
					c.mu.Unlock()
					continue
				}
				req := c.nextReq.Add(1)
				if readReq == nil {
					readReq = make(map[readKey]uint64, 8)
				}
				readReq[k] = req
				c.register(req, pendingEntry{completes: []fabric.CompleteFunc{it.complete}})
				buf = c.countFrame(buf, encodeApply(applyReq{req: req, obj: it.ev.Object, client: it.ev.Client, inv: it.ev.Inv}))
				continue
			}
			req := c.nextReq.Add(1)
			c.register(req, pendingEntry{completes: []fabric.CompleteFunc{it.complete}})
			buf = c.countFrame(buf, encodeApply(applyReq{req: req, obj: it.ev.Object, client: it.ev.Client, inv: it.ev.Inv}))
		case outScan:
			req := c.nextReq.Add(1)
			entries := make([]scanEntry, len(it.ops))
			completes := make([]fabric.CompleteFunc, len(it.ops))
			for j, op := range it.ops {
				entries[j] = scanEntry{obj: op.Ev.Object, client: op.Ev.Client, op: op.Ev.Inv.Op}
				completes[j] = op.Complete
			}
			c.register(req, pendingEntry{completes: completes, scan: true})
			buf = c.countFrame(buf, encodeScan(nil, req, entries))
		}
		// Release references so the reused batch slice doesn't retain them.
		*it = outItem{}
	}
	return buf
}

// appendFrame appends one length-prefixed frame to the write buffer.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	return append(buf, payload...)
}

// countFrame is appendFrame plus the outbound frame counter; encodeBatch
// routes every frame through it so Stats reflects what hit the wire.
func (c *Client) countFrame(buf, payload []byte) []byte {
	c.framesOut.Add(1)
	return appendFrame(buf, payload)
}

// register records a pending request.
func (c *Client) register(req uint64, e pendingEntry) {
	c.mu.Lock()
	c.pending[req] = e
	c.mu.Unlock()
}

// take claims a pending request.
func (c *Client) take(req uint64) (pendingEntry, bool) {
	c.mu.Lock()
	e, ok := c.pending[req]
	if ok {
		delete(c.pending, req)
	}
	c.mu.Unlock()
	return e, ok
}

// readLoop matches responses to pending deliveries until the connection
// breaks.
func (c *Client) readLoop() {
	for {
		payload, err := readFrame(c.conn)
		if err != nil {
			c.fail()
			return
		}
		if len(payload) == 0 {
			c.fail()
			return
		}
		c.framesIn.Add(1)
		c.bytesIn.Add(uint64(len(payload)) + 4) // + the frame header
		switch payload[0] {
		case msgResp:
			r, err := decodeResp(payload[1:])
			if err != nil {
				c.fail()
				return
			}
			e, ok := c.take(r.req)
			if !ok {
				continue // response to an op a crash already discarded
			}
			rerr := respError(r)
			for _, complete := range e.completes {
				complete(r.resp, rerr)
			}
		case msgScanResp:
			req, results, err := decodeScanResp(payload[1:])
			if err != nil {
				c.fail()
				return
			}
			e, ok := c.take(req)
			if !ok {
				continue
			}
			if !e.scan || len(results) != len(e.completes) {
				c.fail()
				return // protocol violation: member count mismatch
			}
			for i, r := range results {
				e.completes[i](r.resp, respError(r))
			}
		default:
			c.fail()
			return
		}
	}
}

// respError rehydrates the canonical sentinel errors so errors.Is works
// across the wire.
func respError(r applyResp) error {
	switch r.status {
	case statusOK:
		return nil
	case statusWrongOp:
		return fmt.Errorf("%w: %s", baseobj.ErrWrongOp, r.msg)
	case statusUnauthorizedWriter:
		return fmt.Errorf("%w: %s", baseobj.ErrUnauthorizedWriter, r.msg)
	case statusUnknownObject:
		return fmt.Errorf("lanenet: %s", r.msg)
	default:
		return fmt.Errorf("lanenet: node error: %s", r.msg)
	}
}

// fail maps transport failure onto the fail-stop model: the lane stops
// delivering, discards every pending completion (those ops stay pending
// forever), and fires the crash hook so the fabric crashes the server. A
// deliberate Close skips the hook — tearing an environment down is not a
// crash.
func (c *Client) fail() {
	if !c.crashed.CompareAndSwap(false, true) {
		return
	}
	_ = c.conn.Close()
	c.mu.Lock()
	c.pending = make(map[uint64]pendingEntry)
	hook := c.hook
	c.mu.Unlock()
	if hook != nil && !c.closing.Load() {
		hook()
	}
}

// Crashed reports whether the lane's transport has failed.
func (c *Client) Crashed() bool { return c.crashed.Load() }

// Close implements fabric.Lane.
func (c *Client) Close() error {
	c.closing.Store(true)
	c.stopOnce.Do(func() { close(c.stop) })
	return c.conn.Close()
}
