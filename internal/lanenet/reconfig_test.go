package lanenet

import (
	"context"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/baseobj"
	"repro/internal/fabric"
	"repro/internal/types"
)

// TestPlaceFrameCarriesState pins the stateful placement semantics: a fresh
// placement materializes the object at the carried state (this IS the state
// transfer onto a replacement node), while a re-place of an existing object
// ignores the state — the node's copy is authoritative.
func TestPlaceFrameCarriesState(t *testing.T) {
	p := placeReq{obj: 7, kind: baseobj.KindMaxRegister, state: baseobj.State{Val: types.TSValue{TS: 3, Writer: 1, Val: 42}}}
	pd, err := decodePlace(encodePlace(p)[1:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pd.state, p.state) {
		t.Fatalf("place state round trip = %+v, want %+v", pd.state, p.state)
	}

	node := NewNode()
	tbl := node.table("")
	tbl.place(p)
	resp := tbl.apply(applyReq{req: 1, obj: 7, client: 0, inv: baseobj.Invocation{Op: baseobj.OpReadMax}})
	if resp.status != statusOK || resp.resp.Val.Val != 42 {
		t.Fatalf("read after stateful place = %+v, want val 42", resp)
	}
	// Re-placing must not roll the object back.
	tbl.place(placeReq{obj: 7, kind: baseobj.KindMaxRegister, state: baseobj.State{Val: types.TSValue{TS: 99, Val: -5}}})
	resp = tbl.apply(applyReq{req: 2, obj: 7, client: 0, inv: baseobj.Invocation{Op: baseobj.OpReadMax}})
	if resp.status != statusOK || resp.resp.Val.Val != 42 {
		t.Fatalf("read after re-place = %+v, want the original val 42", resp)
	}
}

// TestReplaceMigratesToFreshNode runs the full reconfiguration over the
// network lane: a register's authoritative state lives in a storage node,
// fabric.Replace reads it over the wire at the freeze point and re-places
// it — via a stateful place frame — on a different node dialed by a fresh
// client. The new session identity is the join.
func TestReplaceMigratesToFreshNode(t *testing.T) {
	fab, objs, _, oldNodes := netEnv(t, 3)
	if o := await(t, fab.Trigger(0, objs[0], baseobj.Invocation{Op: baseobj.OpWrite, Arg: types.TSValue{TS: 4, Writer: 0, Val: 77}})); o.Err != nil {
		t.Fatalf("write: %v", o.Err)
	}

	addrs, freshNodes := startNodes(t, 1)
	joiner, err := Dial(addrs[0], time.Second)
	if err != nil {
		t.Fatal(err)
	}
	maker := func(types.ServerID) fabric.Lane { return joiner }
	newID, err := fab.Replace(context.Background(), 0, maker)
	if err != nil {
		t.Fatalf("Replace: %v", err)
	}

	if s, err := fab.Cluster().Delta(objs[0]); err != nil || s != newID {
		t.Fatalf("Delta = %d, %v; want joiner %d", s, err, newID)
	}
	if o := await(t, fab.Trigger(1, objs[0], baseobj.Invocation{Op: baseobj.OpRead})); o.Err != nil || o.Resp.Val.Val != 77 {
		t.Fatalf("read after migration = %+v, want val 77 from the fresh node", o)
	}
	// The first routed op mirrored the object — with its transferred state —
	// onto the fresh node via a stateful place frame.
	if got := freshNodes[0].NumObjects(); got != 1 {
		t.Fatalf("fresh node hosts %d objects after the migration, want 1", got)
	}
	if o := await(t, fab.Trigger(0, objs[0], baseobj.Invocation{Op: baseobj.OpWrite, Arg: types.TSValue{TS: 5, Writer: 0, Val: 78}})); o.Err != nil {
		t.Fatalf("write after migration: %v", o.Err)
	}
	// The leave was clean: no server crashed, and the departed node's
	// connection closed without tripping reconnect-as-crash.
	if got := fab.Cluster().Crashes(); got != 0 {
		t.Fatalf("Crashes = %d after a clean replacement, want 0", got)
	}
	_ = oldNodes
}

// TestDrainFinishesInFlightThenLeaves pins the graceful-drain contract: a
// draining node answers the frames it already accepted (the response
// arrives, flushed, before the connection closes), refuses new
// connections, and Drain returns with every serving goroutine gone.
func TestDrainFinishesInFlightThenLeaves(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode()
	go node.Serve(l)

	c, err := Dial(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MirrorObject(baseobj.NewMaxRegister(1))
	deliver := func(tok uint64, inv baseobj.Invocation) fabric.Outcome {
		done := make(chan fabric.Outcome, 1)
		c.Deliver(fabric.TriggerEvent{Token: tok, Client: 0, Object: 1, Server: 0, Inv: inv},
			nil, func(resp baseobj.Response, err error) {
				done <- fabric.Outcome{Resp: resp, Err: err}
			})
		select {
		case o := <-done:
			return o
		case <-time.After(5 * time.Second):
			t.Fatal("delivery never completed")
			return fabric.Outcome{}
		}
	}
	if o := deliver(1, baseobj.Invocation{Op: baseobj.OpWriteMax, Arg: types.TSValue{TS: 1, Val: 5}}); o.Err != nil {
		t.Fatalf("write before drain: %v", o.Err)
	}

	// Clean leave: close the listener, then drain. The already-served
	// write must have been answered and flushed; afterwards the node
	// accepts nothing.
	l.Close()
	drained := make(chan struct{})
	go func() {
		node.Drain()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain never returned")
	}
	if _, err := Dial(l.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("dial succeeded after listener close + drain")
	}
}
