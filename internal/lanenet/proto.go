// Package lanenet is the network lane backend: a small length-prefixed TCP
// protocol between a fabric's per-server dispatch lanes and per-server
// storage nodes (cmd/lanenode), plus the node itself.
//
// The fabric side (Client) implements fabric.Lane: object placement is
// mirrored to the node on first route resolution (fabric.ObjectMirror),
// low-level invocations are framed requests matched to responses by a
// request id, and a broken connection is mapped onto the paper's fail-stop
// model through fabric.CrashReporter — the lane's server crashes, every
// in-flight and future operation on it becomes PhaseDropped, and nothing
// reconnects (reconnect-as-crash). That keeps the emulation-level quorum
// arguments exactly as strong over real sockets as over function calls: a
// construction tolerating f crashed servers tolerates f dead nodes.
//
// The node side (Node) is deliberately dumb storage: it hosts base objects
// keyed by cluster-wide object id and applies invocations atomically, in
// arrival order per connection. All adversarial behaviour (holds, releases,
// crashes) stays on the fabric side, where the Gate lives; the network
// contributes only genuine asynchrony.
package lanenet

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/baseobj"
	"repro/internal/types"
)

// Message types.
const (
	// msgPlace mirrors an object placement (client -> node, no reply).
	msgPlace byte = 1
	// msgApply requests one invocation (client -> node).
	msgApply byte = 2
	// msgResp answers one msgApply (node -> client).
	msgResp byte = 3
	// msgScan requests a whole all-read group answered from one consistent
	// snapshot (client -> node).
	msgScan byte = 4
	// msgScanResp answers one msgScan with per-member results in request
	// order (node -> client).
	msgScanResp byte = 5
	// msgBind switches the connection onto a named object table
	// (client -> node, no reply). One node process hosts several shards'
	// tables over one listener; a client that never binds stays on the
	// default table, so pre-bind peers interoperate unchanged.
	msgBind byte = 6
)

// Response statuses. Canonical base-object errors travel as codes so the
// client can rehydrate the sentinel errors tests match with errors.Is.
const (
	statusOK byte = iota
	statusWrongOp
	statusUnauthorizedWriter
	statusUnknownObject
	statusOther
)

// maxFrame bounds a frame so a corrupt length prefix cannot allocate
// unboundedly. Frames now carry real value payloads — a replicated
// 64 KiB read response, or a fragment store's whole pending set — so the
// bound admits several large stripes per frame with room to spare.
const maxFrame = 8 << 20

// placeReq is the decoded form of msgPlace.
type placeReq struct {
	obj     types.ObjectID
	kind    baseobj.Kind
	writers []types.ClientID
	// state is the object's full state at mirror time (TSValue plus
	// payload bytes plus fragments). A fresh placement is materialized at
	// this state, which is what carries transferred state onto a
	// replacement server's node; re-placements of an already-hosted
	// object ignore it (the node's copy is authoritative).
	state baseobj.State
}

// applyReq is the decoded form of msgApply.
type applyReq struct {
	req    uint64
	obj    types.ObjectID
	client types.ClientID
	inv    baseobj.Invocation
}

// applyResp is the decoded form of msgResp.
type applyResp struct {
	req    uint64
	status byte
	resp   baseobj.Response
	msg    string
}

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("lanenet: frame too large (%d bytes)", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("lanenet: oversized frame (%d bytes)", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// appendTSValue encodes a timestamped value (20 bytes).
func appendTSValue(b []byte, v types.TSValue) []byte {
	b = binary.BigEndian.AppendUint64(b, v.TS)
	b = binary.BigEndian.AppendUint32(b, uint32(v.Writer))
	b = binary.BigEndian.AppendUint64(b, uint64(v.Val))
	return b
}

// tsValueAt decodes a timestamped value at offset off.
func tsValueAt(b []byte, off int) (types.TSValue, int, error) {
	if len(b) < off+20 {
		return types.TSValue{}, 0, fmt.Errorf("lanenet: truncated ts-value")
	}
	v := types.TSValue{
		TS:     binary.BigEndian.Uint64(b[off:]),
		Writer: types.ClientID(int32(binary.BigEndian.Uint32(b[off+8:]))),
		Val:    types.Value(binary.BigEndian.Uint64(b[off+12:])),
	}
	return v, off + 20, nil
}

// appendPayload encodes a byte-slice payload: u32 length + bytes.
func appendPayload(b []byte, p types.Payload) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

// payloadAt decodes a payload at offset off. Empty payloads decode to
// nil so payload-free frames stay allocation-free.
func payloadAt(b []byte, off int) (types.Payload, int, error) {
	if len(b) < off+4 {
		return nil, 0, fmt.Errorf("lanenet: truncated payload length")
	}
	n := int(binary.BigEndian.Uint32(b[off:]))
	off += 4
	if n > maxFrame || len(b) < off+n {
		return nil, 0, fmt.Errorf("lanenet: truncated payload (%d bytes)", n)
	}
	if n == 0 {
		return nil, off, nil
	}
	p := make(types.Payload, n)
	copy(p, b[off:off+n])
	return p, off + n, nil
}

// appendFragment encodes one erasure-coded fragment: TSValue (20) +
// index u16 + k u16 + stripe length u32 + committed flag + payload.
func appendFragment(b []byte, f baseobj.Fragment) []byte {
	b = appendTSValue(b, f.TS)
	b = binary.BigEndian.AppendUint16(b, uint16(f.Index))
	b = binary.BigEndian.AppendUint16(b, uint16(f.K))
	b = binary.BigEndian.AppendUint32(b, uint32(f.Length))
	committed := byte(0)
	if f.Committed {
		committed = 1
	}
	b = append(b, committed)
	return appendPayload(b, f.Data)
}

// fragmentAt decodes one fragment at offset off.
func fragmentAt(b []byte, off int) (baseobj.Fragment, int, error) {
	var f baseobj.Fragment
	var err error
	if f.TS, off, err = tsValueAt(b, off); err != nil {
		return f, 0, err
	}
	if len(b) < off+9 {
		return f, 0, fmt.Errorf("lanenet: truncated fragment header")
	}
	f.Index = int(binary.BigEndian.Uint16(b[off:]))
	f.K = int(binary.BigEndian.Uint16(b[off+2:]))
	f.Length = int(binary.BigEndian.Uint32(b[off+4:]))
	f.Committed = b[off+8] == 1
	if f.Data, off, err = payloadAt(b, off+9); err != nil {
		return f, 0, err
	}
	return f, off, nil
}

// appendFragList encodes a fragment list: u16 count + fragments.
func appendFragList(b []byte, frags []baseobj.Fragment) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(frags)))
	for _, f := range frags {
		b = appendFragment(b, f)
	}
	return b
}

// fragListAt decodes a fragment list at offset off.
func fragListAt(b []byte, off int) ([]baseobj.Fragment, int, error) {
	if len(b) < off+2 {
		return nil, 0, fmt.Errorf("lanenet: truncated fragment list")
	}
	n := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	if n == 0 {
		return nil, off, nil
	}
	frags := make([]baseobj.Fragment, n)
	var err error
	for i := 0; i < n; i++ {
		if frags[i], off, err = fragmentAt(b, off); err != nil {
			return nil, 0, err
		}
	}
	return frags, off, nil
}

// encodePlace encodes a msgPlace payload.
func encodePlace(p placeReq) []byte {
	b := make([]byte, 0, 8+4*len(p.writers)+20+8+len(p.state.Data))
	b = append(b, msgPlace)
	b = binary.BigEndian.AppendUint32(b, uint32(p.obj))
	b = append(b, byte(p.kind))
	b = binary.BigEndian.AppendUint16(b, uint16(len(p.writers)))
	for _, w := range p.writers {
		b = binary.BigEndian.AppendUint32(b, uint32(w))
	}
	b = appendTSValue(b, p.state.Val)
	b = appendPayload(b, p.state.Data)
	return appendFragList(b, p.state.Frags)
}

// decodePlace decodes a msgPlace payload (after the type byte).
func decodePlace(b []byte) (placeReq, error) {
	if len(b) < 7 {
		return placeReq{}, fmt.Errorf("lanenet: truncated place")
	}
	p := placeReq{
		obj:  types.ObjectID(int32(binary.BigEndian.Uint32(b))),
		kind: baseobj.Kind(b[4]),
	}
	n := int(binary.BigEndian.Uint16(b[5:]))
	if len(b) < 7+4*n+20 {
		return placeReq{}, fmt.Errorf("lanenet: truncated place writer set")
	}
	for i := 0; i < n; i++ {
		p.writers = append(p.writers, types.ClientID(int32(binary.BigEndian.Uint32(b[7+4*i:]))))
	}
	var err error
	off := 7 + 4*n
	if p.state.Val, off, err = tsValueAt(b, off); err != nil {
		return placeReq{}, err
	}
	if p.state.Data, off, err = payloadAt(b, off); err != nil {
		return placeReq{}, err
	}
	if p.state.Frags, _, err = fragListAt(b, off); err != nil {
		return placeReq{}, err
	}
	return p, nil
}

// encodeApply encodes a msgApply payload: the fixed header and TSValue
// arguments, the invocation payload, and (for OpPutFrag) the fragment,
// flagged by a presence byte.
func encodeApply(a applyReq) []byte {
	size := 1 + 8 + 4 + 4 + 1 + 3*20 + 4 + len(a.inv.Data) + 1
	if a.inv.Frag != nil {
		size += 33 + len(a.inv.Frag.Data)
	}
	b := make([]byte, 0, size)
	b = append(b, msgApply)
	b = binary.BigEndian.AppendUint64(b, a.req)
	b = binary.BigEndian.AppendUint32(b, uint32(a.obj))
	b = binary.BigEndian.AppendUint32(b, uint32(a.client))
	b = append(b, byte(a.inv.Op))
	b = appendTSValue(b, a.inv.Arg)
	b = appendTSValue(b, a.inv.Exp)
	b = appendTSValue(b, a.inv.New)
	b = appendPayload(b, a.inv.Data)
	if a.inv.Frag == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	return appendFragment(b, *a.inv.Frag)
}

// decodeApply decodes a msgApply payload (after the type byte).
func decodeApply(b []byte) (applyReq, error) {
	if len(b) < 8+4+4+1+3*20 {
		return applyReq{}, fmt.Errorf("lanenet: truncated apply")
	}
	a := applyReq{
		req:    binary.BigEndian.Uint64(b),
		obj:    types.ObjectID(int32(binary.BigEndian.Uint32(b[8:]))),
		client: types.ClientID(int32(binary.BigEndian.Uint32(b[12:]))),
	}
	a.inv.Op = baseobj.OpCode(b[16])
	var err error
	off := 17
	if a.inv.Arg, off, err = tsValueAt(b, off); err != nil {
		return applyReq{}, err
	}
	if a.inv.Exp, off, err = tsValueAt(b, off); err != nil {
		return applyReq{}, err
	}
	if a.inv.New, off, err = tsValueAt(b, off); err != nil {
		return applyReq{}, err
	}
	if a.inv.Data, off, err = payloadAt(b, off); err != nil {
		return applyReq{}, err
	}
	if len(b) < off+1 {
		return applyReq{}, fmt.Errorf("lanenet: truncated apply fragment flag")
	}
	if b[off] == 1 {
		var f baseobj.Fragment
		if f, _, err = fragmentAt(b, off+1); err != nil {
			return applyReq{}, err
		}
		a.inv.Frag = &f
	}
	return a, nil
}

// respBodySize returns the encoded size of one response body (shared by
// msgResp and msgScanResp members), after clipping the diagnostic text.
func respBodySize(r *applyResp) int {
	if len(r.msg) > 1024 {
		r.msg = r.msg[:1024]
	}
	size := 1 + 1 + 20 + 2 + len(r.msg) + 4 + len(r.resp.Data) + 2
	for _, f := range r.resp.Frags {
		size += 33 + len(f.Data)
	}
	return size
}

// appendRespBody encodes one response body: status, op, TSValue, message,
// payload bytes, fragment list.
func appendRespBody(b []byte, r applyResp) []byte {
	b = append(b, r.status, byte(r.resp.Op))
	b = appendTSValue(b, r.resp.Val)
	b = binary.BigEndian.AppendUint16(b, uint16(len(r.msg)))
	b = append(b, r.msg...)
	b = appendPayload(b, r.resp.Data)
	return appendFragList(b, r.resp.Frags)
}

// respBodyAt decodes one response body at offset off.
func respBodyAt(b []byte, off int) (applyResp, int, error) {
	if len(b) < off+2+20+2 {
		return applyResp{}, 0, fmt.Errorf("lanenet: truncated response body")
	}
	r := applyResp{status: b[off]}
	r.resp.Op = baseobj.OpCode(b[off+1])
	var err error
	if r.resp.Val, off, err = tsValueAt(b, off+2); err != nil {
		return applyResp{}, 0, err
	}
	if len(b) < off+2 {
		return applyResp{}, 0, fmt.Errorf("lanenet: truncated response message length")
	}
	m := int(binary.BigEndian.Uint16(b[off:]))
	if len(b) < off+2+m {
		return applyResp{}, 0, fmt.Errorf("lanenet: truncated response message")
	}
	r.msg = string(b[off+2 : off+2+m])
	off += 2 + m
	if r.resp.Data, off, err = payloadAt(b, off); err != nil {
		return applyResp{}, 0, err
	}
	if r.resp.Frags, off, err = fragListAt(b, off); err != nil {
		return applyResp{}, 0, err
	}
	return r, off, nil
}

// encodeResp encodes a msgResp payload. Error text is diagnostic only and
// is clipped so a pathological message cannot blow the frame bound.
func encodeResp(r applyResp) []byte {
	b := make([]byte, 0, 1+8+respBodySize(&r))
	b = append(b, msgResp)
	b = binary.BigEndian.AppendUint64(b, r.req)
	return appendRespBody(b, r)
}

// scanEntry is one member of a msgScan request: a read invocation addressed
// by object. Reads carry no arguments, so the op code is the whole
// invocation.
type scanEntry struct {
	obj    types.ObjectID
	client types.ClientID
	op     baseobj.OpCode
}

// encodeScan encodes a msgScan payload: one request id for the whole group
// plus 9 bytes per member. b, when non-nil, is the reused destination
// buffer.
func encodeScan(b []byte, req uint64, ops []scanEntry) []byte {
	b = append(b, msgScan)
	b = binary.BigEndian.AppendUint64(b, req)
	b = binary.BigEndian.AppendUint16(b, uint16(len(ops)))
	for _, e := range ops {
		b = binary.BigEndian.AppendUint32(b, uint32(e.obj))
		b = binary.BigEndian.AppendUint32(b, uint32(e.client))
		b = append(b, byte(e.op))
	}
	return b
}

// decodeScan decodes a msgScan payload (after the type byte).
func decodeScan(b []byte) (uint64, []scanEntry, error) {
	if len(b) < 10 {
		return 0, nil, fmt.Errorf("lanenet: truncated scan")
	}
	req := binary.BigEndian.Uint64(b)
	n := int(binary.BigEndian.Uint16(b[8:]))
	if len(b) < 10+9*n {
		return 0, nil, fmt.Errorf("lanenet: truncated scan member list")
	}
	ops := make([]scanEntry, n)
	for i := 0; i < n; i++ {
		off := 10 + 9*i
		ops[i] = scanEntry{
			obj:    types.ObjectID(int32(binary.BigEndian.Uint32(b[off:]))),
			client: types.ClientID(int32(binary.BigEndian.Uint32(b[off+4:]))),
			op:     baseobj.OpCode(b[off+8]),
		}
	}
	return req, ops, nil
}

// encodeScanResp encodes a msgScanResp payload: the group's request id plus
// per-member results in request order.
func encodeScanResp(req uint64, results []applyResp) []byte {
	size := 1 + 8 + 2
	for i := range results {
		size += respBodySize(&results[i])
	}
	b := make([]byte, 0, size)
	b = append(b, msgScanResp)
	b = binary.BigEndian.AppendUint64(b, req)
	b = binary.BigEndian.AppendUint16(b, uint16(len(results)))
	for _, r := range results {
		b = appendRespBody(b, r)
	}
	return b
}

// decodeScanResp decodes a msgScanResp payload (after the type byte).
func decodeScanResp(b []byte) (uint64, []applyResp, error) {
	if len(b) < 10 {
		return 0, nil, fmt.Errorf("lanenet: truncated scan response")
	}
	req := binary.BigEndian.Uint64(b)
	n := int(binary.BigEndian.Uint16(b[8:]))
	results := make([]applyResp, 0, n)
	off := 10
	for i := 0; i < n; i++ {
		r, next, err := respBodyAt(b, off)
		if err != nil {
			return 0, nil, fmt.Errorf("lanenet: scan result %d: %w", i, err)
		}
		r.req = req
		off = next
		results = append(results, r)
	}
	return req, results, nil
}

// encodeBind encodes a msgBind payload.
func encodeBind(table string) []byte {
	b := make([]byte, 0, 3+len(table))
	b = append(b, msgBind)
	b = binary.BigEndian.AppendUint16(b, uint16(len(table)))
	return append(b, table...)
}

// decodeBind decodes a msgBind payload (after the type byte).
func decodeBind(b []byte) (string, error) {
	if len(b) < 2 {
		return "", fmt.Errorf("lanenet: truncated bind")
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+n {
		return "", fmt.Errorf("lanenet: truncated bind table name")
	}
	return string(b[2 : 2+n]), nil
}

// decodeResp decodes a msgResp payload (after the type byte).
func decodeResp(b []byte) (applyResp, error) {
	if len(b) < 8 {
		return applyResp{}, fmt.Errorf("lanenet: truncated response")
	}
	r, _, err := respBodyAt(b, 8)
	if err != nil {
		return applyResp{}, err
	}
	r.req = binary.BigEndian.Uint64(b)
	return r, nil
}
