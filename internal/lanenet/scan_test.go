package lanenet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/baseobj"
	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/types"
)

// scanNetEnv builds a single-node cluster hosting k registers behind TCP
// lanes — the shape a remote snapshot scan must read as one consistent cut.
func scanNetEnv(t *testing.T, k int, opts ...ClientOption) (*fabric.Fabric, []types.ObjectID, []*Client) {
	t.Helper()
	addrs, _ := startNodes(t, 1)
	maker, clients, err := Lanes(addrs, time.Second, opts...)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(1)
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]types.ObjectID, k)
	for i := range objs {
		obj, err := c.PlaceRegister(0)
		if err != nil {
			t.Fatal(err)
		}
		objs[i] = obj
	}
	fab := fabric.New(c, fabric.WithLanes(maker))
	t.Cleanup(func() { fab.Close() })
	return fab, objs, clients
}

// awaitNetScan triggers one snapshot scan over objs and returns the
// observed timestamps in placement order.
func awaitNetScan(t *testing.T, fab *fabric.Fabric, client types.ClientID, objs []types.ObjectID) []uint64 {
	t.Helper()
	ts := make([]uint64, len(objs))
	var wg sync.WaitGroup
	wg.Add(len(objs))
	ops := make([]fabric.BatchOp, len(objs))
	for i, obj := range objs {
		i := i
		ops[i] = fabric.BatchOp{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpRead}, Done: func(o fabric.Outcome) {
			if o.Err != nil {
				t.Errorf("scan read: %v", o.Err)
			}
			ts[i] = o.Resp.Val.TS
			wg.Done()
		}}
	}
	fab.TriggerScan(client, ops)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("remote scan never completed")
	}
	return ts
}

// TestTCPLaneScanSnapshotNoTornReads is the torn-scan regression over the
// wire: a writer bumps the node's registers to round r in placement order,
// so at every instant the stored timestamps are non-increasing along that
// order. Concurrent msgScan snapshots — applied under the node's exclusive
// lock — must never observe the torn shape, even though each scan travels
// as one pipelined frame among many in-flight requests.
func TestTCPLaneScanSnapshotNoTornReads(t *testing.T) {
	const k, rounds, scanners = 4, 25, 4
	fab, objs, _ := scanNetEnv(t, k)

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for r := 1; r <= rounds; r++ {
			for _, obj := range objs {
				o := await(t, fab.Trigger(0, obj, baseobj.Invocation{
					Op:  baseobj.OpWrite,
					Arg: types.TSValue{TS: uint64(r), Writer: 0, Val: types.Value(r)},
				}))
				if o.Err != nil {
					t.Errorf("write round %d: %v", r, o.Err)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for s := 0; s < scanners; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			client := types.ClientID(s + 1)
			for {
				select {
				case <-writerDone:
					return
				default:
				}
				ts := awaitNetScan(t, fab, client, objs)
				for i := 1; i < len(ts); i++ {
					if ts[i] > ts[i-1] {
						t.Errorf("torn remote scan: %v (register %d ahead of %d)", ts, i, i-1)
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
}

// TestTCPLaneCrashBetweenDequeueAndWrite severs the connection inside the
// flusher's window between dequeuing a batch holding a scan and writing its
// frames: the write fails, the lane crashes, and the scan's ops must never
// complete — the remote twin of the event loop's dequeue-window crash.
func TestTCPLaneCrashBetweenDequeueAndWrite(t *testing.T) {
	addrs, _ := startNodes(t, 1)
	maker, clients, err := Lanes(addrs, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Install the hook before anything can queue: it fires on every flush
	// but only severs the transport once armed.
	var armed atomic.Bool
	clients[0].testHook = func() {
		if armed.Load() {
			clients[0].conn.Close()
		}
	}

	c, err := cluster.New(1)
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]types.ObjectID, 3)
	for i := range objs {
		obj, err := c.PlaceRegister(0)
		if err != nil {
			t.Fatal(err)
		}
		objs[i] = obj
	}
	fab := fabric.New(c, fabric.WithLanes(maker))
	t.Cleanup(func() { fab.Close() })

	// Warm every route so the scan batch holds no placements.
	for _, obj := range objs {
		if o := await(t, fab.Trigger(0, obj, baseobj.Invocation{Op: baseobj.OpRead})); o.Err != nil {
			t.Fatal(o.Err)
		}
	}

	armed.Store(true)
	ops := make([]fabric.BatchOp, len(objs))
	for i, obj := range objs {
		ops[i] = fabric.BatchOp{Object: obj, Inv: baseobj.Invocation{Op: baseobj.OpRead}}
	}
	calls := fab.TriggerScan(1, ops)

	deadline := time.Now().Add(5 * time.Second)
	for fab.Cluster().Crashes() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("severed write never crashed the server")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	for i, call := range calls {
		if o, ok := call.Outcome(); ok {
			t.Fatalf("scan op %d completed %+v after crash in the flush window", i, o)
		}
	}
}

// TestTCPLanePipelinedReadsCoalesce: reads of the same object queued within
// the flush window collapse onto one wire request, and the single response
// answers every caller correctly.
func TestTCPLanePipelinedReadsCoalesce(t *testing.T) {
	fab, objs, clients := scanNetEnv(t, 1, WithFlushWindow(2*time.Millisecond))
	o := await(t, fab.Trigger(0, objs[0], baseobj.Invocation{
		Op:  baseobj.OpWrite,
		Arg: types.TSValue{TS: 1, Writer: 0, Val: 42},
	}))
	if o.Err != nil {
		t.Fatalf("write: %v", o.Err)
	}

	const readers = 16
	var wg sync.WaitGroup
	var bad atomic.Int64
	wg.Add(readers)
	for i := 0; i < readers; i++ {
		fab.TriggerFn(types.ClientID(i+1), objs[0], baseobj.Invocation{Op: baseobj.OpRead}, func(o fabric.Outcome) {
			if o.Err != nil || o.Resp.Val.Val != 42 {
				bad.Add(1)
			}
			wg.Done()
		})
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pipelined reads never completed")
	}
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d coalesced reads returned the wrong value", n)
	}
	if clients[0].CoalescedReads() == 0 {
		t.Fatal("no reads coalesced: 16 same-object reads in one flush window should share a request")
	}
	t.Logf("coalesced %d of %d reads", clients[0].CoalescedReads(), readers)
}

// TestTCPLanePipelineManyInFlight floods one connection with concurrent
// writes — all multiplexed by request ID over the single pipelined socket —
// and checks the register converges on the highest timestamp.
func TestTCPLanePipelineManyInFlight(t *testing.T) {
	fab, objs, _ := scanNetEnv(t, 1)
	const writers = 64
	var wg sync.WaitGroup
	var failed atomic.Int64
	wg.Add(writers)
	for i := 1; i <= writers; i++ {
		fab.TriggerFn(0, objs[0], baseobj.Invocation{
			Op:  baseobj.OpWrite,
			Arg: types.TSValue{TS: uint64(i), Writer: 0, Val: types.Value(i)},
		}, func(o fabric.Outcome) {
			if o.Err != nil {
				failed.Add(1)
			}
			wg.Done()
		})
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pipelined writes never completed")
	}
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d pipelined writes failed", n)
	}
	o := await(t, fab.Trigger(1, objs[0], baseobj.Invocation{Op: baseobj.OpRead}))
	if o.Err != nil || o.Resp.Val.TS != writers {
		t.Fatalf("read after %d pipelined writes = %+v, want TS %d", writers, o, writers)
	}
}
