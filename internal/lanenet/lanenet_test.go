package lanenet

import (
	"errors"
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/baseobj"
	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/types"
)

// startNodes starts n in-process storage nodes on ephemeral ports and
// returns their addresses. The protocol and node code are identical to
// cmd/lanenode; the process-level path is covered by the runner's TCP
// chaos suite.
func startNodes(t *testing.T, n int) ([]string, []*Node) {
	t.Helper()
	addrs := make([]string, n)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		node := NewNode()
		go node.Serve(l)
		addrs[i] = l.Addr().String()
		nodes[i] = node
	}
	return addrs, nodes
}

// netEnv builds an n-server cluster with one register per server and a
// fabric whose lanes speak TCP to the started nodes.
func netEnv(t *testing.T, n int) (*fabric.Fabric, []types.ObjectID, []*Client, []*Node) {
	t.Helper()
	addrs, nodes := startNodes(t, n)
	maker, clients, err := Lanes(addrs, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(n)
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]types.ObjectID, n)
	for s := 0; s < n; s++ {
		obj, err := c.PlaceRegister(types.ServerID(s))
		if err != nil {
			t.Fatal(err)
		}
		objs[s] = obj
	}
	fab := fabric.New(c, fabric.WithLanes(maker))
	t.Cleanup(func() { fab.Close() })
	return fab, objs, clients, nodes
}

// await blocks until the call completes or times out.
func await(t *testing.T, call *fabric.Call) fabric.Outcome {
	t.Helper()
	done := make(chan fabric.Outcome, 1)
	call.OnComplete(func(o fabric.Outcome) { done <- o })
	select {
	case o := <-done:
		return o
	case <-time.After(5 * time.Second):
		t.Fatalf("call %d never completed over the network lane", call.Token())
		return fabric.Outcome{}
	}
}

// TestProtoRoundTrip pins the wire encoding of every message type.
func TestProtoRoundTrip(t *testing.T) {
	p := placeReq{obj: 7, kind: baseobj.KindRegister, writers: []types.ClientID{0, 3}}
	pd, err := decodePlace(encodePlace(p)[1:])
	if err != nil {
		t.Fatal(err)
	}
	if pd.obj != p.obj || pd.kind != p.kind || len(pd.writers) != 2 || pd.writers[1] != 3 {
		t.Fatalf("place round trip = %+v, want %+v", pd, p)
	}

	a := applyReq{
		req: 42, obj: 7, client: 3,
		inv: baseobj.Invocation{
			Op:  baseobj.OpCAS,
			Arg: types.TSValue{TS: 1, Writer: 2, Val: 3},
			Exp: types.TSValue{TS: 4, Writer: -1, Val: -9},
			New: types.TSValue{TS: 5, Writer: 0, Val: 11},
		},
	}
	ad, err := decodeApply(encodeApply(a)[1:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ad, a) {
		t.Fatalf("apply round trip = %+v, want %+v", ad, a)
	}

	r := applyResp{req: 42, status: statusOther, resp: baseobj.Response{Op: baseobj.OpCAS, Val: a.inv.Exp}, msg: "boom"}
	rd, err := decodeResp(encodeResp(r)[1:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rd, r) {
		t.Fatalf("resp round trip = %+v, want %+v", rd, r)
	}
}

// TestProtoPayloadRoundTrip pins the wire encoding of the payload- and
// fragment-carrying message extensions added for coded storage.
func TestProtoPayloadRoundTrip(t *testing.T) {
	frag := baseobj.Fragment{
		TS:        types.TSValue{TS: 9, Writer: 2, Val: 77},
		Index:     3,
		K:         3,
		Length:    1 << 16,
		Committed: true,
		Data:      types.Payload{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4},
	}

	// Apply carrying a write payload.
	a := applyReq{
		req: 1, obj: 5, client: 2,
		inv: baseobj.Invocation{
			Op:   baseobj.OpWrite,
			Arg:  types.TSValue{TS: 3, Writer: 2, Val: 44},
			Data: types.PayloadFor(44, 64),
		},
	}
	ad, err := decodeApply(encodeApply(a)[1:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ad, a) {
		t.Fatalf("payload apply round trip = %+v, want %+v", ad, a)
	}

	// Apply carrying a fragment put.
	af := applyReq{
		req: 2, obj: 5, client: 2,
		inv: baseobj.Invocation{Op: baseobj.OpPutFrag, Frag: &frag},
	}
	afd, err := decodeApply(encodeApply(af)[1:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(afd, af) {
		t.Fatalf("fragment apply round trip = %+v, want %+v", afd, af)
	}

	// Response carrying payload bytes and a fragment list.
	pending := frag
	pending.Committed = false
	pending.Index = 4
	r := applyResp{
		req: 3, status: statusOK,
		resp: baseobj.Response{
			Op:    baseobj.OpGetFrags,
			Val:   types.TSValue{TS: 9, Writer: 2, Val: 77},
			Data:  types.PayloadFor(77, 32),
			Frags: []baseobj.Fragment{frag, pending},
		},
	}
	rd, err := decodeResp(encodeResp(r)[1:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rd, r) {
		t.Fatalf("fragment resp round trip = %+v, want %+v", rd, r)
	}

	// Placement carrying full transferred state.
	p := placeReq{
		obj: 7, kind: baseobj.KindFragStore,
		state: baseobj.State{
			Val:   types.TSValue{TS: 9, Writer: 2, Val: 77},
			Data:  types.PayloadFor(77, 16),
			Frags: []baseobj.Fragment{frag},
		},
	}
	pd, err := decodePlace(encodePlace(p)[1:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pd, p) {
		t.Fatalf("state place round trip = %+v, want %+v", pd, p)
	}
}

// TestNetworkLaneReadYourWrite drives real read/write traffic through TCP
// lanes: state lives in the nodes, not the local cluster objects.
func TestNetworkLaneReadYourWrite(t *testing.T) {
	fab, objs, _, nodes := netEnv(t, 3)
	w := fab.Trigger(0, objs[1], baseobj.Invocation{Op: baseobj.OpWrite, Arg: types.TSValue{TS: 1, Writer: 0, Val: 10}})
	if o := await(t, w); o.Err != nil {
		t.Fatalf("write: %v", o.Err)
	}
	r := fab.Trigger(1, objs[1], baseobj.Invocation{Op: baseobj.OpRead})
	if o := await(t, r); o.Err != nil || o.Resp.Val.Val != 10 {
		t.Fatalf("read = %+v, want 10", o)
	}
	// The authoritative object lives remotely: exactly one object was
	// mirrored to node 1, none elsewhere.
	if nodes[1].NumObjects() != 1 || nodes[0].NumObjects() != 0 {
		t.Fatalf("node objects = [%d %d %d], want [0 1 0]",
			nodes[0].NumObjects(), nodes[1].NumObjects(), nodes[2].NumObjects())
	}
	// And the local mirror object was never applied to.
	obj, err := fab.Cluster().Object(objs[1])
	if err != nil {
		t.Fatal(err)
	}
	if got := obj.Peek(); got != types.ZeroTSValue {
		t.Fatalf("local mirror mutated: %v (state must live in the node)", got)
	}
}

// TestNetworkLaneProtocolErrorsRoundTrip: canonical base-object errors
// must survive the wire so errors.Is keeps working.
func TestNetworkLaneProtocolErrorsRoundTrip(t *testing.T) {
	addrs, _ := startNodes(t, 1)
	maker, _, err := Lanes(addrs, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(1)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := c.PlaceRegister(0, baseobj.WithWriters([]types.ClientID{0}))
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(c, fabric.WithLanes(maker))
	t.Cleanup(func() { fab.Close() })

	// Client 5 is not in the writer set: the remote register must enforce
	// the mirrored bound.
	o := await(t, fab.Trigger(5, obj, baseobj.Invocation{Op: baseobj.OpWrite, Arg: types.TSValue{TS: 1, Writer: 5}}))
	if !errors.Is(o.Err, baseobj.ErrUnauthorizedWriter) {
		t.Fatalf("unauthorized write err = %v, want ErrUnauthorizedWriter", o.Err)
	}
	// Wrong op kind round-trips too.
	o = await(t, fab.Trigger(0, obj, baseobj.Invocation{Op: baseobj.OpCAS}))
	if !errors.Is(o.Err, baseobj.ErrWrongOp) {
		t.Fatalf("wrong-op err = %v, want ErrWrongOp", o.Err)
	}
}

// TestDisconnectIsCrash is the reconnect-as-crash test: severing a node's
// connection mid-run must crash that server on the fabric — in-flight ops
// become PhaseDropped and stay pending forever — while quorums over the
// surviving servers keep completing.
func TestDisconnectIsCrash(t *testing.T) {
	fab, objs, clients, _ := netEnv(t, 3)
	// Warm every route (mirrors objects) with one read per server.
	for _, obj := range objs {
		if o := await(t, fab.Trigger(0, obj, baseobj.Invocation{Op: baseobj.OpRead})); o.Err != nil {
			t.Fatal(o.Err)
		}
	}

	// Sever server 2's connection, then trigger on it.
	if err := clients[2].conn.Close(); err != nil {
		t.Fatal(err)
	}
	late := fab.Trigger(0, objs[2], baseobj.Invocation{Op: baseobj.OpWrite, Arg: types.TSValue{TS: 1, Writer: 0, Val: 5}})

	// The crash hook fires from the read loop; wait for the fabric to
	// observe it.
	deadline := time.Now().Add(5 * time.Second)
	for fab.Cluster().Crashes() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("disconnect never crashed the server")
		}
		time.Sleep(time.Millisecond)
	}
	if !clients[2].Crashed() {
		t.Fatal("client lane not marked crashed")
	}

	// The late op must never complete (dropped or never delivered), and
	// must be visible as pending.
	time.Sleep(10 * time.Millisecond)
	if _, ok := late.Outcome(); ok {
		t.Fatal("op on disconnected lane completed")
	}

	// The other servers still serve a quorum.
	for _, obj := range objs[:2] {
		if o := await(t, fab.Trigger(1, obj, baseobj.Invocation{Op: baseobj.OpRead})); o.Err != nil {
			t.Fatalf("surviving server read: %v", o.Err)
		}
	}
}

// TestNodeDeathBeforeHookInstallStillCrashes covers the wiring race: the
// node dies after Dial but before the fabric installs the crash hook. The
// late-installed hook must still fire, so the fabric observes the crash
// instead of treating a dead node as a live server with ops in flight.
func TestNodeDeathBeforeHookInstallStillCrashes(t *testing.T) {
	addrs, _ := startNodes(t, 1)
	maker, clients, err := Lanes(addrs, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Sever the transport and wait until the read loop marks the lane
	// crashed — all before any fabric exists.
	clients[0].conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for !clients[0].Crashed() {
		if time.Now().After(deadline) {
			t.Fatal("lane never observed the severed transport")
		}
		time.Sleep(time.Millisecond)
	}
	c, err := cluster.New(1)
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(c, fabric.WithLanes(maker))
	t.Cleanup(func() { fab.Close() })
	if got := fab.Cluster().Crashes(); got != 1 {
		t.Fatalf("crashes after wiring a dead lane = %d, want 1", got)
	}
}

// TestCrashDuringRemoteScan mirrors the regemu crash-during-scan semantics
// onto the network lane: ops in flight to a node when its connection dies
// are dropped, so a gather can never count them.
func TestCrashDuringRemoteScan(t *testing.T) {
	fab, objs, clients, _ := netEnv(t, 3)
	for _, obj := range objs {
		if o := await(t, fab.Trigger(0, obj, baseobj.Invocation{Op: baseobj.OpRead})); o.Err != nil {
			t.Fatal(o.Err)
		}
	}
	// Kill server 0's transport and immediately scatter reads everywhere:
	// server 0's reads must stay pending, others must respond.
	clients[0].conn.Close()
	calls := fab.TriggerBatch(1, []fabric.BatchOp{
		{Object: objs[0], Inv: baseobj.Invocation{Op: baseobj.OpRead}},
		{Object: objs[1], Inv: baseobj.Invocation{Op: baseobj.OpRead}},
		{Object: objs[2], Inv: baseobj.Invocation{Op: baseobj.OpRead}},
	})
	if o := await(t, calls[1]); o.Err != nil {
		t.Fatal(o.Err)
	}
	if o := await(t, calls[2]); o.Err != nil {
		t.Fatal(o.Err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for fab.Cluster().Crashes() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("disconnect never crashed the server")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	if _, ok := calls[0].Outcome(); ok {
		t.Fatal("scan op on dead server completed")
	}
}

// TestMultiTableNode hosts two independent single-server environments on
// ONE storage node through named tables: both fabrics' object ids start at
// zero, so without the per-connection table bind their placements would
// collide in the node's object map. Each table must see only its own
// shard's writes.
func TestMultiTableNode(t *testing.T) {
	addrs, nodes := startNodes(t, 1)
	vals := []types.Value{10, 20}
	for shard := 0; shard < 2; shard++ {
		client, err := Dial(addrs[0], time.Second, WithTable(fmt.Sprintf("s%d", shard)))
		if err != nil {
			t.Fatal(err)
		}
		c, err := cluster.New(1)
		if err != nil {
			t.Fatal(err)
		}
		obj, err := c.PlaceRegister(0)
		if err != nil {
			t.Fatal(err)
		}
		if obj != 0 {
			t.Fatalf("shard %d object id = %d, want 0 (the collision under test)", shard, obj)
		}
		fab := fabric.New(c, fabric.WithLanes(func(types.ServerID) fabric.Lane { return client }))
		t.Cleanup(func() { fab.Close() })
		v := types.TSValue{TS: 1, Writer: 0, Val: vals[shard]}
		if o := await(t, fab.Trigger(0, obj, baseobj.Invocation{Op: baseobj.OpWrite, Arg: v})); o.Err != nil {
			t.Fatalf("shard %d write: %v", shard, o.Err)
		}
		if o := await(t, fab.Trigger(0, obj, baseobj.Invocation{Op: baseobj.OpRead})); o.Err != nil || o.Resp.Val.Val != vals[shard] {
			t.Fatalf("shard %d read = %+v, want %d", shard, o, vals[shard])
		}
	}
	// Both shards' object 0 coexist: one per table, never merged.
	if got := nodes[0].NumObjects(); got != 2 {
		t.Fatalf("node hosts %d objects, want 2 (one per table)", got)
	}
	if got := nodes[0].NumTables(); got != 3 {
		t.Fatalf("node has %d tables, want 3 (default + 2 shard tables)", got)
	}
}

// TestBindRoundTrip pins the msgBind wire encoding.
func TestBindRoundTrip(t *testing.T) {
	for _, name := range []string{"", "s0", "shard-17"} {
		got, err := decodeBind(encodeBind(name)[1:])
		if err != nil {
			t.Fatal(err)
		}
		if got != name {
			t.Fatalf("bind round trip = %q, want %q", got, name)
		}
	}
	if _, err := decodeBind([]byte{0, 5, 'x'}); err == nil {
		t.Fatal("truncated bind decoded without error")
	}
}
