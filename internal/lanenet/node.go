package lanenet

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/baseobj"
	"repro/internal/types"
)

// Node is one server's storage: it hosts base objects keyed by their
// cluster-wide id and applies invocations atomically. A node is the remote
// half of exactly one fault domain — run one node process per server, so
// killing a process is the paper's server crash.
type Node struct {
	mu      sync.RWMutex
	objects map[types.ObjectID]baseobj.Object
}

// NewNode creates an empty storage node.
func NewNode() *Node {
	return &Node{objects: make(map[types.ObjectID]baseobj.Object)}
}

// NumObjects returns the number of hosted objects.
func (n *Node) NumObjects() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.objects)
}

// Serve accepts connections until the listener is closed. Each connection
// is served on its own goroutine; all connections share the node's object
// table, so a client that reconnects (a *new* fabric — the lane itself
// never reconnects) sees the surviving state.
func (n *Node) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go n.ServeConn(conn)
	}
}

// ServeConn serves one connection until EOF or error, processing frames in
// arrival order: a placement is therefore always applied before any
// invocation the client sent after it.
func (n *Node) ServeConn(conn net.Conn) {
	defer conn.Close()
	for {
		payload, err := readFrame(conn)
		if err != nil {
			return // EOF or broken pipe: the client is gone
		}
		if len(payload) == 0 {
			return
		}
		switch payload[0] {
		case msgPlace:
			p, err := decodePlace(payload[1:])
			if err != nil {
				return
			}
			n.place(p)
		case msgApply:
			a, err := decodeApply(payload[1:])
			if err != nil {
				return
			}
			if err := writeFrame(conn, encodeResp(n.apply(a))); err != nil {
				return
			}
		default:
			return // protocol violation: drop the connection
		}
	}
}

// place hosts an object. Placement is idempotent: the fabric may mirror an
// object twice when two clients race to resolve its route.
func (n *Node) place(p placeReq) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.objects[p.obj]; ok {
		return
	}
	switch p.kind {
	case baseobj.KindRegister:
		var opts []baseobj.RegisterOption
		if len(p.writers) > 0 {
			opts = append(opts, baseobj.WithWriters(p.writers))
		}
		n.objects[p.obj] = baseobj.NewRegister(p.obj, opts...)
	case baseobj.KindMaxRegister:
		n.objects[p.obj] = baseobj.NewMaxRegister(p.obj)
	case baseobj.KindCAS:
		n.objects[p.obj] = baseobj.NewCASCell(p.obj)
	}
}

// apply runs one invocation and maps its outcome onto the wire statuses.
func (n *Node) apply(a applyReq) applyResp {
	n.mu.RLock()
	obj, ok := n.objects[a.obj]
	n.mu.RUnlock()
	if !ok {
		return applyResp{req: a.req, status: statusUnknownObject, msg: fmt.Sprintf("object %d not hosted", a.obj)}
	}
	resp, err := obj.Apply(a.client, a.inv)
	switch {
	case err == nil:
		return applyResp{req: a.req, status: statusOK, resp: resp}
	case errors.Is(err, baseobj.ErrWrongOp):
		return applyResp{req: a.req, status: statusWrongOp, msg: err.Error()}
	case errors.Is(err, baseobj.ErrUnauthorizedWriter):
		return applyResp{req: a.req, status: statusUnauthorizedWriter, msg: err.Error()}
	default:
		return applyResp{req: a.req, status: statusOther, msg: err.Error()}
	}
}
