package lanenet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/baseobj"
	"repro/internal/types"
)

// defaultReadBatch caps how many already-buffered frames one ServeConn pass
// decodes before flushing responses: batching amortizes syscalls, the cap
// bounds how long the first request of a burst waits for its response.
const defaultReadBatch = 256

// NodeOption configures a Node.
type NodeOption func(*Node)

// WithReadBatch caps the frames decoded per batch before responses flush.
func WithReadBatch(n int) NodeOption {
	return func(nd *Node) {
		if n > 0 {
			nd.readBatch = n
		}
	}
}

// Node is one server's storage: it hosts base objects keyed by their
// cluster-wide id and applies invocations atomically. A node is the remote
// half of exactly one fault domain — run one node process per server, so
// killing a process is the paper's server crash.
//
// Plain applies run under the table's read lock held across the object
// apply; a msgScan takes the write lock instead, so every scan member reads
// with no apply of any connection interleaved — one consistent snapshot of
// the node's objects, the remote analogue of the fabric's in-process
// snapshot scan.
type Node struct {
	readBatch int

	mu      sync.RWMutex
	objects map[types.ObjectID]baseobj.Object
}

// NewNode creates an empty storage node.
func NewNode(opts ...NodeOption) *Node {
	n := &Node{objects: make(map[types.ObjectID]baseobj.Object), readBatch: defaultReadBatch}
	for _, o := range opts {
		o(n)
	}
	return n
}

// NumObjects returns the number of hosted objects.
func (n *Node) NumObjects() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.objects)
}

// Serve accepts connections until the listener is closed. Each connection
// is served on its own goroutine; all connections share the node's object
// table, so a client that reconnects (a *new* fabric — the lane itself
// never reconnects) sees the surviving state.
func (n *Node) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go n.ServeConn(conn)
	}
}

// ServeConn serves one connection until EOF or error, processing frames in
// arrival order: a placement is therefore always applied before any
// invocation the client sent after it. After the first (blocking) frame of
// a burst, every further frame the kernel already delivered is decoded and
// handled in the same pass — the pipelined client's coalesced flush arrives
// as one such burst — and the batched responses go out in one flush once
// the input is momentarily dry or the batch cap is reached.
func (n *Node) ServeConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	for {
		payload, err := readFrame(br)
		if err != nil {
			return // EOF or broken pipe: the client is gone
		}
		if !n.handleFrame(bw, payload) {
			return
		}
		// Drain whatever the kernel already delivered before flushing.
		for batched := 1; batched < n.readBatch; batched++ {
			payload, ok := bufferedFrame(br)
			if !ok {
				break
			}
			if !n.handleFrame(bw, payload) {
				return
			}
		}
		if bw.Flush() != nil {
			return
		}
	}
}

// bufferedFrame decodes the next frame only if it is already fully
// buffered, never blocking on the socket (Peek would block for the header,
// so it is guarded by Buffered).
func bufferedFrame(br *bufio.Reader) ([]byte, bool) {
	if br.Buffered() < 4 {
		return nil, false
	}
	hdr, err := br.Peek(4)
	if err != nil {
		return nil, false
	}
	m := binary.BigEndian.Uint32(hdr)
	if m > maxFrame || br.Buffered() < 4+int(m) {
		return nil, false
	}
	if _, err := br.Discard(4); err != nil {
		return nil, false
	}
	payload := make([]byte, m)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, false
	}
	return payload, true
}

// handleFrame dispatches one decoded frame; false drops the connection.
func (n *Node) handleFrame(bw *bufio.Writer, payload []byte) bool {
	if len(payload) == 0 {
		return false
	}
	switch payload[0] {
	case msgPlace:
		p, err := decodePlace(payload[1:])
		if err != nil {
			return false
		}
		n.place(p)
		return true
	case msgApply:
		a, err := decodeApply(payload[1:])
		if err != nil {
			return false
		}
		return writeFrame(bw, encodeResp(n.apply(a))) == nil
	case msgScan:
		req, ops, err := decodeScan(payload[1:])
		if err != nil {
			return false
		}
		return writeFrame(bw, encodeScanResp(req, n.scan(req, ops))) == nil
	default:
		return false // protocol violation: drop the connection
	}
}

// place hosts an object. Placement is idempotent: the fabric may mirror an
// object twice when two clients race to resolve its route.
func (n *Node) place(p placeReq) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.objects[p.obj]; ok {
		return
	}
	switch p.kind {
	case baseobj.KindRegister:
		var opts []baseobj.RegisterOption
		if len(p.writers) > 0 {
			opts = append(opts, baseobj.WithWriters(p.writers))
		}
		n.objects[p.obj] = baseobj.NewRegister(p.obj, opts...)
	case baseobj.KindMaxRegister:
		n.objects[p.obj] = baseobj.NewMaxRegister(p.obj)
	case baseobj.KindCAS:
		n.objects[p.obj] = baseobj.NewCASCell(p.obj)
	}
}

// apply runs one invocation and maps its outcome onto the wire statuses.
// The read lock is held across the object apply so a concurrent scan's
// write lock cannot slot between lookup and apply — scans see every apply
// entirely before or entirely after their snapshot.
func (n *Node) apply(a applyReq) applyResp {
	n.mu.RLock()
	defer n.mu.RUnlock()
	obj, ok := n.objects[a.obj]
	if !ok {
		return applyResp{req: a.req, status: statusUnknownObject, msg: fmt.Sprintf("object %d not hosted", a.obj)}
	}
	resp, err := obj.Apply(a.client, a.inv)
	return outcomeResp(a.req, resp, err)
}

// scan answers a whole all-read group under the table's write lock: with
// every plain apply holding the read lock across its object apply, the
// exclusive section is a consistent cut of the node's objects.
func (n *Node) scan(req uint64, ops []scanEntry) []applyResp {
	results := make([]applyResp, len(ops))
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, e := range ops {
		obj, ok := n.objects[e.obj]
		if !ok {
			results[i] = applyResp{req: req, status: statusUnknownObject, msg: fmt.Sprintf("object %d not hosted", e.obj)}
			continue
		}
		resp, err := obj.Apply(e.client, baseobj.Invocation{Op: e.op})
		results[i] = outcomeResp(req, resp, err)
	}
	return results
}

// outcomeResp maps one apply outcome onto the wire statuses.
func outcomeResp(req uint64, resp baseobj.Response, err error) applyResp {
	switch {
	case err == nil:
		return applyResp{req: req, status: statusOK, resp: resp}
	case errors.Is(err, baseobj.ErrWrongOp):
		return applyResp{req: req, status: statusWrongOp, msg: err.Error()}
	case errors.Is(err, baseobj.ErrUnauthorizedWriter):
		return applyResp{req: req, status: statusUnauthorizedWriter, msg: err.Error()}
	default:
		return applyResp{req: req, status: statusOther, msg: err.Error()}
	}
}
