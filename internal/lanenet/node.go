package lanenet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baseobj"
	"repro/internal/types"
)

// defaultReadBatch caps how many already-buffered frames one ServeConn pass
// decodes before flushing responses: batching amortizes syscalls, the cap
// bounds how long the first request of a burst waits for its response.
const defaultReadBatch = 256

// NodeOption configures a Node.
type NodeOption func(*Node)

// WithReadBatch caps the frames decoded per batch before responses flush.
func WithReadBatch(n int) NodeOption {
	return func(nd *Node) {
		if n > 0 {
			nd.readBatch = n
		}
	}
}

// Node is a storage process hosting one or more named object tables. Each
// table holds base objects keyed by their cluster-wide id and applies
// invocations atomically. A connection operates on the default table ("")
// until it binds another with msgBind (Client's WithTable sends the bind as
// its first frame), so one node process can host the tables of several
// shards — several independent fabrics whose object ids all start at zero —
// over one listener. The process stays one fault domain: killing it is the
// paper's server crash for every shard with a table here.
//
// Plain applies run under their table's read lock held across the object
// apply; a msgScan takes the table's write lock instead, so every scan
// member reads with no apply of any connection interleaved — one consistent
// snapshot of the table's objects, the remote analogue of the fabric's
// in-process snapshot scan. Tables lock independently: traffic on one
// shard's table never contends with another's.
type Node struct {
	readBatch int

	mu     sync.RWMutex
	tables map[string]*nodeTable

	// draining, conns, and serving implement the graceful drain: Drain
	// flips the flag, wakes every blocked connection read, and waits for
	// the serving goroutines to flush what they already decoded and exit.
	draining atomic.Bool
	connMu   sync.Mutex
	conns    map[net.Conn]struct{}
	serving  sync.WaitGroup
}

// nodeTable is one named object table with its own lock domain.
type nodeTable struct {
	mu      sync.RWMutex
	objects map[types.ObjectID]baseobj.Object
}

// NewNode creates an empty storage node with just the default table.
func NewNode(opts ...NodeOption) *Node {
	n := &Node{
		tables:    map[string]*nodeTable{"": {objects: make(map[types.ObjectID]baseobj.Object)}},
		readBatch: defaultReadBatch,
		conns:     make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// table returns the named table, creating it on first bind.
func (n *Node) table(name string) *nodeTable {
	n.mu.RLock()
	t, ok := n.tables[name]
	n.mu.RUnlock()
	if ok {
		return t
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if t, ok := n.tables[name]; ok {
		return t
	}
	t = &nodeTable{objects: make(map[types.ObjectID]baseobj.Object)}
	n.tables[name] = t
	return t
}

// NumObjects returns the number of hosted objects across all tables.
func (n *Node) NumObjects() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	total := 0
	for _, t := range n.tables {
		t.mu.RLock()
		total += len(t.objects)
		t.mu.RUnlock()
	}
	return total
}

// NumTables returns the number of tables, the default included.
func (n *Node) NumTables() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.tables)
}

// BytesStored returns the payload bytes currently held across all tables
// — the node-side reading of the bytes-per-server space metric (on the
// TCP lane the node's tables are the authoritative object state, not the
// fabric's local placeholders).
func (n *Node) BytesStored() int64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var total int64
	for _, t := range n.tables {
		t.mu.RLock()
		for _, o := range t.objects {
			if sz, ok := o.(baseobj.Sizer); ok {
				total += int64(sz.SizeBytes())
			}
		}
		t.mu.RUnlock()
	}
	return total
}

// Serve accepts connections until the listener is closed. Each connection
// is served on its own goroutine; all connections share the node's object
// table, so a client that reconnects (a *new* fabric — the lane itself
// never reconnects) sees the surviving state.
func (n *Node) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go n.ServeConn(conn)
	}
}

// addConn registers a serving connection for the drain, or refuses it when
// the node is already draining.
func (n *Node) addConn(conn net.Conn) bool {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if n.draining.Load() {
		return false
	}
	n.conns[conn] = struct{}{}
	n.serving.Add(1)
	return true
}

// removeConn unregisters a connection whose serving goroutine is exiting.
func (n *Node) removeConn(conn net.Conn) {
	n.connMu.Lock()
	delete(n.conns, conn)
	n.connMu.Unlock()
	n.serving.Done()
}

// Drain gracefully retires the node: new connections are refused, every
// connection blocked waiting for input is woken (an immediate read
// deadline), and Drain returns once each serving goroutine has finished
// handling the frames it already decoded, flushed their responses, and
// closed its connection. The caller closes the listener first, so the
// sequence listener-close → Drain is the clean *leave* a kill signal can
// never produce — peers see orderly EOFs after complete responses, not a
// mid-frame reset.
func (n *Node) Drain() {
	n.connMu.Lock()
	n.draining.Store(true)
	for conn := range n.conns {
		_ = conn.SetReadDeadline(time.Now())
	}
	n.connMu.Unlock()
	n.serving.Wait()
}

// ServeConn serves one connection until EOF or error, processing frames in
// arrival order: a placement is therefore always applied before any
// invocation the client sent after it. After the first (blocking) frame of
// a burst, every further frame the kernel already delivered is decoded and
// handled in the same pass — the pipelined client's coalesced flush arrives
// as one such burst — and the batched responses go out in one flush once
// the input is momentarily dry or the batch cap is reached.
func (n *Node) ServeConn(conn net.Conn) {
	defer conn.Close()
	if !n.addConn(conn) {
		return
	}
	defer n.removeConn(conn)
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	// The connection's current table: the default until a msgBind switches
	// it. Frames are handled in arrival order, so a bind sent first governs
	// everything after it.
	tbl := n.table("")
	for {
		payload, err := readFrame(br)
		if err != nil {
			// EOF or broken pipe: the client is gone. During a drain the
			// error is the deadline that woke this goroutine; what was
			// already handled has been flushed, so exiting here is the
			// "finish in-flight work, then leave" half of the drain.
			bw.Flush()
			return
		}
		if tbl = n.handleFrame(bw, tbl, payload); tbl == nil {
			return
		}
		// Drain whatever the kernel already delivered before flushing.
		for batched := 1; batched < n.readBatch; batched++ {
			payload, ok := bufferedFrame(br)
			if !ok {
				break
			}
			if tbl = n.handleFrame(bw, tbl, payload); tbl == nil {
				return
			}
		}
		if bw.Flush() != nil {
			return
		}
		if n.draining.Load() {
			return
		}
	}
}

// bufferedFrame decodes the next frame only if it is already fully
// buffered, never blocking on the socket (Peek would block for the header,
// so it is guarded by Buffered).
func bufferedFrame(br *bufio.Reader) ([]byte, bool) {
	if br.Buffered() < 4 {
		return nil, false
	}
	hdr, err := br.Peek(4)
	if err != nil {
		return nil, false
	}
	m := binary.BigEndian.Uint32(hdr)
	if m > maxFrame || br.Buffered() < 4+int(m) {
		return nil, false
	}
	if _, err := br.Discard(4); err != nil {
		return nil, false
	}
	payload := make([]byte, m)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, false
	}
	return payload, true
}

// handleFrame dispatches one decoded frame against the connection's current
// table and returns the table governing the next frame (a msgBind switches
// it); nil drops the connection.
func (n *Node) handleFrame(bw *bufio.Writer, tbl *nodeTable, payload []byte) *nodeTable {
	if len(payload) == 0 {
		return nil
	}
	switch payload[0] {
	case msgBind:
		name, err := decodeBind(payload[1:])
		if err != nil {
			return nil
		}
		return n.table(name)
	case msgPlace:
		p, err := decodePlace(payload[1:])
		if err != nil {
			return nil
		}
		tbl.place(p)
		return tbl
	case msgApply:
		a, err := decodeApply(payload[1:])
		if err != nil {
			return nil
		}
		if writeFrame(bw, encodeResp(tbl.apply(a))) != nil {
			return nil
		}
		return tbl
	case msgScan:
		req, ops, err := decodeScan(payload[1:])
		if err != nil {
			return nil
		}
		if writeFrame(bw, encodeScanResp(req, tbl.scan(req, ops))) != nil {
			return nil
		}
		return tbl
	default:
		return nil // protocol violation: drop the connection
	}
}

// place hosts an object. Placement is idempotent: the fabric may mirror an
// object twice when two clients race to resolve its route.
func (t *nodeTable) place(p placeReq) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.objects[p.obj]; ok {
		return
	}
	var obj baseobj.Object
	switch p.kind {
	case baseobj.KindRegister:
		var opts []baseobj.RegisterOption
		if len(p.writers) > 0 {
			opts = append(opts, baseobj.WithWriters(p.writers))
		}
		obj = baseobj.NewRegister(p.obj, opts...)
	case baseobj.KindMaxRegister:
		obj = baseobj.NewMaxRegister(p.obj)
	case baseobj.KindCAS:
		obj = baseobj.NewCASCell(p.obj)
	case baseobj.KindFragStore:
		obj = baseobj.NewFragStore(p.obj)
	default:
		return
	}
	// A fresh placement materializes at the mirrored state: for migrated
	// objects this IS the state transfer onto the replacement node. The
	// full-state path carries payload bytes and fragments; the TSValue
	// fallback keeps exotic Sealer-only objects placeable.
	switch s := obj.(type) {
	case baseobj.StateSealer:
		s.RestoreState(p.state)
	case baseobj.Sealer:
		s.Restore(p.state.Val)
	}
	t.objects[p.obj] = obj
}

// apply runs one invocation and maps its outcome onto the wire statuses.
// The read lock is held across the object apply so a concurrent scan's
// write lock cannot slot between lookup and apply — scans see every apply
// entirely before or entirely after their snapshot.
func (t *nodeTable) apply(a applyReq) applyResp {
	t.mu.RLock()
	defer t.mu.RUnlock()
	obj, ok := t.objects[a.obj]
	if !ok {
		return applyResp{req: a.req, status: statusUnknownObject, msg: fmt.Sprintf("object %d not hosted", a.obj)}
	}
	resp, err := obj.Apply(a.client, a.inv)
	return outcomeResp(a.req, resp, err)
}

// scan answers a whole all-read group under the table's write lock: with
// every plain apply holding the read lock across its object apply, the
// exclusive section is a consistent cut of the table's objects.
func (t *nodeTable) scan(req uint64, ops []scanEntry) []applyResp {
	results := make([]applyResp, len(ops))
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, e := range ops {
		obj, ok := t.objects[e.obj]
		if !ok {
			results[i] = applyResp{req: req, status: statusUnknownObject, msg: fmt.Sprintf("object %d not hosted", e.obj)}
			continue
		}
		resp, err := obj.Apply(e.client, baseobj.Invocation{Op: e.op})
		results[i] = outcomeResp(req, resp, err)
	}
	return results
}

// outcomeResp maps one apply outcome onto the wire statuses.
func outcomeResp(req uint64, resp baseobj.Response, err error) applyResp {
	switch {
	case err == nil:
		return applyResp{req: req, status: statusOK, resp: resp}
	case errors.Is(err, baseobj.ErrWrongOp):
		return applyResp{req: req, status: statusWrongOp, msg: err.Error()}
	case errors.Is(err, baseobj.ErrUnauthorizedWriter):
		return applyResp{req: req, status: statusUnauthorizedWriter, msg: err.Error()}
	default:
		return applyResp{req: req, status: statusOther, msg: err.Error()}
	}
}
