package scenario

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// loadFile loads a scenario from testdata.
func loadFile(t *testing.T, name string) *Scenario {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer f.Close()
	s, err := Load(f)
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	return s
}

// TestTestdataScenarios runs every scenario in testdata; each encodes its
// own expectations (read values, safety verdicts).
func TestTestdataScenarios(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 4 {
		t.Fatalf("expected >= 4 testdata scenarios, found %d", len(entries))
	}
	for _, entry := range entries {
		if !strings.HasSuffix(entry.Name(), ".json") {
			continue
		}
		entry := entry
		t.Run(entry.Name(), func(t *testing.T) {
			s := loadFile(t, entry.Name())
			res, err := s.Run(testCtx(t))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !res.ExpectationsMet {
				t.Fatalf("expectations failed: %v", res.Failures)
			}
		})
	}
}

func TestLoadValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"missing kind", `{"name":"x","k":1,"f":1,"n":3,"steps":[]}`},
		{"bad params", `{"name":"x","kind":"regemu","k":0,"f":1,"n":3,"steps":[]}`},
		{"empty step", `{"name":"x","kind":"regemu","k":1,"f":1,"n":3,"steps":[{}]}`},
		{"two actions", `{"name":"x","kind":"regemu","k":1,"f":1,"n":3,"steps":[{"clear":{},"crash":{"server":0}}]}`},
		{"bad phase", `{"name":"x","kind":"regemu","k":1,"f":1,"n":3,"steps":[{"hold":{"phase":"weird","class":"any"}}]}`},
		{"bad class", `{"name":"x","kind":"regemu","k":1,"f":1,"n":3,"steps":[{"hold":{"phase":"apply","class":"weird"}}]}`},
		{"unknown field", `{"name":"x","kind":"regemu","k":1,"f":1,"n":3,"bogus":true,"steps":[]}`},
		{"syntax", `{`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(tc.json)); err == nil {
				t.Fatalf("accepted: %s", tc.json)
			}
		})
	}
}

func TestRunReportsUnexpectedViolation(t *testing.T) {
	// A benign schedule that claims it violates safety: expectations must
	// fail (but the run itself succeeds).
	s := &Scenario{
		Name: "wrong-expectation", Kind: "regemu", K: 1, F: 1, N: 3,
		ExpectSafetyViolation: true,
		Steps: []Step{
			{Write: &WriteStep{Writer: 0, Value: 5}},
			{Read: &ReadStep{Reader: 0}},
		},
	}
	res, err := s.Run(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpectationsMet {
		t.Fatal("wrong expectation reported as met")
	}
	if res.WSSafety != nil {
		t.Fatalf("benign run not safe: %v", res.WSSafety)
	}
}

func TestRunReadExpectationFailure(t *testing.T) {
	s := &Scenario{
		Name: "wrong-read", Kind: "regemu", K: 1, F: 1, N: 3,
		Steps: []Step{
			{Write: &WriteStep{Writer: 0, Value: 5}},
			{Read: &ReadStep{Reader: 0, Expect: ptr(int64(99))}},
		},
	}
	res, err := s.Run(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpectationsMet {
		t.Fatal("wrong read expectation reported as met")
	}
	if len(res.Reads) != 1 || res.Reads[0] != 5 {
		t.Fatalf("Reads = %v, want [5]", res.Reads)
	}
}

func TestHoldCountBudget(t *testing.T) {
	// A count-limited hold must stop holding after its budget: with
	// count=1 against f=1, the write still completes and exactly one op
	// stays pending.
	s := &Scenario{
		Name: "budget", Kind: "regemu", K: 1, F: 1, N: 3,
		Steps: []Step{
			{Hold: &HoldStep{Phase: "apply", Class: "mutating", Count: 1}},
			{Write: &WriteStep{Writer: 0, Value: 5}},
			{Clear: &ClearStep{}},
			{Read: &ReadStep{Reader: 0, Expect: ptr(int64(5))}},
		},
	}
	res, err := s.Run(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.ExpectationsMet {
		t.Fatalf("expectations failed: %v", res.Failures)
	}
}

func ptr[T any](v T) *T { return &v }
