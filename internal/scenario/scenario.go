// Package scenario runs data-driven adversarial schedules: a scenario is a
// JSON document listing high-level operations (writes, reads) interleaved
// with environment actions (holds, releases, crashes) plus expectations
// (read values, safety verdicts). Scenarios make the paper's run
// constructions reproducible as plain data — the stale-release attack, the
// covering runs, and any custom schedule a user wants to probe — without
// writing Go.
//
// Example (the Lemma 4 attack against the naive baseline):
//
//	{
//	  "name": "stale-release-naive",
//	  "kind": "naive", "k": 2, "f": 1, "n": 3,
//	  "expect_safety_violation": true,
//	  "steps": [
//	    {"hold":    {"client": 0, "server": 0, "phase": "apply", "class": "mutating"}},
//	    {"write":   {"writer": 0, "value": 101}},
//	    {"clear":   {}},
//	    {"hold":    {"client": 1, "server": 1, "phase": "apply", "class": "mutating"}},
//	    {"write":   {"writer": 1, "value": 202}},
//	    {"clear":   {}},
//	    {"release": {"client": 0}},
//	    {"hold":    {"server": 2, "phase": "respond", "class": "read"}},
//	    {"read":    {"reader": 0, "expect": 101}}
//	  ]
//	}
package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/adversary"
	"repro/internal/baseobj"
	"repro/internal/emulation"
	"repro/internal/fabric"
	"repro/internal/runner"
	"repro/internal/spec"
	"repro/internal/types"
)

// Scenario is one data-driven run.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string `json:"name"`
	// Kind selects the construction (runner.Kind values).
	Kind string `json:"kind"`
	// K, F, N are the emulation parameters.
	K int `json:"k"`
	F int `json:"f"`
	N int `json:"n"`
	// ExpectSafetyViolation flips the final WS-Safety expectation: by
	// default the history must be WS-Safe; with this set it must NOT be.
	ExpectSafetyViolation bool `json:"expect_safety_violation,omitempty"`
	// Steps is the schedule.
	Steps []Step `json:"steps"`
}

// Step is one schedule entry; exactly one field must be set.
type Step struct {
	Write   *WriteStep   `json:"write,omitempty"`
	Read    *ReadStep    `json:"read,omitempty"`
	Hold    *HoldStep    `json:"hold,omitempty"`
	Clear   *ClearStep   `json:"clear,omitempty"`
	Release *ReleaseStep `json:"release,omitempty"`
	Crash   *CrashStep   `json:"crash,omitempty"`
}

// WriteStep performs a high-level write.
type WriteStep struct {
	Writer int   `json:"writer"`
	Value  int64 `json:"value"`
}

// ReadStep performs a high-level read, optionally asserting its value.
type ReadStep struct {
	Reader int    `json:"reader"`
	Expect *int64 `json:"expect,omitempty"`
}

// HoldStep arms a hold rule; it stays armed until a Clear step. Nil
// selectors match everything.
type HoldStep struct {
	// Client restricts to one client; for reads, the reader index space
	// is translated (reader i is client ReaderIDBase+i+1).
	Client *int `json:"client,omitempty"`
	// Server restricts to one server.
	Server *int `json:"server,omitempty"`
	// Phase is "apply" (held before taking effect) or "respond".
	Phase string `json:"phase"`
	// Class is "mutating", "read", or "any".
	Class string `json:"class"`
	// Count limits how many ops the rule holds (0 = unlimited).
	Count int `json:"count,omitempty"`
}

// ClearStep disarms all hold rules.
type ClearStep struct{}

// ReleaseStep releases held ops matching the selectors (nil = all).
type ReleaseStep struct {
	Client *int `json:"client,omitempty"`
	Server *int `json:"server,omitempty"`
}

// CrashStep crashes a server.
type CrashStep struct {
	Server int `json:"server"`
}

// Result is the outcome of a scenario run.
type Result struct {
	Name string
	// Reads records every read's returned value in step order.
	Reads []types.Value
	// Released counts released ops.
	Released int
	// WSSafety is the final checker verdict (nil = safe).
	WSSafety error
	// ExpectationsMet reports whether every read expectation and the
	// safety expectation held.
	ExpectationsMet bool
	// Failures lists unmet expectations.
	Failures []string
}

// Load parses a scenario from JSON.
func Load(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parsing: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks structural well-formedness.
func (s *Scenario) Validate() error {
	if s.Kind == "" {
		return fmt.Errorf("scenario %q: missing kind", s.Name)
	}
	if s.K <= 0 || s.F <= 0 || s.N <= 0 {
		return fmt.Errorf("scenario %q: k, f, n must be positive", s.Name)
	}
	for i, step := range s.Steps {
		set := 0
		if step.Write != nil {
			set++
		}
		if step.Read != nil {
			set++
		}
		if step.Hold != nil {
			set++
			switch step.Hold.Phase {
			case "apply", "respond":
			default:
				return fmt.Errorf("scenario %q step %d: bad phase %q", s.Name, i, step.Hold.Phase)
			}
			switch step.Hold.Class {
			case "mutating", "read", "any":
			default:
				return fmt.Errorf("scenario %q step %d: bad class %q", s.Name, i, step.Hold.Class)
			}
		}
		if step.Clear != nil {
			set++
		}
		if step.Release != nil {
			set++
		}
		if step.Crash != nil {
			set++
		}
		if set != 1 {
			return fmt.Errorf("scenario %q step %d: exactly one action required, got %d", s.Name, i, set)
		}
	}
	return nil
}

// holdRule is an armed HoldStep with its remaining budget.
type holdRule struct {
	step      HoldStep
	remaining int // -1 = unlimited
}

// gate evaluates the armed hold rules; gateAdapter exposes it as a
// fabric.Gate.
type gate struct {
	mu    sync.Mutex
	rules []*holdRule
}

// matches evaluates one rule against an event.
func (r *holdRule) matches(ev fabric.TriggerEvent, phase string) bool {
	if r.step.Phase != phase {
		return false
	}
	if r.remaining == 0 {
		return false
	}
	if r.step.Server != nil && int(ev.Server) != *r.step.Server {
		return false
	}
	if r.step.Client != nil && ev.Client != translateClient(*r.step.Client) {
		return false
	}
	switch r.step.Class {
	case "mutating":
		return adversary.IsMutating(ev.Inv)
	case "read":
		return !adversary.IsMutating(ev.Inv)
	default:
		return true
	}
}

// decide applies the first matching rule.
func (g *gate) decide(ev fabric.TriggerEvent, phase string) fabric.Decision {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, r := range g.rules {
		if r.matches(ev, phase) {
			if r.remaining > 0 {
				r.remaining--
			}
			return fabric.Hold
		}
	}
	return fabric.Pass
}

// arm adds a rule.
func (g *gate) arm(step HoldStep) {
	remaining := -1
	if step.Count > 0 {
		remaining = step.Count
	}
	g.mu.Lock()
	g.rules = append(g.rules, &holdRule{step: step, remaining: remaining})
	g.mu.Unlock()
}

// clear removes all rules.
func (g *gate) clear() {
	g.mu.Lock()
	g.rules = nil
	g.mu.Unlock()
}

// translateClient maps scenario client indexes to fabric client IDs:
// writer indexes pass through; reader index i (>= 1000) is not used — the
// runner assigns ReaderIDBase+ordinal. Scenario hold selectors use writer
// indexes or the special -1 for "any reader".
func translateClient(c int) types.ClientID {
	return types.ClientID(c)
}

// Run executes the scenario.
func (s *Scenario) Run(ctx context.Context) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g := &gateAdapter{inner: &gate{}}
	env, err := runner.NewEnv(s.N, g)
	if err != nil {
		return nil, err
	}
	reg, hist, err := runner.Build(runner.Kind(s.Kind), env.Fabric, s.K, s.F)
	if err != nil {
		return nil, err
	}
	readers := make(map[int]emulation.Reader)
	res := &Result{Name: s.Name, ExpectationsMet: true}

	fail := func(format string, args ...any) {
		res.ExpectationsMet = false
		res.Failures = append(res.Failures, fmt.Sprintf(format, args...))
	}

	for i, step := range s.Steps {
		switch {
		case step.Write != nil:
			w, err := reg.Writer(step.Write.Writer)
			if err != nil {
				return nil, fmt.Errorf("scenario %q step %d: %w", s.Name, i, err)
			}
			if err := w.Write(ctx, types.Value(step.Write.Value)); err != nil {
				return nil, fmt.Errorf("scenario %q step %d write: %w", s.Name, i, err)
			}
		case step.Read != nil:
			rd, ok := readers[step.Read.Reader]
			if !ok {
				rd = reg.NewReader()
				readers[step.Read.Reader] = rd
			}
			v, err := rd.Read(ctx)
			if err != nil {
				return nil, fmt.Errorf("scenario %q step %d read: %w", s.Name, i, err)
			}
			res.Reads = append(res.Reads, v)
			if step.Read.Expect != nil && v != types.Value(*step.Read.Expect) {
				fail("step %d: read returned %d, expected %d", i, v, *step.Read.Expect)
			}
		case step.Hold != nil:
			g.inner.arm(*step.Hold)
		case step.Clear != nil:
			g.inner.clear()
		case step.Release != nil:
			rel := *step.Release
			res.Released += env.Fabric.ReleaseWhere(func(op fabric.PendingOp) bool {
				if rel.Client != nil && op.Event.Client != translateClient(*rel.Client) {
					return false
				}
				if rel.Server != nil && int(op.Event.Server) != *rel.Server {
					return false
				}
				return true
			})
		case step.Crash != nil:
			if err := env.Fabric.Crash(types.ServerID(step.Crash.Server)); err != nil {
				return nil, fmt.Errorf("scenario %q step %d crash: %w", s.Name, i, err)
			}
		}
	}

	res.WSSafety = spec.CheckWSSafety(hist.Snapshot(), types.InitialValue)
	violated := res.WSSafety != nil
	if violated != s.ExpectSafetyViolation {
		fail("safety violation = %v, expected %v (verdict: %v)", violated, s.ExpectSafetyViolation, res.WSSafety)
	}
	return res, nil
}

// gateAdapter bridges the rule gate to the fabric.Gate interface (the
// respond hook needs the concrete response type).
type gateAdapter struct {
	inner *gate
}

// Compile-time interface compliance check.
var _ fabric.Gate = (*gateAdapter)(nil)

// BeforeApply implements fabric.Gate.
func (a *gateAdapter) BeforeApply(ev fabric.TriggerEvent) fabric.Decision {
	return a.inner.decide(ev, "apply")
}

// BeforeRespond implements fabric.Gate.
func (a *gateAdapter) BeforeRespond(ev fabric.TriggerEvent, _ baseobj.Response) fabric.Decision {
	return a.inner.decide(ev, "respond")
}
