// Package bounds implements every closed-form space bound the paper proves
// (Table 1 and Theorems 1–3 and 5–7), together with the derived quantities
// of the upper-bound construction (z, y, m and the register-set sizes).
//
// All functions validate their parameters: the paper assumes k > 0 writers,
// failure threshold f > 0, and n >= 2f+1 servers (Theorem 5 shows emulation
// is impossible below 2f+1).
package bounds

import (
	"errors"
	"fmt"
)

// Errors reported for invalid parameter combinations.
var (
	// ErrInvalidParams is returned when k <= 0 or f <= 0.
	ErrInvalidParams = errors.New("bounds: k and f must be positive")
	// ErrTooFewServers is returned when n < 2f+1 (Theorem 5).
	ErrTooFewServers = errors.New("bounds: need n >= 2f+1 servers")
)

// Validate checks a (k, f, n) parameter triple.
func Validate(k, f, n int) error {
	if k <= 0 || f <= 0 {
		return fmt.Errorf("%w: k=%d f=%d", ErrInvalidParams, k, f)
	}
	if n < MinServers(f) {
		return fmt.Errorf("%w: n=%d f=%d", ErrTooFewServers, n, f)
	}
	return nil
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int {
	return (a + b - 1) / b
}

// MinServers returns 2f+1, the minimum number of servers for any f-tolerant
// WS-Safe obstruction-free register emulation (Theorem 5).
func MinServers(f int) int { return 2*f + 1 }

// MaxRegisterBound returns the number of max-register base objects that is
// both necessary and sufficient for an f-tolerant emulation (Table 1, row
// "max-register"): 2f+1, independent of k and n.
func MaxRegisterBound(f int) int { return 2*f + 1 }

// CASBound returns the number of CAS base objects that is both necessary
// and sufficient (Table 1, row "CAS"): 2f+1, independent of k and n, since
// a max-register embeds into a single CAS (Appendix B).
func CASBound(f int) int { return 2*f + 1 }

// Z returns z = floor((n-(f+1))/f), the maximum number of writers one
// register set of the upper-bound construction supports (Section 3.3).
func Z(f, n int) (int, error) {
	if f <= 0 {
		return 0, fmt.Errorf("%w: f=%d", ErrInvalidParams, f)
	}
	if n < MinServers(f) {
		return 0, fmt.Errorf("%w: n=%d f=%d", ErrTooFewServers, n, f)
	}
	return (n - (f + 1)) / f, nil
}

// Y returns y = z*f + f + 1, the size of a full register set.
func Y(f, n int) (int, error) {
	z, err := Z(f, n)
	if err != nil {
		return 0, err
	}
	return z*f + f + 1, nil
}

// NumSets returns m = ceil(k/z), the number of register sets.
func NumSets(k, f, n int) (int, error) {
	if err := Validate(k, f, n); err != nil {
		return 0, err
	}
	z, err := Z(f, n)
	if err != nil {
		return 0, err
	}
	return ceilDiv(k, z), nil
}

// OverflowSetSize returns the size of the overflow set R_{m-1} when z does
// not divide k: (k - floor(k/z)*z)*f + f + 1, i.e. (k mod z)*f + f + 1.
// When z divides k it returns y (all sets are full).
func OverflowSetSize(k, f, n int) (int, error) {
	if err := Validate(k, f, n); err != nil {
		return 0, err
	}
	z, err := Z(f, n)
	if err != nil {
		return 0, err
	}
	rem := k % z
	if rem == 0 {
		return z*f + f + 1, nil
	}
	return rem*f + f + 1, nil
}

// RegisterLower returns the lower bound of Theorem 1 on the number of
// read/write base registers: kf + ceil(kf/(n-(f+1)))*(f+1). It holds for
// every f-tolerant WS-Safe obstruction-free k-register emulation.
func RegisterLower(k, f, n int) (int, error) {
	if err := Validate(k, f, n); err != nil {
		return 0, err
	}
	return k*f + ceilDiv(k*f, n-(f+1))*(f+1), nil
}

// RegisterUpper returns the space used by the upper-bound construction of
// Theorem 3: kf + ceil(k/z)*(f+1) with z = floor((n-(f+1))/f). The
// construction is wait-free and WS-Regular.
func RegisterUpper(k, f, n int) (int, error) {
	if err := Validate(k, f, n); err != nil {
		return 0, err
	}
	z, err := Z(f, n)
	if err != nil {
		return 0, err
	}
	return k*f + ceilDiv(k, z)*(f+1), nil
}

// MaxRegisterFromRegistersLower returns Theorem 2's bound: any wait-free
// k-writer max-register built from MWMR atomic registers uses at least k
// registers.
func MaxRegisterFromRegistersLower(k int) (int, error) {
	if k <= 0 {
		return 0, fmt.Errorf("%w: k=%d", ErrInvalidParams, k)
	}
	return k, nil
}

// PerServerLowerAtMinServers returns Theorem 6's bound: with n = 2f+1
// servers, every server must store at least k registers.
func PerServerLowerAtMinServers(k int) (int, error) {
	if k <= 0 {
		return 0, fmt.Errorf("%w: k=%d", ErrInvalidParams, k)
	}
	return k, nil
}

// ServersLowerWithCap returns Theorem 7's bound: if every server stores at
// most cap registers, any emulation needs at least ceil(kf/cap) + f + 1
// servers.
func ServersLowerWithCap(k, f, cap int) (int, error) {
	if k <= 0 || f <= 0 || cap <= 0 {
		return 0, fmt.Errorf("%w: k=%d f=%d cap=%d", ErrInvalidParams, k, f, cap)
	}
	return ceilDiv(k*f, cap) + f + 1, nil
}

// SpecialCaseRegisters returns (2f+1)*k, the register count of the
// alternative upper bound for n = 2f+1 built from one k-writer max-register
// (of k base registers) per server; it matches the lower bound
// kf + k(f+1) = (2f+1)k at n = 2f+1 and satisfies stronger regularity.
func SpecialCaseRegisters(k, f int) (int, error) {
	if k <= 0 || f <= 0 {
		return 0, fmt.Errorf("%w: k=%d f=%d", ErrInvalidParams, k, f)
	}
	return (2*f + 1) * k, nil
}

// CoveredLower returns the covering guarantee of Lemma 1: after i complete
// sequential writes the adversary forces at least i*f covered registers.
func CoveredLower(i, f int) int { return i * f }

// Gap returns upper - lower for a (k, f, n) triple. The paper notes the gap
// is zero at n = 2f+1 and for n >= kf+f+1, and small in between.
func Gap(k, f, n int) (int, error) {
	lo, err := RegisterLower(k, f, n)
	if err != nil {
		return 0, err
	}
	hi, err := RegisterUpper(k, f, n)
	if err != nil {
		return 0, err
	}
	return hi - lo, nil
}

// Row is one line of Table 1 instantiated at concrete parameters.
type Row struct {
	BaseObject string
	Lower      int
	Upper      int
}

// Table1 instantiates Table 1 of the paper for concrete (k, f, n).
func Table1(k, f, n int) ([]Row, error) {
	if err := Validate(k, f, n); err != nil {
		return nil, err
	}
	lo, err := RegisterLower(k, f, n)
	if err != nil {
		return nil, err
	}
	hi, err := RegisterUpper(k, f, n)
	if err != nil {
		return nil, err
	}
	return []Row{
		{BaseObject: "max-register", Lower: MaxRegisterBound(f), Upper: MaxRegisterBound(f)},
		{BaseObject: "cas", Lower: CASBound(f), Upper: CASBound(f)},
		{BaseObject: "register", Lower: lo, Upper: hi},
	}, nil
}
