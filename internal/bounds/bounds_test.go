package bounds

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestHandComputedValues(t *testing.T) {
	// Values computed by hand from the Table 1 formulas.
	tests := []struct {
		k, f, n      int
		lower, upper int
		z            int
	}{
		// n = 2f+1: both bounds are kf + k(f+1) = (2f+1)k.
		{1, 1, 3, 3, 3, 1},
		{2, 1, 3, 6, 6, 1},
		{5, 2, 5, 25, 25, 1},
		// The paper's Figure 1 parameters.
		{5, 2, 6, 22, 25, 1},
		// n large: both bounds are kf + f + 1.
		{3, 1, 5, 5, 5, 3},
		{5, 2, 13, 13, 13, 5},
		// In-between points.
		{5, 2, 7, 19, 19, 2},
		{5, 2, 8, 16, 19, 2},
		{4, 2, 6, 17, 20, 1},
		{8, 2, 6, 34, 40, 1},
	}
	for _, tc := range tests {
		z, err := Z(tc.f, tc.n)
		if err != nil {
			t.Fatalf("Z(%d,%d): %v", tc.f, tc.n, err)
		}
		if z != tc.z {
			t.Errorf("Z(f=%d,n=%d) = %d, want %d", tc.f, tc.n, z, tc.z)
		}
		lo, err := RegisterLower(tc.k, tc.f, tc.n)
		if err != nil {
			t.Fatalf("RegisterLower(%+v): %v", tc, err)
		}
		if lo != tc.lower {
			t.Errorf("RegisterLower(k=%d,f=%d,n=%d) = %d, want %d", tc.k, tc.f, tc.n, lo, tc.lower)
		}
		hi, err := RegisterUpper(tc.k, tc.f, tc.n)
		if err != nil {
			t.Fatalf("RegisterUpper(%+v): %v", tc, err)
		}
		if hi != tc.upper {
			t.Errorf("RegisterUpper(k=%d,f=%d,n=%d) = %d, want %d", tc.k, tc.f, tc.n, hi, tc.upper)
		}
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		k, f, n int
		want    error
	}{
		{0, 1, 3, ErrInvalidParams},
		{1, 0, 3, ErrInvalidParams},
		{-1, 1, 3, ErrInvalidParams},
		{1, 1, 2, ErrTooFewServers},
		{1, 2, 4, ErrTooFewServers},
		{1, 1, 3, nil},
	}
	for _, tc := range cases {
		err := Validate(tc.k, tc.f, tc.n)
		if tc.want == nil && err != nil {
			t.Errorf("Validate(%d,%d,%d) = %v, want nil", tc.k, tc.f, tc.n, err)
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("Validate(%d,%d,%d) = %v, want %v", tc.k, tc.f, tc.n, err, tc.want)
		}
	}
	if _, err := Z(1, 2); !errors.Is(err, ErrTooFewServers) {
		t.Errorf("Z on tiny n err = %v", err)
	}
	if _, err := Z(0, 3); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("Z on f=0 err = %v", err)
	}
	for _, fn := range []func(int) (int, error){MaxRegisterFromRegistersLower, PerServerLowerAtMinServers} {
		if _, err := fn(0); !errors.Is(err, ErrInvalidParams) {
			t.Errorf("k=0 err = %v, want ErrInvalidParams", err)
		}
	}
	if _, err := ServersLowerWithCap(1, 1, 0); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("cap=0 err = %v, want ErrInvalidParams", err)
	}
	if _, err := SpecialCaseRegisters(0, 1); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("SpecialCaseRegisters k=0 err = %v", err)
	}
}

// quickParams draws a random valid (k, f, n) triple.
func quickParams(rng *rand.Rand) (k, f, n int) {
	f = 1 + rng.Intn(4)
	k = 1 + rng.Intn(12)
	n = 2*f + 1 + rng.Intn(3*f+k*f)
	return k, f, n
}

func TestBoundsPropertyLowerLEUpper(t *testing.T) {
	cfg := &quick.Config{Values: func(vs []reflect.Value, rng *rand.Rand) {
		k, f, n := quickParams(rng)
		vs[0], vs[1], vs[2] = reflect.ValueOf(k), reflect.ValueOf(f), reflect.ValueOf(n)
	}}
	if err := quick.Check(func(k, f, n int) bool {
		lo, err := RegisterLower(k, f, n)
		if err != nil {
			return false
		}
		hi, err := RegisterUpper(k, f, n)
		if err != nil {
			return false
		}
		// lower <= upper, and both at least the k-independent floor.
		return lo <= hi && lo >= k*f+f+1 && hi >= k*f+f+1
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsPropertyMonotonicity(t *testing.T) {
	cfg := &quick.Config{Values: func(vs []reflect.Value, rng *rand.Rand) {
		k, f, n := quickParams(rng)
		vs[0], vs[1], vs[2] = reflect.ValueOf(k), reflect.ValueOf(f), reflect.ValueOf(n)
	}}
	// More servers never increase either bound; more writers never
	// decrease them.
	if err := quick.Check(func(k, f, n int) bool {
		lo1, _ := RegisterLower(k, f, n)
		lo2, _ := RegisterLower(k, f, n+1)
		hi1, _ := RegisterUpper(k, f, n)
		hi2, _ := RegisterUpper(k, f, n+1)
		if lo2 > lo1 || hi2 > hi1 {
			return false
		}
		lo3, _ := RegisterLower(k+1, f, n)
		hi3, _ := RegisterUpper(k+1, f, n)
		return lo3 >= lo1 && hi3 >= hi1
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsPropertyCoincidenceRegimes(t *testing.T) {
	cfg := &quick.Config{Values: func(vs []reflect.Value, rng *rand.Rand) {
		vs[0] = reflect.ValueOf(1 + rng.Intn(12))
		vs[1] = reflect.ValueOf(1 + rng.Intn(4))
	}}
	if err := quick.Check(func(k, f int) bool {
		// Regime n = 2f+1.
		lo, _ := RegisterLower(k, f, 2*f+1)
		hi, _ := RegisterUpper(k, f, 2*f+1)
		if lo != hi || lo != (2*f+1)*k {
			return false
		}
		// Regime n >= kf+f+1.
		n := k*f + f + 1
		lo2, _ := RegisterLower(k, f, n)
		hi2, _ := RegisterUpper(k, f, n)
		return lo2 == hi2 && lo2 == k*f+f+1
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDerivedSetQuantities(t *testing.T) {
	// y = z*f + f + 1; overflow set size; m = ceil(k/z); the sizes sum to
	// the upper bound.
	cfg := &quick.Config{Values: func(vs []reflect.Value, rng *rand.Rand) {
		k, f, n := quickParams(rng)
		vs[0], vs[1], vs[2] = reflect.ValueOf(k), reflect.ValueOf(f), reflect.ValueOf(n)
	}}
	if err := quick.Check(func(k, f, n int) bool {
		z, err := Z(f, n)
		if err != nil || z < 1 {
			return false
		}
		y, err := Y(f, n)
		if err != nil || y != z*f+f+1 {
			return false
		}
		m, err := NumSets(k, f, n)
		if err != nil || m != (k+z-1)/z {
			return false
		}
		over, err := OverflowSetSize(k, f, n)
		if err != nil {
			return false
		}
		total := (m-1)*y + over
		hi, err := RegisterUpper(k, f, n)
		return err == nil && total == hi
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(5, 2, 6)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0].Lower != 5 || rows[0].Upper != 5 {
		t.Errorf("max-register row = %+v, want 2f+1 = 5", rows[0])
	}
	if rows[1].Lower != 5 || rows[1].Upper != 5 {
		t.Errorf("cas row = %+v, want 2f+1 = 5", rows[1])
	}
	if rows[2].Lower != 22 || rows[2].Upper != 25 {
		t.Errorf("register row = %+v, want 22/25", rows[2])
	}
	if _, err := Table1(0, 2, 6); err == nil {
		t.Error("Table1 with k=0 succeeded")
	}
}

func TestGapAndMisc(t *testing.T) {
	g, err := Gap(5, 2, 6)
	if err != nil || g != 3 {
		t.Errorf("Gap(5,2,6) = %d, %v; want 3, nil", g, err)
	}
	if MinServers(2) != 5 || MaxRegisterBound(3) != 7 || CASBound(1) != 3 {
		t.Error("constant-formula helpers disagree with 2f+1")
	}
	if CoveredLower(4, 2) != 8 {
		t.Errorf("CoveredLower(4,2) = %d, want 8", CoveredLower(4, 2))
	}
	s, err := ServersLowerWithCap(4, 1, 2)
	if err != nil || s != 4 {
		t.Errorf("ServersLowerWithCap(4,1,2) = %d, %v; want 4", s, err)
	}
	sc, err := SpecialCaseRegisters(3, 2)
	if err != nil || sc != 15 {
		t.Errorf("SpecialCaseRegisters(3,2) = %d, %v; want 15", sc, err)
	}
}
