// Package faults injects server crashes into experiments: up to f servers
// may crash, and the emulations must stay correct (the paper's
// f-tolerance).
package faults

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/types"
)

// Crash is a scheduled server crash.
type Crash struct {
	// AfterOp crashes the server once this many high-level operations
	// have completed.
	AfterOp int
	// Server is the victim.
	Server types.ServerID
}

// Plan is a crash schedule. The zero value injects nothing.
type Plan struct {
	crashes []Crash
	applied int
}

// NewPlan creates a schedule from the given crashes, ordered by AfterOp.
func NewPlan(crashes ...Crash) *Plan {
	p := &Plan{crashes: make([]Crash, len(crashes))}
	copy(p.crashes, crashes)
	sort.SliceStable(p.crashes, func(i, j int) bool { return p.crashes[i].AfterOp < p.crashes[j].AfterOp })
	return p
}

// Validate checks the schedule against a failure threshold.
func (p *Plan) Validate(f, n int) error {
	if len(p.crashes) > f {
		return fmt.Errorf("faults: %d crashes exceed failure threshold f=%d", len(p.crashes), f)
	}
	seen := make(map[types.ServerID]struct{}, len(p.crashes))
	for _, c := range p.crashes {
		if int(c.Server) < 0 || int(c.Server) >= n {
			return fmt.Errorf("faults: server %d out of range (n=%d)", c.Server, n)
		}
		if _, dup := seen[c.Server]; dup {
			return fmt.Errorf("faults: duplicate crash for server %d", c.Server)
		}
		seen[c.Server] = struct{}{}
	}
	return nil
}

// Step fires every crash due after completedOps operations. It returns the
// servers crashed at this step.
func (p *Plan) Step(fab *fabric.Fabric, completedOps int) ([]types.ServerID, error) {
	var fired []types.ServerID
	for p.applied < len(p.crashes) && p.crashes[p.applied].AfterOp <= completedOps {
		s := p.crashes[p.applied].Server
		if err := fab.Crash(s); err != nil {
			return fired, fmt.Errorf("faults: crashing server %d: %w", s, err)
		}
		fired = append(fired, s)
		p.applied++
	}
	return fired, nil
}

// Remaining returns how many crashes have not fired yet.
func (p *Plan) Remaining() int { return len(p.crashes) - p.applied }

// SpreadCrashes builds a plan crashing the first `count` servers evenly
// across `totalOps` operations.
func SpreadCrashes(count, totalOps int) *Plan {
	crashes := make([]Crash, 0, count)
	for i := 0; i < count; i++ {
		after := 0
		if count > 0 && totalOps > 0 {
			after = (i + 1) * totalOps / (count + 1)
		}
		crashes = append(crashes, Crash{AfterOp: after, Server: types.ServerID(i)})
	}
	return NewPlan(crashes...)
}
