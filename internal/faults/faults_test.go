package faults

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/types"
)

func testFabric(t *testing.T, n int) *fabric.Fabric {
	t.Helper()
	c, err := cluster.New(n)
	if err != nil {
		t.Fatal(err)
	}
	return fabric.New(c)
}

func TestValidate(t *testing.T) {
	if err := NewPlan(Crash{0, 0}, Crash{1, 1}).Validate(1, 3); err == nil {
		t.Error("2 crashes for f=1 accepted")
	}
	if err := NewPlan(Crash{0, 9}).Validate(1, 3); err == nil {
		t.Error("out-of-range server accepted")
	}
	if err := NewPlan(Crash{0, 1}, Crash{2, 1}).Validate(2, 3); err == nil {
		t.Error("duplicate server accepted")
	}
	if err := NewPlan(Crash{0, 0}, Crash{3, 2}).Validate(2, 3); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if err := (&Plan{}).Validate(1, 3); err != nil {
		t.Errorf("zero plan rejected: %v", err)
	}
}

func TestStepFiresInOrder(t *testing.T) {
	fab := testFabric(t, 4)
	p := NewPlan(Crash{AfterOp: 2, Server: 1}, Crash{AfterOp: 0, Server: 0}, Crash{AfterOp: 5, Server: 2})
	if p.Remaining() != 3 {
		t.Fatalf("Remaining = %d, want 3", p.Remaining())
	}
	fired, err := p.Step(fab, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != 0 {
		t.Fatalf("step(0) fired %v, want [0]", fired)
	}
	fired, err = p.Step(fab, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fired) != 0 {
		t.Fatalf("step(1) fired %v, want none", fired)
	}
	// Jumping past several thresholds fires everything due.
	fired, err = p.Step(fab, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("step(10) fired %v, want 2 crashes", fired)
	}
	if p.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", p.Remaining())
	}
	if got := fab.Cluster().Crashes(); got != 3 {
		t.Fatalf("cluster crashes = %d, want 3", got)
	}
}

func TestSpreadCrashes(t *testing.T) {
	p := SpreadCrashes(2, 10)
	if err := p.Validate(2, 5); err != nil {
		t.Fatalf("spread plan invalid: %v", err)
	}
	if p.Remaining() != 2 {
		t.Fatalf("Remaining = %d, want 2", p.Remaining())
	}
	fab := testFabric(t, 5)
	if _, err := p.Step(fab, 10); err != nil {
		t.Fatal(err)
	}
	if got := fab.Cluster().Crashes(); got != 2 {
		t.Fatalf("crashes = %d, want 2", got)
	}
	// Degenerate spread.
	if SpreadCrashes(0, 10).Remaining() != 0 {
		t.Error("empty spread has crashes")
	}
	crashed := map[types.ServerID]bool{}
	for _, c := range SpreadCrashes(3, 0).crashes {
		if crashed[c.Server] {
			t.Error("duplicate server in spread")
		}
		crashed[c.Server] = true
	}
}
