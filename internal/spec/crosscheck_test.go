package spec

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

// TestRegularityAgreesWithLinearizabilityDefinition cross-validates the
// fast WS-Regularity checker against the paper's definition: a
// write-sequential history is WS-Regular iff for every complete read rd
// there is a linearization of writes ∪ {rd}. The right-hand side is decided
// by the independent Wing–Gong search, so agreement on random histories is
// strong evidence both are correct.
func TestRegularityAgreesWithLinearizabilityDefinition(t *testing.T) {
	const trials = 300
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < trials; trial++ {
		ops := randomWriteSequentialHistory(rng)
		fastVerdict := CheckWSRegularity(ops, 0) == nil
		defVerdict := regularByDefinition(t, ops)
		if fastVerdict != defVerdict {
			t.Fatalf("trial %d: checker says %v, definition says %v, history:\n%v",
				trial, fastVerdict, defVerdict, ops)
		}
	}
}

// randomWriteSequentialHistory generates a small write-sequential history:
// sequential writes (some pending), then reads placed at random positions
// (possibly overlapping writes) returning random plausible-or-garbage
// values.
func randomWriteSequentialHistory(rng *rand.Rand) []Op {
	var ops []Op
	now := int64(1)
	numWrites := 1 + rng.Intn(4)
	var writeVals []types.Value
	for i := 0; i < numWrites; i++ {
		v := types.Value(i + 1)
		writeVals = append(writeVals, v)
		op := Op{Client: types.ClientID(i), Kind: KindWrite, Arg: v, Start: now}
		now += 2
		if rng.Intn(5) > 0 || i < numWrites-1 {
			// Only the last write may stay pending (write-sequential).
			op.End = op.Start + 1
			op.Complete = true
		}
		ops = append(ops, op)
	}
	maxTime := now + 2
	numReads := 1 + rng.Intn(3)
	for r := 0; r < numReads; r++ {
		start := 1 + rng.Int63n(maxTime)
		end := start + 1 + rng.Int63n(4)
		// Random return value: a written value, v0, or garbage.
		var out types.Value
		switch rng.Intn(4) {
		case 0:
			out = 0
		case 1:
			out = 99 // never written
		default:
			out = writeVals[rng.Intn(len(writeVals))]
		}
		ops = append(ops, Op{
			Client: types.ClientID(100 + r), Kind: KindRead,
			Out: out, Start: start, End: end, Complete: true,
		})
	}
	return ops
}

// regularByDefinition decides WS-Regularity via the definition: every
// complete read must linearize together with all the writes.
func regularByDefinition(t *testing.T, ops []Op) bool {
	t.Helper()
	writes := Writes(ops)
	for _, rd := range Reads(ops) {
		if !rd.Complete {
			continue
		}
		sub := make([]Op, 0, len(writes)+1)
		sub = append(sub, writes...)
		sub = append(sub, rd)
		if err := CheckLinearizable(sub, 0); err != nil {
			if _, ok := err.(*Violation); !ok {
				t.Fatalf("linearizer failed structurally: %v", err)
			}
			return false
		}
	}
	return true
}
