package spec

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

// TestAtomicUniqueAgreesWithSearch is the correctness anchor of the
// polynomial checker: on thousands of small random CONCURRENT histories
// with unique write values, its verdict must coincide with the independent
// Wing–Gong search. The generator skews toward plausible histories (reads
// of real values) but also produces garbage reads and pending ops.
func TestAtomicUniqueAgreesWithSearch(t *testing.T) {
	const trials = 4000
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < trials; trial++ {
		ops := randomConcurrentHistory(rng)
		if !uniqueValuesCheckable(ops, 0) {
			t.Fatal("generator produced duplicate values")
		}
		fast := checkAtomicUnique(ops, 0) == nil
		slow := checkLinearizableSearch(ops, 0) == nil
		if fast != slow {
			t.Fatalf("trial %d: polynomial says %v, search says %v, history:\n%v",
				trial, fast, slow, ops)
		}
	}
}

// randomConcurrentHistory builds a small history with overlapping writers
// and readers, unique write values, occasional pending ops, and read
// values drawn from writes / v0 / garbage.
func randomConcurrentHistory(rng *rand.Rand) []Op {
	var ops []Op
	numWrites := 1 + rng.Intn(5)
	numReads := rng.Intn(5)
	span := int64(2 * (numWrites + numReads) * 3)
	var vals []types.Value
	for i := 0; i < numWrites; i++ {
		v := types.Value(i + 1)
		vals = append(vals, v)
		start := 1 + rng.Int63n(span)
		op := Op{Client: types.ClientID(i), Kind: KindWrite, Arg: v, Start: start}
		if rng.Intn(6) > 0 {
			op.End = start + 1 + rng.Int63n(6)
			op.Complete = true
		}
		ops = append(ops, op)
	}
	for r := 0; r < numReads; r++ {
		start := 1 + rng.Int63n(span)
		op := Op{Client: types.ClientID(100 + r), Kind: KindRead, Start: start}
		if rng.Intn(6) > 0 {
			op.End = start + 1 + rng.Int63n(6)
			op.Complete = true
			switch rng.Intn(5) {
			case 0:
				op.Out = 0 // initial value
			case 1:
				op.Out = 99 // garbage (never written)
			default:
				op.Out = vals[rng.Intn(len(vals))]
			}
		}
		ops = append(ops, op)
	}
	return ops
}

// TestAtomicUniqueWideConcurrency is the case the search cannot touch: a
// large, heavily concurrent, linearizable history checks in polynomial
// time, and planting one stale read flips the verdict.
func TestAtomicUniqueWideConcurrency(t *testing.T) {
	const clients = 200
	var ops []Op
	clock := int64(1)
	// Round-structure: each round, all clients write (unique values) with
	// overlapping intervals, then all read the round's last value with
	// overlapping intervals.
	v := types.Value(0)
	var lastVal types.Value
	for round := 0; round < 5; round++ {
		base := clock
		for c := 0; c < clients; c++ {
			v++
			ops = append(ops, Op{
				ID: len(ops), Client: types.ClientID(c), Kind: KindWrite, Arg: v,
				Start: base + int64(c), End: base + int64(clients) + int64(c) + 1, Complete: true,
			})
			lastVal = v
		}
		clock = base + 2*int64(clients) + 2
		// All writes of the round overlap; any of them may be last.
		// Readers read the highest value, which is legal: its write may
		// linearize last in the round.
		base = clock
		for c := 0; c < clients; c++ {
			ops = append(ops, Op{
				ID: len(ops), Client: types.ClientID(1000 + c), Kind: KindRead, Out: lastVal,
				Start: base + int64(c), End: base + int64(clients) + int64(c) + 1, Complete: true,
			})
		}
		clock = base + 2*int64(clients) + 2
	}
	if err := CheckLinearizable(ops, 0); err != nil {
		t.Fatalf("wide linearizable history rejected: %v", err)
	}
	// Plant a stale read: after everything, read round 1's value.
	stale := append(append([]Op{}, ops...), Op{
		ID: len(ops), Client: 5000, Kind: KindRead, Out: 1,
		Start: clock + 1, End: clock + 2, Complete: true,
	})
	if err := CheckLinearizable(stale, 0); err == nil {
		t.Fatal("stale read at the end of a wide history passed")
	}
}

// TestAtomicUniqueReadBeforeWrite rejects a read returning a value whose
// write had not been invoked yet.
func TestAtomicUniqueReadBeforeWrite(t *testing.T) {
	ops := []Op{
		{Kind: KindRead, Client: 100, Out: 1, Start: 1, End: 2, Complete: true},
		{Kind: KindWrite, Client: 0, Arg: 1, Start: 3, End: 4, Complete: true},
	}
	if err := CheckLinearizable(ops, 0); err == nil {
		t.Fatal("read before its write was invoked passed")
	}
}

// TestAtomicUniquePendingWriteReadable lets a read return a pending write's
// value (it linearizes although it never returned).
func TestAtomicUniquePendingWriteReadable(t *testing.T) {
	ops := []Op{
		{Kind: KindWrite, Client: 0, Arg: 1, Start: 1}, // pending forever
		{Kind: KindRead, Client: 100, Out: 1, Start: 2, End: 3, Complete: true},
	}
	if err := CheckLinearizable(ops, 0); err != nil {
		t.Fatalf("read of a pending write rejected: %v", err)
	}
}

// TestAtomicUniqueInitialAfterWrite rejects reading v0 after a write
// completed.
func TestAtomicUniqueInitialAfterWrite(t *testing.T) {
	ops := []Op{
		{Kind: KindWrite, Client: 0, Arg: 1, Start: 1, End: 2, Complete: true},
		{Kind: KindRead, Client: 100, Out: 0, Start: 3, End: 4, Complete: true},
	}
	if err := CheckLinearizable(ops, 0); err == nil {
		t.Fatal("read of the initial value after a completed write passed")
	}
}
