package spec

import (
	"errors"
	"testing"

	"repro/internal/types"
)

// w builds a complete write op.
func w(client types.ClientID, v types.Value, start, end int64) Op {
	return Op{Client: client, Kind: KindWrite, Arg: v, Start: start, End: end, Complete: true}
}

// pw builds a pending write op.
func pw(client types.ClientID, v types.Value, start int64) Op {
	return Op{Client: client, Kind: KindWrite, Arg: v, Start: start}
}

// r builds a complete read op.
func r(client types.ClientID, out types.Value, start, end int64) Op {
	return Op{Client: client, Kind: KindRead, Out: out, Start: start, End: end, Complete: true}
}

func TestWSSafetyHappyPath(t *testing.T) {
	ops := []Op{
		w(0, 10, 1, 2),
		r(9, 10, 3, 4),
		w(1, 20, 5, 6),
		r(9, 20, 7, 8),
	}
	if err := CheckWSSafety(ops, 0); err != nil {
		t.Fatalf("CheckWSSafety: %v", err)
	}
	if err := CheckWSRegularity(ops, 0); err != nil {
		t.Fatalf("CheckWSRegularity: %v", err)
	}
}

func TestWSSafetyInitialValue(t *testing.T) {
	ops := []Op{r(9, 0, 1, 2), w(0, 10, 3, 4)}
	if err := CheckWSSafety(ops, 0); err != nil {
		t.Fatalf("read of v0 before any write must pass: %v", err)
	}
	bad := []Op{r(9, 7, 1, 2), w(0, 7, 3, 4)}
	if err := CheckWSSafety(bad, 0); err == nil {
		t.Fatal("read returning a future value passed WS-Safety")
	}
}

func TestWSSafetyStaleReadFails(t *testing.T) {
	ops := []Op{
		w(0, 10, 1, 2),
		w(1, 20, 3, 4),
		r(9, 10, 5, 6), // stale: 20 is the last preceding write
	}
	err := CheckWSSafety(ops, 0)
	if err == nil {
		t.Fatal("stale read passed WS-Safety")
	}
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("error %T, want *Violation", err)
	}
	if v.Condition != "WS-Safety" || v.Read == nil {
		t.Fatalf("violation = %+v", v)
	}
}

func TestWSSafetyIgnoresConcurrentReads(t *testing.T) {
	// A read concurrent with a write may return anything under WS-Safety.
	ops := []Op{
		w(0, 10, 1, 2),
		w(1, 20, 3, 6),
		r(9, 999, 4, 5), // concurrent with the second write; unchecked
	}
	if err := CheckWSSafety(ops, 0); err != nil {
		t.Fatalf("concurrent read must be ignored by WS-Safety: %v", err)
	}
	// But WS-Regularity still constrains it.
	if err := CheckWSRegularity(ops, 0); err == nil {
		t.Fatal("impossible concurrent read passed WS-Regularity")
	}
}

func TestWSRegularityConcurrentChoices(t *testing.T) {
	base := []Op{
		w(0, 10, 1, 2),
		w(1, 20, 5, 9),
	}
	// A read overlapping the second write may return the last completed
	// write or the concurrent one.
	for _, val := range []types.Value{10, 20} {
		ops := append(append([]Op{}, base...), r(9, val, 6, 7))
		if err := CheckWSRegularity(ops, 0); err != nil {
			t.Errorf("read of %d during concurrent write: %v", val, err)
		}
	}
	// But not an already-overwritten older value... there is none older
	// than 10 here except v0, which is illegal once write 10 completed.
	ops := append(append([]Op{}, base...), r(9, 0, 6, 7))
	if err := CheckWSRegularity(ops, 0); err == nil {
		t.Error("read of v0 after completed write passed WS-Regularity")
	}
}

func TestWSRegularityPendingWriteVisible(t *testing.T) {
	// A pending write may be linearized before a read that overlaps it.
	ops := []Op{
		w(0, 10, 1, 2),
		pw(1, 20, 3),
		r(9, 20, 4, 5),
	}
	if err := CheckWSRegularity(ops, 0); err != nil {
		t.Fatalf("read of pending write's value: %v", err)
	}
}

func TestWSRegularityNewMinimumMonotonic(t *testing.T) {
	// Once a newer write completed before the read began, older values
	// are illegal even if their writes overlap nothing.
	ops := []Op{
		w(0, 10, 1, 2),
		w(1, 20, 3, 4),
		w(2, 30, 5, 6),
		r(9, 10, 7, 8),
	}
	if err := CheckWSRegularity(ops, 0); err == nil {
		t.Fatal("two-writes-stale read passed WS-Regularity")
	}
}

func TestCheckersRejectMalformedInput(t *testing.T) {
	concurrentWrites := []Op{
		w(0, 10, 1, 5),
		w(1, 20, 2, 6),
	}
	if err := CheckWSSafety(concurrentWrites, 0); !errors.Is(err, ErrNotWriteSequential) {
		t.Errorf("safety on concurrent writes err = %v, want ErrNotWriteSequential", err)
	}
	if err := CheckWSRegularity(concurrentWrites, 0); !errors.Is(err, ErrNotWriteSequential) {
		t.Errorf("regularity on concurrent writes err = %v, want ErrNotWriteSequential", err)
	}
	dupValues := []Op{
		w(0, 10, 1, 2),
		w(1, 10, 3, 4),
	}
	if err := CheckWSSafety(dupValues, 0); !errors.Is(err, ErrDuplicateValues) {
		t.Errorf("safety on dup values err = %v, want ErrDuplicateValues", err)
	}
}

func TestPendingReadsIgnored(t *testing.T) {
	ops := []Op{
		w(0, 10, 1, 2),
		{Client: 9, Kind: KindRead, Start: 3}, // pending read
	}
	if err := CheckWSSafety(ops, 0); err != nil {
		t.Fatalf("pending read must be ignored: %v", err)
	}
	if err := CheckWSRegularity(ops, 0); err != nil {
		t.Fatalf("pending read must be ignored: %v", err)
	}
}

func TestViolationErrorMessage(t *testing.T) {
	rd := r(9, 1, 5, 6)
	v := &Violation{Condition: "WS-Safety", Read: &rd, Detail: "boom"}
	if v.Error() == "" {
		t.Error("empty violation message")
	}
	global := &Violation{Condition: "Atomicity", Detail: "boom"}
	if global.Error() == "" {
		t.Error("empty global violation message")
	}
}
