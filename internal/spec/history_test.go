package spec

import (
	"sync"
	"testing"

	"repro/internal/types"
)

func TestRecordingOrderAndPrecedence(t *testing.T) {
	h := &History{}
	w := h.BeginWrite(0, 10)
	w.End()
	r := h.BeginRead(1)
	r.End(10)

	ops := h.Snapshot()
	if len(ops) != 2 {
		t.Fatalf("Snapshot len = %d, want 2", len(ops))
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
	write, read := ops[0], ops[1]
	if write.Kind != KindWrite || write.Arg != 10 || !write.Complete {
		t.Fatalf("write op = %+v", write)
	}
	if read.Kind != KindRead || read.Out != 10 || !read.Complete {
		t.Fatalf("read op = %+v", read)
	}
	if !write.Precedes(read) {
		t.Error("sequential write must precede read")
	}
	if read.Precedes(write) {
		t.Error("read cannot precede earlier write")
	}
	if write.ConcurrentWith(read) {
		t.Error("sequential ops must not be concurrent")
	}
}

func TestConcurrencyDetection(t *testing.T) {
	h := &History{}
	w1 := h.BeginWrite(0, 10) // open
	w2 := h.BeginWrite(1, 20) // open, overlapping w1
	w1.End()
	w2.End()

	ops := h.Snapshot()
	if !ops[0].ConcurrentWith(ops[1]) {
		t.Error("overlapping writes must be concurrent")
	}
	if IsWriteSequential(ops) {
		t.Error("history with overlapping writes reported write-sequential")
	}
}

func TestPendingOps(t *testing.T) {
	h := &History{}
	h.BeginWrite(0, 10) // never ends
	r := h.BeginRead(1)
	r.End(0)

	ops := h.Snapshot()
	if ops[0].Complete {
		t.Error("unfinished write marked complete")
	}
	if ops[0].Precedes(ops[1]) {
		t.Error("pending op cannot precede anything")
	}
	if !ops[0].ConcurrentWith(ops[1]) {
		t.Error("pending write overlaps the read")
	}
}

func TestWritesReadsSplit(t *testing.T) {
	h := &History{}
	h.BeginWrite(0, 1).End()
	h.BeginRead(9).End(1)
	h.BeginWrite(1, 2).End()
	ops := h.Snapshot()
	ws, rs := Writes(ops), Reads(ops)
	if len(ws) != 2 || len(rs) != 1 {
		t.Fatalf("split = %d writes, %d reads; want 2, 1", len(ws), len(rs))
	}
	if ws[0].Arg != 1 || ws[1].Arg != 2 {
		t.Errorf("writes not in invocation order: %v", ws)
	}
}

func TestUniqueWriteValues(t *testing.T) {
	h := &History{}
	h.BeginWrite(0, 1).End()
	h.BeginWrite(1, 2).End()
	if !UniqueWriteValues(h.Snapshot()) {
		t.Error("distinct values reported duplicate")
	}
	h.BeginWrite(2, 1).End()
	if UniqueWriteValues(h.Snapshot()) {
		t.Error("duplicate values reported unique")
	}
}

func TestConcurrentRecording(t *testing.T) {
	// History must be safe for concurrent use (run with -race).
	h := &History{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if i%2 == 0 {
					w := h.BeginWrite(types.ClientID(g), types.Value(g*1000+i))
					w.End()
				} else {
					r := h.BeginRead(types.ClientID(g))
					r.End(0)
				}
			}
		}(g)
	}
	wg.Wait()
	ops := h.Snapshot()
	if len(ops) != 800 {
		t.Fatalf("recorded %d ops, want 800", len(ops))
	}
	for i, op := range ops {
		if op.ID != i {
			t.Fatalf("op %d has ID %d", i, op.ID)
		}
		if !op.Complete {
			t.Fatalf("op %d incomplete", i)
		}
		if op.End <= op.Start {
			t.Fatalf("op %d has End %d <= Start %d", i, op.End, op.Start)
		}
	}
}

func TestOpString(t *testing.T) {
	h := &History{}
	w := h.BeginWrite(0, 10)
	pendingW := h.Snapshot()[0]
	w.End()
	r := h.BeginRead(1)
	pendingR := h.Snapshot()[1]
	r.End(10)
	for _, op := range append(h.Snapshot(), pendingW, pendingR) {
		if op.String() == "" {
			t.Errorf("empty String for %+v", op)
		}
	}
}
