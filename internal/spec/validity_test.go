package spec

import "testing"

func TestReadValidityHappyPath(t *testing.T) {
	ops := []Op{
		w(0, 10, 1, 5),
		w(1, 20, 2, 6),
		r(9, 10, 3, 7),
		r(9, 20, 8, 9),
		r(9, 0, 10, 11), // v0 is always allowed
	}
	if err := CheckReadValidity(ops, 0); err != nil {
		t.Fatalf("CheckReadValidity: %v", err)
	}
}

func TestReadValidityUnwrittenValue(t *testing.T) {
	ops := []Op{
		w(0, 10, 1, 2),
		r(9, 55, 3, 4),
	}
	if err := CheckReadValidity(ops, 0); err == nil {
		t.Fatal("read of unwritten value passed validity")
	}
}

func TestReadValidityFutureWrite(t *testing.T) {
	// The write is invoked only after the read returned: even validity
	// forbids reading it.
	ops := []Op{
		r(9, 10, 1, 2),
		w(0, 10, 3, 4),
	}
	if err := CheckReadValidity(ops, 0); err == nil {
		t.Fatal("read of a future write passed validity")
	}
}

func TestReadValidityPendingWriteOK(t *testing.T) {
	ops := []Op{
		pw(0, 10, 1),
		r(9, 10, 2, 3),
	}
	if err := CheckReadValidity(ops, 0); err != nil {
		t.Fatalf("read of overlapping pending write: %v", err)
	}
}

func TestReadValidityIgnoresPendingReads(t *testing.T) {
	ops := []Op{
		{Client: 9, Kind: KindRead, Start: 1, Out: 999},
	}
	if err := CheckReadValidity(ops, 0); err != nil {
		t.Fatalf("pending read must be ignored: %v", err)
	}
}
