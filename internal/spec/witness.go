package spec

import (
	"fmt"

	"repro/internal/types"
)

// FindLinearization returns a witness linearization for the history: the
// indexes (into ops) of the linearized operations in linearization order.
// Pending operations that the witness drops are absent from the result.
// It returns an Atomicity violation if none exists, and ErrTooLarge beyond
// the search capacity.
//
// The witness lets failure reports show the order that explains a history,
// and lets tests verify the checker's positive verdicts independently (see
// ReplayLinearization).
func FindLinearization(ops []Op, v0 types.Value) ([]int, error) {
	if len(ops) > maxLinOps {
		return nil, fmt.Errorf("%w: %d ops (max %d)", ErrTooLarge, len(ops), maxLinOps)
	}
	var completeMask uint64
	for i, op := range ops {
		if op.Complete {
			completeMask |= 1 << uint(i)
		}
	}

	type state struct {
		consumed uint64
		val      types.Value
	}
	visited := make(map[state]struct{})

	candidate := func(i int, consumed uint64) bool {
		for j, other := range ops {
			if j == i || consumed&(1<<uint(j)) != 0 {
				continue
			}
			if other.Complete && other.End < ops[i].Start {
				return false
			}
		}
		return true
	}

	var order []int
	var dfs func(consumed uint64, val types.Value) bool
	dfs = func(consumed uint64, val types.Value) bool {
		if consumed&completeMask == completeMask {
			return true
		}
		st := state{consumed: consumed, val: val}
		if _, seen := visited[st]; seen {
			return false
		}
		visited[st] = struct{}{}
		for i, op := range ops {
			bit := uint64(1) << uint(i)
			if consumed&bit != 0 || !candidate(i, consumed) {
				continue
			}
			switch op.Kind {
			case KindWrite:
				order = append(order, i)
				if dfs(consumed|bit, op.Arg) {
					return true
				}
				order = order[:len(order)-1]
				if !op.Complete && dfs(consumed|bit, val) {
					return true
				}
			case KindRead:
				if op.Complete {
					if op.Out == val {
						order = append(order, i)
						if dfs(consumed|bit, val) {
							return true
						}
						order = order[:len(order)-1]
					}
				} else if dfs(consumed|bit, val) {
					return true
				}
			}
		}
		return false
	}

	if dfs(0, v0) {
		out := make([]int, len(order))
		copy(out, order)
		return out, nil
	}
	return nil, &Violation{
		Condition: "Atomicity",
		Detail:    fmt.Sprintf("no linearization exists for %d ops", len(ops)),
	}
}

// ReplayLinearization verifies a witness independently: the order must be a
// sequence of distinct op indexes that (1) contains every complete op,
// (2) respects the precedence relation, and (3) satisfies the register's
// sequential specification starting from v0.
func ReplayLinearization(ops []Op, order []int, v0 types.Value) error {
	seen := make(map[int]struct{}, len(order))
	for _, i := range order {
		if i < 0 || i >= len(ops) {
			return fmt.Errorf("spec: witness index %d out of range", i)
		}
		if _, dup := seen[i]; dup {
			return fmt.Errorf("spec: witness repeats op %d", i)
		}
		seen[i] = struct{}{}
	}
	for i, op := range ops {
		if !op.Complete {
			continue
		}
		if _, ok := seen[i]; !ok {
			return fmt.Errorf("spec: witness omits complete op %d (%v)", i, op)
		}
	}
	// Precedence: if a precedes b in real time, a must come first.
	pos := make(map[int]int, len(order))
	for rank, i := range order {
		pos[i] = rank
	}
	for _, a := range order {
		for _, b := range order {
			if ops[a].Precedes(ops[b]) && pos[a] > pos[b] {
				return fmt.Errorf("spec: witness inverts %v before %v", ops[b], ops[a])
			}
		}
	}
	// Sequential specification.
	val := v0
	for _, i := range order {
		op := ops[i]
		switch op.Kind {
		case KindWrite:
			val = op.Arg
		case KindRead:
			if op.Complete && op.Out != val {
				return fmt.Errorf("spec: witness read %v sees %d", op, val)
			}
		}
	}
	return nil
}
