package spec

import (
	"testing"

	"repro/internal/types"
)

// mkOp builds a complete op.
func mkOp(id int, client types.ClientID, kind OpKind, arg, out types.Value, start, end int64) Op {
	return Op{ID: id, Client: client, Kind: kind, Arg: arg, Out: out, Start: start, End: end, Complete: true}
}

// TestSampleSmallHistoryPassesThrough keeps histories under the cap whole.
func TestSampleSmallHistoryPassesThrough(t *testing.T) {
	ops := []Op{
		mkOp(0, 0, KindWrite, 1, 0, 1, 2),
		mkOp(1, 100, KindRead, 0, 1, 3, 4),
	}
	got := SampleLinearizable(ops, 64, 0)
	if len(got) != 2 {
		t.Fatalf("sample dropped ops: %d of 2", len(got))
	}
}

// TestSampleIncludesSourceWrites demands every sampled read's source write
// ride along, over a history much larger than the cap.
func TestSampleIncludesSourceWrites(t *testing.T) {
	var ops []Op
	clock := int64(1)
	for i := 0; i < 300; i++ {
		v := types.Value(i + 1)
		ops = append(ops, mkOp(len(ops), 0, KindWrite, v, 0, clock, clock+1))
		clock += 2
		ops = append(ops, mkOp(len(ops), 100, KindRead, 0, v, clock, clock+1))
		clock += 2
	}
	for seed := int64(0); seed < 10; seed++ {
		sample := SampleLinearizable(ops, 32, seed)
		if len(sample) == 0 || len(sample) > 32 {
			t.Fatalf("seed %d: sample size %d", seed, len(sample))
		}
		writes := make(map[types.Value]bool)
		for _, op := range sample {
			if op.Kind == KindWrite {
				writes[op.Arg] = true
			}
		}
		for _, op := range sample {
			if op.Kind == KindRead && op.Out != types.InitialValue && !writes[op.Out] {
				t.Fatalf("seed %d: read of %d sampled without its source write", seed, op.Out)
			}
		}
		// The projection of a sequential alternating history must
		// linearize.
		if err := CheckLinearizable(sample, types.InitialValue); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestSampleCatchesStaleRead plants a new-old inversion: a read that
// returns an old value after a read of a newer one already returned. Any
// sample containing both reads (here the tail window always does) must
// fail the check.
func TestSampleCatchesStaleRead(t *testing.T) {
	ops := []Op{
		mkOp(0, 0, KindWrite, 1, 0, 1, 2),
		mkOp(1, 0, KindWrite, 2, 0, 3, 4),
		mkOp(2, 100, KindRead, 0, 2, 5, 6),
		mkOp(3, 101, KindRead, 0, 1, 7, 8), // stale: 1 after 2 was read
	}
	if err := CheckLinearizable(ops, types.InitialValue); err == nil {
		t.Fatal("crafted violation passes the full check; test is broken")
	}
	sample := SampleLinearizable(ops, 64, 0)
	if err := CheckLinearizable(sample, types.InitialValue); err == nil {
		t.Fatal("sample hid the stale-read violation")
	}
}

// TestHistoryDiscardMode checks that discard mode records nothing and that
// handles stay harmless.
func TestHistoryDiscardMode(t *testing.T) {
	h := &History{}
	h.SetDiscard(true)
	w := h.BeginWrite(0, 7)
	r := h.BeginRead(100)
	w.End()
	r.End(7)
	if h.Len() != 0 {
		t.Fatalf("discard mode recorded %d ops", h.Len())
	}
	h.SetDiscard(false)
	h.BeginWrite(0, 8).End()
	if h.Len() != 1 {
		t.Fatalf("recording after discard off: %d ops, want 1", h.Len())
	}
}
