package spec

import (
	"fmt"

	"repro/internal/types"
)

// maxLinOps bounds the linearizability search; histories are encoded as
// 64-bit masks.
const maxLinOps = 64

// CheckLinearizable checks atomicity (Appendix A.3): the history must have
// a linearization with respect to the register's sequential specification.
// Complete operations must all be linearized; pending operations may be
// linearized (taking effect at some point after their invocation) or
// dropped, exactly as in the paper's definition of linearization.
//
// The search is a Wing–Gong style exploration with memoization on
// (consumed-ops bitmask, register value); unique write values keep the
// state space small. Histories larger than 64 operations return ErrTooLarge.
func CheckLinearizable(ops []Op, v0 types.Value) error {
	if len(ops) > maxLinOps {
		return fmt.Errorf("%w: %d ops (max %d)", ErrTooLarge, len(ops), maxLinOps)
	}
	var completeMask uint64
	for i, op := range ops {
		if op.Complete {
			completeMask |= 1 << uint(i)
		}
	}
	type state struct {
		consumed uint64
		val      types.Value
	}
	visited := make(map[state]struct{})

	// candidate reports whether op i may be linearized next: no other
	// unconsumed complete op strictly precedes it.
	candidate := func(i int, consumed uint64) bool {
		for j, other := range ops {
			if j == i || consumed&(1<<uint(j)) != 0 {
				continue
			}
			if other.Complete && other.End < ops[i].Start {
				return false
			}
		}
		return true
	}

	var dfs func(consumed uint64, val types.Value) bool
	dfs = func(consumed uint64, val types.Value) bool {
		if consumed&completeMask == completeMask {
			return true
		}
		st := state{consumed: consumed, val: val}
		if _, seen := visited[st]; seen {
			return false
		}
		visited[st] = struct{}{}
		for i, op := range ops {
			bit := uint64(1) << uint(i)
			if consumed&bit != 0 || !candidate(i, consumed) {
				continue
			}
			switch op.Kind {
			case KindWrite:
				if dfs(consumed|bit, op.Arg) {
					return true
				}
				if !op.Complete && dfs(consumed|bit, val) {
					// A pending write may be dropped from the
					// linearization.
					return true
				}
			case KindRead:
				if op.Complete {
					if op.Out == val && dfs(consumed|bit, val) {
						return true
					}
				} else if dfs(consumed|bit, val) {
					// A pending read may be dropped.
					return true
				}
			}
		}
		return false
	}

	if dfs(0, v0) {
		return nil
	}
	return &Violation{
		Condition: "Atomicity",
		Detail:    fmt.Sprintf("no linearization exists for %d ops", len(ops)),
	}
}
