package spec

import (
	"fmt"
	"sync"

	"repro/internal/types"
)

// maxLinOps bounds the linearizability search; histories are encoded as
// 64-bit masks.
const maxLinOps = 64

// linState is the memo key of the linearization search: which ops have been
// consumed and what the register holds.
type linState struct {
	consumed uint64
	val      types.Value
}

// linMemoPool recycles the memo maps across CheckLinearizable calls. The
// checker runs once per schedule in the exhaustive sweeps, so growing a
// fresh map to steady-state size on every call is a measurable share of
// the per-schedule cost; pooling keeps the buckets warm. Maps start small
// and retain the capacity of the largest history they served.
var linMemoPool = sync.Pool{
	New: func() any { return make(map[linState]struct{}) },
}

// precedenceMasks computes, for each op i, the bitmask of complete ops that
// strictly precede it (End < Start). Histories are capped at maxLinOps, so
// the direct allocation-free pass over end times sorted into a running
// index is bounded and cheap — and the search then tests "may op i be
// linearized next" with a single AND instead of rescanning the history on
// every expansion.
func precedenceMasks(ops []Op, masks []uint64) {
	// byEnd collects complete ops in ascending End order via insertion
	// sort on a stack array (histories are nearly sorted already: ops are
	// recorded in invocation order).
	var byEnd [maxLinOps]int
	ends := 0
	for i, op := range ops {
		if !op.Complete {
			continue
		}
		j := ends
		for j > 0 && ops[byEnd[j-1]].End > op.End {
			byEnd[j] = byEnd[j-1]
			j--
		}
		byEnd[j] = i
		ends++
	}
	for i, op := range ops {
		var mask uint64
		for _, j := range byEnd[:ends] {
			if ops[j].End >= op.Start {
				break
			}
			mask |= 1 << uint(j)
		}
		masks[i] = mask
	}
}

// CheckLinearizable checks atomicity (Appendix A.3): the history must have
// a linearization with respect to the register's sequential specification.
// Complete operations must all be linearized; pending operations may be
// linearized (taking effect at some point after their invocation) or
// dropped, exactly as in the paper's definition of linearization.
//
// Histories with unique write values (every experiment and load run in
// this repository) are decided by the polynomial write-order algorithm in
// atomicity.go, which handles wide concurrency — hundreds of clients —
// and histories up to 4096 ops. Everything else falls back to a Wing–Gong
// style exploration with memoization on (consumed-ops bitmask, register
// value): the precedence relation is precomputed once as per-op bitmasks,
// so testing whether an op may be linearized next is a single AND instead
// of a rescan of the history, and the memo map is pooled across calls.
// The fallback is exponential in the concurrency antichain and capped at
// 64 operations (ErrTooLarge beyond either path's cap).
func CheckLinearizable(ops []Op, v0 types.Value) error {
	if uniqueValuesCheckable(ops, v0) {
		if len(ops) > maxUniqueLinOps {
			return fmt.Errorf("%w: %d ops (max %d)", ErrTooLarge, len(ops), maxUniqueLinOps)
		}
		return checkAtomicUnique(ops, v0)
	}
	if len(ops) > maxLinOps {
		return fmt.Errorf("%w: %d ops (max %d)", ErrTooLarge, len(ops), maxLinOps)
	}
	return checkLinearizableSearch(ops, v0)
}

// checkLinearizableSearch is the general-history Wing–Gong decider; the
// unique-value cross-check fuzz test also drives it directly against the
// polynomial algorithm.
func checkLinearizableSearch(ops []Op, v0 types.Value) error {
	var completeMask uint64
	for i, op := range ops {
		if op.Complete {
			completeMask |= 1 << uint(i)
		}
	}
	var precMask [maxLinOps]uint64
	precedenceMasks(ops, precMask[:len(ops)])

	visited := linMemoPool.Get().(map[linState]struct{})
	clear(visited)
	defer linMemoPool.Put(visited)

	var dfs func(consumed uint64, val types.Value) bool
	dfs = func(consumed uint64, val types.Value) bool {
		if consumed&completeMask == completeMask {
			return true
		}
		st := linState{consumed: consumed, val: val}
		if _, seen := visited[st]; seen {
			return false
		}
		visited[st] = struct{}{}
		for i, op := range ops {
			bit := uint64(1) << uint(i)
			// Op i may be linearized next iff it is unconsumed and no
			// unconsumed complete op strictly precedes it.
			if consumed&bit != 0 || precMask[i]&^consumed != 0 {
				continue
			}
			switch op.Kind {
			case KindWrite:
				if dfs(consumed|bit, op.Arg) {
					return true
				}
				if !op.Complete && dfs(consumed|bit, val) {
					// A pending write may be dropped from the
					// linearization.
					return true
				}
			case KindRead:
				if op.Complete {
					if op.Out == val && dfs(consumed|bit, val) {
						return true
					}
				} else if dfs(consumed|bit, val) {
					// A pending read may be dropped.
					return true
				}
			}
		}
		return false
	}

	if dfs(0, v0) {
		return nil
	}
	return &Violation{
		Condition: "Atomicity",
		Detail:    fmt.Sprintf("no linearization exists for %d ops", len(ops)),
	}
}
