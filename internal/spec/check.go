package spec

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/types"
)

// Violation describes a consistency violation found by a checker.
type Violation struct {
	// Condition is the violated condition ("WS-Safety", "WS-Regularity",
	// "Atomicity").
	Condition string
	// Read is the offending read, when the violation is read-specific.
	Read *Op
	// Detail explains the violation.
	Detail string
}

// Error implements error.
func (v *Violation) Error() string {
	if v.Read != nil {
		return fmt.Sprintf("spec: %s violated by %v: %s", v.Condition, *v.Read, v.Detail)
	}
	return fmt.Sprintf("spec: %s violated: %s", v.Condition, v.Detail)
}

// Errors reported by the checkers for malformed input.
var (
	// ErrNotWriteSequential is returned when a write-sequential checker
	// receives a history with concurrent writes.
	ErrNotWriteSequential = errors.New("spec: history is not write-sequential")
	// ErrDuplicateValues is returned when written values are not unique.
	ErrDuplicateValues = errors.New("spec: written values are not unique")
	// ErrTooLarge is returned by the linearizability checker for
	// histories beyond its search capacity.
	ErrTooLarge = errors.New("spec: history too large for linearizability search")
)

// wsIndex is the per-history precomputation shared by the write-sequential
// checkers. In a write-sequential history the complete writes have pairwise
// disjoint intervals, so sorting them by End also sorts them by Start, and
// "the last write preceding a read" becomes a binary search instead of the
// O(writes) rescan each read otherwise pays. Pending writes (held forever
// by a covering adversary) are few and kept aside.
type wsIndex struct {
	// complete holds the complete writes in ascending End (equivalently
	// Start) order.
	complete []Op
	// pending holds the incomplete writes.
	pending []Op
	// minPendingStart is the earliest pending-write invocation time
	// (math.MaxInt64 when there are none): a complete read is concurrent
	// with some pending write iff its End reaches that far.
	minPendingStart int64
}

// indexWrites builds the index from a history snapshot. The input must be
// write-sequential (checked by validateWS before any checker uses this).
func indexWrites(ops []Op) wsIndex {
	idx := wsIndex{minPendingStart: math.MaxInt64}
	for _, w := range Writes(ops) {
		if w.Complete {
			idx.complete = append(idx.complete, w)
		} else {
			idx.pending = append(idx.pending, w)
			if w.Start < idx.minPendingStart {
				idx.minPendingStart = w.Start
			}
		}
	}
	// Writes() sorts by Start; disjoint complete intervals make that the
	// End order too.
	return idx
}

// lastPreceding returns the index into idx.complete of the last write that
// ends before start, or -1 if none does.
func (idx wsIndex) lastPreceding(start int64) int {
	return sort.Search(len(idx.complete), func(i int) bool {
		return idx.complete[i].End >= start
	}) - 1
}

// concurrentWithAnyWrite reports whether the complete read rd overlaps any
// write, given p = idx.lastPreceding(rd.Start). Complete writes after p all
// end at or after rd starts, so the first of them overlaps rd iff it starts
// before rd ends; later ones start later still.
func (idx wsIndex) concurrentWithAnyWrite(rd Op, p int) bool {
	if p+1 < len(idx.complete) && idx.complete[p+1].Start <= rd.End {
		return true
	}
	return idx.minPendingStart <= rd.End
}

// readCandidates computes the set of values a read may legally return in a
// write-sequential history under WS-Regularity: the value of the last write
// that completed before the read was invoked (or v0 if none), or the value
// of any write concurrent with the read (including writes still pending at
// the end of the run, which a linearization may include).
//
// Why this is exactly WS-Regularity: writes are sequential, so every
// linearization of writes ∪ {rd} orders the writes by real time. All writes
// that precede rd must come before rd, so rd cannot return a value older
// than the last preceding write; and rd may be placed immediately after any
// write concurrent with it.
func readCandidates(rd Op, writes []Op, v0 types.Value) map[types.Value]struct{} {
	candidates := make(map[types.Value]struct{})
	lastPreceding := -1
	for i, w := range writes {
		if w.Precedes(rd) {
			lastPreceding = i
		}
	}
	if lastPreceding >= 0 {
		candidates[writes[lastPreceding].Arg] = struct{}{}
	} else {
		candidates[v0] = struct{}{}
	}
	for _, w := range writes {
		if rd.ConcurrentWith(w) {
			// Neither precedes the other: a linearization may place
			// rd immediately after w.
			candidates[w.Arg] = struct{}{}
		}
	}
	return candidates
}

// validateWS checks the common preconditions of the write-sequential
// checkers.
func validateWS(ops []Op) error {
	if !IsWriteSequential(ops) {
		return ErrNotWriteSequential
	}
	if !UniqueWriteValues(ops) {
		return ErrDuplicateValues
	}
	return nil
}

// CheckWSSafety checks Write-Sequential Safety: every complete read that is
// not concurrent with any write must return the value of the last write
// that precedes it (or v0 if none). The input history must be
// write-sequential with unique write values.
func CheckWSSafety(ops []Op, v0 types.Value) error {
	if err := validateWS(ops); err != nil {
		return err
	}
	idx := indexWrites(ops)
	for _, rd := range Reads(ops) {
		if !rd.Complete {
			continue
		}
		p := idx.lastPreceding(rd.Start)
		if idx.concurrentWithAnyWrite(rd, p) {
			continue
		}
		want := v0
		if p >= 0 {
			want = idx.complete[p].Arg
		}
		if rd.Out != want {
			r := rd
			return &Violation{
				Condition: "WS-Safety",
				Read:      &r,
				Detail:    fmt.Sprintf("returned %d, want %d", rd.Out, want),
			}
		}
	}
	return nil
}

// CheckWSRegularity checks Write-Sequential Regularity: every complete read
// must have a linearization together with all writes, i.e. it returns
// either the value of the last preceding write (or v0) or the value of a
// concurrent write. The input history must be write-sequential with unique
// write values.
func CheckWSRegularity(ops []Op, v0 types.Value) error {
	if err := validateWS(ops); err != nil {
		return err
	}
	idx := indexWrites(ops)
	for _, rd := range Reads(ops) {
		if !rd.Complete {
			continue
		}
		if idx.regularValue(rd, v0) {
			continue
		}
		// Violation: rebuild the full candidate set for the message.
		candidates := readCandidates(rd, Writes(ops), v0)
		r := rd
		return &Violation{
			Condition: "WS-Regularity",
			Read:      &r,
			Detail:    fmt.Sprintf("returned %d, not a legal regular value %v", rd.Out, keysOf(candidates)),
		}
	}
	return nil
}

// regularValue reports whether rd.Out is a legal WS-Regular return: the
// value of the last preceding complete write (or v0), or the value of any
// write concurrent with rd. Concurrent complete writes form the contiguous
// run just after the last preceding one, so no candidate set is
// materialized on the happy path.
func (idx wsIndex) regularValue(rd Op, v0 types.Value) bool {
	p := idx.lastPreceding(rd.Start)
	want := v0
	if p >= 0 {
		want = idx.complete[p].Arg
	}
	if rd.Out == want {
		return true
	}
	for q := p + 1; q < len(idx.complete) && idx.complete[q].Start <= rd.End; q++ {
		if idx.complete[q].Arg == rd.Out {
			return true
		}
	}
	for _, w := range idx.pending {
		if w.Start <= rd.End && w.Arg == rd.Out {
			return true
		}
	}
	return false
}

// keysOf lists candidate values for error messages.
func keysOf(m map[types.Value]struct{}) []types.Value {
	out := make([]types.Value, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	return out
}
