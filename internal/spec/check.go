package spec

import (
	"errors"
	"fmt"

	"repro/internal/types"
)

// Violation describes a consistency violation found by a checker.
type Violation struct {
	// Condition is the violated condition ("WS-Safety", "WS-Regularity",
	// "Atomicity").
	Condition string
	// Read is the offending read, when the violation is read-specific.
	Read *Op
	// Detail explains the violation.
	Detail string
}

// Error implements error.
func (v *Violation) Error() string {
	if v.Read != nil {
		return fmt.Sprintf("spec: %s violated by %v: %s", v.Condition, *v.Read, v.Detail)
	}
	return fmt.Sprintf("spec: %s violated: %s", v.Condition, v.Detail)
}

// Errors reported by the checkers for malformed input.
var (
	// ErrNotWriteSequential is returned when a write-sequential checker
	// receives a history with concurrent writes.
	ErrNotWriteSequential = errors.New("spec: history is not write-sequential")
	// ErrDuplicateValues is returned when written values are not unique.
	ErrDuplicateValues = errors.New("spec: written values are not unique")
	// ErrTooLarge is returned by the linearizability checker for
	// histories beyond its search capacity.
	ErrTooLarge = errors.New("spec: history too large for linearizability search")
)

// readCandidates computes the set of values a read may legally return in a
// write-sequential history under WS-Regularity: the value of the last write
// that completed before the read was invoked (or v0 if none), or the value
// of any write concurrent with the read (including writes still pending at
// the end of the run, which a linearization may include).
//
// Why this is exactly WS-Regularity: writes are sequential, so every
// linearization of writes ∪ {rd} orders the writes by real time. All writes
// that precede rd must come before rd, so rd cannot return a value older
// than the last preceding write; and rd may be placed immediately after any
// write concurrent with it.
func readCandidates(rd Op, writes []Op, v0 types.Value) map[types.Value]struct{} {
	candidates := make(map[types.Value]struct{})
	lastPreceding := -1
	for i, w := range writes {
		if w.Precedes(rd) {
			lastPreceding = i
		}
	}
	if lastPreceding >= 0 {
		candidates[writes[lastPreceding].Arg] = struct{}{}
	} else {
		candidates[v0] = struct{}{}
	}
	for _, w := range writes {
		if rd.ConcurrentWith(w) {
			// Neither precedes the other: a linearization may place
			// rd immediately after w.
			candidates[w.Arg] = struct{}{}
		}
	}
	return candidates
}

// isReadWriteConcurrent reports whether rd overlaps any write.
func isReadWriteConcurrent(rd Op, writes []Op) bool {
	for _, w := range writes {
		if rd.ConcurrentWith(w) {
			return true
		}
	}
	return false
}

// validateWS checks the common preconditions of the write-sequential
// checkers.
func validateWS(ops []Op) error {
	if !IsWriteSequential(ops) {
		return ErrNotWriteSequential
	}
	if !UniqueWriteValues(ops) {
		return ErrDuplicateValues
	}
	return nil
}

// CheckWSSafety checks Write-Sequential Safety: every complete read that is
// not concurrent with any write must return the value of the last write
// that precedes it (or v0 if none). The input history must be
// write-sequential with unique write values.
func CheckWSSafety(ops []Op, v0 types.Value) error {
	if err := validateWS(ops); err != nil {
		return err
	}
	writes := Writes(ops)
	for _, rd := range Reads(ops) {
		if !rd.Complete || isReadWriteConcurrent(rd, writes) {
			continue
		}
		want := v0
		for _, w := range writes {
			if w.Precedes(rd) {
				want = w.Arg
			}
		}
		if rd.Out != want {
			r := rd
			return &Violation{
				Condition: "WS-Safety",
				Read:      &r,
				Detail:    fmt.Sprintf("returned %d, want %d", rd.Out, want),
			}
		}
	}
	return nil
}

// CheckWSRegularity checks Write-Sequential Regularity: every complete read
// must have a linearization together with all writes, i.e. it returns
// either the value of the last preceding write (or v0) or the value of a
// concurrent write. The input history must be write-sequential with unique
// write values.
func CheckWSRegularity(ops []Op, v0 types.Value) error {
	if err := validateWS(ops); err != nil {
		return err
	}
	writes := Writes(ops)
	for _, rd := range Reads(ops) {
		if !rd.Complete {
			continue
		}
		candidates := readCandidates(rd, writes, v0)
		if _, ok := candidates[rd.Out]; !ok {
			r := rd
			return &Violation{
				Condition: "WS-Regularity",
				Read:      &r,
				Detail:    fmt.Sprintf("returned %d, not a legal regular value %v", rd.Out, keysOf(candidates)),
			}
		}
	}
	return nil
}

// keysOf lists candidate values for error messages.
func keysOf(m map[types.Value]struct{}) []types.Value {
	out := make([]types.Value, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	return out
}
