package spec

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

// referenceWSSafety is the pre-index O(reads×writes) checker kept as a test
// oracle: the binary-searched wsIndex fast path must agree with it verdict
// for verdict.
func referenceWSSafety(ops []Op, v0 types.Value) error {
	if err := validateWS(ops); err != nil {
		return err
	}
	writes := Writes(ops)
	for _, rd := range Reads(ops) {
		if !rd.Complete {
			continue
		}
		concurrent := false
		for _, w := range writes {
			if rd.ConcurrentWith(w) {
				concurrent = true
				break
			}
		}
		if concurrent {
			continue
		}
		want := v0
		for _, w := range writes {
			if w.Precedes(rd) {
				want = w.Arg
			}
		}
		if rd.Out != want {
			r := rd
			return &Violation{Condition: "WS-Safety", Read: &r}
		}
	}
	return nil
}

// referenceWSRegularity is the candidate-set checker kept as a test oracle
// for the allocation-free regularValue fast path.
func referenceWSRegularity(ops []Op, v0 types.Value) error {
	if err := validateWS(ops); err != nil {
		return err
	}
	writes := Writes(ops)
	for _, rd := range Reads(ops) {
		if !rd.Complete {
			continue
		}
		if _, ok := readCandidates(rd, writes, v0)[rd.Out]; !ok {
			r := rd
			return &Violation{Condition: "WS-Regularity", Read: &r}
		}
	}
	return nil
}

// TestIndexedCheckersAgreeWithReference fuzzes the indexed write-sequential
// checkers against the reference implementations on random histories,
// including ones with pending writes and garbage read values.
func TestIndexedCheckersAgreeWithReference(t *testing.T) {
	const trials = 2000
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < trials; trial++ {
		ops := randomWriteSequentialHistory(rng)
		if got, want := CheckWSSafety(ops, 0) == nil, referenceWSSafety(ops, 0) == nil; got != want {
			t.Fatalf("trial %d: WS-Safety fast path %v, reference %v, history:\n%v", trial, got, want, ops)
		}
		if got, want := CheckWSRegularity(ops, 0) == nil, referenceWSRegularity(ops, 0) == nil; got != want {
			t.Fatalf("trial %d: WS-Regularity fast path %v, reference %v, history:\n%v", trial, got, want, ops)
		}
	}
}

// TestPrecedenceMasksMatchDefinition: the precomputed masks must encode
// exactly the Precedes relation the linearization search consumed one scan
// at a time before.
func TestPrecedenceMasksMatchDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 500; trial++ {
		ops := randomWriteSequentialHistory(rng)
		masks := make([]uint64, len(ops))
		precedenceMasks(ops, masks)
		for i := range ops {
			for j, other := range ops {
				want := other.Complete && other.End < ops[i].Start
				got := masks[i]&(1<<uint(j)) != 0
				if got != want {
					t.Fatalf("trial %d: mask[%d] bit %d = %v, Precedes = %v\n%v", trial, i, j, got, want, ops)
				}
			}
		}
	}
}
