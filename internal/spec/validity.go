package spec

import (
	"fmt"

	"repro/internal/types"
)

// CheckReadValidity checks the weak sanity condition that holds for every
// construction even in write-concurrent runs: a complete read returns v0 or
// the value of some write that was invoked before the read returned. It is
// the fallback check for concurrent stress runs, where the paper's
// write-sequential conditions do not apply.
func CheckReadValidity(ops []Op, v0 types.Value) error {
	writes := Writes(ops)
	for _, rd := range Reads(ops) {
		if !rd.Complete {
			continue
		}
		if rd.Out == v0 {
			continue
		}
		valid := false
		for _, w := range writes {
			if w.Arg == rd.Out && !rd.Precedes(w) {
				valid = true
				break
			}
		}
		if !valid {
			r := rd
			return &Violation{
				Condition: "Read-Validity",
				Read:      &r,
				Detail:    fmt.Sprintf("returned %d, which no overlapping-or-earlier write wrote", rd.Out),
			}
		}
	}
	return nil
}
