package spec

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestLinearizableSequential(t *testing.T) {
	ops := []Op{
		w(0, 10, 1, 2),
		r(9, 10, 3, 4),
		w(1, 20, 5, 6),
		r(9, 20, 7, 8),
	}
	if err := CheckLinearizable(ops, 0); err != nil {
		t.Fatalf("CheckLinearizable: %v", err)
	}
}

func TestLinearizableEmptyAndInitial(t *testing.T) {
	if err := CheckLinearizable(nil, 0); err != nil {
		t.Fatalf("empty history: %v", err)
	}
	if err := CheckLinearizable([]Op{r(9, 0, 1, 2)}, 0); err != nil {
		t.Fatalf("v0 read: %v", err)
	}
	if err := CheckLinearizable([]Op{r(9, 5, 1, 2)}, 0); err == nil {
		t.Fatal("read of unwritten value linearized")
	}
}

func TestLinearizableConcurrentWritesAnyOrder(t *testing.T) {
	// Two concurrent writes can linearize in either order; a read after
	// both may see either value.
	for _, val := range []types.Value{10, 20} {
		ops := []Op{
			w(0, 10, 1, 5),
			w(1, 20, 2, 6),
			r(9, val, 7, 8),
		}
		if err := CheckLinearizable(ops, 0); err != nil {
			t.Errorf("read %d after concurrent writes: %v", val, err)
		}
	}
}

func TestNotLinearizableNewOldNew(t *testing.T) {
	// Read 20 then read 10 with both writes already complete: the second
	// read goes back in time — not linearizable.
	ops := []Op{
		w(0, 10, 1, 2),
		w(1, 20, 3, 4),
		r(8, 20, 5, 6),
		r(9, 10, 7, 8),
	}
	err := CheckLinearizable(ops, 0)
	if err == nil {
		t.Fatal("new-old read inversion linearized")
	}
	var v *Violation
	if !errors.As(err, &v) || v.Condition != "Atomicity" {
		t.Fatalf("error = %v, want Atomicity violation", err)
	}
}

func TestLinearizablePendingWriteChoices(t *testing.T) {
	// A pending write may take effect (read sees it) or not (read sees
	// the previous value); both must linearize.
	for _, val := range []types.Value{10, 20} {
		ops := []Op{
			w(0, 10, 1, 2),
			pw(1, 20, 3),
			r(9, val, 4, 5),
		}
		if err := CheckLinearizable(ops, 0); err != nil {
			t.Errorf("pending-write read %d: %v", val, err)
		}
	}
	// But a pending write cannot take effect before its invocation.
	ops := []Op{
		w(0, 10, 1, 2),
		r(9, 20, 3, 4),
		pw(1, 20, 5),
	}
	if err := CheckLinearizable(ops, 0); err == nil {
		t.Error("read of not-yet-invoked pending write linearized")
	}
}

func TestLinearizablePendingWriteMixedReads(t *testing.T) {
	// One reader sees the pending write, a later reader must not go back.
	ops := []Op{
		w(0, 10, 1, 2),
		pw(1, 20, 3),
		r(8, 20, 4, 5),
		r(9, 10, 6, 7),
	}
	if err := CheckLinearizable(ops, 0); err == nil {
		t.Fatal("new-old inversion via pending write linearized")
	}
}

func TestLinearizableTooLarge(t *testing.T) {
	// 65 unique-value writes are fine now (the polynomial path has a
	// 4096-op cap)...
	ops := make([]Op, 65)
	for i := range ops {
		ops[i] = w(types.ClientID(i), types.Value(i+1), int64(2*i+1), int64(2*i+2))
	}
	if err := CheckLinearizable(ops, 0); err != nil {
		t.Fatalf("65 unique writes: err = %v, want nil", err)
	}
	// ...but 65 ops with a duplicated value fall back to the search and
	// exceed its 64-op cap...
	ops[1].Arg = ops[0].Arg
	if err := CheckLinearizable(ops, 0); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("65 non-unique ops: err = %v, want ErrTooLarge", err)
	}
	// ...and the polynomial path has its own ceiling.
	big := make([]Op, maxUniqueLinOps+1)
	for i := range big {
		big[i] = w(types.ClientID(i), types.Value(i+1), int64(2*i+1), int64(2*i+2))
	}
	if err := CheckLinearizable(big, 0); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("%d unique ops: err = %v, want ErrTooLarge", len(big), err)
	}
}

// TestLinearizableAgreesOnSequentialHistories cross-checks the linearizer
// against the WS checkers on randomly generated write-sequential histories:
// histories produced by simulating an atomic register must always pass, and
// corrupting one read must always fail.
func TestLinearizableAgreesOnSequentialHistories(t *testing.T) {
	gen := func(seed int64) []Op {
		rng := rand.New(rand.NewSource(seed))
		var ops []Op
		now := int64(1)
		cur := types.Value(0)
		nextVal := types.Value(1)
		n := 3 + rng.Intn(8)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				ops = append(ops, w(types.ClientID(i), nextVal, now, now+1))
				cur = nextVal
				nextVal++
			} else {
				ops = append(ops, r(100, cur, now, now+1))
			}
			now += 2
		}
		return ops
	}
	err := quick.Check(func(seed int64) bool {
		ops := gen(seed)
		if CheckLinearizable(ops, 0) != nil {
			return false
		}
		// Corrupt the last read, if any.
		for i := len(ops) - 1; i >= 0; i-- {
			if ops[i].Kind == KindRead {
				ops[i].Out += 777777
				return CheckLinearizable(ops, 0) != nil
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}
