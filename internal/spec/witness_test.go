package spec

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/types"
)

func TestFindLinearizationWitness(t *testing.T) {
	ops := []Op{
		w(0, 10, 1, 2),
		r(9, 10, 3, 4),
		w(1, 20, 5, 6),
		r(9, 20, 7, 8),
	}
	order, err := FindLinearization(ops, 0)
	if err != nil {
		t.Fatalf("FindLinearization: %v", err)
	}
	if err := ReplayLinearization(ops, order, 0); err != nil {
		t.Fatalf("witness does not replay: %v", err)
	}
	if len(order) != 4 {
		t.Fatalf("witness length %d, want 4", len(order))
	}
}

func TestFindLinearizationDropsPending(t *testing.T) {
	// The pending write must be dropped for this history to linearize.
	ops := []Op{
		w(0, 10, 1, 2),
		pw(1, 20, 3),
		r(9, 10, 4, 5),
		r(8, 10, 6, 7),
	}
	order, err := FindLinearization(ops, 0)
	if err != nil {
		t.Fatalf("FindLinearization: %v", err)
	}
	if err := ReplayLinearization(ops, order, 0); err != nil {
		t.Fatalf("witness does not replay: %v", err)
	}
	for _, i := range order {
		if !ops[i].Complete && ops[i].Arg == 20 {
			// Including it is fine only if no read contradicts; replay
			// would have caught that, so reaching here means the search
			// linearized it consistently — but with both reads returning
			// 10 after it, that is impossible.
			t.Fatalf("witness linearized the contradicting pending write")
		}
	}
}

func TestFindLinearizationRejectsImpossible(t *testing.T) {
	ops := []Op{
		w(0, 10, 1, 2),
		w(1, 20, 3, 4),
		r(8, 20, 5, 6),
		r(9, 10, 7, 8),
	}
	if _, err := FindLinearization(ops, 0); err == nil {
		t.Fatal("impossible history produced a witness")
	}
}

func TestFindLinearizationTooLarge(t *testing.T) {
	ops := make([]Op, 65)
	for i := range ops {
		ops[i] = w(types.ClientID(i), types.Value(i+1), int64(2*i+1), int64(2*i+2))
	}
	if _, err := FindLinearization(ops, 0); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestWitnessAgreesWithChecker(t *testing.T) {
	// On random histories, FindLinearization succeeds exactly when
	// CheckLinearizable passes, and every witness replays.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		ops := randomWriteSequentialHistory(rng)
		checker := CheckLinearizable(ops, 0) == nil
		order, err := FindLinearization(ops, 0)
		witness := err == nil
		if checker != witness {
			t.Fatalf("trial %d: checker=%v witness=%v for %v", trial, checker, witness, ops)
		}
		if witness {
			if err := ReplayLinearization(ops, order, 0); err != nil {
				t.Fatalf("trial %d: witness fails replay: %v", trial, err)
			}
		}
	}
}

func TestReplayLinearizationRejectsBadWitnesses(t *testing.T) {
	ops := []Op{
		w(0, 10, 1, 2),
		w(1, 20, 3, 4),
		r(9, 20, 5, 6),
	}
	cases := []struct {
		name  string
		order []int
	}{
		{"out of range", []int{0, 1, 5}},
		{"duplicate", []int{0, 0, 1, 2}},
		{"omits complete op", []int{0, 1}},
		{"precedence inversion", []int{1, 0, 2}},
		{"spec violation", []int{1, 2, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := ReplayLinearization(ops, tc.order, 0); err == nil {
				t.Fatalf("bad witness %v accepted", tc.order)
			}
		})
	}
}
