// Package spec records histories of high-level read/write operations on the
// emulated register and checks them against the paper's consistency
// conditions (Section 2 and Appendix A.3):
//
//   - Atomicity: the history has a linearization.
//   - Write-Sequential Regularity (WS-Regular): in write-sequential
//     histories, every complete read has a linearization together with all
//     the writes.
//   - Write-Sequential Safety (WS-Safe): as WS-Regular, but only for reads
//     that are not concurrent with any write.
//
// Experiments write unique values, which makes the regularity and safety
// checks exact and keeps the linearizability search tractable.
package spec

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// OpKind distinguishes the two high-level operation types.
type OpKind int

const (
	// KindWrite is a high-level write.
	KindWrite OpKind = iota + 1
	// KindRead is a high-level read.
	KindRead
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case KindWrite:
		return "write"
	case KindRead:
		return "read"
	default:
		return fmt.Sprintf("opkind(%d)", int(k))
	}
}

// Op is one high-level operation in a recorded history. Invocation and
// return times come from a global logical clock, so op1 precedes op2 iff
// op1.End < op2.Start (and op1 is complete).
type Op struct {
	// ID is the op's position in the recording order.
	ID int
	// Client is the invoking client.
	Client types.ClientID
	// Kind is write or read.
	Kind OpKind
	// Arg is the written value (writes only).
	Arg types.Value
	// Out is the returned value (complete reads only).
	Out types.Value
	// Start and End are logical invocation/return times.
	Start int64
	End   int64
	// Complete reports whether the op returned.
	Complete bool
}

// Precedes reports whether o returned before other was invoked (the paper's
// precedence relation on schedules).
func (o Op) Precedes(other Op) bool {
	return o.Complete && o.End < other.Start
}

// ConcurrentWith reports whether neither op precedes the other.
func (o Op) ConcurrentWith(other Op) bool {
	return !o.Precedes(other) && !other.Precedes(o)
}

// String implements fmt.Stringer.
func (o Op) String() string {
	switch {
	case o.Kind == KindWrite && o.Complete:
		return fmt.Sprintf("write(%d)@c%d[%d,%d]", o.Arg, o.Client, o.Start, o.End)
	case o.Kind == KindWrite:
		return fmt.Sprintf("write(%d)@c%d[%d,-]", o.Arg, o.Client, o.Start)
	case o.Complete:
		return fmt.Sprintf("read->%d@c%d[%d,%d]", o.Out, o.Client, o.Start, o.End)
	default:
		return fmt.Sprintf("read@c%d[%d,-]", o.Client, o.Start)
	}
}

// History records high-level operations concurrently. The zero value is
// ready to use.
type History struct {
	clock   atomic.Int64
	discard atomic.Bool

	mu  sync.Mutex
	ops []*Op
}

// SetDiscard toggles discard mode: while on, Begin*/End are cheap no-ops
// (no clock ticks, no locking, nothing recorded). Pure-throughput load
// runs use it to drive billions of ops without accumulating history;
// flip it before the run — ops in flight across a toggle record a
// half-open entry at worst.
func (h *History) SetDiscard(on bool) { h.discard.Store(on) }

// discarded is the shared non-recording op of discard-mode handles.
var discarded = &Op{ID: -1}

// PendingWrite is the handle for an in-flight high-level write.
type PendingWrite struct {
	h  *History
	op *Op
}

// PendingRead is the handle for an in-flight high-level read.
type PendingRead struct {
	h  *History
	op *Op
}

// tick advances the logical clock.
func (h *History) tick() int64 { return h.clock.Add(1) }

// BeginWrite records the invocation of write(v) by client.
func (h *History) BeginWrite(client types.ClientID, v types.Value) *PendingWrite {
	if h.discard.Load() {
		return &PendingWrite{h: h, op: discarded}
	}
	op := &Op{Client: client, Kind: KindWrite, Arg: v, Start: h.tick()}
	h.mu.Lock()
	op.ID = len(h.ops)
	h.ops = append(h.ops, op)
	h.mu.Unlock()
	return &PendingWrite{h: h, op: op}
}

// End records the write's return.
func (w *PendingWrite) End() {
	if w.op.ID < 0 {
		return
	}
	end := w.h.tick()
	w.h.mu.Lock()
	w.op.End = end
	w.op.Complete = true
	w.h.mu.Unlock()
}

// BeginRead records the invocation of a read by client.
func (h *History) BeginRead(client types.ClientID) *PendingRead {
	if h.discard.Load() {
		return &PendingRead{h: h, op: discarded}
	}
	op := &Op{Client: client, Kind: KindRead, Start: h.tick()}
	h.mu.Lock()
	op.ID = len(h.ops)
	h.ops = append(h.ops, op)
	h.mu.Unlock()
	return &PendingRead{h: h, op: op}
}

// End records the read's return with the value it returned.
func (r *PendingRead) End(v types.Value) {
	if r.op.ID < 0 {
		return
	}
	end := r.h.tick()
	r.h.mu.Lock()
	r.op.Out = v
	r.op.End = end
	r.op.Complete = true
	r.h.mu.Unlock()
}

// Snapshot returns a copy of all recorded ops in recording order.
func (h *History) Snapshot() []Op {
	h.mu.Lock()
	defer h.mu.Unlock()
	ops := make([]Op, len(h.ops))
	for i, op := range h.ops {
		ops[i] = *op
	}
	return ops
}

// Len returns the number of recorded ops.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.ops)
}

// Writes returns the write ops of a snapshot, sorted by invocation time.
func Writes(ops []Op) []Op {
	var ws []Op
	for _, op := range ops {
		if op.Kind == KindWrite {
			ws = append(ws, op)
		}
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
	return ws
}

// Reads returns the read ops of a snapshot, sorted by invocation time.
func Reads(ops []Op) []Op {
	var rs []Op
	for _, op := range ops {
		if op.Kind == KindRead {
			rs = append(rs, op)
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Start < rs[j].Start })
	return rs
}

// IsWriteSequential reports whether no two writes are concurrent (the
// paper's write-sequential runs).
func IsWriteSequential(ops []Op) bool {
	ws := Writes(ops)
	for i := 0; i < len(ws); i++ {
		for j := i + 1; j < len(ws); j++ {
			if ws[i].ConcurrentWith(ws[j]) {
				return false
			}
		}
	}
	return true
}

// UniqueWriteValues reports whether all written values are distinct; the
// checkers require this for exactness.
func UniqueWriteValues(ops []Op) bool {
	seen := make(map[types.Value]struct{})
	for _, op := range ops {
		if op.Kind != KindWrite {
			continue
		}
		if _, dup := seen[op.Arg]; dup {
			return false
		}
		seen[op.Arg] = struct{}{}
	}
	return true
}
