// Polynomial atomicity checking for unique-value histories.
//
// The Wing–Gong search in linearize.go decides atomicity for arbitrary
// histories but is exponential in the width of the concurrency antichain:
// fine for the exhaustive sweeps' two-writer schedules, hopeless for
// load-generation histories where hundreds of clients run concurrently.
// With unique write values, though, every read names its dictating write,
// and atomicity reduces to ordering the WRITES: a history linearizes iff
// there is a total order σ on the included writes, extending their
// real-time precedence, such that every complete read r with dictating
// write d(r) can sit in the slot directly after d(r). That holds iff the
// following constraint digraph on writes is acyclic:
//
//	RT:  w1 -> w2          when w1 completes before w2 starts
//	R2:  w  -> d(r)        when w completes before read r starts (w≠d(r)):
//	                       a write preceding r cannot be ordered after the
//	                       write r returns
//	R3:  d(r) -> w         when read r completes before w starts (w≠d(r)):
//	                       r's slot lies before any later write
//	R4:  d(r1) -> d(r2)    when r1 completes before r2 starts and their
//	                       dictating writes differ: slots respect read order
//
// plus two per-read conditions: the dictating write must exist (else the
// read returned an unwritten value) and the read must not return before
// its write was invoked. Sufficiency: a topological order of the graph,
// with each read placed in its write's slot (slot-internal reads ordered
// by invocation), extends real-time precedence and satisfies the register
// spec. Necessity: every rule is forced in any linearization. Pending
// writes that no read returned may be dropped from a linearization without
// harm, so they are excluded; pending reads are always droppable and are
// skipped.
//
// The construction is quadratic (pair scans), which turns checking from
// exponential to a few milliseconds for the thousand-op samples the load
// generator checks.
package spec

import (
	"fmt"

	"repro/internal/types"
)

// maxUniqueLinOps bounds the quadratic unique-value path of
// CheckLinearizable.
const maxUniqueLinOps = 4096

// uniqueValuesCheckable reports whether the polynomial path applies: all
// write values distinct and none equal to v0 (a rewritten initial value
// would make reads of v0 ambiguous).
func uniqueValuesCheckable(ops []Op, v0 types.Value) bool {
	seen := make(map[types.Value]struct{})
	for _, op := range ops {
		if op.Kind != KindWrite {
			continue
		}
		if op.Arg == v0 {
			return false
		}
		if _, dup := seen[op.Arg]; dup {
			return false
		}
		seen[op.Arg] = struct{}{}
	}
	return true
}

// checkAtomicUnique is the polynomial checker; callers must have verified
// uniqueValuesCheckable.
func checkAtomicUnique(ops []Op, v0 types.Value) error {
	// Node 0 is the virtual initial write of v0; it precedes everything.
	type wnode struct {
		op      Op
		virtual bool
	}
	writes := []wnode{{virtual: true}}
	idxOf := make(map[types.Value]int)
	read := make(map[types.Value]bool) // values some complete read returned
	for _, op := range ops {
		if op.Kind == KindRead && op.Complete {
			read[op.Out] = true
		}
	}
	for _, op := range ops {
		if op.Kind != KindWrite {
			continue
		}
		if !op.Complete && !read[op.Arg] {
			// A pending write nobody read: droppable, and dropping only
			// removes constraints.
			continue
		}
		idxOf[op.Arg] = len(writes)
		writes = append(writes, wnode{op: op})
	}

	// Resolve dictating writes and check the per-read conditions.
	type redge struct{ from, to int }
	var reads []Op
	dict := make([]int, 0, len(ops))
	for _, op := range ops {
		if op.Kind != KindRead || !op.Complete {
			continue
		}
		d := 0
		if op.Out != v0 {
			var ok bool
			d, ok = idxOf[op.Out]
			if !ok {
				return &Violation{
					Condition: "Atomicity",
					Detail:    fmt.Sprintf("%v returned value %d that no write wrote", op, op.Out),
				}
			}
		}
		if d != 0 && op.End < writes[d].op.Start {
			return &Violation{
				Condition: "Atomicity",
				Detail:    fmt.Sprintf("%v returned before its write %v was invoked", op, writes[d].op),
			}
		}
		reads = append(reads, op)
		dict = append(dict, d)
	}

	// Build the constraint digraph.
	n := len(writes)
	adj := make([][]int32, n)
	addEdge := func(from, to int) {
		if from != to {
			adj[from] = append(adj[from], int32(to))
		}
	}
	// The virtual initial write precedes every real write.
	for j := 1; j < n; j++ {
		addEdge(0, j)
	}
	// RT: real-time order between writes. The virtual write has no
	// interval; a pending write never precedes anything.
	for i := 1; i < n; i++ {
		if !writes[i].op.Complete {
			continue
		}
		for j := 1; j < n; j++ {
			if i != j && writes[i].op.End < writes[j].op.Start {
				addEdge(i, j)
			}
		}
	}
	// R2 and R3: reads against writes.
	for ri, r := range reads {
		d := dict[ri]
		for w := 1; w < n; w++ {
			if w == d {
				continue
			}
			if writes[w].op.Complete && writes[w].op.End < r.Start {
				addEdge(w, d) // R2
			}
			if r.End < writes[w].op.Start {
				addEdge(d, w) // R3
			}
		}
		// Reads of v0 flow through the same loop with d = 0: a real write
		// completing before such a read adds w -> w0, closing a cycle with
		// the unconditional w0 -> w edges — exactly the "read of the
		// initial value after a write finished" violation.
	}
	// R4: reads against reads.
	for i, r1 := range reads {
		for j, r2 := range reads {
			if dict[i] != dict[j] && r1.End < r2.Start {
				addEdge(dict[i], dict[j])
			}
		}
	}

	// Acyclicity by iterative three-color DFS.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, n)
	next := make([]int, n) // per-node adjacency cursor
	stack := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if color[s] != white {
			continue
		}
		color[s] = gray
		stack = append(stack, s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			if next[u] < len(adj[u]) {
				v := int(adj[u][next[u]])
				next[u]++
				switch color[v] {
				case white:
					color[v] = gray
					stack = append(stack, v)
				case gray:
					return &Violation{
						Condition: "Atomicity",
						Detail: fmt.Sprintf("cyclic write-order constraint involving %v",
							describeWrite(writes[v].op, writes[v].virtual, v0)),
					}
				}
			} else {
				color[u] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// describeWrite renders a constraint-graph node for violation messages.
func describeWrite(op Op, virtual bool, v0 types.Value) string {
	if virtual {
		return fmt.Sprintf("the initial value %d", v0)
	}
	return op.String()
}
