// Sampling for linearizability checking of large histories.
//
// CheckLinearizable caps histories (4096 ops on the unique-value path),
// but load-generation runs record millions. A sound sample exists because
// linearizability of a
// read/write register is closed under read-source projection: take any
// subset of a linearizable history's operations that, for every included
// complete read, also includes the write of the value it returned. The full
// history's linearization induces an order on the subset that (a) respects
// the subset's real-time precedence (it is a suborder of the full order)
// and (b) satisfies the register spec — a read's source write is the LAST
// write before it in the full linearization, so no included write can land
// between them, and a read returning v0 has no write at all before it, so
// no included write that precedes it in real time exists either. Hence a
// violation found on such a sample is a genuine violation of the recorded
// run; a pass is evidence proportional to coverage, never a false alarm.
//
// The sampler therefore picks a contiguous window of reads (late windows
// carry the most contended state), pulls in every source write, and pads
// with the writes adjacent to the window, staying under the checker's cap.
package spec

import (
	"sort"

	"repro/internal/types"
)

// SampleLinearizable extracts a checkable sub-history of at most maxOps
// operations (clamped to the unique-value CheckLinearizable cap) from a
// snapshot:
// a seeded window of complete reads plus, for every sampled read, the
// write of the value it returned, plus completed writes interleaving the
// window. Histories must have unique write values (as every experiment
// and load run in this repository does); a read whose source write cannot
// be found is kept anyway, so a corrupted run still fails the check
// instead of being sampled around. The result is ordered by invocation
// time and is empty only if ops is.
func SampleLinearizable(ops []Op, maxOps int, seed int64) []Op {
	if maxOps <= 0 || maxOps > maxUniqueLinOps {
		maxOps = maxUniqueLinOps
	}
	if len(ops) <= maxOps {
		out := make([]Op, len(ops))
		copy(out, ops)
		sortByStart(out)
		return out
	}

	writeByVal := make(map[types.Value]int, len(ops))
	var reads []int
	for i, op := range ops {
		switch op.Kind {
		case KindWrite:
			writeByVal[op.Arg] = i
		case KindRead:
			if op.Complete {
				reads = append(reads, i)
			}
		}
	}
	sort.Slice(reads, func(a, b int) bool { return ops[reads[a]].Start < ops[reads[b]].Start })

	// Window start: a deterministic draw from the seed (splitmix-style
	// scramble, so adjacent seeds pick unrelated windows), biased toward
	// the tail — contention accumulates, so late windows carry the most
	// interesting state. The square-law map sends a uniform u to
	// 1 - u², which lands ~71% of windows in the later half.
	windowAt := 0
	if len(reads) > 0 {
		z := uint64(seed) + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		u := float64(z>>11) / float64(uint64(1)<<53)
		windowAt = int(float64(len(reads)) * (1 - u*u))
		if windowAt >= len(reads) {
			windowAt = len(reads) - 1
		}
	}

	picked := make(map[int]bool, maxOps)
	budget := maxOps
	take := func(i int) bool {
		if picked[i] {
			return true
		}
		if budget == 0 {
			return false
		}
		picked[i] = true
		budget--
		return true
	}
	// A read costs up to two slots (itself + its source write): admit it
	// only when both fit, so the sample never cites an unwritten value by
	// running out of budget halfway.
	for _, ri := range reads[windowAt:] {
		src, hasSrc := writeByVal[ops[ri].Out]
		need := 1
		if hasSrc && !picked[src] {
			need++
		}
		if budget < need {
			break
		}
		take(ri)
		if hasSrc {
			take(src)
		}
	}
	// Pad with complete writes concurrent with or inside the window: they
	// sharpen the check (more ordering constraints) at no soundness cost.
	if budget > 0 && len(picked) > 0 {
		var lo, hi int64
		first := true
		for i := range picked {
			if first || ops[i].Start < lo {
				lo = ops[i].Start
			}
			if first || ops[i].End > hi {
				hi = ops[i].End
			}
			first = false
		}
		for i, op := range ops {
			if budget == 0 {
				break
			}
			if op.Kind == KindWrite && op.Complete && op.Start >= lo && op.End <= hi {
				take(i)
			}
		}
	}

	out := make([]Op, 0, len(picked))
	for i := range picked {
		out = append(out, ops[i])
	}
	sortByStart(out)
	return out
}

// sortByStart orders ops by invocation time (ID as tie-break, though the
// logical clock never ties).
func sortByStart(ops []Op) {
	sort.Slice(ops, func(a, b int) bool {
		if ops[a].Start != ops[b].Start {
			return ops[a].Start < ops[b].Start
		}
		return ops[a].ID < ops[b].ID
	})
}
