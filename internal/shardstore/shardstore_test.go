package shardstore

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/runner"
	"repro/internal/types"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

// TestShardRoutingDeterministic pins the router's contract: every key maps
// to exactly one in-range shard, the mapping is identical across store
// instances (restarts route the same), and the hash spreads a contiguous
// key range across every shard and engine.
func TestShardRoutingDeterministic(t *testing.T) {
	ctx := testCtx(t)
	open := func() *Store {
		st, err := Open(ctx, Config{Shards: 4, Engines: 3, Keys: 1 << 20, Kind: runner.KindABDMax})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = st.Close() })
		return st
	}
	a, b := open(), open()
	shardHits := make([]int, a.NumShards())
	engineHits := make([]int, a.NumEngines())
	for key := uint64(0); key < 4096; key++ {
		s := a.ShardOf(key)
		if s < 0 || s >= a.NumShards() {
			t.Fatalf("key %d: shard %d out of range", key, s)
		}
		if s2 := b.ShardOf(key); s2 != s {
			t.Fatalf("key %d: shard %d on one store, %d on a restart", key, s, s2)
		}
		e := a.EngineOf(key)
		if e < 0 || e >= a.NumEngines() {
			t.Fatalf("key %d: engine %d out of range", key, e)
		}
		if e2 := b.EngineOf(key); e2 != e {
			t.Fatalf("key %d: engine %d on one store, %d on a restart", key, e, e2)
		}
		shardHits[s]++
		engineHits[e]++
	}
	for s, hits := range shardHits {
		if hits == 0 {
			t.Fatalf("shard %d never hit across 4096 keys", s)
		}
	}
	for e, hits := range engineHits {
		if hits == 0 {
			t.Fatalf("engine %d never hit across 4096 keys", e)
		}
	}
}

// TestBalancedKeys pins the even-spread picker: exact count, distinct
// in-range keys, and every shard within one key of every other.
func TestBalancedKeys(t *testing.T) {
	ctx := testCtx(t)
	st, err := Open(ctx, Config{Shards: 3, Keys: 1 << 16, Kind: runner.KindABDMax})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, n := range []int{1, 3, 7, 64} {
		keys := st.BalancedKeys(n)
		if len(keys) != n {
			t.Fatalf("BalancedKeys(%d) returned %d keys", n, len(keys))
		}
		perShard := make([]int, st.NumShards())
		seen := make(map[uint64]bool, n)
		for _, k := range keys {
			if k >= st.Keys() {
				t.Fatalf("BalancedKeys(%d): key %d outside key-space", n, k)
			}
			if seen[k] {
				t.Fatalf("BalancedKeys(%d): duplicate key %d", n, k)
			}
			seen[k] = true
			perShard[st.ShardOf(k)]++
		}
		min, max := perShard[0], perShard[0]
		for _, c := range perShard[1:] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1 {
			t.Fatalf("BalancedKeys(%d): shard spread %v not balanced", n, perShard)
		}
	}
	// n >= Keys returns the whole key-space.
	small, err := Open(ctx, Config{Shards: 2, Keys: 5, Kind: runner.KindABDMax})
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	if keys := small.BalancedKeys(9); len(keys) != 5 {
		t.Fatalf("BalancedKeys past key-space = %d keys, want 5", len(keys))
	}
}

// TestClientIdentity pins the frontend's serialization contract: repeated
// Writer/Reader lookups for a (key, slot) return the same engine client,
// two keys on the same engine still get distinct clients, and key-space
// bounds are enforced.
func TestClientIdentity(t *testing.T) {
	ctx := testCtx(t)
	st, err := Open(ctx, Config{Shards: 2, Engines: 1, Keys: 64, Kind: runner.KindABDMax, WritersPerKey: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	w0, err := st.Writer(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w0b, _ := st.Writer(7, 0); w0b != w0 {
		t.Fatal("Writer(7,0) not stable across calls")
	}
	if w1, _ := st.Writer(7, 1); w1 == w0 {
		t.Fatal("writer slots 0 and 1 of key 7 share a client")
	}
	if wOther, _ := st.Writer(8, 0); wOther == w0 {
		t.Fatal("keys 7 and 8 share a writer client")
	}
	r0, err := st.Reader(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r0b, _ := st.Reader(7, 0); r0b != r0 {
		t.Fatal("Reader(7,0) not stable across calls")
	}
	if r3, _ := st.Reader(7, 3); r3 == r0 {
		t.Fatal("reader slots 0 and 3 of key 7 share a client")
	}
	if _, err := st.Writer(64, 0); err == nil {
		t.Fatal("key outside key-space materialized")
	}
	if _, err := st.Writer(7, 2); err == nil {
		t.Fatal("writer slot past WritersPerKey succeeded")
	}
	if _, err := st.Reader(7, -1); err == nil {
		t.Fatal("negative reader slot succeeded")
	}
}

// driveStore runs writers+readers over a set of keys from many goroutines
// through the frontend and returns the expected last value per key. Each
// (key, slot) pair is one logical client: its ops are issued from a single
// goroutine in sequence, and the engine serializes them, so histories stay
// well-formed per client even though goroutines share engines and shards.
func driveStore(ctx context.Context, t *testing.T, st *Store, keys []uint64, writesPerKey int, crash func(done int)) {
	t.Helper()
	var wg sync.WaitGroup
	var issued int64
	var mu sync.Mutex
	for _, key := range keys {
		key := key
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= writesPerKey; i++ {
				errc := make(chan error, 1)
				st.StartWrite(key, 0, types.Value(int64(key)*1000+int64(i)), func(err error) { errc <- err })
				select {
				case err := <-errc:
					if err != nil {
						t.Errorf("key %d write %d: %v", key, i, err)
						return
					}
				case <-ctx.Done():
					t.Errorf("key %d write %d: %v", key, i, ctx.Err())
					return
				}
				mu.Lock()
				issued++
				if crash != nil {
					crash(int(issued))
				}
				mu.Unlock()
				vc := make(chan error, 1)
				st.StartRead(key, 0, func(_ types.Value, err error) { vc <- err })
				select {
				case err := <-vc:
					if err != nil {
						t.Errorf("key %d read %d: %v", key, i, err)
						return
					}
				case <-ctx.Done():
					t.Errorf("key %d read %d: %v", key, i, ctx.Err())
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestShardStoreEndToEnd drives concurrent clients over every shard with a
// server crash per shard mid-run (f=1 per shard, so every quorum still
// completes), drains, and requires zero validity/linearizability
// violations across the cross-shard history.
func TestShardStoreEndToEnd(t *testing.T) {
	ctx := testCtx(t)
	st, err := Open(ctx, Config{
		Shards: 3, Engines: 2, Keys: 1 << 16,
		Kind: runner.KindABDMax, Atomic: true, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	keys := st.BalancedKeys(9)
	crashed := 0
	crash := func(done int) {
		// One crash per shard, staggered through the run, while ops are in
		// flight on every shard.
		if crashed < st.NumShards() && done >= (crashed+1)*8 {
			if err := st.Crash(crashed, types.ServerID(crashed%2)); err != nil {
				t.Errorf("crash shard %d: %v", crashed, err)
			}
			crashed++
		}
	}
	driveStore(ctx, t, st, keys, 12, crash)
	if crashed != st.NumShards() {
		t.Fatalf("crashed %d servers, want one per shard (%d)", crashed, st.NumShards())
	}
	if err := st.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	rep := st.CheckAll(4, 7)
	if len(rep.Violations) > 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.Keys != len(keys) {
		t.Fatalf("checked %d keys, want %d", rep.Keys, len(keys))
	}
	if rep.HistoryOps < len(keys)*24 {
		t.Fatalf("history has %d ops, want >= %d", rep.HistoryOps, len(keys)*24)
	}
	counts := st.MaterializedKeys()
	total := 0
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d materialized no keys: %v", s, counts)
		}
		total += c
	}
	if total != len(keys) {
		t.Fatalf("materialized %d keys, want %d", total, len(keys))
	}
	var started int64
	for _, es := range st.EngineStats() {
		started += es.Started
	}
	if want := int64(len(keys) * 24); started != want {
		t.Fatalf("engines started %d ops, want %d", started, want)
	}
}

// TestShardStoreLatencyLane runs the end-to-end drive on the latency lane:
// seeded asynchronous delivery per shard, real concurrency between the
// engine loops and the lane event loops.
func TestShardStoreLatencyLane(t *testing.T) {
	ctx := testCtx(t)
	st, err := Open(ctx, Config{
		Shards: 2, Engines: 2, Keys: 1 << 12,
		Kind: runner.KindABDMax, Atomic: true,
		Lane: runner.LaneLatency,
		Profile: &fabric.LatencyProfile{
			Jitter: 50 * time.Microsecond, SpikeProb: 0.02, Spike: 300 * time.Microsecond,
		},
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	driveStore(ctx, t, st, st.BalancedKeys(6), 8, nil)
	if err := st.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if rep := st.CheckAll(3, 5); len(rep.Violations) > 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
}

// lanenodeBin builds cmd/lanenode once per test binary.
var lanenodeBin = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "lanenode-bin")
	if err != nil {
		return "", err
	}
	exe := filepath.Join(dir, "lanenode")
	cmd := exec.Command("go", "build", "-o", exe, "repro/cmd/lanenode")
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("building lanenode: %v\n%s", err, out)
	}
	return exe, nil
})

// startLanenodes spawns n lanenode processes on ephemeral ports and
// returns their addresses plus the commands (for mid-run kills).
func startLanenodes(t *testing.T, n int) ([]string, []*exec.Cmd) {
	t.Helper()
	exe, err := lanenodeBin()
	if err != nil {
		t.Skipf("cannot build lanenode in this environment: %v", err)
	}
	addrs := make([]string, n)
	cmds := make([]*exec.Cmd, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe, "-listen", "127.0.0.1:0")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting lanenode %d: %v", i, err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		})
		line, err := bufio.NewReader(stdout).ReadString('\n')
		if err != nil {
			t.Fatalf("lanenode %d banner: %v", i, err)
		}
		addr, ok := strings.CutPrefix(strings.TrimSpace(line), "listening ")
		if !ok {
			t.Fatalf("lanenode %d banner = %q", i, line)
		}
		addrs[i] = addr
		cmds[i] = cmd
	}
	return addrs, cmds
}

// TestShardStoreTCP hosts 2 shards x 3 servers on just 2 lanenode
// processes — each process carries one table per shard, so the six logical
// servers share two listeners — and requires clean cross-shard histories.
func TestShardStoreTCP(t *testing.T) {
	ctx := testCtx(t)
	addrs, _ := startLanenodes(t, 2)
	st, err := Open(ctx, Config{
		Shards: 2, Engines: 2, Keys: 1 << 10, N: 3,
		Kind: runner.KindABDMax, Atomic: true,
		Lane: runner.LaneTCP, NodeAddrs: addrs,
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	driveStore(ctx, t, st, st.BalancedKeys(4), 10, nil)
	if err := st.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if rep := st.CheckAll(3, 9); len(rep.Violations) > 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
}

// TestShardStoreTCPNodeKill spreads 2 shards x 3 servers over 3 node
// processes — each process hosts exactly one server of every shard — and
// kills one process mid-run: one crash per shard, within each shard's f=1,
// so every quorum still completes and the histories stay clean.
func TestShardStoreTCPNodeKill(t *testing.T) {
	ctx := testCtx(t)
	addrs, cmds := startLanenodes(t, 3)
	st, err := Open(ctx, Config{
		Shards: 2, Engines: 2, Keys: 1 << 10, N: 3,
		Kind: runner.KindABDMax, Atomic: true,
		Lane: runner.LaneTCP, NodeAddrs: addrs,
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	keys := st.BalancedKeys(4)
	killed := false
	crash := func(done int) {
		if !killed && done >= 8 {
			killed = true
			if err := cmds[0].Process.Kill(); err != nil {
				t.Errorf("killing lanenode 0: %v", err)
			}
		}
	}
	driveStore(ctx, t, st, keys, 10, crash)
	if !killed {
		t.Fatal("node process never killed")
	}
	if err := st.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if rep := st.CheckAll(3, 9); len(rep.Violations) > 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	for s := 0; s < st.NumShards(); s++ {
		if st.Env(s).Cluster.Crashes() == 0 {
			t.Fatalf("shard %d observed no crash after node kill", s)
		}
	}
}
