// Package shardstore is the horizontal-composition layer: it partitions a
// large register key-space across S independent fabrics (shards) behind a
// single routing frontend, and drives them through a pool of M shared
// async engine loops.
//
// The paper's space and latency bounds are per-register; serving a large
// key-space means amortizing those per-register costs across many
// registers without funnelling every operation through one fabric and one
// engine goroutine. Each shard is a complete vertical slice — its own
// cluster (server set), fabric, and lane group (in-process, latency, or a
// TCP lanenode set) — so shards share no locks, no token counters, and no
// fault domains: crashing a server affects exactly one shard's quorums.
// The shard router is the key-space analogue of the fabric's per-object
// ServerFor routing: a pure, deterministic function of the key, stable
// across restarts, so any frontend instance routes identically
// (freestore's client frontend over server groups is the exemplar).
//
// # Key-affinity engine routing
//
// Engines are deliberately decoupled from shards: M detached async engine
// loops (async.NewDetached) are shared by all S shards, and every key is
// pinned to one engine by a second independent hash. All clients of a key
// live on that key's engine, so per-client operation serialization — the
// paper's well-formed histories — is enforced by the engine's per-client
// queueing no matter how many goroutines call into the store. M scales
// with cores, S with fault domains; the two are tuned independently.
//
// # Registers, lazily
//
// A key's emulated register (construction, base objects on the shard's
// servers, history) is materialized on first touch and cached; a store
// "serving a million keys" allocates per-register state only for keys that
// actually see traffic. Materialization is idempotent and safe from any
// goroutine.
//
// # TCP shards over shared node processes
//
// On the TCP lane, shards map onto a flat pool of storage-node processes:
// shard s's server j dials NodeAddrs[(s*N+j) mod P] and binds the
// connection to table "shard<s>" (lanenet.WithTable), so one node process
// hosts many shards' tables over one listener without object-id
// collisions. Killing a node process crashes one server in every shard
// with a table there — several shards each lose one fault domain, and
// every quorum still completes when f bounds hold per shard.
package shardstore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/emulation"
	"repro/internal/emulation/async"
	"repro/internal/fabric"
	"repro/internal/lanenet"
	"repro/internal/runner"
	"repro/internal/seed"
	"repro/internal/spec"
	"repro/internal/types"
)

// Routing sub-streams: the shard and engine hashes must be independent so
// engine load stays balanced within every shard.
const (
	routeStreamShard uint64 = iota
	routeStreamEngine
)

// DefaultProfile is the latency-lane delay distribution used when no
// profile is given: a LAN-ish base with enough jitter to reorder quorum
// rounds and a rare straggler spike.
var DefaultProfile = fabric.LatencyProfile{
	Base:      100 * time.Microsecond,
	Jitter:    200 * time.Microsecond,
	SpikeProb: 0.01,
	Spike:     2 * time.Millisecond,
}

// DefaultServers returns the per-shard server count provisioned for a
// construction at failure threshold f: the chaos defaults at f=1, the
// quorum minimum (2f+1, or 3f+1 for Algorithm 2's segment placement)
// above.
func DefaultServers(kind runner.Kind, f int) int {
	if f <= 1 {
		return runner.ChaosServers(kind)
	}
	if kind == runner.KindRegEmu {
		return 3*f + 1
	}
	return 2*f + 1
}

// Config parameterizes a store.
type Config struct {
	// Shards is S, the number of independent fabrics (default 1); Engines
	// is M, the number of shared async engine loops (default = Shards).
	Shards  int
	Engines int

	// Keys is the key-space size: keys 0..Keys-1 are addressable
	// (default 1). Registers materialize lazily on first touch.
	Keys uint64

	// Kind is the construction; WritersPerKey the writer slots per key's
	// register (default 1); F and N the per-shard failure threshold and
	// server count (N defaults per DefaultServers). Atomic builds the read
	// write-back variant, enabling the linearizability checks.
	Kind          runner.Kind
	WritersPerKey int
	F, N          int
	Atomic        bool

	// ValueSize, when positive, makes every register's writes carry
	// payloads of that many bytes (replicated by abd-max, striped by
	// coded) so BytesPerServer measures real storage, not just metadata.
	ValueSize int

	// Lane selects each shard's dispatch backend: runner.LaneInProc
	// (default), runner.LaneLatency with Profile, or runner.LaneTCP over
	// the NodeAddrs pool. Seed drives lane delay streams per shard.
	Lane      runner.Lane
	Profile   *fabric.LatencyProfile
	NodeAddrs []string
	// DialTimeout bounds each TCP dial (default 5s).
	DialTimeout time.Duration
	Seed        int64

	// NoHistory disables history recording (and therefore CheckAll).
	NoHistory bool

	// Mailbox and Coalesce are the latency-lane event-loop knobs
	// (fabric.WithMailboxCapacity / WithCoalesceWindow); 0 keeps defaults.
	Mailbox  int
	Coalesce time.Duration
}

// Store is a sharded multi-register store: the routing frontend over S
// shards and M engine loops. All methods are safe for concurrent use.
type Store struct {
	cfg     Config
	shards  []*shard
	engines []*async.Engine
	cancel  context.CancelFunc
	closed  atomic.Bool
}

// shard is one vertical slice: a fabric with its own lane group plus the
// materialized registers of the keys routed here.
type shard struct {
	env *runner.Env

	mu   sync.RWMutex
	keys map[uint64]*keyreg
	// f is the shard's live failure budget — it starts at cfg.F and moves
	// with Resize. resized marks that the view no longer matches the
	// Open-time geometry, so registers materializing later must pin their
	// placement to the live member set instead of the default IDs 0..2f.
	f       int
	resized bool
}

// keyreg is one key's materialized register.
type keyreg struct {
	reg  emulation.Register
	hist *spec.History

	mu      sync.Mutex
	readers []*async.Client
}

// Open builds the store: S fabrics with their lane groups and M detached
// engine loops bounded by ctx (cancelling it fails every in-flight op, as
// does Close).
func Open(ctx context.Context, cfg Config) (*Store, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Engines <= 0 {
		cfg.Engines = cfg.Shards
	}
	if cfg.Keys == 0 {
		cfg.Keys = 1
	}
	if cfg.WritersPerKey <= 0 {
		cfg.WritersPerKey = 1
	}
	if cfg.F <= 0 {
		cfg.F = 1
	}
	if cfg.N <= 0 {
		cfg.N = DefaultServers(cfg.Kind, cfg.F)
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.Lane == "" {
		cfg.Lane = runner.LaneInProc
	}

	st := &Store{cfg: cfg}
	engCtx, cancel := context.WithCancel(ctx)
	st.cancel = cancel
	ok := false
	defer func() {
		if !ok {
			_ = st.Close()
		}
	}()
	for m := 0; m < cfg.Engines; m++ {
		st.engines = append(st.engines, async.NewDetached(async.WithContext(engCtx)))
	}
	for s := 0; s < cfg.Shards; s++ {
		laneOpts, err := laneOptions(cfg, s)
		if err != nil {
			return nil, err
		}
		env, err := runner.NewEnv(cfg.N, nil, laneOpts...)
		if err != nil {
			return nil, err
		}
		st.shards = append(st.shards, &shard{env: env, keys: make(map[uint64]*keyreg), f: cfg.F})
	}
	ok = true
	return st, nil
}

// laneOptions builds shard s's lane group.
func laneOptions(cfg Config, s int) ([]fabric.Option, error) {
	switch cfg.Lane {
	case runner.LaneInProc:
		return nil, nil
	case runner.LaneLatency:
		profile := DefaultProfile
		if cfg.Profile != nil {
			profile = *cfg.Profile
		}
		var latOpts []fabric.LatencyOption
		if cfg.Mailbox > 0 {
			latOpts = append(latOpts, fabric.WithMailboxCapacity(cfg.Mailbox))
		}
		if cfg.Coalesce > 0 {
			latOpts = append(latOpts, fabric.WithCoalesceWindow(cfg.Coalesce))
		}
		// Each shard draws its delays from an independent sub-stream, so
		// shards never share correlated spikes.
		maker := fabric.LatencyLanes(seed.Sub(cfg.Seed, uint64(s)), profile, latOpts...)
		return []fabric.Option{fabric.WithLanes(maker)}, nil
	case runner.LaneTCP:
		if len(cfg.NodeAddrs) == 0 {
			return nil, errors.New("shardstore: TCP lane needs NodeAddrs")
		}
		clients := make([]*lanenet.Client, cfg.N)
		table := fmt.Sprintf("shard%d", s)
		for j := 0; j < cfg.N; j++ {
			addr := cfg.NodeAddrs[(s*cfg.N+j)%len(cfg.NodeAddrs)]
			c, err := lanenet.Dial(addr, cfg.DialTimeout, lanenet.WithTable(table))
			if err != nil {
				for _, prev := range clients[:j] {
					_ = prev.Close()
				}
				return nil, fmt.Errorf("shardstore: shard %d server %d: %w", s, j, err)
			}
			clients[j] = c
		}
		maker := func(server types.ServerID) fabric.Lane { return clients[server] }
		return []fabric.Option{fabric.WithLanes(maker)}, nil
	default:
		return nil, fmt.Errorf("shardstore: unknown lane %q", cfg.Lane)
	}
}

// NumShards returns S.
func (st *Store) NumShards() int { return len(st.shards) }

// NumEngines returns M.
func (st *Store) NumEngines() int { return len(st.engines) }

// Keys returns the key-space size.
func (st *Store) Keys() uint64 { return st.cfg.Keys }

// ShardOf routes a key to its shard: a pure function of (key, S) — no
// state, so the mapping is identical across store instances and restarts.
func (st *Store) ShardOf(key uint64) int {
	return int(uint64(seed.Sub(int64(key), routeStreamShard)) % uint64(len(st.shards)))
}

// EngineOf pins a key to its engine loop, independently of ShardOf.
func (st *Store) EngineOf(key uint64) int {
	return int(uint64(seed.Sub(int64(key), routeStreamEngine)) % uint64(len(st.engines)))
}

// Env exposes shard s's environment (cluster + fabric) for fault injection
// and space accounting.
func (st *Store) Env(s int) *runner.Env { return st.shards[s].env }

// Crash crashes one server of one shard: every in-flight and future
// operation on that server's objects stays pending forever, in that shard
// only.
func (st *Store) Crash(s int, server types.ServerID) error {
	return st.shards[s].env.Fabric.Crash(server)
}

// Reconfigure performs a rolling replacement of every current member of
// shard s: each server is replaced in turn (fabric.Replace) by a fresh
// joiner with full state transfer, one at a time, while the shard keeps
// serving — operations caught in a freeze window retry transparently. After
// Reconfigure returns, none of the shard's original servers remain in the
// view.
//
// On the TCP lane each joiner dials its own fresh connection into the node
// pool (bound to the shard's table): the new session identity IS the join,
// mirroring the reconnect-as-crash rule in reverse. Other lanes use the
// fabric's default maker, so a latency-lane joiner gets its own seeded
// delay sub-stream.
func (st *Store) Reconfigure(ctx context.Context, s int) error {
	if s < 0 || s >= len(st.shards) {
		return fmt.Errorf("shardstore: shard %d outside [0, %d)", s, len(st.shards))
	}
	sh := st.shards[s]
	view := sh.env.Cluster.View()
	for _, old := range view.Members {
		maker, err := st.joinerMakerAt(s, st.Env(s).Cluster.N())
		if err != nil {
			return fmt.Errorf("shardstore: shard %d joiner for server %d: %w", s, old, err)
		}
		if _, err := sh.env.Fabric.Replace(ctx, old, maker); err != nil {
			return fmt.Errorf("shardstore: shard %d replace server %d: %w", s, old, err)
		}
	}
	return nil
}

// ResizeSpec describes one shard's batched membership delta: admit Grow
// joiners, retire the Shrink longest-serving members, and (optionally)
// move the failure budget to F — all under a single epoch bump.
type ResizeSpec struct {
	// Grow is how many fresh servers join; Shrink how many current members
	// leave (the lowest-ID members of the live view are chosen, mirroring
	// Reconfigure's oldest-first order). Both may be zero.
	Grow, Shrink int
	// F, when positive, is the shard's new failure budget; 0 keeps the
	// current one.
	F int
}

// Resize commits a batched view transition on shard s: all joins, leaves,
// and the f change activate together with re-derived quorum thresholds,
// and every materialized register re-places its base objects against the
// new geometry inside the frozen window (emulation.ViewResizable.Reshape).
// Constructions without a reshape path (regemu) reject the resize before
// the view is disturbed.
//
// The shard's register table is locked for the whole transition: a
// quorum-reshaping transition freezes every member anyway, so ops queue
// behind the freeze rather than racing a half-moved placement, and keys
// materializing afterwards pin to the new member set with the new f.
func (st *Store) Resize(ctx context.Context, s int, spec ResizeSpec) (*fabric.ResizeResult, error) {
	if s < 0 || s >= len(st.shards) {
		return nil, fmt.Errorf("shardstore: shard %d outside [0, %d)", s, len(st.shards))
	}
	if spec.Grow < 0 || spec.Shrink < 0 || spec.F < 0 {
		return nil, fmt.Errorf("shardstore: negative resize spec %+v", spec)
	}
	sh := st.shards[s]
	sh.mu.Lock()
	defer sh.mu.Unlock()

	view := sh.env.Cluster.View()
	if spec.Shrink > len(view.Members) {
		return nil, fmt.Errorf("shardstore: shard %d cannot shed %d of %d members", s, spec.Shrink, len(view.Members))
	}
	fspec := fabric.ResizeSpec{Leave: view.Members[:spec.Shrink], F: spec.F}
	for i := 0; i < spec.Grow; i++ {
		maker, err := st.joinerMakerAt(s, sh.env.Cluster.N()+i)
		if err != nil {
			return nil, fmt.Errorf("shardstore: shard %d joiner %d: %w", s, i, err)
		}
		fspec.Join = append(fspec.Join, maker)
	}
	res, err := sh.env.Fabric.Resize(ctx, fspec, func(rs *fabric.Reshaper) error {
		for key, kr := range sh.keys {
			vr, ok := kr.reg.(emulation.ViewResizable)
			if !ok {
				return fmt.Errorf("shardstore: key %d (%s): %w", key, kr.reg.Name(), emulation.ErrResizeUnsupported)
			}
			if err := vr.Reshape(rs); err != nil {
				return fmt.Errorf("shardstore: key %d: %w", key, err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("shardstore: shard %d resize: %w", s, err)
	}
	sh.f = sh.env.Cluster.F()
	sh.resized = true
	return res, nil
}

// joinerMakerAt builds the lane maker for the joiner that will be assigned
// server ID next on shard s (IDs are monotone: Cluster.N() + the joiner's
// index within the batch). TCP shards need a real maker — the Open-time
// maker closes over a fixed client slice and cannot serve a grown server
// ID — so the joiner's connection is dialed here, round-robin over the
// node pool. Other lanes return nil: the fabric's default maker already
// covers any ID.
func (st *Store) joinerMakerAt(s, next int) (fabric.LaneMaker, error) {
	if st.cfg.Lane != runner.LaneTCP {
		return nil, nil
	}
	addr := st.cfg.NodeAddrs[(s*st.cfg.N+next)%len(st.cfg.NodeAddrs)]
	// The joiner's table is namespaced by its server ID, not just the
	// shard: node processes never delete objects, so a joiner landing on a
	// node that once hosted a departed server of the same shard would
	// otherwise hit the idempotent re-place rule and resurrect the stale
	// copy instead of materializing the transferred state.
	table := fmt.Sprintf("shard%d.s%d", s, next)
	c, err := lanenet.Dial(addr, st.cfg.DialTimeout, lanenet.WithTable(table))
	if err != nil {
		return nil, err
	}
	return func(types.ServerID) fabric.Lane { return c }, nil
}

// keyreg materializes (or returns) a key's register on its shard.
func (st *Store) keyreg(key uint64) (*keyreg, error) {
	if key >= st.cfg.Keys {
		return nil, fmt.Errorf("shardstore: key %d outside key-space [0, %d)", key, st.cfg.Keys)
	}
	sh := st.shards[st.ShardOf(key)]
	sh.mu.RLock()
	kr, hit := sh.keys[key]
	sh.mu.RUnlock()
	if hit {
		return kr, nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if kr, hit := sh.keys[key]; hit {
		return kr, nil
	}
	var servers []types.ServerID
	if sh.resized {
		servers = sh.env.Cluster.View().Members
	}
	reg, hist, err := runner.BuildWith(st.cfg.Kind, sh.env.Fabric, st.cfg.WritersPerKey, sh.f,
		runner.BuildOpts{ValueSize: st.cfg.ValueSize, Atomic: st.cfg.Atomic, Servers: servers})
	if err != nil {
		return nil, fmt.Errorf("shardstore: materializing key %d: %w", key, err)
	}
	if st.cfg.NoHistory {
		hist.SetDiscard(true)
	}
	kr = &keyreg{reg: reg, hist: hist}
	sh.keys[key] = kr
	return kr, nil
}

// Writer returns the engine client for writer slot i (in [0, WritersPerKey))
// of key's register, materializing the register on first touch. Repeated
// calls return the same client — ops through it serialize in invocation
// order on the key's engine loop.
func (st *Store) Writer(key uint64, slot int) (*async.Client, error) {
	kr, err := st.keyreg(key)
	if err != nil {
		return nil, err
	}
	return st.engines[st.EngineOf(key)].WriterOn(kr.reg, slot)
}

// Reader returns the engine client for reader slot i of key's register
// (slots are unbounded; each is a distinct logical client). Repeated calls
// with the same slot return the same client.
func (st *Store) Reader(key uint64, slot int) (*async.Client, error) {
	if slot < 0 {
		return nil, fmt.Errorf("shardstore: negative reader slot %d", slot)
	}
	kr, err := st.keyreg(key)
	if err != nil {
		return nil, err
	}
	kr.mu.Lock()
	defer kr.mu.Unlock()
	for len(kr.readers) <= slot {
		kr.readers = append(kr.readers, nil)
	}
	if kr.readers[slot] == nil {
		kr.readers[slot] = st.engines[st.EngineOf(key)].ReaderOn(kr.reg)
	}
	return kr.readers[slot], nil
}

// StartWrite routes one high-level write through the frontend: key to
// shard, shard to register, writer slot to engine client. done fires
// exactly once on the key's engine loop (or inline, on a routing error).
func (st *Store) StartWrite(key uint64, slot int, v types.Value, done func(error)) {
	c, err := st.Writer(key, slot)
	if err != nil {
		done(err)
		return
	}
	c.StartWrite(v, done)
}

// StartRead is the read-side frontend; the same contract as StartWrite.
func (st *Store) StartRead(key uint64, slot int, done func(types.Value, error)) {
	c, err := st.Reader(key, slot)
	if err != nil {
		done(types.InitialValue, err)
		return
	}
	c.StartRead(done)
}

// MaterializedKeys returns how many keys have registers built, per shard.
func (st *Store) MaterializedKeys() []int {
	counts := make([]int, len(st.shards))
	for i, sh := range st.shards {
		sh.mu.RLock()
		counts[i] = len(sh.keys)
		sh.mu.RUnlock()
	}
	return counts
}

// PerServerBytes sums every shard's per-server storage footprint
// index-wise: entry j is the bytes held by server slot j across all
// shards. Bytes are tracked by the in-process clusters, so on the TCP
// lane (where objects live in node processes) every entry is zero — query
// the nodes' own BytesStored counters there.
func (st *Store) PerServerBytes() []int64 {
	var out []int64
	for _, sh := range st.shards {
		for j, b := range sh.env.Cluster.PerServerBytes() {
			for len(out) <= j {
				out = append(out, 0)
			}
			out[j] += b
		}
	}
	return out
}

// TotalBytes is the sum of PerServerBytes across all shards and servers.
func (st *Store) TotalBytes() int64 {
	var total int64
	for _, b := range st.PerServerBytes() {
		total += b
	}
	return total
}

// EngineStats snapshots every engine loop's operation counters.
func (st *Store) EngineStats() []async.Stats {
	out := make([]async.Stats, len(st.engines))
	for i, e := range st.engines {
		out[i] = e.Stats()
	}
	return out
}

// BalancedKeys picks n distinct keys spread evenly over the shards — the
// lowest key ids that fill a per-shard quota of ceil(n/S) — so loads built
// on small key counts exercise every shard. Deterministic.
func (st *Store) BalancedKeys(n int) []uint64 {
	if uint64(n) >= st.cfg.Keys {
		keys := make([]uint64, st.cfg.Keys)
		for i := range keys {
			keys[i] = uint64(i)
		}
		return keys
	}
	s := len(st.shards)
	quota := make([]int, s)
	for i := range quota {
		quota[i] = n / s
		if i < n%s {
			quota[i]++
		}
	}
	keys := make([]uint64, 0, n)
	var skipped []uint64
	for key := uint64(0); key < st.cfg.Keys && len(keys) < n; key++ {
		sh := st.ShardOf(key)
		if quota[sh] > 0 {
			quota[sh]--
			keys = append(keys, key)
		} else {
			skipped = append(skipped, key)
		}
	}
	// The hash may starve a quota before the key-space runs out; fill the
	// remainder from the lowest skipped keys so the count is exact.
	for i := 0; len(keys) < n && i < len(skipped); i++ {
		keys = append(keys, skipped[i])
	}
	return keys
}

// Drain blocks until every operation issued so far on every engine has
// completed (or failed), or ctx expires.
func (st *Store) Drain(ctx context.Context) error {
	for _, e := range st.engines {
		if err := e.Drain(ctx); err != nil {
			return err
		}
	}
	return nil
}

// CheckReport is the outcome of CheckAll.
type CheckReport struct {
	// Keys is how many materialized registers were checked; HistoryOps the
	// total recorded high-level ops; SampledOps how many ops the
	// linearizability samples covered (atomic builds only).
	Keys       int
	HistoryOps int
	SampledOps int
	// Violations is empty on a healthy store.
	Violations []string
}

// CheckAll verifies every materialized key's history: read validity
// always, and sampleChecks independent linearizability samples per key on
// atomic builds. Call after Drain so histories are complete.
func (st *Store) CheckAll(sampleChecks int, checkSeed int64) CheckReport {
	var rep CheckReport
	if st.cfg.NoHistory {
		return rep
	}
	if sampleChecks <= 0 {
		sampleChecks = 4
	}
	for _, sh := range st.shards {
		sh.mu.RLock()
		keys := make(map[uint64]*keyreg, len(sh.keys))
		for k, kr := range sh.keys {
			keys[k] = kr
		}
		sh.mu.RUnlock()
		for key, kr := range keys {
			rep.Keys++
			ops := kr.hist.Snapshot()
			rep.HistoryOps += len(ops)
			if err := spec.CheckReadValidity(ops, types.InitialValue); err != nil {
				rep.Violations = append(rep.Violations, fmt.Sprintf("key %d: %v", key, err))
			}
			if !st.cfg.Atomic {
				continue
			}
			keySeed := seed.Sub(checkSeed, key)
			for chk := 0; chk < sampleChecks; chk++ {
				sample := spec.SampleLinearizable(ops, 1024, seed.Sub(keySeed, uint64(chk+1)))
				rep.SampledOps += len(sample)
				if err := spec.CheckLinearizable(sample, types.InitialValue); err != nil {
					rep.Violations = append(rep.Violations, fmt.Sprintf("key %d: %v", key, err))
				}
			}
		}
	}
	return rep
}

// Close shuts the store down: every engine closes (failing queued and
// in-flight ops with async.ErrClosed) and every shard's fabric closes its
// lanes. Idempotent.
func (st *Store) Close() error {
	if !st.closed.CompareAndSwap(false, true) {
		return nil
	}
	st.cancel()
	for _, e := range st.engines {
		_ = e.Close()
	}
	for _, sh := range st.shards {
		if sh != nil && sh.env != nil {
			sh.env.Fabric.Close()
		}
	}
	return nil
}
