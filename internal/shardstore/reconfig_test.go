package shardstore

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/runner"
)

// assertFreshView fails unless shard s's view consists entirely of
// post-reconfiguration joiners (every original ID < N replaced).
func assertFreshView(t *testing.T, st *Store, s, n int) {
	t.Helper()
	view := st.Env(s).Cluster.View()
	if view.N() != n {
		t.Fatalf("shard %d view has %d members, want %d", s, view.N(), n)
	}
	for _, m := range view.Members {
		if int(m) < n {
			t.Fatalf("shard %d: original server %d still in view %v", s, m, view.Members)
		}
	}
}

// TestShardStoreReconfigure performs a live rolling replacement of every
// server of every shard while concurrent clients keep writing and reading.
// The bar is the issue's acceptance bar: zero failed client operations
// (driveStore fails the test on any op error) and zero history violations
// after the drain.
func TestShardStoreReconfigure(t *testing.T) {
	ctx := testCtx(t)
	st, err := Open(ctx, Config{
		Shards: 2, Engines: 2, Keys: 1 << 12, N: 3, F: 1,
		Kind: runner.KindABDMax, Atomic: true, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	keys := st.BalancedKeys(6)

	var reconfWG sync.WaitGroup
	reconfErrs := make(chan error, st.NumShards())
	var once sync.Once
	hook := func(done int) {
		if done < 6 {
			return
		}
		once.Do(func() {
			for s := 0; s < st.NumShards(); s++ {
				s := s
				reconfWG.Add(1)
				go func() {
					defer reconfWG.Done()
					reconfErrs <- st.Reconfigure(ctx, s)
				}()
			}
		})
	}
	driveStore(ctx, t, st, keys, 12, hook)
	reconfWG.Wait()
	close(reconfErrs)
	for err := range reconfErrs {
		if err != nil {
			t.Fatalf("Reconfigure: %v", err)
		}
	}

	for s := 0; s < st.NumShards(); s++ {
		assertFreshView(t, st, s, 3)
		if crashes := st.Env(s).Cluster.Crashes(); crashes != 0 {
			t.Fatalf("shard %d: %d crashes after clean replacements, want 0", s, crashes)
		}
	}
	if err := st.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	rep := st.CheckAll(4, 23)
	if len(rep.Violations) > 0 {
		t.Fatalf("violations after reconfiguration: %v", rep.Violations)
	}
	if rep.Keys != len(keys) {
		t.Fatalf("checked %d keys, want %d", rep.Keys, len(keys))
	}
}

// TestShardStoreReconfigureOutOfRange pins the frontend validation.
func TestShardStoreReconfigureOutOfRange(t *testing.T) {
	ctx := testCtx(t)
	st, err := Open(ctx, Config{Shards: 2, Kind: runner.KindABDMax})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Reconfigure(ctx, -1); err == nil {
		t.Fatal("Reconfigure(-1) succeeded")
	}
	if err := st.Reconfigure(ctx, 2); err == nil {
		t.Fatal("Reconfigure(2) succeeded")
	}
}

// TestShardStoreResize commits a batched grow (n=5,f=1 → n=7,f=2) and then
// a shrink back (→ n=5,f=1) on every shard, mid-load: each transition is
// one epoch bump with every materialized register re-placed against the
// re-derived quorum geometry. Zero client ops may fail, histories must
// stay clean, and no clean transition may cost a crash.
func TestShardStoreResize(t *testing.T) {
	ctx := testCtx(t)
	st, err := Open(ctx, Config{
		Shards: 2, Engines: 2, Keys: 1 << 12, N: 5, F: 1,
		Kind: runner.KindABDMax, Atomic: true, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	keys := st.BalancedKeys(6)

	var resizeWG sync.WaitGroup
	resizeErrs := make(chan error, 2*st.NumShards())
	var once sync.Once
	hook := func(done int) {
		if done < 6 {
			return
		}
		once.Do(func() {
			for s := 0; s < st.NumShards(); s++ {
				s := s
				resizeWG.Add(1)
				go func() {
					defer resizeWG.Done()
					if _, err := st.Resize(ctx, s, ResizeSpec{Grow: 2, F: 2}); err != nil {
						resizeErrs <- err
						return
					}
					view := st.Env(s).Cluster.View()
					if view.N() != 7 || view.F != 2 {
						resizeErrs <- fmt.Errorf("shard %d after grow: n=%d f=%d, want n=7 f=2", s, view.N(), view.F)
						return
					}
					if _, err := st.Resize(ctx, s, ResizeSpec{Shrink: 2, F: 1}); err != nil {
						resizeErrs <- err
					}
				}()
			}
		})
	}
	driveStore(ctx, t, st, keys, 16, hook)
	resizeWG.Wait()
	close(resizeErrs)
	for err := range resizeErrs {
		t.Fatalf("Resize: %v", err)
	}

	for s := 0; s < st.NumShards(); s++ {
		view := st.Env(s).Cluster.View()
		if view.N() != 5 || view.F != 1 {
			t.Fatalf("shard %d final view: n=%d f=%d, want n=5 f=1", s, view.N(), view.F)
		}
		if crashes := st.Env(s).Cluster.Crashes(); crashes != 0 {
			t.Fatalf("shard %d: %d crashes after clean transitions, want 0", s, crashes)
		}
	}
	if err := st.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	rep := st.CheckAll(4, 23)
	if len(rep.Violations) > 0 {
		t.Fatalf("violations after resizing: %v", rep.Violations)
	}
	if rep.Keys != len(keys) {
		t.Fatalf("checked %d keys, want %d", rep.Keys, len(keys))
	}
	// A key materializing after the resize pins to the live member set.
	late := uint64(0)
	for ; late < st.cfg.Keys; late++ {
		if !containsKey(keys, late) {
			break
		}
	}
	errc := make(chan error, 1)
	st.StartWrite(late, 0, 7, func(err error) { errc <- err })
	if err := <-errc; err != nil {
		t.Fatalf("write on a post-resize key: %v", err)
	}
}

func containsKey(keys []uint64, k uint64) bool {
	for _, have := range keys {
		if have == k {
			return true
		}
	}
	return false
}

// TestShardStoreTCPResize runs a batched grow and then a shrink back
// through the TCP lane: the joiners dial their own connections into the
// node pool (tables namespaced by their monotone server IDs), the reshape
// seeds node-hosted state over the wire, the grown view serves with f=2,
// and the shrink retires the oldest members' connections cleanly.
func TestShardStoreTCPResize(t *testing.T) {
	ctx := testCtx(t)
	addrs, _ := startLanenodes(t, 2)
	st, err := Open(ctx, Config{
		Shards: 2, Engines: 2, Keys: 1 << 10, N: 5, F: 1,
		Kind: runner.KindABDMax, Atomic: true,
		Lane: runner.LaneTCP, NodeAddrs: addrs,
		Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	keys := st.BalancedKeys(4)

	var resizeWG sync.WaitGroup
	resizeErrs := make(chan error, st.NumShards())
	var once sync.Once
	hook := func(done int) {
		if done < 5 {
			return
		}
		once.Do(func() {
			for s := 0; s < st.NumShards(); s++ {
				s := s
				resizeWG.Add(1)
				go func() {
					defer resizeWG.Done()
					if _, err := st.Resize(ctx, s, ResizeSpec{Grow: 2, F: 2}); err != nil {
						resizeErrs <- err
						return
					}
					view := st.Env(s).Cluster.View()
					if view.N() != 7 || view.F != 2 {
						resizeErrs <- fmt.Errorf("shard %d after grow: n=%d f=%d, want n=7 f=2", s, view.N(), view.F)
						return
					}
					if _, err := st.Resize(ctx, s, ResizeSpec{Shrink: 2, F: 1}); err != nil {
						resizeErrs <- err
					}
				}()
			}
		})
	}
	driveStore(ctx, t, st, keys, 10, hook)
	resizeWG.Wait()
	close(resizeErrs)
	for err := range resizeErrs {
		if err != nil {
			t.Fatalf("Resize: %v", err)
		}
	}
	for s := 0; s < st.NumShards(); s++ {
		view := st.Env(s).Cluster.View()
		if view.N() != 5 || view.F != 1 {
			t.Fatalf("shard %d final view: n=%d f=%d, want n=5 f=1", s, view.N(), view.F)
		}
		if crashes := st.Env(s).Cluster.Crashes(); crashes != 0 {
			t.Fatalf("shard %d: %d crashes, want 0", s, crashes)
		}
	}
	if err := st.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if rep := st.CheckAll(3, 37); len(rep.Violations) > 0 {
		t.Fatalf("violations after TCP resize: %v", rep.Violations)
	}
}

// TestShardStoreResizeValidation pins the frontend validation.
func TestShardStoreResizeValidation(t *testing.T) {
	ctx := testCtx(t)
	st, err := Open(ctx, Config{Shards: 1, Kind: runner.KindABDMax})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Resize(ctx, -1, ResizeSpec{Grow: 1}); err == nil {
		t.Fatal("Resize(-1) succeeded")
	}
	if _, err := st.Resize(ctx, 1, ResizeSpec{Grow: 1}); err == nil {
		t.Fatal("Resize(1) succeeded on a 1-shard store")
	}
	if _, err := st.Resize(ctx, 0, ResizeSpec{Grow: -1}); err == nil {
		t.Fatal("negative grow succeeded")
	}
	if _, err := st.Resize(ctx, 0, ResizeSpec{Shrink: 99}); err == nil {
		t.Fatal("shrink past the member count succeeded")
	}
}

// TestShardStoreTCPReconfigure rolls every server of both shards onto
// fresh connections into the same node-process pool, mid-load: each joiner
// dials its own connection bound to a server-scoped table (the new session
// identity is the join), state rides the stateful place frames, and the
// drained histories must stay clean.
func TestShardStoreTCPReconfigure(t *testing.T) {
	ctx := testCtx(t)
	addrs, _ := startLanenodes(t, 2)
	st, err := Open(ctx, Config{
		Shards: 2, Engines: 2, Keys: 1 << 10, N: 3, F: 1,
		Kind: runner.KindABDMax, Atomic: true,
		Lane: runner.LaneTCP, NodeAddrs: addrs,
		Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	keys := st.BalancedKeys(4)

	var reconfWG sync.WaitGroup
	reconfErrs := make(chan error, st.NumShards())
	var once sync.Once
	hook := func(done int) {
		if done < 5 {
			return
		}
		once.Do(func() {
			for s := 0; s < st.NumShards(); s++ {
				s := s
				reconfWG.Add(1)
				go func() {
					defer reconfWG.Done()
					reconfErrs <- st.Reconfigure(ctx, s)
				}()
			}
		})
	}
	driveStore(ctx, t, st, keys, 10, hook)
	reconfWG.Wait()
	close(reconfErrs)
	for err := range reconfErrs {
		if err != nil {
			t.Fatalf("Reconfigure: %v", err)
		}
	}
	for s := 0; s < st.NumShards(); s++ {
		assertFreshView(t, st, s, 3)
	}
	if err := st.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if rep := st.CheckAll(3, 31); len(rep.Violations) > 0 {
		t.Fatalf("violations after TCP reconfiguration: %v", rep.Violations)
	}
}
