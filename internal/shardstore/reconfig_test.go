package shardstore

import (
	"sync"
	"testing"

	"repro/internal/runner"
)

// assertFreshView fails unless shard s's view consists entirely of
// post-reconfiguration joiners (every original ID < N replaced).
func assertFreshView(t *testing.T, st *Store, s, n int) {
	t.Helper()
	view := st.Env(s).Cluster.View()
	if view.N() != n {
		t.Fatalf("shard %d view has %d members, want %d", s, view.N(), n)
	}
	for _, m := range view.Members {
		if int(m) < n {
			t.Fatalf("shard %d: original server %d still in view %v", s, m, view.Members)
		}
	}
}

// TestShardStoreReconfigure performs a live rolling replacement of every
// server of every shard while concurrent clients keep writing and reading.
// The bar is the issue's acceptance bar: zero failed client operations
// (driveStore fails the test on any op error) and zero history violations
// after the drain.
func TestShardStoreReconfigure(t *testing.T) {
	ctx := testCtx(t)
	st, err := Open(ctx, Config{
		Shards: 2, Engines: 2, Keys: 1 << 12, N: 3, F: 1,
		Kind: runner.KindABDMax, Atomic: true, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	keys := st.BalancedKeys(6)

	var reconfWG sync.WaitGroup
	reconfErrs := make(chan error, st.NumShards())
	var once sync.Once
	hook := func(done int) {
		if done < 6 {
			return
		}
		once.Do(func() {
			for s := 0; s < st.NumShards(); s++ {
				s := s
				reconfWG.Add(1)
				go func() {
					defer reconfWG.Done()
					reconfErrs <- st.Reconfigure(ctx, s)
				}()
			}
		})
	}
	driveStore(ctx, t, st, keys, 12, hook)
	reconfWG.Wait()
	close(reconfErrs)
	for err := range reconfErrs {
		if err != nil {
			t.Fatalf("Reconfigure: %v", err)
		}
	}

	for s := 0; s < st.NumShards(); s++ {
		assertFreshView(t, st, s, 3)
		if crashes := st.Env(s).Cluster.Crashes(); crashes != 0 {
			t.Fatalf("shard %d: %d crashes after clean replacements, want 0", s, crashes)
		}
	}
	if err := st.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	rep := st.CheckAll(4, 23)
	if len(rep.Violations) > 0 {
		t.Fatalf("violations after reconfiguration: %v", rep.Violations)
	}
	if rep.Keys != len(keys) {
		t.Fatalf("checked %d keys, want %d", rep.Keys, len(keys))
	}
}

// TestShardStoreReconfigureOutOfRange pins the frontend validation.
func TestShardStoreReconfigureOutOfRange(t *testing.T) {
	ctx := testCtx(t)
	st, err := Open(ctx, Config{Shards: 2, Kind: runner.KindABDMax})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Reconfigure(ctx, -1); err == nil {
		t.Fatal("Reconfigure(-1) succeeded")
	}
	if err := st.Reconfigure(ctx, 2); err == nil {
		t.Fatal("Reconfigure(2) succeeded")
	}
}

// TestShardStoreTCPReconfigure rolls every server of both shards onto
// fresh connections into the same node-process pool, mid-load: each joiner
// dials its own connection bound to a server-scoped table (the new session
// identity is the join), state rides the stateful place frames, and the
// drained histories must stay clean.
func TestShardStoreTCPReconfigure(t *testing.T) {
	ctx := testCtx(t)
	addrs, _ := startLanenodes(t, 2)
	st, err := Open(ctx, Config{
		Shards: 2, Engines: 2, Keys: 1 << 10, N: 3, F: 1,
		Kind: runner.KindABDMax, Atomic: true,
		Lane: runner.LaneTCP, NodeAddrs: addrs,
		Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	keys := st.BalancedKeys(4)

	var reconfWG sync.WaitGroup
	reconfErrs := make(chan error, st.NumShards())
	var once sync.Once
	hook := func(done int) {
		if done < 5 {
			return
		}
		once.Do(func() {
			for s := 0; s < st.NumShards(); s++ {
				s := s
				reconfWG.Add(1)
				go func() {
					defer reconfWG.Done()
					reconfErrs <- st.Reconfigure(ctx, s)
				}()
			}
		})
	}
	driveStore(ctx, t, st, keys, 10, hook)
	reconfWG.Wait()
	close(reconfErrs)
	for err := range reconfErrs {
		if err != nil {
			t.Fatalf("Reconfigure: %v", err)
		}
	}
	for s := 0; s < st.NumShards(); s++ {
		assertFreshView(t, st, s, 3)
	}
	if err := st.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if rep := st.CheckAll(3, 31); len(rep.Violations) > 0 {
		t.Fatalf("violations after TCP reconfiguration: %v", rep.Violations)
	}
}
