package trace

import (
	"strings"
	"testing"

	"repro/internal/baseobj"
	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/types"
)

// tracedEnv builds a 2-server, 2-register fabric with a recorder attached.
func tracedEnv(t *testing.T, gate fabric.Gate) (*fabric.Fabric, *Recorder, []types.ObjectID) {
	t.Helper()
	c, err := cluster.New(2)
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]types.ObjectID, 2)
	for s := 0; s < 2; s++ {
		obj, err := c.PlaceRegister(types.ServerID(s))
		if err != nil {
			t.Fatal(err)
		}
		objs[s] = obj
	}
	rec := NewRecorder(0)
	opts := []fabric.Option{fabric.WithTracer(rec)}
	if gate != nil {
		opts = append(opts, fabric.WithGate(gate))
	}
	return fabric.New(c, opts...), rec, objs
}

func TestRecordsLifecycle(t *testing.T) {
	fab, rec, objs := tracedEnv(t, nil)
	fab.Trigger(0, objs[0], baseobj.Invocation{Op: baseobj.OpWrite, Arg: types.TSValue{TS: 1}})
	kinds := rec.Summary()
	for _, want := range []fabric.TraceKind{fabric.TraceTrigger, fabric.TraceApply, fabric.TraceRespond} {
		if kinds[want] != 1 {
			t.Errorf("kind %v count = %d, want 1", want, kinds[want])
		}
	}
	if rec.Len() != 3 {
		t.Errorf("Len = %d, want 3", rec.Len())
	}
}

func TestRecordsHoldReleaseAndCrash(t *testing.T) {
	gate := fabric.GateFuncs{Apply: func(ev fabric.TriggerEvent) fabric.Decision {
		if ev.Inv.Op.IsWrite() {
			return fabric.Hold
		}
		return fabric.Pass
	}}
	fab, rec, objs := tracedEnv(t, gate)
	held := fab.Trigger(0, objs[0], baseobj.Invocation{Op: baseobj.OpWrite, Arg: types.TSValue{TS: 1}})
	if err := fab.Release(held.Token()); err != nil {
		t.Fatal(err)
	}
	if err := fab.Crash(1); err != nil {
		t.Fatal(err)
	}
	// A post-crash op is dropped.
	fab.Trigger(0, objs[1], baseobj.Invocation{Op: baseobj.OpRead})

	kinds := rec.Summary()
	for _, want := range []fabric.TraceKind{
		fabric.TraceHoldApply, fabric.TraceRelease, fabric.TraceApply,
		fabric.TraceRespond, fabric.TraceCrash, fabric.TraceDrop,
	} {
		if kinds[want] == 0 {
			t.Errorf("kind %v not recorded", want)
		}
	}

	log := rec.RenderLog()
	for _, want := range []string{"CRASH", "hold-apply", "release", "drop"} {
		if !strings.Contains(log, want) {
			t.Errorf("RenderLog missing %q:\n%s", want, log)
		}
	}
	timelines := rec.RenderObjectTimelines()
	for _, want := range []string{"obj", "H[", "L[", "A[", "R["} {
		if !strings.Contains(timelines, want) {
			t.Errorf("timelines missing %q:\n%s", want, timelines)
		}
	}
}

func TestEventsOrderedBySeq(t *testing.T) {
	fab, rec, objs := tracedEnv(t, nil)
	for i := 0; i < 5; i++ {
		fab.Trigger(0, objs[i%2], baseobj.Invocation{Op: baseobj.OpRead})
	}
	events := rec.Events()
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestFilterAndReset(t *testing.T) {
	fab, rec, objs := tracedEnv(t, nil)
	fab.Trigger(0, objs[0], baseobj.Invocation{Op: baseobj.OpWrite, Arg: types.TSValue{TS: 1}})
	fab.Trigger(1, objs[1], baseobj.Invocation{Op: baseobj.OpRead})
	writes := rec.Filter(func(ev fabric.TraceEvent) bool {
		return ev.Kind == fabric.TraceTrigger && ev.Op.Inv.Op.IsWrite()
	})
	if len(writes) != 1 || writes[0].Op.Client != 0 {
		t.Fatalf("Filter = %+v, want 1 write trigger by c0", writes)
	}
	rec.Reset()
	if rec.Len() != 0 {
		t.Fatalf("Len after Reset = %d", rec.Len())
	}
}

func TestRecorderLimit(t *testing.T) {
	c, err := cluster.New(1)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := c.PlaceRegister(0)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(4)
	fab := fabric.New(c, fabric.WithTracer(rec))
	for i := 0; i < 10; i++ {
		fab.Trigger(0, obj, baseobj.Invocation{Op: baseobj.OpRead})
	}
	if rec.Len() != 4 {
		t.Fatalf("Len = %d, want limit 4", rec.Len())
	}
}

func TestTraceKindStrings(t *testing.T) {
	kinds := []fabric.TraceKind{
		fabric.TraceTrigger, fabric.TraceApply, fabric.TraceHoldApply,
		fabric.TraceHoldRespond, fabric.TraceRespond, fabric.TraceRelease,
		fabric.TraceDrop, fabric.TraceCrash, fabric.TraceKind(99),
	}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("TraceKind(%d).String() empty", int(k))
		}
	}
}
