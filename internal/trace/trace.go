// Package trace records and renders low-level run traces in the spirit of
// the paper's Figure 2: per-register timelines showing triggers, holds,
// late applies, and crashes, so adversarial runs can be read step by step.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/fabric"
	"repro/internal/types"
)

// Recorder collects fabric trace events. The zero value is ready to use.
type Recorder struct {
	mu     sync.Mutex
	events []fabric.TraceEvent
	limit  int
}

// Compile-time interface compliance check.
var _ fabric.Tracer = (*Recorder)(nil)

// NewRecorder creates a recorder keeping at most limit events (0 means
// unlimited).
func NewRecorder(limit int) *Recorder {
	return &Recorder{limit: limit}
}

// Trace implements fabric.Tracer.
func (r *Recorder) Trace(ev fabric.TraceEvent) {
	r.mu.Lock()
	if r.limit == 0 || len(r.events) < r.limit {
		r.events = append(r.events, ev)
	}
	r.mu.Unlock()
}

// Events returns a copy of the recorded events in sequence order.
func (r *Recorder) Events() []fabric.TraceEvent {
	r.mu.Lock()
	out := make([]fabric.TraceEvent, len(r.events))
	copy(out, r.events)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.mu.Unlock()
}

// Filter returns the recorded events matching pred, in sequence order.
func (r *Recorder) Filter(pred func(fabric.TraceEvent) bool) []fabric.TraceEvent {
	var out []fabric.TraceEvent
	for _, ev := range r.Events() {
		if pred(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// RenderLog renders the raw event log, one line per event.
func (r *Recorder) RenderLog() string {
	var b strings.Builder
	for _, ev := range r.Events() {
		if ev.Kind == fabric.TraceCrash {
			fmt.Fprintf(&b, "%6d  CRASH server s%d\n", ev.Seq, ev.Server)
			continue
		}
		fmt.Fprintf(&b, "%6d  %-12s c%-4d %-10s obj%-4d s%d\n",
			ev.Seq, ev.Kind, ev.Op.Client, ev.Op.Inv.Op, ev.Op.Object, ev.Op.Server)
	}
	return b.String()
}

// RenderObjectTimelines renders a per-register timeline: for each object,
// the sequence of lifecycle events it saw. Registers that stay covered end
// with a hold and no respond — exactly how Figure 2 depicts pending
// covering writes.
func (r *Recorder) RenderObjectTimelines() string {
	perObject := make(map[types.ObjectID][]fabric.TraceEvent)
	for _, ev := range r.Events() {
		if ev.Kind == fabric.TraceCrash {
			continue
		}
		perObject[ev.Op.Object] = append(perObject[ev.Op.Object], ev)
	}
	ids := make([]types.ObjectID, 0, len(perObject))
	for id := range perObject {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var b strings.Builder
	for _, id := range ids {
		events := perObject[id]
		fmt.Fprintf(&b, "obj%-4d (s%d):", id, events[0].Op.Server)
		for _, ev := range events {
			fmt.Fprintf(&b, " %s[c%d,%s]", shortKind(ev.Kind), ev.Op.Client, shortOp(ev))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// shortKind abbreviates a trace kind for timeline rendering.
func shortKind(k fabric.TraceKind) string {
	switch k {
	case fabric.TraceTrigger:
		return "T"
	case fabric.TraceApply:
		return "A"
	case fabric.TraceHoldApply:
		return "H"
	case fabric.TraceHoldRespond:
		return "h"
	case fabric.TraceRespond:
		return "R"
	case fabric.TraceRelease:
		return "L"
	case fabric.TraceDrop:
		return "X"
	default:
		return "?"
	}
}

// shortOp abbreviates the operation for timeline rendering.
func shortOp(ev fabric.TraceEvent) string {
	if ev.Op.Inv.Op.IsWrite() {
		return fmt.Sprintf("w%d", ev.Op.Inv.Arg.TS)
	}
	return "r"
}

// Summary reports aggregate counts by kind.
func (r *Recorder) Summary() map[fabric.TraceKind]int {
	counts := make(map[fabric.TraceKind]int)
	for _, ev := range r.Events() {
		counts[ev.Kind]++
	}
	return counts
}
