// Package buildinfo identifies the build that produced a result artifact —
// toolchain version and git commit — so dated JSON snapshots
// (BENCH_<date>.json, sweep -json envelopes) stay attributable to the exact
// tree that made them.
package buildinfo

import (
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
)

// GoVersion returns the running toolchain version (e.g. "go1.24.0").
func GoVersion() string { return runtime.Version() }

// GitCommit returns the commit hash of the tree this binary was built from:
// the VCS stamp when the binary carries one (a plain `go build` in a git
// checkout), else `git rev-parse HEAD` in the working directory (the
// `go run` / `go test` path, where the toolchain omits the stamp), else
// "unknown". A stamped-but-dirty tree is marked with a "-dirty" suffix.
func GitCommit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
		if rev != "" {
			if modified == "true" {
				return rev + "-dirty"
			}
			return rev
		}
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	return "unknown"
}
