package types

import (
	"encoding/binary"
	"fmt"
)

// Payload is the byte-slice value representation: the variable-length
// bytes a register physically stores for one logical Value. The logical
// domain stays the int64 Value — every checker, history, and sweep works
// on Values — while Payload is what travels in frames, lands in object
// tables, and is striped by the erasure coder. The two are linked by a
// deterministic, self-verifying codec: PayloadFor(v, size) embeds v in
// the first 8 bytes and fills the rest with a splitmix stream derived
// from v, so Value() can both recover v and detect any corrupted or
// cross-write-mixed byte.
type Payload []byte

// MinPayloadSize is the smallest payload that can carry a Value.
const MinPayloadSize = 8

// PayloadFor materializes the payload for v at the given size (clamped
// up to MinPayloadSize): 8-byte big-endian value, then the verification
// fill.
func PayloadFor(v Value, size int) Payload {
	if size < MinPayloadSize {
		size = MinPayloadSize
	}
	p := make(Payload, size)
	binary.BigEndian.PutUint64(p, uint64(v))
	fillPayload(p, v)
	return p
}

// Value recovers the logical value, verifying the fill byte-for-byte. A
// payload assembled from fragments of two different writes fails here —
// this is the torn-stripe detector.
func (p Payload) Value() (Value, error) {
	if len(p) < MinPayloadSize {
		return 0, fmt.Errorf("types: payload too short (%d bytes)", len(p))
	}
	v := Value(binary.BigEndian.Uint64(p))
	want := make(Payload, len(p))
	binary.BigEndian.PutUint64(want, uint64(v))
	fillPayload(want, v)
	for i := range p {
		if p[i] != want[i] {
			return 0, fmt.Errorf("types: payload corrupt at byte %d (value %d)", i, v)
		}
	}
	return v, nil
}

// Clone returns an independent copy (nil stays nil).
func (p Payload) Clone() Payload {
	if p == nil {
		return nil
	}
	c := make(Payload, len(p))
	copy(c, p)
	return c
}

// fillPayload writes the deterministic splitmix64 fill after the value
// prefix.
func fillPayload(p Payload, v Value) {
	x := uint64(v) ^ 0x9e3779b97f4a7c15
	var buf [8]byte
	for off := MinPayloadSize; off < len(p); off += 8 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		binary.BigEndian.PutUint64(buf[:], z)
		copy(p[off:], buf[:])
	}
}
