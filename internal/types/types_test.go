package types

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// quickTSValue generates bounded TSValues so collisions (equal timestamps,
// equal writers) actually occur under testing/quick.
func quickTSValue(rng *rand.Rand) TSValue {
	return TSValue{
		TS:     uint64(rng.Intn(5)),
		Writer: ClientID(rng.Intn(4)),
		Val:    Value(rng.Intn(8)),
	}
}

// tsValueGenerator adapts quickTSValue to quick.Config.
func tsValueGenerator(values []reflect.Value, rng *rand.Rand) {
	for i := range values {
		values[i] = reflect.ValueOf(quickTSValue(rng))
	}
}

func TestLessBasics(t *testing.T) {
	tests := []struct {
		name string
		a, b TSValue
		want bool
	}{
		{"lower ts", TSValue{TS: 1, Writer: 9}, TSValue{TS: 2, Writer: 0}, true},
		{"higher ts", TSValue{TS: 3}, TSValue{TS: 2}, false},
		{"tie broken by writer", TSValue{TS: 2, Writer: 1}, TSValue{TS: 2, Writer: 2}, true},
		{"equal", TSValue{TS: 2, Writer: 2}, TSValue{TS: 2, Writer: 2}, false},
		{"value ignored", TSValue{TS: 2, Writer: 2, Val: 99}, TSValue{TS: 2, Writer: 2, Val: 1}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Less(tc.b); got != tc.want {
				t.Errorf("(%v).Less(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestLessIsStrictTotalOrder(t *testing.T) {
	cfg := &quick.Config{Values: tsValueGenerator}
	// Irreflexivity + antisymmetry.
	if err := quick.Check(func(a, b TSValue) bool {
		if a.Less(a) {
			return false
		}
		if a.Less(b) && b.Less(a) {
			return false
		}
		// Totality on distinct timestamps/writers.
		sameKey := a.TS == b.TS && a.Writer == b.Writer
		if !sameKey && !a.Less(b) && !b.Less(a) {
			return false
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
	// Transitivity.
	if err := quick.Check(func(a, b, c TSValue) bool {
		if a.Less(b) && b.Less(c) {
			return a.Less(c)
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCompareConsistentWithLess(t *testing.T) {
	cfg := &quick.Config{Values: tsValueGenerator}
	if err := quick.Check(func(a, b TSValue) bool {
		switch a.Compare(b) {
		case -1:
			return a.Less(b)
		case 1:
			return b.Less(a)
		case 0:
			return !a.Less(b) && !b.Less(a)
		default:
			return false
		}
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMaxTSValue(t *testing.T) {
	cfg := &quick.Config{Values: tsValueGenerator}
	// Max returns one of its arguments and is an upper bound.
	if err := quick.Check(func(a, b TSValue) bool {
		m := MaxTSValue(a, b)
		if m != a && m != b {
			return false
		}
		return !m.Less(a) && !m.Less(b)
	}, cfg); err != nil {
		t.Fatal(err)
	}
	// Commutative up to order-equivalence.
	if err := quick.Check(func(a, b TSValue) bool {
		m1, m2 := MaxTSValue(a, b), MaxTSValue(b, a)
		return m1.Compare(m2) == 0
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestZeroTSValueIsMinimum(t *testing.T) {
	cfg := &quick.Config{Values: tsValueGenerator}
	if err := quick.Check(func(a TSValue) bool {
		a.Writer = ClientID(int32(abs(int(a.Writer)))) // writers are non-negative in practice
		return !a.Less(ZeroTSValue) || a == ZeroTSValue
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestString(t *testing.T) {
	s := TSValue{TS: 7, Writer: 3, Val: 42}.String()
	for _, want := range []string{"7", "3", "42"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, want it to contain %q", s, want)
		}
	}
}
