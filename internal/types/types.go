// Package types defines the identifier and value domains shared by every
// component of the emulation: clients, servers, base objects, and the
// timestamped values that emulation algorithms store in base objects.
//
// The domains mirror the paper's model (Section 2 / Appendix A): a set of
// clients C, a set of servers S, a set of base objects B mapped onto servers
// by a function delta, and a register value domain Vals with a distinguished
// initial value v0.
package types

import "fmt"

// ClientID identifies a client process (a reader or a writer of the emulated
// register). Writers of a k-register are numbered 0..k-1.
type ClientID int32

// ServerID identifies a fault-prone server. A server crash takes down every
// base object mapped to it.
type ServerID int32

// ObjectID identifies a base object. Object IDs are unique across the whole
// cluster, not per server.
type ObjectID int32

// Value is the register value domain Vals. Experiments use unique values per
// write so the consistency checkers are exact.
type Value int64

// InitialValue is v0, the value a freshly initialized emulated register
// returns before any write completes.
const InitialValue Value = 0

// TSValue is a timestamped value, the paper's TSVal = N x V. Emulation
// algorithms attach a timestamp to every stored value so that readers can
// select the most recent one. Writer breaks ties so that the ordering is
// total even when two clients pick the same sequence number (which cannot
// happen in write-sequential runs, but keeps concurrent runs well-defined).
type TSValue struct {
	// TS is the primary timestamp (sequence number).
	TS uint64
	// Writer is the client that produced the value, used as a tie-break.
	Writer ClientID
	// Val is the stored register value.
	Val Value
}

// ZeroTSValue is the initial content of every base object: timestamp 0,
// writer 0, value v0.
var ZeroTSValue = TSValue{TS: 0, Writer: 0, Val: InitialValue}

// Less reports whether v is ordered strictly before o, comparing first by
// timestamp and then by writer ID.
func (v TSValue) Less(o TSValue) bool {
	if v.TS != o.TS {
		return v.TS < o.TS
	}
	return v.Writer < o.Writer
}

// Compare returns -1, 0, or +1 according to the total order on timestamped
// values.
func (v TSValue) Compare(o TSValue) int {
	switch {
	case v.Less(o):
		return -1
	case o.Less(v):
		return 1
	default:
		return 0
	}
}

// MaxTSValue returns the larger of a and b under the total order.
func MaxTSValue(a, b TSValue) TSValue {
	if a.Less(b) {
		return b
	}
	return a
}

// String implements fmt.Stringer.
func (v TSValue) String() string {
	return fmt.Sprintf("<ts=%d,w=%d,v=%d>", v.TS, v.Writer, v.Val)
}
