package types

import (
	"bytes"
	"testing"
)

func TestPayloadRoundTrip(t *testing.T) {
	for _, v := range []Value{0, 1, -1, 42, 1 << 40, -(1 << 40)} {
		for _, size := range []int{0, 1, 8, 9, 64, 1024, 64 << 10} {
			p := PayloadFor(v, size)
			if len(p) < MinPayloadSize {
				t.Fatalf("payload shorter than minimum: %d", len(p))
			}
			if size >= MinPayloadSize && len(p) != size {
				t.Fatalf("PayloadFor(%d, %d) has %d bytes", v, size, len(p))
			}
			got, err := p.Value()
			if err != nil {
				t.Fatalf("Value() for v=%d size=%d: %v", v, size, err)
			}
			if got != v {
				t.Fatalf("round trip %d -> %d", v, got)
			}
		}
	}
}

func TestPayloadDetectsCorruption(t *testing.T) {
	p := PayloadFor(7, 256)
	for _, idx := range []int{0, 7, 8, 100, 255} {
		q := p.Clone()
		q[idx] ^= 0x01
		if _, err := q.Value(); err == nil {
			t.Fatalf("corruption at byte %d undetected", idx)
		}
	}
}

func TestPayloadDetectsMix(t *testing.T) {
	// Splicing halves of two different writes' payloads must not verify —
	// this is what makes a torn (mixed-fragment) reconstruction visible.
	a, b := PayloadFor(1, 128), PayloadFor(2, 128)
	mix := append(a[:64].Clone(), b[64:]...)
	if _, err := Payload(mix).Value(); err == nil {
		t.Fatal("mixed payload verified")
	}
}

func TestPayloadDeterministic(t *testing.T) {
	if !bytes.Equal(PayloadFor(9, 512), PayloadFor(9, 512)) {
		t.Fatal("PayloadFor not deterministic")
	}
	if bytes.Equal(PayloadFor(9, 512)[8:], PayloadFor(10, 512)[8:]) {
		t.Fatal("fill does not depend on value")
	}
}

func TestPayloadClone(t *testing.T) {
	if Payload(nil).Clone() != nil {
		t.Fatal("nil clone not nil")
	}
	p := PayloadFor(3, 32)
	c := p.Clone()
	c[9] ^= 0xff
	if p[9] == c[9] {
		t.Fatal("clone aliases original")
	}
}
