package runner

import (
	"context"
	"fmt"

	"repro/internal/baseobj"
	"repro/internal/emulation"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
)

// Theorem5Report is the outcome of the partitioning demonstration behind
// Theorem 5 (|S| >= 2f+1): with only n = 2f servers, any protocol that
// stays live despite f silent servers can be driven into a safety
// violation, because a write quorum (n-f = f servers) and a read quorum
// (f servers) need not intersect.
type Theorem5Report struct {
	F, N int
	// WroteValue is the value the partitioned write stored.
	WroteValue types.Value
	// ReadValue is what the partitioned read returned (the initial value:
	// it saw only the other half).
	ReadValue types.Value
	// SafetyViolation is the checker's verdict; it must be non-nil, i.e.
	// the violation must materialize.
	SafetyViolation error
}

// RunTheorem5 builds a minimal live protocol on n = 2f servers (one
// register per server; operations wait for n-f = f responses, the most any
// f-tolerant protocol may wait for) and drives the partition schedule: the
// write's responses come from the first half, the read's from the second.
func RunTheorem5(ctx context.Context, f int) (*Theorem5Report, error) {
	if f <= 0 {
		return nil, fmt.Errorf("runner: theorem5 needs f > 0")
	}
	n := 2 * f
	script := newHalfGate(f)
	env, err := NewEnv(n, script)
	if err != nil {
		return nil, err
	}
	objs := make([]types.ObjectID, n)
	for s := 0; s < n; s++ {
		obj, err := env.Cluster.PlaceRegister(types.ServerID(s))
		if err != nil {
			return nil, err
		}
		objs[s] = obj
	}
	hist := &spec.History{}

	// The write: push to all, wait for n-f = f responses. The gate holds
	// responses from the second half, so they come from the first half.
	const v = types.Value(77)
	pw := hist.BeginWrite(0, v)
	calls := make([]*fabric.Call, 0, n)
	for _, obj := range objs {
		calls = append(calls, env.Fabric.Trigger(0, obj, baseobj.Invocation{
			Op:  baseobj.OpWrite,
			Arg: types.TSValue{TS: 1, Writer: 0, Val: v},
		}))
	}
	if _, err := fabric.AwaitN(ctx, calls, n-f); err != nil {
		return nil, ctxErr(ctx, "theorem5 write", err)
	}
	pw.End()

	// The read: collect from all, wait for n-f = f responses. The gate
	// now holds responses from the first half, so the read sees only the
	// second half — which the write never reached.
	script.flip()
	pr := hist.BeginRead(emulation.ReaderIDBase)
	reads := make([]*fabric.Call, 0, n)
	for _, obj := range objs {
		reads = append(reads, env.Fabric.Trigger(emulation.ReaderIDBase, obj, baseobj.Invocation{Op: baseobj.OpRead}))
	}
	done, err := fabric.AwaitN(ctx, reads, n-f)
	if err != nil {
		return nil, ctxErr(ctx, "theorem5 read", err)
	}
	max := types.ZeroTSValue
	for _, c := range done {
		max = types.MaxTSValue(max, c.Outcome.Resp.Val)
	}
	pr.End(max.Val)

	return &Theorem5Report{
		F:               f,
		N:               n,
		WroteValue:      v,
		ReadValue:       max.Val,
		SafetyViolation: spec.CheckWSSafety(hist.Snapshot(), types.InitialValue),
	}, nil
}

// halfGate drives the partition: during the write phase the writer's
// low-level writes on the upper half (servers f..2f-1) are held before
// taking effect (those servers never learn the value); during the read
// phase the reader's responses from the lower half are delayed, so its
// quorum is exactly the uninformed upper half.
type halfGate struct {
	f    int
	mode chan int // capacity 1, holds the current phase (0 write, 1 read)
}

// Compile-time interface compliance check.
var _ fabric.Gate = (*halfGate)(nil)

// newHalfGate starts in the write phase.
func newHalfGate(f int) *halfGate {
	g := &halfGate{f: f, mode: make(chan int, 1)}
	g.mode <- 0
	return g
}

// phase reads the current phase without consuming it.
func (g *halfGate) phase() int {
	m := <-g.mode
	g.mode <- m
	return m
}

// flip switches to the read phase.
func (g *halfGate) flip() {
	<-g.mode
	g.mode <- 1
}

// BeforeApply implements fabric.Gate: in the write phase, writes on the
// upper half never take effect.
func (g *halfGate) BeforeApply(ev fabric.TriggerEvent) fabric.Decision {
	if g.phase() == 0 && ev.Inv.Op.IsWrite() && int(ev.Server) >= g.f {
		return fabric.Hold
	}
	return fabric.Pass
}

// BeforeRespond implements fabric.Gate: in the read phase, responses from
// the lower half are delayed.
func (g *halfGate) BeforeRespond(ev fabric.TriggerEvent, _ baseobj.Response) fabric.Decision {
	if g.phase() == 1 && !ev.Inv.Op.IsWrite() && int(ev.Server) < g.f {
		return fabric.Hold
	}
	return fabric.Pass
}
