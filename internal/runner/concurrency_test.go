package runner

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/emulation"
	"repro/internal/emulation/abdmax"
	"repro/internal/emulation/casmax"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
	"repro/internal/workload"
)

// TestAllKindsConcurrentStress hammers every construction with k concurrent
// writers plus readers through the sharded fabric (run with -race): the
// per-server dispatch lanes, the lock-free call completion, and the batch
// scatters of the round engine all get exercised under modeled response
// latency. Writers are concurrent, so the write-sequential checkers do not
// apply; the run asserts completion and read validity (every read returns
// v0 or a written value).
func TestAllKindsConcurrentStress(t *testing.T) {
	const (
		writers = 4
		readers = 3
		ops     = 15
	)
	ctx := testCtx(t)
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			n := 6
			if kind != KindRegEmu {
				n = 5 // aacmax requires n = 2f+1; the quorum kinds only use 2f+1 servers
			}
			env, err := NewEnv(n, &fabric.YieldGate{Yields: 2})
			if err != nil {
				t.Fatal(err)
			}
			reg, hist, err := Build(kind, env.Fabric, writers, 2)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make(chan error, writers+readers)
			values := workload.NewValueGen()
			for i := 0; i < writers; i++ {
				w, err := reg.Writer(i)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(i int, w emulation.Writer) {
					defer wg.Done()
					for op := 0; op < ops; op++ {
						if err := w.Write(ctx, values.Next(types.ClientID(i))); err != nil {
							errs <- fmt.Errorf("writer %d: %w", i, err)
							return
						}
					}
				}(i, w)
			}
			for r := 0; r < readers; r++ {
				rd := reg.NewReader()
				wg.Add(1)
				go func(rd emulation.Reader) {
					defer wg.Done()
					for op := 0; op < ops; op++ {
						if _, err := rd.Read(ctx); err != nil {
							errs <- fmt.Errorf("reader: %w", err)
							return
						}
					}
				}(rd)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("concurrent op: %v", err)
			}
			ops := hist.Snapshot()
			if len(ops) != (writers+readers)*15 {
				t.Fatalf("history has %d ops, want %d", len(ops), (writers+readers)*15)
			}
			if err := spec.CheckReadValidity(ops, types.InitialValue); err != nil {
				t.Fatalf("read validity: %v", err)
			}
		})
	}
}

// TestConcurrentWritersLinearizable drives the two atomic configurations
// (read write-back upgrades ABD reads to linearizable) with genuinely
// concurrent writers and readers and then checks full linearizability of
// the recorded history with the spec checker's Wing–Gong search.
func TestConcurrentWritersLinearizable(t *testing.T) {
	const (
		writers = 3
		readers = 2
		ops     = 3 // (3+2)*3 = 15 ops, comfortably inside the 64-op search bound
	)
	ctx := testCtx(t)
	builds := map[string]func(fab *fabric.Fabric, hist *spec.History) (emulation.Register, error){
		"abd-max": func(fab *fabric.Fabric, hist *spec.History) (emulation.Register, error) {
			return abdmax.New(fab, writers, 1, abdmax.Options{History: hist, ReadWriteBack: true})
		},
		"abd-cas": func(fab *fabric.Fabric, hist *spec.History) (emulation.Register, error) {
			reg, _, err := casmax.New(fab, writers, 1, casmax.Options{History: hist, ReadWriteBack: true})
			return reg, err
		},
	}
	for name, build := range builds {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			env, err := NewEnv(3, &fabric.YieldGate{Yields: 2})
			if err != nil {
				t.Fatal(err)
			}
			hist := &spec.History{}
			reg, err := build(env.Fabric, hist)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make(chan error, writers+readers)
			values := workload.NewValueGen()
			for i := 0; i < writers; i++ {
				w, err := reg.Writer(i)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(i int, w emulation.Writer) {
					defer wg.Done()
					for op := 0; op < ops; op++ {
						if err := w.Write(ctx, values.Next(types.ClientID(i))); err != nil {
							errs <- err
							return
						}
					}
				}(i, w)
			}
			for r := 0; r < readers; r++ {
				rd := reg.NewReader()
				wg.Add(1)
				go func(rd emulation.Reader) {
					defer wg.Done()
					for op := 0; op < ops; op++ {
						if _, err := rd.Read(ctx); err != nil {
							errs <- err
							return
						}
					}
				}(rd)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("concurrent op: %v", err)
			}
			if err := spec.CheckLinearizable(hist.Snapshot(), types.InitialValue); err != nil {
				t.Fatalf("linearizability: %v", err)
			}
		})
	}
}

// TestWriteSequentialWithConcurrentReaders issues writes sequentially
// (rotating through all k writer handles) while readers run concurrently,
// which is exactly the write-sequential regime of the paper's conditions:
// the WS-Safety and WS-Regularity checkers must both accept every
// construction's history.
func TestWriteSequentialWithConcurrentReaders(t *testing.T) {
	const (
		writers   = 3
		readers   = 3
		writeOps  = 12
		readerOps = 12
	)
	ctx := testCtx(t)
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			n := 6
			if kind != KindRegEmu {
				n = 5
			}
			env, err := NewEnv(n, &fabric.YieldGate{Yields: 2})
			if err != nil {
				t.Fatal(err)
			}
			reg, hist, err := Build(kind, env.Fabric, writers, 2)
			if err != nil {
				t.Fatal(err)
			}
			handles := make([]emulation.Writer, writers)
			for i := range handles {
				if handles[i], err = reg.Writer(i); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			errs := make(chan error, readers+1)
			for r := 0; r < readers; r++ {
				rd := reg.NewReader()
				wg.Add(1)
				go func(rd emulation.Reader) {
					defer wg.Done()
					for op := 0; op < readerOps; op++ {
						if _, err := rd.Read(ctx); err != nil {
							errs <- err
							return
						}
					}
				}(rd)
			}
			values := workload.NewValueGen()
			wg.Add(1)
			go func() {
				defer wg.Done()
				for op := 0; op < writeOps; op++ {
					w := handles[op%writers]
					if err := w.Write(ctx, values.Next(w.Client())); err != nil {
						errs <- err
						return
					}
				}
			}()
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("op: %v", err)
			}
			ops := hist.Snapshot()
			if err := spec.CheckWSSafety(ops, types.InitialValue); err != nil {
				t.Fatalf("WS-Safety: %v", err)
			}
			if err := spec.CheckWSRegularity(ops, types.InitialValue); err != nil {
				t.Fatalf("WS-Regularity: %v", err)
			}
		})
	}
}
