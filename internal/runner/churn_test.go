package runner

import (
	"testing"
)

// churnSeeds is the pinned seed range of the churn chaos net (EXPERIMENTS.md
// E24 uses the same range): within it every sound construction stays clean
// and the naive baseline is caught.
const churnSeeds = 24

// TestChurnChaosSoundConstructionsStaySafe runs the chaos net with live
// membership churn: between high-level ops, random servers are replaced
// wholesale — freeze, drain of gate-parked ops, state transfer, view
// activation — while holds and stale releases keep firing. Sound
// constructions must stay WS-safe and WS-regular on every seed, and the
// churn must actually happen.
func TestChurnChaosSoundConstructionsStaySafe(t *testing.T) {
	ctx := testCtx(t)
	for _, kind := range []Kind{KindRegEmu, KindABDMax, KindCASMax, KindAACMax} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			replacements := 0
			for seed := int64(0); seed < churnSeeds; seed++ {
				cfg := ChaosConfig{
					Kind: kind, K: 3, F: 2, N: ChaosServers(kind),
					Ops: 25, Seed: seed, ChurnProb: 0.25,
				}
				rep, err := RunChaos(ctx, cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if rep.Checks.WSSafety != nil {
					t.Errorf("seed %d: WS-Safety: %v (replacements=%d)", seed, rep.Checks.WSSafety, rep.Replacements)
				}
				if rep.Checks.WSRegularity != nil {
					t.Errorf("seed %d: WS-Regularity: %v (replacements=%d)", seed, rep.Checks.WSRegularity, rep.Replacements)
				}
				replacements += rep.Replacements
			}
			if replacements == 0 {
				t.Error("churn never replaced a server — the net is vacuous")
			}
		})
	}
}

// TestChurnChaosStillCatchesNaive guards the net's teeth: churn must not
// blunt the detection of the under-provisioned baseline. Over the pinned
// seed range the naive construction must violate at least once (seeds 8, 9,
// and 13 do at the time of pinning).
func TestChurnChaosStillCatchesNaive(t *testing.T) {
	ctx := testCtx(t)
	violations := 0
	for seed := int64(0); seed < churnSeeds; seed++ {
		rep, err := RunChaos(ctx, ChaosConfig{
			Kind: KindNaive, K: 3, F: 2, N: 5, Ops: 30, Seed: seed, ChurnProb: 0.25,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Checks.OK() {
			violations++
		}
	}
	if violations == 0 {
		t.Fatalf("naive baseline survived all %d churn seeds — the net lost its teeth", churnSeeds)
	}
	t.Logf("naive baseline violated WS conditions in %d/%d churn seeds", violations, churnSeeds)
}

// TestChurnDeterministicPerSeed: churn draws from its own sub-stream of the
// run seed, so the whole run — schedule, holds, releases, and replacements —
// must replay identically.
func TestChurnDeterministicPerSeed(t *testing.T) {
	ctx := testCtx(t)
	cfg := ChaosConfig{
		Kind: KindABDMax, K: 3, F: 2, N: 5, Ops: 30, Seed: 3, ChurnProb: 0.3,
	}
	a, err := RunChaos(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Writes != b.Writes || a.Reads != b.Reads || a.Replacements != b.Replacements || a.Holds != b.Holds {
		t.Fatalf("same seed diverged: %d/%d/%d/%d vs %d/%d/%d/%d (writes/reads/replacements/holds)",
			a.Writes, a.Reads, a.Replacements, a.Holds, b.Writes, b.Reads, b.Replacements, b.Holds)
	}
	if a.Replacements == 0 {
		t.Error("pinned seed produced no replacements")
	}
}
