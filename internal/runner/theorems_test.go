package runner

import (
	"testing"

	"repro/internal/bounds"
)

func TestRunTheorem2(t *testing.T) {
	ctx := testCtx(t)
	for _, tc := range []struct{ k, f int }{{2, 1}, {3, 2}} {
		rep, err := RunTheorem2(ctx, tc.k, tc.f)
		if err != nil {
			t.Fatalf("RunTheorem2(%+v): %v", tc, err)
		}
		if !rep.Safe {
			t.Errorf("%+v: not safe", tc)
		}
		if rep.Total != rep.TotalWant {
			t.Errorf("%+v: total %d, want %d", tc, rep.Total, rep.TotalWant)
		}
		for s, c := range rep.PerServer {
			if c != rep.PerServerWant {
				t.Errorf("%+v: server %d hosts %d, want %d", tc, s, c, rep.PerServerWant)
			}
		}
		// aacmax is register-based: covering accumulates like Lemma 1
		// predicts, unlike the true max-register construction.
		if rep.CoveredAtEnd < tc.k*tc.f {
			t.Errorf("%+v: covered %d < k*f = %d", tc, rep.CoveredAtEnd, tc.k*tc.f)
		}
	}
}

func TestRunTheorem6(t *testing.T) {
	for _, tc := range []struct{ k, f int }{{2, 1}, {5, 2}} {
		rep, err := RunTheorem6(tc.k, tc.f)
		if err != nil {
			t.Fatalf("RunTheorem6(%+v): %v", tc, err)
		}
		if rep.N != 2*tc.f+1 {
			t.Errorf("%+v: n = %d", tc, rep.N)
		}
		for s, c := range rep.PerServer {
			if c < rep.Want {
				t.Errorf("%+v: server %d hosts %d < k = %d", tc, s, c, rep.Want)
			}
		}
	}
}

func TestRunTheorem7(t *testing.T) {
	for _, tc := range []struct{ k, f, cap int }{{4, 1, 1}, {4, 1, 2}, {6, 2, 3}} {
		rep, err := RunTheorem7(tc.k, tc.f, tc.cap)
		if err != nil {
			t.Fatalf("RunTheorem7(%+v): %v", tc, err)
		}
		if !rep.Feasible {
			t.Fatalf("%+v: no feasible n found", tc)
		}
		want, err := bounds.ServersLowerWithCap(tc.k, tc.f, tc.cap)
		if err != nil {
			t.Fatal(err)
		}
		if rep.BoundN != want {
			t.Errorf("%+v: bound %d, want %d", tc, rep.BoundN, want)
		}
		// The layout can never beat the lower bound.
		if rep.MinFeasibleN < rep.BoundN {
			t.Errorf("%+v: layout fits at n=%d below the bound %d", tc, rep.MinFeasibleN, rep.BoundN)
		}
	}
}

func TestRunTheorem8ConsumptionGrows(t *testing.T) {
	ctx := testCtx(t)
	points, err := RunTheorem8(ctx, 2, 6, []int{1, 3, 6})
	if err != nil {
		t.Fatalf("RunTheorem8: %v", err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d, want 3", len(points))
	}
	for i, p := range points {
		if p.PointContention != 1 {
			t.Errorf("point %d contention = %d, want 1", i, p.PointContention)
		}
		if i > 0 && p.UsedObjects <= points[i-1].UsedObjects {
			t.Errorf("consumption did not grow: k=%d used %d vs k=%d used %d",
				points[i-1].K, points[i-1].UsedObjects, p.K, p.UsedObjects)
		}
	}
}

func TestRunCoincidence(t *testing.T) {
	for _, tc := range []struct{ k, f int }{{1, 1}, {4, 2}, {3, 3}} {
		points, err := RunCoincidence(tc.k, tc.f)
		if err != nil {
			t.Fatalf("RunCoincidence(%+v): %v", tc, err)
		}
		for _, p := range points {
			if !p.Coincide {
				t.Errorf("%+v: bounds do not coincide at n=%d: lower=%d upper=%d want=%d",
					tc, p.N, p.Lower, p.Upper, p.Want)
			}
		}
	}
}

func TestRunTheorem5PartitionViolation(t *testing.T) {
	ctx := testCtx(t)
	for _, f := range []int{1, 2, 3} {
		rep, err := RunTheorem5(ctx, f)
		if err != nil {
			t.Fatalf("RunTheorem5(f=%d): %v", f, err)
		}
		if rep.N != 2*f {
			t.Errorf("f=%d: n = %d, want 2f", f, rep.N)
		}
		if rep.SafetyViolation == nil {
			t.Errorf("f=%d: partition schedule did not violate safety (read %d)", f, rep.ReadValue)
		}
		if rep.ReadValue == rep.WroteValue {
			t.Errorf("f=%d: read saw the write despite disjoint quorums", f)
		}
	}
	if _, err := RunTheorem5(ctx, 0); err == nil {
		t.Error("f=0 accepted")
	}
}
