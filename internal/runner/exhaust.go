package runner

import (
	"context"
	"fmt"
	"math/bits"
	"slices"
	"strings"
	"sync"
	"time"

	"repro/internal/adversary"
	"repro/internal/emulation"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
)

// This file implements a bounded exhaustive search over the f-bounded
// adversary class of Lemma 4: for a two-writer configuration on n = 2f+1
// servers it enumerates EVERY schedule of the form
//
//	write(v1) by c0 with up to f covering holds, one per chosen server
//	write(v2) by c1 with up to f covering holds, one per chosen server
//	release any subset of each writer's held covering writes
//	read with responses from up to f chosen servers delayed
//
// and checks WS-Safety on each resulting history. This is the complete
// space of environment behaviours the paper's separation argument draws
// from (up to symmetry), so "0 violations" is a bounded model-checking
// result, not a sample: the construction defeats every schedule in the
// class. The under-provisioned baseline must, conversely, have violating
// schedules — the lower bound made exhaustive.
//
// Symmetry reduction keeps the space tractable: all releases happen after
// both writes and before the read, so only the final per-object state they
// leave matters. Two releases commute unless they target the same base
// object, which (across all five constructions) can only happen for
// releases by *different* writers landing on the *same* server. The
// enumerator therefore fixes a canonical server order for releases and
// explores both orders only at those collision points (the w1First set),
// instead of all release permutations. At f=1 this yields 208 schedules
// covering the same class the previous 320-point enumeration sampled with
// redundancy (no-op releases of never-held ops, order flips on disjoint
// objects).

// exhaustSchedule is one point of the schedule space. Server sets are
// ascending slices.
type exhaustSchedule struct {
	// holds[i] lists the servers on which writer i's first mutating op is
	// held pre-apply (at most f servers, one held op each).
	holds [2][]int
	// releases[i] is the subset of holds[i] whose held ops are released
	// after the second write completes.
	releases [2][]int
	// w1First lists the servers in releases[0] ∩ releases[1] where writer
	// 1's stale release is applied before writer 0's; elsewhere writer 0's
	// goes first.
	w1First []int
	// delayRead lists the servers whose read responses to the reader are
	// held (at most f).
	delayRead []int
}

// String implements fmt.Stringer for violation reports.
func (s exhaustSchedule) String() string {
	return fmt.Sprintf("hold0=%s hold1=%s rel0=%s rel1=%s w1first=%s delayRead=%s",
		fmtServers(s.holds[0]), fmtServers(s.holds[1]),
		fmtServers(s.releases[0]), fmtServers(s.releases[1]),
		fmtServers(s.w1First), fmtServers(s.delayRead))
}

// fmtServers renders a server set as "s0+s2", or "-" when empty.
func fmtServers(set []int) string {
	if len(set) == 0 {
		return "-"
	}
	parts := make([]string, len(set))
	for i, s := range set {
		parts[i] = fmt.Sprintf("s%d", s)
	}
	return strings.Join(parts, "+")
}

// serversOf expands a bitmask over n servers into an ascending slice.
func serversOf(mask int) []int {
	if mask == 0 {
		return nil
	}
	set := make([]int, 0, bits.OnesCount(uint(mask)))
	for s := 0; mask != 0; s, mask = s+1, mask>>1 {
		if mask&1 != 0 {
			set = append(set, s)
		}
	}
	return set
}

// capMasks lists every bitmask over n servers with at most f bits set —
// the legal hold sets and read-delay sets of the f-bounded adversary.
func capMasks(n, f int) []int {
	var out []int
	for mask := 0; mask < 1<<uint(n); mask++ {
		if bits.OnesCount(uint(mask)) <= f {
			out = append(out, mask)
		}
	}
	return out
}

// enumerateExhaust materializes the complete f-bounded schedule class over
// n servers, reduced by release-commutation symmetry as described in the
// file comment. The enumeration order is deterministic, so schedule
// indices are stable across runs and worker counts.
func enumerateExhaust(f, n int) []exhaustSchedule {
	caps := capMasks(n, f)
	var out []exhaustSchedule
	for _, h0 := range caps {
		for _, h1 := range caps {
			// Iterate every submask r of h (including 0 and h itself).
			for r0 := h0; ; r0 = (r0 - 1) & h0 {
				for r1 := h1; ; r1 = (r1 - 1) & h1 {
					shared := r0 & r1
					for w1f := shared; ; w1f = (w1f - 1) & shared {
						for _, d := range caps {
							out = append(out, exhaustSchedule{
								holds:     [2][]int{serversOf(h0), serversOf(h1)},
								releases:  [2][]int{serversOf(r0), serversOf(r1)},
								w1First:   serversOf(w1f),
								delayRead: serversOf(d),
							})
						}
						if w1f == 0 {
							break
						}
					}
					if r1 == 0 {
						break
					}
				}
				if r0 == 0 {
					break
				}
			}
		}
	}
	return out
}

// ExhaustOptions configures the exhaustive sweep.
type ExhaustOptions struct {
	// F is the adversary budget: covering holds per write and delayed
	// servers during the read. Supported: 1 (default) and 2; the cluster
	// has n = 2f+1 servers.
	F int
	// Workers is the sweep pool size; <= 0 means one per CPU.
	Workers int
}

// ExhaustReport is the outcome of the exhaustive search.
type ExhaustReport struct {
	Kind Kind
	F, N int
	// Workers is the pool size the sweep ran with.
	Workers int
	// Schedules is the number of schedules executed.
	Schedules int
	// Violations is how many schedules broke WS-Safety.
	Violations int
	// FirstViolation describes the violating schedule with the lowest
	// enumeration index, if any.
	FirstViolation string
	// ViolationIndices lists the enumeration indices of all violating
	// schedules, ascending. Deterministic across worker counts, so a
	// parallel sweep can be checked against a sequential one.
	ViolationIndices []int `json:",omitempty"`
	// Elapsed is the sweep wall-clock time.
	Elapsed time.Duration
}

// RunExhaustive enumerates the full f=1 schedule class against the given
// construction (two writers, n = 3 servers) with one sweep worker per CPU
// and reports the violation count.
func RunExhaustive(ctx context.Context, kind Kind) (*ExhaustReport, error) {
	return RunExhaustiveOpts(ctx, kind, ExhaustOptions{})
}

// RunExhaustiveOpts runs the exhaustive sweep with explicit adversary
// budget and pool size: every schedule is an independent job on the Sweep
// engine, each with its own cluster, fabric, gate, and emulation.
func RunExhaustiveOpts(ctx context.Context, kind Kind, opts ExhaustOptions) (*ExhaustReport, error) {
	f := opts.F
	if f == 0 {
		f = 1
	}
	if f < 1 || f > 2 {
		return nil, fmt.Errorf("runner: exhaustive sweep supports f=1 or f=2, got f=%d", f)
	}
	n := 2*f + 1
	schedules := enumerateExhaust(f, n)
	workers := min(DefaultWorkers(opts.Workers), len(schedules))
	violated, elapsed, err := Sweep(ctx, workers, len(schedules),
		func(ctx context.Context, _, job int) (bool, error) {
			v, err := runOneSchedule(ctx, kind, f, n, schedules[job])
			if err != nil {
				return false, fmt.Errorf("runner: exhaustive %s schedule {%s}: %w", kind, schedules[job], err)
			}
			return v, nil
		})
	if err != nil {
		return nil, err
	}
	rep := &ExhaustReport{
		Kind: kind, F: f, N: n,
		Workers:   workers,
		Schedules: len(schedules),
		Elapsed:   elapsed,
	}
	for i, v := range violated {
		if !v {
			continue
		}
		rep.Violations++
		rep.ViolationIndices = append(rep.ViolationIndices, i)
		if rep.FirstViolation == "" {
			rep.FirstViolation = schedules[i].String()
		}
	}
	return rep, nil
}

// runOneSchedule executes a single schedule and reports whether WS-Safety
// was violated.
func runOneSchedule(ctx context.Context, kind Kind, f, n int, s exhaustSchedule) (bool, error) {
	script := adversary.NewScript()
	env, err := NewEnv(n, script)
	if err != nil {
		return false, err
	}
	reg, hist, err := Build(kind, env.Fabric, 2, f)
	if err != nil {
		return false, err
	}
	w0, err := reg.Writer(0)
	if err != nil {
		return false, err
	}
	w1, err := reg.Writer(1)
	if err != nil {
		return false, err
	}

	// armHolds installs the covering rule for one writer: hold the first
	// mutating op on each scheduled server (Lemma 1 covers each register
	// at most once, so subsequent ops on a held server pass).
	armHolds := func(client types.ClientID, servers []int) {
		if len(servers) == 0 {
			return
		}
		want := make(map[int]bool, len(servers))
		for _, srv := range servers {
			want[srv] = true
		}
		var mu sync.Mutex
		held := make(map[int]bool, len(servers))
		script.SetApplyRule(func(ev fabric.TriggerEvent) bool {
			if ev.Client != client || !want[int(ev.Server)] || !adversary.IsMutating(ev.Inv) {
				return false
			}
			mu.Lock()
			defer mu.Unlock()
			if held[int(ev.Server)] {
				return false
			}
			held[int(ev.Server)] = true
			return true
		})
	}

	// Phases 0-1: the two writes, each under its covering holds.
	armHolds(0, s.holds[0])
	if err := w0.Write(ctx, 101); err != nil {
		return false, fmt.Errorf("write 1: %w", err)
	}
	script.SetApplyRule(nil)
	armHolds(1, s.holds[1])
	if err := w1.Write(ctx, 202); err != nil {
		return false, fmt.Errorf("write 2: %w", err)
	}
	script.SetApplyRule(nil)

	// Phase 2: releases. Releases on distinct objects commute, so a fixed
	// server order loses nothing; on servers where both writers release,
	// w1First picks which stale write lands first.
	release := func(client types.ClientID, server int) {
		env.Fabric.ReleaseWhere(func(op fabric.PendingOp) bool {
			return op.Event.Client == client && int(op.Event.Server) == server && op.Phase == fabric.PhaseApply
		})
	}
	w1First := make(map[int]bool, len(s.w1First))
	for _, srv := range s.w1First {
		w1First[srv] = true
	}
	for srv := 0; srv < n; srv++ {
		in0 := slices.Contains(s.releases[0], srv)
		in1 := slices.Contains(s.releases[1], srv)
		switch {
		case in0 && in1:
			if w1First[srv] {
				release(1, srv)
				release(0, srv)
			} else {
				release(0, srv)
				release(1, srv)
			}
		case in0:
			release(0, srv)
		case in1:
			release(1, srv)
		}
	}

	// Phase 3: read with up to f servers' responses to the reader delayed.
	if len(s.delayRead) > 0 {
		delayed := make(map[int]bool, len(s.delayRead))
		for _, srv := range s.delayRead {
			delayed[srv] = true
		}
		script.SetRespondRule(func(ev fabric.TriggerEvent) bool {
			return ev.Client >= emulation.ReaderIDBase && delayed[int(ev.Server)]
		})
	}
	if _, err := reg.NewReader().Read(ctx); err != nil {
		return false, fmt.Errorf("read: %w", err)
	}
	script.SetRespondRule(nil)

	return spec.CheckWSSafety(hist.Snapshot(), types.InitialValue) != nil, nil
}
