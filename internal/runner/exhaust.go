package runner

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/adversary"
	"repro/internal/emulation"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
)

// This file implements a bounded exhaustive search over the f=1 adversary
// class of Lemma 4: for a two-writer configuration it enumerates EVERY
// schedule of the form
//
//	write(v1) by c0 with one covering hold on a chosen server (or none)
//	write(v2) by c1 with one covering hold on a chosen server (or none)
//	release any subset of the held covering writes, in either order
//	read with responses from one chosen server delayed (or none)
//
// and checks WS-Safety on each resulting history. This is the complete
// space of environment behaviours the paper's separation argument draws
// from (up to symmetry), so "0 violations" is a bounded model-checking
// result, not a sample: the construction defeats every schedule in the
// class. The under-provisioned baseline must, conversely, have violating
// schedules — the lower bound made exhaustive.

// exhaustSchedule is one point of the schedule space.
type exhaustSchedule struct {
	// holdW0 / holdW1: server whose first mutating op by writer 0/1 is
	// held pre-apply; -1 for none.
	holdW0, holdW1 int
	// releaseW0 / releaseW1: whether to release the corresponding held
	// op after the second write.
	releaseW0, releaseW1 bool
	// releaseW1First flips the release order when both are released.
	releaseW1First bool
	// delayRead: server whose read responses to the reader are held;
	// -1 for none.
	delayRead int
}

// String implements fmt.Stringer for violation reports.
func (s exhaustSchedule) String() string {
	return fmt.Sprintf("hold0=s%d hold1=s%d rel0=%v rel1=%v rel1first=%v delayRead=s%d",
		s.holdW0, s.holdW1, s.releaseW0, s.releaseW1, s.releaseW1First, s.delayRead)
}

// ExhaustReport is the outcome of the exhaustive search.
type ExhaustReport struct {
	Kind Kind
	F, N int
	// Schedules is the number of schedules executed.
	Schedules int
	// Violations is how many schedules broke WS-Safety.
	Violations int
	// FirstViolation describes one violating schedule, if any.
	FirstViolation string
}

// RunExhaustive enumerates the full f=1 schedule class against the given
// construction (two writers, n = 3 servers for the per-server-single-object
// constructions and for Algorithm 2 alike) and reports the violation count.
func RunExhaustive(ctx context.Context, kind Kind) (*ExhaustReport, error) {
	const f, n = 1, 3
	rep := &ExhaustReport{Kind: kind, F: f, N: n}
	serverChoices := []int{-1, 0, 1, 2}
	for _, holdW0 := range serverChoices {
		for _, holdW1 := range serverChoices {
			for _, releaseW0 := range []bool{false, true} {
				for _, releaseW1 := range []bool{false, true} {
					orders := []bool{false}
					if releaseW0 && releaseW1 {
						orders = []bool{false, true}
					}
					for _, releaseW1First := range orders {
						for _, delayRead := range serverChoices {
							s := exhaustSchedule{
								holdW0: holdW0, holdW1: holdW1,
								releaseW0: releaseW0, releaseW1: releaseW1,
								releaseW1First: releaseW1First,
								delayRead:      delayRead,
							}
							violated, err := runOneSchedule(ctx, kind, f, n, s)
							if err != nil {
								return nil, fmt.Errorf("runner: exhaustive %s schedule {%s}: %w", kind, s, err)
							}
							rep.Schedules++
							if violated {
								rep.Violations++
								if rep.FirstViolation == "" {
									rep.FirstViolation = s.String()
								}
							}
						}
					}
				}
			}
		}
	}
	return rep, nil
}

// runOneSchedule executes a single schedule and reports whether WS-Safety
// was violated.
func runOneSchedule(ctx context.Context, kind Kind, f, n int, s exhaustSchedule) (bool, error) {
	script := adversary.NewScript()
	env, err := NewEnv(n, script)
	if err != nil {
		return false, err
	}
	reg, hist, err := Build(kind, env.Fabric, 2, f)
	if err != nil {
		return false, err
	}
	w0, err := reg.Writer(0)
	if err != nil {
		return false, err
	}
	w1, err := reg.Writer(1)
	if err != nil {
		return false, err
	}

	// Phase 0: write v1 with at most one covering hold.
	consumed := [2]bool{}
	var mu sync.Mutex
	armHold := func(client types.ClientID, server, slot int) {
		script.SetApplyRule(func(ev fabric.TriggerEvent) bool {
			if ev.Client != client || int(ev.Server) != server || !adversary.IsMutating(ev.Inv) {
				return false
			}
			mu.Lock()
			defer mu.Unlock()
			if consumed[slot] {
				return false
			}
			consumed[slot] = true
			return true
		})
	}
	if s.holdW0 >= 0 {
		armHold(0, s.holdW0, 0)
	}
	if err := w0.Write(ctx, 101); err != nil {
		return false, fmt.Errorf("write 1: %w", err)
	}
	script.SetApplyRule(nil)

	// Phase 1: write v2 with at most one covering hold.
	if s.holdW1 >= 0 {
		armHold(1, s.holdW1, 1)
	}
	if err := w1.Write(ctx, 202); err != nil {
		return false, fmt.Errorf("write 2: %w", err)
	}
	script.SetApplyRule(nil)

	// Phase 2: releases, in the chosen order.
	release := func(client types.ClientID) {
		env.Fabric.ReleaseWhere(func(op fabric.PendingOp) bool {
			return op.Event.Client == client && op.Phase == fabric.PhaseApply
		})
	}
	if s.releaseW1First {
		if s.releaseW1 {
			release(1)
		}
		if s.releaseW0 {
			release(0)
		}
	} else {
		if s.releaseW0 {
			release(0)
		}
		if s.releaseW1 {
			release(1)
		}
	}

	// Phase 3: read with one server's responses to the reader delayed.
	if s.delayRead >= 0 {
		script.SetRespondRule(func(ev fabric.TriggerEvent) bool {
			return ev.Client >= emulation.ReaderIDBase && int(ev.Server) == s.delayRead
		})
	}
	if _, err := reg.NewReader().Read(ctx); err != nil {
		return false, fmt.Errorf("read: %w", err)
	}
	script.SetRespondRule(nil)

	return spec.CheckWSSafety(hist.Snapshot(), types.InitialValue) != nil, nil
}
