package runner

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baseobj"
	"repro/internal/emulation"
	"repro/internal/emulation/coded"
	"repro/internal/fabric"
	"repro/internal/seed"
	"repro/internal/types"
)

// TornGate is the torn-stripe adversary: armed against one writer, it lets
// exactly `allow` of that writer's fragment puts through and parks the
// rest (and any commit), leaving a partially-written stripe on the
// servers. With allow < kData the stripe is unreconstructible, so readers
// must fall back to the newest committed stripe — returning a mix would
// fail the payload verification and surface as a read error.
type TornGate struct {
	mu     sync.Mutex
	armed  bool
	client types.ClientID
	allow  int
	passed int
	held   int
}

// Compile-time interface compliance check.
var _ fabric.Gate = (*TornGate)(nil)

// Arm targets the gate at client's next write, letting allow fragment puts
// through.
func (g *TornGate) Arm(client types.ClientID, allow int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.armed = true
	g.client = client
	g.allow = allow
	g.passed = 0
}

// Disarm stops holding; already-held ops stay parked until released.
func (g *TornGate) Disarm() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.armed = false
}

// Held returns how many operations the gate parked.
func (g *TornGate) Held() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.held
}

// BeforeApply implements fabric.Gate.
func (g *TornGate) BeforeApply(ev fabric.TriggerEvent) fabric.Decision {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.armed || ev.Client != g.client {
		return fabric.Pass
	}
	switch ev.Inv.Op {
	case baseobj.OpPutFrag:
		if g.passed < g.allow {
			g.passed++
			return fabric.Pass
		}
		g.held++
		return fabric.Hold
	case baseobj.OpCommitFrag:
		g.held++
		return fabric.Hold
	default:
		return fabric.Pass
	}
}

// BeforeRespond implements fabric.Gate.
func (g *TornGate) BeforeRespond(fabric.TriggerEvent, baseobj.Response) fabric.Decision {
	return fabric.Pass
}

// TornConfig configures a torn-stripe run against the coded construction.
type TornConfig struct {
	// F and N shape the register (kData = n−2f).
	F, N int
	// AllowFrags is how many fragments of the attacked write land
	// (default kData−1, the maximal torn stripe).
	AllowFrags int
	// ValueSize is the payload size (default coded.DefaultValueSize).
	ValueSize int
	// Readers × ReadsPerReader concurrent reads run against the torn
	// stripe (defaults 3×4).
	Readers, ReadsPerReader int
	// Lane selects the dispatch backend (default LaneInProc); LaneMaker
	// overrides it with caller-dialed backends (the TCP suite).
	Lane Lane
	// LaneMaker, when set, overrides Lane (see ChaosConfig.LaneMaker).
	LaneMaker fabric.LaneMaker `json:"-"`
	// Seed drives the latency lane's delay distributions.
	Seed int64
}

// TornReport is the outcome of a torn-stripe run.
type TornReport struct {
	Cfg        TornConfig
	DataShards int
	// HeldOps is how many of the attacked write's ops the gate parked.
	HeldOps int
	// Reads is the number of reads raced against the torn stripe; every
	// one must have returned the last completed value.
	Reads int
	// WrongReads counts reads that returned anything else (0 on success).
	WrongReads int
	Checks     CheckResult
}

// RunTorn drives the torn-stripe attack: writer 0 completes a write, the
// gate tears writer 1's next write after AllowFrags fragments, concurrent
// readers must all return writer 0's value with zero errors (the torn
// stripe is unreconstructible and must be invisible), then the stragglers
// are released, the torn write completes late, and a final write/read pair
// proves the register moved on. The history must stay WS-Regular
// throughout.
func RunTorn(ctx context.Context, cfg TornConfig) (*TornReport, error) {
	if cfg.Readers == 0 {
		cfg.Readers = 3
	}
	if cfg.ReadsPerReader == 0 {
		cfg.ReadsPerReader = 4
	}
	var laneOpts []fabric.Option
	switch {
	case cfg.LaneMaker != nil:
		laneOpts = []fabric.Option{fabric.WithLanes(cfg.LaneMaker)}
	case cfg.Lane == LaneLatency:
		laneOpts = []fabric.Option{fabric.WithLanes(fabric.LatencyLanes(seed.Sub(cfg.Seed, chaosStreamLane), chaosLatencyProfile))}
	case cfg.Lane == LaneTCP:
		return nil, fmt.Errorf("runner: torn lane %q needs endpoints; dial the nodes and set LaneMaker", cfg.Lane)
	}
	gate := &TornGate{}
	env, err := NewEnv(cfg.N, gate, laneOpts...)
	if err != nil {
		return nil, err
	}
	defer env.Fabric.Close()
	regI, hist, err := BuildWith(KindCoded, env.Fabric, 2, cfg.F, BuildOpts{ValueSize: cfg.ValueSize})
	if err != nil {
		return nil, err
	}
	reg := regI.(*coded.Register)
	allow := cfg.AllowFrags
	if allow == 0 {
		allow = reg.DataShards() - 1
	}
	if allow >= reg.DataShards() {
		return nil, fmt.Errorf("runner: torn stripe needs allowed fragments < kData=%d, got %d (the stripe would reconstruct)", reg.DataShards(), allow)
	}
	rep := &TornReport{Cfg: cfg, DataShards: reg.DataShards()}

	// Phase 1: a completed write the readers must keep seeing.
	const stable, torn, final types.Value = 100, 200, 300
	w0, err := reg.Writer(0)
	if err != nil {
		return nil, err
	}
	if err := w0.Write(ctx, stable); err != nil {
		return nil, ctxErr(ctx, "torn stable write", err)
	}

	// Phase 2: tear writer 1's write after `allow` fragments. The put
	// round can never reach its n−f quorum (n−allow > f held), so the
	// write hangs exactly like a crashed writer's.
	gate.Arm(1, allow)
	w1, err := reg.Writer(1)
	if err != nil {
		return nil, err
	}
	var tornDone atomic.Bool
	tornErr := make(chan error, 1)
	w1.(emulation.AsyncWriter).StartWrite(torn, func(err error) {
		tornDone.Store(true)
		tornErr <- err
	})
	// Wait for the stripe to actually tear: all n puts reached the gate
	// (allow passed, the rest parked). On asynchronous lanes the put round
	// trails the collect round.
	for gate.Held() < cfg.N-allow {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("runner: torn stripe never formed (%d/%d held): %w", gate.Held(), cfg.N-allow, err)
		}
		time.Sleep(200 * time.Microsecond)
	}

	// Phase 3: concurrent readers against the torn stripe.
	var wg sync.WaitGroup
	var wrong, reads atomic.Int64
	readErrs := make(chan error, cfg.Readers)
	for r := 0; r < cfg.Readers; r++ {
		rd := reg.NewReader()
		wg.Add(1)
		go func(rd emulation.Reader) {
			defer wg.Done()
			for op := 0; op < cfg.ReadsPerReader; op++ {
				v, err := rd.Read(ctx)
				if err != nil {
					readErrs <- fmt.Errorf("read against torn stripe: %w", err)
					return
				}
				reads.Add(1)
				if v != stable {
					wrong.Add(1)
				}
			}
		}(rd)
	}
	wg.Wait()
	close(readErrs)
	for err := range readErrs {
		return nil, ctxErr(ctx, "torn read", err)
	}
	rep.Reads = int(reads.Load())
	rep.WrongReads = int(wrong.Load())
	rep.HeldOps = gate.Held()
	if tornDone.Load() {
		return nil, fmt.Errorf("runner: torn write completed with %d < %d fragments", allow, reg.DataShards())
	}

	// Phase 4: release the stragglers; the torn write completes late.
	gate.Disarm()
	env.Fabric.ReleaseWhere(func(fabric.PendingOp) bool { return true })
	select {
	case <-ctx.Done():
		return nil, fmt.Errorf("runner: released torn write never completed: %w", ctx.Err())
	case err := <-tornErr:
		if err != nil {
			return nil, fmt.Errorf("runner: released torn write: %w", err)
		}
	}

	// Phase 5: the register moves on.
	if err := w0.Write(ctx, final); err != nil {
		return nil, ctxErr(ctx, "torn final write", err)
	}
	rd := reg.NewReader()
	v, err := rd.Read(ctx)
	if err != nil {
		return nil, ctxErr(ctx, "torn final read", err)
	}
	if v != final {
		return nil, fmt.Errorf("runner: read after release = %d, want %d", v, final)
	}
	rep.Checks = Check(hist)
	return rep, nil
}
