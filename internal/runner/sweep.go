package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the parallel experiment engine: a worker pool that
// fans independent experiment jobs (exhaustive-search schedules, chaos
// seeds) across goroutines. PR 1 made fabrics cheap to build, so a bounded
// model-checking sweep is embarrassingly parallel: every job constructs its
// own cluster+fabric+emulation environment, and the only shared state is
// the job counter and the pre-sized result slice each worker writes at
// disjoint indices.

// DefaultWorkers resolves a worker-count option: values <= 0 mean one
// worker per available CPU.
func DefaultWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Sweep runs jobs 0..jobs-1 across a pool of workers goroutines and
// returns the per-job results indexed by job, plus the wall-clock time of
// the whole sweep. Each worker claims job indices off a shared atomic
// counter; run is called with the worker index (for per-worker state, if
// the caller wants any) and the job index, and must not retain shared
// mutable state across jobs — determinism of the sweep rests on jobs being
// independent. The first job error cancels the remaining jobs and is
// returned; results are only valid when the error is nil.
func Sweep[R any](ctx context.Context, workers, jobs int, run func(ctx context.Context, worker, job int) (R, error)) ([]R, time.Duration, error) {
	if jobs < 0 {
		return nil, 0, fmt.Errorf("runner: sweep needs jobs >= 0, got %d", jobs)
	}
	start := time.Now()
	workers = DefaultWorkers(workers)
	if workers > jobs {
		workers = jobs
	}
	results := make([]R, jobs)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				job := int(next.Add(1)) - 1
				if job >= jobs || ctx.Err() != nil {
					return
				}
				res, err := run(ctx, worker, job)
				if err != nil {
					fail(err)
					return
				}
				results[job] = res
			}
		}(w)
	}
	wg.Wait()
	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	return results, time.Since(start), firstErr
}
