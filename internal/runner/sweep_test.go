package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestSweepRunsEveryJobOnce: the pool must execute each job exactly once
// and land its result at the job's index, whatever the worker count.
func TestSweepRunsEveryJobOnce(t *testing.T) {
	const jobs = 137
	for _, workers := range []int{1, 3, 8} {
		var calls atomic.Int64
		results, _, err := Sweep(context.Background(), workers, jobs,
			func(_ context.Context, _, job int) (int, error) {
				calls.Add(1)
				return job * job, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if calls.Load() != jobs {
			t.Fatalf("workers=%d: %d calls, want %d", workers, calls.Load(), jobs)
		}
		for i, r := range results {
			if r != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
	}
}

// TestSweepPropagatesFirstError: a failing job must surface its error and
// stop the sweep early instead of grinding through the remaining jobs.
func TestSweepPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	_, _, err := Sweep(context.Background(), 4, 10_000,
		func(_ context.Context, _, job int) (struct{}, error) {
			calls.Add(1)
			if job == 5 {
				return struct{}{}, boom
			}
			return struct{}{}, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if calls.Load() == 10_000 {
		t.Fatal("sweep ran every job despite the error — cancellation is broken")
	}
}

// TestSweepHonorsContext: cancelling the parent context aborts the sweep.
func TestSweepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Sweep(ctx, 2, 100,
		func(ctx context.Context, _, _ int) (struct{}, error) {
			return struct{}{}, ctx.Err()
		})
	if err == nil {
		t.Fatal("cancelled sweep reported success")
	}
}

// TestSweepParallelMatchesSequential: the parallel exhaustive sweep must
// find exactly the violation set of the sequential one — same count, same
// schedule indices, same first violation — on the baseline whose schedules
// do violate. Run under -race, this is also the engine's isolation check:
// jobs share nothing but the counter and the result slice.
func TestSweepParallelMatchesSequential(t *testing.T) {
	ctx := testCtx(t)
	seq, err := RunExhaustiveOpts(ctx, KindNaive, ExhaustOptions{F: 1, Workers: 1})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	if seq.Violations == 0 {
		t.Fatal("sequential sweep found no violations — the parity check is vacuous")
	}
	par, err := RunExhaustiveOpts(ctx, KindNaive, ExhaustOptions{F: 1, Workers: 8})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if seq.Violations != par.Violations {
		t.Fatalf("violations: sequential %d, parallel %d", seq.Violations, par.Violations)
	}
	if !reflect.DeepEqual(seq.ViolationIndices, par.ViolationIndices) {
		t.Fatalf("violation sets differ:\nsequential: %v\nparallel:   %v",
			seq.ViolationIndices, par.ViolationIndices)
	}
	if seq.FirstViolation != par.FirstViolation {
		t.Fatalf("first violation: sequential {%s}, parallel {%s}", seq.FirstViolation, par.FirstViolation)
	}
}

// TestSweepWorkerIndexBounded: worker indices passed to jobs stay within
// the resolved pool size, so per-worker state arrays are safe.
func TestSweepWorkerIndexBounded(t *testing.T) {
	const workers, jobs = 5, 50
	var bad atomic.Int64
	_, _, err := Sweep(context.Background(), workers, jobs,
		func(_ context.Context, worker, _ int) (struct{}, error) {
			if worker < 0 || worker >= workers {
				bad.Add(1)
			}
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Load() != 0 {
		t.Fatalf("%d jobs saw an out-of-range worker index", bad.Load())
	}
}

// TestDefaultWorkers pins the option semantics: non-positive means one per
// CPU, positive passes through.
func TestDefaultWorkers(t *testing.T) {
	if got := DefaultWorkers(0); got < 1 {
		t.Fatalf("DefaultWorkers(0) = %d, want >= 1", got)
	}
	for _, w := range []int{1, 4, 9} {
		if got := DefaultWorkers(w); got != w {
			t.Fatalf("DefaultWorkers(%d) = %d", w, got)
		}
	}
}

// Example-shaped smoke test: the report fields used by cmd/sweep -json stay
// populated.
func TestExhaustReportFields(t *testing.T) {
	rep, err := RunExhaustiveOpts(testCtx(t), KindRegEmu, ExhaustOptions{F: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers != 2 || rep.F != 1 || rep.N != 3 || rep.Schedules != 208 || rep.Elapsed <= 0 {
		t.Fatalf("report fields off: %s", fmt.Sprintf("%+v", rep))
	}
}
