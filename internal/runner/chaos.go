package runner

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/adversary"
	"repro/internal/emulation"
	"repro/internal/types"
	"repro/internal/workload"
)

// ChaosConfig configures a randomized-environment run.
type ChaosConfig struct {
	Kind    Kind
	K, F, N int
	// Ops is the number of high-level operations (random writer writes
	// interleaved with reads, one at a time so the run stays
	// write-sequential).
	Ops int
	// Seed drives both the gate and the schedule.
	Seed int64
	// HoldProb is the per-op hold probability (default 0.5).
	HoldProb float64
	// ReleaseProb releases each held op with this probability between
	// high-level ops (default 0.3), so stale covering writes land late.
	ReleaseProb float64
}

// ChaosReport is the outcome of a chaos run.
type ChaosReport struct {
	Cfg      ChaosConfig
	Writes   int
	Reads    int
	Holds    int
	Releases int
	Checks   CheckResult
}

// RunChaos executes a write-sequential schedule under the seeded chaos
// environment: every mutating low-level op may be held (within the
// liveness budget), and held ops are randomly released between high-level
// operations — late stale writes included. Sound constructions must pass
// both write-sequential checkers for every seed.
func RunChaos(ctx context.Context, cfg ChaosConfig) (*ChaosReport, error) {
	if cfg.Ops <= 0 {
		return nil, fmt.Errorf("runner: chaos needs ops > 0")
	}
	holdProb := cfg.HoldProb
	if holdProb == 0 {
		holdProb = 0.5
	}
	releaseProb := cfg.ReleaseProb
	if releaseProb == 0 {
		releaseProb = 0.3
	}
	gate := adversary.NewChaos(cfg.Seed, holdProb, cfg.F)
	env, err := NewEnv(cfg.N, gate)
	if err != nil {
		return nil, err
	}
	reg, hist, err := Build(cfg.Kind, env.Fabric, cfg.K, cfg.F)
	if err != nil {
		return nil, err
	}

	schedule := rand.New(rand.NewSource(cfg.Seed + 1))
	values := workload.NewValueGen()
	readers := []emulation.Reader{reg.NewReader(), reg.NewReader()}
	rep := &ChaosReport{Cfg: cfg}
	for op := 0; op < cfg.Ops; op++ {
		if schedule.Float64() < 0.4 {
			rd := readers[schedule.Intn(len(readers))]
			if _, err := rd.Read(ctx); err != nil {
				return nil, ctxErr(ctx, fmt.Sprintf("chaos op %d read", op), err)
			}
			rep.Reads++
		} else {
			i := schedule.Intn(cfg.K)
			w, err := reg.Writer(i)
			if err != nil {
				return nil, err
			}
			if err := w.Write(ctx, values.Next(types.ClientID(i))); err != nil {
				return nil, ctxErr(ctx, fmt.Sprintf("chaos op %d write by %d", op, i), err)
			}
			rep.Writes++
		}
		rep.Releases += gate.ReleaseSome(env.Fabric, releaseProb)
	}
	rep.Holds = gate.Holds()
	rep.Checks = Check(hist)
	return rep, nil
}

// ChaosSweepReport aggregates a chaos sweep across consecutive seeds.
type ChaosSweepReport struct {
	Kind Kind
	// Seeds is the number of seeds run, starting at the config's Seed.
	Seeds int
	// Workers is the pool size the sweep ran with.
	Workers int
	// Violating counts seeds whose run failed a write-sequential check.
	Violating int
	// FirstViolatingSeed is the lowest violating seed, or -1 when none.
	FirstViolatingSeed int64
	// Writes, Reads, Holds, and Releases are summed across all seeds.
	Writes, Reads, Holds, Releases int
	// Elapsed is the sweep wall-clock time.
	Elapsed time.Duration
}

// RunChaosSweep fans RunChaos over seeds cfg.Seed .. cfg.Seed+seeds-1 on
// the Sweep engine: every seed is an independent job with its own
// environment, so the sweep is deterministic per seed and scales with the
// pool size.
func RunChaosSweep(ctx context.Context, cfg ChaosConfig, seeds, workers int) (*ChaosSweepReport, error) {
	if seeds < 0 {
		return nil, fmt.Errorf("runner: chaos sweep needs seeds >= 0, got %d", seeds)
	}
	workers = min(DefaultWorkers(workers), seeds)
	reports, elapsed, err := Sweep(ctx, workers, seeds,
		func(ctx context.Context, _, job int) (*ChaosReport, error) {
			c := cfg
			c.Seed = cfg.Seed + int64(job)
			return RunChaos(ctx, c)
		})
	if err != nil {
		return nil, err
	}
	rep := &ChaosSweepReport{
		Kind: cfg.Kind, Seeds: seeds, Workers: workers,
		FirstViolatingSeed: -1, Elapsed: elapsed,
	}
	for _, r := range reports {
		rep.Writes += r.Writes
		rep.Reads += r.Reads
		rep.Holds += r.Holds
		rep.Releases += r.Releases
		if !r.Checks.OK() {
			rep.Violating++
			if rep.FirstViolatingSeed == -1 {
				rep.FirstViolatingSeed = r.Cfg.Seed
			}
		}
	}
	return rep, nil
}
