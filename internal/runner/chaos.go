package runner

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/adversary"
	"repro/internal/emulation"
	"repro/internal/fabric"
	"repro/internal/seed"
	"repro/internal/spec"
	"repro/internal/types"
	"repro/internal/workload"
)

// Lane selects the fabric dispatch backend of a chaos run.
type Lane string

// The lane backends.
const (
	// LaneInProc is the default synchronous in-process lane.
	LaneInProc Lane = "inproc"
	// LaneLatency injects seeded per-op delay/jitter/straggler delivery
	// on every lane, composing real asynchrony with the chaos gate's
	// holds and releases.
	LaneLatency Lane = "latency"
	// LaneTCP dispatches over lanenet storage-node processes. Chaos runs
	// exercise it through ChaosConfig.LaneMaker (the caller dials the
	// nodes and hands the lanes in) because it needs endpoints; layers
	// that carry endpoints themselves (shardstore, loadgen) accept the
	// constant directly.
	LaneTCP Lane = "tcp"
)

// chaosLatencyProfile is the delay distribution of latency-lane chaos
// runs: enough jitter to reorder ops within a quorum round and an
// occasional straggler spike, small enough that a sweep stays fast.
var chaosLatencyProfile = fabric.LatencyProfile{
	Jitter:    150 * time.Microsecond,
	SpikeProb: 0.05,
	Spike:     500 * time.Microsecond,
}

// Sub-stream indexes of a chaos run's seed. Every generator derives its
// seed as seed.Sub(cfg.Seed, stream): deriving them as Seed, Seed+1, ...
// made adjacent sweep seeds share entire streams (seed s's schedule
// generator was seed s+1's gate generator), so neighbouring sweep jobs
// explored correlated behaviour.
const (
	chaosStreamGate = iota
	chaosStreamSchedule
	chaosStreamLane
	chaosStreamChurn
)

// ChaosServers returns the server count the chaos experiments provision
// for a construction: Algorithm 2 spreads registers over n > 2f servers
// (7 gives it headroom at f=2), while the 2f+1 constructions place on
// servers 0..2f exactly.
func ChaosServers(kind Kind) int {
	if kind == KindRegEmu {
		return 7
	}
	return 5
}

// ChaosConfig configures a randomized-environment run.
type ChaosConfig struct {
	Kind    Kind
	K, F, N int
	// Ops is the number of high-level operations (random writer writes
	// interleaved with reads, one at a time so the run stays
	// write-sequential).
	Ops int
	// Seed drives the gate, the schedule, and (for the latency lane) the
	// delay distributions, through independent sub-streams.
	Seed int64
	// HoldProb is the per-op hold probability (default 0.5).
	HoldProb float64
	// ReleaseProb releases each held op with this probability between
	// high-level ops (default 0.3), so stale covering writes land late.
	ReleaseProb float64
	// ChurnProb replaces one random live server between high-level ops
	// with this probability (default 0 — no churn): a full fabric.Replace
	// with state transfer, so the run additionally exercises view changes,
	// transparent retries, and coordinator drains of gate-held ops.
	ChurnProb float64
	// ResizeProb performs a random batched view transition between
	// high-level ops with this probability (default 0): a fabric.Resize
	// with a construction reshape — grow, shrink, or swap — so the run
	// exercises quorum-geometry re-derivation and frozen-window seeding.
	// Constructions without a reshape path (regemu) reject it.
	ResizeProb float64
	// TransitionCrashProb crashes one frozen server inside each resize
	// transition with this probability (within the fail-stop budget):
	// the sealed-but-not-activated window of E28. The crashed transition
	// aborts cleanly and the run continues on the restored old view.
	TransitionCrashProb float64
	// Lane selects the dispatch backend (default LaneInProc).
	Lane Lane
	// LaneMaker, when set, overrides Lane with caller-built backends —
	// the TCP chaos suite dials real storage nodes and hands their lanes
	// in here.
	LaneMaker fabric.LaneMaker `json:"-"`
}

// laneOptions resolves the config's lane selection into fabric options.
func (cfg ChaosConfig) laneOptions() ([]fabric.Option, error) {
	if cfg.LaneMaker != nil {
		return []fabric.Option{fabric.WithLanes(cfg.LaneMaker)}, nil
	}
	switch cfg.Lane {
	case "", LaneInProc:
		return nil, nil
	case LaneLatency:
		maker := fabric.LatencyLanes(seed.Sub(cfg.Seed, chaosStreamLane), chaosLatencyProfile)
		return []fabric.Option{fabric.WithLanes(maker)}, nil
	case LaneTCP:
		return nil, fmt.Errorf("runner: chaos lane %q needs endpoints; dial the nodes and set LaneMaker", cfg.Lane)
	default:
		return nil, fmt.Errorf("runner: unknown chaos lane %q", cfg.Lane)
	}
}

// ChaosReport is the outcome of a chaos run.
type ChaosReport struct {
	Cfg      ChaosConfig
	Writes   int
	Reads    int
	Holds    int
	Releases int
	// Replacements counts the live server replacements churn performed.
	Replacements int
	// Resizes counts committed batched transitions; ResizeAborts counts
	// transitions rolled back by an in-window crash (not errors — the old
	// view stayed active); TransitionCrashes counts the crashes the run
	// injected inside transitions (honest budget: each is a real crash).
	Resizes           int
	ResizeAborts      int
	TransitionCrashes int
	Checks            CheckResult
	// History is the recorded high-level history, for checks beyond the
	// write-sequential pair (the TCP chaos suite also runs the
	// linearizability checker over it).
	History *spec.History `json:"-"`
}

// RunChaos executes a write-sequential schedule under the seeded chaos
// environment: every mutating low-level op may be held (within the
// liveness budget), and held ops are randomly released between high-level
// operations — late stale writes included. On the latency lane the same
// schedule additionally faces seeded delivery delay, reordering, and
// stragglers. Sound constructions must pass both write-sequential checkers
// for every seed. The gate, schedule, and lane generators are independent
// sub-streams of cfg.Seed (see seed.Sub), so a sweep over adjacent seeds
// explores uncorrelated environments.
func RunChaos(ctx context.Context, cfg ChaosConfig) (*ChaosReport, error) {
	if cfg.Ops <= 0 {
		return nil, fmt.Errorf("runner: chaos needs ops > 0")
	}
	holdProb := cfg.HoldProb
	if holdProb == 0 {
		holdProb = 0.5
	}
	releaseProb := cfg.ReleaseProb
	if releaseProb == 0 {
		releaseProb = 0.3
	}
	laneOpts, err := cfg.laneOptions()
	if err != nil {
		return nil, err
	}
	gate := adversary.NewChaos(seed.Sub(cfg.Seed, chaosStreamGate), holdProb, cfg.F)
	env, err := NewEnv(cfg.N, gate, laneOpts...)
	if err != nil {
		return nil, err
	}
	defer env.Fabric.Close()
	reg, hist, err := Build(cfg.Kind, env.Fabric, cfg.K, cfg.F)
	if err != nil {
		return nil, err
	}

	schedule := rand.New(rand.NewSource(seed.Sub(cfg.Seed, chaosStreamSchedule)))
	churn := rand.New(rand.NewSource(seed.Sub(cfg.Seed, chaosStreamChurn)))
	var crasher *transitionCrasher
	if cfg.ResizeProb > 0 && cfg.TransitionCrashProb > 0 {
		crasher = &transitionCrasher{env: env, f: cfg.F, gate: gate}
		crasher.install()
	}
	values := workload.NewValueGen()
	readers := []emulation.Reader{reg.NewReader(), reg.NewReader()}
	rep := &ChaosReport{Cfg: cfg}
	for op := 0; op < cfg.Ops; op++ {
		if schedule.Float64() < 0.4 {
			rd := readers[schedule.Intn(len(readers))]
			if _, err := rd.Read(ctx); err != nil {
				return nil, ctxErr(ctx, fmt.Sprintf("chaos op %d read", op), err)
			}
			rep.Reads++
		} else {
			i := schedule.Intn(cfg.K)
			w, err := reg.Writer(i)
			if err != nil {
				return nil, err
			}
			if err := w.Write(ctx, values.Next(types.ClientID(i))); err != nil {
				return nil, ctxErr(ctx, fmt.Sprintf("chaos op %d write by %d", op, i), err)
			}
			rep.Writes++
		}
		rep.Releases += gate.ReleaseSome(env.Fabric, releaseProb)
		if cfg.ChurnProb > 0 && churn.Float64() < cfg.ChurnProb {
			replaced, err := churnReplace(ctx, env, churn)
			if err != nil {
				return nil, fmt.Errorf("chaos op %d churn: %w", op, err)
			}
			if replaced {
				rep.Replacements++
			}
		}
		if cfg.ResizeProb > 0 && churn.Float64() < cfg.ResizeProb {
			resized, aborted, err := churnResize(ctx, env, reg, churn, crasher, cfg.TransitionCrashProb)
			if err != nil {
				return nil, fmt.Errorf("chaos op %d resize: %w", op, err)
			}
			if resized {
				rep.Resizes++
			}
			if aborted {
				rep.ResizeAborts++
			}
		}
	}
	if crasher != nil {
		rep.TransitionCrashes = crasher.fired
	}
	rep.Holds = gate.Holds()
	rep.Checks = Check(hist)
	rep.History = hist
	return rep, nil
}

// churnReplace replaces one random live member of the current view with a
// fresh joiner via fabric.Replace (state transfer included), using the
// fabric's default lane maker for the joiner's backend. Crashed and
// already-departing members are not candidates; with none left the churn
// tick is a no-op.
func churnReplace(ctx context.Context, env *Env, rng *rand.Rand) (bool, error) {
	view := env.Cluster.View()
	var candidates []types.ServerID
	for _, id := range view.Members {
		srv, err := env.Cluster.Server(id)
		if err != nil || srv.Crashed() || srv.Departing() {
			continue
		}
		candidates = append(candidates, id)
	}
	if len(candidates) == 0 {
		return false, nil
	}
	victim := candidates[rng.Intn(len(candidates))]
	if _, err := env.Fabric.Replace(ctx, victim, nil); err != nil {
		return false, err
	}
	return true, nil
}

// ChaosSweepReport aggregates a chaos sweep across consecutive seeds.
type ChaosSweepReport struct {
	Kind Kind
	// Lane is the dispatch backend the sweep ran on.
	Lane Lane
	// Seeds is the number of seeds run, starting at the config's Seed.
	Seeds int
	// Workers is the pool size the sweep ran with.
	Workers int
	// Violating counts seeds whose run failed a write-sequential check.
	Violating int
	// FirstViolatingSeed is the lowest violating seed, or -1 when none.
	FirstViolatingSeed int64
	// Writes, Reads, Holds, Releases, and Replacements are summed across
	// all seeds.
	Writes, Reads, Holds, Releases, Replacements int
	// Resizes, ResizeAborts, and TransitionCrashes are summed across all
	// seeds (see ChaosReport).
	Resizes, ResizeAborts, TransitionCrashes int
	// Elapsed is the sweep wall-clock time.
	Elapsed time.Duration
}

// RunChaosSweep fans RunChaos over seeds cfg.Seed .. cfg.Seed+seeds-1 on
// the Sweep engine: every seed is an independent job with its own
// environment, so the sweep is deterministic per seed and scales with the
// pool size.
func RunChaosSweep(ctx context.Context, cfg ChaosConfig, seeds, workers int) (*ChaosSweepReport, error) {
	if seeds < 0 {
		return nil, fmt.Errorf("runner: chaos sweep needs seeds >= 0, got %d", seeds)
	}
	workers = min(DefaultWorkers(workers), seeds)
	reports, elapsed, err := Sweep(ctx, workers, seeds,
		func(ctx context.Context, _, job int) (*ChaosReport, error) {
			c := cfg
			c.Seed = cfg.Seed + int64(job)
			return RunChaos(ctx, c)
		})
	if err != nil {
		return nil, err
	}
	lane := cfg.Lane
	if lane == "" {
		lane = LaneInProc
	}
	rep := &ChaosSweepReport{
		Kind: cfg.Kind, Lane: lane, Seeds: seeds, Workers: workers,
		FirstViolatingSeed: -1, Elapsed: elapsed,
	}
	for _, r := range reports {
		rep.Writes += r.Writes
		rep.Reads += r.Reads
		rep.Holds += r.Holds
		rep.Releases += r.Releases
		rep.Replacements += r.Replacements
		rep.Resizes += r.Resizes
		rep.ResizeAborts += r.ResizeAborts
		rep.TransitionCrashes += r.TransitionCrashes
		if !r.Checks.OK() {
			rep.Violating++
			if rep.FirstViolatingSeed == -1 {
				rep.FirstViolatingSeed = r.Cfg.Seed
			}
		}
	}
	return rep, nil
}
