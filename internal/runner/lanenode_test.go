package runner

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/lanenet"
	"repro/internal/spec"
	"repro/internal/types"
)

// lanenodeBin builds cmd/lanenode once per test binary and returns its
// path. The TCP chaos suite runs against real node processes, so killing
// one is a genuine server crash.
var lanenodeBin = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "lanenode-bin")
	if err != nil {
		return "", err
	}
	exe := filepath.Join(dir, "lanenode")
	cmd := exec.Command("go", "build", "-o", exe, "repro/cmd/lanenode")
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("building lanenode: %v\n%s", err, out)
	}
	return exe, nil
})

// startLanenodes spawns n lanenode processes on ephemeral ports, parses
// their bound addresses, and registers cleanup kills. The returned
// commands let tests kill individual nodes mid-run.
func startLanenodes(t *testing.T, n int) ([]string, []*exec.Cmd) {
	t.Helper()
	exe, err := lanenodeBin()
	if err != nil {
		t.Skipf("cannot build lanenode in this environment: %v", err)
	}
	addrs := make([]string, n)
	cmds := make([]*exec.Cmd, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe, "-listen", "127.0.0.1:0")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting lanenode %d: %v", i, err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		})
		line, err := bufio.NewReader(stdout).ReadString('\n')
		if err != nil {
			t.Fatalf("lanenode %d banner: %v", i, err)
		}
		addr, ok := strings.CutPrefix(strings.TrimSpace(line), "listening ")
		if !ok {
			t.Fatalf("lanenode %d banner = %q", i, line)
		}
		addrs[i] = addr
		cmds[i] = cmd
	}
	return addrs, cmds
}

// TestTCPLaneChaosEndToEnd runs the chaos suite — seeded holds, random
// releases, write-sequential checkers — with every low-level operation
// travelling over TCP to real cmd/lanenode processes, then additionally
// demands the history linearizes (the chaos driver is sequential at the
// high level, so WS-correct runs must also linearize). One fresh set of
// node processes per run: object ids restart at zero per environment.
func TestTCPLaneChaosEndToEnd(t *testing.T) {
	ctx := testCtx(t)
	for _, kind := range []Kind{KindRegEmu, KindABDMax, KindCASMax} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			n := ChaosServers(kind)
			for seed := int64(0); seed < 2; seed++ {
				addrs, _ := startLanenodes(t, n)
				maker, _, err := lanenet.Lanes(addrs, 5*time.Second)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := RunChaos(ctx, ChaosConfig{
					Kind: kind, K: 3, F: 2, N: n, Ops: 15,
					Seed: seed, LaneMaker: maker,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !rep.Checks.OK() {
					t.Fatalf("seed %d: WS checks failed over TCP: %+v", seed, rep.Checks)
				}
				if err := spec.CheckLinearizable(rep.History.Snapshot(), types.InitialValue); err != nil {
					t.Fatalf("seed %d: history not linearizable over TCP: %v", seed, err)
				}
				if rep.Writes+rep.Reads != 15 {
					t.Fatalf("seed %d: ops = %d, want 15", seed, rep.Writes+rep.Reads)
				}
			}
		})
	}
}

// TestTCPLaneNodeKillIsCrash kills one node process mid-run: the fabric
// must absorb it as a server crash (f=2 tolerates it) and the remaining
// nodes must still serve every quorum; the checkers must keep holding.
func TestTCPLaneNodeKillIsCrash(t *testing.T) {
	ctx := testCtx(t)
	const n = 5
	addrs, cmds := startLanenodes(t, n)
	maker, _, err := lanenet.Lanes(addrs, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(n, nil, fabric.WithLanes(maker))
	if err != nil {
		t.Fatal(err)
	}
	defer env.Fabric.Close()
	reg, hist, err := Build(KindABDMax, env.Fabric, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := reg.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := w.Write(ctx, types.Value(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// Kill server 0's node process: its lane observes the broken
	// connection and crashes the server.
	if err := cmds[0].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for env.Cluster.Crashes() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("severed transport never crashed the server")
		}
		time.Sleep(time.Millisecond)
	}
	// Quorums (n-f = 3 of 5) still complete without server 0.
	for i := 6; i <= 10; i++ {
		if err := w.Write(ctx, types.Value(i)); err != nil {
			t.Fatalf("write %d after crash: %v", i, err)
		}
	}
	if v, err := reg.NewReader().Read(ctx); err != nil || v != 10 {
		t.Fatalf("read = %d, %v; want 10", v, err)
	}
	if c := Check(hist); !c.OK() {
		t.Fatalf("checks after node kill: %+v", c)
	}
}
