package runner

import (
	"testing"
)

// resizeSeeds is the pinned seed range of the resize chaos net
// (EXPERIMENTS.md E27 and E28 use the same range): within it every sound
// construction stays clean and the naive baseline is caught.
const resizeSeeds = 24

// resizableKinds are the constructions with a live reshape path; regemu has
// none and rejects resize with emulation.ErrResizeUnsupported (pinned by
// TestResizeUnsupportedKind).
var resizableKinds = []Kind{KindABDMax, KindCASMax, KindAACMax, KindCoded}

// TestResizeChurnSoundConstructionsStaySafe is the E27 net: between
// high-level ops, random batched view transitions fire — grows, shrinks,
// and swaps, each one epoch bump with the construction's reshape seeding
// the re-derived quorum geometry inside the frozen window — while the
// chaos gate's holds and stale releases keep landing. Sound constructions
// must stay WS-safe and WS-regular on every pinned seed, and the
// transitions must actually commit.
func TestResizeChurnSoundConstructionsStaySafe(t *testing.T) {
	ctx := testCtx(t)
	for _, kind := range resizableKinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			resizes := 0
			for seed := int64(0); seed < resizeSeeds; seed++ {
				cfg := ChaosConfig{
					Kind: kind, K: 3, F: 2, N: ChaosServers(kind),
					Ops: 25, Seed: seed, ResizeProb: 0.25,
				}
				rep, err := RunChaos(ctx, cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if rep.Checks.WSSafety != nil {
					t.Errorf("seed %d: WS-Safety: %v (resizes=%d)", seed, rep.Checks.WSSafety, rep.Resizes)
				}
				if rep.Checks.WSRegularity != nil {
					t.Errorf("seed %d: WS-Regularity: %v (resizes=%d)", seed, rep.Checks.WSRegularity, rep.Resizes)
				}
				resizes += rep.Resizes
			}
			if resizes == 0 {
				t.Error("resize churn never committed a transition — the net is vacuous")
			}
		})
	}
}

// TestResizeChurnStillCatchesNaive guards the net's teeth: batched
// transitions must not blunt the detection of the under-provisioned
// baseline — its reshape faithfully re-places one register per server, so
// the covering hole survives every resize. Over the pinned seed range the
// naive construction must violate at least once.
func TestResizeChurnStillCatchesNaive(t *testing.T) {
	ctx := testCtx(t)
	var violating []int64
	for seed := int64(0); seed < resizeSeeds; seed++ {
		rep, err := RunChaos(ctx, ChaosConfig{
			Kind: KindNaive, K: 3, F: 2, N: 5, Ops: 30, Seed: seed, ResizeProb: 0.25,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Checks.OK() {
			violating = append(violating, seed)
		}
	}
	if len(violating) == 0 {
		t.Fatalf("naive baseline survived all %d resize seeds — the net lost its teeth", resizeSeeds)
	}
	t.Logf("naive baseline violated WS conditions in %d/%d resize seeds: %v", len(violating), resizeSeeds, violating)
}

// TestResizeChurnDeterministicPerSeed: resize draws come from the same
// churn sub-stream of the run seed, so the whole run — schedule, holds,
// releases, transitions, and aborts — must replay identically.
func TestResizeChurnDeterministicPerSeed(t *testing.T) {
	ctx := testCtx(t)
	cfg := ChaosConfig{
		Kind: KindABDMax, K: 3, F: 2, N: 5, Ops: 30, Seed: 5, ResizeProb: 0.3,
	}
	a, err := RunChaos(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Writes != b.Writes || a.Reads != b.Reads || a.Resizes != b.Resizes || a.Holds != b.Holds {
		t.Fatalf("same seed diverged: %d/%d/%d/%d vs %d/%d/%d/%d (writes/reads/resizes/holds)",
			a.Writes, a.Reads, a.Resizes, a.Holds, b.Writes, b.Reads, b.Resizes, b.Holds)
	}
	if a.Resizes == 0 {
		t.Error("pinned seed produced no committed transitions")
	}
}

// TestTransitionCrashChaos is the E28 matrix: every resize transition may
// lose one frozen server inside the sealed-but-not-activated window — after
// the freeze, or as a transfer target mid-move — within the fail-stop
// budget (each crash also narrows the gate's hold budget, so crashes plus
// holds never starve a quorum round). Crashed transitions must abort
// cleanly back onto the old view, later transitions and client ops must
// keep completing, and the histories must stay clean on every pinned seed,
// on both the in-process and the latency lane.
func TestTransitionCrashChaos(t *testing.T) {
	ctx := testCtx(t)
	for _, lane := range []Lane{LaneInProc, LaneLatency} {
		lane := lane
		t.Run(string(lane), func(t *testing.T) {
			for _, kind := range resizableKinds {
				kind := kind
				t.Run(string(kind), func(t *testing.T) {
					resizes, aborts, crashes := 0, 0, 0
					for seed := int64(0); seed < resizeSeeds; seed++ {
						cfg := ChaosConfig{
							Kind: kind, K: 3, F: 2, N: ChaosServers(kind),
							Ops: 25, Seed: seed, Lane: lane,
							ResizeProb: 0.3, TransitionCrashProb: 0.5,
						}
						rep, err := RunChaos(ctx, cfg)
						if err != nil {
							t.Fatalf("seed %d: %v", seed, err)
						}
						if !rep.Checks.OK() {
							t.Errorf("seed %d: WS checks failed: safety=%v regularity=%v (crashes=%d aborts=%d)",
								seed, rep.Checks.WSSafety, rep.Checks.WSRegularity, rep.TransitionCrashes, rep.ResizeAborts)
						}
						resizes += rep.Resizes
						aborts += rep.ResizeAborts
						crashes += rep.TransitionCrashes
					}
					if crashes == 0 {
						t.Error("no transition ever lost a server — the matrix is vacuous")
					}
					if aborts == 0 {
						t.Error("no transition ever aborted — the crash window was never hit")
					}
					if resizes == 0 {
						t.Error("no transition ever committed — the net only measures aborts")
					}
					t.Logf("%s/%s: %d committed, %d aborted, %d transition crashes over %d seeds",
						lane, kind, resizes, aborts, crashes, resizeSeeds)
				})
			}
		})
	}
}
