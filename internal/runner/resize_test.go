package runner

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/emulation"
	"repro/internal/fabric"
	"repro/internal/lanenet"
	"repro/internal/seed"
	"repro/internal/spec"
	"repro/internal/types"
)

// TestResizeGrowShrinkUnderLoad is the issue's acceptance bar: a live
// n=5,f=1 → n=7,f=2 grow followed by a shrink back to n=5,f=1, each one
// batched epoch bump with a construction reshape, under open client
// traffic. Zero client operations may fail — ops caught in the frozen
// window retry transparently into the re-derived quorum geometry — and the
// history must stay clean.
func TestResizeGrowShrinkUnderLoad(t *testing.T) {
	for _, lane := range []Lane{LaneInProc, LaneLatency} {
		lane := lane
		t.Run(string(lane), func(t *testing.T) {
			ctx := testCtx(t)
			var opts []fabric.Option
			if lane == LaneLatency {
				opts = append(opts, fabric.WithLanes(fabric.LatencyLanes(37, fabric.LatencyProfile{Jitter: 100 * time.Microsecond})))
			}
			env, err := NewEnv(5, nil, opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer env.Fabric.Close()
			reg, hist, err := BuildWith(KindABDMax, env.Fabric, 2, 1, BuildOpts{Atomic: true})
			if err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			stop := make(chan struct{})
			errs := make(chan error, 4)
			var done atomic.Int64
			for i := 0; i < 2; i++ {
				w, err := reg.Writer(i)
				if err != nil {
					t.Fatal(err)
				}
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					for v := 1; ; v++ {
						select {
						case <-stop:
							return
						default:
						}
						if err := w.Write(ctx, types.Value(i*1_000_000+v)); err != nil {
							errs <- fmt.Errorf("writer %d: %w", i, err)
							return
						}
						done.Add(1)
					}
				}()
				rd := reg.NewReader()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if _, err := rd.Read(ctx); err != nil {
							errs <- fmt.Errorf("reader: %w", err)
							return
						}
						done.Add(1)
					}
				}()
			}
			// Let traffic establish, then grow mid-flight.
			waitOps(t, &done, 8)
			grow, err := ResizeRegister(ctx, env, reg, fabric.ResizeSpec{Join: []fabric.LaneMaker{nil, nil}, F: 2})
			if err != nil {
				t.Fatalf("grow: %v", err)
			}
			if len(grow.Joined) != 2 {
				t.Fatalf("grow joined %v, want 2 servers", grow.Joined)
			}
			if grow.Duration <= 0 {
				t.Fatal("grow reported no freeze window duration")
			}
			view := env.Cluster.View()
			if view.N() != 7 || view.F != 2 {
				t.Fatalf("after grow: n=%d f=%d, want n=7 f=2", view.N(), view.F)
			}
			if reg.F() != 2 {
				t.Fatalf("register F after grow = %d, want 2", reg.F())
			}
			// Traffic must flow against the new geometry before the shrink.
			mark := done.Load()
			waitOps(t, &done, mark+8)
			shrink, err := ResizeRegister(ctx, env, reg, fabric.ResizeSpec{Leave: view.Members[:2], F: 1})
			if err != nil {
				t.Fatalf("shrink: %v", err)
			}
			if shrink.Duration <= 0 {
				t.Fatal("shrink reported no freeze window duration")
			}
			view = env.Cluster.View()
			if view.N() != 5 || view.F != 1 {
				t.Fatalf("after shrink: n=%d f=%d, want n=5 f=1", view.N(), view.F)
			}
			mark = done.Load()
			waitOps(t, &done, mark+8)
			close(stop)
			wg.Wait()
			select {
			case err := <-errs:
				t.Fatalf("client op failed during resizing: %v", err)
			default:
			}
			// Both transitions were leaves and joins, never failures.
			if c := env.Cluster.Crashes(); c != 0 {
				t.Fatalf("Crashes = %d after clean transitions, want 0", c)
			}
			ops := hist.Snapshot()
			if err := spec.CheckReadValidity(ops, types.InitialValue); err != nil {
				t.Errorf("read validity: %v", err)
			}
			for chk := 0; chk < 4; chk++ {
				sample := spec.SampleLinearizable(ops, 1024, seed.Sub(41, uint64(chk)))
				if err := spec.CheckLinearizable(sample, types.InitialValue); err != nil {
					t.Errorf("linearizability sample %d: %v", chk, err)
				}
			}
		})
	}
}

// waitOps blocks until the op counter reaches target (traffic is live).
func waitOps(t *testing.T, done *atomic.Int64, target int64) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for done.Load() < target {
		if time.Now().After(deadline) {
			t.Fatalf("traffic stalled at %d ops, want %d", done.Load(), target)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestResizeUnsupportedKind: regemu's covering-proof placement has no
// reshape path; the resize is rejected before the view is disturbed.
func TestResizeUnsupportedKind(t *testing.T) {
	ctx := testCtx(t)
	env, err := NewEnv(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Fabric.Close()
	reg, _, err := Build(KindRegEmu, env.Fabric, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	epoch := env.Cluster.Epoch()
	_, err = ResizeRegister(ctx, env, reg, fabric.ResizeSpec{Join: []fabric.LaneMaker{nil}})
	if !errors.Is(err, emulation.ErrResizeUnsupported) {
		t.Fatalf("regemu resize returned %v, want ErrResizeUnsupported", err)
	}
	if env.Cluster.Epoch() != epoch {
		t.Fatal("rejected resize still disturbed the view")
	}
}

// TestResizeTransferWindowCrashTCP is the TCP leg of the transfer-window
// crash matrix: the joiner is crashed after an object's state is sealed
// and fetched over the wire but before MoveObject lands it. The abort must
// roll the seal back — the node-hosted state keeps serving from the old
// server, no op lost or doubly applied.
func TestResizeTransferWindowCrashTCP(t *testing.T) {
	ctx := testCtx(t)
	const n = 3
	addrs, _ := startLanenodes(t, n)
	maker, _, err := lanenet.Lanes(addrs, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(n, nil, fabric.WithLanes(maker))
	if err != nil {
		t.Fatal(err)
	}
	defer env.Fabric.Close()
	reg, hist, err := Build(KindABDMax, env.Fabric, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := reg.Writer(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := w.Write(ctx, types.Value(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	fired := false
	env.Fabric.HookTransition(nil, func(_ types.ObjectID, to types.ServerID) {
		if fired {
			return
		}
		fired = true
		if err := env.Fabric.Crash(to); err != nil {
			t.Errorf("crash of transfer target %d: %v", to, err)
		}
	})
	// The joiner dials its own connection into the node pool, bound to a
	// fresh table (the new session identity is the join).
	jc, err := lanenet.Dial(addrs[0], 5*time.Second, lanenet.WithTable("joiner"))
	if err != nil {
		t.Fatal(err)
	}
	jmaker := func(types.ServerID) fabric.Lane { return jc }
	_, err = env.Fabric.Resize(ctx, fabric.ResizeSpec{Join: []fabric.LaneMaker{jmaker}, Leave: []types.ServerID{0}}, nil)
	if !fabric.IsResizeAborted(err) {
		t.Fatalf("resize returned %v, want ErrResizeAborted", err)
	}
	if !fired {
		t.Fatal("beforeMove hook never fired")
	}
	if c := env.Cluster.Crashes(); c != 1 {
		t.Fatalf("Crashes = %d, want 1 (only the injected crash)", c)
	}
	// Server 0 returned to service with its node-hosted state intact.
	srv, err := env.Cluster.Server(0)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Departing() {
		t.Fatal("server 0 still departing after abort")
	}
	if v, err := reg.NewReader().Read(ctx); err != nil || v != 5 {
		t.Fatalf("read after abort = %d, %v; want 5", v, err)
	}
	for i := 6; i <= 8; i++ {
		if err := w.Write(ctx, types.Value(i)); err != nil {
			t.Fatalf("write %d after abort: %v", i, err)
		}
	}
	if v, err := reg.NewReader().Read(ctx); err != nil || v != 8 {
		t.Fatalf("read after post-abort writes = %d, %v; want 8", v, err)
	}
	if c := Check(hist); !c.OK() {
		t.Fatalf("checks after aborted TCP transfer: %+v", c)
	}
}
