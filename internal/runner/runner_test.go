package runner

import (
	"context"
	"testing"
	"time"

	"repro/internal/bounds"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestRunCoveringRegEmu(t *testing.T) {
	for _, tc := range []struct{ k, f, n int }{
		{3, 1, 3}, {4, 1, 4}, {5, 2, 6}, {2, 2, 5}, {6, 2, 8},
	} {
		rep, err := RunCovering(testCtx(t), KindRegEmu, tc.k, tc.f, tc.n)
		if err != nil {
			t.Fatalf("RunCovering(regemu, %+v): %v", tc, err)
		}
		// Lemma 1(a): at least f newly covered registers per write, k*f total.
		if rep.TotalCovered < rep.CoveringLowerBound {
			t.Errorf("%+v: covered %d < k*f = %d", tc, rep.TotalCovered, rep.CoveringLowerBound)
		}
		for i, wc := range rep.PerWrite {
			if wc.NewlyCovered < tc.f {
				t.Errorf("%+v: write %d newly covered %d < f=%d", tc, i, wc.NewlyCovered, tc.f)
			}
		}
		// Lemma 1(b): no covered register on the protected set F.
		if rep.CoveredOnF != 0 {
			t.Errorf("%+v: %d covered registers on F, want 0", tc, rep.CoveredOnF)
		}
		// The run must stay WS-Safe and WS-Regular despite the adversary.
		if !rep.Checks.OK() {
			t.Errorf("%+v: checks failed: safety=%v regularity=%v", tc, rep.Checks.WSSafety, rep.Checks.WSRegularity)
		}
		if rep.FinalRead != rep.LastWritten {
			t.Errorf("%+v: final read %d != last written %d", tc, rep.FinalRead, rep.LastWritten)
		}
	}
}

func TestRunCoveringMaxRegisterSaturates(t *testing.T) {
	// Max-register and CAS constructions do not accumulate covering with
	// k: the adversary saturates once every off-F base object is covered
	// (at most 2f of the 2f+1), and additional writers force nothing new.
	// This is the Table 1 separation seen from the covering side.
	const f, n = 2, 7
	for _, kind := range []Kind{KindABDMax, KindCASMax} {
		var prevCovered int
		for i, k := range []int{3, 9} {
			rep, err := RunCovering(testCtx(t), kind, k, f, n)
			if err != nil {
				t.Fatalf("RunCovering(%s, k=%d): %v", kind, k, err)
			}
			if rep.TotalCovered > 2*f {
				t.Errorf("%s k=%d: covered %d > 2f=%d", kind, k, rep.TotalCovered, 2*f)
			}
			if i > 0 && rep.TotalCovered != prevCovered {
				t.Errorf("%s: covered count depends on k (%d vs %d) — should saturate", kind, prevCovered, rep.TotalCovered)
			}
			prevCovered = rep.TotalCovered
			if !rep.Checks.OK() {
				t.Errorf("%s k=%d: checks failed: %+v", kind, k, rep.Checks)
			}
			if rep.Resources != bounds.MaxRegisterBound(f) {
				t.Errorf("%s k=%d: resources %d, want %d", kind, k, rep.Resources, bounds.MaxRegisterBound(f))
			}
		}
	}
}

func TestStaleReleaseSeparation(t *testing.T) {
	for _, f := range []int{1, 2, 3} {
		sep, err := RunSeparation(testCtx(t), f)
		if err != nil {
			t.Fatalf("RunSeparation(f=%d): %v", f, err)
		}
		for _, rep := range sep.Reports {
			switch rep.Kind {
			case KindNaive:
				if !rep.Violated() {
					t.Errorf("f=%d: naive baseline survived the attack (read %d, want stale)", f, rep.ReadValue)
				}
				if rep.ReadValue != rep.FirstValue {
					t.Errorf("f=%d: naive read %d, want stale %d", f, rep.ReadValue, rep.FirstValue)
				}
			default:
				if rep.Violated() {
					t.Errorf("f=%d: %s violated safety under the attack: %v", f, rep.Kind, rep.SafetyViolation)
				}
				if rep.ReadValue != rep.WantValue {
					t.Errorf("f=%d: %s read %d, want %d", f, rep.Kind, rep.ReadValue, rep.WantValue)
				}
			}
		}
	}
}

func TestMeasureTable1(t *testing.T) {
	rows, err := MeasureTable1(testCtx(t), 4, 2, 6)
	if err != nil {
		t.Fatalf("MeasureTable1: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, row := range rows {
		if !row.Safe {
			t.Errorf("row %s not safe", row.BaseObject)
		}
		if row.Measured < row.LowerFormula || row.Measured > row.UpperFormula {
			t.Errorf("row %s: measured %d outside [%d, %d]", row.BaseObject, row.Measured, row.LowerFormula, row.UpperFormula)
		}
	}
	// The register row must strictly exceed the max-register row for k > 1:
	// the separation of Table 1.
	if rows[2].Measured <= rows[0].Measured {
		t.Errorf("no separation: register row %d <= max-register row %d", rows[2].Measured, rows[0].Measured)
	}
}
