package runner

import (
	"sync"
	"testing"

	"repro/internal/types"
	"repro/internal/workload"
)

// TestReconfigureMidFlightAllKinds replaces every server of every
// construction — the five from the paper's Table 1 plus the naive baseline
// coverage — while a writer and two readers keep operating. The acceptance
// bar is zero failed client operations: every op caught in a freeze window
// must retry transparently into the new view, and the transferred state
// must keep the write-sequential checkers green for the sound kinds.
func TestReconfigureMidFlightAllKinds(t *testing.T) {
	for _, kind := range []Kind{KindRegEmu, KindABDMax, KindCASMax, KindAACMax, KindNaive} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			ctx := testCtx(t)
			env, err := NewEnv(ChaosServers(kind), nil)
			if err != nil {
				t.Fatal(err)
			}
			defer env.Fabric.Close()
			reg, hist, err := Build(kind, env.Fabric, 2, 2)
			if err != nil {
				t.Fatal(err)
			}

			// One writer keeps the history write-sequential; two readers
			// overlap it and each other freely.
			var wg sync.WaitGroup
			stop := make(chan struct{})
			errs := make(chan error, 3)
			w, err := reg.Writer(0)
			if err != nil {
				t.Fatal(err)
			}
			values := workload.NewValueGen()
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := w.Write(ctx, values.Next(types.ClientID(0))); err != nil {
						errs <- err
						return
					}
				}
			}()
			for r := 0; r < 2; r++ {
				rd := reg.NewReader()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if _, err := rd.Read(ctx); err != nil {
							errs <- err
							return
						}
					}
				}()
			}

			// Rolling replacement of every original server, mid-flight.
			for _, old := range env.Cluster.View().Members {
				if _, err := env.Fabric.Replace(ctx, old, nil); err != nil {
					t.Fatalf("Replace(%d): %v", old, err)
				}
			}
			close(stop)
			wg.Wait()
			select {
			case err := <-errs:
				t.Fatalf("client op failed during reconfiguration: %v", err)
			default:
			}

			n := ChaosServers(kind)
			for _, m := range env.Cluster.View().Members {
				if int(m) < n {
					t.Fatalf("original server %d still in view %v", m, env.Cluster.View().Members)
				}
			}
			if kind != KindNaive {
				if res := Check(hist); !res.OK() {
					t.Fatalf("post-reconfiguration history unsound: %+v", res)
				}
			}
		})
	}
}
