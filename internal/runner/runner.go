// Package runner assembles clusters, fabrics, gates, emulations, workloads,
// and checkers into the paper's experiments. Every table and figure of the
// paper has a driver here (see DESIGN.md's per-experiment index); cmd/sweep
// and the benchmark harness call these drivers and format their reports.
package runner

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/emulation"
	"repro/internal/emulation/aacmax"
	"repro/internal/emulation/abdmax"
	"repro/internal/emulation/casmax"
	"repro/internal/emulation/coded"
	"repro/internal/emulation/naiveabd"
	"repro/internal/emulation/regemu"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
)

// Kind selects an emulation construction.
type Kind string

// The six constructions.
const (
	KindRegEmu Kind = "regemu"  // Algorithm 2 over plain registers
	KindABDMax Kind = "abd-max" // ABD over per-server max-registers
	KindCASMax Kind = "abd-cas" // ABD over per-server single-CAS max-registers
	KindAACMax Kind = "aac-max" // ABD over per-server k-writer max-registers of k registers
	KindNaive  Kind = "naive"   // under-provisioned baseline (1 register/server)
	KindCoded  Kind = "coded"   // erasure-coded stripes over per-server fragment stores
)

// Kinds lists every construction.
func Kinds() []Kind {
	return []Kind{KindRegEmu, KindABDMax, KindCASMax, KindAACMax, KindNaive, KindCoded}
}

// BaseObjectOf names the base-object type a construction consumes (the
// "Base object" column of Table 1).
func BaseObjectOf(kind Kind) string {
	switch kind {
	case KindRegEmu, KindAACMax, KindNaive:
		return "register"
	case KindABDMax:
		return "max-register"
	case KindCASMax:
		return "cas"
	case KindCoded:
		return "frag-store"
	default:
		return "unknown"
	}
}

// Env is one experiment environment: a fresh cluster and fabric.
type Env struct {
	Cluster *cluster.Cluster
	Fabric  *fabric.Fabric
}

// NewEnv creates an n-server environment guarded by the given gate (nil for
// the benign environment). Extra fabric options (e.g. a tracer) are applied
// on top.
func NewEnv(n int, gate fabric.Gate, extra ...fabric.Option) (*Env, error) {
	c, err := cluster.New(n)
	if err != nil {
		return nil, err
	}
	var opts []fabric.Option
	if gate != nil {
		opts = append(opts, fabric.WithGate(gate))
	}
	opts = append(opts, extra...)
	return &Env{Cluster: c, Fabric: fabric.New(c, opts...)}, nil
}

// BuildOpts carry the cross-construction build knobs.
type BuildOpts struct {
	// ValueSize, when positive, makes writes carry payloads of that many
	// bytes (abd-max replicates them, coded stripes them); the other
	// constructions track timestamps only and ignore it.
	ValueSize int
	// Atomic upgrades reads to the linearizable protocol where supported
	// (abd-max, abd-cas, coded).
	Atomic bool
	// Servers optionally pins the hosting servers: the 2f+1 quorum
	// constructions place on the first 2f+1 of the list, coded on all of
	// them. Nil keeps each construction's default (servers 0..2f, or the
	// whole cluster). Layers that materialize registers after a view resize
	// pass the live member set here — the default IDs may have left.
	// Ignored by regemu, whose covering-proof placement is derived, not
	// pinned.
	Servers []types.ServerID
}

// quorumServers trims a pinned member list to the 2f+1 hosts a quorum
// construction places on; a list too short passes through so the
// construction reports the real error.
func (o BuildOpts) quorumServers(f int) []types.ServerID {
	if o.Servers == nil || len(o.Servers) < 2*f+1 {
		return o.Servers
	}
	return o.Servers[:2*f+1]
}

// Build constructs the chosen emulation on the environment's fabric, wiring
// a shared history for checking. The casmax retry metrics are discarded
// here; call casmax.New directly when they matter.
func Build(kind Kind, fab *fabric.Fabric, k, f int) (emulation.Register, *spec.History, error) {
	return BuildWith(kind, fab, k, f, BuildOpts{})
}

// BuildWith is Build with explicit knobs.
func BuildWith(kind Kind, fab *fabric.Fabric, k, f int, opts BuildOpts) (emulation.Register, *spec.History, error) {
	hist := &spec.History{}
	switch kind {
	case KindRegEmu:
		if opts.Atomic {
			return nil, nil, fmt.Errorf("runner: %q has no atomic read mode (readers cannot write)", kind)
		}
		reg, err := regemu.New(fab, k, f, regemu.Options{History: hist})
		return reg, hist, err
	case KindABDMax:
		reg, err := abdmax.New(fab, k, f, abdmax.Options{History: hist, ReadWriteBack: opts.Atomic, ValueSize: opts.ValueSize, Servers: opts.quorumServers(f)})
		return reg, hist, err
	case KindCASMax:
		reg, _, err := casmax.New(fab, k, f, casmax.Options{History: hist, ReadWriteBack: opts.Atomic, Servers: opts.quorumServers(f)})
		return reg, hist, err
	case KindAACMax:
		if opts.Atomic {
			return nil, nil, fmt.Errorf("runner: %q has no atomic read mode (readers cannot write)", kind)
		}
		reg, err := aacmax.New(fab, k, f, aacmax.Options{History: hist, Servers: opts.quorumServers(f)})
		return reg, hist, err
	case KindNaive:
		if opts.Atomic {
			return nil, nil, fmt.Errorf("runner: %q has no atomic read mode (readers cannot write)", kind)
		}
		reg, err := naiveabd.New(fab, k, f, naiveabd.Options{History: hist, Servers: opts.quorumServers(f)})
		return reg, hist, err
	case KindCoded:
		reg, err := coded.New(fab, k, f, coded.Options{History: hist, Atomic: opts.Atomic, ValueSize: opts.ValueSize, Servers: opts.Servers})
		return reg, hist, err
	default:
		return nil, nil, fmt.Errorf("runner: unknown emulation kind %q", kind)
	}
}

// CheckResult carries the outcome of the consistency checks on a history.
type CheckResult struct {
	// WSSafety and WSRegularity are nil when the condition holds.
	WSSafety     error
	WSRegularity error
}

// OK reports whether both conditions held.
func (c CheckResult) OK() bool { return c.WSSafety == nil && c.WSRegularity == nil }

// Check runs the write-sequential checkers over a history snapshot.
func Check(hist *spec.History) CheckResult {
	ops := hist.Snapshot()
	return CheckResult{
		WSSafety:     spec.CheckWSSafety(ops, 0),
		WSRegularity: spec.CheckWSRegularity(ops, 0),
	}
}

// ctxErr wraps a driver error with experiment context.
func ctxErr(ctx context.Context, stage string, err error) error {
	if err == nil {
		return nil
	}
	if ctx.Err() != nil {
		return fmt.Errorf("runner: %s: %w (experiment context: %v)", stage, err, ctx.Err())
	}
	return fmt.Errorf("runner: %s: %w", stage, err)
}
