package runner

import (
	"context"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/emulation"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
)

// AttackReport is the outcome of the stale-release attack (experiment E6),
// the operational core of the Theorem 1 separation: the run of Lemma 4 /
// Figure 2 in which a covering write, released after a newer write
// completed, erases it on a plain register but not on a max-register or
// CAS.
type AttackReport struct {
	Kind Kind
	F, N int
	// FirstValue/SecondValue are the two written values; ReadValue is
	// what the post-attack read returned and WantValue what WS-Safety
	// demands (the second value).
	FirstValue  types.Value
	SecondValue types.Value
	ReadValue   types.Value
	WantValue   types.Value
	// ReleasedOps is how many held covering writes were released between
	// the second write and the read.
	ReleasedOps int
	// SafetyViolation is the WS-Safety checker verdict: non-nil exactly
	// when the construction is broken by the attack.
	SafetyViolation error
}

// Violated reports whether the attack broke the construction.
func (r *AttackReport) Violated() bool { return r.SafetyViolation != nil }

// RunStaleReleaseAttack drives the adversarial schedule of Lemma 4 against
// the chosen construction on n = 2f+1 servers with k = 2 writers:
//
//  1. Writer 0 writes v1; its mutating op on server 0 is held before taking
//     effect. The write still completes from the other 2f servers.
//  2. Writer 1 writes v2; its mutating ops on servers 1..f are held. The
//     write completes from server 0 and servers f+1..2f (n-f responses).
//  3. The environment releases writer 0's held op: on a plain register it
//     NOW takes effect and erases v2 on server 0; on a max-register or CAS
//     it is a no-op because a larger value is present.
//  4. A reader runs; responses from servers f+1..2f (the only remaining
//     holders of v2 for the naive construction) are delayed, so its quorum
//     is servers 0..f.
//
// For KindNaive the read returns the stale v1 and WS-Safety is violated;
// for KindABDMax and KindCASMax the identical schedule is harmless.
func RunStaleReleaseAttack(ctx context.Context, kind Kind, f int) (*AttackReport, error) {
	switch kind {
	case KindNaive, KindABDMax, KindCASMax:
	default:
		return nil, fmt.Errorf("runner: stale-release attack targets per-server single-object constructions, not %q", kind)
	}
	n := 2*f + 1
	script := adversary.NewScript()
	env, err := NewEnv(n, script)
	if err != nil {
		return nil, err
	}
	reg, hist, err := Build(kind, env.Fabric, 2, f)
	if err != nil {
		return nil, err
	}
	w0, err := reg.Writer(0)
	if err != nil {
		return nil, err
	}
	w1, err := reg.Writer(1)
	if err != nil {
		return nil, err
	}
	const v1, v2 = types.Value(101), types.Value(202)

	// Step 1: hold writer 0's mutating op on server 0 before it applies.
	script.SetApplyRule(func(ev fabric.TriggerEvent) bool {
		return ev.Client == 0 && ev.Server == 0 && adversary.IsMutating(ev.Inv)
	})
	if err := w0.Write(ctx, v1); err != nil {
		return nil, ctxErr(ctx, "attack write 1", err)
	}

	// Step 2: hold writer 1's mutating ops on servers 1..f.
	script.SetApplyRule(func(ev fabric.TriggerEvent) bool {
		return ev.Client == 1 && int(ev.Server) >= 1 && int(ev.Server) <= f && adversary.IsMutating(ev.Inv)
	})
	if err := w1.Write(ctx, v2); err != nil {
		return nil, ctxErr(ctx, "attack write 2", err)
	}
	script.SetApplyRule(nil)

	// Step 3: release writer 0's covering write — it takes effect NOW.
	released := env.Fabric.ReleaseWhere(func(op fabric.PendingOp) bool {
		return op.Event.Client == 0 && op.Phase == fabric.PhaseApply
	})

	// Step 4: delay read responses from servers f+1..2f so the reader's
	// quorum is exactly servers 0..f.
	script.SetRespondRule(func(ev fabric.TriggerEvent) bool {
		return ev.Client >= emulation.ReaderIDBase && int(ev.Server) > f
	})
	got, err := reg.NewReader().Read(ctx)
	if err != nil {
		return nil, ctxErr(ctx, "attack read", err)
	}
	script.SetRespondRule(nil)

	return &AttackReport{
		Kind:            kind,
		F:               f,
		N:               n,
		FirstValue:      v1,
		SecondValue:     v2,
		ReadValue:       got,
		WantValue:       v2,
		ReleasedOps:     released,
		SafetyViolation: spec.CheckWSSafety(hist.Snapshot(), types.InitialValue),
	}, nil
}

// SeparationReport contrasts the attack outcome across constructions
// (experiment E6): under the identical adversarial schedule, only the
// under-provisioned register construction fails.
type SeparationReport struct {
	F       int
	Reports []*AttackReport
}

// RunSeparation runs the stale-release attack against the naive register
// baseline, the max-register construction, and the CAS construction.
func RunSeparation(ctx context.Context, f int) (*SeparationReport, error) {
	rep := &SeparationReport{F: f}
	for _, kind := range []Kind{KindNaive, KindABDMax, KindCASMax} {
		r, err := RunStaleReleaseAttack(ctx, kind, f)
		if err != nil {
			return nil, fmt.Errorf("runner: separation attack on %s: %w", kind, err)
		}
		rep.Reports = append(rep.Reports, r)
	}
	return rep, nil
}
