package runner

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/emulation"
	"repro/internal/fabric"
	"repro/internal/types"
)

// ResizeRegister drives a batched view transition that also re-places the
// register's base objects: the fabric freezes every old member, the
// register's Reshape seeds the new placement inside the frozen window, and
// the new view (with its re-derived quorum thresholds) activates under one
// epoch bump. Constructions without a reshape path (regemu) are rejected
// with emulation.ErrResizeUnsupported before anything is disturbed.
func ResizeRegister(ctx context.Context, env *Env, reg emulation.Register, spec fabric.ResizeSpec) (*fabric.ResizeResult, error) {
	vr, ok := reg.(emulation.ViewResizable)
	if !ok {
		return nil, fmt.Errorf("runner: %s: %w", reg.Name(), emulation.ErrResizeUnsupported)
	}
	return env.Fabric.Resize(ctx, spec, func(rs *fabric.Reshaper) error { return vr.Reshape(rs) })
}

// churnResize performs one random batched transition on a live run: a
// member swap (join one, leave one), a grow by one, or — when the view has
// slack above 2f+1 — a shrink by one, each with a construction reshape so
// the quorum geometry genuinely re-derives. The failure budget f is left
// unchanged; explicit f changes are exercised by the dedicated
// resize-under-load tests. An aborted transition (a concurrent crash won
// the race) is not an error: the old view stayed active and the run
// continues.
func churnResize(ctx context.Context, env *Env, reg emulation.Register, rng *rand.Rand, tc *transitionCrasher, crashProb float64) (done, aborted bool, err error) {
	view := env.Cluster.View()
	var candidates []types.ServerID
	for _, id := range view.Members {
		srv, err := env.Cluster.Server(id)
		if err != nil || srv.Crashed() || srv.Departing() {
			continue
		}
		candidates = append(candidates, id)
	}
	if len(candidates) == 0 {
		return false, false, nil
	}
	var spec fabric.ResizeSpec
	switch choice := rng.Intn(3); {
	case choice == 0:
		spec.Join = []fabric.LaneMaker{nil}
		spec.Leave = []types.ServerID{candidates[rng.Intn(len(candidates))]}
	case choice == 1:
		spec.Join = []fabric.LaneMaker{nil}
	default:
		if len(candidates) <= 2*view.F+1 {
			return false, false, nil // no slack: a shrink would starve the quorums
		}
		spec.Leave = []types.ServerID{candidates[rng.Intn(len(candidates))]}
	}
	if tc != nil && rng.Float64() < crashProb {
		// Prefer crashing the leaver — the mid-drain no-escape regression —
		// else any frozen member of the reshaping transition.
		victim := candidates[rng.Intn(len(candidates))]
		if len(spec.Leave) > 0 {
			victim = spec.Leave[0]
		}
		tc.arm(victim)
		defer tc.disarm()
	}
	if _, err := ResizeRegister(ctx, env, reg, spec); err != nil {
		if fabric.IsResizeAborted(err) {
			return false, true, nil
		}
		return false, false, err
	}
	return true, false, nil
}

// transitionCrasher arms the fabric's transition hooks to crash one frozen
// server (or a transfer target) inside the sealed-but-not-activated window,
// within the fail-stop budget. It is armed per transition by the chaos
// loop — the loop is synchronous, so the hook draws race nothing — and
// disarms itself after firing once.
type transitionCrasher struct {
	env *Env
	f   int
	// gate, when set, has its hold budget narrowed by one per crash: the
	// crash and the holds draw on the same fail-stop allowance of f, so
	// together they never leave a quorum round short of its n-f threshold.
	gate   *adversary.Chaos
	armed  bool
	victim types.ServerID
	fired  int
}

// install wires the hooks once, before any transition starts (the hook
// fields are read unsynchronized).
func (tc *transitionCrasher) install() {
	tc.env.Fabric.HookTransition(
		func() { tc.fire(tc.victim) },
		func(_ types.ObjectID, to types.ServerID) { tc.fire(to) },
	)
}

// arm chooses the victim for the next transition: the hooks stay inert
// when not armed, so un-crashed transitions pay nothing.
func (tc *transitionCrasher) arm(victim types.ServerID) {
	tc.armed = true
	tc.victim = victim
}

func (tc *transitionCrasher) disarm() { tc.armed = false }

func (tc *transitionCrasher) fire(victim types.ServerID) {
	if !tc.armed {
		return
	}
	if tc.env.Cluster.Crashes() >= tc.f {
		return // the fail-stop budget is spent; stay within the model
	}
	tc.armed = false
	if err := tc.env.Fabric.Crash(victim); err == nil {
		tc.fired++
		if tc.gate != nil {
			tc.gate.Narrow(1)
		}
	}
}
