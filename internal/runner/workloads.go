package runner

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/emulation"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/spec"
	"repro/internal/types"
	"repro/internal/workload"
)

// BuildAtomic builds the max-register, CAS, or coded construction with read
// write-back enabled, upgrading reads to the atomic (linearizable)
// protocol. Other kinds do not support atomic reads (their readers cannot
// write), mirroring the paper's focus on regularity.
func BuildAtomic(kind Kind, fab *fabric.Fabric, k, f int) (emulation.Register, *spec.History, error) {
	switch kind {
	case KindABDMax, KindCASMax, KindCoded:
		return BuildWith(kind, fab, k, f, BuildOpts{Atomic: true})
	default:
		return nil, nil, fmt.Errorf("runner: %q has no atomic read mode (readers cannot write)", kind)
	}
}

// WorkloadReport is the outcome of a scripted workload run.
type WorkloadReport struct {
	Kind    Kind
	K, F, N int
	Writes  int
	Reads   int
	Crashes int
	Checks  CheckResult
}

// RunSequential executes a step schedule one operation at a time (so the
// run is trivially write-sequential), injecting crashes from the optional
// plan, and checks the history.
func RunSequential(ctx context.Context, kind Kind, k, f, n int, steps []workload.Step, crashes *faults.Plan) (*WorkloadReport, error) {
	env, err := NewEnv(n, nil)
	if err != nil {
		return nil, err
	}
	reg, hist, err := Build(kind, env.Fabric, k, f)
	if err != nil {
		return nil, err
	}
	if crashes != nil {
		if err := crashes.Validate(f, n); err != nil {
			return nil, err
		}
	}
	values := workload.NewValueGen()
	readers := make(map[int]emulation.Reader)
	rep := &WorkloadReport{Kind: kind, K: k, F: f, N: n}
	for i, step := range steps {
		if crashes != nil {
			if _, err := crashes.Step(env.Fabric, i); err != nil {
				return nil, err
			}
		}
		if step.IsRead {
			rd, ok := readers[step.Client]
			if !ok {
				rd = reg.NewReader()
				readers[step.Client] = rd
			}
			if _, err := rd.Read(ctx); err != nil {
				return nil, ctxErr(ctx, fmt.Sprintf("sequential step %d read", i), err)
			}
			rep.Reads++
		} else {
			w, err := reg.Writer(step.Client)
			if err != nil {
				return nil, err
			}
			if err := w.Write(ctx, values.Next(types.ClientID(step.Client))); err != nil {
				return nil, ctxErr(ctx, fmt.Sprintf("sequential step %d write", i), err)
			}
			rep.Writes++
		}
	}
	rep.Crashes = env.Cluster.Crashes()
	rep.Checks = Check(hist)
	return rep, nil
}

// ConcurrentReport is the outcome of a concurrent stress run.
type ConcurrentReport struct {
	Kind    Kind
	K, F, N int
	Writes  int
	Reads   int
	// ReadValidity is nil when every read returned v0 or a written
	// value (the sanity condition that holds for every construction even
	// in write-concurrent runs).
	ReadValidity error
	// Linearizable is the atomicity verdict; it is only populated when
	// requested (atomic constructions, small histories) and nil
	// otherwise.
	Linearizable error
	// LinearizabilityChecked reports whether Linearizable is meaningful.
	LinearizabilityChecked bool
}

// ConcurrentConfig configures a concurrent stress run.
type ConcurrentConfig struct {
	Kind            Kind
	K, F, N         int
	WritesPerWriter int
	Readers         int
	ReadsPerReader  int
	// Atomic builds the construction with read write-back and checks
	// linearizability (only KindABDMax / KindCASMax).
	Atomic bool
}

// RunConcurrent runs every writer and reader in its own goroutine against a
// benign environment and checks the resulting history.
func RunConcurrent(ctx context.Context, cfg ConcurrentConfig) (*ConcurrentReport, error) {
	env, err := NewEnv(cfg.N, nil)
	if err != nil {
		return nil, err
	}
	var (
		reg  emulation.Register
		hist *spec.History
	)
	if cfg.Atomic {
		reg, hist, err = BuildAtomic(cfg.Kind, env.Fabric, cfg.K, cfg.F)
	} else {
		reg, hist, err = Build(cfg.Kind, env.Fabric, cfg.K, cfg.F)
	}
	if err != nil {
		return nil, err
	}
	values := workload.NewValueGen()

	var wg sync.WaitGroup
	errs := make(chan error, cfg.K+cfg.Readers)
	for i := 0; i < cfg.K; i++ {
		w, err := reg.Writer(i)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(i int, w emulation.Writer) {
			defer wg.Done()
			for op := 0; op < cfg.WritesPerWriter; op++ {
				if err := w.Write(ctx, values.Next(types.ClientID(i))); err != nil {
					errs <- fmt.Errorf("writer %d op %d: %w", i, op, err)
					return
				}
			}
		}(i, w)
	}
	for r := 0; r < cfg.Readers; r++ {
		rd := reg.NewReader()
		wg.Add(1)
		go func(r int, rd emulation.Reader) {
			defer wg.Done()
			for op := 0; op < cfg.ReadsPerReader; op++ {
				if _, err := rd.Read(ctx); err != nil {
					errs <- fmt.Errorf("reader %d op %d: %w", r, op, err)
					return
				}
			}
		}(r, rd)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, ctxErr(ctx, "concurrent run", err)
	}

	ops := hist.Snapshot()
	rep := &ConcurrentReport{
		Kind:         cfg.Kind,
		K:            cfg.K,
		F:            cfg.F,
		N:            cfg.N,
		Writes:       cfg.K * cfg.WritesPerWriter,
		Reads:        cfg.Readers * cfg.ReadsPerReader,
		ReadValidity: spec.CheckReadValidity(ops, types.InitialValue),
	}
	if cfg.Atomic && len(ops) <= 64 {
		rep.Linearizable = spec.CheckLinearizable(ops, types.InitialValue)
		rep.LinearizabilityChecked = true
	}
	return rep, nil
}
