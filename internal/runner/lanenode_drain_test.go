package runner

import (
	"bufio"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/baseobj"
	"repro/internal/fabric"
	"repro/internal/lanenet"
	"repro/internal/types"
)

// startDrainableNode spawns one lanenode whose stdout stays readable, so
// the test can observe the drain banner lines after the listening banner.
func startDrainableNode(t *testing.T) (string, *exec.Cmd, *bufio.Reader) {
	t.Helper()
	exe, err := lanenodeBin()
	if err != nil {
		t.Skipf("cannot build lanenode in this environment: %v", err)
	}
	cmd := exec.Command(exe, "-listen", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	r := bufio.NewReader(stdout)
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("banner: %v", err)
	}
	addr, ok := strings.CutPrefix(strings.TrimSpace(line), "listening ")
	if !ok {
		t.Fatalf("banner = %q", line)
	}
	return addr, cmd, r
}

// nodeWrite delivers one write to a node and reports whether it succeeded.
func nodeWrite(t *testing.T, addr string) error {
	t.Helper()
	c, err := lanenet.Dial(addr, time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	c.MirrorObject(baseobj.NewMaxRegister(1))
	done := make(chan error, 1)
	c.Deliver(fabric.TriggerEvent{
		Token: 1, Client: 0, Object: 1, Server: 0,
		Inv: baseobj.Invocation{Op: baseobj.OpWriteMax, Arg: types.TSValue{TS: 1, Val: 4}},
	}, nil, func(_ baseobj.Response, err error) { done <- err })
	select {
	case err := <-done:
		return err
	case <-time.After(5 * time.Second):
		t.Fatal("node write never completed")
		return nil
	}
}

// TestLanenodeGracefulDrainVsKill pins the process-level contract that
// lets harnesses distinguish a clean leave from a crash: SIGTERM makes the
// node print "draining"/"drained" and exit 0, while SIGKILL exits non-zero
// with no drain banner — the paper's server crash.
func TestLanenodeGracefulDrainVsKill(t *testing.T) {
	addr, cmd, out := startDrainableNode(t)
	if err := nodeWrite(t, addr); err != nil {
		t.Fatalf("write before drain: %v", err)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	line, err := out.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "draining") {
		t.Fatalf("after SIGTERM read %q, %v; want a draining banner", line, err)
	}
	line, err = out.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "drained" {
		t.Fatalf("after drain read %q, %v; want \"drained\"", line, err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("drained node exited uncleanly: %v", err)
	}
	if err := nodeWrite(t, addr); err == nil {
		t.Fatal("write succeeded against a drained node")
	}

	// The contrast: a killed node is a crash, not a leave.
	addr, cmd, _ = startDrainableNode(t)
	if err := nodeWrite(t, addr); err != nil {
		t.Fatalf("write before kill: %v", err)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err == nil {
		t.Fatal("killed node exited cleanly")
	}
}
