package runner

import (
	"context"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/bounds"
	"repro/internal/fabric"
	"repro/internal/types"
	"repro/internal/workload"
)

// CoveringReport is the outcome of the Lemma 1 covering experiment
// (Figure 2, experiments E1/E2/E3/E5/E10): k sequential writers run under
// the Ad_i-style adversary, which holds up to f low-level writes per
// high-level write off a protected server set F of size f+1.
type CoveringReport struct {
	Kind    Kind
	K, F, N int

	// Resources is the construction's placed base-object count.
	Resources int
	// UsedObjects is the paper's resource consumption of the run: the
	// number of distinct base objects the run triggered operations on.
	UsedObjects int
	// PerWrite records the covering growth per completed write.
	PerWrite []adversary.WriteCover
	// TotalCovered is |Cov(t_k)| at the end of the run.
	TotalCovered int
	// CoveredOnF counts covered registers on the protected set F; the
	// adversary guarantees 0 (Lemma 1(b)).
	CoveredOnF int
	// CoveringLowerBound is Lemma 1(a)'s k*f.
	CoveringLowerBound int
	// PointContention of the run (always 1: the run is sequential).
	PointContention int
	// FinalRead is the value the post-run read returned; it must equal
	// the last written value for the run to be WS-Safe.
	FinalRead   types.Value
	LastWritten types.Value
	// Checks holds the WS-Safety / WS-Regularity verdicts.
	Checks CheckResult
}

// CoveringOptions are optional knobs for RunCoveringOpts.
type CoveringOptions struct {
	// Tracer, when set, observes every low-level event of the run (used
	// by cmd/covering -trace to render Figure 2 style timelines).
	Tracer fabric.Tracer
}

// RunCovering executes the covering experiment for one construction. All
// constructions stay safe under pure covering (no releases); the point is
// the covered-register count: register-based constructions accumulate ~f
// newly covered registers per write (forcing the Theorem 1 space), while
// max-register/CAS constructions saturate at a k-independent count.
func RunCovering(ctx context.Context, kind Kind, k, f, n int) (*CoveringReport, error) {
	return RunCoveringOpts(ctx, kind, k, f, n, CoveringOptions{})
}

// RunCoveringOpts is RunCovering with options.
func RunCoveringOpts(ctx context.Context, kind Kind, k, f, n int, copts CoveringOptions) (*CoveringReport, error) {
	if err := bounds.Validate(k, f, n); err != nil {
		return nil, err
	}
	// F = the last f+1 servers, fixed before the run as in Lemma 1.
	protected := make([]types.ServerID, 0, f+1)
	for s := n - f - 1; s < n; s++ {
		protected = append(protected, types.ServerID(s))
	}
	adv := adversary.NewCovering(protected, f)
	var extra []fabric.Option
	if copts.Tracer != nil {
		extra = append(extra, fabric.WithTracer(copts.Tracer))
	}
	env, err := NewEnv(n, adv, extra...)
	if err != nil {
		return nil, err
	}
	reg, hist, err := Build(kind, env.Fabric, k, f)
	if err != nil {
		return nil, err
	}

	values := workload.NewValueGen()
	var last types.Value
	for i := 0; i < k; i++ {
		w, err := reg.Writer(i)
		if err != nil {
			return nil, err
		}
		v := values.Next(types.ClientID(i))
		adv.BeginWrite(types.ClientID(i))
		err = w.Write(ctx, v)
		adv.EndWrite()
		if err != nil {
			return nil, ctxErr(ctx, fmt.Sprintf("covering write %d", i), err)
		}
		last = v
	}

	final, err := reg.NewReader().Read(ctx)
	if err != nil {
		return nil, ctxErr(ctx, "covering final read", err)
	}

	covered := env.Fabric.CoveredObjects()
	onF := 0
	protectedSet := make(map[types.ServerID]struct{}, len(protected))
	for _, s := range protected {
		protectedSet[s] = struct{}{}
	}
	for _, obj := range covered {
		server, err := env.Cluster.Delta(obj)
		if err != nil {
			return nil, err
		}
		if _, bad := protectedSet[server]; bad {
			onF++
		}
	}

	return &CoveringReport{
		Kind:               kind,
		K:                  k,
		F:                  f,
		N:                  n,
		Resources:          reg.ResourceComplexity(),
		UsedObjects:        len(env.Fabric.UsedObjects()),
		PerWrite:           adv.PerWrite(),
		TotalCovered:       len(covered),
		CoveredOnF:         onF,
		CoveringLowerBound: bounds.CoveredLower(k, f),
		PointContention:    1,
		FinalRead:          final,
		LastWritten:        last,
		Checks:             Check(hist),
	}, nil
}

// Table1Row is one measured row of Table 1: the formula bounds next to the
// resources a real construction placed and the safety verdict of its
// adversarial run.
type Table1Row struct {
	BaseObject string
	Kind       Kind
	K, F, N    int
	// LowerFormula / UpperFormula are the paper's bounds.
	LowerFormula int
	UpperFormula int
	// Measured is the construction's placed base-object count; the shape
	// claim is Lower <= Measured <= Upper (with equality for the
	// max-register and CAS rows).
	Measured int
	// TotalCovered is the covered-register count after the adversarial
	// run, showing the mechanism behind the separation.
	TotalCovered int
	// Safe reports whether the adversarial run passed both checks.
	Safe bool
}

// MeasureTable1 reproduces Table 1 at concrete (k, f, n): each base-object
// row is measured by running its construction under the covering adversary.
func MeasureTable1(ctx context.Context, k, f, n int) ([]Table1Row, error) {
	regLower, err := bounds.RegisterLower(k, f, n)
	if err != nil {
		return nil, err
	}
	regUpper, err := bounds.RegisterUpper(k, f, n)
	if err != nil {
		return nil, err
	}
	rows := []struct {
		kind  Kind
		lower int
		upper int
	}{
		{KindABDMax, bounds.MaxRegisterBound(f), bounds.MaxRegisterBound(f)},
		{KindCASMax, bounds.CASBound(f), bounds.CASBound(f)},
		{KindRegEmu, regLower, regUpper},
	}
	out := make([]Table1Row, 0, len(rows))
	for _, row := range rows {
		rep, err := RunCovering(ctx, row.kind, k, f, n)
		if err != nil {
			return nil, fmt.Errorf("runner: table1 row %s: %w", row.kind, err)
		}
		out = append(out, Table1Row{
			BaseObject:   BaseObjectOf(row.kind),
			Kind:         row.kind,
			K:            k,
			F:            f,
			N:            n,
			LowerFormula: row.lower,
			UpperFormula: row.upper,
			Measured:     rep.Resources,
			TotalCovered: rep.TotalCovered,
			Safe:         rep.Checks.OK() && rep.FinalRead == rep.LastWritten,
		})
	}
	return out, nil
}
