package runner

import (
	"testing"
	"time"

	"repro/internal/lanenet"
)

// tornAssert runs one torn-stripe attack and checks the invariants every
// lane must uphold: zero wrong reads (the torn stripe is invisible), the
// expected number of parked ops, and a WS-Regular history after the
// stragglers land.
func tornAssert(t *testing.T, cfg TornConfig) {
	t.Helper()
	ctx := testCtx(t)
	rep, err := RunTorn(ctx, cfg)
	if err != nil {
		t.Fatalf("RunTorn: %v", err)
	}
	if rep.WrongReads != 0 {
		t.Errorf("%d of %d reads saw something other than the last completed value", rep.WrongReads, rep.Reads)
	}
	if rep.Reads == 0 {
		t.Error("no reads raced the torn stripe")
	}
	if rep.HeldOps < cfg.N-rep.DataShards+1 {
		t.Errorf("gate held %d ops, want at least n−(kData−1) = %d", rep.HeldOps, cfg.N-rep.DataShards+1)
	}
	if rep.Checks.WSSafety != nil {
		t.Errorf("WS-Safety: %v", rep.Checks.WSSafety)
	}
	if rep.Checks.WSRegularity != nil {
		t.Errorf("WS-Regularity: %v", rep.Checks.WSRegularity)
	}
}

// TestTornStripeInProc tears stripes at every torn width j < kData on the
// synchronous lane.
func TestTornStripeInProc(t *testing.T) {
	for allow := 1; allow <= 2; allow++ {
		tornAssert(t, TornConfig{F: 1, N: 5, AllowFrags: allow, ValueSize: 1024})
	}
}

// TestTornStripeLatency runs the attack under seeded asynchronous delivery
// (pinned seeds): the straggler delay composes with the gate's holds.
func TestTornStripeLatency(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		tornAssert(t, TornConfig{F: 1, N: 5, ValueSize: 1024, Lane: LaneLatency, Seed: seed})
	}
}

// TestTornStripeTCP runs the attack with fragments travelling over TCP to
// real storage-node processes.
func TestTornStripeTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns node processes")
	}
	addrs, _ := startLanenodes(t, 5)
	maker, clients, err := lanenet.Lanes(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, c := range clients {
			_ = c.Close()
		}
	})
	tornAssert(t, TornConfig{F: 1, N: 5, ValueSize: 4096, LaneMaker: maker})
}

// TestChaosCodedStaySafe puts the coded construction through the standard
// chaos net (seeded holds of fragment puts and commits, late releases) at
// both ends of the shard axis: f=1 (kData=3, real striping) and f=2
// (kData=1, degenerate replication). Pinned seeds; zero violations is the
// acceptance bar.
func TestChaosCodedStaySafe(t *testing.T) {
	ctx := testCtx(t)
	for _, f := range []int{1, 2} {
		for seed := int64(0); seed < 10; seed++ {
			cfg := ChaosConfig{
				Kind: KindCoded, K: 3, F: f, N: ChaosServers(KindCoded),
				Ops: 25, Seed: seed,
			}
			rep, err := RunChaos(ctx, cfg)
			if err != nil {
				t.Fatalf("f=%d seed %d: %v", f, seed, err)
			}
			if !rep.Checks.OK() {
				t.Errorf("f=%d seed %d: safety=%v regularity=%v (holds=%d releases=%d)",
					f, seed, rep.Checks.WSSafety, rep.Checks.WSRegularity, rep.Holds, rep.Releases)
			}
		}
	}
}

// TestChaosCodedWithChurn adds live reconfiguration: fragment stores
// migrate (with their fragments) mid-chaos and the checkers must stay
// green.
func TestChaosCodedWithChurn(t *testing.T) {
	ctx := testCtx(t)
	for seed := int64(0); seed < 6; seed++ {
		cfg := ChaosConfig{
			Kind: KindCoded, K: 2, F: 1, N: 5,
			Ops: 20, Seed: seed, ChurnProb: 0.2,
		}
		rep, err := RunChaos(ctx, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Checks.OK() {
			t.Errorf("seed %d: safety=%v regularity=%v (replacements=%d)",
				seed, rep.Checks.WSSafety, rep.Checks.WSRegularity, rep.Replacements)
		}
	}
}
