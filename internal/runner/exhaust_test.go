package runner

import (
	"context"
	"math/bits"
	"slices"
	"testing"
	"time"
)

// countSchedules computes the size of the f-bounded schedule class by the
// counting formula, independently of the enumerator's loop structure:
//
//	|class| = D(n,f) * Σ_{|A0|<=f} Σ_{R0⊆A0} Σ_{|A1|<=f} Σ_{R1⊆A1} 2^|R0∩R1|
//
// where D(n,f) = Σ_{d<=f} C(n,d) counts the read-delay sets and the 2^|R0∩R1|
// factor counts the per-collision release-order choices.
func countSchedules(f, n int) int {
	legal := func(mask int) bool { return bits.OnesCount(uint(mask)) <= f }
	pairs := 0
	for h0 := 0; h0 < 1<<uint(n); h0++ {
		if !legal(h0) {
			continue
		}
		for r0 := 0; r0 < 1<<uint(n); r0++ {
			if r0&^h0 != 0 {
				continue
			}
			for h1 := 0; h1 < 1<<uint(n); h1++ {
				if !legal(h1) {
					continue
				}
				for r1 := 0; r1 < 1<<uint(n); r1++ {
					if r1&^h1 != 0 {
						continue
					}
					pairs += 1 << uint(bits.OnesCount(uint(r0&r1)))
				}
			}
		}
	}
	delays := 0
	for d := 0; d < 1<<uint(n); d++ {
		if legal(d) {
			delays++
		}
	}
	return pairs * delays
}

// TestEnumerateScheduleCount pins the schedule-space size: the enumerator
// must agree with the independent counting formula, and both must match the
// published class sizes (208 at f=1, 48256 at f=2) that make "0 violations"
// a complete-class result.
func TestEnumerateScheduleCount(t *testing.T) {
	for _, tc := range []struct{ f, n, want int }{
		{1, 3, 208},
		{2, 5, 48256},
	} {
		got := len(enumerateExhaust(tc.f, tc.n))
		if formula := countSchedules(tc.f, tc.n); got != formula {
			t.Errorf("f=%d n=%d: enumerated %d schedules, formula says %d", tc.f, tc.n, got, formula)
		}
		if got != tc.want {
			t.Errorf("f=%d n=%d: enumerated %d schedules, want %d — class size changed", tc.f, tc.n, got, tc.want)
		}
	}
}

// TestEnumerateRespectsBudgets: every schedule stays within the f-bounded
// adversary (holds, releases, delays), and releases are subsets of holds.
func TestEnumerateRespectsBudgets(t *testing.T) {
	const f, n = 2, 5
	for _, s := range enumerateExhaust(f, n) {
		for w := 0; w < 2; w++ {
			if len(s.holds[w]) > f {
				t.Fatalf("schedule {%s}: writer %d holds %d > f", s, w, len(s.holds[w]))
			}
			for _, srv := range s.releases[w] {
				if !slices.Contains(s.holds[w], srv) {
					t.Fatalf("schedule {%s}: writer %d releases s%d without holding it", s, w, srv)
				}
			}
		}
		for _, srv := range s.w1First {
			if !slices.Contains(s.releases[0], srv) || !slices.Contains(s.releases[1], srv) {
				t.Fatalf("schedule {%s}: order bit on s%d outside the release collision set", s, srv)
			}
		}
		if len(s.delayRead) > f {
			t.Fatalf("schedule {%s}: delays %d > f servers", s, len(s.delayRead))
		}
	}
}

// TestExhaustiveSoundConstructions model-checks the full f=1 two-writer
// adversary class (holds, subset releases with both collision orders, read
// delays) against every sound construction: zero schedules may violate
// WS-Safety.
func TestExhaustiveSoundConstructions(t *testing.T) {
	ctx := testCtx(t)
	for _, kind := range []Kind{KindRegEmu, KindABDMax, KindCASMax, KindAACMax} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			rep, err := RunExhaustive(ctx, kind)
			if err != nil {
				t.Fatalf("RunExhaustive: %v", err)
			}
			if rep.Schedules != 208 {
				t.Fatalf("explored %d schedules, want 208 — enumeration changed", rep.Schedules)
			}
			if rep.Violations != 0 {
				t.Errorf("%d/%d schedules violated WS-Safety; first: %s",
					rep.Violations, rep.Schedules, rep.FirstViolation)
			}
		})
	}
}

// TestExhaustiveFindsNaiveViolation: the same enumeration must expose the
// under-provisioned baseline — the lower bound says violating schedules
// exist, and the search must find them.
func TestExhaustiveFindsNaiveViolation(t *testing.T) {
	ctx := testCtx(t)
	rep, err := RunExhaustive(ctx, KindNaive)
	if err != nil {
		t.Fatalf("RunExhaustive: %v", err)
	}
	if rep.Violations == 0 {
		t.Fatalf("no violating schedule found for the naive baseline in %d schedules", rep.Schedules)
	}
	t.Logf("naive baseline: %d/%d schedules violate WS-Safety; e.g. %s",
		rep.Violations, rep.Schedules, rep.FirstViolation)
}

// TestExhaustiveF2 is the grown sweep: the complete f=2 class (48256
// schedules on n=5, two covering holds per write, subset releases with
// per-collision orders, two delayed read servers) — Algorithm 2 must defeat
// every schedule, the under-provisioned baseline must fall to some.
func TestExhaustiveF2(t *testing.T) {
	// The f=2 class is ~230x larger than f=1; give it room beyond the
	// default test context, which race-instrumented CI runs need.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	t.Run("regemu-complete-class", func(t *testing.T) {
		rep, err := RunExhaustiveOpts(ctx, KindRegEmu, ExhaustOptions{F: 2})
		if err != nil {
			t.Fatalf("RunExhaustiveOpts: %v", err)
		}
		if rep.Schedules != 48256 {
			t.Fatalf("explored %d schedules, want 48256 — enumeration changed", rep.Schedules)
		}
		if rep.Violations != 0 {
			t.Errorf("%d/%d f=2 schedules violated WS-Safety; first: %s",
				rep.Violations, rep.Schedules, rep.FirstViolation)
		}
	})
	t.Run("naive-violates", func(t *testing.T) {
		rep, err := RunExhaustiveOpts(ctx, KindNaive, ExhaustOptions{F: 2})
		if err != nil {
			t.Fatalf("RunExhaustiveOpts: %v", err)
		}
		if rep.Violations == 0 {
			t.Fatalf("no violating f=2 schedule found for the naive baseline in %d schedules", rep.Schedules)
		}
		t.Logf("naive baseline at f=2: %d/%d schedules violate; e.g. %s",
			rep.Violations, rep.Schedules, rep.FirstViolation)
	})
}

// TestExhaustiveRejectsUnsupportedF covers the budget validation.
func TestExhaustiveRejectsUnsupportedF(t *testing.T) {
	if _, err := RunExhaustiveOpts(testCtx(t), KindRegEmu, ExhaustOptions{F: 3}); err == nil {
		t.Fatal("f=3 accepted; the schedule class is only defined for f=1,2")
	}
}
