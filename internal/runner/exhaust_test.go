package runner

import "testing"

// TestExhaustiveSoundConstructions model-checks the full f=1 two-writer
// adversary class (holds, releases in both orders, read delays) against
// every sound construction: zero schedules may violate WS-Safety.
func TestExhaustiveSoundConstructions(t *testing.T) {
	ctx := testCtx(t)
	for _, kind := range []Kind{KindRegEmu, KindABDMax, KindCASMax, KindAACMax} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			rep, err := RunExhaustive(ctx, kind)
			if err != nil {
				t.Fatalf("RunExhaustive: %v", err)
			}
			// 4 holds x 4 holds x (4 release combos + 1 extra order
			// when both release) x 4 read delays = 320.
			if rep.Schedules != 320 {
				t.Fatalf("explored %d schedules, want 320 — enumeration changed", rep.Schedules)
			}
			if rep.Violations != 0 {
				t.Errorf("%d/%d schedules violated WS-Safety; first: %s",
					rep.Violations, rep.Schedules, rep.FirstViolation)
			}
		})
	}
}

// TestExhaustiveFindsNaiveViolation: the same enumeration must expose the
// under-provisioned baseline — the lower bound says violating schedules
// exist, and the search must find them.
func TestExhaustiveFindsNaiveViolation(t *testing.T) {
	ctx := testCtx(t)
	rep, err := RunExhaustive(ctx, KindNaive)
	if err != nil {
		t.Fatalf("RunExhaustive: %v", err)
	}
	if rep.Violations == 0 {
		t.Fatalf("no violating schedule found for the naive baseline in %d schedules", rep.Schedules)
	}
	t.Logf("naive baseline: %d/%d schedules violate WS-Safety; e.g. %s",
		rep.Violations, rep.Schedules, rep.FirstViolation)
}
