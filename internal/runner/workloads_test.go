package runner

import (
	"sync"
	"testing"

	"repro/internal/emulation"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/spec"
	"repro/internal/types"
	"repro/internal/workload"
)

func TestRunSequentialAllKinds(t *testing.T) {
	ctx := testCtx(t)
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			k, f, n := 3, 1, 4
			if kind == KindAACMax || kind == KindNaive || kind == KindABDMax || kind == KindCASMax {
				n = 3 // the 2f+1 constructions default to servers 0..2f
			}
			steps := workload.Sequential(k, true)
			rep, err := RunSequential(ctx, kind, k, f, n, steps, nil)
			if err != nil {
				t.Fatalf("RunSequential: %v", err)
			}
			if rep.Writes != k || rep.Reads != k {
				t.Errorf("writes/reads = %d/%d, want %d/%d", rep.Writes, rep.Reads, k, k)
			}
			if !rep.Checks.OK() {
				t.Errorf("checks failed: safety=%v regularity=%v", rep.Checks.WSSafety, rep.Checks.WSRegularity)
			}
		})
	}
}

func TestRunSequentialWithCrashes(t *testing.T) {
	ctx := testCtx(t)
	steps := workload.RoundRobinWrites(3, 3)
	// Interleave reads.
	var all []workload.Step
	for _, s := range steps {
		all = append(all, s, workload.Step{Client: 0, IsRead: true})
	}
	plan := faults.NewPlan(faults.Crash{AfterOp: 4, Server: 0}, faults.Crash{AfterOp: 10, Server: 3})
	rep, err := RunSequential(ctx, KindRegEmu, 3, 2, 6, all, plan)
	if err != nil {
		t.Fatalf("RunSequential with crashes: %v", err)
	}
	if rep.Crashes != 2 {
		t.Errorf("crashes = %d, want 2", rep.Crashes)
	}
	if !rep.Checks.OK() {
		t.Errorf("checks failed after crashes: %+v", rep.Checks)
	}
}

func TestRunSequentialRejectsOverbudgetCrashPlan(t *testing.T) {
	ctx := testCtx(t)
	plan := faults.NewPlan(faults.Crash{AfterOp: 0, Server: 0}, faults.Crash{AfterOp: 1, Server: 1})
	if _, err := RunSequential(ctx, KindRegEmu, 2, 1, 3, workload.Sequential(2, false), plan); err == nil {
		t.Fatal("crash plan beyond f accepted")
	}
}

func TestRunConcurrentAllKinds(t *testing.T) {
	ctx := testCtx(t)
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			n := 4
			if kind != KindRegEmu {
				n = 3
			}
			rep, err := RunConcurrent(ctx, ConcurrentConfig{
				Kind: kind, K: 3, F: 1, N: n,
				WritesPerWriter: 10, Readers: 2, ReadsPerReader: 10,
			})
			if err != nil {
				t.Fatalf("RunConcurrent: %v", err)
			}
			if rep.ReadValidity != nil {
				t.Errorf("read validity: %v", rep.ReadValidity)
			}
			if rep.Writes != 30 || rep.Reads != 20 {
				t.Errorf("ops = %d/%d, want 30/20", rep.Writes, rep.Reads)
			}
		})
	}
}

func TestRunConcurrentAtomicLinearizable(t *testing.T) {
	ctx := testCtx(t)
	for _, kind := range []Kind{KindABDMax, KindCASMax} {
		rep, err := RunConcurrent(ctx, ConcurrentConfig{
			Kind: kind, K: 2, F: 1, N: 3,
			WritesPerWriter: 8, Readers: 2, ReadsPerReader: 8,
			Atomic: true,
		})
		if err != nil {
			t.Fatalf("RunConcurrent atomic %s: %v", kind, err)
		}
		if !rep.LinearizabilityChecked {
			t.Fatalf("%s: linearizability not checked (history too large?)", kind)
		}
		if rep.Linearizable != nil {
			t.Errorf("%s atomic run not linearizable: %v", kind, rep.Linearizable)
		}
	}
}

func TestBuildAtomicRejectsReadOnlyReaders(t *testing.T) {
	env, err := NewEnv(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Kind{KindRegEmu, KindAACMax, KindNaive} {
		if _, _, err := BuildAtomic(kind, env.Fabric, 2, 1); err == nil {
			t.Errorf("BuildAtomic(%s) succeeded; its readers cannot write", kind)
		}
	}
}

func TestBuildUnknownKind(t *testing.T) {
	env, err := NewEnv(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Build(Kind("bogus"), env.Fabric, 1, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestKindMetadata(t *testing.T) {
	if len(Kinds()) != 6 {
		t.Fatalf("Kinds = %v, want 6 entries", Kinds())
	}
	want := map[Kind]string{
		KindRegEmu: "register",
		KindABDMax: "max-register",
		KindCASMax: "cas",
		KindAACMax: "register",
		KindNaive:  "register",
		KindCoded:  "frag-store",
	}
	for kind, base := range want {
		if got := BaseObjectOf(kind); got != base {
			t.Errorf("BaseObjectOf(%s) = %q, want %q", kind, got, base)
		}
	}
	if BaseObjectOf(Kind("bogus")) != "unknown" {
		t.Error("unknown kind not reported")
	}
}

// TestAllKindsUnderResponseLatency runs every construction concurrently
// behind the yield gate (modeled response latency), exercising the truly
// asynchronous interleavings the synchronous default hides.
func TestAllKindsUnderResponseLatency(t *testing.T) {
	ctx := testCtx(t)
	for _, kind := range []Kind{KindRegEmu, KindABDMax, KindCASMax, KindAACMax} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			n := 6
			if kind != KindRegEmu {
				n = 5
			}
			env, err := NewEnv(n, &fabric.YieldGate{Yields: 2})
			if err != nil {
				t.Fatal(err)
			}
			reg, hist, err := Build(kind, env.Fabric, 3, 2)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make(chan error, 5)
			values := workload.NewValueGen()
			for i := 0; i < 3; i++ {
				w, err := reg.Writer(i)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(i int, w emulation.Writer) {
					defer wg.Done()
					for op := 0; op < 20; op++ {
						if err := w.Write(ctx, values.Next(types.ClientID(i))); err != nil {
							errs <- err
							return
						}
					}
				}(i, w)
			}
			for r := 0; r < 2; r++ {
				rd := reg.NewReader()
				wg.Add(1)
				go func(rd emulation.Reader) {
					defer wg.Done()
					for op := 0; op < 20; op++ {
						if _, err := rd.Read(ctx); err != nil {
							errs <- err
							return
						}
					}
				}(rd)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("op under latency: %v", err)
			}
			if err := spec.CheckReadValidity(hist.Snapshot(), types.InitialValue); err != nil {
				t.Fatalf("read validity: %v", err)
			}
		})
	}
}
