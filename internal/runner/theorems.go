package runner

import (
	"context"
	"fmt"

	"repro/internal/bounds"
	"repro/internal/layout"
)

// Theorem2Report measures the aacmax construction against Theorem 2: a
// k-writer max-register needs at least k base registers, and the paper's
// n = 2f+1 special case uses exactly k per server, (2f+1)k in total.
type Theorem2Report struct {
	K, F           int
	PerServer      []int
	PerServerWant  int // k (Theorem 2 / Theorem 6 tightness)
	Total          int
	TotalWant      int // (2f+1)k
	Safe           bool
	CoveredAtEnd   int
	CoveringFloorF int // adversary's per-write covering; grows like a register construction
}

// RunTheorem2 builds the per-server k-register max-registers, runs the
// covering experiment on them, and reports per-server register counts.
func RunTheorem2(ctx context.Context, k, f int) (*Theorem2Report, error) {
	n := 2*f + 1
	rep, err := RunCovering(ctx, KindAACMax, k, f, n)
	if err != nil {
		return nil, err
	}
	// Rebuild the environment to inspect per-server counts (RunCovering
	// owns its env); placement is deterministic, so a fresh build has
	// identical counts.
	env, err := NewEnv(n, nil)
	if err != nil {
		return nil, err
	}
	if _, _, err := Build(KindAACMax, env.Fabric, k, f); err != nil {
		return nil, err
	}
	totalWant, err := bounds.SpecialCaseRegisters(k, f)
	if err != nil {
		return nil, err
	}
	perWant, err := bounds.MaxRegisterFromRegistersLower(k)
	if err != nil {
		return nil, err
	}
	return &Theorem2Report{
		K:              k,
		F:              f,
		PerServer:      env.Cluster.PerServerCounts(),
		PerServerWant:  perWant,
		Total:          rep.Resources,
		TotalWant:      totalWant,
		Safe:           rep.Checks.OK() && rep.FinalRead == rep.LastWritten,
		CoveredAtEnd:   rep.TotalCovered,
		CoveringFloorF: f,
	}, nil
}

// Theorem6Report checks the n = 2f+1 per-server bound against Algorithm 2's
// layout: every server must store at least k registers, and the layout
// stores exactly k.
type Theorem6Report struct {
	K, F      int
	N         int
	PerServer []int
	Want      int // k
}

// RunTheorem6 inspects the Algorithm 2 layout at n = 2f+1.
func RunTheorem6(k, f int) (*Theorem6Report, error) {
	n := 2*f + 1
	plan, err := layout.NewPlan(k, f, n)
	if err != nil {
		return nil, err
	}
	if err := plan.Verify(); err != nil {
		return nil, err
	}
	want, err := bounds.PerServerLowerAtMinServers(k)
	if err != nil {
		return nil, err
	}
	return &Theorem6Report{K: k, F: f, N: n, PerServer: plan.PerServerCounts(), Want: want}, nil
}

// Theorem7Report checks the bounded-storage server bound: with at most cap
// registers per server, any emulation needs >= ceil(kf/cap) + f + 1
// servers. MinFeasibleN is the smallest n at which Algorithm 2's layout
// fits under the cap; the bound says MinFeasibleN >= BoundN.
type Theorem7Report struct {
	K, F, Cap    int
	BoundN       int
	MinFeasibleN int
	// Feasible is false when no n up to the search limit fits the cap
	// (cap < f+... too small for any layout).
	Feasible bool
}

// RunTheorem7 sweeps n upward until Algorithm 2's layout respects the
// per-server cap.
func RunTheorem7(k, f, cap int) (*Theorem7Report, error) {
	boundN, err := bounds.ServersLowerWithCap(k, f, cap)
	if err != nil {
		return nil, err
	}
	rep := &Theorem7Report{K: k, F: f, Cap: cap, BoundN: boundN}
	limit := boundN + k*f + 2*f + 2 // generous search ceiling
	for n := 2*f + 1; n <= limit; n++ {
		plan, err := layout.NewPlan(k, f, n)
		if err != nil {
			return nil, err
		}
		max := 0
		for _, c := range plan.PerServerCounts() {
			if c > max {
				max = c
			}
		}
		if max <= cap {
			rep.MinFeasibleN = n
			rep.Feasible = true
			return rep, nil
		}
	}
	return rep, nil
}

// Theorem8Point is one (k, consumption) sample of the adaptivity
// experiment: point contention stays 1 while resource consumption grows.
type Theorem8Point struct {
	K               int
	PointContention int
	UsedObjects     int
	Covered         int
}

// RunTheorem8 sweeps k for fixed (f, n) and reports the resource
// consumption of sequential (point contention 1) runs — demonstrating that
// no function of point contention can bound consumption (Theorem 8).
func RunTheorem8(ctx context.Context, f, n int, ks []int) ([]Theorem8Point, error) {
	points := make([]Theorem8Point, 0, len(ks))
	for _, k := range ks {
		rep, err := RunCovering(ctx, KindRegEmu, k, f, n)
		if err != nil {
			return nil, fmt.Errorf("runner: theorem8 k=%d: %w", k, err)
		}
		points = append(points, Theorem8Point{
			K:               k,
			PointContention: rep.PointContention,
			UsedObjects:     rep.UsedObjects,
			Covered:         rep.TotalCovered,
		})
	}
	return points, nil
}

// CoincidencePoint verifies the Section 3 claims that the register bounds
// coincide at n = 2f+1 (both kf + k(f+1)) and at n >= kf + f + 1 (both
// kf + f + 1).
type CoincidencePoint struct {
	K, F, N      int
	Lower, Upper int
	Want         int
	Coincide     bool
}

// RunCoincidence evaluates both coincidence regimes for (k, f).
func RunCoincidence(k, f int) ([]CoincidencePoint, error) {
	var points []CoincidencePoint
	// Regime 1: n = 2f+1.
	n1 := 2*f + 1
	lo, err := bounds.RegisterLower(k, f, n1)
	if err != nil {
		return nil, err
	}
	hi, err := bounds.RegisterUpper(k, f, n1)
	if err != nil {
		return nil, err
	}
	want1 := k*f + k*(f+1)
	points = append(points, CoincidencePoint{
		K: k, F: f, N: n1, Lower: lo, Upper: hi, Want: want1,
		Coincide: lo == hi && lo == want1,
	})
	// Regime 2: n = kf + f + 1.
	n2 := k*f + f + 1
	if n2 < 2*f+1 {
		n2 = 2*f + 1
	}
	lo2, err := bounds.RegisterLower(k, f, n2)
	if err != nil {
		return nil, err
	}
	hi2, err := bounds.RegisterUpper(k, f, n2)
	if err != nil {
		return nil, err
	}
	want2 := k*f + f + 1
	points = append(points, CoincidencePoint{
		K: k, F: f, N: n2, Lower: lo2, Upper: hi2, Want: want2,
		Coincide: lo2 == hi2 && lo2 == want2,
	})
	return points, nil
}
