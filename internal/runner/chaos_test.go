package runner

import (
	"fmt"
	"testing"
)

// TestChaosSoundConstructionsStaySafe drives every sound construction
// through randomized environments — holds, late stale releases, random
// schedules — and demands WS-Safety and WS-Regularity on every seed. This
// is the repository's broadest soundness net: Algorithm 2's cover-set
// machinery, the max-register monotonicity, the CAS loop, and the per-server
// k-register max all face the same adversary distribution.
func TestChaosSoundConstructionsStaySafe(t *testing.T) {
	ctx := testCtx(t)
	for _, kind := range []Kind{KindRegEmu, KindABDMax, KindCASMax, KindAACMax} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			for seed := int64(0); seed < 12; seed++ {
				cfg := ChaosConfig{
					Kind: kind, K: 3, F: 2, N: ChaosServers(kind),
					Ops: 30, Seed: seed,
				}
				rep, err := RunChaos(ctx, cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if rep.Checks.WSSafety != nil {
					t.Errorf("seed %d: WS-Safety: %v (holds=%d releases=%d)",
						seed, rep.Checks.WSSafety, rep.Holds, rep.Releases)
				}
				if rep.Checks.WSRegularity != nil {
					t.Errorf("seed %d: WS-Regularity: %v (holds=%d releases=%d)",
						seed, rep.Checks.WSRegularity, rep.Holds, rep.Releases)
				}
			}
		})
	}
}

// TestChaosActuallyInterferes guards against a vacuous chaos net: across
// seeds, the gate must actually hold and release operations.
func TestChaosActuallyInterferes(t *testing.T) {
	ctx := testCtx(t)
	totalHolds, totalReleases := 0, 0
	for seed := int64(0); seed < 5; seed++ {
		rep, err := RunChaos(ctx, ChaosConfig{
			Kind: KindRegEmu, K: 3, F: 2, N: 7, Ops: 25, Seed: seed,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		totalHolds += rep.Holds
		totalReleases += rep.Releases
	}
	if totalHolds == 0 {
		t.Error("chaos gate never held an op — the net is vacuous")
	}
	if totalReleases == 0 {
		t.Error("chaos never released a held op — stale applies untested")
	}
}

// TestChaosNaiveBaselineReported runs the baseline under chaos; violations
// are possible (the construction is below the space bound) but not
// guaranteed by random schedules, so the test only demands the run
// completes and reports.
func TestChaosNaiveBaselineReported(t *testing.T) {
	ctx := testCtx(t)
	violations := 0
	for seed := int64(0); seed < 8; seed++ {
		rep, err := RunChaos(ctx, ChaosConfig{
			Kind: KindNaive, K: 3, F: 2, N: 5, Ops: 25, Seed: seed,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Checks.OK() {
			violations++
		}
	}
	t.Logf("naive baseline violated WS conditions in %d/8 chaos seeds", violations)
}

// TestChaosSweepMatchesSerialRuns: the pooled seed sweep must aggregate
// exactly what a serial loop over the same seeds observes — chaos runs are
// deterministic per seed, and the pool must not change that.
func TestChaosSweepMatchesSerialRuns(t *testing.T) {
	ctx := testCtx(t)
	cfg := ChaosConfig{Kind: KindRegEmu, K: 3, F: 2, N: 7, Ops: 20, Seed: 40}
	const seeds = 6
	wantWrites, wantReads, wantHolds, wantReleases := 0, 0, 0, 0
	for s := int64(0); s < seeds; s++ {
		c := cfg
		c.Seed = cfg.Seed + s
		rep, err := RunChaos(ctx, c)
		if err != nil {
			t.Fatalf("seed %d: %v", c.Seed, err)
		}
		wantWrites += rep.Writes
		wantReads += rep.Reads
		wantHolds += rep.Holds
		wantReleases += rep.Releases
	}
	sweep, err := RunChaosSweep(ctx, cfg, seeds, 4)
	if err != nil {
		t.Fatalf("RunChaosSweep: %v", err)
	}
	got := fmt.Sprintf("%d/%d/%d/%d", sweep.Writes, sweep.Reads, sweep.Holds, sweep.Releases)
	want := fmt.Sprintf("%d/%d/%d/%d", wantWrites, wantReads, wantHolds, wantReleases)
	if got != want {
		t.Fatalf("sweep aggregates %s, serial runs %s", got, want)
	}
	if sweep.Violating != 0 || sweep.FirstViolatingSeed != -1 {
		t.Fatalf("sound construction reported violating seeds: %+v", sweep)
	}
	if sweep.Seeds != seeds || sweep.Workers != 4 {
		t.Fatalf("sweep bookkeeping off: %+v", sweep)
	}
}

// TestChaosValidatesConfig covers the config error path.
func TestChaosValidatesConfig(t *testing.T) {
	ctx := testCtx(t)
	if _, err := RunChaos(ctx, ChaosConfig{Kind: KindRegEmu, K: 1, F: 1, N: 3}); err == nil {
		t.Fatal("ops=0 accepted")
	}
}

// TestChaosPinnedSeedSchedule pins the exact op/hold/release counts of one
// seed under the splitmix sub-stream derivation (seed.Sub). The counts
// intentionally differ from the pre-derivation scheme, which seeded the
// schedule generator with Seed+1 and thereby made seed s's schedule stream
// identical to seed s+1's gate stream — adjacent sweep seeds explored
// correlated environments while counting as independent trials. If this
// test breaks, the chaos environment distribution changed: update the
// golden counts deliberately, never silently.
func TestChaosPinnedSeedSchedule(t *testing.T) {
	ctx := testCtx(t)
	rep, err := RunChaos(ctx, ChaosConfig{Kind: KindRegEmu, K: 3, F: 2, N: 7, Ops: 20, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("writes=%d reads=%d holds=%d releases=%d", rep.Writes, rep.Reads, rep.Holds, rep.Releases)
	const want = "writes=13 reads=7 holds=21 releases=16"
	if got != want {
		t.Fatalf("seed 99 schedule changed:\n got %s\nwant %s", got, want)
	}
}

// TestChaosLatencyLaneSweep runs the chaos sweep on the latency lane: the
// same gate adversary now composes with seeded delivery delay, reordering,
// and stragglers, and every sound construction must stay WS-Safe and
// WS-Regular. Counts are not pinned — completion order (and hence gate
// stream consumption) is genuinely timing-dependent on this lane.
func TestChaosLatencyLaneSweep(t *testing.T) {
	ctx := testCtx(t)
	for _, kind := range []Kind{KindRegEmu, KindCASMax} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			sweep, err := RunChaosSweep(ctx, ChaosConfig{
				Kind: kind, K: 3, F: 2, N: ChaosServers(kind), Ops: 15, Lane: LaneLatency,
			}, 4, 2)
			if err != nil {
				t.Fatal(err)
			}
			if sweep.Lane != LaneLatency {
				t.Fatalf("sweep lane = %q, want latency", sweep.Lane)
			}
			if sweep.Violating != 0 {
				t.Fatalf("latency-lane chaos found violations: %+v", sweep)
			}
			if sweep.Writes == 0 || sweep.Reads == 0 {
				t.Fatalf("vacuous sweep: %+v", sweep)
			}
		})
	}
}

// TestChaosRejectsUnknownLane covers the lane validation path.
func TestChaosRejectsUnknownLane(t *testing.T) {
	ctx := testCtx(t)
	if _, err := RunChaos(ctx, ChaosConfig{Kind: KindRegEmu, K: 1, F: 1, N: 3, Ops: 1, Lane: "warp"}); err == nil {
		t.Fatal("unknown lane accepted")
	}
}

// TestChaosDeterministicPerSeed re-runs one seed and demands identical
// hold/release/op counts: experiments must be reproducible.
func TestChaosDeterministicPerSeed(t *testing.T) {
	ctx := testCtx(t)
	cfg := ChaosConfig{Kind: KindRegEmu, K: 3, F: 2, N: 7, Ops: 20, Seed: 99}
	a, err := RunChaos(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%d/%d/%d/%d", a.Writes, a.Reads, a.Holds, a.Releases),
		fmt.Sprintf("%d/%d/%d/%d", b.Writes, b.Reads, b.Holds, b.Releases); got != want {
		t.Fatalf("same seed diverged: %s vs %s", got, want)
	}
}
