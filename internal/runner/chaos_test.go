package runner

import (
	"fmt"
	"testing"
)

// TestChaosSoundConstructionsStaySafe drives every sound construction
// through randomized environments — holds, late stale releases, random
// schedules — and demands WS-Safety and WS-Regularity on every seed. This
// is the repository's broadest soundness net: Algorithm 2's cover-set
// machinery, the max-register monotonicity, the CAS loop, and the per-server
// k-register max all face the same adversary distribution.
func TestChaosSoundConstructionsStaySafe(t *testing.T) {
	ctx := testCtx(t)
	for _, kind := range []Kind{KindRegEmu, KindABDMax, KindCASMax, KindAACMax} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			n := 7
			if kind != KindRegEmu {
				n = 5 // 2f+1 constructions place on servers 0..2f
			}
			for seed := int64(0); seed < 12; seed++ {
				cfg := ChaosConfig{
					Kind: kind, K: 3, F: 2, N: n,
					Ops: 30, Seed: seed,
				}
				rep, err := RunChaos(ctx, cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if rep.Checks.WSSafety != nil {
					t.Errorf("seed %d: WS-Safety: %v (holds=%d releases=%d)",
						seed, rep.Checks.WSSafety, rep.Holds, rep.Releases)
				}
				if rep.Checks.WSRegularity != nil {
					t.Errorf("seed %d: WS-Regularity: %v (holds=%d releases=%d)",
						seed, rep.Checks.WSRegularity, rep.Holds, rep.Releases)
				}
			}
		})
	}
}

// TestChaosActuallyInterferes guards against a vacuous chaos net: across
// seeds, the gate must actually hold and release operations.
func TestChaosActuallyInterferes(t *testing.T) {
	ctx := testCtx(t)
	totalHolds, totalReleases := 0, 0
	for seed := int64(0); seed < 5; seed++ {
		rep, err := RunChaos(ctx, ChaosConfig{
			Kind: KindRegEmu, K: 3, F: 2, N: 7, Ops: 25, Seed: seed,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		totalHolds += rep.Holds
		totalReleases += rep.Releases
	}
	if totalHolds == 0 {
		t.Error("chaos gate never held an op — the net is vacuous")
	}
	if totalReleases == 0 {
		t.Error("chaos never released a held op — stale applies untested")
	}
}

// TestChaosNaiveBaselineReported runs the baseline under chaos; violations
// are possible (the construction is below the space bound) but not
// guaranteed by random schedules, so the test only demands the run
// completes and reports.
func TestChaosNaiveBaselineReported(t *testing.T) {
	ctx := testCtx(t)
	violations := 0
	for seed := int64(0); seed < 8; seed++ {
		rep, err := RunChaos(ctx, ChaosConfig{
			Kind: KindNaive, K: 3, F: 2, N: 5, Ops: 25, Seed: seed,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Checks.OK() {
			violations++
		}
	}
	t.Logf("naive baseline violated WS conditions in %d/8 chaos seeds", violations)
}

// TestChaosSweepMatchesSerialRuns: the pooled seed sweep must aggregate
// exactly what a serial loop over the same seeds observes — chaos runs are
// deterministic per seed, and the pool must not change that.
func TestChaosSweepMatchesSerialRuns(t *testing.T) {
	ctx := testCtx(t)
	cfg := ChaosConfig{Kind: KindRegEmu, K: 3, F: 2, N: 7, Ops: 20, Seed: 40}
	const seeds = 6
	wantWrites, wantReads, wantHolds, wantReleases := 0, 0, 0, 0
	for s := int64(0); s < seeds; s++ {
		c := cfg
		c.Seed = cfg.Seed + s
		rep, err := RunChaos(ctx, c)
		if err != nil {
			t.Fatalf("seed %d: %v", c.Seed, err)
		}
		wantWrites += rep.Writes
		wantReads += rep.Reads
		wantHolds += rep.Holds
		wantReleases += rep.Releases
	}
	sweep, err := RunChaosSweep(ctx, cfg, seeds, 4)
	if err != nil {
		t.Fatalf("RunChaosSweep: %v", err)
	}
	got := fmt.Sprintf("%d/%d/%d/%d", sweep.Writes, sweep.Reads, sweep.Holds, sweep.Releases)
	want := fmt.Sprintf("%d/%d/%d/%d", wantWrites, wantReads, wantHolds, wantReleases)
	if got != want {
		t.Fatalf("sweep aggregates %s, serial runs %s", got, want)
	}
	if sweep.Violating != 0 || sweep.FirstViolatingSeed != -1 {
		t.Fatalf("sound construction reported violating seeds: %+v", sweep)
	}
	if sweep.Seeds != seeds || sweep.Workers != 4 {
		t.Fatalf("sweep bookkeeping off: %+v", sweep)
	}
}

// TestChaosValidatesConfig covers the config error path.
func TestChaosValidatesConfig(t *testing.T) {
	ctx := testCtx(t)
	if _, err := RunChaos(ctx, ChaosConfig{Kind: KindRegEmu, K: 1, F: 1, N: 3}); err == nil {
		t.Fatal("ops=0 accepted")
	}
}

// TestChaosDeterministicPerSeed re-runs one seed and demands identical
// hold/release/op counts: experiments must be reproducible.
func TestChaosDeterministicPerSeed(t *testing.T) {
	ctx := testCtx(t)
	cfg := ChaosConfig{Kind: KindRegEmu, K: 3, F: 2, N: 7, Ops: 20, Seed: 99}
	a, err := RunChaos(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%d/%d/%d/%d", a.Writes, a.Reads, a.Holds, a.Releases),
		fmt.Sprintf("%d/%d/%d/%d", b.Writes, b.Reads, b.Holds, b.Releases); got != want {
		t.Fatalf("same seed diverged: %s vs %s", got, want)
	}
}
