// Package loadgen is the end-to-end workload driver: it measures what the
// emulated registers deliver to *clients* — high-level operations per
// second and completion latency — rather than the fabric's raw
// trigger throughput.
//
// A run opens a sharded multi-register store (internal/shardstore): the
// key-space is partitioned across S independent fabrics, each with its own
// lane group (in-process, latency, or a TCP lanenode set), and driven by M
// shared async engine loops (internal/emulation/async; no goroutine per
// op). Configurable populations of writer and reader clients spread over
// the materialized keys, and every operation's latency lands in a
// log-linear histogram (internal/stats) — one per (shard, engine) pair, so
// recording stays single-writer and lock-free, merged per shard and
// overall at the end (stats.Histogram.Merge). Two workload shapes are
// supported:
//
//   - closed loop: every client keeps exactly one operation in flight and
//     issues its next from the previous one's completion callback; total
//     in-flight concurrency equals the client population. Latency is
//     service time by construction — a closed loop cannot suffer
//     coordinated omission because it never has a backlog of intended
//     sends.
//   - open loop: a pacer schedules arrivals at a fixed aggregate rate onto
//     round-robin clients regardless of completions; per-client
//     serialization queues excess arrivals.
//
// # Coordinated-omission correction
//
// The open loop timestamps every operation at its *intended* send time —
// arrival n of a rate-R run is charged from base + n/R — not at the moment
// the pacer got around to issuing it. When the system (or the pacer's own
// scheduling) falls behind, the backlog's wait is therefore part of every
// delayed operation's recorded latency instead of being silently absorbed,
// the classic coordinated-omission error that makes saturated systems look
// healthy. Past the knee the reported percentiles grow without bound, as
// they should: that is what an open-loop client experiences. RateSweep
// runs the same configuration across offered rates to trace the
// latency-vs-rate curve, and Knee picks the last point the store actually
// sustained.
//
// Runs are correctness-gated, not just speedometers: each materialized
// key records its history, every run checks read validity, and atomic
// (read write-back) builds additionally check linearizability on sound
// samples of each key's history (spec.SampleLinearizable). Pure-throughput
// runs can opt out of recording (NoHistory) when billions of ops would not
// fit memory.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/emulation/async"
	"repro/internal/fabric"
	"repro/internal/runner"
	"repro/internal/seed"
	"repro/internal/shardstore"
	"repro/internal/stats"
	"repro/internal/types"
)

// Mode selects the workload shape.
type Mode string

// The two workload shapes.
const (
	// ModeClosed keeps one op in flight per client.
	ModeClosed Mode = "closed"
	// ModeOpen issues at a fixed aggregate rate.
	ModeOpen Mode = "open"
)

// DefaultProfile is the latency-lane delay distribution of load runs.
var DefaultProfile = shardstore.DefaultProfile

// Config parameterizes a load run.
type Config struct {
	// Kind is the construction; K defaults to the writer population per
	// key, F to 1, N to the construction's default server count per shard.
	Kind runner.Kind
	F, N int
	// Atomic builds the read write-back variant (abd-max/abd-cas only),
	// which is what enables the linearizability gate.
	Atomic bool

	// Clients is the total logical client population; ReadFraction of it
	// become readers, the rest writers (at least one writer per key).
	// Registers is how many keys the population spreads over, picked
	// evenly across the shards from a KeySpace-sized key-space
	// (default 2^20, floored at Registers).
	Clients      int
	ReadFraction float64
	Registers    int
	KeySpace     uint64

	// Shards partitions the key-space over that many independent fabrics
	// (default 1); Engines is the async engine-loop pool they share
	// (default = Shards).
	Shards  int
	Engines int

	// Mode and Rate shape the workload; Rate (ops/sec, aggregate) is
	// only used by ModeOpen.
	Mode Mode
	Rate float64

	// Duration bounds the measured run; MaxOps (0 = unlimited)
	// additionally stops after that many completed operations —
	// keeping recorded histories bounded.
	Duration time.Duration
	MaxOps   int64

	// Lane selects the dispatch backend (runner.LaneInProc default,
	// runner.LaneLatency with Profile, or runner.LaneTCP over NodeAddrs);
	// Seed drives the lane delays and the open-loop mix.
	Lane        runner.Lane
	Profile     *fabric.LatencyProfile
	NodeAddrs   []string
	DialTimeout time.Duration
	Seed        int64

	// ValueSize, when positive, makes writes carry payloads of that many
	// bytes (replicated or striped per Kind) so the result reports a
	// bytes-per-server space axis alongside throughput.
	ValueSize int

	// NoHistory disables history recording (and therefore all checks):
	// the pure-throughput mode.
	NoHistory bool
	// SampleChecks is how many independent linearizability samples to
	// check per key on atomic builds (default 4).
	SampleChecks int

	// Mailbox overrides the latency lanes' event-loop mailbox capacity
	// (0 = fabric default); Coalesce widens their fire window so more
	// queued reads merge per pass (0 = fire exactly on schedule). Both
	// only apply to LaneLatency — the knobs loadgen sweeps use to find
	// the batching knee.
	Mailbox  int
	Coalesce time.Duration
}

// Latency summarizes one histogram in nanoseconds.
type Latency struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean_ns"`
	P50  int64   `json:"p50_ns"`
	P90  int64   `json:"p90_ns"`
	P99  int64   `json:"p99_ns"`
	Max  int64   `json:"max_ns"`
}

func summarize(h *stats.Histogram) Latency {
	return Latency{
		N:    h.Count(),
		Mean: h.Mean(),
		P50:  h.Quantile(0.50),
		P90:  h.Quantile(0.90),
		P99:  h.Quantile(0.99),
		Max:  h.Max(),
	}
}

// ShardStat is one shard's share of a run.
type ShardStat struct {
	Shard   int     `json:"shard"`
	Keys    int     `json:"keys"`
	Ops     int64   `json:"ops"`
	Failed  int64   `json:"failed"`
	Latency Latency `json:"latency"`
}

// Result is one run's report, shaped for JSON snapshots.
type Result struct {
	Kind      string  `json:"kind"`
	Lane      string  `json:"lane"`
	Mode      string  `json:"mode"`
	Atomic    bool    `json:"atomic"`
	K         int     `json:"k"`
	F         int     `json:"f"`
	N         int     `json:"n"`
	Clients   int     `json:"clients"`
	Writers   int     `json:"writers"`
	Readers   int     `json:"readers"`
	Registers int     `json:"registers"`
	Shards    int     `json:"shards"`
	Engines   int     `json:"engines"`
	Procs     int     `json:"procs"`
	Rate      float64 `json:"rate,omitempty"`
	ValueSize int     `json:"value_size,omitempty"`

	DurationSec float64 `json:"duration_sec"`
	Ops         int64   `json:"ops"`
	Failed      int64   `json:"failed"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	// MaxInFlight sums the engine loops' peak concurrency.
	MaxInFlight int64 `json:"max_in_flight"`

	Latency      Latency `json:"latency"`
	WriteLatency Latency `json:"write_latency"`
	ReadLatency  Latency `json:"read_latency"`
	// PerShard breaks the run down by shard; the top-level histograms are
	// the per-shard ones merged.
	PerShard []ShardStat `json:"per_shard,omitempty"`

	// Checked reports whether consistency was verified; HistoryOps is the
	// total recorded high-level ops, SampledOps how many the
	// linearizability samples covered, and Violations any checker
	// failures (empty on a healthy run).
	// BytesPerServer is each server slot's storage footprint summed
	// across shards (zero-valued on the TCP lane, where bytes live in the
	// node processes); TotalBytes is their sum.
	BytesPerServer []int64 `json:"bytes_per_server,omitempty"`
	TotalBytes     int64   `json:"total_bytes,omitempty"`

	Checked    bool     `json:"checked"`
	HistoryOps int      `json:"history_ops"`
	SampledOps int      `json:"sampled_ops"`
	Violations []string `json:"violations,omitempty"`
}

// meter is one (shard, engine) pair's latency and outcome record. All of a
// key's completions fire on its engine loop, so each meter has exactly one
// writing goroutine: no locks, no atomics on the hot path.
type meter struct {
	all      *stats.Histogram
	writeLat *stats.Histogram
	readLat  *stats.Histogram
	done     int64
	failed   int64
}

func newMeter() *meter {
	return &meter{all: stats.NewHistogram(), writeLat: stats.NewHistogram(), readLat: stats.NewHistogram()}
}

// worker is one logical client bound to its key, engine client, and meter.
type worker struct {
	key uint64
	c   *async.Client
	m   *meter
	val *atomic.Int64 // per-key write-value counter (shared by the key's writers)
}

// Run executes one load run.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("loadgen: need at least one client, got %d", cfg.Clients)
	}
	if cfg.Registers <= 0 {
		cfg.Registers = 1
	}
	if cfg.Registers > cfg.Clients {
		return nil, fmt.Errorf("loadgen: %d registers need at least as many clients, got %d", cfg.Registers, cfg.Clients)
	}
	if cfg.ReadFraction < 0 || cfg.ReadFraction > 1 {
		return nil, fmt.Errorf("loadgen: read fraction %v outside [0,1]", cfg.ReadFraction)
	}
	if cfg.Mode == "" {
		cfg.Mode = ModeClosed
	}
	if cfg.Mode != ModeClosed && cfg.Mode != ModeOpen {
		return nil, fmt.Errorf("loadgen: unknown mode %q", cfg.Mode)
	}
	if cfg.Mode == ModeOpen && cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: open loop needs a positive rate")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.F <= 0 {
		cfg.F = 1
	}
	if cfg.N <= 0 {
		cfg.N = shardstore.DefaultServers(cfg.Kind, cfg.F)
	}
	if cfg.SampleChecks <= 0 {
		cfg.SampleChecks = 4
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Engines <= 0 {
		cfg.Engines = cfg.Shards
	}
	if cfg.KeySpace == 0 {
		cfg.KeySpace = 1 << 20
	}
	if cfg.KeySpace < uint64(cfg.Registers) {
		cfg.KeySpace = uint64(cfg.Registers)
	}
	if cfg.Lane == "" {
		cfg.Lane = runner.LaneInProc
	}

	readers := int(float64(cfg.Clients)*cfg.ReadFraction + 0.5)
	writers := cfg.Clients - readers
	if writers < cfg.Registers {
		// Every key needs a writer population (K >= 1).
		writers = cfg.Registers
		readers = cfg.Clients - writers
		if readers < 0 {
			readers = 0
		}
	}
	// Per-key populations: key i of the Registers picked keys gets wPer
	// (+1 for the first writers%Registers keys) writers, same for readers.
	maxWPerKey := writers / cfg.Registers
	if writers%cfg.Registers > 0 {
		maxWPerKey++
	}

	st, err := shardstore.Open(ctx, shardstore.Config{
		Shards: cfg.Shards, Engines: cfg.Engines, Keys: cfg.KeySpace,
		Kind: cfg.Kind, WritersPerKey: maxWPerKey, F: cfg.F, N: cfg.N,
		Atomic: cfg.Atomic, ValueSize: cfg.ValueSize,
		Lane: cfg.Lane, Profile: cfg.Profile,
		NodeAddrs: cfg.NodeAddrs, DialTimeout: cfg.DialTimeout,
		Seed: cfg.Seed, NoHistory: cfg.NoHistory,
		Mailbox: cfg.Mailbox, Coalesce: cfg.Coalesce,
	})
	if err != nil {
		return nil, err
	}
	defer st.Close()

	// Materialize the keys and their clients up front so construction cost
	// stays out of the measured window. Meters are per (shard, engine):
	// single-writer by key-affinity.
	meters := make([][]*meter, cfg.Shards)
	for s := range meters {
		meters[s] = make([]*meter, cfg.Engines)
		for e := range meters[s] {
			meters[s][e] = newMeter()
		}
	}
	keys := st.BalancedKeys(cfg.Registers)
	var writerPool, readerPool []worker
	totalK := 0
	for ki, key := range keys {
		m := meters[st.ShardOf(key)][st.EngineOf(key)]
		val := new(atomic.Int64)
		wHere := writers / cfg.Registers
		if ki < writers%cfg.Registers {
			wHere++
		}
		rHere := readers / cfg.Registers
		if ki < readers%cfg.Registers {
			rHere++
		}
		totalK += wHere
		for slot := 0; slot < wHere; slot++ {
			c, err := st.Writer(key, slot)
			if err != nil {
				return nil, err
			}
			writerPool = append(writerPool, worker{key: key, c: c, m: m, val: val})
		}
		for slot := 0; slot < rHere; slot++ {
			c, err := st.Reader(key, slot)
			if err != nil {
				return nil, err
			}
			readerPool = append(readerPool, worker{key: key, c: c, m: m})
		}
	}

	// The measurement window: completions are counted while counting is
	// set; the first MaxOps-crossing completion (or the duration timer)
	// clears it, and the drained tail is not measured. The window opens
	// only after every client's first op is enqueued (below) — on a fast
	// lane the engine loops can complete thousands of ops while this
	// goroutine is still starting workers (single-CPU scheduling), and a
	// small MaxOps would otherwise be spent before late shards' workers
	// exist. Stop halts issuance; counting alone gates recording.
	var counting atomic.Bool
	var totalDone atomic.Int64
	stopped := make(chan struct{})
	var stopOnce atomic.Bool
	stop := func() {
		if stopOnce.CompareAndSwap(false, true) {
			counting.Store(false)
			close(stopped)
		}
	}

	record := func(m *meter, write bool, start time.Time, err error) {
		if !counting.Load() {
			return
		}
		if err != nil {
			m.failed++
			return
		}
		lat := time.Since(start).Nanoseconds()
		m.all.Record(lat)
		if write {
			m.writeLat.Record(lat)
		} else {
			m.readLat.Record(lat)
		}
		m.done++
		if cfg.MaxOps > 0 && totalDone.Add(1) >= cfg.MaxOps {
			stop()
		}
	}

	if cfg.Mode == ModeClosed {
		// Completions arriving before the window opens recurse (keeping
		// the one-op-in-flight invariant) but are not recorded.
		for _, w := range writerPool {
			w := w
			var issue func()
			issue = func() {
				if stopOnce.Load() {
					return
				}
				start := time.Now()
				w.c.StartWrite(types.Value(w.val.Add(1)), func(err error) {
					record(w.m, true, start, err)
					issue()
				})
			}
			issue()
		}
		for _, w := range readerPool {
			w := w
			var issue func()
			issue = func() {
				if stopOnce.Load() {
					return
				}
				start := time.Now()
				w.c.StartRead(func(_ types.Value, err error) {
					record(w.m, false, start, err)
					issue()
				})
			}
			issue()
		}
	}
	counting.Store(true)
	started := time.Now()
	if cfg.Mode == ModeOpen {
		go pace(ctx, cfg, writerPool, readerPool, stopped, &counting, record)
	}

	select {
	case <-time.After(cfg.Duration):
	case <-stopped:
	case <-ctx.Done():
	}
	stop()
	elapsed := time.Since(started)

	// Drain the in-flight tail so histories are complete before checking.
	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := st.Drain(drainCtx); err != nil {
		return nil, fmt.Errorf("loadgen: draining engines: %w", err)
	}

	res := &Result{
		Kind:        string(cfg.Kind),
		Lane:        string(cfg.Lane),
		Mode:        string(cfg.Mode),
		Atomic:      cfg.Atomic,
		K:           totalK,
		F:           cfg.F,
		N:           cfg.N,
		Clients:     cfg.Clients,
		Writers:     writers,
		Readers:     readers,
		Registers:   len(keys),
		Shards:      cfg.Shards,
		Engines:     cfg.Engines,
		Procs:       runtime.GOMAXPROCS(0),
		Rate:        cfg.Rate,
		ValueSize:   cfg.ValueSize,
		DurationSec: elapsed.Seconds(),
	}
	res.BytesPerServer = st.PerServerBytes()
	res.TotalBytes = st.TotalBytes()
	perShardKeys := st.MaterializedKeys()
	all, wh, rh := stats.NewHistogram(), stats.NewHistogram(), stats.NewHistogram()
	for s := 0; s < cfg.Shards; s++ {
		shardAll := stats.NewHistogram()
		var stat ShardStat
		stat.Shard = s
		stat.Keys = perShardKeys[s]
		for _, m := range meters[s] {
			shardAll.Merge(m.all)
			wh.Merge(m.writeLat)
			rh.Merge(m.readLat)
			stat.Ops += m.done
			stat.Failed += m.failed
		}
		stat.Latency = summarize(shardAll)
		all.Merge(shardAll)
		res.PerShard = append(res.PerShard, stat)
		res.Ops += stat.Ops
		res.Failed += stat.Failed
	}
	for _, es := range st.EngineStats() {
		res.MaxInFlight += es.MaxInFlight
	}
	res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	res.Latency = summarize(all)
	res.WriteLatency = summarize(wh)
	res.ReadLatency = summarize(rh)

	if !cfg.NoHistory {
		res.Checked = true
		rep := st.CheckAll(cfg.SampleChecks, cfg.Seed)
		res.HistoryOps = rep.HistoryOps
		res.SampledOps = rep.SampledOps
		res.Violations = rep.Violations
	}
	return res, nil
}

// pace is the open-loop arrival process: arrival n is *scheduled* at
// base + n/Rate, and that intended time — not the moment the pacer loop
// reached it — is the timestamp its latency is measured from
// (coordinated-omission correction; see the package comment). Arrivals go
// onto round-robin clients with the read/write mix drawn per arrival,
// queueing behind busy clients rather than skipping them.
func pace(ctx context.Context, cfg Config, writers, readers []worker, stopped <-chan struct{}, counting *atomic.Bool, record func(*meter, bool, time.Time, error)) {
	rng := rand.New(rand.NewSource(seed.Sub(cfg.Seed, 99)))
	interval := float64(time.Second) / cfg.Rate
	base := time.Now()
	var issued int64
	var wIdx, rIdx int
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-stopped:
			return
		case <-t.C:
		}
		// Everything scheduled up to now is due; a late wakeup issues the
		// whole backlog, each op stamped with its own intended time.
		due := int64(float64(time.Since(base)) / interval)
		for ; issued < due; issued++ {
			if !counting.Load() {
				return
			}
			intended := base.Add(time.Duration(float64(issued) * interval))
			read := len(readers) > 0 && (len(writers) == 0 || rng.Float64() < cfg.ReadFraction)
			if read {
				w := readers[rIdx%len(readers)]
				rIdx++
				w.c.StartRead(func(_ types.Value, err error) { record(w.m, false, intended, err) })
			} else {
				w := writers[wIdx%len(writers)]
				wIdx++
				w.c.StartWrite(types.Value(w.val.Add(1)), func(err error) { record(w.m, true, intended, err) })
			}
		}
	}
}

// RateSweep runs the same open-loop configuration at each offered rate in
// turn — a fresh store per point, so queue state never leaks between rates
// — and returns one Result per rate: the latency-vs-offered-rate curve.
func RateSweep(ctx context.Context, cfg Config, rates []float64) ([]*Result, error) {
	cfg.Mode = ModeOpen
	out := make([]*Result, 0, len(rates))
	for _, r := range rates {
		cfg.Rate = r
		res, err := Run(ctx, cfg)
		if err != nil {
			return out, fmt.Errorf("loadgen: sweep at rate %.0f: %w", r, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// Knee returns the index of the last sweep point whose achieved throughput
// is at least 95% of its offered rate — the highest rate the store
// sustained before saturating; -1 when even the lowest offered rate was
// not sustained. Past this point the CO-corrected percentiles grow with
// the backlog rather than the service time.
func Knee(results []*Result) int {
	knee := -1
	for i, r := range results {
		if r.Rate > 0 && r.OpsPerSec >= 0.95*r.Rate {
			knee = i
		}
	}
	return knee
}
