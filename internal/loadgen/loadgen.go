// Package loadgen is the end-to-end workload driver: it measures what the
// emulated registers deliver to *clients* — high-level operations per
// second and completion latency — rather than the fabric's raw
// trigger throughput.
//
// A run builds a key-space of independent emulated registers on one shared
// cluster and fabric, drives configurable populations of writer and reader
// clients through the completion-based engine (internal/emulation/async; a
// single event-loop goroutine per register, no goroutine per op), and
// records every operation's latency into log-linear histograms
// (internal/stats). Two workload shapes are supported:
//
//   - closed loop: every client keeps exactly one operation in flight and
//     issues its next from the previous one's completion callback; total
//     in-flight concurrency equals the client population.
//   - open loop: a pacer issues operations at a fixed aggregate rate onto
//     round-robin clients regardless of completions; per-client
//     serialization queues excess arrivals, and latency includes the queue
//     wait, so the numbers degrade honestly under overload instead of
//     being coordinated-omission-blind.
//
// Runs are correctness-gated, not just speedometers: each register records
// its history, every run checks read validity, and atomic (read
// write-back) builds additionally check linearizability on sound samples
// of the history (spec.SampleLinearizable). Pure-throughput runs can opt
// out of recording (NoHistory) when billions of ops would not fit memory.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/emulation"
	"repro/internal/emulation/async"
	"repro/internal/fabric"
	"repro/internal/runner"
	"repro/internal/seed"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/types"
)

// Mode selects the workload shape.
type Mode string

// The two workload shapes.
const (
	// ModeClosed keeps one op in flight per client.
	ModeClosed Mode = "closed"
	// ModeOpen issues at a fixed aggregate rate.
	ModeOpen Mode = "open"
)

// DefaultProfile is the latency-lane delay distribution of load runs: a
// LAN-ish base with enough jitter to reorder quorum rounds and a rare
// straggler spike.
var DefaultProfile = fabric.LatencyProfile{
	Base:      100 * time.Microsecond,
	Jitter:    200 * time.Microsecond,
	SpikeProb: 0.01,
	Spike:     2 * time.Millisecond,
}

// Config parameterizes a load run.
type Config struct {
	// Kind is the construction; K defaults to the writer population per
	// register, F to 1, N to the construction's chaos server count.
	Kind runner.Kind
	F, N int
	// Atomic builds the read write-back variant (abd-max/abd-cas only),
	// which is what enables the linearizability gate.
	Atomic bool

	// Clients is the total logical client population; ReadFraction of it
	// become readers, the rest writers (at least one writer per
	// register). Registers shards the population over that many
	// independent emulated registers (the key-space), each with its own
	// async engine loop.
	Clients      int
	ReadFraction float64
	Registers    int

	// Mode and Rate shape the workload; Rate (ops/sec, aggregate) is
	// only used by ModeOpen.
	Mode Mode
	Rate float64

	// Duration bounds the measured run; MaxOps (0 = unlimited)
	// additionally stops after that many completed operations —
	// keeping recorded histories bounded.
	Duration time.Duration
	MaxOps   int64

	// Lane selects the dispatch backend (runner.LaneInProc default, or
	// runner.LaneLatency with Profile); Seed drives the lane delays and
	// the open-loop mix.
	Lane    runner.Lane
	Profile *fabric.LatencyProfile
	Seed    int64

	// NoHistory disables history recording (and therefore all checks):
	// the pure-throughput mode.
	NoHistory bool
	// SampleChecks is how many independent linearizability samples to
	// check per register on atomic builds (default 4).
	SampleChecks int

	// Mailbox overrides the latency lanes' event-loop mailbox capacity
	// (0 = fabric default); Coalesce widens their fire window so more
	// queued reads merge per pass (0 = fire exactly on schedule). Both
	// only apply to LaneLatency — the knobs loadgen sweeps use to find
	// the batching knee.
	Mailbox  int
	Coalesce time.Duration
}

// Latency summarizes one histogram in nanoseconds.
type Latency struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean_ns"`
	P50  int64   `json:"p50_ns"`
	P90  int64   `json:"p90_ns"`
	P99  int64   `json:"p99_ns"`
	Max  int64   `json:"max_ns"`
}

func summarize(h *stats.Histogram) Latency {
	return Latency{
		N:    h.Count(),
		Mean: h.Mean(),
		P50:  h.Quantile(0.50),
		P90:  h.Quantile(0.90),
		P99:  h.Quantile(0.99),
		Max:  h.Max(),
	}
}

// Result is one run's report, shaped for JSON snapshots.
type Result struct {
	Kind      string  `json:"kind"`
	Lane      string  `json:"lane"`
	Mode      string  `json:"mode"`
	Atomic    bool    `json:"atomic"`
	K         int     `json:"k"`
	F         int     `json:"f"`
	N         int     `json:"n"`
	Clients   int     `json:"clients"`
	Writers   int     `json:"writers"`
	Readers   int     `json:"readers"`
	Registers int     `json:"registers"`
	Rate      float64 `json:"rate,omitempty"`

	DurationSec float64 `json:"duration_sec"`
	Ops         int64   `json:"ops"`
	Failed      int64   `json:"failed"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	// MaxInFlight sums the per-register engines' peak concurrency (exact
	// when Registers == 1).
	MaxInFlight int64 `json:"max_in_flight"`

	Latency      Latency `json:"latency"`
	WriteLatency Latency `json:"write_latency"`
	ReadLatency  Latency `json:"read_latency"`

	// Checked reports whether consistency was verified; HistoryOps is the
	// total recorded high-level ops, SampledOps how many the
	// linearizability samples covered, and Violations any checker
	// failures (empty on a healthy run).
	Checked    bool     `json:"checked"`
	HistoryOps int      `json:"history_ops"`
	SampledOps int      `json:"sampled_ops"`
	Violations []string `json:"violations,omitempty"`
}

// shard is one register of the key-space with its clients and meters.
type shard struct {
	reg     *runnerReg
	eng     *async.Engine
	writers []*async.Client
	readers []*async.Client

	nextVal atomic.Int64

	// Owned by the shard's engine loop.
	all       *stats.Histogram
	writeLat  *stats.Histogram
	readLat   *stats.Histogram
	completed atomic.Int64
	failed    atomic.Int64
}

// runnerReg pairs a built register with its history.
type runnerReg struct {
	k    int
	hist *spec.History
}

// Run executes one load run.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("loadgen: need at least one client, got %d", cfg.Clients)
	}
	if cfg.Registers <= 0 {
		cfg.Registers = 1
	}
	if cfg.Registers > cfg.Clients {
		return nil, fmt.Errorf("loadgen: %d registers need at least as many clients, got %d", cfg.Registers, cfg.Clients)
	}
	if cfg.ReadFraction < 0 || cfg.ReadFraction > 1 {
		return nil, fmt.Errorf("loadgen: read fraction %v outside [0,1]", cfg.ReadFraction)
	}
	if cfg.Mode == "" {
		cfg.Mode = ModeClosed
	}
	if cfg.Mode == ModeOpen && cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: open loop needs a positive rate")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.F <= 0 {
		cfg.F = 1
	}
	if cfg.N <= 0 {
		cfg.N = runner.ChaosServers(cfg.Kind)
		if cfg.F > 1 {
			cfg.N = 2*cfg.F + 1
			if cfg.Kind == runner.KindRegEmu {
				cfg.N = 3*cfg.F + 1
			}
		}
	}
	if cfg.SampleChecks <= 0 {
		cfg.SampleChecks = 4
	}

	readers := int(float64(cfg.Clients)*cfg.ReadFraction + 0.5)
	writers := cfg.Clients - readers
	if writers < cfg.Registers {
		// Every register needs a writer population (K >= 1).
		writers = cfg.Registers
		readers = cfg.Clients - writers
		if readers < 0 {
			readers = 0
		}
	}

	var laneOpts []fabric.Option
	switch cfg.Lane {
	case "", runner.LaneInProc:
		cfg.Lane = runner.LaneInProc
	case runner.LaneLatency:
		profile := DefaultProfile
		if cfg.Profile != nil {
			profile = *cfg.Profile
		}
		var latOpts []fabric.LatencyOption
		if cfg.Mailbox > 0 {
			latOpts = append(latOpts, fabric.WithMailboxCapacity(cfg.Mailbox))
		}
		if cfg.Coalesce > 0 {
			latOpts = append(latOpts, fabric.WithCoalesceWindow(cfg.Coalesce))
		}
		laneOpts = append(laneOpts, fabric.WithLanes(fabric.LatencyLanes(seed.Sub(cfg.Seed, 0), profile, latOpts...)))
	default:
		return nil, fmt.Errorf("loadgen: unknown lane %q", cfg.Lane)
	}
	env, err := runner.NewEnv(cfg.N, nil, laneOpts...)
	if err != nil {
		return nil, err
	}

	// Build the key-space and distribute the populations.
	shards := make([]*shard, cfg.Registers)
	engCtx, engCancel := context.WithCancel(ctx)
	defer engCancel()
	for s := range shards {
		wHere := writers / cfg.Registers
		if s < writers%cfg.Registers {
			wHere++
		}
		rHere := readers / cfg.Registers
		if s < readers%cfg.Registers {
			rHere++
		}
		built, h, err := buildShard(cfg, env.Fabric, wHere)
		if err != nil {
			return nil, err
		}
		if cfg.NoHistory {
			h.SetDiscard(true)
		}
		sh := &shard{
			reg:      &runnerReg{k: wHere, hist: h},
			eng:      async.New(built, async.WithContext(engCtx)),
			all:      stats.NewHistogram(),
			writeLat: stats.NewHistogram(),
			readLat:  stats.NewHistogram(),
		}
		for i := 0; i < wHere; i++ {
			c, err := sh.eng.Writer(i)
			if err != nil {
				return nil, err
			}
			sh.writers = append(sh.writers, c)
		}
		for i := 0; i < rHere; i++ {
			sh.readers = append(sh.readers, sh.eng.NewReader())
		}
		shards[s] = sh
	}
	defer func() {
		for _, sh := range shards {
			sh.eng.Close()
		}
	}()

	// The measurement window: completions are counted while counting is
	// set; the first MaxOps-crossing completion (or the duration timer)
	// clears it, and the drained tail is not measured.
	var counting atomic.Bool
	counting.Store(true)
	var totalDone atomic.Int64
	stopped := make(chan struct{})
	var stopOnce atomic.Bool
	stop := func() {
		if stopOnce.CompareAndSwap(false, true) {
			counting.Store(false)
			close(stopped)
		}
	}

	record := func(sh *shard, write bool, start time.Time, err error) {
		if !counting.Load() {
			return
		}
		if err != nil {
			sh.failed.Add(1)
			return
		}
		lat := time.Since(start).Nanoseconds()
		sh.all.Record(lat)
		if write {
			sh.writeLat.Record(lat)
		} else {
			sh.readLat.Record(lat)
		}
		sh.completed.Add(1)
		if cfg.MaxOps > 0 && totalDone.Add(1) >= cfg.MaxOps {
			stop()
		}
	}

	started := time.Now()
	switch cfg.Mode {
	case ModeClosed:
		for _, sh := range shards {
			sh := sh
			for _, c := range sh.writers {
				c := c
				var issue func()
				issue = func() {
					if !counting.Load() {
						return
					}
					start := time.Now()
					c.StartWrite(types.Value(sh.nextVal.Add(1)), func(err error) {
						record(sh, true, start, err)
						issue()
					})
				}
				issue()
			}
			for _, c := range sh.readers {
				c := c
				var issue func()
				issue = func() {
					if !counting.Load() {
						return
					}
					start := time.Now()
					c.StartRead(func(_ types.Value, err error) {
						record(sh, false, start, err)
						issue()
					})
				}
				issue()
			}
		}
	case ModeOpen:
		go pace(ctx, cfg, shards, stopped, &counting, record)
	default:
		return nil, fmt.Errorf("loadgen: unknown mode %q", cfg.Mode)
	}

	select {
	case <-time.After(cfg.Duration):
	case <-stopped:
	case <-ctx.Done():
	}
	stop()
	elapsed := time.Since(started)

	// Drain the in-flight tail so histories are complete before checking.
	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	for _, sh := range shards {
		if err := sh.eng.Drain(drainCtx); err != nil {
			return nil, fmt.Errorf("loadgen: draining register engine: %w", err)
		}
	}

	res := &Result{
		Kind:        string(cfg.Kind),
		Lane:        string(cfg.Lane),
		Mode:        string(cfg.Mode),
		Atomic:      cfg.Atomic,
		F:           cfg.F,
		N:           cfg.N,
		Clients:     cfg.Clients,
		Writers:     writers,
		Readers:     readers,
		Registers:   cfg.Registers,
		Rate:        cfg.Rate,
		DurationSec: elapsed.Seconds(),
	}
	all, wh, rh := stats.NewHistogram(), stats.NewHistogram(), stats.NewHistogram()
	for _, sh := range shards {
		res.K += sh.reg.k
		res.Ops += sh.completed.Load()
		res.Failed += sh.failed.Load()
		res.MaxInFlight += sh.eng.Stats().MaxInFlight
		all.Merge(sh.all)
		wh.Merge(sh.writeLat)
		rh.Merge(sh.readLat)
	}
	res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	res.Latency = summarize(all)
	res.WriteLatency = summarize(wh)
	res.ReadLatency = summarize(rh)

	if !cfg.NoHistory {
		res.Checked = true
		for _, sh := range shards {
			ops := sh.reg.hist.Snapshot()
			res.HistoryOps += len(ops)
			if err := spec.CheckReadValidity(ops, types.InitialValue); err != nil {
				res.Violations = append(res.Violations, err.Error())
			}
			if cfg.Atomic {
				for chk := 0; chk < cfg.SampleChecks; chk++ {
					sample := spec.SampleLinearizable(ops, 1024, seed.Sub(cfg.Seed, uint64(chk+1)))
					res.SampledOps += len(sample)
					if err := spec.CheckLinearizable(sample, types.InitialValue); err != nil {
						res.Violations = append(res.Violations, err.Error())
					}
				}
			}
		}
	}
	return res, nil
}

// buildShard builds one register of the key-space.
func buildShard(cfg Config, fab *fabric.Fabric, k int) (emulation.Register, *spec.History, error) {
	if cfg.Atomic {
		return runner.BuildAtomic(cfg.Kind, fab, k, cfg.F)
	}
	return runner.Build(cfg.Kind, fab, k, cfg.F)
}

// pace is the open-loop arrival process: issue ops at cfg.Rate aggregate
// onto round-robin clients (the mix drawn per arrival), queueing behind
// busy clients rather than skipping them.
func pace(ctx context.Context, cfg Config, shards []*shard, stopped <-chan struct{}, counting *atomic.Bool, record func(*shard, bool, time.Time, error)) {
	rng := rand.New(rand.NewSource(seed.Sub(cfg.Seed, 99)))
	const tick = time.Millisecond
	perTick := cfg.Rate * tick.Seconds()
	var carry float64
	var wIdx, rIdx int
	var writersAll []struct {
		sh *shard
		c  *async.Client
	}
	var readersAll []struct {
		sh *shard
		c  *async.Client
	}
	for _, sh := range shards {
		for _, c := range sh.writers {
			writersAll = append(writersAll, struct {
				sh *shard
				c  *async.Client
			}{sh, c})
		}
		for _, c := range sh.readers {
			readersAll = append(readersAll, struct {
				sh *shard
				c  *async.Client
			}{sh, c})
		}
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-stopped:
			return
		case <-t.C:
		}
		carry += perTick
		for ; carry >= 1; carry-- {
			if !counting.Load() {
				return
			}
			read := len(readersAll) > 0 && (len(writersAll) == 0 || rng.Float64() < cfg.ReadFraction)
			start := time.Now()
			if read {
				e := readersAll[rIdx%len(readersAll)]
				rIdx++
				e.c.StartRead(func(_ types.Value, err error) { record(e.sh, false, start, err) })
			} else {
				e := writersAll[wIdx%len(writersAll)]
				wIdx++
				e.c.StartWrite(types.Value(e.sh.nextVal.Add(1)), func(err error) { record(e.sh, true, start, err) })
			}
		}
	}
}
