package loadgen

import (
	"context"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/runner"
)

// testProfile keeps test runs fast while still exercising asynchronous
// completion.
var testProfile = fabric.LatencyProfile{Base: 500 * time.Microsecond, Jitter: 500 * time.Microsecond}

// TestClosedLoopInProc is the smallest end-to-end run: closed loop on the
// synchronous lane, atomic build, every check green.
func TestClosedLoopInProc(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Kind:         runner.KindABDMax,
		Atomic:       true,
		Clients:      16,
		ReadFraction: 0.5,
		Duration:     time.Second,
		MaxOps:       3000,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops < 3000 {
		t.Fatalf("ops = %d, want >= 3000 (MaxOps-bounded run)", res.Ops)
	}
	if res.Failed != 0 {
		t.Fatalf("failed ops: %d", res.Failed)
	}
	if !res.Checked || len(res.Violations) != 0 {
		t.Fatalf("checks: checked=%v violations=%v", res.Checked, res.Violations)
	}
	if res.SampledOps == 0 {
		t.Fatal("atomic run sampled no ops for linearizability")
	}
	if res.Latency.N != res.Ops {
		t.Fatalf("latency histogram has %d samples for %d ops", res.Latency.N, res.Ops)
	}
	if res.WriteLatency.N+res.ReadLatency.N != res.Ops {
		t.Fatalf("per-kind histograms (%d + %d) do not cover %d ops",
			res.WriteLatency.N, res.ReadLatency.N, res.Ops)
	}
}

// TestClosedLoopConcurrency checks the subsystem's headline property on the
// latency lane: in-flight concurrency equals the client population.
func TestClosedLoopConcurrency(t *testing.T) {
	const clients = 120
	profile := fabric.LatencyProfile{Base: 2 * time.Millisecond, Jitter: time.Millisecond}
	res, err := Run(context.Background(), Config{
		Kind:         runner.KindABDMax,
		Atomic:       true,
		Clients:      clients,
		ReadFraction: 0.5,
		Lane:         runner.LaneLatency,
		Profile:      &profile,
		Duration:     400 * time.Millisecond,
		Seed:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxInFlight < clients*9/10 {
		t.Fatalf("peak in-flight = %d, want ~%d (closed loop)", res.MaxInFlight, clients)
	}
	if res.Failed != 0 || len(res.Violations) != 0 {
		t.Fatalf("failed=%d violations=%v", res.Failed, res.Violations)
	}
	if res.Latency.P50 < time.Millisecond.Nanoseconds() {
		t.Fatalf("p50 latency %v below the lane's base delay", time.Duration(res.Latency.P50))
	}
}

// TestOpenLoop paces arrivals at a fixed rate and checks the measured
// throughput tracks it.
func TestOpenLoop(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Kind:         runner.KindRegEmu,
		Clients:      32,
		ReadFraction: 0.5,
		Mode:         ModeOpen,
		Rate:         2000,
		Lane:         runner.LaneLatency,
		Profile:      &testProfile,
		Duration:     500 * time.Millisecond,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Loose bounds: the pacer must neither stall nor run away.
	if res.Ops < 300 {
		t.Fatalf("open loop completed only %d ops at rate 2000 over 500ms", res.Ops)
	}
	if res.OpsPerSec > 4000 {
		t.Fatalf("open loop overshot: %.0f ops/sec at rate 2000", res.OpsPerSec)
	}
	if res.Failed != 0 || len(res.Violations) != 0 {
		t.Fatalf("failed=%d violations=%v", res.Failed, res.Violations)
	}
}

// TestRegisterSharding spreads clients over a key-space of registers.
func TestRegisterSharding(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Kind:         runner.KindCASMax,
		Atomic:       true,
		Clients:      24,
		ReadFraction: 0.5,
		Registers:    4,
		Duration:     time.Second,
		MaxOps:       2000,
		Seed:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Registers != 4 {
		t.Fatalf("registers = %d", res.Registers)
	}
	if res.Ops < 2000 || res.Failed != 0 || len(res.Violations) != 0 {
		t.Fatalf("ops=%d failed=%d violations=%v", res.Ops, res.Failed, res.Violations)
	}
	if res.HistoryOps < int(res.Ops) {
		t.Fatalf("histories recorded %d ops for %d completed", res.HistoryOps, res.Ops)
	}
}

// TestShardedRun spreads the key-space over several shards and engines:
// every shard must carry load, the per-shard breakdown must tile the
// totals, and the cross-shard histories must stay clean. MaxOps must span
// many scheduler quanta: on the in-process lane a busy engine loop burns
// ~3000 ops per ~10ms time slice without yielding, so a budget that small
// can be spent entirely by one engine's keys before the other engine runs
// at all on a single-CPU machine, leaving its shards unrecorded.
func TestShardedRun(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Kind:         runner.KindABDMax,
		Atomic:       true,
		Clients:      24,
		ReadFraction: 0.5,
		Registers:    6,
		Shards:       3,
		Engines:      2,
		Duration:     2 * time.Second,
		MaxOps:       60000,
		Seed:         6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 3 || res.Engines != 2 || len(res.PerShard) != 3 {
		t.Fatalf("shards=%d engines=%d per-shard=%d", res.Shards, res.Engines, len(res.PerShard))
	}
	var ops, n int64
	for _, sh := range res.PerShard {
		if sh.Ops == 0 || sh.Keys == 0 {
			t.Fatalf("shard %d idle: %+v", sh.Shard, sh)
		}
		ops += sh.Ops
		n += sh.Latency.N
	}
	if ops != res.Ops || n != res.Latency.N {
		t.Fatalf("per-shard ops %d / samples %d do not tile totals %d / %d", ops, n, res.Ops, res.Latency.N)
	}
	if res.Failed != 0 || len(res.Violations) != 0 {
		t.Fatalf("failed=%d violations=%v", res.Failed, res.Violations)
	}
}

// TestOpenLoopCoordinatedOmission overloads a slow lane far past its
// capacity: with intended-send-time stamping the measured tail must carry
// the backlog's wait (far above the lane's service time), which issue-time
// stamping would have silently omitted.
func TestOpenLoopCoordinatedOmission(t *testing.T) {
	base := time.Millisecond
	profile := fabric.LatencyProfile{Base: base, Jitter: 100 * time.Microsecond}
	res, err := Run(context.Background(), Config{
		Kind:         runner.KindABDMax,
		Clients:      4,
		ReadFraction: 0.5,
		Mode:         ModeOpen,
		Rate:         10_000, // capacity is ~clients/base = ~4k ops/sec
		Lane:         runner.LaneLatency,
		Profile:      &profile,
		Duration:     250 * time.Millisecond,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("overloaded run completed nothing")
	}
	if p99 := time.Duration(res.Latency.P99); p99 < 10*base {
		t.Fatalf("overload p99 = %v, want >> service time %v: backlog wait omitted", p99, base)
	}
	if res.Failed != 0 || len(res.Violations) != 0 {
		t.Fatalf("failed=%d violations=%v", res.Failed, res.Violations)
	}
}

// TestRateSweepKnee sweeps a sustained and a saturating offered rate and
// checks Knee lands on the sustained one.
func TestRateSweepKnee(t *testing.T) {
	profile := fabric.LatencyProfile{Base: 500 * time.Microsecond, Jitter: 100 * time.Microsecond}
	results, err := RateSweep(context.Background(), Config{
		Kind:         runner.KindABDMax,
		Clients:      8,
		ReadFraction: 0.5,
		Lane:         runner.LaneLatency,
		Profile:      &profile,
		Duration:     200 * time.Millisecond,
		Seed:         8,
	}, []float64{1000, 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("sweep returned %d points", len(results))
	}
	if results[0].OpsPerSec < 950 {
		t.Fatalf("sustained point achieved %.0f of 1000 offered", results[0].OpsPerSec)
	}
	if results[1].OpsPerSec >= 0.95*100_000 {
		t.Fatalf("saturating point achieved %.0f of 100000 offered on 8 clients", results[1].OpsPerSec)
	}
	if k := Knee(results); k != 0 {
		t.Fatalf("knee = %d, want 0", k)
	}
	if k := Knee(nil); k != -1 {
		t.Fatalf("knee of empty sweep = %d, want -1", k)
	}
}

// TestNoHistoryMode skips recording and checking.
func TestNoHistoryMode(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Kind:      runner.KindNaive,
		Clients:   8,
		Duration:  time.Second,
		MaxOps:    500,
		NoHistory: true,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checked || res.HistoryOps != 0 {
		t.Fatalf("no-history run recorded: checked=%v historyOps=%d", res.Checked, res.HistoryOps)
	}
	if res.Ops < 500 {
		t.Fatalf("ops = %d", res.Ops)
	}
}

// TestConfigValidation rejects malformed configs.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Kind: runner.KindABDMax, Clients: 0},
		{Kind: runner.KindABDMax, Clients: 4, Registers: 8},
		{Kind: runner.KindABDMax, Clients: 4, ReadFraction: 1.5},
		{Kind: runner.KindABDMax, Clients: 4, Mode: ModeOpen},
		{Kind: runner.KindABDMax, Clients: 4, Lane: "bogus"},
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestCodedSpaceAxis runs the coded construction through the full load path
// and checks the space axis: every touched server stores strictly less than
// a replicated copy per register, and a matched replicated run stores more
// in total.
func TestCodedSpaceAxis(t *testing.T) {
	const size = 4096
	coded, err := Run(context.Background(), Config{
		Kind:         runner.KindCoded,
		ValueSize:    size,
		Clients:      8,
		ReadFraction: 0.5,
		Registers:    2,
		Duration:     time.Second,
		MaxOps:       400,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if coded.Failed != 0 || len(coded.Violations) != 0 {
		t.Fatalf("coded run: failed=%d violations=%v", coded.Failed, coded.Violations)
	}
	if coded.N != 5 {
		t.Fatalf("coded N = %d, want the chaos default 5", coded.N)
	}
	if coded.ValueSize != size {
		t.Fatalf("result value size = %d, want %d", coded.ValueSize, size)
	}
	if coded.TotalBytes == 0 {
		t.Fatal("coded run stored no bytes")
	}
	// Two registers, each fragment is ceil(size/3) rounded into the coder:
	// no server may hold two full copies.
	for s, b := range coded.BytesPerServer {
		if b >= 2*size {
			t.Errorf("server %d stores %d bytes, not less than %d (replication)", s, b, 2*size)
		}
	}

	replicated, err := Run(context.Background(), Config{
		Kind:         runner.KindABDMax,
		ValueSize:    size,
		Clients:      8,
		ReadFraction: 0.5,
		Registers:    2,
		Duration:     time.Second,
		MaxOps:       400,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if replicated.TotalBytes <= coded.TotalBytes {
		t.Errorf("replicated stores %d bytes, coded %d: striping should win",
			replicated.TotalBytes, coded.TotalBytes)
	}
}
