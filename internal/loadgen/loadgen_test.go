package loadgen

import (
	"context"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/runner"
)

// testProfile keeps test runs fast while still exercising asynchronous
// completion.
var testProfile = fabric.LatencyProfile{Base: 500 * time.Microsecond, Jitter: 500 * time.Microsecond}

// TestClosedLoopInProc is the smallest end-to-end run: closed loop on the
// synchronous lane, atomic build, every check green.
func TestClosedLoopInProc(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Kind:         runner.KindABDMax,
		Atomic:       true,
		Clients:      16,
		ReadFraction: 0.5,
		Duration:     time.Second,
		MaxOps:       3000,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops < 3000 {
		t.Fatalf("ops = %d, want >= 3000 (MaxOps-bounded run)", res.Ops)
	}
	if res.Failed != 0 {
		t.Fatalf("failed ops: %d", res.Failed)
	}
	if !res.Checked || len(res.Violations) != 0 {
		t.Fatalf("checks: checked=%v violations=%v", res.Checked, res.Violations)
	}
	if res.SampledOps == 0 {
		t.Fatal("atomic run sampled no ops for linearizability")
	}
	if res.Latency.N != res.Ops {
		t.Fatalf("latency histogram has %d samples for %d ops", res.Latency.N, res.Ops)
	}
	if res.WriteLatency.N+res.ReadLatency.N != res.Ops {
		t.Fatalf("per-kind histograms (%d + %d) do not cover %d ops",
			res.WriteLatency.N, res.ReadLatency.N, res.Ops)
	}
}

// TestClosedLoopConcurrency checks the subsystem's headline property on the
// latency lane: in-flight concurrency equals the client population.
func TestClosedLoopConcurrency(t *testing.T) {
	const clients = 120
	profile := fabric.LatencyProfile{Base: 2 * time.Millisecond, Jitter: time.Millisecond}
	res, err := Run(context.Background(), Config{
		Kind:         runner.KindABDMax,
		Atomic:       true,
		Clients:      clients,
		ReadFraction: 0.5,
		Lane:         runner.LaneLatency,
		Profile:      &profile,
		Duration:     400 * time.Millisecond,
		Seed:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxInFlight < clients*9/10 {
		t.Fatalf("peak in-flight = %d, want ~%d (closed loop)", res.MaxInFlight, clients)
	}
	if res.Failed != 0 || len(res.Violations) != 0 {
		t.Fatalf("failed=%d violations=%v", res.Failed, res.Violations)
	}
	if res.Latency.P50 < time.Millisecond.Nanoseconds() {
		t.Fatalf("p50 latency %v below the lane's base delay", time.Duration(res.Latency.P50))
	}
}

// TestOpenLoop paces arrivals at a fixed rate and checks the measured
// throughput tracks it.
func TestOpenLoop(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Kind:         runner.KindRegEmu,
		Clients:      32,
		ReadFraction: 0.5,
		Mode:         ModeOpen,
		Rate:         2000,
		Lane:         runner.LaneLatency,
		Profile:      &testProfile,
		Duration:     500 * time.Millisecond,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Loose bounds: the pacer must neither stall nor run away.
	if res.Ops < 300 {
		t.Fatalf("open loop completed only %d ops at rate 2000 over 500ms", res.Ops)
	}
	if res.OpsPerSec > 4000 {
		t.Fatalf("open loop overshot: %.0f ops/sec at rate 2000", res.OpsPerSec)
	}
	if res.Failed != 0 || len(res.Violations) != 0 {
		t.Fatalf("failed=%d violations=%v", res.Failed, res.Violations)
	}
}

// TestRegisterSharding spreads clients over a key-space of registers.
func TestRegisterSharding(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Kind:         runner.KindCASMax,
		Atomic:       true,
		Clients:      24,
		ReadFraction: 0.5,
		Registers:    4,
		Duration:     time.Second,
		MaxOps:       2000,
		Seed:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Registers != 4 {
		t.Fatalf("registers = %d", res.Registers)
	}
	if res.Ops < 2000 || res.Failed != 0 || len(res.Violations) != 0 {
		t.Fatalf("ops=%d failed=%d violations=%v", res.Ops, res.Failed, res.Violations)
	}
	if res.HistoryOps < int(res.Ops) {
		t.Fatalf("histories recorded %d ops for %d completed", res.HistoryOps, res.Ops)
	}
}

// TestNoHistoryMode skips recording and checking.
func TestNoHistoryMode(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Kind:      runner.KindNaive,
		Clients:   8,
		Duration:  time.Second,
		MaxOps:    500,
		NoHistory: true,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checked || res.HistoryOps != 0 {
		t.Fatalf("no-history run recorded: checked=%v historyOps=%d", res.Checked, res.HistoryOps)
	}
	if res.Ops < 500 {
		t.Fatalf("ops = %d", res.Ops)
	}
}

// TestConfigValidation rejects malformed configs.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Kind: runner.KindABDMax, Clients: 0},
		{Kind: runner.KindABDMax, Clients: 4, Registers: 8},
		{Kind: runner.KindABDMax, Clients: 4, ReadFraction: 1.5},
		{Kind: runner.KindABDMax, Clients: 4, Mode: ModeOpen},
		{Kind: runner.KindABDMax, Clients: 4, Lane: "bogus"},
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
