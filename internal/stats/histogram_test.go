package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestBucketMonotone checks the bucket index is monotone and the midpoint
// stays inside the bucket's value range.
func TestBucketMonotone(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 15, 16, 17, 31, 32, 63, 64, 100, 1000, 1 << 20, 1 << 40, 1 << 55} {
		idx := bucketOf(v)
		if idx < prev {
			t.Fatalf("bucketOf(%d) = %d < previous %d", v, idx, prev)
		}
		prev = idx
		mid := bucketMid(idx)
		// The midpoint must be within a factor bounded by the sub-bucket
		// width of v.
		if v > 0 {
			ratio := float64(mid) / float64(v)
			if ratio < 0.9 || ratio > 1.1 {
				t.Fatalf("bucketMid(bucketOf(%d)) = %d, off by %.2fx", v, mid, ratio)
			}
		}
	}
}

// TestHistogramQuantiles compares histogram quantiles against exact
// order-statistics of a log-normal-ish sample.
func TestHistogramQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewHistogram()
	var sample []float64
	for i := 0; i < 20000; i++ {
		v := int64(math.Exp(rng.NormFloat64()*1.5+10)) + rng.Int63n(1000)
		h.Record(v)
		sample = append(sample, float64(v))
	}
	sort.Float64s(sample)
	for _, p := range []float64{0.5, 0.9, 0.99} {
		exact := Percentile(sample, p)
		got := float64(h.Quantile(p))
		if rel := math.Abs(got-exact) / exact; rel > 0.08 {
			t.Fatalf("p%.0f: histogram %v vs exact %v (%.1f%% off)", p*100, got, exact, rel*100)
		}
	}
	if h.Count() != 20000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Quantile(0) < h.Min() || h.Quantile(1) > h.Max() {
		t.Fatalf("quantiles escape [min,max]: q0=%d min=%d q1=%d max=%d", h.Quantile(0), h.Min(), h.Quantile(1), h.Max())
	}
}

// TestHistogramMerge folds two histograms and checks totals.
func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(1); i <= 100; i++ {
		a.Record(i)
		b.Record(i * 1000)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 1 || a.Max() != 100000 {
		t.Fatalf("merged min/max = %d/%d", a.Min(), a.Max())
	}
	empty := NewHistogram()
	empty.Merge(a)
	if empty.Count() != 200 || empty.Min() != 1 {
		t.Fatalf("merge into empty: count=%d min=%d", empty.Count(), empty.Min())
	}
}

// TestHistogramMergeMismatchedRanges merges histograms whose populated
// ranges do not overlap — the per-shard case, where one shard's latencies
// sit orders of magnitude away from another's — and checks the merged
// quantiles land in the correct source range, the fold is symmetric, and
// moments fold exactly.
func TestHistogramMergeMismatchedRanges(t *testing.T) {
	low, high := NewHistogram(), NewHistogram()
	for i := int64(0); i < 1000; i++ {
		low.Record(1_000 + i)           // ~1us range
		high.Record(50_000_000 + i*500) // ~50ms range
	}

	merged := NewHistogram()
	merged.Merge(low)
	merged.Merge(high)
	reversed := NewHistogram()
	reversed.Merge(high)
	reversed.Merge(low)

	for _, m := range []*Histogram{merged, reversed} {
		if m.Count() != 2000 {
			t.Fatalf("merged count = %d", m.Count())
		}
		if m.Min() != low.Min() || m.Max() != high.Max() {
			t.Fatalf("merged min/max = %d/%d, want %d/%d", m.Min(), m.Max(), low.Min(), high.Max())
		}
		if m.Sum() != low.Sum()+high.Sum() {
			t.Fatalf("merged sum = %d, want %d", m.Sum(), low.Sum()+high.Sum())
		}
		// Below the 50% point every observation is from the low range;
		// above it, from the high range. Quantiles must not blend across
		// the empty gap between the populated ranges.
		if q := m.Quantile(0.25); q > 2*low.Max() {
			t.Fatalf("p25 = %d escaped the low range (max %d)", q, low.Max())
		}
		if q := m.Quantile(0.75); q < high.Min()/2 {
			t.Fatalf("p75 = %d escaped the high range (min %d)", q, high.Min())
		}
	}
	if merged.Quantile(0.5) != reversed.Quantile(0.5) || merged.Quantile(0.99) != reversed.Quantile(0.99) {
		t.Fatal("merge is order-sensitive")
	}

	// Merging an empty histogram is the identity, in both directions.
	before := merged.String()
	merged.Merge(NewHistogram())
	if merged.String() != before || merged.Min() != low.Min() {
		t.Fatalf("merging empty changed the histogram: %s -> %s", before, merged.String())
	}
	ontoEmpty := NewHistogram()
	ontoEmpty.Merge(high)
	if ontoEmpty.Count() != 1000 || ontoEmpty.Min() != high.Min() || ontoEmpty.Max() != high.Max() {
		t.Fatalf("merge onto empty: n=%d min=%d max=%d", ontoEmpty.Count(), ontoEmpty.Min(), ontoEmpty.Max())
	}
}

// TestHistogramEmpty checks the zero-observation behavior.
func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}
