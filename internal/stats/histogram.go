package stats

import (
	"fmt"
	"math/bits"
	"time"
)

// histSubBits sets the histogram's resolution: each power-of-two range is
// split into 2^histSubBits linear sub-buckets, bounding the relative
// quantile error by 2^-histSubBits (~6%).
const histSubBits = 4

// histBuckets covers int64 values up to 2^62 at the resolution above.
const histBuckets = (64 - histSubBits) << histSubBits

// Histogram is a log-linear (HDR-style) histogram of non-negative int64
// observations — latencies in nanoseconds, typically. Recording is a
// constant-time array increment with no allocation, so the load generator
// can record every single operation instead of sampling. A Histogram is
// NOT safe for concurrent use: record from one goroutine (the async
// engine's loop, in the loadgen) or merge per-worker histograms.
type Histogram struct {
	counts [histBuckets]uint64
	count  int64
	sum    int64
	min    int64
	max    int64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{min: -1} }

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v < 1<<histSubBits {
		return int(v)
	}
	shift := bits.Len64(uint64(v)) - histSubBits - 1
	return shift<<histSubBits + int(v>>shift)
}

// bucketMid returns a representative (midpoint) value for a bucket.
func bucketMid(idx int) int64 {
	if idx < 1<<histSubBits {
		return int64(idx)
	}
	shift := idx>>histSubBits - 1
	base := int64(idx-shift<<histSubBits) << shift
	return base + int64(1<<shift)/2
}

// Record adds one observation; negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.count++
	h.sum += v
	if h.min < 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() int64 {
	if h.min < 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an approximation of the p-quantile (p in [0,1]), exact
// for values below 2^histSubBits and within ~6% relative error above. The
// reported value is clamped into [Min, Max].
func (h *Histogram) Quantile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := int64(p * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen int64
	for idx, c := range h.counts {
		seen += int64(c)
		if seen > target {
			v := bucketMid(idx)
			if v < h.Min() {
				v = h.Min()
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge folds another histogram into this one.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.count > 0 && (h.min < 0 || (o.min >= 0 && o.min < h.min)) {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// String implements fmt.Stringer with duration-style formatting, which is
// what every current user records.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d p50=%v p90=%v p99=%v max=%v",
		h.count,
		time.Duration(h.Quantile(0.50)),
		time.Duration(h.Quantile(0.90)),
		time.Duration(h.Quantile(0.99)),
		time.Duration(h.max))
}
