// Package stats provides the small summary-statistics helpers the benchmark
// harness uses to report experiment series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary condenses a sample of float64 observations.
type Summary struct {
	N    int
	Min  float64
	Max  float64
	Mean float64
	P50  float64
	P95  float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(sample []float64) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		N:    len(sorted),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		Mean: sum / float64(len(sorted)),
		P50:  Percentile(sorted, 0.50),
		P95:  Percentile(sorted, 0.95),
	}
}

// SummarizeInts converts and summarizes integer observations.
func SummarizeInts(sample []int) Summary {
	fs := make([]float64, len(sample))
	for i, v := range sample {
		fs[i] = float64(v)
	}
	return Summarize(fs)
}

// Percentile returns the p-quantile (p in [0,1]) of an ascending-sorted
// sample using nearest-rank interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.2f mean=%.2f p50=%.2f p95=%.2f max=%.2f",
		s.N, s.Min, s.Mean, s.P50, s.P95, s.Max)
}
