package stats

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 2.5 {
		t.Errorf("Mean = %v, want 2.5", s.Mean)
	}
	if s.P50 != 2.5 {
		t.Errorf("P50 = %v, want 2.5", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{10, 20, 30})
	if s.N != 3 || s.Min != 10 || s.Max != 30 || s.Mean != 20 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestPercentileEdges(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	if got := Percentile(sorted, 0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := Percentile(sorted, 1); got != 5 {
		t.Errorf("P100 = %v, want 5", got)
	}
	if got := Percentile(sorted, 0.5); got != 3 {
		t.Errorf("P50 = %v, want 3", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 0.25); got != 2.5 {
		t.Errorf("interpolated = %v, want 2.5", got)
	}
}

func TestSummaryOrderingProperty(t *testing.T) {
	cfg := &quick.Config{Values: func(vs []reflect.Value, rng *rand.Rand) {
		n := 1 + rng.Intn(50)
		sample := make([]float64, n)
		for i := range sample {
			sample[i] = rng.Float64() * 100
		}
		vs[0] = reflect.ValueOf(sample)
	}}
	if err := quick.Check(func(sample []float64) bool {
		s := Summarize(sample)
		if s.N != len(sample) {
			return false
		}
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	sample := []float64{3, 1, 2}
	Summarize(sample)
	if sort.Float64sAreSorted(sample) {
		t.Error("Summarize sorted the caller's slice")
	}
}

func TestSummaryString(t *testing.T) {
	if Summarize([]float64{1}).String() == "" {
		t.Error("empty String")
	}
}
