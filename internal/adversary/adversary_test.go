package adversary

import (
	"testing"

	"repro/internal/baseobj"
	"repro/internal/fabric"
	"repro/internal/types"
)

func writeEv(token uint64, client types.ClientID, obj types.ObjectID, server types.ServerID) fabric.TriggerEvent {
	return fabric.TriggerEvent{
		Token:  token,
		Client: client,
		Object: obj,
		Server: server,
		Inv:    baseobj.Invocation{Op: baseobj.OpWrite, Arg: types.TSValue{TS: 1}},
	}
}

func TestIsMutating(t *testing.T) {
	one := types.TSValue{TS: 1}
	tests := []struct {
		name string
		inv  baseobj.Invocation
		want bool
	}{
		{"write", baseobj.Invocation{Op: baseobj.OpWrite, Arg: one}, true},
		{"write-max", baseobj.Invocation{Op: baseobj.OpWriteMax, Arg: one}, true},
		{"read", baseobj.Invocation{Op: baseobj.OpRead}, false},
		{"read-max", baseobj.Invocation{Op: baseobj.OpReadMax}, false},
		{"cas update", baseobj.Invocation{Op: baseobj.OpCAS, Exp: types.ZeroTSValue, New: one}, true},
		{"cas no-op read", baseobj.Invocation{Op: baseobj.OpCAS, Exp: one, New: one}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsMutating(tc.inv); got != tc.want {
				t.Errorf("IsMutating = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestCoveringBudgetAndFreshness(t *testing.T) {
	adv := NewCovering([]types.ServerID{5, 6}, 2)

	// Inactive: everything passes.
	if adv.BeforeApply(writeEv(1, 0, 10, 0)) != fabric.Pass {
		t.Fatal("inactive gate held an op")
	}

	adv.BeginWrite(0)
	// Reads pass even when armed.
	readEv := fabric.TriggerEvent{Client: 0, Server: 0, Inv: baseobj.Invocation{Op: baseobj.OpRead}}
	if adv.BeforeApply(readEv) != fabric.Pass {
		t.Fatal("armed gate held a read")
	}
	// Another client's writes pass.
	if adv.BeforeApply(writeEv(2, 1, 11, 0)) != fabric.Pass {
		t.Fatal("armed gate held a foreign client's write")
	}
	// The active writer's first two fresh off-F writes are held.
	if adv.BeforeApply(writeEv(3, 0, 12, 0)) != fabric.Hold {
		t.Fatal("first fresh write not held")
	}
	// Same object again: passes (already covered).
	if adv.BeforeApply(writeEv(4, 0, 12, 1)) != fabric.Pass {
		t.Fatal("already-covered object held twice")
	}
	// Protected server: passes.
	if adv.BeforeApply(writeEv(5, 0, 13, 5)) != fabric.Pass {
		t.Fatal("write on protected F held")
	}
	if adv.BeforeApply(writeEv(6, 0, 14, 1)) != fabric.Hold {
		t.Fatal("second fresh write not held")
	}
	// Budget exhausted.
	if adv.BeforeApply(writeEv(7, 0, 15, 2)) != fabric.Pass {
		t.Fatal("write held beyond budget")
	}
	wc := adv.EndWrite()
	if wc.NewlyCovered != 2 || wc.Cumulative != 2 || wc.Writer != 0 {
		t.Fatalf("EndWrite = %+v", wc)
	}

	// Second write by another client: budget resets, covered set persists.
	adv.BeginWrite(1)
	if adv.BeforeApply(writeEv(8, 1, 12, 0)) != fabric.Pass {
		t.Fatal("covered object held for new writer")
	}
	if adv.BeforeApply(writeEv(9, 1, 16, 0)) != fabric.Hold {
		t.Fatal("fresh object for new writer not held")
	}
	wc = adv.EndWrite()
	if wc.NewlyCovered != 1 || wc.Cumulative != 3 {
		t.Fatalf("second EndWrite = %+v", wc)
	}

	per := adv.PerWrite()
	if len(per) != 2 {
		t.Fatalf("PerWrite len = %d, want 2", len(per))
	}
	if got := adv.CoveredObjects(); len(got) != 3 {
		t.Fatalf("CoveredObjects = %v, want 3 objects", got)
	}
	// Responses always pass.
	if adv.BeforeRespond(writeEv(10, 1, 17, 0), baseobj.Response{}) != fabric.Pass {
		t.Fatal("BeforeRespond held")
	}
}

func TestScriptRules(t *testing.T) {
	s := NewScript()
	ev := writeEv(1, 0, 10, 0)
	// No rules: pass.
	if s.BeforeApply(ev) != fabric.Pass || s.BeforeRespond(ev, baseobj.Response{}) != fabric.Pass {
		t.Fatal("empty script held")
	}
	s.SetApplyRule(func(e fabric.TriggerEvent) bool { return e.Server == 0 })
	if s.BeforeApply(ev) != fabric.Hold {
		t.Fatal("apply rule not applied")
	}
	s.SetApplyRule(nil)
	if s.BeforeApply(ev) != fabric.Pass {
		t.Fatal("cleared apply rule still holds")
	}
	s.SetRespondRule(func(e fabric.TriggerEvent) bool { return e.Client == 0 })
	if s.BeforeRespond(ev, baseobj.Response{}) != fabric.Hold {
		t.Fatal("respond rule not applied")
	}
	s.SetRespondRule(nil)
	if s.BeforeRespond(ev, baseobj.Response{}) != fabric.Pass {
		t.Fatal("cleared respond rule still holds")
	}
}
