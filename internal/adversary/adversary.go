// Package adversary implements the environment behaviours the paper's lower
// bounds exploit, as fabric gates:
//
//   - Covering is the operational counterpart of Ad_i (Definitions 2–3 and
//     Lemma 1): during each high-level write it blocks up to f low-level
//     writes before they take effect, never on a protected server set F of
//     size f+1, and never twice on the same register. The blocked writes
//     stay pending forever, covering their registers, so the covered-set
//     size grows by f per completed write — Lemma 1(a) — while
//     delta(Cov) ∩ F = ∅ — Lemma 1(b).
//
//   - Script is a mutable rule-based gate used by the stale-release attack
//     (experiment E6) to drive the exact run of Lemma 4 / Figure 2 against
//     a chosen construction.
//
// Gates make identity-based decisions only (client, server, object, op),
// so experiments are deterministic.
package adversary

import (
	"sync"

	"repro/internal/baseobj"
	"repro/internal/fabric"
	"repro/internal/types"
)

// IsMutating reports whether an invocation can change object state: plain
// and max writes always, CAS only when it is a real update (Algorithm 1
// uses CAS(v0, v0) as a read).
func IsMutating(inv baseobj.Invocation) bool {
	switch inv.Op {
	case baseobj.OpWrite, baseobj.OpWriteMax, baseobj.OpPutFrag, baseobj.OpCommitFrag:
		return true
	case baseobj.OpCAS:
		return inv.Exp != inv.New
	default:
		return false
	}
}

// WriteCover summarizes the covering effect of one high-level write.
type WriteCover struct {
	// Writer is the client whose write was attacked.
	Writer types.ClientID
	// NewlyCovered is how many fresh registers the adversary covered
	// during this write.
	NewlyCovered int
	// Cumulative is the total number of covered registers afterwards.
	Cumulative int
}

// Covering is the Ad_i-style gate. Drive it with BeginWrite / EndWrite
// around each high-level write; between the two it holds up to f of the
// active writer's mutating low-level operations before they take effect.
type Covering struct {
	mu            sync.Mutex
	protected     map[types.ServerID]struct{}
	holdsPerWrite int

	active       bool
	activeWriter types.ClientID
	budget       int

	heldByObject map[types.ObjectID]uint64
	perWrite     []WriteCover
	fViolations  int
}

// Compile-time interface compliance check.
var _ fabric.Gate = (*Covering)(nil)

// NewCovering creates the gate. protected is the paper's F (any f+1
// servers); holdsPerWrite is f.
func NewCovering(protected []types.ServerID, holdsPerWrite int) *Covering {
	p := make(map[types.ServerID]struct{}, len(protected))
	for _, s := range protected {
		p[s] = struct{}{}
	}
	return &Covering{
		protected:     p,
		holdsPerWrite: holdsPerWrite,
		heldByObject:  make(map[types.ObjectID]uint64),
	}
}

// BeginWrite arms the gate for one high-level write by the given client.
func (a *Covering) BeginWrite(writer types.ClientID) {
	a.mu.Lock()
	a.active = true
	a.activeWriter = writer
	a.budget = a.holdsPerWrite
	a.mu.Unlock()
}

// EndWrite disarms the gate and records the covering statistics of the
// write that just completed.
func (a *Covering) EndWrite() WriteCover {
	a.mu.Lock()
	defer a.mu.Unlock()
	covered := a.holdsPerWrite - a.budget
	wc := WriteCover{
		Writer:       a.activeWriter,
		NewlyCovered: covered,
		Cumulative:   len(a.heldByObject),
	}
	a.perWrite = append(a.perWrite, wc)
	a.active = false
	a.budget = 0
	return wc
}

// BeforeApply implements fabric.Gate: hold the active writer's mutating
// ops, off the protected servers, on fresh registers, up to the per-write
// budget.
func (a *Covering) BeforeApply(ev fabric.TriggerEvent) fabric.Decision {
	if !IsMutating(ev.Inv) {
		return fabric.Pass
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.active || ev.Client != a.activeWriter || a.budget == 0 {
		return fabric.Pass
	}
	if _, onF := a.protected[ev.Server]; onF {
		a.fViolations++ // a hold here would violate Lemma 1(b); pass instead
		return fabric.Pass
	}
	if _, already := a.heldByObject[ev.Object]; already {
		return fabric.Pass
	}
	a.heldByObject[ev.Object] = ev.Token
	a.budget--
	return fabric.Hold
}

// BeforeRespond implements fabric.Gate.
func (a *Covering) BeforeRespond(fabric.TriggerEvent, baseobj.Response) fabric.Decision {
	return fabric.Pass
}

// PerWrite returns the covering statistics recorded so far.
func (a *Covering) PerWrite() []WriteCover {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]WriteCover, len(a.perWrite))
	copy(out, a.perWrite)
	return out
}

// CoveredObjects returns the registers the gate is holding writes on.
func (a *Covering) CoveredObjects() []types.ObjectID {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]types.ObjectID, 0, len(a.heldByObject))
	for obj := range a.heldByObject {
		out = append(out, obj)
	}
	return out
}

// Script is a mutable rule-driven gate. Rules inspect trigger events and
// return true to hold; a nil rule passes everything. Rule swaps take effect
// for subsequently triggered operations.
type Script struct {
	mu          sync.Mutex
	applyRule   func(ev fabric.TriggerEvent) bool
	respondRule func(ev fabric.TriggerEvent) bool
}

// Compile-time interface compliance check.
var _ fabric.Gate = (*Script)(nil)

// NewScript returns a gate with no rules (everything passes).
func NewScript() *Script { return &Script{} }

// SetApplyRule installs the pre-apply hold rule (nil clears it).
func (s *Script) SetApplyRule(rule func(ev fabric.TriggerEvent) bool) {
	s.mu.Lock()
	s.applyRule = rule
	s.mu.Unlock()
}

// SetRespondRule installs the pre-respond hold rule (nil clears it).
func (s *Script) SetRespondRule(rule func(ev fabric.TriggerEvent) bool) {
	s.mu.Lock()
	s.respondRule = rule
	s.mu.Unlock()
}

// BeforeApply implements fabric.Gate.
func (s *Script) BeforeApply(ev fabric.TriggerEvent) fabric.Decision {
	s.mu.Lock()
	rule := s.applyRule
	s.mu.Unlock()
	if rule != nil && rule(ev) {
		return fabric.Hold
	}
	return fabric.Pass
}

// BeforeRespond implements fabric.Gate.
func (s *Script) BeforeRespond(ev fabric.TriggerEvent, _ baseobj.Response) fabric.Decision {
	s.mu.Lock()
	rule := s.respondRule
	s.mu.Unlock()
	if rule != nil && rule(ev) {
		return fabric.Hold
	}
	return fabric.Pass
}
