package adversary

import (
	"math/rand"
	"sync"

	"repro/internal/baseobj"
	"repro/internal/fabric"
	"repro/internal/types"
)

// Chaos is a seeded randomized environment: it holds mutating low-level
// operations with a fixed probability, subject to the liveness budget that
// makes every construction's quorum math still work out — at most f of a
// writer's operations are outstanding-held at any time.
//
// Combined with random releases between high-level operations (the driver's
// job, via fabric.ReleaseWhere), Chaos explores a large space of legal
// environment behaviours: delayed effects, stale overwrites landing late,
// and responses that never arrive. Sound constructions must pass the
// write-sequential checkers for every seed; the experiment suite runs many.
type Chaos struct {
	mu          sync.Mutex
	rng         *rand.Rand
	holdProb    float64
	budget      int // max outstanding held ops per writer (f)
	outstanding map[types.ClientID]map[uint64]struct{}
	holds       int
}

// Compile-time interface compliance check.
var _ fabric.Gate = (*Chaos)(nil)

// NewChaos creates a chaos gate. holdProb is the per-op hold probability;
// budget is the per-writer outstanding-hold cap (use f).
func NewChaos(seed int64, holdProb float64, budget int) *Chaos {
	return &Chaos{
		rng:         rand.New(rand.NewSource(seed)),
		holdProb:    holdProb,
		budget:      budget,
		outstanding: make(map[types.ClientID]map[uint64]struct{}),
	}
}

// BeforeApply implements fabric.Gate.
func (c *Chaos) BeforeApply(ev fabric.TriggerEvent) fabric.Decision {
	if !IsMutating(ev.Inv) {
		return fabric.Pass
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	held := c.outstanding[ev.Client]
	if len(held) >= c.budget {
		return fabric.Pass
	}
	if c.rng.Float64() >= c.holdProb {
		return fabric.Pass
	}
	if held == nil {
		held = make(map[uint64]struct{})
		c.outstanding[ev.Client] = held
	}
	held[ev.Token] = struct{}{}
	c.holds++
	return fabric.Hold
}

// BeforeRespond implements fabric.Gate.
func (c *Chaos) BeforeRespond(fabric.TriggerEvent, baseobj.Response) fabric.Decision {
	return fabric.Pass
}

// Released informs the gate that a held op was released, freeing budget.
func (c *Chaos) Released(client types.ClientID, token uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if held, ok := c.outstanding[client]; ok {
		delete(held, token)
	}
}

// Narrow permanently shrinks the liveness budget by n (not below zero).
// A fail-stop crash consumes a unit of the same f budget the holds draw
// from: after a crash, at most f-1 of a writer's ops may be held, so
// crashed servers plus held responses never exceed f together and every
// quorum round still reaches its n-f threshold.
func (c *Chaos) Narrow(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget -= n
	if c.budget < 0 {
		c.budget = 0
	}
}

// Holds returns the total number of holds performed.
func (c *Chaos) Holds() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.holds
}

// ReleaseSome releases each currently held op with probability p, drawing
// from the gate's own PRNG for reproducibility, and returns how many were
// released. It also reconciles the budget books against the fabric: ops a
// reconfiguration drained out from under the gate (completed with
// ErrViewChanged, no longer pending) are forgotten so they stop consuming
// their writer's hold budget.
func (c *Chaos) ReleaseSome(fab *fabric.Fabric, p float64) int {
	pending := fab.Pending()
	live := make(map[uint64]struct{}, len(pending))
	for _, op := range pending {
		live[op.Event.Token] = struct{}{}
	}
	c.mu.Lock()
	for _, held := range c.outstanding {
		for tok := range held {
			if _, ok := live[tok]; !ok {
				delete(held, tok)
			}
		}
	}
	var victims []fabric.PendingOp
	for _, op := range pending {
		if op.Phase != fabric.PhaseApply && op.Phase != fabric.PhaseRespond {
			continue
		}
		if c.rng.Float64() < p {
			victims = append(victims, op)
		}
	}
	c.mu.Unlock()
	released := 0
	for _, op := range victims {
		err := fab.Release(op.Event.Token)
		// Free the budget even when the fabric no longer holds the op: a
		// reconfiguration drains held ops out from under the gate (they
		// complete with ErrViewChanged), and keeping them on the books
		// would permanently shrink the writer's hold budget.
		c.Released(op.Event.Client, op.Event.Token)
		if err == nil {
			released++
		}
	}
	return released
}
