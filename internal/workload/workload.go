// Package workload generates the operation schedules the experiments run:
// unique write values (the checkers require them), write-sequential
// schedules (the paper's lower-bound runs are write-sequential), and seeded
// concurrent read/write mixes for stress tests.
package workload

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/types"
)

// ValueGen hands out cluster-unique write values. Values encode the writer
// in the high bits and a per-writer sequence number in the low bits, so two
// clients can never collide.
type ValueGen struct {
	mu   sync.Mutex
	next map[types.ClientID]int64
}

// NewValueGen creates a generator.
func NewValueGen() *ValueGen {
	return &ValueGen{next: make(map[types.ClientID]int64)}
}

// Next returns a fresh unique value for the given client.
func (g *ValueGen) Next(client types.ClientID) types.Value {
	g.mu.Lock()
	g.next[client]++
	seq := g.next[client]
	g.mu.Unlock()
	return types.Value((int64(client)+1)<<32 | seq)
}

// Step is one scheduled high-level operation.
type Step struct {
	// Client performs the op: a writer index for writes, a reader index
	// for reads.
	Client int
	// IsRead selects read vs write.
	IsRead bool
}

// Sequential returns the canonical lower-bound schedule: k writes, one per
// writer, in writer order, each followed by a read when interleaveReads is
// set.
func Sequential(k int, interleaveReads bool) []Step {
	var steps []Step
	for i := 0; i < k; i++ {
		steps = append(steps, Step{Client: i})
		if interleaveReads {
			steps = append(steps, Step{Client: 0, IsRead: true})
		}
	}
	return steps
}

// Mix describes a randomized workload.
type Mix struct {
	// Writers and Readers are the client pools.
	Writers int
	Readers int
	// Ops is the total number of operations.
	Ops int
	// ReadFraction in [0, 1] is the probability of a read.
	ReadFraction float64
	// Seed makes the schedule reproducible.
	Seed int64
}

// Validate checks the mix parameters.
func (m Mix) Validate() error {
	if m.Writers <= 0 && m.ReadFraction < 1 {
		return fmt.Errorf("workload: mix needs writers (writers=%d, readFraction=%v)", m.Writers, m.ReadFraction)
	}
	if m.Readers <= 0 && m.ReadFraction > 0 {
		return fmt.Errorf("workload: mix needs readers (readers=%d, readFraction=%v)", m.Readers, m.ReadFraction)
	}
	if m.Ops < 0 {
		return fmt.Errorf("workload: negative op count %d", m.Ops)
	}
	if m.ReadFraction < 0 || m.ReadFraction > 1 {
		return fmt.Errorf("workload: read fraction %v outside [0,1]", m.ReadFraction)
	}
	return nil
}

// Schedule materializes the mix into a deterministic step sequence.
func (m Mix) Schedule() ([]Step, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(m.Seed))
	steps := make([]Step, 0, m.Ops)
	for i := 0; i < m.Ops; i++ {
		if rng.Float64() < m.ReadFraction {
			steps = append(steps, Step{Client: rng.Intn(m.Readers), IsRead: true})
		} else {
			steps = append(steps, Step{Client: rng.Intn(m.Writers)})
		}
	}
	return steps, nil
}

// RoundRobinWrites returns rounds*k writes cycling through the k writers:
// writer order 0..k-1 repeated. Every writer performs `rounds` writes, so
// the cover-set logic of Algorithm 2 (re-triggering on registers freed by
// old pending writes) is exercised.
func RoundRobinWrites(k, rounds int) []Step {
	steps := make([]Step, 0, k*rounds)
	for r := 0; r < rounds; r++ {
		for i := 0; i < k; i++ {
			steps = append(steps, Step{Client: i})
		}
	}
	return steps
}
