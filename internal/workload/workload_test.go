package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestValueGenUnique(t *testing.T) {
	g := NewValueGen()
	seen := make(map[types.Value]bool)
	for c := 0; c < 5; c++ {
		for i := 0; i < 100; i++ {
			v := g.Next(types.ClientID(c))
			if seen[v] {
				t.Fatalf("duplicate value %d", v)
			}
			seen[v] = true
		}
	}
}

func TestValueGenUniqueProperty(t *testing.T) {
	// Values from different clients never collide, regardless of call
	// interleaving.
	err := quick.Check(func(calls []uint8) bool {
		g := NewValueGen()
		seen := make(map[types.Value]bool)
		for _, c := range calls {
			v := g.Next(types.ClientID(c % 16))
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSequentialSchedule(t *testing.T) {
	steps := Sequential(3, false)
	if len(steps) != 3 {
		t.Fatalf("len = %d, want 3", len(steps))
	}
	for i, s := range steps {
		if s.IsRead || s.Client != i {
			t.Errorf("step %d = %+v", i, s)
		}
	}
	withReads := Sequential(3, true)
	if len(withReads) != 6 {
		t.Fatalf("len = %d, want 6", len(withReads))
	}
	for i := 1; i < len(withReads); i += 2 {
		if !withReads[i].IsRead {
			t.Errorf("step %d should be a read", i)
		}
	}
}

func TestRoundRobinWrites(t *testing.T) {
	steps := RoundRobinWrites(3, 2)
	if len(steps) != 6 {
		t.Fatalf("len = %d, want 6", len(steps))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i, s := range steps {
		if s.Client != want[i] || s.IsRead {
			t.Errorf("step %d = %+v, want writer %d", i, s, want[i])
		}
	}
}

func TestMixValidation(t *testing.T) {
	bad := []Mix{
		{Writers: 0, Readers: 1, Ops: 5, ReadFraction: 0.5},
		{Writers: 1, Readers: 0, Ops: 5, ReadFraction: 0.5},
		{Writers: 1, Readers: 1, Ops: -1, ReadFraction: 0.5},
		{Writers: 1, Readers: 1, Ops: 5, ReadFraction: 1.5},
		{Writers: 1, Readers: 1, Ops: 5, ReadFraction: -0.1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("mix %d accepted: %+v", i, m)
		}
	}
	good := Mix{Writers: 2, Readers: 3, Ops: 10, ReadFraction: 0.3, Seed: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("good mix rejected: %v", err)
	}
}

func TestMixScheduleDeterministic(t *testing.T) {
	m := Mix{Writers: 3, Readers: 2, Ops: 50, ReadFraction: 0.4, Seed: 42}
	s1, err := m.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != 50 || len(s2) != 50 {
		t.Fatalf("lens = %d, %d; want 50", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("schedules diverge at %d: %+v vs %+v", i, s1[i], s2[i])
		}
	}
	// Clients stay in their pools.
	for _, s := range s1 {
		if s.IsRead && (s.Client < 0 || s.Client >= 2) {
			t.Errorf("reader %d out of pool", s.Client)
		}
		if !s.IsRead && (s.Client < 0 || s.Client >= 3) {
			t.Errorf("writer %d out of pool", s.Client)
		}
	}
}

func TestMixScheduleSeedMatters(t *testing.T) {
	m1 := Mix{Writers: 3, Readers: 2, Ops: 50, ReadFraction: 0.5, Seed: 1}
	m2 := Mix{Writers: 3, Readers: 2, Ops: 50, ReadFraction: 0.5, Seed: 2}
	s1, _ := m1.Schedule()
	s2, _ := m2.Schedule()
	same := true
	for i := range s1 {
		if s1[i] != s2[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}
