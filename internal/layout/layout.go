// Package layout builds the register placement of the paper's upper-bound
// construction (Section 3.3, Algorithm 2, Figure 1).
//
// Given k writers, failure threshold f, and n >= 2f+1 servers, it creates
//
//	z = floor((n-(f+1))/f)            writers per register set
//	y = z*f + f + 1                   registers per full set
//	m = ceil(k/z)                     register sets R_0 .. R_{m-1}
//
// where the last set is an overflow set of (k mod z)*f + f + 1 registers if
// z does not divide k. Sets are pairwise disjoint, every register of a set
// lives on a distinct server (|delta(R_i)| = |R_i|), writer w is mapped to
// set floor(w/z), any |R_i|-f registers of R_i form a write quorum, and all
// registers on any n-f servers form a read quorum.
package layout

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/baseobj"
	"repro/internal/bounds"
	"repro/internal/cluster"
	"repro/internal/types"
)

// Errors reported by the layout engine.
var (
	// ErrNoSuchSet is returned for set indices outside [0, m).
	ErrNoSuchSet = errors.New("layout: no such register set")
	// ErrNoSuchWriter is returned for writer indices outside [0, k).
	ErrNoSuchWriter = errors.New("layout: no such writer")
)

// Plan is the abstract placement: set sizes, writer mapping, and the
// register -> server assignment, independent of any concrete cluster.
type Plan struct {
	// K, F, N are the emulation parameters.
	K, F, N int
	// Z, Y, M are the derived construction parameters.
	Z, Y, M int
	// SetSizes[j] is |R_j|.
	SetSizes []int
}

// NewPlan computes the register-set plan for (k, f, n).
func NewPlan(k, f, n int) (*Plan, error) {
	if err := bounds.Validate(k, f, n); err != nil {
		return nil, err
	}
	z, err := bounds.Z(f, n)
	if err != nil {
		return nil, err
	}
	y, err := bounds.Y(f, n)
	if err != nil {
		return nil, err
	}
	m, err := bounds.NumSets(k, f, n)
	if err != nil {
		return nil, err
	}
	sizes := make([]int, m)
	for j := range sizes {
		sizes[j] = y
	}
	if rem := k % z; rem != 0 {
		sizes[m-1] = rem*f + f + 1
	}
	return &Plan{K: k, F: f, N: n, Z: z, Y: y, M: m, SetSizes: sizes}, nil
}

// TotalRegisters returns the total number of base registers the plan uses;
// it always equals bounds.RegisterUpper(k, f, n).
func (p *Plan) TotalRegisters() int {
	total := 0
	for _, sz := range p.SetSizes {
		total += sz
	}
	return total
}

// SetForWriter returns the register set index floor(w/z) serving writer w.
func (p *Plan) SetForWriter(w int) (int, error) {
	if w < 0 || w >= p.K {
		return 0, fmt.Errorf("%w: %d (k=%d)", ErrNoSuchWriter, w, p.K)
	}
	return w / p.Z, nil
}

// WritersOfSet returns the writer indices mapped to set j.
func (p *Plan) WritersOfSet(j int) ([]int, error) {
	if j < 0 || j >= p.M {
		return nil, fmt.Errorf("%w: %d (m=%d)", ErrNoSuchSet, j, p.M)
	}
	lo := j * p.Z
	hi := lo + p.Z
	if hi > p.K {
		hi = p.K
	}
	writers := make([]int, 0, hi-lo)
	for w := lo; w < hi; w++ {
		writers = append(writers, w)
	}
	return writers, nil
}

// ServerFor returns the server hosting register idx of set j. Registers of
// a set land on consecutive servers starting at a per-set rotation offset,
// so |delta(R_j)| = |R_j| and load spreads across the cluster.
func (p *Plan) ServerFor(j, idx int) (types.ServerID, error) {
	if j < 0 || j >= p.M {
		return 0, fmt.Errorf("%w: %d (m=%d)", ErrNoSuchSet, j, p.M)
	}
	if idx < 0 || idx >= p.SetSizes[j] {
		return 0, fmt.Errorf("layout: register index %d out of range for set %d (size %d)", idx, j, p.SetSizes[j])
	}
	offset := (j * p.Y) % p.N
	return types.ServerID((offset + idx) % p.N), nil
}

// PerServerCounts returns how many registers the plan places on each
// server.
func (p *Plan) PerServerCounts() []int {
	counts := make([]int, p.N)
	for j, sz := range p.SetSizes {
		for idx := 0; idx < sz; idx++ {
			s, _ := p.ServerFor(j, idx)
			counts[s]++
		}
	}
	return counts
}

// WriteQuorumSize returns |R_j| - f, the number of acknowledgements a
// writer of set j waits for.
func (p *Plan) WriteQuorumSize(j int) (int, error) {
	if j < 0 || j >= p.M {
		return 0, fmt.Errorf("%w: %d (m=%d)", ErrNoSuchSet, j, p.M)
	}
	return p.SetSizes[j] - p.F, nil
}

// ReadQuorumServers returns n - f, the number of complete server scans a
// collect waits for.
func (p *Plan) ReadQuorumServers() int { return p.N - p.F }

// Verify checks the structural invariants the construction relies on:
// every set size is between 2f+1 and n, set sizes sum to the Theorem 3
// formula, and each set maps its registers to distinct servers.
func (p *Plan) Verify() error {
	upper, err := bounds.RegisterUpper(p.K, p.F, p.N)
	if err != nil {
		return err
	}
	if got := p.TotalRegisters(); got != upper {
		return fmt.Errorf("layout: total registers %d, want %d", got, upper)
	}
	for j, sz := range p.SetSizes {
		if sz < 2*p.F+1 || sz > p.N {
			return fmt.Errorf("layout: set %d size %d outside [2f+1=%d, n=%d]", j, sz, 2*p.F+1, p.N)
		}
		seen := make(map[types.ServerID]struct{}, sz)
		for idx := 0; idx < sz; idx++ {
			s, err := p.ServerFor(j, idx)
			if err != nil {
				return err
			}
			if _, dup := seen[s]; dup {
				return fmt.Errorf("layout: set %d maps two registers to server %d", j, s)
			}
			seen[s] = struct{}{}
		}
	}
	return nil
}

// Render draws the plan as a server-by-set grid in the spirit of Figure 1:
// one line per server listing the sets with a register on it.
func (p *Plan) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "layout k=%d f=%d n=%d: z=%d y=%d m=%d total=%d\n",
		p.K, p.F, p.N, p.Z, p.Y, p.M, p.TotalRegisters())
	onServer := make([][]int, p.N)
	for j, sz := range p.SetSizes {
		for idx := 0; idx < sz; idx++ {
			s, _ := p.ServerFor(j, idx)
			onServer[s] = append(onServer[s], j)
		}
	}
	for s, sets := range onServer {
		fmt.Fprintf(&b, "  s%-2d:", s)
		for _, j := range sets {
			fmt.Fprintf(&b, " R%d", j)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Placement binds a plan to a concrete cluster: real base registers have
// been created and placed according to the plan.
type Placement struct {
	// Plan is the abstract plan this placement realizes.
	Plan *Plan
	// Sets[j] lists the object IDs of R_j, in server-assignment order.
	Sets [][]types.ObjectID
	// ServerOf maps each placed register to its server.
	ServerOf map[types.ObjectID]types.ServerID
}

// Materialize creates the plan's registers on the cluster. Each register of
// set j is restricted to the writers of set j (the z-writer registers of
// Theorem 3), so any write by a foreign client is a detectable protocol
// violation.
func Materialize(c *cluster.Cluster, p *Plan) (*Placement, error) {
	if c.N() != p.N {
		return nil, fmt.Errorf("layout: cluster has %d servers, plan wants %d", c.N(), p.N)
	}
	pl := &Placement{
		Plan:     p,
		Sets:     make([][]types.ObjectID, p.M),
		ServerOf: make(map[types.ObjectID]types.ServerID),
	}
	for j, sz := range p.SetSizes {
		writers, err := p.WritersOfSet(j)
		if err != nil {
			return nil, err
		}
		clientIDs := make([]types.ClientID, len(writers))
		for i, w := range writers {
			clientIDs[i] = types.ClientID(w)
		}
		pl.Sets[j] = make([]types.ObjectID, 0, sz)
		for idx := 0; idx < sz; idx++ {
			server, err := p.ServerFor(j, idx)
			if err != nil {
				return nil, err
			}
			obj, err := c.PlaceRegister(server, baseobj.WithWriters(clientIDs))
			if err != nil {
				return nil, err
			}
			pl.Sets[j] = append(pl.Sets[j], obj)
			pl.ServerOf[obj] = server
		}
	}
	return pl, nil
}

// AllObjects returns every placed register, set by set.
func (pl *Placement) AllObjects() []types.ObjectID {
	var all []types.ObjectID
	for _, set := range pl.Sets {
		all = append(all, set...)
	}
	return all
}

// ObjectsByServer groups every placed register by hosting server.
func (pl *Placement) ObjectsByServer() map[types.ServerID][]types.ObjectID {
	by := make(map[types.ServerID][]types.ObjectID)
	for _, set := range pl.Sets {
		for _, obj := range set {
			s := pl.ServerOf[obj]
			by[s] = append(by[s], obj)
		}
	}
	return by
}

// SetOf returns the register set serving writer w.
func (pl *Placement) SetOf(w int) ([]types.ObjectID, error) {
	j, err := pl.Plan.SetForWriter(w)
	if err != nil {
		return nil, err
	}
	set := make([]types.ObjectID, len(pl.Sets[j]))
	copy(set, pl.Sets[j])
	return set, nil
}
