package layout

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/baseobj"
	"repro/internal/bounds"
	"repro/internal/cluster"
	"repro/internal/types"
)

func mustPlan(t *testing.T, k, f, n int) *Plan {
	t.Helper()
	p, err := NewPlan(k, f, n)
	if err != nil {
		t.Fatalf("NewPlan(%d,%d,%d): %v", k, f, n, err)
	}
	return p
}

func TestFigure1Parameters(t *testing.T) {
	// The paper's Figure 1: n=6, k=5, f=2 -> z=1, y=5, m=5, 25 registers.
	p := mustPlan(t, 5, 2, 6)
	if p.Z != 1 || p.Y != 5 || p.M != 5 {
		t.Fatalf("z,y,m = %d,%d,%d; want 1,5,5", p.Z, p.Y, p.M)
	}
	if p.TotalRegisters() != 25 {
		t.Fatalf("total = %d, want 25", p.TotalRegisters())
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	render := p.Render()
	for _, want := range []string{"k=5", "R0", "R4", "s0", "s5"} {
		if !strings.Contains(render, want) {
			t.Errorf("Render missing %q:\n%s", want, render)
		}
	}
}

func TestOverflowSet(t *testing.T) {
	// k=5, f=2, n=7: z=2, so two full sets of y=7 and an overflow set for
	// the 1 remaining writer of size 1*2+3 = 5.
	p := mustPlan(t, 5, 2, 7)
	if p.Z != 2 || p.M != 3 {
		t.Fatalf("z,m = %d,%d; want 2,3", p.Z, p.M)
	}
	if got := p.SetSizes[2]; got != 5 {
		t.Fatalf("overflow set size = %d, want 5", got)
	}
	upper, err := bounds.RegisterUpper(5, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalRegisters() != upper {
		t.Fatalf("total = %d, want %d", p.TotalRegisters(), upper)
	}
}

func TestWriterMapping(t *testing.T) {
	p := mustPlan(t, 5, 2, 7) // z = 2
	wantSet := []int{0, 0, 1, 1, 2}
	for w, want := range wantSet {
		got, err := p.SetForWriter(w)
		if err != nil {
			t.Fatalf("SetForWriter(%d): %v", w, err)
		}
		if got != want {
			t.Errorf("SetForWriter(%d) = %d, want %d", w, got, want)
		}
	}
	if _, err := p.SetForWriter(5); !errors.Is(err, ErrNoSuchWriter) {
		t.Errorf("out-of-range writer err = %v", err)
	}
	// WritersOfSet inverts SetForWriter.
	for j := 0; j < p.M; j++ {
		writers, err := p.WritersOfSet(j)
		if err != nil {
			t.Fatalf("WritersOfSet(%d): %v", j, err)
		}
		for _, w := range writers {
			set, _ := p.SetForWriter(w)
			if set != j {
				t.Errorf("writer %d in set %d but maps to %d", w, j, set)
			}
		}
	}
	if _, err := p.WritersOfSet(99); !errors.Is(err, ErrNoSuchSet) {
		t.Errorf("out-of-range set err = %v", err)
	}
}

func TestTheorem6PerServerCounts(t *testing.T) {
	// At n = 2f+1 every server hosts exactly k registers.
	for _, tc := range []struct{ k, f int }{{1, 1}, {4, 1}, {3, 2}, {5, 3}} {
		p := mustPlan(t, tc.k, tc.f, 2*tc.f+1)
		for s, c := range p.PerServerCounts() {
			if c != tc.k {
				t.Errorf("k=%d f=%d: server %d hosts %d, want k=%d", tc.k, tc.f, s, c, tc.k)
			}
		}
	}
}

func TestQuorumSizes(t *testing.T) {
	p := mustPlan(t, 5, 2, 7)
	for j := 0; j < p.M; j++ {
		q, err := p.WriteQuorumSize(j)
		if err != nil {
			t.Fatalf("WriteQuorumSize(%d): %v", j, err)
		}
		if q != p.SetSizes[j]-p.F {
			t.Errorf("write quorum of set %d = %d, want %d", j, q, p.SetSizes[j]-p.F)
		}
	}
	if p.ReadQuorumServers() != p.N-p.F {
		t.Errorf("read quorum = %d, want n-f = %d", p.ReadQuorumServers(), p.N-p.F)
	}
	if _, err := p.WriteQuorumSize(99); !errors.Is(err, ErrNoSuchSet) {
		t.Errorf("quorum of missing set err = %v", err)
	}
}

func TestServerForErrors(t *testing.T) {
	p := mustPlan(t, 2, 1, 3)
	if _, err := p.ServerFor(99, 0); !errors.Is(err, ErrNoSuchSet) {
		t.Errorf("ServerFor bad set err = %v", err)
	}
	if _, err := p.ServerFor(0, 99); err == nil {
		t.Error("ServerFor bad index succeeded")
	}
}

func TestPlanPropertyInvariants(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vs []reflect.Value, rng *rand.Rand) {
			f := 1 + rng.Intn(4)
			k := 1 + rng.Intn(12)
			n := 2*f + 1 + rng.Intn(2*f+k)
			vs[0], vs[1], vs[2] = reflect.ValueOf(k), reflect.ValueOf(f), reflect.ValueOf(n)
		},
	}
	if err := quick.Check(func(k, f, n int) bool {
		p, err := NewPlan(k, f, n)
		if err != nil {
			return false
		}
		if p.Verify() != nil {
			return false
		}
		// Every writer has a set; every set has at most z writers.
		for w := 0; w < k; w++ {
			j, err := p.SetForWriter(w)
			if err != nil || j < 0 || j >= p.M {
				return false
			}
		}
		for j := 0; j < p.M; j++ {
			writers, err := p.WritersOfSet(j)
			if err != nil || len(writers) == 0 || len(writers) > p.Z {
				return false
			}
			// Theorem 3 set sizing: |R_j| = (#writers)*f + f + 1 for the
			// overflow set, z*f + f + 1 otherwise.
			want := len(writers)*f + f + 1
			if j < p.M-1 {
				want = p.Y
			}
			if p.SetSizes[j] != want {
				return false
			}
		}
		// Per-server counts sum to the total.
		sum := 0
		for _, c := range p.PerServerCounts() {
			sum += c
		}
		return sum == p.TotalRegisters()
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMaterialize(t *testing.T) {
	const k, f, n = 5, 2, 7
	p := mustPlan(t, k, f, n)
	c, err := cluster.New(n)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Materialize(c, p)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if got := c.ResourceComplexity(); got != p.TotalRegisters() {
		t.Fatalf("cluster objects = %d, want %d", got, p.TotalRegisters())
	}
	// delta agrees with the plan.
	for j, set := range pl.Sets {
		for idx, obj := range set {
			want, err := p.ServerFor(j, idx)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Delta(obj)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("set %d reg %d on server %d, want %d", j, idx, got, want)
			}
			if got != pl.ServerOf[obj] {
				t.Errorf("ServerOf disagrees with delta for %d", obj)
			}
		}
	}
	// Writer-set enforcement: a writer of set 0 can write set 0 but not
	// set 1, and a foreign client can write nothing.
	set0, set1 := pl.Sets[0][0], pl.Sets[1][0]
	okInv := baseobj.Invocation{Op: baseobj.OpWrite, Arg: types.TSValue{TS: 1}}
	if _, err := c.Apply(set0, 0, okInv); err != nil {
		t.Errorf("writer 0 on own set: %v", err)
	}
	if _, err := c.Apply(set1, 0, okInv); !errors.Is(err, baseobj.ErrUnauthorizedWriter) {
		t.Errorf("writer 0 on foreign set err = %v, want ErrUnauthorizedWriter", err)
	}
	if _, err := c.Apply(set0, 1000, okInv); !errors.Is(err, baseobj.ErrUnauthorizedWriter) {
		t.Errorf("foreign client err = %v, want ErrUnauthorizedWriter", err)
	}
	// AllObjects and ObjectsByServer agree on totals.
	if got := len(pl.AllObjects()); got != p.TotalRegisters() {
		t.Errorf("AllObjects = %d, want %d", got, p.TotalRegisters())
	}
	sum := 0
	for _, objs := range pl.ObjectsByServer() {
		sum += len(objs)
	}
	if sum != p.TotalRegisters() {
		t.Errorf("ObjectsByServer total = %d, want %d", sum, p.TotalRegisters())
	}
	// SetOf returns a defensive copy.
	s0, err := pl.SetOf(0)
	if err != nil {
		t.Fatal(err)
	}
	s0[0] = 9999
	s0b, err := pl.SetOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if s0b[0] == 9999 {
		t.Error("SetOf returned shared backing storage")
	}
}

func TestMaterializeClusterSizeMismatch(t *testing.T) {
	p := mustPlan(t, 2, 1, 4)
	c, err := cluster.New(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Materialize(c, p); err == nil {
		t.Fatal("Materialize with wrong cluster size succeeded")
	}
}

func TestNewPlanValidation(t *testing.T) {
	if _, err := NewPlan(0, 1, 3); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewPlan(1, 1, 2); !errors.Is(err, bounds.ErrTooFewServers) {
		t.Errorf("n<2f+1 err = %v", err)
	}
}
