package fabric

import (
	"runtime"
	"sync/atomic"

	"repro/internal/baseobj"
)

// YieldGate passes every operation but deschedules the calling goroutine
// between an operation's apply and its response delivery. It models benign
// asynchrony — responses take time — which widens the interleaving windows
// that are nanoseconds wide under the synchronous default. Contention
// experiments (e.g. the Algorithm 1 CAS retry measurements) use it to make
// races actually happen.
type YieldGate struct {
	// Yields is how many scheduler yields to insert per response.
	Yields int

	ops atomic.Int64
}

// Compile-time interface compliance check.
var _ Gate = (*YieldGate)(nil)

// BeforeApply implements Gate.
func (g *YieldGate) BeforeApply(TriggerEvent) Decision { return Pass }

// BeforeRespond implements Gate: yield, then pass.
func (g *YieldGate) BeforeRespond(TriggerEvent, baseobj.Response) Decision {
	g.ops.Add(1)
	yields := g.Yields
	if yields <= 0 {
		yields = 1
	}
	for i := 0; i < yields; i++ {
		runtime.Gosched()
	}
	return Pass
}

// Ops returns how many responses passed through the gate.
func (g *YieldGate) Ops() int64 { return g.ops.Load() }
