// Package fabric implements the asynchronous shared-memory fabric between
// clients and the base objects hosted on fault-prone servers.
//
// The paper's model (Section 2) decouples a low-level operation's trigger
// from its response: "clients can trigger several low-level operations
// without waiting for the previously triggered operations to respond", and
// the environment "is allowed to prevent a pending low-level write from
// taking effect for arbitrarily long" [Aguilera, Englert, Gafni 2003]. The
// fabric realizes both powers:
//
//   - Trigger returns a *Call immediately; the response arrives later (or
//     never) through Call.OnComplete.
//   - A Gate — the environment — may Hold any operation either before it
//     takes effect (phase apply: the op has NOT linearized; releasing it
//     later applies it then, possibly erasing a newer value) or before its
//     response is delivered (phase respond: the op HAS linearized but the
//     client does not know).
//   - Crashing a server silently drops every pending and future operation
//     on its objects: they remain pending forever.
//
// Pending write operations are exactly the paper's covering writes; the
// fabric exposes them via Pending and CoveredObjects for the covering
// experiments of Lemma 1.
package fabric

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/baseobj"
	"repro/internal/cluster"
	"repro/internal/types"
)

// Decision is a gate verdict for a single operation phase.
type Decision int

const (
	// Pass lets the operation proceed.
	Pass Decision = iota + 1
	// Hold parks the operation until Release (or forever).
	Hold
)

// Phase identifies where in its lifecycle a pending operation is parked.
type Phase int

const (
	// PhaseApply means the op was held before taking effect: it has not
	// linearized. Releasing it applies it at release time.
	PhaseApply Phase = iota + 1
	// PhaseRespond means the op took effect but its response is held.
	PhaseRespond
	// PhaseDropped means the op's server crashed: it will never respond.
	PhaseDropped
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseApply:
		return "held-apply"
	case PhaseRespond:
		return "held-respond"
	case PhaseDropped:
		return "dropped"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// TriggerEvent describes a triggered low-level operation. Gates receive it
// to make identity-based (deterministic) decisions.
type TriggerEvent struct {
	// Token uniquely identifies the low-level operation.
	Token uint64
	// Client is the triggering client.
	Client types.ClientID
	// Object is the target base object and Server = delta(Object).
	Object types.ObjectID
	Server types.ServerID
	// Inv is the invocation.
	Inv baseobj.Invocation
}

// Gate is the environment: it decides, per operation and phase, whether the
// fabric may proceed. Implementations must be safe for concurrent use and
// must not call back into the Fabric from within a decision.
type Gate interface {
	// BeforeApply is consulted before the operation takes effect.
	BeforeApply(ev TriggerEvent) Decision
	// BeforeRespond is consulted after the operation took effect and
	// before its response is delivered.
	BeforeRespond(ev TriggerEvent, resp baseobj.Response) Decision
}

// PassGate is the benign environment: every operation proceeds immediately.
type PassGate struct{}

// BeforeApply implements Gate.
func (PassGate) BeforeApply(TriggerEvent) Decision { return Pass }

// BeforeRespond implements Gate.
func (PassGate) BeforeRespond(TriggerEvent, baseobj.Response) Decision { return Pass }

// GateFuncs adapts two plain functions into a Gate. A nil function passes.
type GateFuncs struct {
	Apply   func(ev TriggerEvent) Decision
	Respond func(ev TriggerEvent, resp baseobj.Response) Decision
}

// BeforeApply implements Gate.
func (g GateFuncs) BeforeApply(ev TriggerEvent) Decision {
	if g.Apply == nil {
		return Pass
	}
	return g.Apply(ev)
}

// BeforeRespond implements Gate.
func (g GateFuncs) BeforeRespond(ev TriggerEvent, resp baseobj.Response) Decision {
	if g.Respond == nil {
		return Pass
	}
	return g.Respond(ev, resp)
}

// Compile-time interface compliance checks.
var (
	_ Gate = PassGate{}
	_ Gate = GateFuncs{}
)

// Outcome is the result of a completed low-level operation.
type Outcome struct {
	Resp baseobj.Response
	Err  error
}

// Call is the client-side handle of a triggered low-level operation.
type Call struct {
	ev TriggerEvent

	mu   sync.Mutex
	out  *Outcome
	done func(Outcome)
}

// Event returns the call's trigger event.
func (c *Call) Event() TriggerEvent { return c.ev }

// Token returns the operation token.
func (c *Call) Token() uint64 { return c.ev.Token }

// Outcome returns the call's outcome, if it has completed.
func (c *Call) Outcome() (Outcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.out == nil {
		return Outcome{}, false
	}
	return *c.out, true
}

// OnComplete registers fn to run exactly once when the call completes; if
// the call already completed, fn runs immediately in the caller's
// goroutine. At most one callback may be registered per call; a second
// registration replaces the first if the call is still pending. Callbacks
// must be non-blocking (typically a send into a buffered channel).
func (c *Call) OnComplete(fn func(Outcome)) {
	c.mu.Lock()
	if c.out != nil {
		o := *c.out
		c.mu.Unlock()
		fn(o)
		return
	}
	c.done = fn
	c.mu.Unlock()
}

// complete delivers the outcome, firing the callback at most once.
func (c *Call) complete(o Outcome) {
	c.mu.Lock()
	if c.out != nil {
		c.mu.Unlock()
		return
	}
	c.out = &o
	fn := c.done
	c.done = nil
	c.mu.Unlock()
	if fn != nil {
		fn(o)
	}
}

// PendingOp describes a low-level operation that was triggered but has not
// responded: the paper's "pending" ops, whose write instances cover their
// target registers.
type PendingOp struct {
	Event TriggerEvent
	Phase Phase
}

// heldOp is the fabric-internal record of a parked operation.
type heldOp struct {
	ev    TriggerEvent
	phase Phase
	resp  baseobj.Response // valid when phase == PhaseRespond
	call  *Call
}

// Errors reported by fabric operations.
var (
	// ErrNotHeld is returned by Release for unknown or already released
	// tokens.
	ErrNotHeld = errors.New("fabric: token not held")
)

// Fabric routes low-level operations from clients to base objects through
// the gate.
type Fabric struct {
	cluster *cluster.Cluster
	gate    Gate
	tracer  Tracer

	mu        sync.Mutex
	nextToken uint64
	held      map[uint64]*heldOp
	dropped   map[uint64]*heldOp
	triggers  uint64
	used      map[types.ObjectID]struct{}
}

// Option configures a Fabric.
type Option func(*Fabric)

// WithGate installs the environment gate; the default is PassGate.
func WithGate(g Gate) Option {
	return func(f *Fabric) {
		if g != nil {
			f.gate = g
		}
	}
}

// New creates a fabric over the given cluster.
func New(c *cluster.Cluster, opts ...Option) *Fabric {
	f := &Fabric{
		cluster: c,
		gate:    PassGate{},
		held:    make(map[uint64]*heldOp),
		dropped: make(map[uint64]*heldOp),
		used:    make(map[types.ObjectID]struct{}),
	}
	for _, opt := range opts {
		opt(f)
	}
	return f
}

// Cluster returns the underlying cluster.
func (f *Fabric) Cluster() *cluster.Cluster { return f.cluster }

// Trigger issues a low-level operation asynchronously and returns its call
// handle. The call completes when (and if) the environment lets the
// operation take effect and respond; operations on crashed servers remain
// pending forever, exactly like the paper's faulty base objects.
func (f *Fabric) Trigger(client types.ClientID, obj types.ObjectID, inv baseobj.Invocation) *Call {
	server, err := f.cluster.Delta(obj)
	if err != nil {
		// Unknown object: a programming error, delivered as an error
		// response so tests can catch it.
		call := &Call{ev: TriggerEvent{Client: client, Object: obj, Inv: inv}}
		call.complete(Outcome{Err: err})
		return call
	}

	f.mu.Lock()
	f.nextToken++
	token := f.nextToken
	f.triggers++
	f.used[obj] = struct{}{}
	f.mu.Unlock()

	ev := TriggerEvent{Token: token, Client: client, Object: obj, Server: server, Inv: inv}
	call := &Call{ev: ev}
	f.emit(TraceTrigger, ev, server)

	srv, err := f.cluster.Server(server)
	if err != nil {
		call.complete(Outcome{Err: err})
		return call
	}
	if srv.Crashed() {
		f.drop(&heldOp{ev: ev, phase: PhaseDropped, call: call})
		return call
	}

	if f.gate.BeforeApply(ev) == Hold {
		f.emit(TraceHoldApply, ev, server)
		f.park(&heldOp{ev: ev, phase: PhaseApply, call: call})
		return call
	}
	f.applyAndRespond(ev, call)
	return call
}

// applyAndRespond linearizes the op and routes its response through the
// gate. It is called without f.mu held.
func (f *Fabric) applyAndRespond(ev TriggerEvent, call *Call) {
	resp, err := f.cluster.Apply(ev.Object, ev.Client, ev.Inv)
	if err != nil {
		if errors.Is(err, cluster.ErrServerCrashed) {
			// A crashed object never responds.
			f.drop(&heldOp{ev: ev, phase: PhaseDropped, call: call})
			return
		}
		call.complete(Outcome{Err: err})
		return
	}
	f.emit(TraceApply, ev, ev.Server)
	if f.gate.BeforeRespond(ev, resp) == Hold {
		f.emit(TraceHoldRespond, ev, ev.Server)
		f.park(&heldOp{ev: ev, phase: PhaseRespond, resp: resp, call: call})
		return
	}
	f.emit(TraceRespond, ev, ev.Server)
	call.complete(Outcome{Resp: resp})
}

// park records a held operation.
func (f *Fabric) park(h *heldOp) {
	f.mu.Lock()
	f.held[h.ev.Token] = h
	f.mu.Unlock()
}

// drop records an operation that will never respond.
func (f *Fabric) drop(h *heldOp) {
	h.phase = PhaseDropped
	f.emit(TraceDrop, h.ev, h.ev.Server)
	f.mu.Lock()
	f.dropped[h.ev.Token] = h
	f.mu.Unlock()
}

// Release lets a held operation proceed: a PhaseApply op takes effect now
// (this is how a released covering write erases a newer value) and its
// response is delivered; a PhaseRespond op just delivers its response. If
// the op's server crashed in the meantime, the op is dropped instead.
func (f *Fabric) Release(token uint64) error {
	f.mu.Lock()
	h, ok := f.held[token]
	if ok {
		delete(f.held, token)
	}
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrNotHeld, token)
	}
	srv, err := f.cluster.Server(h.ev.Server)
	if err != nil {
		return err
	}
	if srv.Crashed() {
		f.drop(h)
		return nil
	}
	f.emit(TraceRelease, h.ev, h.ev.Server)
	switch h.phase {
	case PhaseApply:
		f.applyAndRespondReleased(h)
	case PhaseRespond:
		f.emit(TraceRespond, h.ev, h.ev.Server)
		h.call.complete(Outcome{Resp: h.resp})
	default:
		return fmt.Errorf("fabric: cannot release op in phase %v", h.phase)
	}
	return nil
}

// applyAndRespondReleased applies a released PhaseApply op. The respond gate
// is consulted again so the environment may keep delaying the response.
func (f *Fabric) applyAndRespondReleased(h *heldOp) {
	resp, err := f.cluster.Apply(h.ev.Object, h.ev.Client, h.ev.Inv)
	if err != nil {
		if errors.Is(err, cluster.ErrServerCrashed) {
			f.drop(h)
			return
		}
		h.call.complete(Outcome{Err: err})
		return
	}
	f.emit(TraceApply, h.ev, h.ev.Server)
	if f.gate.BeforeRespond(h.ev, resp) == Hold {
		f.emit(TraceHoldRespond, h.ev, h.ev.Server)
		f.park(&heldOp{ev: h.ev, phase: PhaseRespond, resp: resp, call: h.call})
		return
	}
	f.emit(TraceRespond, h.ev, h.ev.Server)
	h.call.complete(Outcome{Resp: resp})
}

// ReleaseWhere releases every held op matching pred and returns how many
// were released.
func (f *Fabric) ReleaseWhere(pred func(PendingOp) bool) int {
	f.mu.Lock()
	var tokens []uint64
	for token, h := range f.held {
		if pred(PendingOp{Event: h.ev, Phase: h.phase}) {
			tokens = append(tokens, token)
		}
	}
	f.mu.Unlock()
	sort.Slice(tokens, func(i, j int) bool { return tokens[i] < tokens[j] })
	released := 0
	for _, token := range tokens {
		if err := f.Release(token); err == nil {
			released++
		}
	}
	return released
}

// Crash crashes a server: the cluster marks it (and all of its objects)
// crashed, and every held op on it is dropped — its clients will never hear
// back, matching the paper's server-granularity failures.
func (f *Fabric) Crash(server types.ServerID) error {
	if err := f.cluster.Crash(server); err != nil {
		return err
	}
	f.emit(TraceCrash, TriggerEvent{}, server)
	f.mu.Lock()
	for token, h := range f.held {
		if h.ev.Server == server {
			delete(f.held, token)
			h.phase = PhaseDropped
			f.dropped[token] = h
		}
	}
	f.mu.Unlock()
	return nil
}

// Pending returns a snapshot of every pending (held or dropped) operation,
// ordered by token. These are the paper's pending low-level ops.
func (f *Fabric) Pending() []PendingOp {
	f.mu.Lock()
	ops := make([]PendingOp, 0, len(f.held)+len(f.dropped))
	for _, h := range f.held {
		ops = append(ops, PendingOp{Event: h.ev, Phase: h.phase})
	}
	for _, h := range f.dropped {
		ops = append(ops, PendingOp{Event: h.ev, Phase: h.phase})
	}
	f.mu.Unlock()
	sort.Slice(ops, func(i, j int) bool { return ops[i].Event.Token < ops[j].Event.Token })
	return ops
}

// CoveredObjects returns Cov(t): the set of base objects covered by a
// pending low-level write, in ascending object order.
func (f *Fabric) CoveredObjects() []types.ObjectID {
	seen := make(map[types.ObjectID]struct{})
	for _, op := range f.Pending() {
		if op.Event.Inv.Op.IsWrite() {
			seen[op.Event.Object] = struct{}{}
		}
	}
	ids := make([]types.ObjectID, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Triggers returns the total number of low-level operations triggered.
func (f *Fabric) Triggers() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.triggers
}

// UsedObjects returns the set of base objects that had at least one
// operation triggered on them: the paper's resource consumption of the run.
func (f *Fabric) UsedObjects() []types.ObjectID {
	f.mu.Lock()
	ids := make([]types.ObjectID, 0, len(f.used))
	for id := range f.used {
		ids = append(ids, id)
	}
	f.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Completion pairs a completed call with its outcome, for quorum waits.
type Completion struct {
	Call    *Call
	Outcome Outcome
}

// AwaitN registers completion callbacks on every call and blocks until n of
// them complete or ctx is done. The returned slice holds the first n
// completions in completion order. AwaitN must be used with fresh calls: it
// replaces any previously registered callback.
func AwaitN(ctx context.Context, calls []*Call, n int) ([]Completion, error) {
	if n <= 0 {
		return nil, nil
	}
	if n > len(calls) {
		return nil, fmt.Errorf("fabric: await %d of %d calls", n, len(calls))
	}
	ch := make(chan Completion, len(calls))
	for _, call := range calls {
		call := call
		call.OnComplete(func(o Outcome) {
			ch <- Completion{Call: call, Outcome: o}
		})
	}
	done := make([]Completion, 0, n)
	for len(done) < n {
		select {
		case <-ctx.Done():
			return done, fmt.Errorf("fabric: quorum wait (%d/%d): %w", len(done), n, ctx.Err())
		case c := <-ch:
			done = append(done, c)
		}
	}
	return done, nil
}
