// Package fabric implements the asynchronous shared-memory fabric between
// clients and the base objects hosted on fault-prone servers.
//
// The paper's model (Section 2) decouples a low-level operation's trigger
// from its response: "clients can trigger several low-level operations
// without waiting for the previously triggered operations to respond", and
// the environment "is allowed to prevent a pending low-level write from
// taking effect for arbitrarily long" [Aguilera, Englert, Gafni 2003]. The
// fabric realizes both powers:
//
//   - Trigger returns a *Call immediately; the response arrives later (or
//     never) through Call.OnComplete. TriggerBatch scatters a whole quorum
//     round in one dispatch pass.
//   - A Gate — the environment — may Hold any operation either before it
//     takes effect (phase apply: the op has NOT linearized; releasing it
//     later applies it then, possibly erasing a newer value) or before its
//     response is delivered (phase respond: the op HAS linearized but the
//     client does not know).
//   - Crashing a server silently drops every pending and future operation
//     on its objects: they remain pending forever.
//
// # Architecture: per-server dispatch lanes, pluggable backends
//
// Servers are independent fault domains, and the fabric is sharded along
// exactly that boundary. There is no global fabric lock. Each server gets a
// dispatch lane owning the server's held-op, in-flight, and crash-drop
// indexes; token allocation and the trigger counter are lock-free atomics;
// and object-to-server routing is resolved once per object and then served
// from a lock-free route cache. Operations on different servers therefore
// never contend inside the fabric — throughput scales with the number of
// servers, not with the number of clients. Aggregate views (Pending,
// CoveredObjects, UsedObjects) are merge-over-lane reads; the global token
// order makes the merged snapshots deterministic.
//
// The lane is also the transport seam: each lane delegates the actual
// carriage of an operation to a Lane backend (WithLanes). InProcLane (the
// default) applies synchronously and keeps the zero-overhead hot path;
// LatencyLane injects seeded per-op delay/jitter/straggler distributions,
// so quorum protocols face genuinely reordered asynchrony; and the network
// lane (internal/lanenet) speaks a length-prefixed protocol to a
// per-server TCP storage node, with transport failure mapped onto the
// fail-stop model via CrashReporter (reconnect-as-crash). The Gate
// adversary, held/release/drop accounting, and everything above the fabric
// compose with any backend.
//
// Membership is dynamic: the fabric serves the cluster's current View
// (epoch + ordered server set), AddServer admits a joiner as a brand-new
// never-reused server identity (on the TCP lane, a fresh session is the
// join), and Replace (see view.go for the protocol) migrates a departing
// server's objects — state included — onto a joiner without stopping
// clients. An operation caught in a view change completes with
// ErrViewChanged, which guarantees it never applied in the old view, so
// retrying it (RetryView) is exactly-once safe even for CAS. A server
// that leaves through Replace is a leave, not a crash: it never shows up
// in crash accounting, and the paper's f budget is spent only on real
// fail-stops.
//
// Pending write operations are exactly the paper's covering writes; the
// fabric exposes them via Pending and CoveredObjects for the covering
// experiments of Lemma 1.
package fabric

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baseobj"
	"repro/internal/cluster"
	"repro/internal/types"
)

// Decision is a gate verdict for a single operation phase.
type Decision int

const (
	// Pass lets the operation proceed.
	Pass Decision = iota + 1
	// Hold parks the operation until Release (or forever).
	Hold
)

// Phase identifies where in its lifecycle a pending operation is parked.
type Phase int

const (
	// PhaseApply means the op was held before taking effect: it has not
	// linearized. Releasing it applies it at release time.
	PhaseApply Phase = iota + 1
	// PhaseRespond means the op took effect but its response is held.
	PhaseRespond
	// PhaseDropped means the op's server crashed: it will never respond.
	PhaseDropped
	// PhaseInFlight means the op was handed to an asynchronous lane
	// backend (latency or network) and its response has not arrived. The
	// op has been triggered but has not linearized from the client's point
	// of view; a pending in-flight write covers its register like any
	// other pending write.
	PhaseInFlight
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseApply:
		return "held-apply"
	case PhaseRespond:
		return "held-respond"
	case PhaseDropped:
		return "dropped"
	case PhaseInFlight:
		return "in-flight"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// TriggerEvent describes a triggered low-level operation. Gates receive it
// to make identity-based (deterministic) decisions.
type TriggerEvent struct {
	// Token uniquely identifies the low-level operation. Tokens are
	// allocated from one global monotone counter, so they totally order
	// triggers across all lanes.
	Token uint64
	// Client is the triggering client.
	Client types.ClientID
	// Object is the target base object and Server = delta(Object).
	Object types.ObjectID
	Server types.ServerID
	// Inv is the invocation.
	Inv baseobj.Invocation
}

// Gate is the environment: it decides, per operation and phase, whether the
// fabric may proceed. Implementations must be safe for concurrent use and
// must not call back into the Fabric from within a decision.
type Gate interface {
	// BeforeApply is consulted before the operation takes effect.
	BeforeApply(ev TriggerEvent) Decision
	// BeforeRespond is consulted after the operation took effect and
	// before its response is delivered.
	BeforeRespond(ev TriggerEvent, resp baseobj.Response) Decision
}

// PassGate is the benign environment: every operation proceeds immediately.
type PassGate struct{}

// BeforeApply implements Gate.
func (PassGate) BeforeApply(TriggerEvent) Decision { return Pass }

// BeforeRespond implements Gate.
func (PassGate) BeforeRespond(TriggerEvent, baseobj.Response) Decision { return Pass }

// GateFuncs adapts two plain functions into a Gate. A nil function passes.
type GateFuncs struct {
	Apply   func(ev TriggerEvent) Decision
	Respond func(ev TriggerEvent, resp baseobj.Response) Decision
}

// BeforeApply implements Gate.
func (g GateFuncs) BeforeApply(ev TriggerEvent) Decision {
	if g.Apply == nil {
		return Pass
	}
	return g.Apply(ev)
}

// BeforeRespond implements Gate.
func (g GateFuncs) BeforeRespond(ev TriggerEvent, resp baseobj.Response) Decision {
	if g.Respond == nil {
		return Pass
	}
	return g.Respond(ev, resp)
}

// Compile-time interface compliance checks.
var (
	_ Gate = PassGate{}
	_ Gate = GateFuncs{}
)

// Outcome is the result of a completed low-level operation.
type Outcome struct {
	Resp baseobj.Response
	Err  error
}

// Call completion states.
const (
	callPending uint32 = iota
	callWriting        // a completer won the race and is writing the outcome
	callDone
)

// consumedCallback marks a call's callback slot as closed: the call
// completed and any armed callback has fired.
var consumedCallback = new(func(Outcome))

// Call is the client-side handle of a triggered low-level operation. It is
// lock-free: completion and callback hand-off are a small atomic state
// machine, so completing calls never serializes concurrent quorum rounds.
type Call struct {
	ev  TriggerEvent
	out Outcome // written once by the completer, published by state

	// fn is the pre-registered completion callback (TriggerFn,
	// BatchOp.Done): written before the op is handed to any lane, read by
	// the completer after the hand-off's happens-before edge, so it needs
	// no atomics and no per-registration allocation — the big win over
	// OnComplete on high-rate paths.
	fn func(Outcome)

	state atomic.Uint32
	done  atomic.Pointer[func(Outcome)]
}

// Event returns the call's trigger event.
func (c *Call) Event() TriggerEvent { return c.ev }

// Token returns the operation token.
func (c *Call) Token() uint64 { return c.ev.Token }

// Outcome returns the call's outcome, if it has completed.
func (c *Call) Outcome() (Outcome, bool) {
	if c.state.Load() != callDone {
		return Outcome{}, false
	}
	return c.out, true
}

// OnComplete registers fn to run exactly once when the call completes; if
// the call already completed, fn runs immediately in the caller's
// goroutine. Exactly one callback may be registered per pending call:
// registering a second callback while the first is still armed panics,
// because the first caller's completion would be silently lost. Callbacks
// must be non-blocking (typically a send into a buffered channel).
func (c *Call) OnComplete(fn func(Outcome)) {
	if c.done.Load() == consumedCallback {
		// Already completed and the slot is closed (the common case on the
		// synchronous in-process lane, where the call completed inside
		// Trigger): fire inline without forcing fn onto the heap.
		fn(c.out)
		return
	}
	c.onCompleteSlow(fn)
}

// onCompleteSlow is the pending-call path of OnComplete, split out so the
// fast path above never forces fn onto the heap (escape analysis is static:
// keeping the &fn below in the same function body would heap-allocate the
// callback even when the inline branch fires).
func (c *Call) onCompleteSlow(fn func(Outcome)) {
	p := &fn
	for {
		cur := c.done.Load()
		switch cur {
		case nil:
			if c.done.CompareAndSwap(nil, p) {
				// The completer's swap (which runs after the state is
				// published) will observe p and fire it.
				return
			}
		case consumedCallback:
			// Already completed and the slot is closed: the done load
			// ordered after the completer's swap, so out is visible.
			fn(c.out)
			return
		default:
			panic(fmt.Sprintf("fabric: OnComplete registered twice on pending call %d", c.ev.Token))
		}
	}
}

// complete delivers the outcome, firing the callback at most once.
func (c *Call) complete(o Outcome) {
	if !c.state.CompareAndSwap(callPending, callWriting) {
		return
	}
	c.out = o
	c.state.Store(callDone)
	if fn := c.done.Swap(consumedCallback); fn != nil && fn != consumedCallback {
		(*fn)(o)
	}
	if c.fn != nil {
		c.fn(o)
	}
}

// completeUnshared delivers the outcome of a call that has not escaped the
// triggering goroutine yet (the synchronous in-process fast path completes
// the call before Trigger returns it). No completer can race it and no
// callback can be armed, so the pending→writing claim and the callback
// hand-off collapse to two plain publishes — the claim CAS the generic
// complete pays is pure overhead here.
func (c *Call) completeUnshared(o Outcome) {
	c.out = o
	c.state.Store(callDone)
	c.done.Store(consumedCallback)
	if c.fn != nil {
		c.fn(o)
	}
}

// PendingOp describes a low-level operation that was triggered but has not
// responded: the paper's "pending" ops, whose write instances cover their
// target registers.
type PendingOp struct {
	Event TriggerEvent
	Phase Phase
}

// heldOp is the fabric-internal record of a parked or in-flight operation.
// For in-flight ops (prepInflight) it doubles as the receiver of the lane
// hand-off's apply/complete methods, so one allocation carries the whole
// delivery instead of a record plus two capture-heavy closures.
type heldOp struct {
	ev    TriggerEvent
	rt    *route
	phase Phase
	resp  baseobj.Response // valid when phase == PhaseRespond
	call  *Call
	f     *Fabric // set for in-flight ops (lane hand-off methods)
}

// applyOp is the in-flight op's ApplyFunc: linearize against the server's
// base object unless the server crashed while the op was on the wire.
func (h *heldOp) applyOp() (baseobj.Response, error) {
	if h.rt.srv.Crashed() {
		return baseobj.Response{}, errCrashedDrop
	}
	return h.rt.obj.Apply(h.ev.Client, h.ev.Inv)
}

// completeOp is the in-flight op's CompleteFunc: claim the in-flight entry
// (crash drains race this claim; exactly one side wins) and route the
// response through the respond gate.
func (h *heldOp) completeOp(resp baseobj.Response, err error) {
	if !h.rt.lane.takeInflight(h.ev.Token) {
		return // a crash drain claimed the op: it is dropped
	}
	if errors.Is(err, errCrashedDrop) || h.rt.srv.Crashed() {
		h.f.drop(h)
		return
	}
	h.f.respond(h.rt, h.call, resp, err)
}

// Errors reported by fabric operations.
var (
	// ErrNotHeld is returned by Release for unknown or already released
	// tokens.
	ErrNotHeld = errors.New("fabric: token not held")
	// ErrViewChanged is the retryable completion of an operation that
	// raced a view change: it reached a departing server before taking
	// effect. The invariant clients rely on is strict — an operation that
	// completes with a view-change error NEVER applied and never will, so
	// re-triggering it in the new view is exactly-once safe even for
	// non-idempotent ops (CAS).
	ErrViewChanged = errors.New("fabric: view changed")
)

// IsViewChange reports whether err is a retryable view-change completion:
// the op never took effect and should re-trigger through a fresh route.
// baseobj.ErrSealed counts — a sealed object rejected the write before it
// applied, the synchronous-lane face of the same freeze.
func IsViewChange(err error) bool {
	return errors.Is(err, ErrViewChanged) || errors.Is(err, baseobj.ErrSealed)
}

// viewChangedErr builds the per-server retryable completion error.
func viewChangedErr(server types.ServerID) error {
	return fmt.Errorf("%w: server %d departing", ErrViewChanged, server)
}

// MaxViewRetries bounds transparent per-operation view-change retries. A
// reconfiguration transfers state in a handful of delivery round-trips;
// with the backoff below the retry budget covers hundreds of milliseconds
// of coordinator work before an op surfaces the error.
const MaxViewRetries = 100

// ViewRetryDelay returns the backoff before retry attempt `attempt`
// (0-based): the first two retries are immediate — the route re-resolves
// on the spot once the epoch advanced — then exponential from 50µs capped
// at 2ms, so retry storms never saturate a mid-transfer coordinator.
func ViewRetryDelay(attempt int) time.Duration {
	if attempt < 2 {
		return 0
	}
	d := 50 * time.Microsecond << uint(min(attempt-2, 6))
	return min(d, 2*time.Millisecond)
}

// RetryView runs attempt until it stops failing with a view-change error,
// sleeping ViewRetryDelay between tries — the blocking-path analogue of
// the round engine's built-in re-scatter. Any other outcome (success or a
// real error) returns immediately.
func RetryView(ctx context.Context, attempt func() (types.TSValue, error)) (types.TSValue, error) {
	for i := 0; ; i++ {
		v, err := attempt()
		if err == nil || !IsViewChange(err) || i >= MaxViewRetries {
			return v, err
		}
		if d := ViewRetryDelay(i); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return v, ctx.Err()
			case <-t.C:
			}
		} else if ctx.Err() != nil {
			return v, ctx.Err()
		}
	}
}

// errCrashedDrop is the internal sentinel an ApplyFunc returns when the
// op's server crashed before delivery: the fabric maps it to the dropped
// (pending forever) state instead of completing the call with an error.
var errCrashedDrop = errors.New("fabric: server crashed before delivery")

// route is a resolved object: its server, lane, and the object itself,
// stamped with the view epoch it was resolved under. A route is immutable
// once cached — except for the used flag, which latches to true on the
// first trigger — but it is only *valid* while the cluster's epoch still
// matches: a reconfiguration bumps the epoch, every lookup notices the
// mismatch, and the object re-resolves to its (possibly new) server.
type route struct {
	epoch  uint64
	server types.ServerID
	srv    *cluster.Server
	lane   *lane
	obj    baseobj.Object
	used   atomic.Bool // had at least one operation triggered
}

// markUsed latches the route's used flag (idempotent, lock-free on the
// overwhelmingly common already-marked path).
func (r *route) markUsed() {
	if !r.used.Load() {
		r.used.Store(true)
	}
}

// routeTable is a lock-free object-indexed route cache. Object IDs are
// small dense integers (the cluster allocates them sequentially), so the
// table is a grow-only slice published atomically; reads are a bounds
// check and an index.
type routeTable struct {
	p  atomic.Pointer[[]*route]
	mu sync.Mutex // serializes growth only
}

// get returns the cached route, or nil.
func (t *routeTable) get(obj types.ObjectID) *route {
	tab := t.p.Load()
	if tab == nil || int(obj) < 0 || int(obj) >= len(*tab) {
		return nil
	}
	return (*tab)[obj]
}

// put caches a route copy-on-write: a published table is never mutated, so
// readers stay lock-free. Resolution happens once per object per epoch, so
// the copy cost is setup- and reconfiguration-time only. A same-or-newer
// cached entry wins the benign resolver race; a stale-epoch entry is
// overwritten (never resurrected), inheriting the used latch so resource
// accounting survives migration.
func (t *routeTable) put(obj types.ObjectID, rt *route) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var cur []*route
	if p := t.p.Load(); p != nil {
		cur = *p
	}
	if int(obj) < len(cur) {
		if old := cur[obj]; old != nil {
			if old.epoch >= rt.epoch {
				return // lost a benign race with a same-or-newer resolver
			}
			if old.used.Load() {
				rt.used.Store(true)
			}
		}
	}
	grown := make([]*route, max(int(obj)+1, len(cur)))
	copy(grown, cur)
	grown[obj] = rt
	t.p.Store(&grown)
}

// snapshot returns the current table (nil entries for unresolved objects).
func (t *routeTable) snapshot() []*route {
	if p := t.p.Load(); p != nil {
		return *p
	}
	return nil
}

// Fabric routes low-level operations from clients to base objects through
// the gate.
type Fabric struct {
	cluster *cluster.Cluster
	gate    Gate
	tracer  Tracer

	// benign short-circuits gate consultation when the gate is the
	// default PassGate: the benign environment never holds, so the hot
	// path skips two interface calls (and two event copies) per op.
	benign bool

	// nextToken allocates operation tokens; it doubles as the trigger
	// counter, since every routed trigger allocates exactly one token.
	nextToken atomic.Uint64

	laneMaker LaneMaker
	// lanes is the dispatch lane list, indexed by ServerID and published
	// copy-on-write: AddServer appends under laneMu while the dispatch hot
	// path reads the published snapshot lock-free.
	lanes  atomic.Pointer[[]*lane]
	laneMu sync.Mutex
	routes routeTable

	// reconfMu serializes view changes (Replace/Resize/AddServer
	// coordination).
	reconfMu sync.Mutex

	// Transition test hooks (nil outside tests): crash-injection points at
	// the two windows where real systems lose data. See HookTransition.
	testAfterFreeze func()
	testBeforeMove  func(obj types.ObjectID, to types.ServerID)
}

// HookTransition installs test-only callbacks at the edges of a
// transition's transfer window: afterFreeze fires once per Resize after
// every departing lane froze and drained (before the quiesce wait);
// beforeMove fires after an object's state was fetched and sealed, right
// before its MoveObject. Tests use them to crash servers inside the
// sealed-but-not-activated window; production code must leave them nil.
// Install hooks before starting any transition — the fields are read
// without synchronization by the coordinator.
func (f *Fabric) HookTransition(afterFreeze func(), beforeMove func(obj types.ObjectID, to types.ServerID)) {
	f.testAfterFreeze = afterFreeze
	f.testBeforeMove = beforeMove
}

// laneList returns the published lane list.
func (f *Fabric) laneList() []*lane { return *f.lanes.Load() }

// laneFor returns server's dispatch lane, or nil for an unknown server.
func (f *Fabric) laneFor(server types.ServerID) *lane {
	lanes := f.laneList()
	if int(server) < 0 || int(server) >= len(lanes) {
		return nil
	}
	return lanes[server]
}

// Option configures a Fabric.
type Option func(*Fabric)

// WithGate installs the environment gate; the default is PassGate.
func WithGate(g Gate) Option {
	return func(f *Fabric) {
		if g != nil {
			f.gate = g
		}
	}
}

// New creates a fabric over the given cluster, with one dispatch lane per
// server. The lane backend defaults to InProcLane; WithLanes swaps in a
// latency-injecting or network backend per server.
func New(c *cluster.Cluster, opts ...Option) *Fabric {
	f := &Fabric{
		cluster:   c,
		gate:      PassGate{},
		laneMaker: func(types.ServerID) Lane { return InProcLane{} },
	}
	for _, opt := range opts {
		opt(f)
	}
	_, f.benign = f.gate.(PassGate)
	lanes := make([]*lane, c.N())
	for i := range lanes {
		lanes[i] = newLane(types.ServerID(i), f.laneMaker(types.ServerID(i)))
	}
	// Publish the lane list before installing crash hooks: a backend whose
	// transport is already dead fires the hook synchronously from inside
	// SetCrashHook, and Crash needs the list.
	f.lanes.Store(&lanes)
	for _, l := range lanes {
		if cr, ok := l.backend.(CrashReporter); ok {
			// A failed transport is a crashed server: reconnect-as-crash.
			server := l.server
			cr.SetCrashHook(func() { _ = f.Crash(server) })
		}
	}
	return f
}

// AddServer grows the cluster by one server and wires its dispatch lane,
// activating a new view epoch. maker builds the lane backend (nil uses the
// fabric's default maker — the one New ran, so latency-lane fabrics give
// the joiner its own seeded delay sub-stream). The joiner starts empty;
// Replace (or cluster.MoveObject) transfers state onto it.
func (f *Fabric) AddServer(maker LaneMaker) (types.ServerID, error) {
	f.laneMu.Lock()
	defer f.laneMu.Unlock()
	if maker == nil {
		maker = f.laneMaker
	}
	srv := f.cluster.AddServer()
	id := srv.ID()
	lanes := f.laneList()
	if int(id) != len(lanes) {
		// Lanes and cluster must grow in lockstep; a divergence means the
		// cluster was grown behind the fabric's back.
		return 0, fmt.Errorf("fabric: lane/cluster divergence: new server %d, %d lanes", id, len(lanes))
	}
	backend := maker(id)
	grown := make([]*lane, len(lanes)+1)
	copy(grown, lanes)
	grown[len(lanes)] = newLane(id, backend)
	f.lanes.Store(&grown)
	if cr, ok := backend.(CrashReporter); ok {
		cr.SetCrashHook(func() { _ = f.Crash(id) })
	}
	return id, nil
}

// Close closes every lane backend. The in-process and latency lanes have no
// resources; network lanes close their connections.
func (f *Fabric) Close() error {
	var first error
	for _, l := range f.laneList() {
		if err := l.backend.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Cluster returns the underlying cluster.
func (f *Fabric) Cluster() *cluster.Cluster { return f.cluster }

// route resolves an object to its lane, caching the result: after the
// first operation on an object, triggering never touches the cluster-wide
// tables again.
// ServerFor resolves the server hosting an object without dispatching
// anything — the read-only face of the route table. Round engines use it to
// build per-server accounting before a scatter, so completion callbacks
// registered at trigger time (BatchOp.Done) find it ready even when the
// in-process lane completes inside the TriggerBatch call itself.
func (f *Fabric) ServerFor(obj types.ObjectID) (types.ServerID, error) {
	rt, err := f.route(obj)
	if err != nil {
		return 0, err
	}
	return rt.server, nil
}

func (f *Fabric) route(obj types.ObjectID) (*route, error) {
	// The epoch is captured BEFORE the delta lookup: a concurrent
	// migration that publishes a new mapping then bumps the epoch can at
	// worst produce a (new mapping, old epoch) cache entry — which the
	// next lookup re-resolves — never a stale mapping stamped current.
	epoch := f.cluster.Epoch()
	if rt := f.routes.get(obj); rt != nil && rt.epoch == epoch {
		return rt, nil
	}
	srv, o, err := f.cluster.Route(obj)
	if err != nil {
		if errors.Is(err, cluster.ErrObjectRetired) {
			// A stale route to an object a transition retired: the op never
			// applied, so it may retry against the construction's new
			// placement like any other view-change completion.
			return nil, fmt.Errorf("%w: %v", ErrViewChanged, err)
		}
		return nil, err
	}
	l := f.laneFor(srv.ID())
	if l == nil {
		return nil, fmt.Errorf("fabric: no dispatch lane for server %d (cluster grown behind the fabric's back?)", srv.ID())
	}
	rt := &route{epoch: epoch, server: srv.ID(), srv: srv, lane: l, obj: o}
	if m, ok := rt.lane.backend.(ObjectMirror); ok {
		// Let external-store backends host a matching object before any
		// operation on it is delivered. Mirroring happens before the route
		// is published, so every dispatch uses an already-mirrored route;
		// the benign double-mirror race with a concurrent resolver is
		// absorbed by idempotent placement on the store side. For a
		// migrated object the mirrored state is the object's current
		// (transferred) value — see lanenet's stateful place frames.
		m.MirrorObject(o)
	}
	f.routes.put(obj, rt)
	return rt, nil
}

// Trigger issues a low-level operation asynchronously and returns its call
// handle. The call completes when (and if) the environment lets the
// operation take effect and respond; operations on crashed servers remain
// pending forever, exactly like the paper's faulty base objects.
func (f *Fabric) Trigger(client types.ClientID, obj types.ObjectID, inv baseobj.Invocation) *Call {
	rt, err := f.route(obj)
	if err != nil {
		// Unknown object: a programming error, delivered as an error
		// response so tests can catch it.
		call := &Call{ev: TriggerEvent{Client: client, Object: obj, Inv: inv}}
		call.completeUnshared(Outcome{Err: err})
		return call
	}
	return f.trigger(client, obj, inv, rt, nil)
}

// TriggerFn is Trigger with the completion callback registered before
// dispatch, the single-op analogue of BatchOp.Done: fn fires exactly once
// when the call completes, without OnComplete's per-registration heap
// allocation and atomic hand-off. fn must be non-blocking; on the
// in-process lane it runs inline before TriggerFn returns. Do not also call
// OnComplete on the returned call.
func (f *Fabric) TriggerFn(client types.ClientID, obj types.ObjectID, inv baseobj.Invocation, fn func(Outcome)) *Call {
	rt, err := f.route(obj)
	if err != nil {
		call := &Call{ev: TriggerEvent{Client: client, Object: obj, Inv: inv}, fn: fn}
		call.completeUnshared(Outcome{Err: err})
		return call
	}
	return f.trigger(client, obj, inv, rt, fn)
}

// BatchOp is one operation of a TriggerBatch scatter.
type BatchOp struct {
	// Object is the target base object.
	Object types.ObjectID
	// Inv is the invocation.
	Inv baseobj.Invocation
	// Done, when non-nil, is the op's completion callback, registered
	// before dispatch — equivalent to calling OnComplete on the returned
	// call, minus the per-op heap allocation and atomic hand-off. Like
	// OnComplete callbacks it must be non-blocking and may fire from a lane
	// goroutine (or inline, on the in-process lane, before TriggerBatch
	// returns).
	Done func(Outcome)
}

// TriggerBatch scatters a whole round of low-level operations in one
// dispatch pass and returns the calls in input order. It is semantically
// identical to calling Trigger once per op — each op gets its own token,
// gate decisions (consulted in input order), and lifecycle — but the batch
// shape lets the fabric amortize the machinery: one token-block allocation
// instead of n atomic increments, one call-slab allocation instead of n,
// and one hand-off per lane to backends that accept groups (GroupLane), so
// an event-loop lane sees a whole round in one mailbox message. In-process
// operations still apply synchronously at their input position, exactly as
// a loop of Trigger calls would — the exhaustive sweeps depend on that
// order.
func (f *Fabric) TriggerBatch(client types.ClientID, ops []BatchOp) []*Call {
	return f.triggerGroup(client, ops, false)
}

// TriggerScan scatters an all-read batch whose per-server groups are each
// answered from one consistent snapshot: on the in-process lane the fabric
// locks every target object of a server (in ascending object order) and
// reads them under the locks; event-loop and network backends that
// implement ScanLane apply the group back-to-back with nothing interleaved.
// A scan is still semantically a set of independent low-level reads — the
// snapshot only *restricts* the interleavings to ones where each server's
// reads happen at a single point — so every caller of TriggerBatch over
// reads may use it; Algorithm 2's collects (internal/emulation/rounds
// ScatterScan) are the intended user. Non-read invocations complete with an
// error. Under a holding gate, held members degrade to individually
// released reads and only the gate-passed remainder is snapshotted.
func (f *Fabric) TriggerScan(client types.ClientID, ops []BatchOp) []*Call {
	return f.triggerGroup(client, ops, true)
}

// triggerGroup is the shared TriggerBatch/TriggerScan dispatch pass.
func (f *Fabric) triggerGroup(client types.ClientID, ops []BatchOp, scan bool) []*Call {
	n := len(ops)
	if n == 0 {
		return nil
	}
	calls := make([]*Call, n)
	slab := make([]Call, n)
	routes := make([]*route, n)
	routed := 0
	for i, op := range ops {
		rt, err := f.route(op.Object)
		if err == nil && scan && !op.Inv.Op.IsRead() {
			err = fmt.Errorf("fabric: scan op %v on object %d is not a read", op.Inv.Op, op.Object)
		}
		if err != nil {
			c := &slab[i]
			c.ev = TriggerEvent{Client: client, Object: op.Object, Inv: op.Inv}
			c.fn = op.Done
			c.completeUnshared(Outcome{Err: err})
			calls[i] = c
			continue
		}
		routes[i] = rt
		routed++
	}
	if routed == 0 {
		return calls
	}
	// One token-block allocation orders the whole batch: the tokens are
	// consecutive in input order — the exact sequence a loop of per-op
	// Add(1) calls produces — for one atomic RMW instead of `routed`.
	token := f.nextToken.Add(uint64(routed)) - uint64(routed)

	// Gate-passed ops for asynchronous backends are staged per lane and
	// handed off after the pass; both slices are lazily allocated so the
	// all-in-process batch (the sweep hot path) never pays for them. The
	// lane snapshot is taken after routing: lanes grow append-only, so
	// every routed server's index is within it.
	lanes := f.laneList()
	var groups [][]LaneOp
	var scanGroups [][]scanOp
	for i, op := range ops {
		rt := routes[i]
		if rt == nil {
			continue
		}
		token++
		rt.markUsed()
		c := &slab[i]
		c.ev = TriggerEvent{Token: token, Client: client, Object: op.Object, Server: rt.server, Inv: op.Inv}
		c.fn = op.Done
		calls[i] = c
		f.emit(TraceTrigger, &c.ev, rt.server)
		if rt.srv.Crashed() {
			f.drop(&heldOp{ev: c.ev, rt: rt, phase: PhaseDropped, call: c})
			continue
		}
		if rt.srv.Departing() {
			// The server is frozen for a view change: complete retryably
			// (the op never reaches the object) instead of pending forever.
			c.completeUnshared(Outcome{Err: viewChangedErr(rt.server)})
			continue
		}
		if !f.benign && f.gate.BeforeApply(c.ev) == Hold {
			f.emit(TraceHoldApply, &c.ev, rt.server)
			f.park(&heldOp{ev: c.ev, rt: rt, phase: PhaseApply, call: c})
			continue
		}
		l := rt.lane
		if l.inproc {
			if scan {
				if scanGroups == nil {
					scanGroups = make([][]scanOp, len(lanes))
				}
				scanGroups[l.server] = append(scanGroups[l.server], scanOp{rt: rt, call: c})
				continue
			}
			if f.benign {
				f.applyInline(rt, c)
			} else {
				resp, err := rt.obj.Apply(c.ev.Client, c.ev.Inv)
				f.respond(rt, c, resp, err)
			}
			continue
		}
		if lop, ok := f.prepInflight(rt, c); ok {
			if groups == nil {
				groups = make([][]LaneOp, len(lanes))
			}
			groups[l.server] = append(groups[l.server], lop)
		}
	}
	for _, g := range scanGroups {
		if len(g) > 0 {
			f.applyScanInline(g)
		}
	}
	for s, g := range groups {
		if len(g) == 0 {
			continue
		}
		backend := lanes[s].backend
		if scan {
			if sl, ok := backend.(ScanLane); ok {
				sl.DeliverScan(g)
				continue
			}
		}
		if gl, ok := backend.(GroupLane); ok {
			gl.DeliverGroup(g)
			continue
		}
		for _, lop := range g {
			backend.Deliver(lop.Ev, lop.Apply, lop.Complete)
		}
	}
	return calls
}

// scanOp is one in-process member of a snapshot scan group.
type scanOp struct {
	rt   *route
	call *Call
}

// applyScanInline answers one server's all-read scan group from a single
// consistent snapshot: every distinct target object's state lock is taken
// in ascending object order (the package-wide lock order — concurrent scans
// cannot deadlock), all reads apply under the locks, the locks drop, and
// only then do responses flow. A concurrent writer serializes against the
// whole cut, so no scan can observe object j's newer write but miss the
// same writer's earlier write to object i — the torn read that per-object
// locking allows.
func (f *Fabric) applyScanInline(group []scanOp) {
	byObj := make([]scanOp, len(group))
	copy(byObj, group)
	sort.Slice(byObj, func(i, j int) bool { return byObj[i].call.ev.Object < byObj[j].call.ev.Object })
	locked := make([]baseobj.Locker, 0, len(byObj))
	for i, s := range byObj {
		if i > 0 && s.call.ev.Object == byObj[i-1].call.ev.Object {
			continue
		}
		if lk, ok := s.rt.obj.(baseobj.Locker); ok {
			lk.LockState()
			locked = append(locked, lk)
		}
	}
	outs := make([]Outcome, len(group))
	for i, s := range group {
		var resp baseobj.Response
		var err error
		if lk, ok := s.rt.obj.(baseobj.Locker); ok {
			resp, err = lk.ApplyLocked(s.call.ev.Client, s.call.ev.Inv)
		} else {
			// Non-Locker custom objects read under their own locking; they
			// join the pass but not the snapshot guarantee.
			resp, err = s.rt.obj.Apply(s.call.ev.Client, s.call.ev.Inv)
		}
		outs[i] = Outcome{Resp: resp, Err: err}
	}
	for _, lk := range locked {
		lk.UnlockState()
	}
	for i, s := range group {
		if !f.benign {
			f.respond(s.rt, s.call, outs[i].Resp, outs[i].Err)
			continue
		}
		if outs[i].Err != nil {
			s.call.completeUnshared(Outcome{Err: outs[i].Err})
			continue
		}
		f.emit(TraceApply, &s.call.ev, s.call.ev.Server)
		f.emit(TraceRespond, &s.call.ev, s.call.ev.Server)
		s.call.completeUnshared(Outcome{Resp: outs[i].Resp})
	}
}

// trigger dispatches one routed operation.
func (f *Fabric) trigger(client types.ClientID, obj types.ObjectID, inv baseobj.Invocation, rt *route, fn func(Outcome)) *Call {
	token := f.nextToken.Add(1)
	rt.markUsed()

	call := &Call{ev: TriggerEvent{Token: token, Client: client, Object: obj, Server: rt.server, Inv: inv}, fn: fn}
	f.emit(TraceTrigger, &call.ev, rt.server)

	if rt.srv.Crashed() {
		f.drop(&heldOp{ev: call.ev, rt: rt, phase: PhaseDropped, call: call})
		return call
	}
	if rt.srv.Departing() {
		// Frozen for a view change: the op never reaches the object, so it
		// completes retryably instead of pending forever (unlike a crash).
		call.completeUnshared(Outcome{Err: viewChangedErr(rt.server)})
		return call
	}

	if f.benign && rt.lane.inproc {
		// Benign in-process fast path: the gate never holds and the apply
		// is the linearization point, so the op runs to completion inside
		// Trigger — and since the call has not escaped yet, completion
		// needs no claim CAS.
		f.applyInline(rt, call)
		return call
	}

	if !f.benign && f.gate.BeforeApply(call.ev) == Hold {
		f.emit(TraceHoldApply, &call.ev, rt.server)
		f.park(&heldOp{ev: call.ev, rt: rt, phase: PhaseApply, call: call})
		return call
	}
	f.deliver(rt, call)
	return call
}

// applyInline runs a benign in-process op to completion on the triggering
// goroutine. The call must not have escaped yet (completeUnshared).
func (f *Fabric) applyInline(rt *route, call *Call) {
	resp, err := rt.obj.Apply(call.ev.Client, call.ev.Inv)
	if err != nil {
		call.completeUnshared(Outcome{Err: err})
		return
	}
	f.emit(TraceApply, &call.ev, call.ev.Server)
	f.emit(TraceRespond, &call.ev, call.ev.Server)
	call.completeUnshared(Outcome{Resp: resp})
}

// deliver hands a gate-passed op to its server's lane backend and routes
// the response through the respond gate. The in-process backend completes
// inline (the object's own mutex is the linearization point, exactly the
// pre-lane-interface hot path); asynchronous backends get the op recorded
// in-flight first, so a crash while the op is on the wire moves it to the
// dropped state instead of racing its completion.
func (f *Fabric) deliver(rt *route, call *Call) {
	if rt.srv.Crashed() {
		// A crashed object never responds.
		f.drop(&heldOp{ev: call.ev, rt: rt, phase: PhaseDropped, call: call})
		return
	}
	if rt.srv.Departing() {
		// The server froze for a view change after the op passed the gate
		// (this path also catches released covering writes aimed at a
		// departing server): the op must NOT apply — its effect would be
		// invisible to the transferred state — so it completes retryably.
		call.complete(Outcome{Err: viewChangedErr(rt.server)})
		return
	}
	l := rt.lane
	if l.inproc {
		resp, err := rt.obj.Apply(call.ev.Client, call.ev.Inv)
		f.respond(rt, call, resp, err)
		return
	}
	if op, ok := f.prepInflight(rt, call); ok {
		l.backend.Deliver(op.Ev, op.Apply, op.Complete)
	}
}

// prepInflight records an op handed to an asynchronous backend and builds
// the backend hand-off with the fault model folded in: the apply closure
// drops ops whose server crashed before delivery, and the completion
// closure claims the in-flight entry (takeInflight) so completion and
// crash-drop stay mutually exclusive. ok is false when the server crashed
// around the in-flight insert and the op was dropped instead.
func (f *Fabric) prepInflight(rt *route, call *Call) (LaneOp, bool) {
	l := rt.lane
	h := &heldOp{ev: call.ev, rt: rt, phase: PhaseInFlight, call: call, f: f}
	if !l.putInflight(h) {
		// The lane froze for a view change before the insert: the op was
		// never handed to the backend, so it completes retryably. This check
		// runs under the same lock the coordinator's freeze takes, which is
		// what keeps the op from writing a frame behind the state fetch.
		call.complete(Outcome{Err: viewChangedErr(rt.server)})
		return LaneOp{}, false
	}
	if rt.srv.Crashed() {
		// The server crashed between the caller's check and the in-flight
		// insert; the crash drain may already have run past this token.
		if l.takeInflight(h.ev.Token) {
			f.drop(h)
		}
		return LaneOp{}, false
	}
	return LaneOp{Ev: h.ev, Apply: h.applyOp, Complete: h.completeOp}, true
}

// respond routes a delivered response through the respond gate and
// completes the call.
func (f *Fabric) respond(rt *route, call *Call, resp baseobj.Response, err error) {
	if err != nil {
		call.complete(Outcome{Err: err})
		return
	}
	f.emit(TraceApply, &call.ev, call.ev.Server)
	if !f.benign && f.gate.BeforeRespond(call.ev, resp) == Hold {
		f.emit(TraceHoldRespond, &call.ev, call.ev.Server)
		f.park(&heldOp{ev: call.ev, rt: rt, phase: PhaseRespond, resp: resp, call: call})
		return
	}
	f.emit(TraceRespond, &call.ev, call.ev.Server)
	call.complete(Outcome{Resp: resp})
}

// park records a held operation in its server's lane.
func (f *Fabric) park(h *heldOp) {
	l := h.rt.lane
	l.mu.Lock()
	l.held[h.ev.Token] = h
	l.mu.Unlock()
}

// drop records an operation that will never respond.
func (f *Fabric) drop(h *heldOp) {
	h.phase = PhaseDropped
	f.emit(TraceDrop, &h.ev, h.ev.Server)
	l := h.rt.lane
	l.mu.Lock()
	l.dropped[h.ev.Token] = h
	l.mu.Unlock()
}

// take removes and returns the held op with the given token, if any lane
// holds it. Tokens do not encode their lane, so this scans the (small,
// fixed) lane set; Release is an adversary-path operation, never a hot one.
func (f *Fabric) take(token uint64) (*heldOp, bool) {
	for _, l := range f.laneList() {
		l.mu.Lock()
		h, ok := l.held[token]
		if ok {
			delete(l.held, token)
		}
		l.mu.Unlock()
		if ok {
			return h, true
		}
	}
	return nil, false
}

// Release lets a held operation proceed: a PhaseApply op takes effect now
// (this is how a released covering write erases a newer value) and its
// response is delivered; a PhaseRespond op just delivers its response. If
// the op's server crashed in the meantime, the op is dropped instead.
func (f *Fabric) Release(token uint64) error {
	h, ok := f.take(token)
	if !ok {
		return fmt.Errorf("%w: %d", ErrNotHeld, token)
	}
	return f.release(h)
}

// release lets a taken held op proceed.
func (f *Fabric) release(h *heldOp) error {
	if h.rt.srv.Crashed() {
		f.drop(h)
		return nil
	}
	if h.rt.srv.Departing() {
		// The op's server froze for a view change while the op was parked.
		// The two phases MUST diverge: a PhaseApply op never took effect (it
		// completes retryably — applying it now would mutate state behind the
		// transfer), while a PhaseRespond op already linearized before the
		// freeze, so its effect is in the transferred state and it must
		// complete with its real response — a view-change error would make
		// the client re-apply an op that already happened.
		f.emit(TraceRelease, &h.ev, h.ev.Server)
		switch h.phase {
		case PhaseApply:
			h.call.complete(Outcome{Err: viewChangedErr(h.ev.Server)})
		case PhaseRespond:
			f.emit(TraceRespond, &h.ev, h.ev.Server)
			h.call.complete(Outcome{Resp: h.resp})
		default:
			return fmt.Errorf("fabric: cannot release op in phase %v", h.phase)
		}
		return nil
	}
	f.emit(TraceRelease, &h.ev, h.ev.Server)
	switch h.phase {
	case PhaseApply:
		// The apply gate already held (and now released) the op, so it
		// re-enters the delivery path past the gate: the lane backend
		// carries it to the server, and the respond gate is consulted
		// again so the environment may keep delaying the response.
		f.deliver(h.rt, h.call)
	case PhaseRespond:
		f.emit(TraceRespond, &h.ev, h.ev.Server)
		h.call.complete(Outcome{Resp: h.resp})
	default:
		return fmt.Errorf("fabric: cannot release op in phase %v", h.phase)
	}
	return nil
}

// ReleaseWhere releases every held op matching pred, in ascending token
// order, and returns how many were released.
func (f *Fabric) ReleaseWhere(pred func(PendingOp) bool) int {
	var tokens []uint64
	for _, l := range f.laneList() {
		l.mu.Lock()
		for token, h := range l.held {
			if pred(PendingOp{Event: h.ev, Phase: h.phase}) {
				tokens = append(tokens, token)
			}
		}
		l.mu.Unlock()
	}
	sort.Slice(tokens, func(i, j int) bool { return tokens[i] < tokens[j] })
	released := 0
	for _, token := range tokens {
		if err := f.Release(token); err == nil {
			released++
		}
	}
	return released
}

// Crash crashes a server: the cluster marks it (and all of its objects)
// crashed, and every held op on its lane is dropped — its clients will
// never hear back, matching the paper's server-granularity failures.
func (f *Fabric) Crash(server types.ServerID) error {
	if err := f.cluster.Crash(server); err != nil {
		return err
	}
	f.emit(TraceCrash, &TriggerEvent{}, server)
	l := f.laneFor(server)
	if l == nil {
		return fmt.Errorf("fabric: no dispatch lane for server %d", server)
	}
	l.mu.Lock()
	for token, h := range l.held {
		delete(l.held, token)
		h.phase = PhaseDropped
		l.dropped[token] = h
	}
	// In-flight ops (on the wire of an asynchronous lane) are dropped too:
	// removing them from the in-flight index makes any late completion a
	// no-op, so the op stays pending forever like every crashed-server op.
	for token, h := range l.inflight {
		delete(l.inflight, token)
		h.phase = PhaseDropped
		l.dropped[token] = h
	}
	l.mu.Unlock()
	return nil
}

// Pending returns a snapshot of every pending (held or dropped) operation,
// merged over all lanes and ordered by token. These are the paper's
// pending low-level ops.
func (f *Fabric) Pending() []PendingOp {
	var ops []PendingOp
	for _, l := range f.laneList() {
		l.mu.Lock()
		for _, h := range l.held {
			ops = append(ops, PendingOp{Event: h.ev, Phase: h.phase})
		}
		for _, h := range l.inflight {
			ops = append(ops, PendingOp{Event: h.ev, Phase: h.phase})
		}
		for _, h := range l.dropped {
			ops = append(ops, PendingOp{Event: h.ev, Phase: h.phase})
		}
		l.mu.Unlock()
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].Event.Token < ops[j].Event.Token })
	return ops
}

// CoveredObjects returns Cov(t): the set of base objects covered by a
// pending low-level write, in ascending object order.
func (f *Fabric) CoveredObjects() []types.ObjectID {
	seen := make(map[types.ObjectID]struct{})
	for _, op := range f.Pending() {
		if op.Event.Inv.Op.IsWrite() {
			seen[op.Event.Object] = struct{}{}
		}
	}
	ids := make([]types.ObjectID, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Triggers returns the total number of low-level operations triggered.
func (f *Fabric) Triggers() uint64 { return f.nextToken.Load() }

// UsedObjects returns the set of base objects that had at least one
// operation triggered on them — the paper's resource consumption of the
// run — in ascending object order. The route table is object-indexed, so
// the scan is already ordered.
func (f *Fabric) UsedObjects() []types.ObjectID {
	var ids []types.ObjectID
	for obj, rt := range f.routes.snapshot() {
		if rt != nil && rt.used.Load() {
			ids = append(ids, types.ObjectID(obj))
		}
	}
	return ids
}

// Completion pairs a completed call with its outcome, for quorum waits.
type Completion struct {
	Call    *Call
	Outcome Outcome
}

// AwaitN registers completion callbacks on every call and blocks until n of
// them complete or ctx is done. The returned slice holds the first n
// completions in completion order. AwaitN must be used with fresh calls
// that have no callback registered yet: Call.OnComplete enforces single
// registration.
func AwaitN(ctx context.Context, calls []*Call, n int) ([]Completion, error) {
	if n <= 0 {
		return nil, nil
	}
	if n > len(calls) {
		return nil, fmt.Errorf("fabric: await %d of %d calls", n, len(calls))
	}
	ch := make(chan Completion, len(calls))
	for _, call := range calls {
		call := call
		call.OnComplete(func(o Outcome) {
			ch <- Completion{Call: call, Outcome: o}
		})
	}
	done := make([]Completion, 0, n)
	for len(done) < n {
		select {
		case <-ctx.Done():
			return done, fmt.Errorf("fabric: quorum wait (%d/%d): %w", len(done), n, ctx.Err())
		case c := <-ch:
			done = append(done, c)
		}
	}
	return done, nil
}
