// View-change coordination: live replacement of a server with state
// transfer, without stopping reads or writes.
//
// The protocol is freeze → drain → transfer → activate:
//
//  1. Admit the joiner (Fabric.AddServer): a fresh server ID, an empty
//     object table, and a new dispatch lane. Epoch bump #1 — but routes
//     still resolve to the old server, so traffic is undisturbed.
//  2. Freeze the departing server (Server.Depart + lane.setDeparting).
//     From this point every NEW operation routed to it completes with a
//     retryable ErrViewChanged before touching the wire; the freeze is
//     taken under the lane mutex, so no op can slip between the freeze and
//     the state fetch.
//  3. Drain: force-complete the gate-parked ops (PhaseApply never applied
//     → retryable error; PhaseRespond already linearized → its real
//     response) and wait for the on-the-wire ops to complete — they
//     legally finish in the old view and their effects are part of the
//     transferred state.
//  4. Transfer: seal each object (the seal point is the authoritative
//     cutoff for local-state backends; network backends are read over the
//     wire after the drain) and move the state onto the joiner
//     (cluster.MoveObject). Each move bumps the epoch, so cached routes
//     re-resolve object by object.
//  5. Retire: remove the old server from the view and close its backend.
//     A network backend's Close marks it closing first, so tearing down
//     the connection reads as a clean leave, not a crash.
//
// Clients never stop: in-flight ops complete in the old view, ops that hit
// the freeze window retry transparently into the new one (see ErrViewChanged
// — the error guarantees the op never applied, so the retry is exactly-once
// safe even for CAS), and the round engines re-scatter on view-change
// completions automatically.
package fabric

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/baseobj"
	"repro/internal/types"
)

// quiescePoll is the interval at which the coordinator re-checks a draining
// lane's in-flight count. Drains complete in a few delivery round-trips, so
// a sub-millisecond poll keeps reconfiguration latency dominated by the
// transport, not the coordinator.
const quiescePoll = 200 * time.Microsecond

// Replace performs a live replacement of server old: a fresh server joins
// the view, the departing server freezes and drains, every object it hosts
// transfers (with state) onto the joiner, and the old server leaves the
// view. Reads and writes continue throughout — operations caught in the
// freeze window complete with a retryable view-change error and re-execute
// in the new view.
//
// maker builds the joiner's lane backend; nil uses the fabric's default
// maker. Replace returns the joiner's server ID. Concurrent Replace calls
// serialize; replacing a crashed or already-departing server fails.
func (f *Fabric) Replace(ctx context.Context, old types.ServerID, maker LaneMaker) (types.ServerID, error) {
	f.reconfMu.Lock()
	defer f.reconfMu.Unlock()

	srv, err := f.cluster.Server(old)
	if err != nil {
		return 0, err
	}
	if srv.Crashed() {
		return 0, fmt.Errorf("fabric: cannot replace crashed server %d (its state is lost)", old)
	}
	if srv.Departing() {
		return 0, fmt.Errorf("fabric: server %d is already departing", old)
	}
	l := f.laneFor(old)
	if l == nil {
		return 0, fmt.Errorf("fabric: no dispatch lane for server %d", old)
	}

	// 1. Admit the joiner before freezing anything: if admission fails the
	// old server was never disturbed.
	newID, err := f.AddServer(maker)
	if err != nil {
		return 0, err
	}

	// 2+3. Freeze and drain.
	srv.Depart()
	f.drainParked(l.setDeparting())
	if err := f.awaitQuiesce(ctx, l); err != nil {
		return newID, fmt.Errorf("fabric: drain of server %d: %w", old, err)
	}

	// 4. Transfer every hosted object onto the joiner.
	for _, obj := range f.cluster.ObjectsOn(old) {
		o, err := f.cluster.Object(obj)
		if err != nil {
			return newID, err
		}
		state, err := f.fetchState(ctx, l, o)
		if err != nil {
			return newID, fmt.Errorf("fabric: state fetch for object %d on server %d: %w", obj, old, err)
		}
		if err := f.cluster.MoveObject(obj, newID, state); err != nil {
			return newID, fmt.Errorf("fabric: move object %d to server %d: %w", obj, newID, err)
		}
	}

	// 5. Retire: leave the view, then tear down the transport. Close is
	// ordered after RemoveServer so a backend whose Close reports failure
	// (reconnect-as-crash) cannot crash a server that is still a member.
	if err := f.cluster.RemoveServer(old); err != nil {
		return newID, err
	}
	if err := l.backend.Close(); err != nil {
		return newID, fmt.Errorf("fabric: closing lane backend of server %d: %w", old, err)
	}
	return newID, nil
}

// drainParked force-completes the ops the gate had parked on a now-frozen
// lane, in ascending token order. The two phases must diverge — see
// release: a PhaseApply op never linearized (retryable error), a
// PhaseRespond op did (its real response).
func (f *Fabric) drainParked(parked []*heldOp) {
	sort.Slice(parked, func(i, j int) bool { return parked[i].ev.Token < parked[j].ev.Token })
	for _, h := range parked {
		f.emit(TraceRelease, &h.ev, h.ev.Server)
		switch h.phase {
		case PhaseApply:
			h.call.complete(Outcome{Err: viewChangedErr(h.ev.Server)})
		case PhaseRespond:
			f.emit(TraceRespond, &h.ev, h.ev.Server)
			h.call.complete(Outcome{Resp: h.resp})
		}
	}
}

// awaitQuiesce waits until the frozen lane has no operation on the wire.
// Every such op was admitted before the freeze, so it completes in the old
// view (or its server crashes); new ops cannot join (putInflight rejects
// them under the same lock that set the freeze).
func (f *Fabric) awaitQuiesce(ctx context.Context, l *lane) error {
	for l.inflightCount() > 0 {
		t := time.NewTimer(quiescePoll)
		select {
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("quiesce (%d in flight): %w", l.inflightCount(), ctx.Err())
		case <-t.C:
		}
	}
	return nil
}

// fetchState returns an object's authoritative state at the freeze point
// and seals the local copy so no write can land behind the transfer.
//
// For local-state backends (in-process, latency) the seal IS the fetch: the
// snapshot and the rejection of later writes are atomic under the object's
// mutex. For external-store backends (ObjectMirror — the network lane) the
// local copy is only a placeholder; the authoritative state lives in the
// storage node and is read over the still-open connection. The read is
// sound because the lane has quiesced and its freeze rejects new sends, so
// the node can receive no further write for this fabric's objects before
// the connection closes.
func (f *Fabric) fetchState(ctx context.Context, l *lane, o baseobj.Object) (baseobj.State, error) {
	var local baseobj.State
	switch sealer := o.(type) {
	case baseobj.StateSealer:
		local = sealer.SealState()
	case baseobj.Sealer:
		local = baseobj.State{Val: sealer.Seal()}
	default:
		return baseobj.State{}, fmt.Errorf("object %d (%T) does not support state transfer", o.ID(), o)
	}
	if _, remote := l.backend.(ObjectMirror); !remote {
		return local, nil
	}
	inv, err := stateReadInv(o.Kind())
	if err != nil {
		return baseobj.State{}, err
	}
	// The fetch is a real wire delivery with a synthetic client identity —
	// it bypasses routing, gating, and in-flight bookkeeping because the
	// lane is frozen for everyone else.
	ev := TriggerEvent{
		Token:  f.nextToken.Add(1),
		Client: types.ClientID(-1),
		Object: o.ID(),
		Server: l.server,
		Inv:    inv,
	}
	done := make(chan Outcome, 1)
	l.backend.Deliver(ev,
		func() (baseobj.Response, error) {
			return baseobj.Response{}, fmt.Errorf("fabric: state fetch for object %d applied locally on a remote-state backend", o.ID())
		},
		func(resp baseobj.Response, err error) {
			done <- Outcome{Resp: resp, Err: err}
		})
	select {
	case <-ctx.Done():
		return baseobj.State{}, ctx.Err()
	case out := <-done:
		if out.Err != nil {
			return baseobj.State{}, out.Err
		}
		return baseobj.State{Val: out.Resp.Val, Data: out.Resp.Data, Frags: out.Resp.Frags}, nil
	}
}

// stateReadInv builds the invocation that reads an object's full state
// without mutating it. Registers and max-registers have plain reads (their
// responses carry the payload bytes alongside the TSValue); a fragment
// store's OpGetFrags returns its commit watermark plus every fragment; a
// CAS cell's state is observed via a compare that can never succeed (no
// writer ID is negative), whose response carries the previous — i.e.
// current — value.
func stateReadInv(kind baseobj.Kind) (baseobj.Invocation, error) {
	switch kind {
	case baseobj.KindRegister:
		return baseobj.Invocation{Op: baseobj.OpRead}, nil
	case baseobj.KindMaxRegister:
		return baseobj.Invocation{Op: baseobj.OpReadMax}, nil
	case baseobj.KindCAS:
		probe := types.TSValue{TS: math.MaxUint64, Writer: -1, Val: -1}
		return baseobj.Invocation{Op: baseobj.OpCAS, Exp: probe, New: probe}, nil
	case baseobj.KindFragStore:
		return baseobj.Invocation{Op: baseobj.OpGetFrags}, nil
	default:
		return baseobj.Invocation{}, fmt.Errorf("fabric: no state read for object kind %v", kind)
	}
}
